//===- aqua/runtime/Fluid.h - Simulated fluid state --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated fluid: a volume plus a composition vector mapping input
/// fluid names to their fractions. Composition tracking is what lets
/// end-to-end tests verify that mix ratios actually reach the sensors
/// (e.g. the glucose assay's 1:8 dilution senses a glucose fraction of
/// 1/9), and what the Section 4.2 rounding-error experiment measures.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_RUNTIME_FLUID_H
#define AQUA_RUNTIME_FLUID_H

#include <map>
#include <string>

namespace aqua::runtime {

/// A quantity of (possibly mixed) fluid.
struct Fluid {
  double VolumeNl = 0.0;
  /// Input-fluid name -> fraction of this fluid's volume; fractions sum to
  /// 1 for non-empty fluids.
  std::map<std::string, double> Composition;

  bool empty() const { return VolumeNl <= 1e-12; }

  /// Creates a pure fluid of \p Volume nl named \p Name.
  static Fluid pure(std::string Name, double VolumeNl);

  /// Merges \p Other into this fluid (volume-weighted composition).
  void add(const Fluid &Other);

  /// Splits off \p VolumeNl (clamped to the available volume) and returns
  /// it; composition is preserved on both sides.
  Fluid take(double VolumeNl);

  /// Fraction of \p Name in this fluid (0 if absent).
  double fractionOf(const std::string &Name) const;
};

} // namespace aqua::runtime

#endif // AQUA_RUNTIME_FLUID_H
