//===- aqua/runtime/PartitionExecutor.h - Run-time dispensing -----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end execution of assays with statically-unknown volumes
/// (Section 3.5): the compile-time partition plan's Vnorms stay fixed,
/// and each partition is dispensed, code-generated and simulated in wave
/// order; the measured output of every unknown-volume operation feeds the
/// constrained inputs of the partitions that consume it.
///
/// This is the run-time half of the paper's split ("we delay the volume
/// assignment step from compile time to run time while keeping Vnorm
/// calculation at compile time to reduce run-time overhead"). On AquaCore
/// the dispensing arithmetic runs on the fast electronic control; here it
/// is a few multiplications per partition, against fluidic operations
/// taking simulated seconds.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_RUNTIME_PARTITIONEXECUTOR_H
#define AQUA_RUNTIME_PARTITIONEXECUTOR_H

#include "aqua/core/Partition.h"
#include "aqua/runtime/Simulator.h"

#include <map>

namespace aqua::runtime {

/// Result of a partitioned run.
struct PartitionRunResult {
  bool Completed = false;
  std::string Error;
  int PartitionsExecuted = 0;
  double FluidSeconds = 0.0;
  int Regenerations = 0;
  std::vector<SenseReading> Senses;
  /// Measured output volume (nl) of every unknown-volume operation,
  /// keyed by the producing node's name.
  std::map<std::string, double> MeasuredNl;
  /// The dispensed volumes, indexed like the plan's graph.
  core::VolumeAssignment Volumes;
};

/// Executes \p Plan partition by partition. Separation/concentration
/// yields come from \p Opts' RNG settings (or the fixed override).
/// Fails when a partition's dispensed volumes underflow the least count
/// (the paper's answer there is BioStream-style regeneration of the
/// upstream slice, which the caller can arrange by re-running the
/// producing partition).
PartitionRunResult executePartitioned(const core::PartitionPlan &Plan,
                                      const SimOptions &Opts);

} // namespace aqua::runtime

#endif // AQUA_RUNTIME_PARTITIONEXECUTOR_H
