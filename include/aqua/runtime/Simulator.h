//===- aqua/runtime/Simulator.h - AquaCore PLoC simulator --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A behavioural simulator for the AquaCore PLoC (Section 2.1): reservoirs,
/// mixers, heaters, sensors and separators connected by metered peristaltic
/// transport with a least count, driven by an AIS program.
///
/// The simulator implements two volume regimes:
///  * *managed* programs carry metered `move-abs` volumes produced by
///    volume management;
///  * *relative* programs carry the assay's raw part counts, which the
///    runtime translates by filling the consuming functional unit to
///    capacity at the requested ratio -- the "no volume management"
///    baseline of Table 2.
///
/// When a transfer finds its source depleted, the simulator performs
/// BioStream-style reactive *regeneration*: it re-executes the backward
/// slice of the instructions that produced the depleted fluid (re-drawing
/// inputs from their ports) and retries. Each re-execution counts one
/// regeneration event -- the paper's "Regen. count" column. Regeneration
/// runs on the slow fluidic datapath, so its cost also shows up in the
/// simulated wet time.
///
/// Physically-unknowable quantities (separation yields, concentration
/// factors) come from a seeded deterministic RNG or a fixed override.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_RUNTIME_SIMULATOR_H
#define AQUA_RUNTIME_SIMULATOR_H

#include "aqua/codegen/AIS.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/MachineSpec.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/runtime/Fluid.h"

#include <map>
#include <string>
#include <vector>

namespace aqua::runtime {

/// Simulation options.
struct SimOptions {
  core::MachineSpec Spec;
  codegen::MachineLayout Layout;

  /// Re-execute producing slices when a fluid runs out. Requires Graph.
  bool EnableRegeneration = true;
  /// The assay DAG the program was generated from (for backward slices).
  const ir::AssayGraph *Graph = nullptr;

  /// RNG seed for separation yields and concentration factors.
  std::uint64_t Seed = 0x5eed;
  /// Separation effluent yield drawn uniformly from this range...
  double MinSeparationYield = 0.2;
  double MaxSeparationYield = 0.7;
  /// ...unless fixed (>= 0) for reproducible experiments.
  double FixedSeparationYield = -1.0;

  /// Wet-path timing: fixed seconds charged per fluid transfer.
  double MoveSeconds = 2.0;
  /// Retries (regenerations) allowed per transfer before giving up.
  int MaxRegenRetries = 8;
};

/// One sensor reading.
struct SenseReading {
  std::string Name; ///< Result variable, e.g. "Result_3".
  double VolumeNl = 0.0;
  std::map<std::string, double> Composition;
};

/// Outcome of a simulation.
struct SimResult {
  bool Completed = false;
  std::string Error;

  /// Regeneration events (Table 2's "Regen. count").
  int Regenerations = 0;
  /// Transfers that found their source short of the requested volume.
  int UnderflowEvents = 0;
  /// Transfers clipped by the destination's capacity.
  int OverflowEvents = 0;
  /// Transfers whose quantized volume fell below the least count.
  int SubLeastCountMoves = 0;

  int InstructionsExecuted = 0;
  /// Total simulated wet-path time (operation + transfer seconds).
  double FluidSeconds = 0.0;
  /// Volume drawn from each input port, in nl.
  std::map<std::string, double> InputDrawnNl;
  /// Volume delivered off-chip through output ports, in nl.
  double DeliveredNl = 0.0;
  /// Volume discarded on-chip, in nl: separation residue plus consumed
  /// matrix/pusher fluids, solvent removed by concentration, sensed
  /// samples, and residue drained by `output`.
  double WasteNl = 0.0;

  std::vector<SenseReading> Senses;
};

/// Executes \p Program. The program must have been generated for a machine
/// compatible with \p Opts.Layout.
SimResult simulate(const codegen::AISProgram &Program, const SimOptions &Opts);

} // namespace aqua::runtime

#endif // AQUA_RUNTIME_SIMULATOR_H
