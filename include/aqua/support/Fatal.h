//===- aqua/support/Fatal.h - Fatal errors and unreachable ------*- C++-*-===//
//
// Part of AquaVol, a reproduction of "Automatic Volume Management for
// Programmable Microfluidics" (PLDI 2008). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Termination helpers for programmatic errors (invariant violations).
/// Recoverable errors (bad assay source, infeasible volume assignment) use
/// aqua/support/Error.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_FATAL_H
#define AQUA_SUPPORT_FATAL_H

#include <string_view>

namespace aqua {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// indicate a bug in AquaVol itself, never for user-input errors.
[[noreturn]] void reportFatalError(std::string_view Msg);

} // namespace aqua

/// Marks a point in the code that must never be reached.
#define AQUA_UNREACHABLE(Msg) ::aqua::reportFatalError("unreachable: " Msg)

#endif // AQUA_SUPPORT_FATAL_H
