//===- aqua/support/Random.h - Deterministic RNG ----------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random generator (SplitMix64). Used by the
/// runtime simulator for physically-unknowable quantities (separation output
/// fractions) and by property tests; seeding is always explicit so every run
/// is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_RANDOM_H
#define AQUA_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace aqua {

/// SplitMix64 pseudo-random number generator.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniform in [0, 1).
  double nextUnit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns an integer uniform in [Lo, Hi] (inclusive).
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    std::uint64_t Span = static_cast<std::uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<std::int64_t>(next() % Span);
  }

private:
  std::uint64_t State;
};

} // namespace aqua

#endif // AQUA_SUPPORT_RANDOM_H
