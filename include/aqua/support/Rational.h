//===- aqua/support/Rational.h - Exact rational arithmetic ------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic over 64-bit integers with 128-bit intermediates.
///
/// DAGSolve (PLDI 2008, Figure 4) propagates relative volumes ("Vnorm")
/// through the assay DAG as products and sums of mix-ratio fractions.
/// Computing these exactly lets the test suite check the paper's worked
/// example literally (e.g. Vnorm(L) = 11/15 in Figure 5) and keeps the
/// dispensing pass free of floating-point drift.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_RATIONAL_H
#define AQUA_SUPPORT_RATIONAL_H

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace aqua {

/// An exact rational number `Num/Den` with `Den > 0` and gcd(Num, Den) == 1.
///
/// All operations normalize their result. Intermediate products are computed
/// in 128-bit arithmetic; a result whose reduced numerator or denominator
/// does not fit in 64 bits is a fatal error (assay DAGs keep values tiny in
/// practice -- ratios are small integers and graphs have bounded depth).
class Rational {
public:
  /// Constructs zero.
  constexpr Rational() : Num(0), Den(1) {}

  /// Constructs the integer \p N.
  constexpr Rational(std::int64_t N) : Num(N), Den(1) {}

  /// Constructs \p N / \p D. \p D must be non-zero.
  Rational(std::int64_t N, std::int64_t D);

  std::int64_t numerator() const { return Num; }
  std::int64_t denominator() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isInteger() const { return Den == 1; }

  /// Converts to the nearest double.
  double toDouble() const {
    return static_cast<double>(Num) / static_cast<double>(Den);
  }

  /// Returns the multiplicative inverse. This value must be non-zero.
  Rational reciprocal() const;

  /// Returns the absolute value.
  Rational abs() const { return Num < 0 ? Rational(-Num, Den) : *this; }

  /// Returns the largest integer <= this value.
  std::int64_t floor() const;

  /// Returns the smallest integer >= this value.
  std::int64_t ceil() const;

  /// Rounds to the nearest integer (half away from zero).
  std::int64_t roundNearest() const;

  /// Renders as "n" for integers, "n/d" otherwise.
  std::string str() const;

  Rational operator-() const { return Rational(-Num, Den); }

  friend Rational operator+(const Rational &A, const Rational &B);
  friend Rational operator-(const Rational &A, const Rational &B);
  friend Rational operator*(const Rational &A, const Rational &B);
  friend Rational operator/(const Rational &A, const Rational &B);

  Rational &operator+=(const Rational &B) { return *this = *this + B; }
  Rational &operator-=(const Rational &B) { return *this = *this - B; }
  Rational &operator*=(const Rational &B) { return *this = *this * B; }
  Rational &operator/=(const Rational &B) { return *this = *this / B; }

  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }

  friend std::strong_ordering operator<=>(const Rational &A,
                                          const Rational &B);

private:
  // Reduces a 128-bit fraction and range-checks the result.
  static Rational makeReduced(__int128 N, __int128 D);

  std::int64_t Num;
  std::int64_t Den;
};

inline Rational min(const Rational &A, const Rational &B) {
  return A < B ? A : B;
}

inline Rational max(const Rational &A, const Rational &B) {
  return A < B ? B : A;
}

} // namespace aqua

#endif // AQUA_SUPPORT_RATIONAL_H
