//===- aqua/support/Timer.h - Back-compat timing shim ------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forwarding header: WallTimer and ScopedTimer moved to aqua/obs/Timer.h
/// when the observability layer became the home of all timing. Include
/// that header in new code; this one exists so older includes keep
/// compiling.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_TIMER_H
#define AQUA_SUPPORT_TIMER_H

#include "aqua/obs/Timer.h"

#endif // AQUA_SUPPORT_TIMER_H
