//===- aqua/support/Timer.h - Wall-clock timing ------------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer used by the Table 2 run-time experiments.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_TIMER_H
#define AQUA_SUPPORT_TIMER_H

#include <chrono>

namespace aqua {

/// Measures elapsed wall-clock time from construction (or last reset()).
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace aqua

#endif // AQUA_SUPPORT_TIMER_H
