//===- aqua/support/StringUtils.h - String helpers --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting and manipulation helpers shared across AquaVol.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_STRINGUTILS_H
#define AQUA_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace aqua {

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats \p Value with \p Digits fractional digits, trimming trailing
/// zeros (e.g. 3.30 -> "3.3", 13.00 -> "13").
std::string formatTrimmed(double Value, int Digits);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// True if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

} // namespace aqua

#endif // AQUA_SUPPORT_STRINGUTILS_H
