//===- aqua/support/Json.h - Minimal JSON document parser --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser producing an immutable DOM. It
/// exists so the observability tooling (trace-shard merging, `aquatop`,
/// the multi-process bench aggregation, and the tests that verify merged
/// traces) can *read back* the JSON this codebase writes without an
/// external dependency.
///
/// Scope: full JSON syntax (objects, arrays, strings with \uXXXX escapes
/// including surrogate pairs, numbers, booleans, null). Not streaming, not
/// fast, not a serializer -- writers in this repo emit JSON by hand, per
/// the existing Metrics/Trace exporters. Numbers are held as doubles,
/// which is exact for the 53-bit integer range; the timestamps and
/// counters we round-trip stay well inside it (and `u64()` saturates
/// instead of wrapping for anything larger).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_JSON_H
#define AQUA_SUPPORT_JSON_H

#include "aqua/support/Error.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aqua::json {

/// One parsed JSON value. Values are immutable after parse; object members
/// keep document order (duplicate keys keep the last occurrence on
/// `find()`, matching common parser behaviour).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : K(Kind::Null) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  /// Value accessors; calling the wrong one asserts.
  bool boolean() const;
  double number() const;
  const std::string &str() const;
  const std::vector<Value> &array() const;
  const std::vector<std::pair<std::string, Value>> &members() const;

  /// Object member lookup; null when this is not an object or the key is
  /// absent. Duplicate keys resolve to the last occurrence.
  const Value *find(const std::string &Key) const;

  /// Convenience: the named member's number/string, or a fallback when the
  /// member is absent or has the wrong kind.
  double numberOr(const std::string &Key, double Fallback) const;
  std::string strOr(const std::string &Key, const std::string &Fallback) const;

  /// number() clamped to [0, 2^64); non-finite and negative map to 0.
  std::uint64_t u64() const;

private:
  friend class Parser;

  Kind K;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed;
/// trailing garbage is an error).
Expected<Value> parse(std::string_view Text);

} // namespace aqua::json

#endif // AQUA_SUPPORT_JSON_H
