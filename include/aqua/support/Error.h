//===- aqua/support/Error.h - Recoverable error handling --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error types, modeled on LLVM's Error/Expected but
/// without exceptions or RTTI. A `Status` carries success or a message; an
/// `Expected<T>` carries a value or a message. Recoverable errors in AquaVol
/// are things like malformed assay source, infeasible volume assignments, or
/// machine-resource exhaustion; invariant violations abort via Fatal.h.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SUPPORT_ERROR_H
#define AQUA_SUPPORT_ERROR_H

#include "aqua/support/Fatal.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace aqua {

/// Success-or-message result for operations with no payload.
class Status {
public:
  /// Constructs a success value.
  static Status success() { return Status(); }

  /// Constructs a failure with diagnostic \p Msg (lower-case first word, no
  /// trailing period, per the error-message style guide).
  static Status error(std::string Msg) {
    Status S;
    S.Msg = std::move(Msg);
    return S;
  }

  bool ok() const { return !Msg.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the diagnostic message; only valid on failure.
  const std::string &message() const {
    assert(!ok() && "message() on success status");
    return *Msg;
  }

private:
  Status() = default;
  std::optional<std::string> Msg;
};

/// Value-or-message result.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from a failed Status.
  Expected(Status S) : Err(std::move(S)) {
    assert(!Err->ok() && "Expected built from success status");
  }

  /// Constructs a failure with diagnostic \p Msg.
  static Expected<T> error(std::string Msg) {
    return Expected<T>(Status::error(std::move(Msg)));
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &get() {
    assert(ok() && "get() on failed Expected");
    return *Value;
  }
  const T &get() const {
    assert(ok() && "get() on failed Expected");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Returns the diagnostic message; only valid on failure.
  const std::string &message() const {
    assert(!ok() && "message() on success Expected");
    return Err->message();
  }

  /// Converts the failure into a Status (failure only).
  Status takeStatus() const {
    assert(!ok() && "takeStatus() on success Expected");
    return *Err;
  }

  /// Unwraps, aborting with the diagnostic if this is a failure. For tool
  /// and test code where the value is known to be present.
  T &unwrap() {
    if (!ok())
      reportFatalError(Err->message());
    return *Value;
  }

private:
  std::optional<T> Value;
  std::optional<Status> Err;
};

} // namespace aqua

#endif // AQUA_SUPPORT_ERROR_H
