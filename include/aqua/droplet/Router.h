//===- aqua/droplet/Router.h - Electrode-grid droplet routing ----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A behavioural executor for the droplet device: runs an assay DAG with
/// an exact integer-droplet assignment on a 2-D electrode grid.
///
/// Model (standard digital-microfluidics abstractions):
///  * droplets occupy one electrode each and move one cell per step
///    (4-neighbourhood);
///  * the *static fluidic constraint* keeps parked droplets at Chebyshev
///    distance >= 2 so they never merge unintentionally, and a moving
///    droplet keeps the same clearance from every droplet except its merge
///    target;
///  * operations happen in place: operand droplets are split off their
///    source, routed to the operation's site and merged there; waste and
///    cascade excess are split off and disposed;
///  * input fluids dispense at ports on the west edge, sensing happens at
///    the east edge.
///
/// Routing is per-droplet BFS (droplets move one at a time, so paths only
/// avoid parked droplets). The stats report electrode actuation steps,
/// split/merge/dispense counts and the peak droplet population -- the
/// DMF cost model in which the flow-based vs droplet-based trade-offs of
/// the paper's related work are usually discussed.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_DROPLET_ROUTER_H
#define AQUA_DROPLET_ROUTER_H

#include "aqua/droplet/Dmf.h"

#include <string>

namespace aqua::droplet {

/// Outcome of a grid execution.
struct DmfRunStats {
  bool Completed = false;
  std::string Error;
  /// Total droplet-movement steps (electrode actuations).
  std::int64_t Steps = 0;
  int Dispenses = 0;
  int Splits = 0;
  int Merges = 0;
  int Senses = 0;
  /// Largest number of droplets parked on the grid at once.
  int PeakDroplets = 0;
};

/// Executes \p G with assignment \p A on \p Spec's grid. Fails when the
/// grid is too congested to place or route a droplet (a bigger grid or a
/// smaller assay is needed).
Expected<DmfRunStats> executeOnGrid(const ir::AssayGraph &G,
                                    const DmfAssignment &A,
                                    const DmfSpec &Spec);

} // namespace aqua::droplet

#endif // AQUA_DROPLET_ROUTER_H
