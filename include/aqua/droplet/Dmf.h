//===- aqua/droplet/Dmf.h - Droplet-based (DMF) adaptation -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptation of volume management to droplet-based (digital
/// microfluidic) labs-on-a-chip -- the paper's closing remark: "We focus
/// on flow-based devices, though our techniques may be adapted for
/// droplet-based LoCs."
///
/// On a DMF device fluid moves as discrete droplets on an electrode grid,
/// so volumes are *integer droplet counts* rather than least-count
/// multiples: IVol's integrality constraint becomes structural. DAGSolve
/// adapts exactly: the backward Vnorm pass is unchanged, and dispensing
/// picks the scale `s = lcm(denominators of all Vnorms)` -- the smallest
/// scale at which every edge and node volume is a whole number of
/// droplets. The assignment is *exact* (zero mix-ratio error, unlike the
/// least-count rounding of the flow-based device); it is infeasible when
/// the required droplet count at the fullest node exceeds the device's
/// per-site droplet capacity, which is when cascading/replication apply,
/// just as in the flow-based case.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_DROPLET_DMF_H
#define AQUA_DROPLET_DMF_H

#include "aqua/core/DagSolve.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

#include <cstdint>
#include <vector>

namespace aqua::droplet {

/// Digital-microfluidic device parameters.
struct DmfSpec {
  /// Electrode grid dimensions.
  int Width = 16;
  int Height = 16;
  /// Largest droplet (in unit droplets) one site/operation may hold --
  /// the DMF analogue of the flow device's maximum capacity.
  std::int64_t CapacityDroplets = 64;
  /// Unit droplet volume in nl (for reporting only).
  double DropletNl = 10.0;
};

/// An exact integer-droplet volume assignment.
struct DmfAssignment {
  bool Feasible = false;
  /// The chosen scale: droplets per unit of Vnorm.
  std::int64_t Scale = 0;
  /// Whole-droplet volumes, indexed by graph slots.
  std::vector<std::int64_t> NodeDroplets;
  std::vector<std::int64_t> EdgeDroplets;
  /// Largest per-site droplet count (must fit CapacityDroplets).
  std::int64_t MaxSiteDroplets = 0;
  std::int64_t MinEdgeDroplets = 0;
};

/// Computes the integer-droplet adaptation of DAGSolve for \p G.
/// The graph must verify; unknown-volume nodes are not supported on the
/// droplet device (their run-time measurement has no DMF analogue here).
Expected<DmfAssignment> dmfDagSolve(const ir::AssayGraph &G,
                                    const DmfSpec &Spec);

} // namespace aqua::droplet

#endif // AQUA_DROPLET_DMF_H
