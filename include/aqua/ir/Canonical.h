//===- aqua/ir/Canonical.h - Canonical form & fingerprinting -----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization and structural fingerprinting of assay DAGs.
///
/// Two `AssayGraph`s that describe the same assay can differ in incidental
/// ways: the order nodes and edges were inserted, and dead slots left
/// behind by DAG-to-DAG transforms. The compilation service keys its solve
/// cache on *structure*, so it needs a hash that is invariant under those
/// accidents while remaining sensitive to everything volume management can
/// observe -- node kinds and names, mix fractions, yield fractions,
/// unknown-volume and no-excess flags, and operation parameters.
///
/// `canonicalize()` computes a canonical rank for every live node and edge
/// by Weisfeiler--Lehman-style neighborhood refinement: each node starts
/// from a hash of its local signature and repeatedly absorbs the sorted
/// hashes of its fraction-annotated in- and out-neighborhoods. After
/// O(log N) rounds the hashes separate every structurally distinguishable
/// node; nodes that still collide are (in practice) automorphic, so any
/// order among them yields an isomorphic canonical graph and the same
/// fingerprint.
///
/// The 128-bit `Fingerprint` is a hash of the sorted multiset of final
/// node hashes and edge hashes -- by construction independent of insertion
/// order and of dead-slot layout.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_IR_CANONICAL_H
#define AQUA_IR_CANONICAL_H

#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Rational.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::ir {

/// A 128-bit structural hash.
struct Fingerprint {
  std::uint64_t Hi = 0;
  std::uint64_t Lo = 0;

  friend bool operator==(const Fingerprint &A, const Fingerprint &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Fingerprint &A, const Fingerprint &B) {
    return !(A == B);
  }
  friend bool operator<(const Fingerprint &A, const Fingerprint &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }

  /// 32 lower-case hex digits.
  std::string str() const;
};

/// Streaming 128-bit hasher (two independently-seeded 64-bit lanes with a
/// splitmix-style avalanche per absorbed word). Not cryptographic; meant
/// for memoization keys where accidental collisions must be negligible.
class FingerprintHasher {
public:
  FingerprintHasher();

  FingerprintHasher &add(std::uint64_t V);
  FingerprintHasher &add(std::int64_t V) {
    return add(static_cast<std::uint64_t>(V));
  }
  FingerprintHasher &add(int V) { return add(static_cast<std::int64_t>(V)); }
  FingerprintHasher &add(bool V) { return add(std::uint64_t(V ? 1 : 2)); }
  /// Hashes the exact bit pattern (with -0.0 normalized to 0.0).
  FingerprintHasher &add(double V);
  FingerprintHasher &add(const Rational &V);
  FingerprintHasher &add(std::string_view S);

  Fingerprint finish() const;

private:
  std::uint64_t A, B;
};

/// The canonical form of a graph: a rank for every live slot plus the
/// structural fingerprint.
struct CanonicalForm {
  /// Node slot id -> canonical rank in [0, numNodes); -1 for dead slots.
  std::vector<int> NodeRank;
  /// Edge slot id -> canonical rank in [0, numEdges); -1 for dead slots.
  std::vector<int> EdgeRank;
  /// Final per-slot refinement hashes (0 for dead slots); exposed so
  /// callers can hash auxiliary per-node data (e.g. solver output weights)
  /// insertion-order-independently.
  std::vector<std::uint64_t> NodeHash;
  /// The structural fingerprint of the live graph.
  Fingerprint Hash;
};

/// Computes canonical ranks and the structural fingerprint of \p G's live
/// subgraph. Deterministic; does not modify \p G.
CanonicalForm canonicalize(const AssayGraph &G);

/// Rebuilds \p G's live subgraph with nodes and edges renumbered into
/// canonical rank order and dead slots dropped. Two structurally equal
/// graphs rebuild into byte-identical listings (`str()`).
AssayGraph buildCanonicalGraph(const AssayGraph &G, const CanonicalForm &C);

/// Convenience: `canonicalize(G).Hash`.
Fingerprint fingerprintGraph(const AssayGraph &G);

} // namespace aqua::ir

#endif // AQUA_IR_CANONICAL_H
