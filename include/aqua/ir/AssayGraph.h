//===- aqua/ir/AssayGraph.h - Assay DAG intermediate form --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Assay DAG representation of Section 3.1 of the paper.
///
/// Nodes represent operations (typically volume-aggregating operations such
/// as mixes) and edges represent true dependences among operations. Each
/// edge is annotated with the exact fraction of the consumer's total input
/// contributed by the producer: `MIX A AND B IN RATIOS 1:4` yields edges
/// with fractions 1/5 and 4/5. Input nodes have no in-edges; leaf nodes
/// (no out-edges) are the assay's outputs for volume-management purposes.
///
/// The graph is mutable because the cascading and static-replication
/// extensions (Section 3.4) are DAG-to-DAG transformations; removal is by
/// marking so that node and edge ids stay stable across transforms.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_IR_ASSAYGRAPH_H
#define AQUA_IR_ASSAYGRAPH_H

#include "aqua/support/Error.h"
#include "aqua/support/Rational.h"

#include <string>
#include <vector>

namespace aqua::ir {

/// Index of a node within an AssayGraph.
using NodeId = int;
/// Index of an edge within an AssayGraph.
using EdgeId = int;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNode = -1;

/// The operation a node performs.
enum class NodeKind {
  Input,    ///< Fluid drawn from an input port; no in-edges.
  Mix,      ///< Volume-aggregating mix of 2+ source fluids.
  Incubate, ///< Heat one fluid for a duration; volume-preserving.
  Sense,    ///< Optical/fluorescence read; terminal use of its input.
  Separate, ///< Separation; output is a fraction of the input, possibly
            ///< unknown until run time; the complement is waste.
  Output,   ///< Fluid delivered to an output port.
  Excess,   ///< Deliberately discarded fluid (created by cascading).
};

/// Returns a short lower-case name for \p K.
const char *nodeKindName(NodeKind K);

/// Operation parameters carried through to code generation and simulation.
struct OpParams {
  /// Duration in seconds (mix/incubate/separate time).
  double Seconds = 0.0;
  /// Temperature in Celsius (incubate).
  double TempC = 0.0;
  /// Flavor tag, e.g. "AF"/"LC"/"CE" for separations, "OD"/"FL" for senses.
  std::string Flavor;
  /// Separations: pre-loaded affinity/chromatography matrix fluid name.
  std::string Matrix;
  /// Separations: pusher/carrier buffer fluid name.
  std::string Pusher;
};

/// One operation in the assay DAG.
struct Node {
  NodeKind Kind = NodeKind::Mix;
  /// Name of the fluid this node produces (or consumes, for Sense/Output).
  std::string Name;
  /// Output volume relative to total input volume (constraint class 5 in
  /// Figure 3). 1 for ordinary operations; < 1 for separations with a
  /// statically-known yield.
  Rational OutFraction = Rational(1);
  /// True for operations whose output volume is unknown until run time and
  /// must be measured (Section 3.5), e.g. separate-by-size.
  bool UnknownVolume = false;
  /// True for fluids that must not be produced in excess (disables
  /// cascading through this node; Section 3.4.1).
  bool NoExcess = false;
  /// For Excess nodes only: the fraction of the *source* node's output that
  /// is deliberately discarded (e.g. 9/10 for a 1:9 cascade stage). Known a
  /// priori, which is what lets DAGSolve handle cascades (Section 3.4.1).
  Rational ExcessShare = Rational(0);
  OpParams Params;
  bool Dead = false;
  std::vector<EdgeId> In;
  std::vector<EdgeId> Out;
};

/// A true-dependence edge annotated with the consumer-input fraction.
struct Edge {
  NodeId Src = InvalidNode;
  NodeId Dst = InvalidNode;
  /// Fraction of Dst's total input contributed by Src; in (0, 1].
  Rational Fraction = Rational(1);
  bool Dead = false;
};

/// A source fluid and its relative part in a mix, e.g. {A, 1} and {B, 4}
/// for `MIX A AND B IN RATIOS 1:4`.
struct MixPart {
  NodeId Source;
  std::int64_t Parts;
};

/// The assay DAG.
class AssayGraph {
public:
  /// Adds a node of \p Kind named \p Name and returns its id.
  NodeId addNode(NodeKind Kind, std::string Name);

  /// Adds an edge Src -> Dst carrying \p Fraction of Dst's input.
  EdgeId addEdge(NodeId Src, NodeId Dst, Rational Fraction);

  /// Convenience: adds an Input node.
  NodeId addInput(std::string Name) {
    return addNode(NodeKind::Input, std::move(Name));
  }

  /// Convenience: adds a Mix node over \p Parts (relative integer parts,
  /// converted to exact fractions) mixing for \p Seconds.
  NodeId addMix(std::string Name, const std::vector<MixPart> &Parts,
                double Seconds = 0.0);

  /// Convenience: adds a single-input node of \p Kind fed by \p Src.
  NodeId addUnary(NodeKind Kind, std::string Name, NodeId Src);

  /// Marks \p E dead and unlinks it from its endpoints' adjacency lists.
  void removeEdge(EdgeId E);

  /// Marks \p N and all its incident edges dead.
  void removeNode(NodeId N);

  /// Redirects the source of \p E to \p NewSrc.
  void setEdgeSource(EdgeId E, NodeId NewSrc);

  int numNodeSlots() const { return static_cast<int>(Nodes.size()); }
  int numEdgeSlots() const { return static_cast<int>(Edges.size()); }

  /// Counts live nodes.
  int numNodes() const;
  /// Counts live edges.
  int numEdges() const;

  const Node &node(NodeId N) const { return Nodes[N]; }
  Node &node(NodeId N) { return Nodes[N]; }
  const Edge &edge(EdgeId E) const { return Edges[E]; }
  Edge &edge(EdgeId E) { return Edges[E]; }

  /// Live node ids in creation order.
  std::vector<NodeId> liveNodes() const;
  /// Live edge ids in creation order.
  std::vector<EdgeId> liveEdges() const;

  /// Live in-edges of \p N.
  std::vector<EdgeId> inEdges(NodeId N) const;
  /// Live out-edges of \p N.
  std::vector<EdgeId> outEdges(NodeId N) const;

  /// True if \p N has no live out-edges (an output/leaf for DAGSolve).
  bool isLeaf(NodeId N) const { return outEdges(N).empty(); }

  /// Live nodes in a topological order (sources first). The graph must be
  /// acyclic (verify() checks this).
  std::vector<NodeId> topologicalOrder() const;

  /// All live nodes from which \p N is reachable, including \p N itself --
  /// the backward slice used by regeneration and static replication.
  std::vector<NodeId> backwardSlice(NodeId N) const;

  /// Structural invariants: acyclicity, fraction ranges, in-edge fractions
  /// of every non-input node summing to 1, inputs having no in-edges.
  Status verify() const;

  /// Renders a readable listing of nodes and edges.
  std::string str() const;

  /// Renders Graphviz DOT.
  std::string dot() const;

private:
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
};

} // namespace aqua::ir

#endif // AQUA_IR_ASSAYGRAPH_H
