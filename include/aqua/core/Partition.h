//===- aqua/core/Partition.h - Statically-unknown volumes --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Handling for statically-unknown output volumes (Section 3.5, Figures 8
/// and 13).
///
/// Some operations -- most commonly separations -- produce a volume that
/// cannot be known until run time. Volume assignment is split: the
/// out-edges of unknown-volume nodes are cut, partitioning the DAG; Vnorm
/// computation stays at compile time (per partition, each normalized to its
/// own leaves), while absolute dispensing is deferred to run time, when the
/// measured volumes are available.
///
/// Each cut edge's sink side becomes a *constrained input*: unlike a true
/// input port (which can draw anything up to the hardware maximum), a
/// constrained input is limited to the volume actually produced upstream.
/// A produced fluid with uses in multiple partitions cannot wait for the
/// later partitions' demands, so all its out-edges are cut and its volume
/// is split conservatively 1/N per use (merging m same-partition uses into
/// a single m/N constrained input -- the paper's refinement). An input
/// fluid used by several partitions is likewise split by use count
/// (glycomics' buffer3a becomes two 50 nl constrained inputs).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_PARTITION_H
#define AQUA_CORE_PARTITION_H

#include "aqua/core/DagSolve.h"
#include "aqua/core/MachineSpec.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

#include <string>
#include <vector>

namespace aqua::core {

/// The compile-time plan for an assay with unknown-volume operations.
struct PartitionPlan {
  /// A source whose available volume is constrained (not a free port).
  struct ConstrainedInput {
    /// The stand-in node in the partitioned graph.
    ir::NodeId Node = ir::InvalidNode;
    /// The node (in the same graph) whose dispensed/measured output feeds
    /// this input; for split input fluids, the original (now dead) input.
    ir::NodeId Source = ir::InvalidNode;
    /// Fraction of the source's volume this input receives.
    Rational Share = Rational(1);
    /// True when Source is an input port fluid (availability is
    /// Share * hardware maximum, fixed at compile time).
    bool FromInputPort = false;
  };

  /// One partition: a connected region whose dispensing happens together.
  struct Part {
    int Wave = 0;
    std::vector<ir::NodeId> Members;
    /// Indices into PartitionPlan::Inputs of this partition's constrained
    /// inputs.
    std::vector<int> InputRefs;
    /// Largest input-side Vnorm among members (capacity-binding).
    Rational MaxInputVnorm = Rational(0);
  };

  /// The partitioned graph: a copy of the original with cut edges rerouted
  /// through constrained-input nodes.
  ir::AssayGraph Graph;
  /// Compile-time Vnorms over `Graph` (each partition normalized to its
  /// own leaf set).
  DagSolveResult Vnorms;
  std::vector<ConstrainedInput> Inputs;
  /// Partitions ordered by execution wave.
  std::vector<Part> Parts;
  /// Partition index per live node of `Graph`.
  std::vector<int> NodePartition;

  /// Renders a per-partition summary (members, constrained inputs, Vnorms).
  std::string str() const;
};

/// Builds the partition plan for \p G. Succeeds with a single partition and
/// no constrained inputs when the graph has no unknown-volume nodes.
Expected<PartitionPlan> buildPartitionPlan(const ir::AssayGraph &G,
                                           const MachineSpec &Spec);

/// Run-time dispensing for one partition. \p AvailableNl holds the
/// available volume for every constrained input of the plan (indexed like
/// PartitionPlan::Inputs; entries for other partitions are ignored).
/// Produces absolute volumes for the partition's members; other slots stay
/// zero. The scale is the minimum of the capacity-driven scale and each
/// constrained input's available/Vnorm ratio (Section 3.5).
VolumeAssignment dispensePartition(const PartitionPlan &Plan, int PartIndex,
                                   const std::vector<double> &AvailableNl,
                                   const MachineSpec &Spec);

} // namespace aqua::core

#endif // AQUA_CORE_PARTITION_H
