//===- aqua/core/Rounding.h - RVol to IVol rounding --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rounding a rational (RVol) volume assignment to integer multiples of the
/// hardware least count, producing an IVol assignment (Section 3.2; error
/// evaluation in Section 4.2).
///
/// "Simple rounding of the RVol results to the nearest integers may cause
/// inaccuracies in mix ratios. ... the underlying chemistry is inherently
/// tolerant of small imprecisions ... the errors for our benchmarks were
/// below 2%."  The rounding here is the paper's simple
/// nearest-least-count-multiple scheme, plus the error metric used to
/// evaluate it.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_ROUNDING_H
#define AQUA_CORE_ROUNDING_H

#include "aqua/core/MachineSpec.h"
#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"

namespace aqua::core {

/// Rounds \p RVol to the nearest least-count multiples. Node volumes are
/// recomputed as the (rounded) sums of their in-edge volumes scaled by the
/// node's output fraction, so the integer assignment is self-consistent;
/// a conservation pass then trims rounded-up out-edges (largest surplus
/// first) wherever the consumers' integer demand would exceed the
/// producer's integer volume -- without this, "rounding up causes more
/// input fluids to be consumed ... which may lead to underflow" (§3.2).
/// Sets the ratio-error and underflow/overflow diagnostics.
IntegerAssignment roundToLeastCount(const ir::AssayGraph &G,
                                    const VolumeAssignment &RVol,
                                    const MachineSpec &Spec);

/// Converts an integer (least-count-unit) assignment back to nanoliters,
/// e.g. to feed managed code generation.
VolumeAssignment integerToNl(const ir::AssayGraph &G,
                             const IntegerAssignment &IVol,
                             const MachineSpec &Spec);

/// Relative mix-ratio error of an integer assignment: for every in-edge of
/// every mix node, compares the achieved input fraction against the exact
/// assay fraction. Returns {max%, mean%} over all such edges.
std::pair<double, double> mixRatioErrorPct(const ir::AssayGraph &G,
                                           const IntegerAssignment &IVol);

} // namespace aqua::core

#endif // AQUA_CORE_ROUNDING_H
