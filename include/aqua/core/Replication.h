//===- aqua/core/Replication.h - Static replication --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static replication for numerously-used fluids (Section 3.4.2).
///
/// When a fluid has so many uses that even a full reservoir underflows
/// per-use, the producing node is replicated and the uses are distributed
/// as evenly as possible across the replicas. Replicas share the original
/// node's predecessors (increasing *their* use counts); if underflow
/// persists, the volume-management driver replicates the now-critical
/// predecessor on the next iteration -- the paper's "replicate another
/// level in the DAG" -- rather than copying the whole backward slice at
/// once. Replication is a pure graph transformation, so the LP formulation
/// applies to the replicated DAG unchanged, and the added resource demand
/// is statically known.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_REPLICATION_H
#define AQUA_CORE_REPLICATION_H

#include "aqua/core/MachineSpec.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

#include <vector>

namespace aqua::core {

/// Replicates \p N so that \p Copies instances exist (the original plus
/// Copies-1 clones), distributing N's out-edges round-robin. Fails when \p
/// Copies < 2, when \p N is an Excess node or has fewer live out-edges than
/// \p Copies, or when the result exceeds \p Spec's resource limits
/// ("compilation fails", Section 3.4.2).
///
/// \returns all replica node ids (original first).
Expected<std::vector<ir::NodeId>> replicateNode(ir::AssayGraph &G,
                                                ir::NodeId N, int Copies,
                                                const MachineSpec &Spec);

} // namespace aqua::core

#endif // AQUA_CORE_REPLICATION_H
