//===- aqua/core/Verify.h - Volume-assignment verification -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent verification of a volume assignment against the IVol/RVol
/// constraint classes of Figure 3, producing one diagnostic per violation.
/// VolumeAssignment::feasible answers yes/no; this reports *what* is wrong
/// and by how much -- the tool an assay developer (or a property test)
/// reaches for when an assignment is rejected.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_VERIFY_H
#define AQUA_CORE_VERIFY_H

#include "aqua/core/MachineSpec.h"
#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"

#include <string>
#include <vector>

namespace aqua::core {

/// One constraint violation.
struct Violation {
  /// Which Figure 3 constraint class was violated (1..6), or 0 for
  /// structural problems (vector sizes, negative volumes).
  int ConstraintClass = 0;
  /// The offending node or edge.
  ir::NodeId Node = ir::InvalidNode;
  ir::EdgeId Edge = -1;
  /// How far past the constraint, in nl (or relative for ratios).
  double Magnitude = 0.0;
  std::string Message;
};

/// Verification knobs.
struct VerifyOptions {
  /// Absolute slack allowed on volume constraints, in nl.
  double ToleranceNl = 1e-6;
  /// Relative slack allowed on mix ratios (the §4.2 rounding tolerance);
  /// 0.02 accepts the paper's "below 2%" rounding error.
  double RatioTolerance = 1e-9;
  /// Check class 6 (output balance) with this band; negative disables.
  double OutputBalancePct = -1.0;
};

/// Checks \p V against every constraint class for \p G on \p Spec.
/// Returns all violations (empty = the assignment is valid).
std::vector<Violation> verifyAssignment(const ir::AssayGraph &G,
                                        const VolumeAssignment &V,
                                        const MachineSpec &Spec,
                                        const VerifyOptions &Opts = {});

/// Renders violations one per line.
std::string violationsToString(const std::vector<Violation> &Violations);

} // namespace aqua::core

#endif // AQUA_CORE_VERIFY_H
