//===- aqua/core/MachineSpec.h - PLoC hardware parameters --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware parameters volume management must respect: maximum capacity
/// of reservoirs and functional units, and the minimum transport resolution
/// ("least count") imposed by the metering pumps. Defaults follow Section
/// 4.2 of the paper: 100 nl capacity, 100 pl least count (PDMS valves).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_MACHINESPEC_H
#define AQUA_CORE_MACHINESPEC_H

#include <cstdint>

namespace aqua::core {

/// Resource budget used when checking that cascading / static replication
/// still fits on the device (Section 3.4.2: "the replicated code may exceed
/// the PLoC's resources. In such cases, compilation fails.").
struct ResourceLimits {
  /// Input reservoirs available for replicated input fluids.
  int MaxInputs = 64;
  /// Total operations the device can stage (generous default).
  int MaxNodes = 1 << 20;
};

/// Hardware description of the target programmable lab-on-a-chip.
struct MachineSpec {
  /// Maximum capacity of any reservoir or functional unit, in nanoliters.
  double MaxCapacityNl = 100.0;
  /// Minimum transport resolution (least count), in nanoliters.
  double LeastCountNl = 0.1;
  ResourceLimits Limits;

  /// Number of least-count units in the maximum capacity.
  std::int64_t capacityUnits() const {
    return static_cast<std::int64_t>(MaxCapacityNl / LeastCountNl + 0.5);
  }

  /// Converts nanoliters to (unrounded) least-count units.
  double toUnits(double Nl) const { return Nl / LeastCountNl; }
};

} // namespace aqua::core

#endif // AQUA_CORE_MACHINESPEC_H
