//===- aqua/core/VolumeAssignment.h - Volume assignment result ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of volume management: an absolute volume for every node and
/// every edge of an assay DAG, in nanoliters (RVol) and, after rounding, in
/// integer least-count units (IVol).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_VOLUMEASSIGNMENT_H
#define AQUA_CORE_VOLUMEASSIGNMENT_H

#include "aqua/core/MachineSpec.h"
#include "aqua/ir/AssayGraph.h"

#include <string>
#include <vector>

namespace aqua::core {

/// Rational (RVol) volume assignment, indexed by node/edge slot ids of the
/// graph it was computed for (dead slots hold zero).
struct VolumeAssignment {
  std::vector<double> NodeVolumeNl;
  std::vector<double> EdgeVolumeNl;

  /// The smallest dispensed (edge) volume, in nl; +inf if no live edges.
  double minDispenseNl(const ir::AssayGraph &G) const;

  /// The largest node volume, in nl.
  double maxNodeVolumeNl(const ir::AssayGraph &G) const;

  /// True if every live edge is at least \p Spec's least count (with a
  /// small tolerance) and no node exceeds capacity.
  bool feasible(const ir::AssayGraph &G, const MachineSpec &Spec) const;

  /// Tabular rendering for logs and benches.
  std::string str(const ir::AssayGraph &G) const;
};

/// Integer (IVol) volume assignment in least-count units, produced by
/// rounding an RVol assignment (see Rounding.h).
struct IntegerAssignment {
  std::vector<std::int64_t> NodeUnits;
  std::vector<std::int64_t> EdgeUnits;
  /// Largest relative mix-ratio error introduced by rounding, in percent.
  double MaxRatioErrorPct = 0.0;
  /// Mean relative mix-ratio error across all mix in-edges, in percent.
  double MeanRatioErrorPct = 0.0;
  /// True if rounding pushed some edge below one unit or some node above
  /// capacity.
  bool Underflow = false;
  bool Overflow = false;
};

} // namespace aqua::core

#endif // AQUA_CORE_VOLUMEASSIGNMENT_H
