//===- aqua/core/DagSolve.h - Linear-time volume assignment ------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DAGSolve, the paper's linear-complexity solver for Rational Volume
/// Management (Section 3.3, Figure 4).
///
/// DAGSolve over-constrains RVol with (1) fixed relative output proportions
/// and (2) flow conservation at intermediate nodes, which reduces volume
/// assignment to two linear passes:
///
///   * a backward pass, in reverse topological order, computing each node's
///     and edge's `Vnorm` -- its volume relative to the outputs (outputs
///     get Vnorm 1, a node's Vnorm is the sum of its out-edge Vnorms, an
///     in-edge's Vnorm is its ratio times the node's input Vnorm);
///   * a forward dispensing pass that pins the largest Vnorm to the machine
///     capacity and scales everything else proportionally.
///
/// Excess nodes created by cascading are special-cased exactly as in
/// Section 3.4.1: their Vnorm derives from the already-computed source
/// node instead of the backward recurrence.
///
/// A result is infeasible when some dispensed edge falls below the least
/// count; the Figure 6 hierarchy then falls back to LP (see Manager.h).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_DAGSOLVE_H
#define AQUA_CORE_DAGSOLVE_H

#include "aqua/core/MachineSpec.h"
#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Rational.h"

#include <optional>
#include <vector>

namespace aqua::core {

/// Optional knobs for DAGSolve.
struct DagSolveOptions {
  /// Per-output relative proportions. Outputs not listed get weight 1.
  /// (The paper: "the Vnorms could be set to arbitrary values to produce
  /// outputs in arbitrary ratios"; equal weights are the default.)
  std::vector<std::pair<ir::NodeId, Rational>> OutputWeights;

  /// If set, dispensing pins this node's Vnorm to PinnedVolumeNl instead of
  /// pinning the maximum Vnorm to the machine capacity. Used by the §3.5
  /// loop strategy ("pick the output node with the smallest Vnorm and
  /// assign it the programmer-specified volume").
  std::optional<ir::NodeId> PinnedNode;
  double PinnedVolumeNl = 0.0;
};

/// Result of a DAGSolve run: exact relative volumes plus the dispensed
/// absolute assignment.
struct DagSolveResult {
  /// True when every dispensed edge meets the least count and no node
  /// exceeds capacity.
  bool Feasible = false;

  /// Exact relative volumes, indexed by slot id (dead slots zero).
  /// NodeVnorm is the node's *output* volume; a node's input-side relative
  /// volume is NodeVnorm / OutFraction.
  std::vector<Rational> NodeVnorm;
  std::vector<Rational> EdgeVnorm;

  /// The largest input-side Vnorm and its node (pinned to capacity by the
  /// default dispensing).
  Rational MaxVnorm = Rational(0);
  ir::NodeId MaxVnormNode = ir::InvalidNode;

  /// Absolute volumes in nanoliters.
  VolumeAssignment Volumes;

  /// Smallest dispensed edge volume and where it occurs.
  double MinDispenseNl = 0.0;
  ir::EdgeId MinEdge = -1;
};

/// Runs DAGSolve on \p G (which must verify()) for machine \p Spec.
DagSolveResult dagSolve(const ir::AssayGraph &G, const MachineSpec &Spec,
                        const DagSolveOptions &Opts = {});

/// Computes only the backward (Vnorm) pass; fills NodeVnorm/EdgeVnorm and
/// MaxVnorm. Partition handling (§3.5) runs this at compile time and defers
/// dispensing to run time.
void computeVnorms(const ir::AssayGraph &G, const DagSolveOptions &Opts,
                   DagSolveResult &Result);

/// Dispenses absolute volumes given Vnorms: every node/edge gets
/// `Vnorm * NlPerVnorm` nanoliters. Returns the assignment; the caller
/// checks feasibility.
VolumeAssignment dispenseVolumes(const ir::AssayGraph &G,
                                 const DagSolveResult &Vnorms,
                                 double NlPerVnorm);

/// The input-side relative volume of \p N: what the functional unit holds
/// while the operation runs (output Vnorm divided by the yield fraction).
Rational nodeInputVnorm(const ir::AssayGraph &G, ir::NodeId N,
                        const DagSolveResult &Vnorms);

} // namespace aqua::core

#endif // AQUA_CORE_DAGSOLVE_H
