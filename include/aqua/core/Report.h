//===- aqua/core/Report.h - Volume-management reporting ----------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable accounting of a volume assignment: per-fluid production,
/// consumption, deliberate excess and leftover, plus assay-level totals.
/// `aquac --report` prints this; it is how an assay developer sees where
/// the reagents go and what cascading costs in discarded fluid.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_REPORT_H
#define AQUA_CORE_REPORT_H

#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"

#include <string>
#include <vector>

namespace aqua::core {

/// Accounting for one fluid (one producing node).
struct FluidUsage {
  ir::NodeId Node = ir::InvalidNode;
  std::string Name;
  int Uses = 0;             ///< Non-excess consumers.
  double ProducedNl = 0.0;  ///< The node's output volume.
  double ConsumedNl = 0.0;  ///< Volume drawn by real uses.
  double ExcessNl = 0.0;    ///< Deliberately discarded (cascade excess).
  double LeftoverNl = 0.0;  ///< Produced - consumed - excess (residue).
  /// ConsumedNl / ProducedNl in [0,1]; 1 for fully-used fluids.
  double utilization() const {
    return ProducedNl > 0.0 ? ConsumedNl / ProducedNl : 0.0;
  }
};

/// Assay-level volume accounting.
struct VolumeReport {
  std::vector<FluidUsage> Fluids;
  double TotalInputNl = 0.0;   ///< Drawn from input ports.
  double TotalOutputNl = 0.0;  ///< Delivered at leaves (senses/products).
  double TotalExcessNl = 0.0;  ///< Cascade discards.
  double TotalLeftoverNl = 0.0;

  /// Tabular rendering.
  std::string str() const;
};

/// Builds the report for assignment \p V over \p G.
VolumeReport buildVolumeReport(const ir::AssayGraph &G,
                               const VolumeAssignment &V);

} // namespace aqua::core

#endif // AQUA_CORE_REPORT_H
