//===- aqua/core/Cascading.h - Extreme-ratio cascading -----------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cascaded mixing for extreme mix ratios (Section 3.4.1, Figure 7).
///
/// A mix ratio beyond what the hardware's least-count/capacity range can
/// meter in one step is split into a cascade: `A:B = 1:99` becomes
/// `C = A:B 1:9` followed by `C:B 1:9`, with 9/10 of the intermediate C
/// deliberately discarded through an Excess node. The discarded fraction
/// is known a priori, which is what lets DAGSolve (whose flow-conservation
/// constraint otherwise forbids excess production) handle cascades.
///
/// Stage boundaries are chosen as integer part counts so all edge fractions
/// stay exact rationals; when the ratio total is a perfect k-th power the
/// stages come out equal (1:999 with three stages gives the paper's three
/// 1:9 mixes).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_CASCADING_H
#define AQUA_CORE_CASCADING_H

#include "aqua/core/MachineSpec.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

#include <cstdint>
#include <vector>

namespace aqua::core {

/// Computes cascade stage boundaries for a mix with reduced integer parts
/// \p Small : \p Large, using \p Stages stages. Returns the cumulative part
/// counts a_0=Small < a_1 < ... < a_Stages = Small+Large; stage i mixes the
/// previous intermediate (a_{i-1} parts) with the large fluid
/// (a_i - a_{i-1} parts). Boundaries are near-geometric so stage skews
/// balance, and exactly geometric (equal stages) when possible.
std::vector<std::int64_t> cascadeBoundaries(std::int64_t Small,
                                            std::int64_t Large, int Stages);

/// Result of cascading one mix.
struct CascadeInfo {
  /// The stage mix nodes, first to last; the last is the original node.
  std::vector<ir::NodeId> StageMixes;
  /// The excess nodes attached to the intermediates.
  std::vector<ir::NodeId> ExcessNodes;
};

/// Replaces two-input mix \p M with a \p Stages-stage cascade in place.
/// The original node id remains the final stage (out-edges untouched).
/// Fails if \p M is not a two-input mix, if any involved fluid is marked
/// NoExcess, or if the stage count cannot split the ratio.
Expected<CascadeInfo> cascadeMix(ir::AssayGraph &G, ir::NodeId M, int Stages);

/// Smallest stage count such that every stage's skew (large:small parts)
/// stays at or below \p MaxStageSkew, capped at \p MaxStages.
int chooseCascadeStages(std::int64_t Small, std::int64_t Large,
                        std::int64_t MaxStageSkew, int MaxStages);

/// The skew of a mix node: largest in-edge fraction over smallest.
Rational mixSkew(const ir::AssayGraph &G, ir::NodeId M);

/// Rewrites a k-input mix (k > 2) into a chain of two-input mixes with the
/// same final composition, combining the two smallest contributions first
/// (which concentrates the extremeness into one binary mix that cascading
/// can then split). Returns the intermediate mix nodes created; the
/// original node remains the final mix. Volumetrically exact: every
/// source's share of the final mixture is unchanged.
Expected<std::vector<ir::NodeId>> binarizeMix(ir::AssayGraph &G,
                                              ir::NodeId M);

} // namespace aqua::core

#endif // AQUA_CORE_CASCADING_H
