//===- aqua/core/Formulation.h - ILP/LP formulation of IVol/RVol -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's ILP/LP formulation (Section 3.2, Figure 3) from an
/// assay DAG. Six constraint classes over edge-volume and node-volume
/// variables:
///
///   1. minimum volume      -- every edge at least the least count;
///   2. maximum capacity    -- in-edge volumes of a node fit the hardware;
///   3. non-deficit         -- a fluid's uses don't exceed its volume;
///   4. ratio               -- in-edges in the assay's mix ratio;
///   5. node output-to-input-- output volume as a fraction of input;
///   6. output-to-output    -- (optional) outputs within a fixed percentage
///                             of each other, to avoid skewed solutions.
///
/// Objective: maximize the sum of output volumes. RVol solves this as an LP
/// in nanoliters; IVol keeps volumes in least-count units and requires
/// integrality (branch-and-bound).
///
/// The options can also add DAGSolve's two artificial constraints (flow
/// conservation and output equalization) for the Section 4.3 ablation,
/// where the paper shows LP remains ~60x slower than DAGSolve even with
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_FORMULATION_H
#define AQUA_CORE_FORMULATION_H

#include "aqua/core/MachineSpec.h"
#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/lp/Solver.h"

#include <vector>

namespace aqua::core {

/// Options controlling formulation construction.
struct FormulationOptions {
  /// Emit class-6 rows bounding every output within +-OutputBalancePct
  /// percent of a reference output.
  bool OutputBalance = true;
  double OutputBalancePct = 10.0;

  /// DAGSolve's artificial constraints, for the Section 4.3 ablation.
  bool FlowConservation = false; ///< Non-deficit rows become equalities.
  bool EqualOutputs = false;     ///< All outputs exactly equal.

  /// Per-node upper bounds in nl (constrained inputs of a partition whose
  /// available volume was measured at run time, Section 3.5).
  std::vector<std::pair<ir::NodeId, double>> NodeUpperBoundNl;

  /// Measurement unit for the model's volume variables, in nl. 1.0 gives
  /// the RVol LP in nanoliters; set to the least count (and require
  /// integrality) for the IVol ILP.
  double UnitNl = 1.0;
};

/// A built formulation: the LP model plus variable maps back to the DAG.
struct Formulation {
  lp::Model Model;
  /// Slot-indexed variable ids (-1 for dead slots).
  std::vector<lp::VarId> EdgeVar;
  std::vector<lp::VarId> NodeVar;
  /// Constraint count in the paper's accounting (classes 1-6, counting the
  /// per-edge minimum-volume constraints even though the solver carries
  /// them as variable bounds). This is the Table 2 "LP constraints" figure.
  int CountedConstraints = 0;
};

/// Builds the Figure 3 formulation for \p G on machine \p Spec.
Formulation buildVolumeModel(const ir::AssayGraph &G, const MachineSpec &Spec,
                             const FormulationOptions &Opts = {});

/// Converts an LP solution over \p F back to per-node/per-edge volumes in
/// nanoliters.
VolumeAssignment extractAssignment(const ir::AssayGraph &G,
                                   const Formulation &F,
                                   const lp::Solution &Sol,
                                   const FormulationOptions &Opts = {});

/// Result of solving RVol with the LP hierarchy level.
struct LPVolumeResult {
  lp::Solution Solution;
  VolumeAssignment Volumes;
  int CountedConstraints = 0;
  lp::SolveInfo Info;
};

/// Convenience: build + solve the RVol LP and extract volumes.
LPVolumeResult solveRVolLP(const ir::AssayGraph &G, const MachineSpec &Spec,
                           const FormulationOptions &FOpts = {},
                           const lp::SolverOptions &SOpts = {});

} // namespace aqua::core

#endif // AQUA_CORE_FORMULATION_H
