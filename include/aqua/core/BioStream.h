//===- aqua/core/BioStream.h - BioStream 1:1 mixing baseline -----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BioStream mixing model (Thies/Urbanski et al.), the baseline the
/// paper contrasts with in Section 3.4.1: "they allow mixing only in a
/// 1:1 ratio, and discard half of the output of the mix ... achieving
/// arbitrary mix ratios always requires cascading (except for 1:1
/// mixing), which executes on the slow fluid path, while our approach
/// requires cascading only for uncommon cases of extreme mix ratios."
///
/// A target concentration c of fluid A in B is approximated to k binary
/// digits as round(c * 2^k) / 2^k and realized as a chain of k 1:1 mixes
/// (interpolating serial dilution): processing the bits LSB-first, each
/// step mixes the running intermediate 1:1 with pure A (bit=1) or pure B
/// (bit=0), carrying half forward and discarding the other half.
///
/// This module rewrites a two-input mix into that form so the trade-off
/// is measurable on real DAGs: operation counts, discarded volume, and
/// concentration error versus AquaVol's variable-ratio mixing (exact, one
/// mix) and cascading (exact, only for extreme ratios).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_BIOSTREAM_H
#define AQUA_CORE_BIOSTREAM_H

#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

namespace aqua::core {

/// Outcome of a BioStream rewrite.
struct BioStreamInfo {
  /// 1:1 mix stages created (the final stage reuses the original node).
  std::vector<ir::NodeId> Stages;
  /// Excess nodes discarding half of each non-final stage.
  std::vector<ir::NodeId> ExcessNodes;
  /// The realized concentration of the small fluid (m / 2^Bits).
  Rational Achieved = Rational(0);
  /// The assay's exact target concentration.
  Rational Target = Rational(0);
  /// |Achieved - Target| / Target, in percent.
  double ErrorPct = 0.0;
};

/// Rewrites two-input mix \p M into a chain of 1:1 mixes approximating its
/// ratio to \p Bits binary digits. Requires 1 <= Bits <= 24 and a
/// two-input mix whose smaller fraction is representable (rounds to
/// neither 0 nor 1 at the chosen precision). Fails for NoExcess fluids:
/// the model is built on discarding.
Expected<BioStreamInfo> biostreamMix(ir::AssayGraph &G, ir::NodeId M,
                                     int Bits);

} // namespace aqua::core

#endif // AQUA_CORE_BIOSTREAM_H
