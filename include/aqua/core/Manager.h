//===- aqua/core/Manager.h - Volume-management hierarchy ---------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The volume-management hierarchy of Figure 6: try DAGSolve; fall back to
/// LP when DAGSolve's artificial constraints sacrifice a feasible solution;
/// when neither finds one, transform the DAG -- cascading for extreme mix
/// ratios, static replication for numerous uses -- and re-enter the
/// hierarchy. When everything fails the assay still runs: the runtime's
/// reactive regeneration (the BioStream baseline) is the backstop.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CORE_MANAGER_H
#define AQUA_CORE_MANAGER_H

#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Rounding.h"
#include "aqua/ir/AssayGraph.h"

#include <cstdint>
#include <memory>
#include <string>

namespace aqua::core {

/// Which level of the hierarchy produced the final assignment.
enum class SolveMethod {
  DagSolve, ///< The linear-time solver (Section 3.3).
  LP,       ///< The LP fallback on the Figure 3 formulation.
};

/// Options for the hierarchy driver.
struct ManagerOptions {
  /// Fall back to LP when DAGSolve underflows.
  bool UseLPFallback = true;
  /// Permit the cascading transform (Section 3.4.1).
  bool AllowCascading = true;
  /// Permit static replication (Section 3.4.2).
  bool AllowReplication = true;
  /// Upper bound on transform/re-solve iterations.
  int MaxIterations = 32;
  /// A mix whose large:small ratio exceeds this is "extreme" and gets
  /// cascaded; stage counts are chosen so each stage stays at or below it.
  std::int64_t CascadeSkewThreshold = 20;
  int MaxCascadeStages = 8;
  /// After a feasible solution is found, keep replicating the
  /// capacity-pinned node (raising every dispensed volume) until the mean
  /// least-count rounding error drops to this target (§4.2's "below 2%"),
  /// up to MaxErrorRefineSteps extra replications. Set the target negative
  /// to disable refinement.
  double TargetMeanRoundErrorPct = 2.0;
  int MaxErrorRefineSteps = 6;
  lp::SolverOptions LPOptions;
  DagSolveOptions DagOptions;
};

/// Result of running the hierarchy.
struct ManagerResult {
  bool Feasible = false;
  SolveMethod Method = SolveMethod::DagSolve;
  /// The (possibly transformed) graph the assignment refers to.
  ir::AssayGraph Graph;
  /// RVol volumes in nanoliters.
  VolumeAssignment Volumes;
  /// IVol assignment after least-count rounding.
  IntegerAssignment Rounded;
  int CascadesApplied = 0;
  int ReplicationsApplied = 0;
  double MinDispenseNl = 0.0;
  /// Human-readable decision trace.
  std::string Log;
  /// Optimal basis of the last RVol LP solve, captured when
  /// ManagerOptions::LPOptions.CaptureBasis was set and the hierarchy went
  /// through the LP level (null otherwise), together with the presolved
  /// shape hash it is valid under. A later request whose formulation
  /// presolves to the same shape -- same assay structure, different input
  /// volumes or capacity -- can hand this back via LPOptions.WarmStart and
  /// repair it with the dual simplex instead of solving cold.
  std::shared_ptr<const lp::Basis> LpBasis;
  std::uint64_t LpShapeHash = 0;
  /// True when the LP solve reused a warm basis supplied by the caller.
  bool LpWarmStarted = false;
};

/// Runs the Figure 6 hierarchy on a copy of \p G.
ManagerResult manageVolumes(const ir::AssayGraph &G, const MachineSpec &Spec,
                            const ManagerOptions &Opts = {});

} // namespace aqua::core

#endif // AQUA_CORE_MANAGER_H
