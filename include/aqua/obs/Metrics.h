//===- aqua/obs/Metrics.h - Thread-safe metrics registry ---------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, thread-safe metrics layer shared by every subsystem:
/// monotone counters, double-valued gauges, and fixed-bucket histograms,
/// collected in a registry that snapshots to JSON (`--metrics-out` on the
/// CLIs, `BENCH_*.json` dimensions in the benches).
///
/// Design rules, in order:
///
///  1. *Recording must be cheap enough to leave on in `aquad`.* Counter
///     and gauge updates are single relaxed atomic RMWs; a histogram
///     observation is one binary search over an immutable bound array plus
///     one relaxed increment. No locks, no allocation, no syscalls on the
///     record path.
///
///  2. *Instrument sites pay the name lookup once.* `counter()` /
///     `gauge()` / `histogram()` take a registry mutex and may allocate,
///     but the returned reference is stable for the registry's lifetime --
///     hot paths hoist it into a function-local static (see the
///     `met()`-style bundles in CompileService.cpp and BranchAndBound.cpp)
///     and touch only the atomic afterwards.
///
///  3. *Snapshots are consistent enough.* `json()` reads each atomic with
///     relaxed ordering; per-metric values are exact, cross-metric skew is
///     bounded by whatever was in flight during the read. That is the
///     right trade for monitoring (and the only one that keeps rule 1).
///
/// Metric names are flat dotted paths ("service.cache.hits"); the
/// well-known pipeline names are pre-registered by
/// `preregisterPipelineMetrics()` so a metrics export always carries the
/// full schema even for counters a particular run never touched.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_METRICS_H
#define AQUA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aqua::obs {

/// A monotone event counter. Relaxed increments; exact totals (atomic RMW
/// loses nothing, unlike racy `+=`).
class Counter {
public:
  void add(std::uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// A double-valued gauge: `set()` for level quantities (queue depth),
/// `add()` for accumulated physical quantities (nanoliters of waste).
/// `add()` is a CAS loop because pre-C++20-atomic toolchains lack
/// fetch_add on atomic<double>.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  void add(double X) {
    double Old = V.load(std::memory_order_relaxed);
    while (!V.compare_exchange_weak(Old, Old + X, std::memory_order_relaxed))
      ;
  }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// A fixed-bucket histogram. Bucket upper bounds are set at registration
/// and immutable afterwards; an implicit +inf bucket catches the tail.
/// Count, sum, and per-bucket tallies are all relaxed atomics, so
/// `observe()` from N threads is race-free and exact per cell (the
/// count/sum/bucket triple for one observation is not atomic as a group --
/// snapshot skew is bounded by in-flight observations, per the header
/// comment).
class Histogram {
public:
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Tally of bucket \p I (I == bounds().size() is the +inf bucket).
  std::uint64_t bucketCount(std::size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  void reset();

private:
  std::vector<double> Bounds; ///< Sorted, strictly increasing.
  std::unique_ptr<std::atomic<std::uint64_t>[]> Buckets; ///< Bounds.size()+1.
  std::atomic<std::uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
};

/// Default histogram bounds for wall-clock latencies, 10 us .. 10 s.
std::vector<double> defaultLatencyBucketsSec();

/// The registry: named counters/gauges/histograms with stable references.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Returns the named metric, creating it on first use. References stay
  /// valid for the registry's lifetime. Registering the same name twice
  /// returns the same object; a histogram's bounds are fixed by whoever
  /// registers it first.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds = {});

  /// Current counter values, sorted by name (for bench deltas and tests).
  std::map<std::string, std::uint64_t> counterValues() const;

  /// One consistent-enough JSON document of everything registered, keys
  /// sorted (see Metrics.cpp for the schema).
  std::string json() const;

  /// Writes json() to \p Path; false (with a warning on stderr) on I/O
  /// failure.
  bool writeJsonFile(const std::string &Path) const;

  /// Zeroes every value; registrations survive. For benches and tests.
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The process-global registry every subsystem instruments into.
MetricsRegistry &metrics();

/// Registers the documented pipeline metric names (service, lp, core, sim,
/// log) into \p R so exported JSON always carries the full schema. The
/// list doubles as the schema the golden test locks down.
void preregisterPipelineMetrics(MetricsRegistry &R = metrics());

} // namespace aqua::obs

#endif // AQUA_OBS_METRICS_H
