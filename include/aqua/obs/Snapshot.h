//===- aqua/obs/Snapshot.h - Live metrics snapshot writer --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live telemetry for a running daemon: a background thread periodically
/// serializes the global MetricsRegistry to
/// `<dir>/metrics.snap-<pid>.json` so external tools (`aquatop`) can watch
/// a live process instead of autopsying its exit dump.
///
/// Snapshot protocol (`aqua.metrics.snap.v1`): the file wraps the
/// unchanged `aqua.metrics.v1` registry document with process identity and
/// freshness:
///
///   { "schema": "aqua.metrics.snap.v1",
///     "pid": <os pid>, "seq": <monotone per-writer>,
///     "wallMicros": <Unix time of the snapshot>,
///     "metrics": { ...aqua.metrics.v1... } }
///
/// Writes are atomic against concurrent readers: the document is written
/// to `<path>.tmp` and `rename(2)`d over the target, so a reader opening
/// the path sees either the previous complete snapshot or the new complete
/// snapshot, never a torn prefix. Each process in a forked fleet writes
/// its own pid-keyed file; aggregation across files is the reader's job
/// (counters and histogram cells sum; gauges depend on the gauge).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_SNAPSHOT_H
#define AQUA_OBS_SNAPSHOT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace aqua::obs {

/// Writes one snapshot of the global registry to
/// `<Dir>/metrics.snap-<pid>.json` (temp + rename) with sequence number
/// \p Seq. False on I/O failure. Bumps `obs.snapshot.writes` /
/// `obs.snapshot.errors`.
bool writeMetricsSnapshot(const std::string &Dir, std::uint64_t Seq);

/// The snapshot path `writeMetricsSnapshot` targets for this process.
std::string metricsSnapshotPath(const std::string &Dir);

/// The background writer: start() spawns a thread that snapshots every
/// \p IntervalMs until stop() (or destruction), writing one final
/// snapshot on the way out so the file is current at exit.
class SnapshotWriter {
public:
  explicit SnapshotWriter(std::string Dir, unsigned IntervalMs = 1000);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter &) = delete;
  SnapshotWriter &operator=(const SnapshotWriter &) = delete;

  /// Spawns the writer thread; no-op when already running.
  void start();

  /// Stops and joins the writer, flushing one final snapshot. Safe to call
  /// repeatedly; called by the destructor.
  void stop();

  /// Snapshots written so far (including the final flush).
  std::uint64_t writes() const;

private:
  void run();

  std::string Dir;
  unsigned IntervalMs;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Stopping = false; ///< Guarded by Mutex.
  std::thread Worker;
  std::atomic<std::uint64_t> Seq{0}; ///< Written by the worker thread only.
};

} // namespace aqua::obs

#endif // AQUA_OBS_SNAPSHOT_H
