//===- aqua/obs/FlightRecorder.h - Per-request digest ring -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring of *request digests*: one compact record per completed
/// (or shed) CompileService request, carrying the trace id, phase
/// durations, cache outcome, and shed cause. Where the span tracer answers
/// "what did this process spend its time on", the flight recorder answers
/// "what happened to the last N requests" -- cheap enough to leave on in
/// production (one mutex push per request, no allocation beyond the name
/// string), dumped on demand (`aquad --flight-out`) and at exit.
///
/// The ring overwrites oldest-first; overwrites are counted and mirrored
/// to the `obs.flight.dropped` metric, and every recorded digest bumps
/// `service.request_digests`.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_FLIGHTRECORDER_H
#define AQUA_OBS_FLIGHTRECORDER_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace aqua::obs {

/// How the cache/single-flight pipeline resolved a request.
enum class RequestOutcome : std::uint8_t {
  Miss,  ///< Solved fresh (includes warm-miss donor repairs).
  Hit,   ///< L1 cache hit.
  HitL2, ///< Served from the persistent store, promoted to L1.
  Join,  ///< Coalesced onto an in-flight identical request.
  Shed,  ///< Rejected by admission control; see Cause.
};

/// Why a request was shed (RequestOutcome::Shed only).
enum class ShedCause : std::uint8_t {
  None,
  QueueFull,       ///< Bounced at submit: queue at MaxQueueDepth.
  DeadlineExpired, ///< Dropped at dequeue: deadline already passed.
};

const char *requestOutcomeName(RequestOutcome O);
const char *shedCauseName(ShedCause C);

/// One request's post-mortem record.
struct RequestDigest {
  std::uint64_t TraceId = 0;
  std::string Name; ///< Request name (assay/program identifier).
  RequestOutcome Outcome = RequestOutcome::Miss;
  ShedCause Cause = ShedCause::None;
  bool Ok = true; ///< False when compilation failed (or was shed).
  double QueueWaitSec = 0;
  double SolveSec = 0;   ///< Solve+codegen time (misses only).
  double LatencySec = 0; ///< Submit-to-completion wall time.
  std::uint64_t WallMicros = 0; ///< Completion wall-clock time (Unix us).
};

/// The bounded digest ring. Thread-safe; records unconditionally (the
/// gate, if any, is the caller's -- CompileService records always, the
/// cost is negligible next to a request).
class FlightRecorder {
public:
  explicit FlightRecorder(std::size_t Capacity = 256);

  /// The process-global recorder CompileService records into.
  static FlightRecorder &global();

  void record(RequestDigest D);

  std::size_t size() const;
  std::uint64_t recordedCount() const;
  std::uint64_t droppedCount() const;
  void clear();

  /// Held digests, oldest first.
  std::vector<RequestDigest> snapshot() const;

  /// JSON dump (`aqua.flight.v1`): header plus one object per digest,
  /// oldest first.
  std::string json() const;

  /// Writes json() to \p Path; false (with a warning on stderr) on I/O
  /// failure.
  bool writeJsonFile(const std::string &Path) const;

private:
  mutable std::mutex Mutex;
  std::vector<RequestDigest> Ring; ///< Capacity slots; Recorded % cap = head.
  std::size_t Capacity;
  std::uint64_t Recorded = 0; ///< Guarded by Mutex.
};

} // namespace aqua::obs

#endif // AQUA_OBS_FLIGHTRECORDER_H
