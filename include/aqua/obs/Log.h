//===- aqua/obs/Log.h - Leveled diagnostics ----------------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The leveled logging facility that replaces scattered raw stderr prints
/// in the libraries. One global threshold, settable programmatically or
/// via the AQUA_LOG environment variable (debug|info|warn|error|off);
/// default `warn`, so libraries are quiet unless something is actually
/// wrong.
///
/// The macros guard on a relaxed atomic level check before evaluating the
/// printf-style arguments, so a disabled log statement costs one load and
/// a predictable branch -- safe on the solver's hot paths.
///
///   AQUA_LOG_WARN("core", "hierarchy exhausted after %d iterations", N);
///
/// Lines go to stderr as `aqua[warn] core: ...` under a mutex (no torn
/// interleaving from service workers), and each emitted line bumps an
/// obs.log.<level> counter in the global metrics registry so an exported
/// metrics file shows how noisy a run was.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_LOG_H
#define AQUA_OBS_LOG_H

#include "aqua/support/StringUtils.h"

#include <atomic>
#include <string>

namespace aqua::obs {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Off = 4,
};

const char *logLevelName(LogLevel L);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive, the
/// documented spellings); anything else returns \p Fallback.
LogLevel parseLogLevel(const char *Text, LogLevel Fallback = LogLevel::Warn);

namespace detail {
extern std::atomic<int> ActiveLevel;
}

/// The current threshold (initialized once from AQUA_LOG).
LogLevel logLevel();

void setLogLevel(LogLevel L);

/// True when a message at \p L would be emitted. One relaxed load.
inline bool logEnabled(LogLevel L) {
  return static_cast<int>(L) >=
         detail::ActiveLevel.load(std::memory_order_relaxed);
}

/// Emits one formatted line; use the macros, which guard the formatting.
void logMessage(LogLevel L, const char *Subsystem, const std::string &Msg);

} // namespace aqua::obs

#define AQUA_LOG_AT(Level, Subsystem, ...)                                     \
  do {                                                                         \
    if (::aqua::obs::logEnabled(Level))                                        \
      ::aqua::obs::logMessage(Level, Subsystem,                                \
                              ::aqua::format(__VA_ARGS__));                    \
  } while (0)

#define AQUA_LOG_DEBUG(Subsystem, ...)                                         \
  AQUA_LOG_AT(::aqua::obs::LogLevel::Debug, Subsystem, __VA_ARGS__)
#define AQUA_LOG_INFO(Subsystem, ...)                                          \
  AQUA_LOG_AT(::aqua::obs::LogLevel::Info, Subsystem, __VA_ARGS__)
#define AQUA_LOG_WARN(Subsystem, ...)                                          \
  AQUA_LOG_AT(::aqua::obs::LogLevel::Warn, Subsystem, __VA_ARGS__)
#define AQUA_LOG_ERROR(Subsystem, ...)                                         \
  AQUA_LOG_AT(::aqua::obs::LogLevel::Error, Subsystem, __VA_ARGS__)

#endif // AQUA_OBS_LOG_H
