//===- aqua/obs/Timer.h - Wall-clock timing ----------------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one monotonic wall-clock timing primitive, shared by the Table 2
/// run-time experiments, the compilation service's latency accounting, and
/// the aqua/obs tracer. (Moved here from the old aqua/support/Timer.h, now
/// deleted.)
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_TIMER_H
#define AQUA_OBS_TIMER_H

#include <chrono>

namespace aqua::obs {

/// Measures elapsed wall-clock time from construction (or last reset()).
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates the lifetime of a scope into a `double` of seconds:
///
///   double SolveSec = 0.0;
///   { ScopedTimer T(SolveSec); solve(); }  // SolveSec += elapsed
///
/// Used for latency accounting where one running total absorbs many
/// scopes (the compilation service's per-stage timing).
class ScopedTimer {
public:
  explicit ScopedTimer(double &Sink) : Sink(Sink) {}
  ~ScopedTimer() { Sink += Timer.seconds(); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  /// Seconds elapsed so far in this scope (the sink is only updated at
  /// scope exit).
  double seconds() const { return Timer.seconds(); }

private:
  double &Sink;
  WallTimer Timer;
};

} // namespace aqua::obs

namespace aqua {
// Historical spelling: the timers predate aqua/obs and the whole codebase
// names them unqualified.
using obs::ScopedTimer;
using obs::WallTimer;
} // namespace aqua

#endif // AQUA_OBS_TIMER_H
