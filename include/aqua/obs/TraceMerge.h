//===- aqua/obs/TraceMerge.h - Stitch per-process trace shards ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges the per-process trace shards a multi-process run writes under
/// AQUA_TRACE_DIR (see Trace.h) into one Chrome/Perfetto trace.
///
/// Each shard's timestamps are microseconds on that process's private
/// steady-clock epoch; its `aquaShard` header records where that epoch
/// sits on the wall clock. The merge *re-anchors*: with MinEpoch the
/// earliest epoch across shards, every event moves to
/// `ts' = ts + (shardEpoch - MinEpoch)`, putting all shards on one shared
/// timeline (accurate to the processes' wall-clock agreement, i.e. exact
/// for a forked tree on one host).
///
/// Track layout: shard tracks (TracePid 1..3) are private per process, so
/// the merge gives each (process, track) pair its own Chrome pid,
/// `OsPid * 4 + (track - 1)`, and emits a process_name metadata record
/// naming it ("pid 4711 · aqua pipeline"). Flow ids pass through
/// unchanged -- they are unique across the process tree by construction
/// (newTraceId mixes the pid), so a request's 's' in the parent and 'f'
/// in a worker stitch into one arc spanning two pid tracks.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_TRACEMERGE_H
#define AQUA_OBS_TRACEMERGE_H

#include "aqua/support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace aqua::obs {

/// A stitched multi-process trace.
struct MergedTrace {
  /// The merged Chrome trace-event JSON document.
  std::string Json;
  /// Shards merged in.
  std::size_t ShardCount = 0;
  /// Sum of the shards' droppedEvents headers.
  std::uint64_t DroppedEvents = 0;
  /// Events in the merged document (excluding metadata records).
  std::size_t EventCount = 0;
};

/// Merges shard *documents* (the file contents, one string per shard) into
/// one trace. Events are re-anchored per the header algorithm above and
/// sorted by merged timestamp. Fails if any document does not parse or
/// lacks an `aquaShard` header.
Expected<MergedTrace> mergeShards(const std::vector<std::string> &ShardDocs);

/// The shard files under \p Dir (entries named `*.shard.json`), sorted;
/// fails when the directory cannot be read. File I/O lives here and in the
/// `aquatrace` tool -- mergeShards itself is pure so tests can feed it
/// in-memory (MemEnv-held) shards.
Expected<std::vector<std::string>> listShardPaths(const std::string &Dir);

} // namespace aqua::obs

#endif // AQUA_OBS_TRACEMERGE_H
