//===- aqua/obs/Trace.h - Span tracer with Chrome-trace export ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span-based tracer for the parse -> lower -> solve -> round -> codegen
/// -> simulate pipeline, exporting the Chrome trace-event JSON format that
/// chrome://tracing and Perfetto load directly.
///
///  * `AQUA_TRACE_SPAN("lp.solve")` opens an RAII span on the calling
///    thread; nested spans form the per-thread stack that renders as
///    flame-graph nesting (Chrome nests "X" events by timestamp/duration
///    per thread row). Timestamps come from one process-wide steady-clock
///    anchor, in microseconds.
///
///  * Tracing is *globally* gated by one relaxed atomic bool: when off,
///    a span construct is exactly `load(relaxed) + branch` and records
///    nothing -- cheap enough that the instrumentation stays compiled in
///    everywhere, including the B&B node loop (the perf-smoke CI job
///    holds this overhead under a fixed per-span budget).
///
///  * Recorded events land in a bounded in-process *ring buffer* (default
///    64Ki events, ~6 MiB): `aquad` can run with tracing on indefinitely
///    and an export shows the most recent window instead of an unbounded
///    heap. Overwritten events are counted, not silently lost -- and the
///    count is mirrored into `obs.trace.*` metrics so truncation shows up
///    in a metrics export, not just in the trace header.
///
///  * Besides wall-clock spans the tracer records *virtual-time* complete
///    events on a separate track (pid 2): the simulator lays out each
///    instruction on the simulated fluidic clock, so one trace shows the
///    compiler's microseconds next to the assay's wet-path seconds.
///
/// Round two adds *request-scoped causal tracing*:
///
///  * Spans can carry key/value `args` (rendered in the Perfetto detail
///    pane), and every span closed while a `RequestScope` is active
///    automatically carries the scope's 64-bit trace id as a `trace` arg
///    -- one grep (or one Perfetto query) finds every span of a request.
///
///  * Flow events (`flowBegin` / `flowEnd`, Chrome phases 's'/'f') draw
///    the connecting arc: the submitting thread begins a flow under the
///    request's trace id, the worker that picks the request up ends it,
///    and the trace renders one arrow across thread -- or, after a shard
///    merge, process -- tracks.
///
///  * With `AQUA_TRACE_DIR` set, tracing is force-enabled and each
///    process writes its ring as a *shard* (`trace-<pid>.shard.json`)
///    whose header carries the wall-clock time of the process's trace
///    epoch. `aquatrace merge` (aqua/obs/TraceMerge.h) re-anchors every
///    shard onto one wall-clock timeline and gives each process its own
///    pid track, so a forked `aquad --workers` fleet renders as one
///    coherent trace with request arcs crossing process boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_TRACE_H
#define AQUA_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aqua::obs {

/// Track ids (Chrome "pid") used by the exporters.
enum TracePid : std::uint32_t {
  /// Wall-clock spans of the compiler/service pipeline.
  PidPipeline = 1,
  /// Virtual-time events on the simulated fluidic clock.
  PidSimulated = 2,
  /// Virtual-time events of a fleet simulation (one row per chip).
  PidFleet = 3,
};

/// One span argument; the value is exported as a JSON string.
struct TraceArg {
  std::string Key;
  std::string Val;
};

/// One trace-event record. `Phase` follows the trace-event format: 'X' is
/// a complete (begin+duration) event, 'i' an instant, 's'/'f' a flow
/// begin/end bound by `FlowId`.
struct TraceEvent {
  std::string Name;
  const char *Cat = "aqua"; ///< Must point at a static string.
  char Phase = 'X';
  std::uint64_t TsMicros = 0;
  std::uint64_t DurMicros = 0;
  std::uint32_t Pid = PidPipeline;
  std::uint32_t Tid = 0;
  /// Flow-binding id for 's'/'f' events (exported as "id"); 0 elsewhere.
  std::uint64_t FlowId = 0;
  /// Key/value details, exported as the event's "args" object.
  std::vector<TraceArg> Args;
};

/// Bounded-memory event sink plus exporters.
class Tracer {
public:
  /// \p Capacity is the ring size in events (clamped to >= 16).
  explicit Tracer(std::size_t Capacity = 1 << 16);

  /// The process-global tracer the span macros record into.
  static Tracer &global();

  /// The master switch for the recording macros. Off by default; the
  /// AQUA_TRACE=1 or AQUA_TRACE_DIR environment variables or a
  /// `--trace-out` CLI flag turn it on.
  static bool enabled() {
    return Enabled.load(std::memory_order_relaxed);
  }
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Microseconds since the process-wide trace epoch (steady clock).
  static std::uint64_t nowMicros();

  /// Wall-clock microseconds (Unix time) corresponding to trace-epoch
  /// instant 0 -- the re-anchoring key the shard header carries. Computed
  /// from the current wall clock minus the steady-clock elapsed time, so
  /// shards written by different processes agree to NTP-level skew.
  static std::uint64_t wallMicrosAtEpoch();

  /// Small dense id of the calling thread (Chrome "tid"), assigned on
  /// first use.
  static std::uint32_t threadId();

  /// Appends one event, overwriting the oldest when the ring is full.
  void record(TraceEvent E);

  /// Records an instant event at the current wall clock on this thread.
  void instant(std::string Name, const char *Cat = "aqua");

  /// Records a complete event with explicit (possibly virtual) timing.
  void complete(std::string Name, const char *Cat, std::uint64_t TsMicros,
                std::uint64_t DurMicros, std::uint32_t Pid, std::uint32_t Tid);

  /// Records a flow begin ('s') / end ('f') at the current wall clock on
  /// this thread, bound by \p Id. Chrome draws one arrow per id from the
  /// 's' to the 'f', attached to the enclosing spans.
  void flowBegin(std::string Name, std::uint64_t Id, const char *Cat = "aqua");
  void flowEnd(std::string Name, std::uint64_t Id, const char *Cat = "aqua");

  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events ever recorded.
  std::uint64_t recordedCount() const;
  /// Events overwritten by ring wraparound.
  std::uint64_t droppedCount() const;
  void clear();

  /// Held events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// The full trace-event JSON document ({"traceEvents": [...], ...}),
  /// loadable by chrome://tracing and Perfetto.
  std::string json() const;

  /// One process's *shard* of a multi-process trace: json() plus an
  /// `aquaShard` header `{pid, epochWallMicros, droppedEvents}` that
  /// `aqua/obs/TraceMerge.h` uses to re-anchor this process's steady-clock
  /// timestamps onto the shared wall-clock timeline.
  std::string shardJson(std::uint32_t OsPid, std::uint64_t EpochWallMicros) const;

  /// Writes json() to \p Path; false (with a warning on stderr) on I/O
  /// failure.
  bool writeChromeTrace(const std::string &Path) const;

private:
  static std::atomic<bool> Enabled;

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Ring; ///< Capacity slots; Recorded % cap = head.
  std::size_t Capacity;
  std::uint64_t Recorded = 0; ///< Guarded by Mutex.
};

//===----------------------------------------------------------------------===//
// Request context
//===----------------------------------------------------------------------===//

/// A fresh 64-bit request trace id: unique across the threads and forked
/// processes of one run (mixes pid, a process-local counter, and the
/// clock), never 0.
std::uint64_t newTraceId();

/// The trace id of the request the calling thread is currently serving;
/// 0 when none. Spans closed while a scope is active carry this as their
/// `trace` arg.
std::uint64_t currentTraceId();

/// The splitmix64 finalizer behind the id derivations; pure, so two
/// processes mixing the same value get the same id.
std::uint64_t mixId(std::uint64_t X);

/// The deterministic per-(worker, slot) flow id for a cross-process
/// dispatch arc: a parent draws \p Seed (newTraceId()) *before* forking,
/// children inherit it, and both sides derive identical ids without IPC.
/// The parent emits the 's' under this id; the worker closes the 'f' and
/// serves the request under `mixId(dispatchFlowId(...)) | 1` so the
/// request's own trace id stays distinct from the arc's. Never 0.
std::uint64_t dispatchFlowId(std::uint64_t Seed, int Worker,
                             std::size_t Slot);

/// RAII: marks the calling thread as serving request \p Id for the scope's
/// lifetime (nestable; restores the previous id). Id 0 is a no-op scope.
class RequestScope {
public:
  explicit RequestScope(std::uint64_t Id);
  ~RequestScope();

  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

private:
  std::uint64_t Prev;
};

/// Convenience wrappers recording into the global tracer; no-ops when
/// tracing is disabled (one relaxed load).
inline void traceFlowBegin(const char *Name, std::uint64_t Id,
                           const char *Cat = "aqua") {
  if (Tracer::enabled())
    Tracer::global().flowBegin(Name, Id, Cat);
}
inline void traceFlowEnd(const char *Name, std::uint64_t Id,
                         const char *Cat = "aqua") {
  if (Tracer::enabled())
    Tracer::global().flowEnd(Name, Id, Cat);
}

//===----------------------------------------------------------------------===//
// Cross-process trace shards
//===----------------------------------------------------------------------===//

/// The AQUA_TRACE_DIR environment value, or null when unset.
const char *traceShardDir();

/// When AQUA_TRACE_DIR is set: enables tracing and registers an atexit
/// handler that writes this process's shard. Call early in process
/// drivers (daemons, benches); safe to call more than once, and a no-op
/// when the variable is unset. Forked children inherit the registration
/// and write their own shard (keyed by their own pid) -- clear the global
/// ring after fork if the parent's pre-fork events should not be
/// duplicated into the child's shard.
void initProcessTracing();

/// Writes the global tracer's shard to `AQUA_TRACE_DIR/trace-<pid>.shard.json`
/// now. Returns false when the variable is unset or the write fails. Safe
/// to call repeatedly (later writes overwrite the same file with a fresher
/// snapshot) -- `_exit` users must call this themselves since atexit
/// handlers will not run.
bool flushTraceShard();

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// RAII span: captures the start time at construction and records one
/// complete event into the global tracer at destruction. When tracing is
/// disabled at construction the destructor does nothing (a span that
/// straddles an enable records nothing -- half-open spans would lie).
/// While live, `arg()` attaches key/value details; a span closed under an
/// active RequestScope additionally carries the request's `trace` arg.
class SpanGuard {
public:
  /// \p Name must outlive the guard (string literals at every call site).
  explicit SpanGuard(const char *Name, const char *Cat = "aqua")
      : Name(Tracer::enabled() ? Name : nullptr), Cat(Cat),
        StartMicros(this->Name ? Tracer::nowMicros() : 0) {}

  ~SpanGuard() {
    if (Name)
      finish();
    delete Args;
  }

  SpanGuard(const SpanGuard &) = delete;
  SpanGuard &operator=(const SpanGuard &) = delete;

  /// Attaches one key/value detail to the span (last writer wins is NOT
  /// implemented; duplicate keys export both). No-op while tracing is
  /// disabled; \p Key must outlive the guard.
  void arg(const char *Key, std::string Val) {
    if (!Name)
      return;
    if (!Args)
      Args = new std::vector<TraceArg>();
    Args->push_back({Key, std::move(Val)});
  }
  void arg(const char *Key, std::uint64_t V) {
    if (Name)
      arg(Key, std::to_string(V));
  }
  void arg(const char *Key, int V) {
    if (Name)
      arg(Key, std::to_string(V));
  }

private:
  void finish();

  const char *Name;
  const char *Cat;
  std::uint64_t StartMicros;
  std::vector<TraceArg> *Args = nullptr; ///< Lazily allocated.
};

} // namespace aqua::obs

/// Opens a wall-clock span covering the rest of the enclosing scope.
#define AQUA_TRACE_SPAN_CONCAT2(A, B) A##B
#define AQUA_TRACE_SPAN_CONCAT(A, B) AQUA_TRACE_SPAN_CONCAT2(A, B)
#define AQUA_TRACE_SPAN(...)                                                   \
  ::aqua::obs::SpanGuard AQUA_TRACE_SPAN_CONCAT(AquaSpan_,                     \
                                                __LINE__)(__VA_ARGS__)

#endif // AQUA_OBS_TRACE_H
