//===- aqua/obs/Trace.h - Span tracer with Chrome-trace export ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span-based tracer for the parse -> lower -> solve -> round -> codegen
/// -> simulate pipeline, exporting the Chrome trace-event JSON format that
/// chrome://tracing and Perfetto load directly.
///
///  * `AQUA_TRACE_SPAN("lp.solve")` opens an RAII span on the calling
///    thread; nested spans form the per-thread stack that renders as
///    flame-graph nesting (Chrome nests "X" events by timestamp/duration
///    per thread row). Timestamps come from one process-wide steady-clock
///    anchor, in microseconds.
///
///  * Tracing is *globally* gated by one relaxed atomic bool: when off,
///    a span construct is exactly `load(relaxed) + branch` and records
///    nothing -- cheap enough that the instrumentation stays compiled in
///    everywhere, including the B&B node loop (the perf-smoke CI job
///    holds this overhead under a fixed per-span budget).
///
///  * Recorded events land in a bounded in-process *ring buffer* (default
///    64Ki events, ~6 MiB): `aquad` can run with tracing on indefinitely
///    and an export shows the most recent window instead of an unbounded
///    heap. Overwritten events are counted, not silently lost.
///
///  * Besides wall-clock spans the tracer records *virtual-time* complete
///    events on a separate track (pid 2): the simulator lays out each
///    instruction on the simulated fluidic clock, so one trace shows the
///    compiler's microseconds next to the assay's wet-path seconds.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_OBS_TRACE_H
#define AQUA_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace aqua::obs {

/// Track ids (Chrome "pid") used by the exporters.
enum TracePid : std::uint32_t {
  /// Wall-clock spans of the compiler/service pipeline.
  PidPipeline = 1,
  /// Virtual-time events on the simulated fluidic clock.
  PidSimulated = 2,
  /// Virtual-time events of a fleet simulation (one row per chip).
  PidFleet = 3,
};

/// One trace-event record. `Phase` follows the trace-event format: 'X' is
/// a complete (begin+duration) event, 'i' an instant.
struct TraceEvent {
  std::string Name;
  const char *Cat = "aqua"; ///< Must point at a static string.
  char Phase = 'X';
  std::uint64_t TsMicros = 0;
  std::uint64_t DurMicros = 0;
  std::uint32_t Pid = PidPipeline;
  std::uint32_t Tid = 0;
};

/// Bounded-memory event sink plus exporters.
class Tracer {
public:
  /// \p Capacity is the ring size in events (clamped to >= 16).
  explicit Tracer(std::size_t Capacity = 1 << 16);

  /// The process-global tracer the span macros record into.
  static Tracer &global();

  /// The master switch for the recording macros. Off by default; the
  /// AQUA_TRACE=1 environment variable or a `--trace-out` CLI flag turns
  /// it on.
  static bool enabled() {
    return Enabled.load(std::memory_order_relaxed);
  }
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Microseconds since the process-wide trace epoch (steady clock).
  static std::uint64_t nowMicros();

  /// Small dense id of the calling thread (Chrome "tid"), assigned on
  /// first use.
  static std::uint32_t threadId();

  /// Appends one event, overwriting the oldest when the ring is full.
  void record(TraceEvent E);

  /// Records an instant event at the current wall clock on this thread.
  void instant(std::string Name, const char *Cat = "aqua");

  /// Records a complete event with explicit (possibly virtual) timing.
  void complete(std::string Name, const char *Cat, std::uint64_t TsMicros,
                std::uint64_t DurMicros, std::uint32_t Pid, std::uint32_t Tid);

  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events ever recorded.
  std::uint64_t recordedCount() const;
  /// Events overwritten by ring wraparound.
  std::uint64_t droppedCount() const;
  void clear();

  /// Held events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// The full trace-event JSON document ({"traceEvents": [...], ...}),
  /// loadable by chrome://tracing and Perfetto.
  std::string json() const;

  /// Writes json() to \p Path; false (with a warning on stderr) on I/O
  /// failure.
  bool writeChromeTrace(const std::string &Path) const;

private:
  static std::atomic<bool> Enabled;

  mutable std::mutex Mutex;
  std::vector<TraceEvent> Ring; ///< Capacity slots; Recorded % cap = head.
  std::size_t Capacity;
  std::uint64_t Recorded = 0; ///< Guarded by Mutex.
};

/// RAII span: captures the start time at construction and records one
/// complete event into the global tracer at destruction. When tracing is
/// disabled at construction the destructor does nothing (a span that
/// straddles an enable records nothing -- half-open spans would lie).
class SpanGuard {
public:
  /// \p Name must outlive the guard (string literals at every call site).
  explicit SpanGuard(const char *Name, const char *Cat = "aqua")
      : Name(Tracer::enabled() ? Name : nullptr), Cat(Cat),
        StartMicros(this->Name ? Tracer::nowMicros() : 0) {}

  ~SpanGuard() {
    if (Name)
      finish();
  }

  SpanGuard(const SpanGuard &) = delete;
  SpanGuard &operator=(const SpanGuard &) = delete;

private:
  void finish();

  const char *Name;
  const char *Cat;
  std::uint64_t StartMicros;
};

} // namespace aqua::obs

/// Opens a wall-clock span covering the rest of the enclosing scope.
#define AQUA_TRACE_SPAN_CONCAT2(A, B) A##B
#define AQUA_TRACE_SPAN_CONCAT(A, B) AQUA_TRACE_SPAN_CONCAT2(A, B)
#define AQUA_TRACE_SPAN(...)                                                   \
  ::aqua::obs::SpanGuard AQUA_TRACE_SPAN_CONCAT(AquaSpan_,                     \
                                                __LINE__)(__VA_ARGS__)

#endif // AQUA_OBS_TRACE_H
