//===- aqua/lang/Lower.h - AST to Assay DAG lowering -------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis and lowering from the assay AST to the Assay DAG.
///
/// Dry (integer) variables are evaluated at compile time and FOR loops are
/// fully unrolled (Section 3.5: "Loops with statically-known number of
/// iterations can be unrolled that many times and handled by DAGSolve") --
/// the enzyme assay's dilution ratios (1:inhibitor_diluent) become the
/// concrete 1:1, 1:9, 1:99, 1:999 series this way. Fluids that are used
/// but never produced are the assay's input fluids and become Input nodes.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LANG_LOWER_H
#define AQUA_LANG_LOWER_H

#include "aqua/ir/AssayGraph.h"
#include "aqua/lang/AST.h"
#include "aqua/support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace aqua::lang {

/// A SENSE statement's destination, kept for code generation (the AIS
/// `sense.OD sensor, Result` operand).
struct SenseRecord {
  ir::NodeId Node;
  /// Flattened result variable, e.g. "RESULT[1][2][3]".
  std::string ResultName;
};

/// The product of lowering: the DAG plus the metadata code generation
/// needs.
struct LoweredAssay {
  std::string Name;
  ir::AssayGraph Graph;
  /// Input nodes in first-use order (AIS `input sN, ipN` emission order).
  std::vector<ir::NodeId> Inputs;
  std::vector<SenseRecord> Senses;
};

/// Lowers a parsed program. Reports semantic errors (undeclared names,
/// array bounds, non-positive ratios, reuse of waste streams, ...) with
/// source lines.
Expected<LoweredAssay> lowerAssay(const Program &P);

/// Convenience: parse + lower.
Expected<LoweredAssay> compileAssay(std::string_view Source);

} // namespace aqua::lang

#endif // AQUA_LANG_LOWER_H
