//===- aqua/lang/Parser.h - Assay language parser ----------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the assay language.
///
/// Grammar sketch (terminals in caps, `--` comments handled by the lexer):
///
///   program    := ASSAY id START stmt* END
///   stmt       := fluid decls ';' | VAR decls ';'
///               | ref '=' (mix | dryexpr) ';'
///               | mix ';' | separate ';' | incubate ';'
///               | concentrate ';' | sense ';'
///               | FOR id FROM expr TO expr START stmt* ENDFOR
///   mix        := MIX ref (AND ref)+ (IN RATIOS expr (':' expr)+)? FOR expr
///   separate   := (SEPARATE|LCSEPARATE) ref MATRIX id USING id FOR expr
///                 INTO id AND id
///   incubate   := INCUBATE ref AT expr FOR expr
///   concentrate:= CONCENTRATE ref AT expr FOR expr
///   sense      := SENSE (OPTICAL|FLUORESCENCE) ref INTO ref
///   ref        := 'it' | id ('[' expr ']')*
///
/// Semicolons may be omitted immediately before END/ENDFOR (Figure 10a's
/// final statement does this).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LANG_PARSER_H
#define AQUA_LANG_PARSER_H

#include "aqua/lang/AST.h"
#include "aqua/support/Error.h"

#include <string_view>

namespace aqua::lang {

/// Parses assay source text into an AST. Diagnostics carry line:column.
Expected<Program> parseAssay(std::string_view Source);

} // namespace aqua::lang

#endif // AQUA_LANG_PARSER_H
