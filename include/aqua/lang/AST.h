//===- aqua/lang/AST.h - Assay language AST ----------------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the assay language. The language separates
/// "wet" fluid operations (MIX, SEPARATE, INCUBATE, CONCENTRATE, SENSE)
/// from "dry" integer bookkeeping (assignments, loop arithmetic), mirroring
/// the AquaCore split between the fluidic datapath and electronic control.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LANG_AST_H
#define AQUA_LANG_AST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace aqua::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A dry (integer) expression: literals, scalar/array variable references,
/// and the four arithmetic operators. Evaluated at compile time during
/// loop unrolling.
struct Expr {
  enum class Kind { Number, VarRef, BinOp };
  Kind K = Kind::Number;
  int Line = 0;

  std::int64_t Value = 0;        ///< Number.
  std::string Name;              ///< VarRef.
  std::vector<ExprPtr> Indices;  ///< VarRef subscripts.
  char Op = 0;                   ///< BinOp: one of + - * /.
  ExprPtr Lhs, Rhs;
};

/// A reference to a fluid: `it` (the previous statement's product), a named
/// fluid, or an element of a fluid array.
struct FluidRef {
  bool IsIt = false;
  std::string Name;
  std::vector<ExprPtr> Indices;
  int Line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One statement. A single tagged struct keeps the frontend compact; only
/// the fields of the active kind are populated.
struct Stmt {
  enum class Kind {
    FluidDecl,
    VarDecl,
    DryAssign,
    Mix,
    Separate,
    Incubate,
    Concentrate,
    Sense,
    For,
    If,
  };
  Kind K = Kind::FluidDecl;
  int Line = 0;

  /// FluidDecl / VarDecl: declared names with optional array dimensions.
  struct Decl {
    std::string Name;
    std::vector<std::int64_t> Dims;
  };
  std::vector<Decl> Decls;

  /// DryAssign: Target = Value.
  FluidRef Target;
  ExprPtr Value;

  /// Mix: optional result binding, 2+ operands, optional ratios (default
  /// all-1), mixing duration.
  std::optional<FluidRef> MixResult;
  std::vector<FluidRef> Operands;
  std::vector<ExprPtr> Ratios;
  ExprPtr Seconds;

  /// Separate / Incubate / Concentrate / Sense input fluid.
  FluidRef Input;

  /// Separate: LC (chromatography) vs AF (affinity); matrix and pusher
  /// fluids; output bindings.
  bool IsLC = false;
  std::string MatrixName;
  std::string UsingName;
  std::string EffluentName;
  std::string WasteName;

  /// Incubate / Concentrate temperature.
  ExprPtr Temp;

  /// Separate / Concentrate: optional programmer yield hint
  /// "YIELD p OF q" (Section 3.5) -- the output is expected to be p/q of
  /// the input, making the operation's volume statically known.
  ExprPtr YieldNum, YieldDen;

  /// Sense: flavor ("OD" or "FL") and result variable.
  std::string SenseFlavor;
  FluidRef SenseInto;

  /// For loop: unrolled at compile time.
  std::string LoopVar;
  ExprPtr From, To;
  std::vector<StmtPtr> Body;

  /// If statement: Cond is a dry expression evaluated at compile time
  /// (non-zero selects Body, zero selects ElseBody), or the `?` marker for
  /// a run-time-unknown condition (UnknownCond), in which case both paths
  /// are conservatively included for volume purposes (Section 3.5).
  ExprPtr Cond;
  bool UnknownCond = false;
  std::vector<StmtPtr> ElseBody;
};

/// A parsed assay.
struct Program {
  std::string Name;
  std::vector<StmtPtr> Stmts;
};

} // namespace aqua::lang

#endif // AQUA_LANG_AST_H
