//===- aqua/lang/Lexer.h - Assay language lexer ------------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the assay specification language of Section 4.1 ("We
/// define a simple high-level language to specify the assays. Our syntax is
/// similar to the specification format used in conventional assays.").
/// Keywords follow the paper's upper-case style (MIX, SEPARATE, ...);
/// `--` introduces a comment to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LANG_LEXER_H
#define AQUA_LANG_LEXER_H

#include "aqua/support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::lang {

/// Token kinds of the assay language.
enum class TokenKind {
  Identifier,
  Integer,
  // Keywords.
  KwAssay,
  KwStart,
  KwEnd,
  KwFluid,
  KwVar,
  KwMix,
  KwAnd,
  KwIn,
  KwRatios,
  KwFor,
  KwSense,
  KwOptical,
  KwFluorescence,
  KwInto,
  KwSeparate,
  KwLCSeparate,
  KwMatrix,
  KwUsing,
  KwIncubate,
  KwConcentrate,
  KwAt,
  KwFrom,
  KwTo,
  KwEndFor,
  KwYield,
  KwOf,
  KwIf,
  KwElse,
  KwEndIf,
  KwIt,
  // Punctuation and operators.
  Semicolon,
  Comma,
  Colon,
  Equals,
  LBracket,
  RBracket,
  Plus,
  Minus,
  Star,
  Slash,
  Question,
  Eof,
};

/// Returns a printable name for \p K (used in diagnostics).
const char *tokenKindName(TokenKind K);

/// A lexed token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  std::int64_t IntValue = 0;
  int Line = 0;
  int Col = 0;
};

/// Tokenizes \p Source. Fails on unknown characters or malformed numbers;
/// the diagnostic carries the line/column.
Expected<std::vector<Token>> tokenize(std::string_view Source);

} // namespace aqua::lang

#endif // AQUA_LANG_LEXER_H
