//===- aqua/service/RequestKey.h - Canonical compile-request key -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solve-cache key: a 128-bit fingerprint over everything that can
/// change the output of the compile pipeline (parse -> lower -> manage ->
/// codegen) -- the canonical structure of the assay DAG (insertion-order
/// independent, see ir/Canonical.h), every `MachineSpec` field, every
/// `ManagerOptions` field (including nested LP and DAGSolve options), and
/// the codegen `MachineLayout`.
///
/// `DagSolveOptions` refers to nodes by id (`OutputWeights`, `PinnedNode`);
/// ids are an insertion-order accident, so they are translated through the
/// canonical node hashes before hashing -- two structurally identical
/// requests that name the same *logical* node key identically, and requests
/// that pin different logical nodes never collide.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SERVICE_REQUESTKEY_H
#define AQUA_SERVICE_REQUESTKEY_H

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/ir/Canonical.h"

namespace aqua::service {

/// Fingerprints a full compile request given the graph's canonical form
/// (compute it once with `ir::canonicalize` and reuse it here).
ir::Fingerprint requestFingerprint(const ir::CanonicalForm &Canon,
                                   const core::MachineSpec &Spec,
                                   const core::ManagerOptions &Opts,
                                   const codegen::MachineLayout &Layout);

/// Convenience overload that canonicalizes \p G internally.
ir::Fingerprint requestFingerprint(const ir::AssayGraph &G,
                                   const core::MachineSpec &Spec,
                                   const core::ManagerOptions &Opts = {},
                                   const codegen::MachineLayout &Layout = {});

/// The *structure* key: the request fingerprint with the pure-volume
/// inputs masked out -- `MachineSpec::MaxCapacityNl` and
/// `DagSolveOptions::PinnedVolumeNl`. Two requests that differ only in
/// those produce different artifacts (different volumes) but identical LP
/// *structure*: same formulation rows, terms, and objective, different
/// right-hand sides and bounds. The compile service keys its warm-start
/// donor index on this, so a cache miss can repair a same-structure
/// sibling's optimal basis with the dual simplex instead of solving cold.
/// Uses a distinct domain tag, so a structure key never collides with a
/// request fingerprint.
ir::Fingerprint structureFingerprint(const ir::CanonicalForm &Canon,
                                     const core::MachineSpec &Spec,
                                     const core::ManagerOptions &Opts,
                                     const codegen::MachineLayout &Layout);

} // namespace aqua::service

#endif // AQUA_SERVICE_REQUESTKEY_H
