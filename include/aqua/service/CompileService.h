//===- aqua/service/CompileService.h - Concurrent compile service -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable, thread-safe assay-compilation service: the single-shot
/// `parse -> lower -> manage -> codegen` pipeline of `examples/aquac.cpp`
/// turned into a long-lived server object that accepts batches of requests
/// and exploits the redundancy of real workloads (the same glucose panel
/// submitted plate after plate) three ways:
///
///  1. a fixed-size worker pool drains a shared queue, so independent
///     requests compile concurrently;
///  2. a sharded LRU cache (SolveCache.h) memoizes the full compile
///     artifact under the canonical request fingerprint (RequestKey.h);
///  3. *single-flight* deduplication: when N requests with the same
///     fingerprint are in flight at once, one worker solves and the other
///     N-1 block on its result instead of re-solving -- the cold-cache
///     thundering herd collapses to a single solve.
///
/// Production shaping: `ServiceOptions::StoreDir` attaches a persistent
/// content-addressed solve store (aqua/store) as a write-through L2 under
/// the LRU, so a restarted service re-serves prior solves from disk and N
/// service processes on one directory share each other's work. Admission
/// control sheds work instead of queueing unboundedly: a request past
/// `ServiceOptions::MaxQueueDepth` is rejected at submit (unless
/// high-priority), and a request whose deadline expired while it waited is
/// shed at dequeue without running the pipeline. Shed responses carry a
/// distinct `CompileResponse::Shed` reason so clients can tell overload
/// from failure.
///
/// Thread-safety contract: every public method may be called from any
/// thread. Artifacts are immutable and shared by `shared_ptr<const>`;
/// callers must not mutate through the pointer. The destructor drains
/// outstanding work and joins the workers.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SERVICE_COMPILESERVICE_H
#define AQUA_SERVICE_COMPILESERVICE_H

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/ir/Canonical.h"
#include "aqua/service/SolveCache.h"
#include "aqua/store/SolveStore.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace aqua::service {

/// One unit of work: an assay (as source text or a pre-lowered DAG) plus
/// the hardware and solver configuration to compile it for.
struct CompileRequest {
  /// Label echoed into the response; not part of the cache key.
  std::string Name;
  /// Assay-language source; used when Graph is null.
  std::string Source;
  /// Pre-lowered DAG; takes precedence over Source when set. Shared so a
  /// batch of repeats does not copy the graph per request.
  std::shared_ptr<const ir::AssayGraph> Graph;
  core::MachineSpec Spec;
  core::ManagerOptions Manage;
  codegen::MachineLayout Layout;
  /// Absolute deadline on the obs::Tracer::nowMicros() clock; 0 means
  /// none. A request whose deadline has passed when a worker dequeues it
  /// is shed (ShedReason::DeadlineExpired) without running the pipeline.
  std::uint64_t DeadlineMicros = 0;
  /// Exempt from queue-depth admission control, and enqueued ahead of
  /// normal work: under overload the service keeps accepting these.
  bool HighPriority = false;
  /// Request trace id for causal tracing (obs/Trace.h). 0 (the default)
  /// means submit assigns a fresh one; a caller that pre-assigns (e.g. a
  /// dispatcher in another process) makes the request's spans and flow
  /// arc join the caller's.
  std::uint64_t TraceId = 0;
};

/// Why a request was rejected without running the pipeline.
enum class ShedReason {
  None,            ///< Not shed.
  QueueFull,       ///< Rejected at submit: queue past MaxQueueDepth.
  DeadlineExpired, ///< Dropped at dequeue: deadline passed while queued.
};

/// Returns a short lower-case name for \p R ("none"/"queue_full"/...).
const char *shedReasonName(ShedReason R);

/// One compile outcome.
struct CompileResponse {
  /// Request label, echoed.
  std::string Name;
  /// False on front-end errors (parse/lower) and on deterministic
  /// pipeline failures (infeasible assignment, codegen exhaustion).
  bool Ok = false;
  std::string Error;
  /// Canonical request fingerprint (zero when the front end failed before
  /// a DAG existed).
  ir::Fingerprint Key;
  /// Served from the memoizing cache.
  bool CacheHit = false;
  /// The cache hit was satisfied by the persistent L2 store (a subset of
  /// CacheHit).
  bool CacheHitL2 = false;
  /// Joined an identical in-flight solve (single-flight).
  bool Deduplicated = false;
  /// Non-None when the request was shed by admission control; Ok is false
  /// and no artifact is attached.
  ShedReason Shed = ShedReason::None;
  /// End-to-end service latency for this request, seconds.
  double LatencySec = 0.0;
  /// The trace id the request ran under (assigned at submit when the
  /// caller left CompileRequest::TraceId at 0).
  std::uint64_t TraceId = 0;
  /// The compile artifact; null only when the front end failed.
  std::shared_ptr<const CompileArtifact> Artifact;
};

/// Service configuration.
struct ServiceOptions {
  /// Worker threads (clamped to >= 1).
  int Threads = 4;
  /// Master switch for the memoizing cache *and* single-flight dedup;
  /// off means every request runs the full pipeline (the baseline the
  /// throughput bench compares against).
  bool EnableCache = true;
  CacheConfig Cache;
  /// Directory of the persistent solve store to attach as a write-through
  /// L2 under the LRU; empty disables persistence. A store that fails to
  /// open is logged and skipped -- the service still runs, memory-only.
  std::string StoreDir;
  store::StoreOptions Store;
  /// Filesystem the store runs on; null means the real one. Tests inject
  /// store::MemEnv here to exercise persistence without touching disk.
  store::Env *StoreEnv = nullptr;
  /// Queue-depth admission budget: a normal-priority submit that would
  /// push the queue past this is shed with ShedReason::QueueFull. 0 means
  /// unbounded (no admission control).
  std::size_t MaxQueueDepth = 0;
  /// Start with the workers paused (see pause()). For tests that need a
  /// deterministically full queue.
  bool StartPaused = false;
  /// Warm-miss basis reuse: a cache miss whose *structure* key (the
  /// request fingerprint with MaxCapacityNl / PinnedVolumeNl masked, see
  /// RequestKey.h) matches an earlier artifact hands that artifact's
  /// optimal LP basis to the manager, which repairs it with the dual
  /// simplex instead of solving the RVol LP cold. Identical results,
  /// fewer pivots; volume sweeps over one assay amortize to near-hit
  /// cost.
  bool WarmMiss = true;
};

/// Aggregate service counters plus a snapshot of the cache counters.
struct ServiceStats {
  std::uint64_t Submitted = 0;
  std::uint64_t Completed = 0;
  std::uint64_t Failed = 0;
  std::uint64_t CacheHits = 0;
  /// Cache hits satisfied by the persistent L2 store.
  std::uint64_t CacheHitsL2 = 0;
  std::uint64_t SingleFlightJoins = 0;
  /// Requests whose canonical form was reused from the graph-identity
  /// memo instead of re-running WL canonicalization (the dominant cost of
  /// a cache hit). Only shared `CompileRequest::Graph` submissions can
  /// memo-hit.
  std::uint64_t CanonMemoHits = 0;
  /// Cache misses that reused a same-structure donor basis (warm-miss).
  std::uint64_t WarmMissHits = 0;
  /// Requests rejected by admission control, by reason.
  std::uint64_t ShedQueueFull = 0;
  std::uint64_t ShedDeadline = 0;
  std::uint64_t shedTotal() const { return ShedQueueFull + ShedDeadline; }
  /// Sum of per-request service latencies, seconds (ScopedTimer-fed).
  double TotalLatencySec = 0.0;
  /// Seconds spent actually solving (cache misses only).
  double SolveSec = 0.0;
  CacheStats Cache;

  std::string str() const;
};

/// The drain side of a batched submit (see
/// CompileService::submitBatchDrained): one handle for a whole batch.
/// Workers deposit responses into pre-sized slots lock-free (each request
/// owns a distinct slot) and only the *final* completion takes the mutex
/// and signals -- collecting N responses costs one wakeup instead of N
/// promise/future handoffs, which is what serialized the hit path at high
/// request rates.
class ResponseBatch {
public:
  ResponseBatch() = default;

  /// Blocks until every request in the batch has completed (or was shed)
  /// and returns the responses in request order. Call at most once; a
  /// default-constructed or already-taken handle returns empty.
  std::vector<CompileResponse> take();

  /// Number of requests in the batch.
  std::size_t size() const { return S ? S->Responses.size() : 0; }

private:
  friend class CompileService;
  struct State {
    std::vector<CompileResponse> Responses;
    /// Requests not yet completed. The last worker to decrement (1 -> 0)
    /// passes through the mutex and notifies; its acq_rel decrement makes
    /// every slot write visible to the waiter's acquire load.
    std::atomic<std::size_t> Remaining{0};
    std::mutex Mutex;
    std::condition_variable CV;
  };
  std::shared_ptr<State> S;
};

/// The concurrent assay-compilation service.
class CompileService {
public:
  explicit CompileService(const ServiceOptions &Options = {});
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Enqueues one request; the future resolves when a worker finishes it.
  /// Under admission control the future may already hold a shed response.
  std::future<CompileResponse> submit(CompileRequest Request);

  /// Enqueues a whole batch without blocking; one future per request, in
  /// request order. The batch endpoint: one lock acquisition and one
  /// wakeup for the lot. Admission control applies per request.
  std::vector<std::future<CompileResponse>>
  submitBatch(std::vector<CompileRequest> Batch);

  /// Enqueues a whole batch and returns one drain handle instead of N
  /// futures: workers write responses into pre-sized slots and only the
  /// last completion signals, so the response side costs one wakeup for
  /// the lot (the submit side already costs one lock + one wakeup).
  /// Admission control applies per request, exactly as in submitBatch.
  ResponseBatch submitBatchDrained(std::vector<CompileRequest> Batch);

  /// Enqueues a whole batch and blocks until every request is done.
  /// Responses are in request order. Implemented on the batched drain.
  std::vector<CompileResponse> compileBatch(std::vector<CompileRequest> Batch);

  /// Runs one request synchronously on the calling thread (still goes
  /// through cache and single-flight; deadline checked on entry).
  CompileResponse compileNow(const CompileRequest &Request);

  /// Stops workers from dequeueing (in-flight requests finish). Submits
  /// still enqueue -- with admission control they shed past the budget,
  /// which is how tests build a deterministically full queue.
  void pause();
  /// Resumes dequeueing.
  void resume();

  /// Current queue depth (jobs accepted but not yet dequeued).
  std::size_t queueDepth() const;

  ServiceStats stats() const;

  const SolveCache &cache() const { return Cache; }

  /// The attached persistent store; null when persistence is disabled.
  const store::SolveStore *store() const { return Store.get(); }

private:
  struct Job {
    CompileRequest Request;
    std::promise<CompileResponse> Promise;
    /// When set, the response goes into Batch->Responses[BatchIndex] with
    /// the batched-countdown protocol instead of through Promise.
    std::shared_ptr<ResponseBatch::State> Batch;
    std::size_t BatchIndex = 0;
    /// Trace-epoch submit time (obs::Tracer::nowMicros); the worker that
    /// dequeues the job turns it into the queue-wait histogram.
    std::uint64_t EnqueueMicros = 0;
  };
  /// Single-flight rendezvous for one fingerprint: the first arriving
  /// worker publishes the artifact here; later arrivals wait on it.
  struct Flight {
    std::promise<std::shared_ptr<const CompileArtifact>> Promise;
    std::shared_future<std::shared_ptr<const CompileArtifact>> Result;
  };

  void workerLoop();
  /// Delivers \p R for \p J: a slot write + countdown for batched jobs, a
  /// promise fulfilment otherwise.
  static void finishJob(Job &J, CompileResponse &&R);
  /// Returns the canonical form of \p G, reusing the memoized form when
  /// \p Shared identifies a graph canonicalized before (repeat
  /// submissions of one shared DAG -- the dominant hit-path cost).
  std::shared_ptr<const ir::CanonicalForm>
  canonicalForm(const std::shared_ptr<const ir::AssayGraph> &Shared,
                const ir::AssayGraph &G);
  /// Runs the pipeline for one admitted request. \p QueueWaitSec feeds the
  /// request digest; \p EndFlow ends the submit-side flow arc inside the
  /// request span (true only when submit began one, i.e. queued paths).
  CompileResponse process(const CompileRequest &Request,
                          double QueueWaitSec = 0.0, bool EndFlow = false);
  /// The uncached pipeline tail: manage + codegen on a lowered graph.
  /// \p StructKey, when non-null, keys the warm-start donor lookup (a
  /// same-structure sibling's optimal LP basis) and the publication of
  /// this solve's basis for future siblings. \p SolveSecOut, when
  /// non-null, receives the wall time of this solve.
  std::shared_ptr<const CompileArtifact>
  solveAndGenerate(const CompileRequest &Request, const ir::AssayGraph &G,
                   const ir::Fingerprint *StructKey = nullptr,
                   double *SolveSecOut = nullptr);
  /// Records the request's flight-recorder digest.
  static void recordDigest(const CompileRequest &Request,
                           const CompileResponse &R, double QueueWaitSec,
                           double SolveSec);
  /// Records \p Artifact's LP basis (if any) as the donor for its
  /// structure key.
  void publishDonor(const ir::Fingerprint &StructKey,
                    const CompileArtifact &Artifact);
  /// Builds the rejection response for a shed request.
  static CompileResponse shedResponse(const CompileRequest &Request,
                                      ShedReason Reason);

  ServiceOptions Options;
  SolveCache Cache;
  /// Persistent L2; attached to Cache when StoreDir is set and opens.
  std::unique_ptr<store::SolveStore> Store;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<Job> Queue;
  bool Paused = false;
  /// Workers parked in QueueCV.wait (maintained under QueueMutex).
  /// Producers skip the notify syscall entirely while every worker is
  /// busy -- a draining worker re-checks the queue before parking, so no
  /// wakeup is lost -- which keeps the no-cache hot path from serializing
  /// on futex traffic as the thread count grows.
  int IdleWorkers = 0;
  bool ShuttingDown = false;
  std::vector<std::thread> Workers;

  std::mutex FlightMutex;
  std::unordered_map<std::string, std::shared_ptr<Flight>> Flights;

  /// Warm-start donor index: structure key -> the most recent optimal LP
  /// basis solved under that structure (and the presolved-shape hash it
  /// is valid for). Bases are immutable shared snapshots, a few KB each;
  /// there is one entry per distinct assay structure, not per request.
  struct Donor {
    std::shared_ptr<const lp::Basis> Basis;
    std::uint64_t ShapeHash = 0;
  };
  std::mutex DonorMutex;
  std::unordered_map<std::string, Donor> Donors;

  /// Canonical-form memo keyed on graph *identity*: a fixed table of
  /// slots mapping a live `shared_ptr<const AssayGraph>` to its
  /// CanonicalForm. The weak_ptr guard makes reuse ABA-safe -- a slot is
  /// only trusted if the guarded graph is still alive *and* is the same
  /// object the request carries (a recycled address cannot satisfy both).
  /// Per-slot spin flags: repeat submissions of one graph contend only
  /// for a pointer-compare + shared_ptr copy.
  struct CanonSlot {
    mutable std::atomic_flag Lock = ATOMIC_FLAG_INIT;
    std::weak_ptr<const ir::AssayGraph> Guard;
    std::shared_ptr<const ir::CanonicalForm> Canon;
  };
  std::array<CanonSlot, 64> CanonMemo;

  std::atomic<std::uint64_t> Submitted{0};
  std::atomic<std::uint64_t> Completed{0};
  std::atomic<std::uint64_t> Failed{0};
  std::atomic<std::uint64_t> CacheHits{0};
  std::atomic<std::uint64_t> CacheHitsL2{0};
  std::atomic<std::uint64_t> SingleFlightJoins{0};
  std::atomic<std::uint64_t> CanonMemoHitCount{0};
  std::atomic<std::uint64_t> WarmMissHits{0};
  std::atomic<std::uint64_t> ShedQueueFull{0};
  std::atomic<std::uint64_t> ShedDeadline{0};
  std::atomic<double> TotalLatencySec{0.0};
  std::atomic<double> SolveSec{0.0};
};

} // namespace aqua::service

#endif // AQUA_SERVICE_COMPILESERVICE_H
