//===- aqua/service/SolveCache.h - Sharded memoizing solve cache -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded, byte- and entry-budgeted LRU cache of compile
/// artifacts, keyed on the canonical request fingerprint (see
/// RequestKey.h). Real PLoC deployments re-submit structurally identical
/// assays thousands of times (calibration reruns, plate after plate of the
/// same panel); the volume-management hierarchy is deterministic, so its
/// result can be memoized wholesale -- the managed graph, the volume
/// assignment, and the generated AIS program.
///
/// Sharding: the key space is split across `CacheConfig::Shards`
/// independently locked shards (the shard is chosen from the high bits of
/// the fingerprint, which are uniformly distributed). Budgets are divided
/// evenly among shards, so the entry budget should be a multiple of the
/// shard count for exact LRU semantics; use one shard when deterministic
/// whole-cache LRU order matters (tests do).
///
/// Values are immutable `shared_ptr<const CompileArtifact>`: a hit hands
/// out a reference to the cached artifact with no copy, and eviction never
/// invalidates an artifact a client still holds.
///
/// The in-memory LRU is the L1 of a two-level hierarchy: `attachStore()`
/// layers the cache over a persistent content-addressed solve store
/// (aqua/store) as a write-through L2. Inserts encode the artifact
/// (ArtifactCodec.h) and append it to the store; an L1 miss consults the
/// store and, on a hit, decodes and *promotes* the artifact into L1 without
/// writing it back. The store outlives the process, so a restarted daemon
/// re-serves every previously solved fingerprint without a cold LP solve,
/// and N daemons sharing one store directory share each other's solves.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SERVICE_SOLVECACHE_H
#define AQUA_SERVICE_SOLVECACHE_H

#include "aqua/codegen/AIS.h"
#include "aqua/core/Manager.h"
#include "aqua/ir/Canonical.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace aqua::store {
class SolveStore;
} // namespace aqua::store

namespace aqua::service {

/// The memoized product of one compile: everything downstream of the
/// canonical request key. Immutable once published to the cache.
struct CompileArtifact {
  /// False when the pipeline failed deterministically (infeasible volume
  /// assignment, codegen resource exhaustion); such failures are cached
  /// too -- re-solving an infeasible assay is as wasteful as re-solving a
  /// feasible one.
  bool Ok = false;
  /// Diagnostic when !Ok (the manager's decision log or codegen error).
  std::string Error;
  /// True when the assay went through volume management (no statically
  /// unknown volumes); false for relative-mode compiles.
  bool Managed = false;
  /// Hierarchy result; meaningful when Managed.
  core::ManagerResult VM;
  /// Metered per-edge volumes (nl) for VM.Graph; meaningful when Managed.
  core::VolumeAssignment Metered;
  /// The generated AIS program; meaningful when Ok.
  codegen::AISProgram Program;

  /// Rough heap footprint for the byte budget (strings + vectors; not
  /// exact, but monotone in the real cost).
  std::size_t approxBytes() const;
};

/// Cache sizing and sharding.
struct CacheConfig {
  /// Total entry budget across all shards (0 disables caching).
  std::size_t MaxEntries = 1024;
  /// Total approximate byte budget across all shards.
  std::size_t MaxBytes = std::size_t(256) << 20;
  /// Number of independently locked shards (clamped to >= 1).
  int Shards = 8;
};

/// Aggregate counters across shards. Monotone except Entries/Bytes.
struct CacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Insertions = 0;
  std::uint64_t Evictions = 0;
  /// L1 misses satisfied by the attached L2 store (a subset of Hits).
  std::uint64_t HitsL2 = 0;
  /// L2 payloads that failed to decode (version skew, corruption the
  /// store's checksums could not see) and were demoted to misses.
  std::uint64_t L2DecodeErrors = 0;
  std::size_t Entries = 0;
  std::size_t Bytes = 0;

  double hitRate() const {
    std::uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / Total : 0.0;
  }
};

/// Sharded LRU map from fingerprint to compile artifact.
class SolveCache {
public:
  explicit SolveCache(const CacheConfig &Config = {});

  /// Attaches \p Store as the write-through L2 (non-owning; pass nullptr
  /// to detach). Attach before serving traffic -- the pointer is read
  /// without synchronization.
  void attachStore(store::SolveStore *Store) { L2 = Store; }

  /// Returns the cached artifact or nullptr; a hit refreshes LRU recency.
  /// On an L1 miss with an L2 attached, consults the store and promotes a
  /// decoded artifact into L1 (without writing it back). If \p FromL2 is
  /// non-null it is set to true exactly when the hit came from the store.
  std::shared_ptr<const CompileArtifact> lookup(const ir::Fingerprint &Key,
                                                bool *FromL2 = nullptr);

  /// Publishes \p Value under \p Key (replacing any previous entry), then
  /// evicts least-recently-used entries until the shard is within its
  /// entry and byte budgets. Write-through: with an L2 attached the encoded
  /// artifact is also appended to the store (a store failure only drops
  /// persistence, never the L1 insert).
  void insert(const ir::Fingerprint &Key,
              std::shared_ptr<const CompileArtifact> Value);

  /// Aggregated counters (consistent per shard, not across shards).
  CacheStats stats() const;

  /// Drops all entries (counters are retained).
  void clear();

private:
  struct Entry {
    ir::Fingerprint Key;
    std::shared_ptr<const CompileArtifact> Value;
    std::size_t Bytes = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ir::Fingerprint &F) const {
      return static_cast<std::size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct KeyEq {
    bool operator()(const ir::Fingerprint &A, const ir::Fingerprint &B) const {
      return A == B;
    }
  };
  /// One shard: an LRU list (front = most recent) plus an index into it.
  struct Shard {
    mutable std::mutex Mutex;
    std::list<Entry> LRU;
    std::unordered_map<ir::Fingerprint, std::list<Entry>::iterator, KeyHash,
                       KeyEq>
        Index;
    std::size_t Bytes = 0;
    std::uint64_t Hits = 0, Misses = 0, Insertions = 0, Evictions = 0;
    std::uint64_t HitsL2 = 0, L2DecodeErrors = 0;
  };

  Shard &shardFor(const ir::Fingerprint &Key);
  void insertLocked(Shard &S, const ir::Fingerprint &Key,
                    std::shared_ptr<const CompileArtifact> Value);
  void evictOverBudgetLocked(Shard &S);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::size_t MaxEntriesPerShard;
  std::size_t MaxBytesPerShard;
  /// Optional persistent L2 (not owned). SolveStore is itself thread-safe.
  store::SolveStore *L2 = nullptr;
};

} // namespace aqua::service

#endif // AQUA_SERVICE_SOLVECACHE_H
