//===- aqua/service/SolveCache.h - Sharded memoizing solve cache -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded, byte- and entry-budgeted cache of compile
/// artifacts, keyed on the canonical request fingerprint (see
/// RequestKey.h). Real PLoC deployments re-submit structurally identical
/// assays thousands of times (calibration reruns, plate after plate of the
/// same panel); the volume-management hierarchy is deterministic, so its
/// result can be memoized wholesale -- the managed graph, the volume
/// assignment, and the generated AIS program.
///
/// The L1 hit path is lock-free for readers. Each shard is a fixed-size
/// open-addressing table of *versioned slots* read with a seqlock-style
/// optimistic protocol: a reader samples the slot version (odd = writer in
/// the slot), reads the key and state with relaxed loads, and re-checks the
/// version; a change means the reader raced a writer and retries. The
/// artifact handle itself is a `shared_ptr` copied under a per-slot spin
/// flag (a shared_ptr copy cannot be torn-read), so a hit costs one probe,
/// two version loads, and one refcount increment -- no shard mutex.
/// Writers (insert / evict / clear) still serialize on the shard mutex and
/// bump slot versions around every mutation.
///
/// Eviction is CLOCK-approximate rather than exact LRU: every hit sets the
/// slot's reference bit with a relaxed store (never a lock), and the
/// eviction hand sweeps the table clearing bits, evicting the first slot
/// found cold. A continuously re-referenced entry therefore survives an
/// insert storm, but the precise eviction *order* among cold entries is
/// approximate -- callers that asserted exact LRU order must assert CLOCK
/// reachability instead.
///
/// Values are immutable `shared_ptr<const CompileArtifact>`: a hit hands
/// out a reference to the cached artifact with no copy, and eviction never
/// invalidates an artifact a client still holds.
///
/// The in-memory table is the L1 of the hierarchy: `attachStore()` layers
/// the cache over a persistent content-addressed solve store (aqua/store)
/// as a write-through L2. Inserts encode the artifact (ArtifactCodec.h)
/// and append it to the store; an L1 miss consults a small *decoded
/// victim cache* first (artifacts evicted from L1 or previously decoded
/// from L2, kept in decoded form so repeat cross-process hits skip the
/// codec entirely), then the store via its zero-copy `getView` path. The
/// store outlives the process, so a restarted daemon re-serves every
/// previously solved fingerprint without a cold LP solve, and N daemons
/// sharing one store directory share each other's solves.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SERVICE_SOLVECACHE_H
#define AQUA_SERVICE_SOLVECACHE_H

#include "aqua/codegen/AIS.h"
#include "aqua/core/Manager.h"
#include "aqua/ir/Canonical.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace aqua::store {
class SolveStore;
} // namespace aqua::store

namespace aqua::service {

/// The memoized product of one compile: everything downstream of the
/// canonical request key. Immutable once published to the cache.
struct CompileArtifact {
  /// False when the pipeline failed deterministically (infeasible volume
  /// assignment, codegen resource exhaustion); such failures are cached
  /// too -- re-solving an infeasible assay is as wasteful as re-solving a
  /// feasible one.
  bool Ok = false;
  /// Diagnostic when !Ok (the manager's decision log or codegen error).
  std::string Error;
  /// True when the assay went through volume management (no statically
  /// unknown volumes); false for relative-mode compiles.
  bool Managed = false;
  /// Hierarchy result; meaningful when Managed.
  core::ManagerResult VM;
  /// Metered per-edge volumes (nl) for VM.Graph; meaningful when Managed.
  core::VolumeAssignment Metered;
  /// The generated AIS program; meaningful when Ok.
  codegen::AISProgram Program;

  /// Rough heap footprint for the byte budget (strings + vectors; not
  /// exact, but monotone in the real cost).
  std::size_t approxBytes() const;
};

/// Cache sizing and sharding.
struct CacheConfig {
  /// Total entry budget across all shards (0 disables caching).
  std::size_t MaxEntries = 1024;
  /// Total approximate byte budget across all shards.
  std::size_t MaxBytes = std::size_t(256) << 20;
  /// Number of independently locked shards (clamped to >= 1).
  int Shards = 8;
  /// Entry budget of the decoded-artifact victim cache that fronts the L2
  /// store (0 disables it). Evicted L1 entries and freshly decoded L2
  /// payloads land here in decoded form, so a repeat miss skips the codec.
  std::size_t DecodedEntries = 256;
};

/// Aggregate counters across shards. Monotone except Entries/Bytes.
struct CacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Insertions = 0;
  std::uint64_t Evictions = 0;
  /// L1 misses satisfied by the attached L2 store (a subset of Hits).
  std::uint64_t HitsL2 = 0;
  /// L2 payloads that failed to decode (version skew, corruption the
  /// store's checksums could not see) and were demoted to misses.
  std::uint64_t L2DecodeErrors = 0;
  /// Optimistic L1 reads that observed a concurrent writer and re-ran.
  std::uint64_t SeqlockRetries = 0;
  /// L1 misses satisfied by the decoded victim cache without touching the
  /// codec or the store (a subset of Hits, disjoint from HitsL2).
  std::uint64_t DecodedHits = 0;
  std::size_t Entries = 0;
  std::size_t Bytes = 0;

  double hitRate() const {
    std::uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / Total : 0.0;
  }
};

/// Sharded lock-free-read map from fingerprint to compile artifact.
class SolveCache {
public:
  explicit SolveCache(const CacheConfig &Config = {});

  /// Attaches \p Store as the write-through L2 (non-owning; pass nullptr
  /// to detach). Attach before serving traffic -- the pointer is read
  /// without synchronization.
  void attachStore(store::SolveStore *Store) { L2 = Store; }

  /// Returns the cached artifact or nullptr; a hit refreshes the slot's
  /// CLOCK reference bit. On an L1 miss, consults the decoded victim
  /// cache, then (with an L2 attached) the store, promoting any hit into
  /// L1 without writing it back. If \p FromL2 is non-null it is set to
  /// true exactly when the hit came from the store's encoded bytes.
  std::shared_ptr<const CompileArtifact> lookup(const ir::Fingerprint &Key,
                                                bool *FromL2 = nullptr);

  /// Publishes \p Value under \p Key (replacing any previous entry), then
  /// evicts CLOCK-cold entries until the shard is within its entry and
  /// byte budgets. Write-through: with an L2 attached the encoded
  /// artifact is also appended to the store (a store failure only drops
  /// persistence, never the L1 insert).
  void insert(const ir::Fingerprint &Key,
              std::shared_ptr<const CompileArtifact> Value);

  /// Aggregated counters (consistent per shard, not across shards).
  CacheStats stats() const;

  /// Drops all entries, including the decoded victim cache (counters are
  /// retained).
  void clear();

private:
  /// A relaxed counter striped across cache lines so concurrent readers
  /// on different cores do not contend on one hot line; aggregated only
  /// on snapshot.
  class StripedCounter {
  public:
    void add(std::uint64_t N = 1) {
      Cells[stripe()].V.fetch_add(N, std::memory_order_relaxed);
    }
    std::uint64_t total() const {
      std::uint64_t Sum = 0;
      for (const Cell &C : Cells)
        Sum += C.V.load(std::memory_order_relaxed);
      return Sum;
    }

  private:
    struct alignas(64) Cell {
      std::atomic<std::uint64_t> V{0};
    };
    static std::size_t stripe();
    std::array<Cell, 16> Cells;
  };

  /// One versioned slot of a shard's open-addressing table. Readers use
  /// the seqlock protocol on `Version`; `Value` is copied under the
  /// per-slot `ValueLock` spin flag; `EntryBytes` is writer-private
  /// (only ever touched under the shard mutex).
  struct alignas(64) Slot {
    /// Seqlock version: odd while a writer is mutating the slot. Writers
    /// bump it twice around every mutation.
    std::atomic<std::uint64_t> Version{0};
    std::atomic<std::uint64_t> KeyHi{0};
    std::atomic<std::uint64_t> KeyLo{0};
    /// Empty / Full / Tombstone (probe chains skip tombstones, stop at
    /// empties).
    std::atomic<std::uint8_t> State{0};
    /// CLOCK reference bit: set by hits (relaxed, lock-free), cleared by
    /// the sweeping eviction hand.
    std::atomic<std::uint8_t> Ref{0};
    /// Byte charge of the resident value; shard-mutex-private.
    std::size_t EntryBytes = 0;
    /// The artifact handle. Guarded by ValueLock, not the seqlock: a
    /// shared_ptr copy is not tearable-readable, so readers briefly spin
    /// here and then re-validate the version.
    std::shared_ptr<const CompileArtifact> Value;
    mutable std::atomic_flag ValueLock = ATOMIC_FLAG_INIT;
  };

  /// One shard: a fixed-size slot table written under Mutex, read
  /// optimistically without it.
  struct Shard {
    mutable std::mutex Mutex;
    std::vector<Slot> Slots;
    /// Writer-side occupancy and budget accounting (under Mutex).
    std::size_t Entries = 0;
    std::size_t Tombstones = 0;
    std::size_t Bytes = 0;
    /// CLOCK hand: next slot index the eviction sweep examines.
    std::size_t Hand = 0;
    /// Rare, writer-side counters (under Mutex).
    std::uint64_t Insertions = 0, Evictions = 0;
    std::uint64_t HitsL2 = 0, L2DecodeErrors = 0;
  };

  /// An entry displaced from L1, en route to the decoded victim cache.
  struct Victim {
    ir::Fingerprint Key;
    std::shared_ptr<const CompileArtifact> Value;
  };

  struct KeyHash {
    std::size_t operator()(const ir::Fingerprint &F) const {
      return static_cast<std::size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct KeyEq {
    bool operator()(const ir::Fingerprint &A, const ir::Fingerprint &B) const {
      return A == B;
    }
  };

  Shard &shardFor(const ir::Fingerprint &Key);
  /// Lock-free optimistic probe; returns the value on a hit (setting the
  /// CLOCK bit) or nullptr. Falls back to `lockedFind` after too many
  /// seqlock retries under heavy write contention.
  std::shared_ptr<const CompileArtifact> findOptimistic(Shard &S,
                                                        const ir::Fingerprint &Key);
  /// Probe under the shard mutex (writers excluded).
  std::shared_ptr<const CompileArtifact> lockedFind(Shard &S,
                                                    const ir::Fingerprint &Key);
  /// Insert/replace under the shard mutex. Entries evicted to make room
  /// are appended to \p Victims (handled by the caller after unlock, so
  /// the decoded-cache mutex is never taken under a shard mutex).
  void insertLocked(Shard &S, const ir::Fingerprint &Key,
                    std::shared_ptr<const CompileArtifact> Value,
                    std::vector<Victim> &Victims);
  void evictOverBudgetLocked(Shard &S, std::vector<Victim> &Victims);
  /// Rebuilds the slot table in place when tombstones crowd it (under the
  /// shard mutex; readers see transient misses, which are benign).
  void rebuildLocked(Shard &S);
  /// Copies Value out of / into a slot under its spin flag. setSlotValue
  /// returns the displaced value; both destroy nothing inside the spin
  /// window.
  static std::shared_ptr<const CompileArtifact> slotValue(const Slot &SL);
  static std::shared_ptr<const CompileArtifact>
  setSlotValue(Slot &SL, std::shared_ptr<const CompileArtifact> Value);
  /// Seqlock write window around a slot mutation (caller holds the shard
  /// mutex).
  static void beginSlotWrite(Slot &SL);
  static void endSlotWrite(Slot &SL);

  /// Moves displaced L1 entries into the decoded victim cache.
  void stashVictims(std::vector<Victim> &&Victims);
  /// Removes and returns the decoded-cache entry for Key, if present.
  std::shared_ptr<const CompileArtifact> takeDecoded(const ir::Fingerprint &Key);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::size_t MaxEntriesPerShard;
  std::size_t MaxBytesPerShard;
  std::size_t SlotMask = 0;

  /// Decoded-artifact victim cache fronting L2: FIFO-bounded, own mutex,
  /// touched only on the miss path.
  std::size_t DecodedCap = 0;
  std::mutex DecodedMutex;
  std::unordered_map<ir::Fingerprint, std::shared_ptr<const CompileArtifact>,
                     KeyHash, KeyEq>
      DecodedMap;
  std::deque<ir::Fingerprint> DecodedFifo;

  /// Hot read-path counters, striped and relaxed.
  StripedCounter HitCount, MissCount, SeqlockRetryCount, DecodedHitCount;

  /// Optional persistent L2 (not owned). SolveStore is itself thread-safe.
  store::SolveStore *L2 = nullptr;
};

} // namespace aqua::service

#endif // AQUA_SERVICE_SOLVECACHE_H
