//===- aqua/service/ArtifactCodec.h - Binary artifact codec ------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned binary codec between `CompileArtifact` and the payload
/// bytes the persistent solve store (aqua/store) holds: everything the
/// compile pipeline produced for one fingerprint -- the (possibly
/// transformed) managed graph with its exact slot layout, the RVol and IVol
/// assignments, and the generated AIS program -- flattened to a
/// self-delimiting little-endian byte string.
///
/// The encoding is *bit-faithful*: doubles are stored as their IEEE-754 bit
/// patterns, rationals as exact numerator/denominator pairs, and the assay
/// graph is replayed slot-for-slot (dead slots, adjacency-list order, and
/// all) so `encode(decode(encode(A))) == encode(A)` and a reloaded artifact
/// simulates identically to the in-memory one. The `store` oracle in
/// aqua/check holds the codec to exactly that property on every generated
/// program.
///
/// Decoding is defensive: it never trusts the input (the store's checksums
/// catch disk rot, but a version skew or a truncated payload must fail
/// cleanly, not crash), so every length and every graph/program index is
/// bounds-checked before use.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_SERVICE_ARTIFACTCODEC_H
#define AQUA_SERVICE_ARTIFACTCODEC_H

#include "aqua/service/SolveCache.h"
#include "aqua/support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace aqua::service {

/// Current payload format version. Bump on any layout change; decode
/// rejects versions it does not know.
///
/// v1: base layout.
/// v2: appends the RVol LP warm-start block (shape hash + optimal basis)
///     after the AIS program. v1 payloads still decode -- they simply
///     carry no basis, so a donor lookup against them degrades to a cold
///     solve, never an error.
inline constexpr std::uint32_t ArtifactCodecVersion = 2;

/// Serializes \p Artifact to the versioned binary payload.
std::string encodeArtifact(const CompileArtifact &Artifact);

/// Parses a payload produced by (any supported version of) encodeArtifact.
/// Fails cleanly on truncation, version skew, or out-of-range indices.
Expected<CompileArtifact> decodeArtifact(std::string_view Payload);

} // namespace aqua::service

#endif // AQUA_SERVICE_ARTIFACTCODEC_H
