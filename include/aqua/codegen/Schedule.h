//===- aqua/codegen/Schedule.h - Wet-path operation scheduling ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource-constrained list scheduling of assay operations onto the
/// PLoC's functional units — an extension beyond the paper (which executes
/// sequentially): AquaCore has several mixers/heaters/sensors, and
/// independent operations (e.g. the enzyme assay's 64 combination mixes)
/// can overlap on the slow fluidic datapath.
///
/// The scheduler is a classic critical-path list scheduler: operations
/// become ready when their producers finish, are prioritized by longest
/// path to a sink, and claim the earliest-free unit of their kind.
/// Transfers are charged per operand. The result reports the parallel
/// makespan next to the serial wet time, which the simulator's sequential
/// execution realizes.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CODEGEN_SCHEDULE_H
#define AQUA_CODEGEN_SCHEDULE_H

#include "aqua/codegen/Codegen.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

namespace aqua::codegen {

/// Scheduling knobs.
struct ScheduleOptions {
  MachineLayout Layout;
  /// Seconds charged per fluid transfer (same default as the simulator).
  double MoveSeconds = 2.0;
};

/// One scheduled operation.
struct ScheduledOp {
  ir::NodeId Node = ir::InvalidNode;
  double StartSec = 0.0;
  double EndSec = 0.0;
  LocKind UnitKind = LocKind::None;
  int UnitIndex = 0; ///< 1-based; 0 for operations needing no unit.
};

/// A complete schedule.
struct Schedule {
  std::vector<ScheduledOp> Ops;
  /// Parallel completion time.
  double MakespanSeconds = 0.0;
  /// Sum of all operation durations (the sequential baseline).
  double SerialSeconds = 0.0;
  /// Longest dependence chain ignoring resources (the lower bound).
  double CriticalPathSeconds = 0.0;

  double speedup() const {
    return MakespanSeconds > 0.0 ? SerialSeconds / MakespanSeconds : 1.0;
  }
  /// Gantt-style rendering, one line per operation.
  std::string str(const ir::AssayGraph &G) const;
};

/// Schedules \p G's operations. The graph must verify.
Expected<Schedule> scheduleAssay(const ir::AssayGraph &G,
                                 const ScheduleOptions &Opts = {});

} // namespace aqua::codegen

#endif // AQUA_CODEGEN_SCHEDULE_H
