//===- aqua/codegen/AIS.h - AquaCore Instruction Set -------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AquaCore Instruction Set (AIS) of Section 2.1 / Table 1, in the
/// structured form shared by the code generator, the textual emitter, and
/// the runtime simulator.
///
/// AIS's distinguishing features (Section 2.1): *storage-less operands* --
/// the operand space names functional units as well as reservoirs, so one
/// instruction can forward its output directly into the next unit -- and
/// *variable/relative volumes* -- most instructions operate on whatever
/// volume is present, and `move` optionally carries either a relative part
/// count or (after volume management) an absolute metered volume.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CODEGEN_AIS_H
#define AQUA_CODEGEN_AIS_H

#include "aqua/ir/AssayGraph.h"

#include <string>
#include <vector>

namespace aqua::codegen {

/// Kinds of addressable locations in the PLoC.
enum class LocKind {
  None,
  Reservoir, ///< s1, s2, ...
  InputPort, ///< ip1, ip2, ... (external fluid supply).
  Mixer,     ///< mixer1, ...
  Heater,    ///< heater1, ...
  Sensor,    ///< sensor1, ...
  Separator, ///< separator1, ... with matrix/pusher/out1 sub-ports.
  OutputPort ///< op1, ... (waste / product collection).
};

/// Sub-port of a separator.
enum class SubPort { None, Matrix, Pusher, Out1 };

/// An addressable location (the AIS operand id space).
struct Loc {
  LocKind Kind = LocKind::None;
  int Index = 0; ///< 1-based unit number.
  SubPort Sub = SubPort::None;

  bool valid() const { return Kind != LocKind::None; }
  friend bool operator==(const Loc &A, const Loc &B) {
    return A.Kind == B.Kind && A.Index == B.Index && A.Sub == B.Sub;
  }
  /// Renders as "mixer1", "separator2.out1", "s4", "ip3", ...
  std::string str() const;
};

/// AIS opcodes (Table 1 plus the separate.LC variant the paper adds for
/// glycomics).
enum class Opcode {
  Input,       ///< input sX, ipY          -- load an input fluid.
  Move,        ///< move dst, src[, rel]   -- transfer (relative volume).
  MoveAbs,     ///< move-abs dst, src, vol -- metered absolute transfer (nl).
  Mix,         ///< mix unit, seconds
  Incubate,    ///< incubate unit, temp, seconds
  SeparateAF,  ///< separate.AF unit, seconds
  SeparateLC,  ///< separate.LC unit, seconds
  SenseOD,     ///< sense.OD unit, result
  SenseFL,     ///< sense.FL unit, result
  Concentrate, ///< concentrate unit, temp, seconds
  Output,      ///< output opX, src        -- deliver to an output port.
};

/// Returns the AIS mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// One AIS instruction.
struct Instruction {
  Opcode Op = Opcode::Move;
  Loc Dst;
  Loc Src;
  /// Relative volume part count (Move) -- the paper's `move mixer1, s2, 4`.
  /// 0 means "move everything".
  std::int64_t RelParts = 0;
  /// Absolute metered volume in nl (MoveAbs); 0 on other opcodes.
  double VolumeNl = 0.0;
  double Seconds = 0.0;
  double TempC = 0.0;
  /// Human-readable annotation: the fluid name for Input, the result
  /// variable for senses.
  std::string Note;
  /// The assay-DAG node this instruction helps materialize; the runtime's
  /// regeneration engine re-executes by backward slice over this field.
  ir::NodeId Node = ir::InvalidNode;

  /// Renders one line of paper-style AIS text.
  std::string str() const;
};

/// A generated AIS program plus its resource usage.
struct AISProgram {
  std::vector<Instruction> Instrs;
  int UsedReservoirs = 0;
  int UsedMixers = 0;
  int UsedHeaters = 0;
  int UsedSensors = 0;
  int UsedSeparators = 0;
  int UsedInputPorts = 0;

  /// Renders the whole program in the style of Figures 9b/10b/11b.
  std::string str() const;
};

} // namespace aqua::codegen

#endif // AQUA_CODEGEN_AIS_H
