//===- aqua/codegen/Codegen.h - Assay DAG to AIS lowering --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation from the assay DAG to AIS, covering the conventional
/// back-end duties (Section 4.1: "The usual steps of parsing, intermediate
/// representation, register allocation, and code generation are similar to
/// those of a conventional compiler"):
///
///  * reservoir allocation -- reservoirs are the register file; values with
///    multiple pending uses are spilled to a reservoir, single-use values
///    are forwarded unit-to-unit through AIS's storage-less operands;
///  * functional-unit assignment (mixers/heaters/sensors/separators);
///  * volume operands -- either the paper's relative part counts
///    (Figures 9b/10b/11b) or metered absolute volumes coming from a
///    volume-management assignment.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CODEGEN_CODEGEN_H
#define AQUA_CODEGEN_CODEGEN_H

#include "aqua/codegen/AIS.h"
#include "aqua/core/VolumeAssignment.h"
#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"

namespace aqua::codegen {

/// Physical unit counts of the target device.
struct MachineLayout {
  int Reservoirs = 32;
  int Mixers = 2;
  int Heaters = 2;
  int Sensors = 2;
  int Separators = 2;
  int InputPorts = 32;
  int OutputPorts = 2;
};

/// How move instructions carry volumes.
enum class VolumeMode {
  /// Relative part counts straight from the assay's mix ratios (the
  /// paper's compiled code); the runtime translates them to
  /// implementation-specific volumes.
  Relative,
  /// Absolute metered volumes from a volume-management assignment.
  Managed,
};

/// Code generation options.
struct CodegenOptions {
  VolumeMode Mode = VolumeMode::Relative;
  /// Required in Managed mode: per-edge volumes (nl) for the same graph.
  const core::VolumeAssignment *Volumes = nullptr;
  /// Optional AIS introspection: when non-null, filled with one entry per
  /// emitted instruction holding the edge whose metered volume the
  /// instruction carries (managed move-abs), or -1 for every other
  /// instruction. Lets callers re-meter a generated program for a new
  /// volume assignment of the same graph without regenerating it (the
  /// bytecode VM's fleet driver patches volume tables this way).
  std::vector<ir::EdgeId> *EdgeOfInstr = nullptr;
};

/// Generates AIS for \p G. Fails when the graph exceeds the machine's
/// reservoirs/ports, or when Managed mode lacks a volume assignment.
Expected<AISProgram> generateAIS(const ir::AssayGraph &G,
                                 const MachineLayout &Layout = {},
                                 const CodegenOptions &Opts = {});

} // namespace aqua::codegen

#endif // AQUA_CODEGEN_CODEGEN_H
