//===- aqua/codegen/AISParser.h - AIS text parser -----------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for textual AIS, the inverse of AISProgram::str(). Lets programs
/// emitted by `aquac` (or written by hand, as in the paper's figures) be
/// loaded back and executed on the simulator. Instructions parsed from
/// text carry no DAG provenance, so regeneration is unavailable for them
/// unless the caller re-attaches node ids.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CODEGEN_AISPARSER_H
#define AQUA_CODEGEN_AISPARSER_H

#include "aqua/codegen/AIS.h"
#include "aqua/support/Error.h"

#include <string_view>

namespace aqua::codegen {

/// Parses textual AIS. Blank lines and `;` comments (full-line or
/// trailing) are ignored. Diagnostics carry the 1-based line number.
Expected<AISProgram> parseAIS(std::string_view Text);

/// Parses one location operand ("s4", "ip2", "mixer1", "separator2.out1",
/// "op1"). Returns an invalid Loc on malformed input.
Loc parseLoc(std::string_view Text);

} // namespace aqua::codegen

#endif // AQUA_CODEGEN_AISPARSER_H
