//===- aqua/vm/Fleet.h - Many-chip fleet simulation --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet simulation: N chip instances of one partitioned assay running
/// under a shared virtual-time event queue. The BioStream execution model
/// makes chips cheap and numerous; the systems behavior the paper's
/// Section 3.5 hints at -- reservoir contention, regeneration storms,
/// online re-management -- only appears when many chips share virtual time.
///
/// The assay is compiled ONCE into a `FleetImage`: the partition plan plus
/// one bytecode segment template per partition. Each chip then runs the
/// wave-ordered segments on its own interpreter state with its own RNG
/// stream, re-metering the shared template per chip by patching the VM's
/// volume table (codegen's EdgeOfInstr introspection maps each managed
/// move to the edge it meters, and a residue-shape check guards the one
/// volume-dependent codegen decision; mismatches fall back to a fresh
/// per-chip compile).
///
/// When a measured (statically-unknown, Section 3.5) volume comes up so
/// short that run-time dispensing underflows the least count -- where
/// `runtime::executePartitioned` gives up -- the fleet re-enters volume
/// management *online*: `core::manageVolumes` re-solves the partition's
/// subgraph with the constrained input pinned at the measured availability
/// (DagSolveOptions::PinnedNode), the re-managed volumes are patched into
/// the segment, and the VM resumes. If even the manager cannot find a
/// feasible assignment, the chip re-runs the producing partition (a
/// regeneration storm: fresh yield draw, fresh measurement) and retries.
///
/// Shared-reservoir contention models the fleet's common fluid supply:
/// each *external* input fluid has one refilling pool; a chip whose draw
/// finds the pool short stalls for the refill time. Contention charges
/// virtual seconds only -- per-chip volumes, regeneration counts and sense
/// readings are independent of thread count and of other chips.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_VM_FLEET_H
#define AQUA_VM_FLEET_H

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Partition.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/support/Error.h"
#include "aqua/vm/Bytecode.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace aqua::vm {

/// Fleet run options.
struct FleetOptions {
  int NumChips = 1;
  /// Worker threads draining the virtual-time queue. Per-chip volumes and
  /// counts are thread-count-invariant; contention wait times (and hence
  /// the makespan) depend on the interleaving for Threads > 1.
  int Threads = 1;

  /// Master seed; per-chip streams are derived deterministically.
  std::uint64_t Seed = 0x5eed;
  double MinSeparationYield = 0.2;
  double MaxSeparationYield = 0.7;
  double FixedSeparationYield = -1.0;
  double MoveSeconds = 2.0;
  int MaxRegenRetries = 8;
  bool EnableRegeneration = true;

  /// Section 3.5 online re-management on dispensing underflow (off
  /// reproduces runtime::executePartitioned's failure behavior).
  bool EnableOnlineRemanage = true;
  /// Re-manage / producing-partition-rerun attempts per partition before
  /// the chip fails.
  int MaxOnlineRetries = 4;

  /// Shared-reservoir contention for external input fluids.
  bool SharedReservoirs = false;
  double ReservoirCapacityNl = 10000.0;
  double ReservoirRefillNlPerSec = 50.0;
};

/// One partition's compiled segment template, shared by all chips.
struct FleetSegment {
  /// The partition's standalone subgraph (constrained inputs become
  /// ordinary input nodes).
  ir::AssayGraph SubG;
  std::vector<ir::NodeId> ToPlanNode;        ///< Subgraph id -> plan id.
  std::map<ir::NodeId, ir::NodeId> FromPlanNode;
  std::vector<ir::EdgeId> ToPlanEdge;

  /// Bytecode compiled from reference (nominal-yield) metered volumes.
  Program Prog;
  /// Per instruction: the subgraph edge its metered volume came from, or
  /// -1 (codegen EdgeOfInstr; 1:1 with Prog.Code).
  std::vector<ir::EdgeId> MeteredEdgeOfInstr;
  /// Residue-output decisions codegen baked into the template (see
  /// residueShape); a chip whose metered volumes flip any of them cannot
  /// patch and recompiles instead.
  std::vector<char> ResidueShape;
};

/// The shared compile-once image of a fleet run.
struct FleetImage {
  core::PartitionPlan Plan;
  core::MachineSpec Spec;
  /// Segments in wave order (one per plan partition).
  std::vector<FleetSegment> Segments;
  /// Names of the original assay's external input fluids (the ones a
  /// shared reservoir pool exists for; constrained-input stand-ins are
  /// on-chip and never contend).
  std::set<std::string> ExternalFluids;
};

/// One chip's outcome. The first eight fields mirror
/// runtime::PartitionRunResult and are bit-for-bit equal to
/// runtime::executePartitioned under the same seed when online
/// re-management is disabled and no contention model is attached.
struct ChipResult {
  bool Completed = false;
  std::string Error;
  int PartitionsExecuted = 0;
  double FluidSeconds = 0.0;
  int Regenerations = 0;
  std::vector<runtime::SenseReading> Senses;
  std::map<std::string, double> MeasuredNl;
  core::VolumeAssignment Volumes;

  std::uint64_t InstructionsExecuted = 0;
  double DeliveredNl = 0.0;
  double WasteNl = 0.0;
  /// Section 3.5 events on this chip.
  int OnlineRemanages = 0;
  int PartitionReruns = 0;
  /// Segments that could not patch the template and recompiled.
  int SegmentRecompiles = 0;
  /// Virtual seconds stalled on shared reservoirs.
  double ReservoirWaitSec = 0.0;
};

/// Aggregate fleet outcome.
struct FleetResult {
  int ChipsCompleted = 0;
  int ChipsFailed = 0;
  std::uint64_t InstructionsExecuted = 0;
  std::uint64_t Regenerations = 0;
  int OnlineRemanages = 0;
  int PartitionReruns = 0;
  int SegmentRecompiles = 0;
  /// Latest chip virtual finish time (fleet wet-clock makespan).
  double MakespanSec = 0.0;
  double TotalFluidSeconds = 0.0;
  double DeliveredNl = 0.0;
  double WasteNl = 0.0;
  double ReservoirWaitSec = 0.0;
  std::vector<ChipResult> Chips;
};

/// Builds the compile-once image: partition plan, per-partition subgraph
/// extraction, reference metering at the nominal yield, and bytecode
/// compilation. Fails when planning or code generation fails.
Expected<FleetImage> compileFleetImage(const ir::AssayGraph &G,
                                       const core::MachineSpec &Spec);

/// Runs one chip (no shared-reservoir contention). \p Seed plays the role
/// of runtime::SimOptions::Seed: yield stream Seed ^ 0xa55a, partition P
/// simulated with seed Seed + 17 * P. \p Chip labels the trace row
/// (PidFleet) when >= 0.
ChipResult runChip(const FleetImage &Image, const FleetOptions &Opts,
                   std::uint64_t Seed, int Chip = -1);

/// Runs the whole fleet under a shared virtual-time event queue.
FleetResult runFleet(const FleetImage &Image, const FleetOptions &Opts);

/// The volume-dependent residue-output decisions codegen makes for \p V
/// on \p G (one entry per node slot). Exposed for tests.
std::vector<char> residueShape(const ir::AssayGraph &G,
                               const core::VolumeAssignment &V);

} // namespace aqua::vm

#endif // AQUA_VM_FLEET_H
