//===- aqua/vm/Compiler.h - AIS to bytecode lowering -------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a verified AIS program into `vm::Program` bytecode: operand
/// resolution to dense slots, relative-volume planning (constant folding
/// of the fill-to-capacity policy), regeneration-slice binding from the
/// assay graph, and name interning. See Bytecode.h for the contract with
/// the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_VM_COMPILER_H
#define AQUA_VM_COMPILER_H

#include "aqua/ir/AssayGraph.h"
#include "aqua/support/Error.h"
#include "aqua/vm/Bytecode.h"

namespace aqua::vm {

/// Compilation inputs beyond the AIS program itself.
struct CompileOptions {
  /// Hardware parameters folded into planned volumes and quantization.
  core::MachineSpec Spec;
  /// The assay DAG the program was generated from; enables pre-bound
  /// regeneration slices (null reproduces the simulator's
  /// no-graph behavior: regeneration beyond input re-draws is impossible).
  const ir::AssayGraph *Graph = nullptr;
};

/// Compiles \p P. Fails on malformed programs (operand-space overflow,
/// more than 65534 distinct locations or input fluids).
Expected<Program> compile(const codegen::AISProgram &P,
                          const CompileOptions &Opts);

} // namespace aqua::vm

#endif // AQUA_VM_COMPILER_H
