//===- aqua/vm/Bytecode.h - Compiled AIS bytecode ----------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact register-based bytecode the `aqua/vm` interpreter executes.
///
/// `runtime::Simulator` re-derives everything per run: operand locations
/// resolve through string-free but map-backed `locKey` lookups, relative
/// move volumes are re-planned, and regeneration slices are recomputed from
/// the assay graph on every shortage. The bytecode moves all of that to
/// compile time:
///
///  * *resolved operands* -- every AIS `Loc` (reservoirs, functional units,
///    separator sub-ports, output ports) becomes a dense slot index into a
///    flat per-run state array, assigned in `locKey` order so run-time
///    iteration over slots reproduces the simulator's `std::map` walks
///    bit for bit;
///  * *constant-folded volumes* -- relative part-count moves are planned
///    once (the fill-to-capacity policy of the no-management baseline) and
///    every metered volume lands in one patchable `VolumeTable`, which is
///    also how the fleet driver re-enters a program with re-managed
///    volumes (Section 3.5) without recompiling;
///  * *pre-bound regeneration slices* -- the backward slice of every
///    potential writer is resolved to a sorted instruction-index range in
///    one shared jump table, so a shortage dispatches straight into the
///    replay loop;
///  * *interned names* -- input fluids and sense results become small ids;
///    compositions are dense per-fluid fraction rows instead of
///    string-keyed maps.
///
/// One bytecode instruction corresponds 1:1 to one AIS instruction (same
/// index), which keeps the interpreter's accounting (instruction counts,
/// error positions, trace rows) directly comparable with the tree-walking
/// simulator -- the `vm` differential oracle relies on this.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_VM_BYTECODE_H
#define AQUA_VM_BYTECODE_H

#include "aqua/codegen/AIS.h"
#include "aqua/core/MachineSpec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace aqua::vm {

/// Interpreter opcodes. Mix/Incubate (and the separate/sense flavors)
/// behave identically at the volume level but stay distinct where the
/// simulator's diagnostics distinguish them.
enum class Op : std::uint8_t {
  Input,       ///< Top up Dst from an unbounded external port.
  MoveVol,     ///< Metered transfer of VolumeTable[VolIdx] nl.
  MoveAll,     ///< Transfer everything at Src.
  Mix,         ///< Requires non-empty Dst; charges Seconds.
  Incubate,    ///< Same as Mix with its own diagnostic.
  Concentrate, ///< RNG-yield solvent removal on Dst.
  Separate,    ///< RNG-yield split Dst -> Out1; consumes matrix/pusher.
  Sense,       ///< Record a reading; consumes the sample.
  Output,      ///< Drain Src to on-chip waste.
};

/// Sentinel slot meaning "no operand".
inline constexpr std::uint16_t NoSlot = 0xffff;
/// Sentinel VolumeTable index meaning "no metered volume".
inline constexpr std::uint32_t NoVolume = 0xffffffffu;
/// Sentinel regeneration-slice offset meaning "no slice available".
inline constexpr std::int32_t NoSlice = -1;

/// One bytecode instruction (1:1 with the source AIS instruction).
struct Instr {
  Op Code = Op::MoveAll;
  /// The source AIS opcode, for trace names and diagnostics.
  codegen::Opcode Orig = codegen::Opcode::Move;
  std::uint16_t Dst = NoSlot;
  std::uint16_t Src = NoSlot;
  /// Separate only: effluent / matrix / pusher slots.
  std::uint16_t Out1 = NoSlot;
  std::uint16_t Matrix = NoSlot;
  std::uint16_t Pusher = NoSlot;
  /// Input: id into Program::FluidNames. Sense: id into Program::SenseNames.
  std::uint16_t Name = 0;
  /// MoveVol: index into the (per-run, patchable) volume table.
  std::uint32_t VolIdx = NoVolume;
  /// Offset/length of this instruction's regeneration replay slice in
  /// Program::RegenSlices; NoSlice when the producing slice is unknown.
  std::int32_t RegenBegin = NoSlice;
  std::int32_t RegenCount = 0;
  /// Operation seconds (mix/incubate/separate/concentrate).
  double Seconds = 0.0;
  /// True when Dst is an output port (delivery, unbounded capacity).
  bool DstIsOutput = false;
};

/// A compiled AIS program. Immutable after compilation and shareable
/// across threads and fleet chips; all mutable run state lives in the
/// interpreter (including each run's copy of VolumeTable).
struct Program {
  std::vector<Instr> Code;

  /// Initial metered volumes (nl); MoveVol instructions read the running
  /// copy, which the fleet driver patches at partition boundaries.
  std::vector<double> VolumeTable;

  /// Concatenated, sorted regeneration replay slices (instruction
  /// indices). `output` instructions stay in the slice and are skipped by
  /// the interpreter: the simulator checks for errors before skipping
  /// them, and that ordering is observable in whether a failed replay
  /// restores stashed unit contents.
  std::vector<std::int32_t> RegenSlices;

  /// Interned input-fluid names, sorted; composition rows index by this.
  std::vector<std::string> FluidNames;
  /// Sense reading names, in program order of the sense instructions.
  std::vector<std::string> SenseNames;

  /// Number of state slots; slot order is ascending `locKey`, matching
  /// the simulator's map iteration order.
  int NumSlots = 0;
  /// Per-slot: true for mixer/heater/sensor/separator slots (the ones
  /// regeneration stashes and restores).
  std::vector<std::uint8_t> SlotIsFunctionalUnit;

  /// Hardware parameters folded into the code (planned volumes and
  /// quantization use these).
  core::MachineSpec Spec;

  //===--------------------------------------------------------------------===//
  // Cold diagnostic tables (error paths only)
  //===--------------------------------------------------------------------===//

  /// Rendered AIS text per instruction, e.g. "move mixer1, s2, 40".
  std::vector<std::string> InstrText;
  /// Rendered source operand per instruction, e.g. "s2".
  std::vector<std::string> SrcText;

  int numInstrs() const { return static_cast<int>(Code.size()); }
  int numFluids() const { return static_cast<int>(FluidNames.size()); }
  int numSenses() const { return static_cast<int>(SenseNames.size()); }

  /// Rough compiled footprint in bytes (code + tables).
  std::size_t byteSize() const {
    return Code.size() * sizeof(Instr) + VolumeTable.size() * sizeof(double) +
           RegenSlices.size() * sizeof(std::int32_t);
  }
};

} // namespace aqua::vm

#endif // AQUA_VM_BYTECODE_H
