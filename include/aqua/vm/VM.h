//===- aqua/vm/VM.h - Register-VM bytecode interpreter -----------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tight dispatch-loop interpreter for `vm::Program` bytecode,
/// behaviorally equivalent to `runtime::simulate` -- same SimResult
/// (volumes, waste, regeneration counts, virtual-time track), same seeded
/// RNG draws, bit-for-bit identical floating-point results (the `vm`
/// differential oracle in aqua/check enforces this on every generated
/// program) -- but allocation-free on the hot path:
///
///  * all run state (slot volumes, dense composition rows, writer indices,
///    the patchable volume table, regeneration stash) lives in flat arrays
///    sized once in `bind()` and reused across runs;
///  * `SimResult`'s maps and strings are materialized once in `finish()`,
///    never touched by the dispatch loop;
///  * tracing is hoisted to one branch per run when disabled.
///
/// The interpreter is resumable: `reset()` + `run()` is one conventional
/// execution, while the fleet driver uses `bind()`/`reset()` per segment
/// and patches `volume()` entries between segments (Section 3.5 online
/// re-management). `Hooks` is the fleet's seam: input draws can be charged
/// contention wait time from a shared-reservoir model.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_VM_VM_H
#define AQUA_VM_VM_H

#include "aqua/runtime/Simulator.h"
#include "aqua/support/Random.h"
#include "aqua/vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace aqua::vm {

/// Per-run options (the subset of runtime::SimOptions the bytecode has not
/// already folded, plus fleet trace routing).
struct RunOptions {
  /// Re-execute producing slices when a fluid runs out.
  bool EnableRegeneration = true;

  /// RNG seed for separation yields and concentration factors.
  std::uint64_t Seed = 0x5eed;
  double MinSeparationYield = 0.2;
  double MaxSeparationYield = 0.7;
  double FixedSeparationYield = -1.0;

  /// Wet-path timing: fixed seconds charged per fluid transfer.
  double MoveSeconds = 2.0;
  int MaxRegenRetries = 8;

  /// >= 0 routes virtual-time trace events to the fleet track
  /// (obs::PidFleet) with this chip id as the row; -1 reproduces the
  /// simulator's track (obs::PidSimulated, regeneration-depth rows).
  int FleetChip = -1;
};

/// Fleet seam: out-of-band effects injected into a run. All methods are
/// called on the interpreting thread.
class Hooks {
public:
  virtual ~Hooks() = default;
  /// An input instruction is about to draw \p DrawNl of \p FluidId at
  /// virtual time \p VirtualSec. Returns extra wait seconds to charge
  /// (shared-reservoir contention); 0 for no stall.
  virtual double onInputDraw(int FluidId, double DrawNl, double VirtualSec) {
    (void)FluidId;
    (void)DrawNl;
    (void)VirtualSec;
    return 0.0;
  }
};

/// The interpreter. One instance per thread; rebindable across programs
/// (buffers grow monotonically, so a fleet worker cycling through segment
/// programs stops allocating after the first chip).
class Interp {
public:
  /// Prepares state buffers for \p P and copies its volume table. The
  /// program must outlive the binding.
  void bind(const Program &P);

  /// Clears run state (keeps the binding and any volume patches).
  void reset(const RunOptions &Opts);

  /// Rebinds (restoring the program's original volume table) and resets.
  void start(const Program &P, const RunOptions &Opts) {
    bind(P);
    reset(Opts);
  }

  /// Executes instructions [Begin, End) (End < 0: to the end). Returns
  /// false when the run recorded an error. May be called repeatedly to
  /// run a program in segments.
  bool run(int Begin = 0, int End = -1, Hooks *H = nullptr);

  /// Materializes the SimResult accumulated since reset(). The interp
  /// remains bound; reset() starts the next run.
  runtime::SimResult finish();

  /// The running (patchable) metered volume of \p VolIdx.
  double &volume(std::uint32_t VolIdx) { return VolumeTable[VolIdx]; }

  /// Virtual seconds elapsed so far in this run.
  double fluidSeconds() const { return FluidSec; }
  /// Error recorded so far ("" when clean).
  const std::string &error() const { return Error; }

private:
  void fail(int Idx, std::string Msg);
  double quantize(double VolNl) const;
  double separationYield();
  bool regenerate(int WriterIdx, int Depth, Hooks *H);
  void transferVol(int Idx, std::uint16_t Src, std::uint16_t Dst,
                   bool DstIsOutput, double RequestNl, double QuantNl,
                   int Depth, Hooks *H);
  void exec(int Idx, int Depth, Hooks *H);
  void execImpl(int Idx, int Depth, Hooks *H);

  // Dense fluid-state helpers (see VM.cpp for the exact simulator
  // equivalences they preserve).
  double *comp(int Slot) { return CompRows.data() + Slot * NumFluids; }
  void clearSlot(int Slot);
  void addInto(int Slot, double AddVol, const double *AddComp);

  const Program *Prog = nullptr;
  RunOptions Opts;
  SplitMix64 Rng{0};
  bool Tracing = false;

  int NumSlots = 0;
  int NumFluids = 0;

  // ----- Per-run state (flat; sized by bind, cleared by reset).
  std::vector<double> SlotVol;
  std::vector<double> CompRows; ///< NumSlots x NumFluids fractions.
  std::vector<std::int32_t> WriterIdx;
  std::vector<double> VolumeTable;
  std::vector<double> QuantVolTable; ///< quantize(VolumeTable), per reset().
  std::vector<double> InputDrawn; ///< Per fluid id, nl.

  // Regeneration stash: parallel arrays reused across calls. Nested
  // regenerations stack their frames.
  std::vector<std::int32_t> StashSlot;
  std::vector<double> StashVol;
  std::vector<double> StashComp;

  // Sense recordings: (sense id, volume) plus a composition row each.
  std::vector<std::pair<std::uint16_t, double>> SenseLog;
  std::vector<double> SenseComp;

  // Scratch row for separator effluent.
  std::vector<double> TakenComp;

  // ----- Accumulators mirroring SimResult.
  std::string Error;
  int Regenerations = 0;
  int UnderflowEvents = 0;
  int OverflowEvents = 0;
  int SubLeastCountMoves = 0;
  int InstructionsExecuted = 0;
  double FluidSec = 0.0;
  double DeliveredNl = 0.0;
  double WasteNl = 0.0;
};

/// Convenience one-shot execution of \p P.
runtime::SimResult run(const Program &P, const RunOptions &Opts = {});

} // namespace aqua::vm

#endif // AQUA_VM_VM_H
