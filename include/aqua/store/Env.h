//===- aqua/store/Env.h - Injectable file-system seam ------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The file-system seam the persistent solve store is written against.
///
/// Every byte the store reads or writes goes through an `Env`, so every
/// failure mode a real deployment can hit -- a torn append, a bit flip on
/// disk, ENOSPC mid-record, a process killed between the temp write and the
/// rename of a compaction -- can be injected deterministically in tests
/// without real crashes or real disks. Three implementations ship:
///
///  * `Env::real()`  -- POSIX files; `WritableFile::append` is `O_APPEND`
///    (one record per `write(2)`), locks are `flock(2)` advisory locks that
///    the kernel releases when the holding process dies;
///  * `MemEnv`       -- an in-process map of path -> bytes with the same
///    lock semantics (released on handle destruction). Thread-safe; used by
///    the `store` check oracle and the fault tests' substrate;
///  * tests wrap either in a fault-injecting decorator (tests/store).
///
/// Paths are plain strings interpreted by the Env; the store only ever
/// joins them with '/'.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_STORE_ENV_H
#define AQUA_STORE_ENV_H

#include "aqua/support/Error.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::store {

/// An append-only file handle. Destroying the handle closes the file and
/// releases any advisory lock acquired through it.
class WritableFile {
public:
  virtual ~WritableFile() = default;

  /// Appends \p Data at the end of the file. On failure the file may hold
  /// a prefix of \p Data (that is the torn-record case the store's
  /// checksums exist for).
  virtual Status append(std::string_view Data) = 0;

  /// Durably flushes appended data.
  virtual Status sync() = 0;

  /// Tries to take the advisory exclusive lock on this file without
  /// blocking. \p Acquired reports the outcome; the lock is held until the
  /// handle is destroyed. Advisory: readers ignore it -- the store uses it
  /// only to detect live writers and to serialize compaction.
  virtual Status tryLockExclusive(bool &Acquired) = 0;
};

/// An immutable, read-only view of a whole file's bytes, alive for as long
/// as any shared_ptr to it is. The POSIX Env backs this with mmap(2): a
/// mapping of an unlinked file stays valid on Linux, so a compactor
/// deleting a segment under a reader never invalidates a held view. Other
/// Envs may back it with an owned heap copy; the contract is the same.
class MappedRegion {
public:
  virtual ~MappedRegion() = default;
  std::string_view bytes() const { return {Data, Size}; }

protected:
  const char *Data = nullptr;
  std::size_t Size = 0;
};

/// The file-system interface.
class Env {
public:
  virtual ~Env() = default;

  /// Creates \p Path as a directory; success if it already exists.
  virtual Status createDir(const std::string &Path) = 0;

  /// Lists the file names (not paths) in \p Path, sorted.
  virtual Expected<std::vector<std::string>> listDir(const std::string &Path) = 0;

  /// Size of \p Path in bytes.
  virtual Expected<std::uint64_t> fileSize(const std::string &Path) = 0;

  /// Reads up to \p Len bytes of \p Path starting at \p Offset into \p Out
  /// (short reads at end-of-file are success).
  virtual Status read(const std::string &Path, std::uint64_t Offset,
                      std::uint64_t Len, std::string &Out) = 0;

  /// Opens (creating if needed) \p Path for appending.
  virtual Expected<std::unique_ptr<WritableFile>>
  openAppend(const std::string &Path) = 0;

  /// Atomically renames \p From to \p To (replacing \p To).
  virtual Status rename(const std::string &From, const std::string &To) = 0;

  virtual Status removeFile(const std::string &Path) = 0;

  virtual bool exists(const std::string &Path) = 0;

  /// A token unique across the processes and threads sharing a store
  /// directory; used to name segment files without coordination.
  virtual std::string uniqueToken() = 0;

  /// Maps the whole of \p Path read-only. The region snapshots the file
  /// size at the call; bytes appended later are not visible through it
  /// (the store only maps sealed files). The default implementation reads
  /// the file into an owned heap copy; PosixEnv overrides it with mmap.
  virtual Expected<std::shared_ptr<const MappedRegion>>
  mapRead(const std::string &Path);

  /// A cheap change marker for the directory \p Path: unequal values mean
  /// the directory's entry list (names/sizes) may have changed; an equal
  /// value means no file was added, removed, renamed, or resized through
  /// an observable directory mutation. POSIX approximates this with the
  /// directory inode's (mtime, size, ino) signature -- which does *not*
  /// tick when an existing file is appended to, so callers must still
  /// re-stat files a live foreign writer could be growing. MemEnv counts
  /// every mutation exactly. The default implementation reports "unknown"
  /// (an error), which callers must treat as always-changed.
  virtual Expected<std::uint64_t> dirGeneration(const std::string &Path);

  /// The process-wide POSIX environment.
  static Env &real();
};

/// In-memory Env: a thread-safe map of path -> contents with advisory
/// locks released on handle destruction. "Directories" are implicit (any
/// path prefix ending in '/'); createDir records them so listDir on an
/// empty directory succeeds.
class MemEnv : public Env {
public:
  Status createDir(const std::string &Path) override;
  Expected<std::vector<std::string>> listDir(const std::string &Path) override;
  Expected<std::uint64_t> fileSize(const std::string &Path) override;
  Status read(const std::string &Path, std::uint64_t Offset, std::uint64_t Len,
              std::string &Out) override;
  Expected<std::unique_ptr<WritableFile>>
  openAppend(const std::string &Path) override;
  Status rename(const std::string &From, const std::string &To) override;
  Status removeFile(const std::string &Path) override;
  bool exists(const std::string &Path) override;
  std::string uniqueToken() override;
  /// Exact: a monotone counter bumped by every mutation (append, rename,
  /// remove, corrupt) anywhere in the environment. Coarser than per-dir
  /// but exact: an unchanged value proves nothing changed at all.
  Expected<std::uint64_t> dirGeneration(const std::string &Path) override;

  /// Test access: the raw bytes of \p Path (empty if absent).
  std::string snapshot(const std::string &Path);
  /// Test access: overwrites \p Path's bytes directly (creating it),
  /// bypassing the append-only interface -- how tests tear tails and flip
  /// bits.
  void corrupt(const std::string &Path, std::string Contents);

private:
  friend class MemWritableFile;

  std::mutex Mutex;
  std::map<std::string, std::string> Files;
  std::set<std::string> Dirs;
  std::set<std::string> Locked;
  std::uint64_t NextToken = 1;
  std::uint64_t Generation = 0;
};

} // namespace aqua::store

#endif // AQUA_STORE_ENV_H
