//===- aqua/store/SolveStore.h - Persistent content-addressed store -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed store of solve results: canonical
/// `ir::Fingerprint` -> opaque payload bytes (the versioned binary
/// `CompileArtifact` encoding of service/ArtifactCodec.h), shared by any
/// number of processes on one directory. The compile service layers its
/// sharded LRU over this as a write-through L2, which is what makes a
/// restarted `aquad` serve yesterday's solves from disk instead of the LP.
///
/// ## On-disk format
///
/// A store directory holds append-only *segment* files (`seg-<token>.aqs`)
/// plus a `LOCK` file. A segment is an 8-byte magic header followed by
/// records:
///
///   u32 magic | u32 payload_len | u64 key_hi | u64 key_lo
///   | payload bytes | u32 crc32c(header-after-magic + payload)
///
/// Records are immutable once written; a key written twice (two processes
/// racing on the same miss) is resolved last-writer-wins at index time --
/// the pipeline is deterministic, so duplicate payloads are identical.
///
/// ## Recovery invariants
///
/// * Appends are crash-safe by construction: a record is visible iff its
///   checksum verifies. On open, each segment is scanned and indexed up to
///   its *longest valid prefix*; a torn tail (record extends past
///   end-of-file) is truncated away logically and retried on the next
///   refresh (a live writer's in-flight append looks the same), while a
///   checksum/magic mismatch on a complete record freezes the segment at
///   the last good record.
/// * `get` re-verifies the record checksum on every read; a corrupt
///   artifact is *never* returned -- it demotes to a miss.
/// * Compaction writes the surviving records to a temp file and renames it
///   into place before deleting inputs, so a crash at any point leaves
///   either the old segments, both (duplicate keys -- benign), or the new
///   one. Stale temp files are removed on open.
///
/// ## Locking protocol (advisory)
///
/// Every writer holds an exclusive `flock` on its own segment for the life
/// of its handle. Compaction takes the exclusive lock on `LOCK` (two
/// compactors never run at once) and only rewrites segments whose lock it
/// can take -- i.e. segments with no live writer. Readers take no locks:
/// checksums, append-only segments, and atomic renames make reads safe
/// against concurrent writers and compactors.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_STORE_SOLVESTORE_H
#define AQUA_STORE_SOLVESTORE_H

#include "aqua/ir/Canonical.h"
#include "aqua/store/Env.h"
#include "aqua/support/Error.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace aqua::store {

/// Store tuning.
struct StoreOptions {
  /// fsync after every append. Off by default: the cache-warming use case
  /// tolerates losing the last records on power failure, never corruption.
  bool SyncEveryAppend = false;
  /// On an index miss, rescan the directory for segments (and segment
  /// tails) other processes appended since the last look before reporting
  /// the miss. One listDir + one stat per segment; misses are rare once
  /// warm.
  bool RefreshOnMiss = true;
  /// Records larger than this are rejected on put and treated as corrupt
  /// on scan (a sanity bound, not a tuning knob).
  std::uint32_t MaxPayloadBytes = 256u << 20;
};

/// Monotone counters plus a snapshot of index size.
struct StoreStats {
  std::uint64_t Appends = 0;
  std::uint64_t AppendedBytes = 0;
  std::uint64_t Gets = 0;
  std::uint64_t Hits = 0;
  /// Complete records whose checksum or magic failed verification (at scan
  /// or at read); such records are never served.
  std::uint64_t CorruptRecords = 0;
  /// Scans that stopped at an incomplete tail record.
  std::uint64_t TornTails = 0;
  std::uint64_t Refreshes = 0;
  std::uint64_t Compactions = 0;
  std::uint64_t SegmentsCompacted = 0;
  /// Distinct keys currently indexed.
  std::size_t Keys = 0;
  /// Segment files currently known.
  std::size_t Segments = 0;
};

/// The persistent fingerprint -> payload store. Thread-safe; every public
/// method may be called from any thread.
class SolveStore {
public:
  /// Opens (creating if needed) the store in directory \p Dir. Scans and
  /// indexes existing segments, removing stale compaction temp files.
  static Expected<std::unique_ptr<SolveStore>>
  open(const std::string &Dir, const StoreOptions &Opts = {},
       Env &E = Env::real());

  ~SolveStore();

  SolveStore(const SolveStore &) = delete;
  SolveStore &operator=(const SolveStore &) = delete;

  /// Appends \p Payload under \p Key. An existing entry is superseded
  /// (last-writer-wins); the old record becomes garbage for compaction.
  Status put(const ir::Fingerprint &Key, std::string_view Payload);

  /// Reads the payload for \p Key into \p Payload, re-verifying the record
  /// checksum. Returns false on miss *and* on verification failure (a
  /// corrupt record is never served).
  bool get(const ir::Fingerprint &Key, std::string &Payload);

  bool contains(const ir::Fingerprint &Key);

  /// Incrementally rescans the directory: new segments, and new bytes at
  /// the tail of known segments. Returns the number of records indexed.
  std::uint64_t refresh();

  /// Rewrites all quiescent segments (no live writer) into one compacted
  /// segment, dropping superseded records, then deletes the inputs.
  /// Returns success with nothing to do when another process holds the
  /// compaction lock.
  Status compact();

  /// Every currently indexed key (unordered).
  std::vector<ir::Fingerprint> keys() const;

  StoreStats stats() const;

  const std::string &dir() const { return Dir; }

private:
  struct RecordLoc {
    int Segment = -1;
    std::uint64_t Offset = 0; ///< Of the record header, within the segment.
    std::uint32_t PayloadLen = 0;
  };
  struct Segment {
    std::string Name;
    /// Bytes scanned and indexed so far (header included).
    std::uint64_t ValidBytes = 0;
    /// Scan hit a complete-but-corrupt record; never scan past it again.
    bool Frozen = false;
    /// Our own active segment's append handle (holds its writer lock).
    std::unique_ptr<WritableFile> Handle;
  };
  struct KeyHash {
    std::size_t operator()(const ir::Fingerprint &F) const {
      return static_cast<std::size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  SolveStore(std::string Dir, const StoreOptions &Opts, Env &E);

  std::string path(const std::string &Name) const { return Dir + "/" + Name; }
  Status openDirLocked();
  /// Scans \p Seg from its ValidBytes watermark, indexing every record
  /// whose checksum verifies. Returns records indexed.
  std::uint64_t scanSegmentLocked(int SegIndex);
  std::uint64_t refreshLocked();
  Status ensureWriterLocked();

  const std::string Dir;
  const StoreOptions Opts;
  Env &E;

  mutable std::mutex Mutex;
  std::vector<Segment> Segments;
  std::unordered_map<ir::Fingerprint, RecordLoc, KeyHash> Index;
  /// Index into Segments of our active writer segment; -1 until first put.
  int WriterSegment = -1;

  std::uint64_t Appends = 0, AppendedBytes = 0, Gets = 0, Hits = 0;
  std::uint64_t CorruptRecords = 0, TornTails = 0, Refreshes = 0;
  std::uint64_t Compactions = 0, SegmentsCompacted = 0;
};

} // namespace aqua::store

#endif // AQUA_STORE_SOLVESTORE_H
