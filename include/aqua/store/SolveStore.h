//===- aqua/store/SolveStore.h - Persistent content-addressed store -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed store of solve results: canonical
/// `ir::Fingerprint` -> opaque payload bytes (the versioned binary
/// `CompileArtifact` encoding of service/ArtifactCodec.h), shared by any
/// number of processes on one directory. The compile service layers its
/// sharded LRU over this as a write-through L2, which is what makes a
/// restarted `aquad` serve yesterday's solves from disk instead of the LP.
///
/// ## On-disk format
///
/// A store directory holds append-only *segment* files (`seg-<token>.aqs`)
/// plus a `LOCK` file. A segment is an 8-byte magic header followed by
/// records:
///
///   u32 magic | u32 payload_len | u64 key_hi | u64 key_lo
///   | payload bytes | u32 crc32c(header-after-magic + payload)
///
/// Records are immutable once written; a key written twice (two processes
/// racing on the same miss) is resolved last-writer-wins at index time --
/// the pipeline is deterministic, so duplicate payloads are identical.
///
/// ## Side-car indexes and the zero-copy read path
///
/// A segment with no live writer is *sealed*: by the locking protocol
/// below, a segment whose writer lock can be taken by anyone else will
/// never grow again (writers only ever append to segments they created).
/// Sealing a segment persists a side-car hash index (`seg-<token>.idx`):
/// a versioned, CRC-protected open-addressing table of
/// fingerprint -> (record offset, payload length) built at seal or
/// compaction time and renamed into place atomically. On open, a sealed
/// segment and its index are memory-mapped read-only, so a cross-process
/// hit costs one open-addressing probe plus a checksum pass over the
/// mapped record -- no directory scan, no per-read open/pread, and no
/// heap copy of the payload (`getView` hands out an `ArtifactView` that
/// aliases the mapping).
///
/// The index is an *accelerator, never an authority*: a missing, torn,
/// truncated, bit-flipped, or version-skewed `.idx` fails validation
/// (size/magic/version/CRC) and the store falls back to today's full
/// segment scan, serving bit-identical payloads, then rebuilds the index
/// if the segment is quiescent. Mappings of deleted files stay valid on
/// POSIX, so a compactor removing a sealed segment never invalidates a
/// view a reader still holds.
///
/// ## Recovery invariants
///
/// * Appends are crash-safe by construction: a record is visible iff its
///   checksum verifies. On open, each segment is scanned and indexed up to
///   its *longest valid prefix*; a torn tail (record extends past
///   end-of-file) is truncated away logically and retried on the next
///   refresh (a live writer's in-flight append looks the same), while a
///   checksum/magic mismatch on a complete record freezes the segment at
///   the last good record.
/// * `get` re-verifies the record checksum on every read; a corrupt
///   artifact is *never* returned -- it demotes to a miss.
/// * Compaction writes the surviving records to a temp file and renames it
///   into place before deleting inputs, so a crash at any point leaves
///   either the old segments, both (duplicate keys -- benign), or the new
///   one. Stale temp files are removed on open.
///
/// ## Locking protocol (advisory)
///
/// Every writer holds an exclusive `flock` on its own segment for the life
/// of its handle. Compaction takes the exclusive lock on `LOCK` (two
/// compactors never run at once) and only rewrites segments whose lock it
/// can take -- i.e. segments with no live writer. Readers take no locks:
/// checksums, append-only segments, and atomic renames make reads safe
/// against concurrent writers and compactors.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_STORE_SOLVESTORE_H
#define AQUA_STORE_SOLVESTORE_H

#include "aqua/ir/Canonical.h"
#include "aqua/store/Env.h"
#include "aqua/support/Error.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aqua::store {

/// Store tuning.
struct StoreOptions {
  /// fsync after every append. Off by default: the cache-warming use case
  /// tolerates losing the last records on power failure, never corruption.
  bool SyncEveryAppend = false;
  /// On an index miss, rescan the directory for segments (and segment
  /// tails) other processes appended since the last look before reporting
  /// the miss. One listDir + one stat per segment; misses are rare once
  /// warm.
  bool RefreshOnMiss = true;
  /// Records larger than this are rejected on put and treated as corrupt
  /// on scan (a sanity bound, not a tuning knob).
  std::uint32_t MaxPayloadBytes = 256u << 20;
  /// Consult side-car `.idx` files and serve sealed segments through their
  /// memory-mapped index. Off forces the scan path everywhere (the
  /// fallback the fault tests compare against).
  bool UseIndexes = true;
  /// Build (and persist) side-car indexes when sealing or compacting
  /// segments. Off leaves existing indexes untouched but writes none.
  bool BuildIndexes = true;
};

/// Monotone counters plus a snapshot of index size.
struct StoreStats {
  std::uint64_t Appends = 0;
  std::uint64_t AppendedBytes = 0;
  std::uint64_t Gets = 0;
  std::uint64_t Hits = 0;
  /// Complete records whose checksum or magic failed verification (at scan
  /// or at read); such records are never served.
  std::uint64_t CorruptRecords = 0;
  /// Scans that stopped at an incomplete tail record.
  std::uint64_t TornTails = 0;
  std::uint64_t Refreshes = 0;
  /// RefreshOnMiss passes short-circuited by an unchanged directory
  /// generation (no listDir, no per-segment stat).
  std::uint64_t RefreshSkips = 0;
  std::uint64_t Compactions = 0;
  std::uint64_t SegmentsCompacted = 0;
  /// Reads served through a sealed segment's mmap'd side-car index.
  std::uint64_t IndexProbes = 0;
  /// Invalid side-car indexes (truncated/corrupt/version-skewed) that
  /// demoted the segment to the full-scan path.
  std::uint64_t IndexFallbackScans = 0;
  /// Side-car indexes written (at seal or compaction).
  std::uint64_t IndexBuilds = 0;
  /// Valid side-car indexes adopted (mapped) from disk.
  std::uint64_t IndexLoads = 0;
  /// Distinct keys currently indexed.
  std::size_t Keys = 0;
  /// Segment files currently known.
  std::size_t Segments = 0;
  /// Segments currently served through a mapped side-car index.
  std::size_t SealedSegments = 0;
};

/// A zero-copy handle to one record's payload: a string_view aliasing
/// either a memory-mapped sealed segment or a heap buffer, kept alive by
/// \c Keep. Valid for as long as the view object (or a copy of its
/// keepalive) lives, even across compaction deleting the segment file.
struct ArtifactView {
  std::string_view Payload;
  std::shared_ptr<const void> Keep;

  explicit operator bool() const { return Keep != nullptr; }
};

/// The persistent fingerprint -> payload store. Thread-safe; every public
/// method may be called from any thread.
class SolveStore {
public:
  /// Opens (creating if needed) the store in directory \p Dir. Scans and
  /// indexes existing segments, removing stale compaction temp files.
  static Expected<std::unique_ptr<SolveStore>>
  open(const std::string &Dir, const StoreOptions &Opts = {},
       Env &E = Env::real());

  ~SolveStore();

  SolveStore(const SolveStore &) = delete;
  SolveStore &operator=(const SolveStore &) = delete;

  /// Appends \p Payload under \p Key. An existing entry is superseded
  /// (last-writer-wins); the old record becomes garbage for compaction.
  Status put(const ir::Fingerprint &Key, std::string_view Payload);

  /// Reads the payload for \p Key into \p Payload, re-verifying the record
  /// checksum. Returns false on miss *and* on verification failure (a
  /// corrupt record is never served).
  bool get(const ir::Fingerprint &Key, std::string &Payload);

  /// Zero-copy variant of get(): on a hit \p View aliases the payload
  /// bytes (a sealed segment's mapping when possible, a heap buffer
  /// otherwise) without copying them out. Same verification contract as
  /// get().
  bool getView(const ir::Fingerprint &Key, ArtifactView &View);

  bool contains(const ir::Fingerprint &Key);

  /// Incrementally rescans the directory: new segments, and new bytes at
  /// the tail of known segments. Returns the number of records indexed.
  std::uint64_t refresh();

  /// Rewrites all quiescent segments (no live writer) into one compacted
  /// segment, dropping superseded records, then deletes the inputs.
  /// Returns success with nothing to do when another process holds the
  /// compaction lock.
  Status compact();

  /// Every currently indexed key (unordered).
  std::vector<ir::Fingerprint> keys() const;

  StoreStats stats() const;

  const std::string &dir() const { return Dir; }

private:
  struct RecordLoc {
    int Segment = -1;
    std::uint64_t Offset = 0; ///< Of the record header, within the segment.
    std::uint32_t PayloadLen = 0;
  };
  struct Segment {
    std::string Name;
    /// Bytes scanned and indexed so far (header included).
    std::uint64_t ValidBytes = 0;
    /// Scan hit a complete-but-corrupt record; never scan past it again.
    bool Frozen = false;
    /// Our own active segment's append handle (holds its writer lock).
    std::unique_ptr<WritableFile> Handle;
    /// Sealed: served through the mapped side-car index below instead of
    /// the in-memory Index. A sealed segment never grows (its writer lock
    /// was taken, and writers only append to segments they created).
    bool Sealed = false;
    /// Mapped segment bytes (sealed segments only).
    std::shared_ptr<const MappedRegion> Data;
    /// Mapped side-car index file (sealed segments only).
    std::shared_ptr<const MappedRegion> IdxMap;
    /// Parsed from the index header: slot table geometry.
    std::uint64_t IdxSlotCount = 0;
    const char *IdxSlots = nullptr;
  };
  /// One side-car index entry (also the build-time carrier).
  struct IdxEntry {
    std::uint64_t Hi = 0, Lo = 0, Offset = 0;
    std::uint32_t PayloadLen = 0;
  };
  struct KeyHash {
    std::size_t operator()(const ir::Fingerprint &F) const {
      return static_cast<std::size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  SolveStore(std::string Dir, const StoreOptions &Opts, Env &E);

  std::string path(const std::string &Name) const { return Dir + "/" + Name; }
  Status openDirLocked();
  /// Scans \p Seg from its ValidBytes watermark, indexing every record
  /// whose checksum verifies. Returns records indexed.
  std::uint64_t scanSegmentLocked(int SegIndex);
  std::uint64_t refreshLocked();
  /// The RefreshOnMiss entry: short-circuits to re-scanning only unsealed
  /// foreign segments when the directory generation is unchanged.
  std::uint64_t refreshOnMissLocked();
  Status ensureWriterLocked();

  /// Tries to adopt an on-disk side-car index for \p SegIndex (validate,
  /// mmap, mark sealed). Returns false when there is none or it fails
  /// validation (the caller falls back to scanning).
  bool loadIndexLocked(int SegIndex);
  /// Writes + maps the side-car index for fully scanned, quiescent
  /// segment \p SegIndex, then drops its entries from the in-memory
  /// Index (the mapped table supersedes them).
  void buildIndexLocked(int SegIndex);
  /// Seals \p SegIndex with a prebuilt entry list (compaction output).
  void sealWithEntriesLocked(int SegIndex, const std::vector<IdxEntry> &Entries);
  /// Probes sealed segments' mapped indexes for \p Key; fills \p View on
  /// a verified hit.
  bool probeSealedLocked(const ir::Fingerprint &Key, ArtifactView &View);
  /// Enumerates every valid record of a sealed segment (for keys() and
  /// compaction).
  void sealedEntriesLocked(int SegIndex, std::vector<IdxEntry> &Out) const;
  /// Shared get/getView body; Mutex must be held.
  bool getLocked(const ir::Fingerprint &Key, ArtifactView &View);
  /// Writes the side-car file for \p SegIndex from \p Entries (temp +
  /// rename) and adopts it (maps, marks sealed, drops superseded
  /// in-memory entries).
  void writeAndAdoptIndexLocked(int SegIndex,
                                const std::vector<IdxEntry> &Entries);
  /// Serializes the side-car bytes for \p Entries covering \p Covered
  /// segment bytes.
  static std::string encodeIndexBytes(const std::vector<IdxEntry> &Entries,
                                      std::uint64_t Covered);
  /// Walks a complete segment image, verifying every record; false when
  /// any byte fails validation (such a segment is never sealed).
  static bool parseSegmentRecords(std::string_view Bytes,
                                  std::uint32_t MaxPayloadBytes,
                                  std::vector<IdxEntry> &Out);

  const std::string Dir;
  const StoreOptions Opts;
  Env &E;

  mutable std::mutex Mutex;
  std::vector<Segment> Segments;
  std::unordered_map<ir::Fingerprint, RecordLoc, KeyHash> Index;
  /// Index into Segments of our active writer segment; -1 until first put.
  int WriterSegment = -1;
  /// Directory generation observed before the last full refresh; nullopt
  /// until a refresh ran (or when the Env cannot track generations).
  bool HaveDirGeneration = false;
  std::uint64_t LastDirGeneration = 0;

  std::uint64_t Appends = 0, AppendedBytes = 0, Gets = 0, Hits = 0;
  std::uint64_t CorruptRecords = 0, TornTails = 0, Refreshes = 0;
  std::uint64_t RefreshSkips = 0;
  std::uint64_t Compactions = 0, SegmentsCompacted = 0;
  std::uint64_t IndexProbes = 0, IndexFallbackScans = 0;
  std::uint64_t IndexBuilds = 0, IndexLoads = 0;
};

} // namespace aqua::store

#endif // AQUA_STORE_SOLVESTORE_H
