//===- aqua/assays/ExtraAssays.h - Additional realistic assays ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assays beyond the paper's three benchmarks, drawn from the application
/// domains its introduction motivates ("drug discovery, virology, clinical
/// applications, genomics, biochemistry"). They stress different corners
/// of volume management and double as integration workloads:
///
///  * `bradfordProtein` -- a Bradford protein quantitation: a 6-point BSA
///    standard curve plus triplicate samples against one dye reagent
///    (a heavily shared reagent, like glucose's but wider);
///  * `pcrMasterMix`  -- PCR master-mix preparation and aliquoting: one
///    deeply mixed cocktail split across many reactions (a single
///    numerously-used intermediate, replication's natural habitat);
///  * `micPanel`      -- a minimum-inhibitory-concentration panel: a long
///    two-fold serial dilution chain where each step feeds the next
///    (chained intermediate uses rather than fan-out);
///  * `immunoassay`   -- a sandwich immunoassay with two affinity
///    separations and wash steps (unknown volumes mid-assay, partitioned
///    run-time dispensing).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_ASSAYS_EXTRAASSAYS_H
#define AQUA_ASSAYS_EXTRAASSAYS_H

#include "aqua/ir/AssayGraph.h"

namespace aqua::assays {

/// Bradford protein assay: \p StandardPoints calibration dilutions of the
/// BSA standard (1:1, 1:3, 1:7, ... against diluent) each mixed 1:50 into
/// the dye reagent, plus \p SampleReplicates sample readings.
ir::AssayGraph buildBradfordProtein(int StandardPoints = 6,
                                    int SampleReplicates = 3);

/// PCR master-mix prep: buffer, dNTPs, primers, polymerase and water
/// mixed into one cocktail, aliquoted into \p Reactions reactions, each
/// mixed 9:1 with template and sensed (fluorescence).
ir::AssayGraph buildPcrMasterMix(int Reactions = 12);

/// MIC panel: a chain of \p Steps two-fold dilutions of the antibiotic,
/// each mixed 1:1 with inoculum and sensed.
ir::AssayGraph buildMicPanel(int Steps = 8);

/// Sandwich immunoassay: sample binds a capture matrix (affinity
/// separation, unknown volume), elutes, binds a detection matrix (second
/// separation), and is sensed -- two partition boundaries.
ir::AssayGraph buildImmunoassay();

/// Source text of the Bradford assay in the assay language (the others
/// exercise the builder API).
const char *bradfordSource();

} // namespace aqua::assays

#endif // AQUA_ASSAYS_EXTRAASSAYS_H
