//===- aqua/assays/PaperAssays.h - The paper's benchmark assays --*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic builders for the assays the paper evaluates (Section 4.1,
/// Figures 2, 9, 10, 11), plus their source text in the assay language.
/// Tests cross-check the language frontend against these builders, and the
/// bench harness reproduces Table 2 and Figures 12-14 from them.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_ASSAYS_PAPERASSAYS_H
#define AQUA_ASSAYS_PAPERASSAYS_H

#include "aqua/ir/AssayGraph.h"

#include <string>

namespace aqua::assays {

/// The running example of Figures 2, 3 and 5: inputs A, B, C;
/// K = A:B 1:4, L = B:C 2:1, M = K:L 2:1, N = L:C 2:3.
/// Named node ids are returned for tests that check exact Vnorms.
struct Figure2Nodes {
  ir::NodeId A, B, C, K, L, M, N;
};
ir::AssayGraph buildFigure2Example(Figure2Nodes *Nodes = nullptr);

/// The glucose assay (Figure 9): four glucose/reagent calibration dilutions
/// (1:1, 1:2, 1:4, 1:8) plus a sample/reagent 1:1 mix, each optically
/// sensed. Fully static; Figure 12 reports its volume assignment.
ir::AssayGraph buildGlucoseAssay();

/// The glycomics assay (Figure 10): affinity separation, PNGase-F
/// digestion, two LC separations -- three statically-unknown output
/// volumes, partitioning the DAG into the four partitions of Figure 13.
ir::AssayGraph buildGlycomicsAssay();

/// The enzyme-kinetics assay (Figure 11), generalized to \p Dilutions
/// serial dilutions per reagent (4 in the paper's "Enzyme", 10 in
/// "Enzyme10"). Dilution i uses ratio 1:(10^i - 1), capped at
/// 1:(10^MaxRatioExp - 1) to keep LP coefficients well-scaled for very
/// large instances; the paper's sizes (4 dilutions) are unaffected.
ir::AssayGraph buildEnzymeAssay(int Dilutions = 4, int MaxRatioExp = 4);

/// Source text of the three assays in the AquaVol assay language
/// (Figures 9a, 10a, 11a).
const char *glucoseSource();
const char *glycomicsSource();
const char *enzymeSource();

} // namespace aqua::assays

#endif // AQUA_ASSAYS_PAPERASSAYS_H
