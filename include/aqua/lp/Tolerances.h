//===- aqua/lp/Tolerances.h - Shared numeric tolerances ----------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LP/ILP layer's numeric tolerances, consolidated in one place so the
/// dense simplex, the revised simplex, presolve, and branch-and-bound all
/// agree on what "zero", "feasible", and "integral" mean. Each constant
/// documents the decision it guards; solvers must not introduce private
/// epsilon literals for these roles.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_TOLERANCES_H
#define AQUA_LP_TOLERANCES_H

namespace aqua::lp::tol {

/// Reduced-cost optimality tolerance: a nonbasic column only enters the
/// basis when its reduced cost improves the objective by more than this.
inline constexpr double Cost = 1e-9;

/// Minimum acceptable pivot magnitude; smaller pivots are numerically
/// unreliable and are skipped in ratio tests and artificial expulsion.
inline constexpr double Pivot = 1e-8;

/// Snap-to-zero threshold applied after elimination steps to stop float
/// dust from accumulating into phantom coefficients.
inline constexpr double Zero = 1e-11;

/// Primal feasibility tolerance: a basic value within this of its bound
/// counts as on the bound (dual simplex leaving test, basis validation).
inline constexpr double Feas = 1e-7;

/// Phase-1 residual threshold: a remaining artificial/infeasibility sum
/// above this proves the LP infeasible.
inline constexpr double Phase1 = 1e-7;

/// Bound-consistency slack used by presolve when folding eliminated
/// variables' bounds: a crossing within this is float noise, beyond it is
/// infeasibility.
inline constexpr double BoundCross = 1e-9;

/// Wider presolve bound-crossing snap: crossings within this are snapped
/// to a fixed value instead of being declared infeasible.
inline constexpr double BoundSnap = 1e-7;

/// Default integrality tolerance: a relaxation value within this of an
/// integer is considered integral (IntOptions::IntTol default).
inline constexpr double Integrality = 1e-6;

/// Branch-and-bound pruning slack: a node whose LP bound does not beat the
/// incumbent by more than this is fathomed.
inline constexpr double Prune = 1e-9;

} // namespace aqua::lp::tol

#endif // AQUA_LP_TOLERANCES_H
