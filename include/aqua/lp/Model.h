//===- aqua/lp/Model.h - Linear program description --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory description of a linear program: bounded continuous variables,
/// sparse linear rows, and a linear objective. The volume-management
/// formulation (PLDI 2008, Figure 3) is built on top of this model, and the
/// Simplex and BranchAndBound solvers consume it.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_MODEL_H
#define AQUA_LP_MODEL_H

#include <cassert>
#include <limits>
#include <string>
#include <vector>

namespace aqua::lp {

/// Index of a variable within a Model.
using VarId = int;
/// Index of a row (constraint) within a Model.
using RowId = int;

/// Positive infinity, used for absent variable bounds.
inline constexpr double Infinity = std::numeric_limits<double>::infinity();

/// Direction of a linear constraint row.
enum class RowKind {
  LE, ///< sum(coef * var) <= rhs
  GE, ///< sum(coef * var) >= rhs
  EQ, ///< sum(coef * var) == rhs
};

/// One term of a sparse linear expression.
struct Term {
  VarId Var;
  double Coef;
};

/// A sparse linear constraint.
struct Row {
  std::string Name;
  RowKind Kind;
  double Rhs;
  std::vector<Term> Terms;
};

/// A continuous decision variable with (possibly infinite) bounds.
struct Variable {
  std::string Name;
  double Lower = 0.0;
  double Upper = Infinity;
  double ObjCoef = 0.0;
};

/// A linear program: maximize (or minimize) a linear objective subject to
/// sparse linear rows and variable bounds.
class Model {
public:
  /// Adds a variable with bounds [Lower, Upper] and objective coefficient
  /// \p ObjCoef. Returns its id.
  VarId addVar(std::string Name, double Lower = 0.0, double Upper = Infinity,
               double ObjCoef = 0.0) {
    assert(Lower <= Upper && "inverted variable bounds");
    Vars.push_back(Variable{std::move(Name), Lower, Upper, ObjCoef});
    return static_cast<VarId>(Vars.size()) - 1;
  }

  /// Adds a constraint row. \p Terms may list a variable at most once.
  RowId addRow(std::string Name, RowKind Kind, double Rhs,
               std::vector<Term> Terms) {
    Rows.push_back(Row{std::move(Name), Kind, Rhs, std::move(Terms)});
    return static_cast<RowId>(Rows.size()) - 1;
  }

  /// Sets the optimization direction. The default is maximization (the
  /// paper's objective maximizes total output volume).
  void setMaximize(bool Max) { MaximizeFlag = Max; }
  bool isMaximize() const { return MaximizeFlag; }

  /// Sets the objective coefficient of \p Var.
  void setObjCoef(VarId Var, double Coef) { Vars[Var].ObjCoef = Coef; }

  /// Tightens the lower bound of \p Var to at least \p Lower.
  void tightenLower(VarId Var, double Lower) {
    if (Lower > Vars[Var].Lower)
      Vars[Var].Lower = Lower;
  }

  /// Tightens the upper bound of \p Var to at most \p Upper.
  void tightenUpper(VarId Var, double Upper) {
    if (Upper < Vars[Var].Upper)
      Vars[Var].Upper = Upper;
  }

  int numVars() const { return static_cast<int>(Vars.size()); }
  int numRows() const { return static_cast<int>(Rows.size()); }

  const Variable &var(VarId V) const { return Vars[V]; }
  Variable &var(VarId V) { return Vars[V]; }
  const Row &row(RowId R) const { return Rows[R]; }
  Row &row(RowId R) { return Rows[R]; }

  const std::vector<Variable> &vars() const { return Vars; }
  const std::vector<Row> &rows() const { return Rows; }

  /// Evaluates the objective at \p Values (one value per variable).
  double objectiveValue(const std::vector<double> &Values) const;

  /// Returns the largest absolute constraint/bound violation at \p Values.
  /// Useful for validating solver output in tests.
  double maxViolation(const std::vector<double> &Values) const;

  /// Renders the model in a human-readable LP-like format.
  std::string str() const;

private:
  std::vector<Variable> Vars;
  std::vector<Row> Rows;
  bool MaximizeFlag = true;
};

} // namespace aqua::lp

#endif // AQUA_LP_MODEL_H
