//===- aqua/lp/BranchAndBound.h - ILP via branch-and-bound -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer linear programming by LP-based branch-and-bound.
///
/// The paper's IVol formulation is an ILP; the authors solved it with
/// lp_solve 5.5 and found it "ran for hours without generating a solution"
/// on the enzyme assay while plain LP finished in under a second (Section
/// 4.3). This solver reproduces that behaviour: exact on small instances,
/// budget-limited on large ones.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_BRANCHANDBOUND_H
#define AQUA_LP_BRANCHANDBOUND_H

#include "aqua/lp/Solver.h"
#include "aqua/lp/Tolerances.h"

namespace aqua::lp {

/// Which branch-and-bound node engine to run.
enum class IntEngine {
  /// Warm-started engine: one shared model, bound-delta nodes, the parent
  /// basis dual-reoptimized per node, optional parallel tree search.
  Warm,
  /// Legacy reference path: per-node Model copy solved cold through
  /// presolve + simplex. Kept for the solver-vs-solver differential
  /// oracle and as a numeric baseline.
  Dense,
};

/// Options for the integer solver.
struct IntOptions {
  SolverOptions LP;
  /// Maximum branch-and-bound nodes; 0 means unlimited.
  std::int64_t MaxNodes = 0;
  /// Wall-clock budget in seconds; 0 means unlimited.
  double TimeLimitSec = 0.0;
  /// A value within IntTol of an integer counts as integral.
  double IntTol = tol::Integrality;
  /// Node engine; Warm is the production path.
  IntEngine Engine = IntEngine::Warm;
  /// Worker threads for the Warm engine's tree search; values < 2 run the
  /// search inline. The parallel search shares one node pool and one
  /// atomic incumbent; the proven objective is identical to a
  /// single-threaded run (equal-objective incumbents are tie-broken
  /// lexicographically, independent of arrival order).
  int Threads = 1;
  /// Rounds of root cutting-plane separation (GMI + Chvatal-Gomory
  /// divisor cuts) before the tree search; 0 disables cuts. Warm engine
  /// only.
  int CutRounds = 8;
  /// Cut-and-branch restart: once the tree has an incumbent and has spent
  /// this many nodes without closing, the search restarts from a
  /// reduced-cost-tightened, freshly cut root (the incumbent and the
  /// pseudocost table carry over). 0 disables restarts.
  std::int64_t RestartNodes = 20000;
  /// Maximum cut-and-branch restarts.
  int MaxRestarts = 3;
  /// Reliability threshold for pseudocost branching: a candidate whose
  /// up/down pseudocosts have fewer than this many observations gets
  /// strong-branched before the scores are trusted. 0 falls back to
  /// most-fractional branching.
  int Reliable = 4;
  /// Strong-branch at most this many unreliable candidates per node.
  int StrongCandidates = 4;
  /// Dual-simplex pivot cap per strong-branch probe.
  std::int64_t StrongIterations = 60;
  /// Consecutive depth-first plunge steps a worker may take before it
  /// must return both children to the best-bound pool (a diving restart,
  /// keeping the search from drifting into one deep subtree).
  int PlungeLimit = 40;
};

/// Result of an integer solve.
struct IntSolution {
  /// Optimal when proven; IterationLimit/TimeLimit when a budget expired
  /// (the incumbent, if any, is still reported); Infeasible when proven.
  SolveStatus Status = SolveStatus::Infeasible;
  /// True when an integral incumbent was found (even if not proven optimal).
  bool HasIncumbent = false;
  double Objective = 0.0;
  std::vector<double> Values;
  std::int64_t Nodes = 0;
  /// Total simplex pivots across every node relaxation.
  std::int64_t LpPivots = 0;
  double Seconds = 0.0;
};

/// Solves \p M with integrality required on every variable whose entry in
/// \p IsInteger is true. \p IsInteger must have one entry per variable, or
/// be empty to require integrality on all variables.
IntSolution solveInteger(const Model &M, const std::vector<bool> &IsInteger,
                         const IntOptions &Opts = {});

} // namespace aqua::lp

#endif // AQUA_LP_BRANCHANDBOUND_H
