//===- aqua/lp/RevisedSimplex.h - Bounded-variable revised simplex -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-variable revised simplex engine built for branch-and-bound.
///
/// Three properties distinguish it from the dense two-phase tableau in
/// Simplex.h:
///
///  * Finite upper bounds are handled *implicitly*: a nonbasic variable may
///    rest at either bound, so a bound contributes no tableau row. For the
///    IVol models -- where branching puts finite bounds on every volume
///    variable -- this roughly halves the basis dimension versus the dense
///    path, which materializes one row per finite upper bound.
///
///  * The constraint matrix is a shared, immutable sparse column-major copy
///    (SparseMatrix); per-solve state is only the bound arrays, the basis,
///    and a dense basis inverse maintained by product-form updates with
///    periodic refactorization.
///
///  * The engine is *restartable*: bounds can be changed between solves
///    (`setLower`/`setUpper`) and the previous optimal basis reused. A
///    bound change on a basis leaves reduced costs -- which depend only on
///    the basis -- untouched, so the parent's optimum stays dual feasible
///    and `reoptimizeDual()` typically needs a handful of pivots where a
///    cold solve needs hundreds. This is the classic warm-start that makes
///    LP-based branch-and-bound tractable.
///
/// Cold solves use a composite phase-1 primal (minimize total bound
/// violation of the logical basis, no artificial columns) followed by the
/// bounded primal phase 2. All tolerances come from aqua/lp/Tolerances.h.
///
/// The engine reports `NumericFail` instead of guessing when pivoting
/// stalls or the factorization drifts; callers (BranchAndBound, Solver)
/// fall back to the dense path, and the aqua/check solver-vs-solver oracle
/// cross-checks the two engines on every generated model.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_REVISEDSIMPLEX_H
#define AQUA_LP_REVISEDSIMPLEX_H

#include "aqua/lp/Model.h"
#include "aqua/lp/Simplex.h"
#include "aqua/lp/SparseMatrix.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace aqua::lp {

/// Where a column currently lives.
enum class VarStatus : std::uint8_t {
  Basic,   ///< In the basis; value from the basic solution.
  AtLower, ///< Nonbasic at its (finite) lower bound.
  AtUpper, ///< Nonbasic at its (finite) upper bound.
  Free,    ///< Nonbasic with no finite bound; rests at zero.
};

/// A reusable basis snapshot: one status per column (structural columns
/// first, then one logical column per row) plus the basic column of each
/// row. Copy-cheap and shareable between branch-and-bound siblings.
struct Basis {
  std::vector<VarStatus> Status;
  std::vector<int> BasicCol;

  bool empty() const { return BasicCol.empty(); }
};

/// Outcome of a revised-simplex solve. Mirrors SolveStatus but adds the
/// explicit numeric-failure escape hatch.
enum class RevisedStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  TimeLimit,
  NumericFail, ///< Stalled or lost the factorization; use the dense path.
};

const char *revisedStatusName(RevisedStatus S);

/// Converts to the public SolveStatus (NumericFail maps to IterationLimit;
/// callers that care must check for it before converting).
SolveStatus toSolveStatus(RevisedStatus S);

/// Per-solve knobs. Iteration/time budgets of zero mean unlimited.
struct RevisedOptions {
  std::int64_t MaxIterations = 0;
  double TimeLimitSec = 0.0;
  /// Pivots between basis refactorizations.
  int RefactorInterval = 100;
  /// Non-improving pivots tolerated before the engine switches to a
  /// Bland-style anti-cycling rule.
  int StallThreshold = 512;
};

/// Bounded-variable revised simplex over one model. The model's rows and
/// objective are fixed at construction; variable bounds are mutable state,
/// which is exactly the degree of freedom branch-and-bound needs.
class RevisedSimplex {
public:
  /// Builds the standard-form instance. \p Cols may be shared across
  /// engines (one per branch-and-bound worker); when null a private copy
  /// is built from \p M.
  explicit RevisedSimplex(const Model &M,
                          std::shared_ptr<const SparseMatrix> Cols = nullptr);

  int numRows() const { return NumRows; }
  int numStructural() const { return NumStruct; }

  /// Current bounds of structural variable \p V.
  double lower(VarId V) const { return Lower[V]; }
  double upper(VarId V) const { return Upper[V]; }

  /// Overrides the bounds of structural variable \p V. Takes effect on the
  /// next solve/reoptimize call.
  void setLower(VarId V, double L) { Lower[V] = L; }
  void setUpper(VarId V, double U) { Upper[V] = U; }

  /// Restores \p V to the bounds the model was built with.
  void resetBounds(VarId V) {
    Lower[V] = RootLower[V];
    Upper[V] = RootUpper[V];
  }

  /// Cold solve: installs the all-logical basis, then primal phase 1 + 2.
  RevisedStatus solve(const RevisedOptions &Opts = {});

  /// Warm solve from \p Start (typically the parent node's optimal basis):
  /// runs the dual simplex, which repairs primal feasibility after bound
  /// changes without disturbing dual feasibility. Falls back to a cold
  /// primal solve if the start basis is singular or dual-infeasible.
  RevisedStatus reoptimizeDual(const Basis &Start,
                               const RevisedOptions &Opts = {});

  /// Snapshot of the current basis (valid after any solve that returned
  /// Optimal; also after Infeasible for diagnostic reuse).
  Basis basis() const;

  /// Objective value in the model's direction (valid after Optimal).
  double objective() const { return Objective; }

  /// One value per structural variable (valid after Optimal).
  const std::vector<double> &values() const { return StructValues; }

  /// Simplex pivots performed by the most recent solve call.
  std::int64_t iterations() const { return Iterations; }

private:
  // --- setup
  void installLogicalBasis();
  bool installBasis(const Basis &B);
  bool refactorize();
  void computeBasicValues();
  double nonbasicValue(int Col) const;
  double colLower(int Col) const;
  double colUpper(int Col) const;
  double columnDot(int Col, const double *Y) const;
  void ftran(int Col, std::vector<double> &W) const;

  // --- shared pivot machinery
  void applyPivot(int LeaveRow, int EnterCol, const std::vector<double> &W);
  void computeDuals(const std::vector<double> &CostB,
                    std::vector<double> &Y) const;
  double reducedCost(int Col, const double *Y) const;

  // --- primal
  RevisedStatus primal(const RevisedOptions &Opts, bool Phase1);
  double infeasibilitySum() const;

  // --- dual
  /// True when reoptimizeDual may skip installBasis, the dual-feasibility
  /// validation, and the entry refresh: \p Start is exactly the basis the
  /// engine holds, the last dual run ended Optimal, and no nonbasic status
  /// needs a flip under the current bounds.
  bool plungeFastPathOk(const Basis &Start) const;
  /// With \p ReuseDualState the initial O(m^2) refresh is skipped: XB and
  /// DualRedCost are taken as current (the plunge fast path in
  /// reoptimizeDual maintains them incrementally across nodes).
  RevisedStatus dual(const RevisedOptions &Opts, bool ReuseDualState);

  void extract();

  const Model &M;
  std::shared_ptr<const SparseMatrix> Cols;
  int NumRows = 0;
  int NumStruct = 0;
  int NumCols = 0; // NumStruct + NumRows (logicals).

  /// Internal minimization costs per column (logicals cost zero).
  std::vector<double> Cost;
  /// Mutable structural bounds (branching state) and the pristine copies.
  std::vector<double> Lower, Upper;
  std::vector<double> RootLower, RootUpper;
  /// Logical-column bounds derived from row kinds (fixed).
  std::vector<double> LogLower, LogUpper;
  /// Row right-hand sides (fixed).
  std::vector<double> Rhs;

  std::vector<VarStatus> Status; // Per column.
  std::vector<int> BasicCol;     // Per row.
  std::vector<int> RowOfBasic;   // Per column; -1 when nonbasic.
  std::vector<double> Binv;      // Dense row-major m*m basis inverse.
  std::vector<double> XB;        // Basic values per row.

  std::vector<double> WorkY, WorkW, WorkC;

  double Objective = 0.0;
  std::vector<double> StructValues;
  std::int64_t Iterations = 0;
  /// Dual-simplex state carried across back-to-back warm reoptimizations
  /// (branch-and-bound plunges). Valid only while DualStateValid: the last
  /// dual run ended Optimal and the basis has not been disturbed since, so
  /// a child node that reuses the exact held basis can diff its bound
  /// changes against LastNonbasic and skip the per-node refresh.
  std::vector<double> DualRedCost;
  std::vector<double> LastNonbasic;
  bool DualStateValid = false;
  /// Pivots since the last full refactorization. Survives across solve
  /// calls: warm restarts that reuse the held factorization (plunging)
  /// must not reset the drift clock.
  int SinceRefactor = 0;
};

/// Drop-in alternative to solveSimplex backed by the revised engine: cold
/// primal solve with an automatic dense-tableau fallback when the engine
/// reports NumericFail, so callers always get a definitive status.
Solution solveRevisedSimplex(const Model &M, const SolveOptions &Opts = {});

} // namespace aqua::lp

#endif // AQUA_LP_REVISEDSIMPLEX_H
