//===- aqua/lp/RevisedSimplex.h - Bounded-variable revised simplex -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-variable revised simplex engine built for branch-and-bound.
///
/// Three properties distinguish it from the dense two-phase tableau in
/// Simplex.h:
///
///  * Finite upper bounds are handled *implicitly*: a nonbasic variable may
///    rest at either bound, so a bound contributes no tableau row. For the
///    IVol models -- where branching puts finite bounds on every volume
///    variable -- this roughly halves the basis dimension versus the dense
///    path, which materializes one row per finite upper bound.
///
///  * The constraint matrix is a shared, immutable sparse column-major copy
///    (SparseMatrix); per-solve state is only the bound arrays, the basis,
///    and a sparse LU factorization of the basis (BasisLU) maintained by
///    product-form eta updates with cheap periodic refactorization. The
///    RVol bases factor with ~1.3x fill, so FTRAN/BTRAN are O(m + nnz)
///    and the engine never materializes an m x m inverse.
///
///  * The engine is *restartable*: bounds can be changed between solves
///    (`setLower`/`setUpper`) and the previous optimal basis reused. A
///    bound change on a basis leaves reduced costs -- which depend only on
///    the basis -- untouched, so the parent's optimum stays dual feasible
///    and `reoptimizeDual()` typically needs a handful of pivots where a
///    cold solve needs hundreds. This is the classic warm-start that makes
///    LP-based branch-and-bound tractable.
///
/// Cold solves use a composite phase-1 primal (minimize total bound
/// violation of the logical basis, no artificial columns) followed by the
/// bounded primal phase 2. All tolerances come from aqua/lp/Tolerances.h.
///
/// The engine reports `NumericFail` instead of guessing when pivoting
/// stalls or the factorization drifts; callers (BranchAndBound, Solver)
/// fall back to the dense path, and the aqua/check solver-vs-solver oracle
/// cross-checks the two engines on every generated model.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_REVISEDSIMPLEX_H
#define AQUA_LP_REVISEDSIMPLEX_H

#include "aqua/lp/BasisLU.h"
#include "aqua/lp/Model.h"
#include "aqua/lp/Simplex.h"
#include "aqua/lp/SparseMatrix.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace aqua::lp {

/// Where a column currently lives.
enum class VarStatus : std::uint8_t {
  Basic,   ///< In the basis; value from the basic solution.
  AtLower, ///< Nonbasic at its (finite) lower bound.
  AtUpper, ///< Nonbasic at its (finite) upper bound.
  Free,    ///< Nonbasic with no finite bound; rests at zero.
};

/// A reusable basis snapshot: one status per column (structural columns
/// first, then one logical column per row) plus the basic column of each
/// row. Copy-cheap and shareable between branch-and-bound siblings.
///
/// RedCost and DevexW are optional warm-start payloads: reduced costs
/// depend only on the basis and the cost vector -- never on bounds -- so a
/// child node inheriting its parent's optimal basis can also inherit the
/// parent's reduced costs verbatim and skip the O(m^2) dual recomputation,
/// and the devex reference weights keep the pricing history across the
/// tree. Either vector may be empty (cold snapshot); installers must
/// validate sizes before trusting them.
struct Basis {
  std::vector<VarStatus> Status;
  std::vector<int> BasicCol;
  /// One reduced cost per column; empty when the snapshot was taken
  /// without valid dual state.
  std::vector<double> RedCost;
  /// Devex reference weights per column; empty on legacy snapshots.
  std::vector<double> DevexW;

  bool empty() const { return BasicCol.empty(); }
};

/// Outcome of a revised-simplex solve. Mirrors SolveStatus but adds the
/// explicit numeric-failure escape hatch.
enum class RevisedStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  TimeLimit,
  NumericFail, ///< Stalled or lost the factorization; use the dense path.
};

const char *revisedStatusName(RevisedStatus S);

/// Converts to the public SolveStatus (NumericFail maps to IterationLimit;
/// callers that care must check for it before converting).
SolveStatus toSolveStatus(RevisedStatus S);

/// Per-solve knobs. Iteration/time budgets of zero mean unlimited.
struct RevisedOptions {
  std::int64_t MaxIterations = 0;
  double TimeLimitSec = 0.0;
  /// Pivots between basis refactorizations. Each refactorization also
  /// rebuilds the maintained reduced-cost vector from scratch, so this is
  /// the pricing drift-control interval too.
  int RefactorInterval = 100;
  /// Non-improving pivots tolerated before the engine switches to a
  /// Bland-style anti-cycling rule.
  int StallThreshold = 512;
  /// Entering-variable rule for the primal loops.
  LpPricing Pricing = LpPricing::Devex;
};

/// Bounded-variable revised simplex over one model. The model's rows and
/// objective are fixed at construction; variable bounds are mutable state,
/// which is exactly the degree of freedom branch-and-bound needs.
class RevisedSimplex {
public:
  /// Builds the standard-form instance. \p Cols may be shared across
  /// engines (one per branch-and-bound worker); when null a private copy
  /// is built from \p M.
  explicit RevisedSimplex(const Model &M,
                          std::shared_ptr<const SparseMatrix> Cols = nullptr);

  int numRows() const { return NumRows; }
  int numStructural() const { return NumStruct; }

  /// Current bounds of structural variable \p V.
  double lower(VarId V) const { return Lower[V]; }
  double upper(VarId V) const { return Upper[V]; }

  /// Overrides the bounds of structural variable \p V. Takes effect on the
  /// next solve/reoptimize call.
  void setLower(VarId V, double L) { Lower[V] = L; }
  void setUpper(VarId V, double U) { Upper[V] = U; }

  /// Restores \p V to the bounds the model was built with.
  void resetBounds(VarId V) {
    Lower[V] = RootLower[V];
    Upper[V] = RootUpper[V];
  }

  /// Cold solve: installs the all-logical basis, then primal phase 1 + 2.
  RevisedStatus solve(const RevisedOptions &Opts = {});

  /// Warm solve from \p Start (typically the parent node's optimal basis):
  /// runs the dual simplex, which repairs primal feasibility after bound
  /// changes without disturbing dual feasibility. Falls back to a cold
  /// primal solve if the start basis is singular or dual-infeasible.
  RevisedStatus reoptimizeDual(const Basis &Start,
                               const RevisedOptions &Opts = {});

  /// Snapshot of the current basis (valid after any solve that returned
  /// Optimal; also after Infeasible for diagnostic reuse).
  Basis basis() const;

  /// Objective value in the model's direction (valid after Optimal).
  double objective() const { return Objective; }

  /// One value per structural variable (valid after Optimal).
  const std::vector<double> &values() const { return StructValues; }

  /// Simplex pivots performed by the most recent solve call.
  std::int64_t iterations() const { return Iterations; }

  /// Scatters tableau row \p P (row P of B^-1 A over all columns,
  /// structural then logical) into parallel (column, coefficient) arrays,
  /// skipping coefficients that are exactly zero. Valid after a solve that
  /// returned Optimal; the cut separator reads fractional rows through
  /// this.
  void tableauRow(int P, std::vector<int> &OutCols,
                  std::vector<double> &OutVals);

  /// Value of the basic variable at basis position \p P (valid after any
  /// solve; extract() keeps XB current on Optimal).
  double basicValue(int P) const { return XB[P]; }

  /// Column basic at position \p P.
  int basicCol(int P) const { return BasicCol[P]; }

  /// True when the most recent solve call ever switched to the Bland
  /// anti-cycling rule (either configured or forced by the stall
  /// watchdog).
  bool usedBland() const { return UsedBland; }

private:
  // --- setup
  void installLogicalBasis();
  bool installBasis(const Basis &B);
  bool refactorize();
  void computeBasicValues();
  double nonbasicValue(int Col) const;
  double colLower(int Col) const;
  double colUpper(int Col) const;
  double columnDot(int Col, const double *Y) const;
  /// FTRAN: W = B^-1 * A_Col (base inverse, then the eta file). When \p
  /// Pat is non-null it receives the nonzero rows of W (the hypersparsity
  /// pattern the ratio test, XB update, and pivot update iterate instead
  /// of all m rows).
  void ftran(int Col, std::vector<double> &W,
             std::vector<int> *Pat = nullptr) const;
  /// Applies the eta file in pivot order to a dense vector \p V (the
  /// column-side transform FTRAN and computeBasicValues share).
  void applyEtas(std::vector<double> &V) const;
  /// BTRAN of a sparse row-space seed: applies the transposed eta file
  /// (newest first) to \p YVal -- whose nonzero positions are tracked in
  /// \p YPat with marks \p YMark -- then scatters Rho = y^T * B0^-1 into
  /// \p Rho with nonzero pattern \p RhoPat. Consumes the seed (YVal/YMark
  /// are zeroed, YPat cleared). Each transposed eta touches exactly one
  /// component, so the seed stays sparse: O(|etas| * |YPat| + m * |YPat|)
  /// total instead of the O(m^2) dense row extraction.
  void btran(std::vector<double> &YVal, std::vector<unsigned char> &YMark,
             std::vector<int> &YPat, std::vector<double> &Rho,
             std::vector<int> &RhoPat) const;
  /// BTRAN of the single row \p P of B^-1 into RhoVec/PatRho.
  void btranRow(int P);

  // --- shared pivot machinery
  void applyPivot(int LeaveRow, int EnterCol, const std::vector<double> &W,
                  const std::vector<int> &Pat);
  void computeDuals(const std::vector<double> &CostB,
                    std::vector<double> &Y) const;
  double reducedCost(int Col, const double *Y) const;
  /// Scatters one pivot row through the constraint matrix: AlphaR[j] =
  /// Rho . A_j for every column j reachable from the nonzero rows \p Pat
  /// of \p Rho (structural columns via the CSR mirror, logicals
  /// directly); AlphaTouched lists the columns written. Untouched columns
  /// have alpha exactly zero, so incremental reduced-cost updates skip
  /// them entirely.
  void gatherRowAlphas(const double *Rho, const std::vector<int> &Pat);

  // --- primal
  RevisedStatus primal(const RevisedOptions &Opts, bool Phase1);
  double infeasibilitySum() const;

  // --- dual
  /// True when reoptimizeDual may skip installBasis, the dual-feasibility
  /// validation, and the entry refresh: \p Start is exactly the basis the
  /// engine holds, the last dual run ended Optimal, and no nonbasic status
  /// needs a flip under the current bounds.
  bool plungeFastPathOk(const Basis &Start) const;
  /// With \p ReuseDualState the initial O(m^2) refresh is skipped: XB and
  /// DualRedCost are taken as current (the plunge fast path in
  /// reoptimizeDual maintains them incrementally across nodes).
  RevisedStatus dual(const RevisedOptions &Opts, bool ReuseDualState);

  void extract();

  const Model &M;
  std::shared_ptr<const SparseMatrix> Cols;
  int NumRows = 0;
  int NumStruct = 0;
  int NumCols = 0; // NumStruct + NumRows (logicals).

  /// Internal minimization costs per column (logicals cost zero).
  std::vector<double> Cost;
  /// Mutable structural bounds (branching state) and the pristine copies.
  std::vector<double> Lower, Upper;
  std::vector<double> RootLower, RootUpper;
  /// Logical-column bounds derived from row kinds (fixed).
  std::vector<double> LogLower, LogUpper;
  /// Row right-hand sides (fixed).
  std::vector<double> Rhs;

  std::vector<VarStatus> Status; // Per column.
  std::vector<int> BasicCol;     // Per row.
  std::vector<int> RowOfBasic;   // Per column; -1 when nonbasic.
  /// Sparse LU of the *base* basis B0 from the last refactorization. The
  /// current basis inverse is the product of the eta file applied on top:
  /// B^-1 = E_k ... E_1 B0^-1.
  BasisLU Base;
  /// One product-form eta per pivot since the last refactorization:
  /// the FTRAN column W of the entering variable, split into the pivot
  /// element (Piv = W[Row]) and the off-pivot nonzeros (dense scatter
  /// Val plus pattern Pat, Row excluded). Appending an eta is O(nnz(W));
  /// the dense rank-one update it replaces was O(m * nnz(pivot row)).
  struct Eta {
    int Row;
    double Piv;
    std::vector<double> Val;
    std::vector<int> Pat;
  };
  std::vector<Eta> Etas;
  /// Total off-pivot nonzeros across the eta file, and the approximate
  /// flop count burned replaying it since the last factorization reset.
  /// The pivot loops apply the rent-or-buy refactorization rule: once
  /// ReplayOps exceeds a small multiple of the last sparse-LU factor
  /// price (Base.factorCost(), typically O(nnz)), they refactorize --
  /// self-tuning against the actual fill the elimination produced.
  std::size_t EtaNnzTotal = 0;
  mutable std::size_t ReplayOps = 0;
  std::vector<double> XB; // Basic values per row.

  std::vector<double> WorkY, WorkW, WorkC;

  /// Maintained primal reduced costs (one per column, zero for basic
  /// columns), updated incrementally from the pivot row each iteration
  /// and rebuilt from the factorization on every refresh.
  std::vector<double> PrimalD;
  /// Devex reference weights (one per column). Persist across solves so
  /// branch-and-bound children inherit the parent's pricing history;
  /// reset only when the logical basis is installed fresh.
  std::vector<double> DevexW;
  /// Pivot-row alpha scratch: values, touched-column list, touch marks.
  std::vector<double> AlphaR;
  std::vector<int> AlphaTouched;
  std::vector<unsigned char> AlphaMark;
  /// Hypersparsity patterns: FTRAN result, pivot row of B^-1, scaled
  /// pivot row inside applyPivot, accumulated dual-change rows.
  std::vector<int> PatW, PatRho, PatP, PatDy;
  /// BTRAN output scratch: the requested B^-1 row, pattern in PatRho.
  std::vector<double> RhoVec;
  /// Phase-1 violation state per row (-1 below lower, +1 above upper).
  std::vector<signed char> ViolState;
  /// Phase-1 dual-change accumulator (dense over rows, kept all-zero
  /// between uses) and its touch marks.
  std::vector<double> DyVal;
  std::vector<unsigned char> DyMark;
  /// Old-violation scratch aligned with PatW during one pivot.
  std::vector<double> ViolOld;

  double Objective = 0.0;
  std::vector<double> StructValues;
  std::int64_t Iterations = 0;
  /// Dual-simplex state carried across back-to-back warm reoptimizations
  /// (branch-and-bound plunges). Valid only while DualStateValid: the last
  /// dual run ended Optimal and the basis has not been disturbed since, so
  /// a child node that reuses the exact held basis can diff its bound
  /// changes against LastNonbasic and skip the per-node refresh.
  std::vector<double> DualRedCost;
  std::vector<double> LastNonbasic;
  bool DualStateValid = false;
  /// Set when the most recent solve call engaged the Bland rule.
  bool UsedBland = false;
  /// Pivots since the last full refactorization. Survives across solve
  /// calls: warm restarts that reuse the held factorization (plunging)
  /// must not reset the drift clock.
  int SinceRefactor = 0;
};

/// Drop-in alternative to solveSimplex backed by the revised engine: cold
/// primal solve with an automatic dense-tableau fallback when the engine
/// reports NumericFail, so callers always get a definitive status.
Solution solveRevisedSimplex(const Model &M, const SolveOptions &Opts = {});

/// As above, with warm-start repair and basis capture. When \p Warm is
/// non-null the engine repairs it with the dual simplex instead of solving
/// cold (a basis that no longer installs -- wrong dimensions, singular --
/// degrades to a cold solve inside the engine, never to a wrong answer).
/// When \p Captured is non-null and the solve ends Optimal it receives the
/// optimal basis, snapshot with its reduced costs where available so a
/// future warm start can skip the dual-feasibility recompute. The dense
/// NumericFail fallback never captures a basis.
Solution solveRevisedSimplex(const Model &M, const SolveOptions &Opts,
                             const Basis *Warm,
                             std::shared_ptr<const Basis> *Captured);

} // namespace aqua::lp

#endif // AQUA_LP_REVISEDSIMPLEX_H
