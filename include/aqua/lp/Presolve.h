//===- aqua/lp/Presolve.h - Equality-substitution presolve -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A presolve pass that eliminates variables defined by equality rows,
/// folds singleton inequality rows into bounds, drops empty and duplicate
/// (proportional) rows, and eliminates implied-free column singletons.
///
/// The RVol formulation is dominated by two kinds of equalities: two-term
/// mix-ratio rows (`a*x - b*y = 0`, Figure 3 class 4) and node
/// output-to-input definitions (`vol(v) - f*sum(in-edges) = 0`, class 5).
/// Substituting those away before the simplex runs shrinks the tableau by
/// roughly half in both dimensions on the paper's assays, exactly what a
/// production LP code's presolve would do. Postsolve reconstructs values
/// for the eliminated variables.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_PRESOLVE_H
#define AQUA_LP_PRESOLVE_H

#include "aqua/lp/Model.h"

#include <optional>
#include <vector>

namespace aqua::lp {

/// Statistics about one presolve run. Every counter is monotone over the
/// run (only ever incremented); RowsEliminated is the total across all
/// rules, the per-rule counters below break it down.
struct PresolveStats {
  int VarsEliminated = 0;
  int RowsEliminated = 0;
  /// Singleton inequality rows folded into a variable bound.
  int SingletonRowsRemoved = 0;
  /// Implied-free column singletons eliminated from equality rows.
  int SingletonColsEliminated = 0;
  /// Rows with no terms left (after substitutions) verified and dropped.
  int EmptyRowsRemoved = 0;
  /// Rows proportional to another row merged into the tighter of the two.
  int DuplicateRowsRemoved = 0;
  /// Variable bounds tightened by singleton rows.
  int BoundsTightened = 0;
};

/// Result of presolving a model. If `ProvenInfeasible` is set the reduced
/// model is meaningless and the original LP has no feasible point.
class Presolved {
public:
  /// The reduced model (variables renumbered).
  const Model &reduced() const { return ReducedModel; }

  bool provenInfeasible() const { return Infeasible; }
  const PresolveStats &stats() const { return Stats; }

  /// Reconstructs a full solution vector (original variable indexing) from
  /// \p ReducedValues (reduced-model indexing).
  std::vector<double> postsolve(const std::vector<double> &ReducedValues) const;

  /// Runs presolve over \p M.
  static Presolved run(const Model &M);

private:
  Presolved() = default;

  /// One eliminated variable: Var = Const + sum(Coef * other original var).
  /// Expressions only reference variables that were still alive when the
  /// elimination was recorded, so replaying the records in reverse order
  /// resolves every reference.
  struct Elimination {
    VarId Var;
    double Const;
    std::vector<Term> Expr;
  };

  Model ReducedModel;
  bool Infeasible = false;
  PresolveStats Stats;
  std::vector<Elimination> Eliminations;
  /// Reduced variable index -> original variable index.
  std::vector<VarId> AliveVars;
  int OriginalVarCount = 0;
};

} // namespace aqua::lp

#endif // AQUA_LP_PRESOLVE_H
