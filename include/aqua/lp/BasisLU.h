//===- aqua/lp/BasisLU.h - Sparse LU basis factorization ---------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse LU factorization of a simplex basis with Markowitz pivoting.
///
/// The RVol constraint matrices are hypersparse (under three nonzeros per
/// row), so the m x m basis factors with almost no fill -- measured ~1.3x
/// the basis nonzeros on the enzyme sweep -- and FTRAN/BTRAN become O(m +
/// nnz(LU)) stage replays instead of dense O(m^2) inverse products. That
/// single change is what moves the solver's per-pivot cost from quadratic
/// in the basis dimension to effectively output-sensitive, and it removes
/// the dense inverse's m^2 memory wall (enzyme_n14's basis inverse alone
/// would be ~1 GB; its LU is a few hundred KB).
///
/// Pivoting is Markowitz cost (fill minimization) over the lowest
/// column-count candidates, with a relative threshold guarding stability;
/// a basis whose active submatrix loses all acceptable pivots reports
/// singular and the caller falls back (exactly like the dense
/// refactorization it replaces).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_BASISLU_H
#define AQUA_LP_BASISLU_H

#include "aqua/lp/SparseMatrix.h"

#include <cstddef>
#include <vector>

namespace aqua::lp {

/// Sparse LU of one basis matrix B, whose column at position p is the
/// structural column BasicCol[p] of the constraint matrix (or the logical
/// identity column e_{BasicCol[p]-NumStruct}). Rows and positions share the
/// 0..m-1 index space of the owning simplex engine: ftran maps a
/// row-indexed right-hand side to a position-indexed solution, btran the
/// reverse.
class BasisLU {
public:
  /// Factors the basis selected by \p BasicCol. Returns false when the
  /// basis is singular to tolerance; the object is invalid until the next
  /// successful factor.
  bool factor(const SparseMatrix &A, int NumStruct,
              const std::vector<int> &BasicCol);

  /// True after a successful factor.
  bool valid() const { return Valid; }

  /// Solves B * X_out = X_in in place. Input indexed by row, output by
  /// basis position.
  void ftran(std::vector<double> &X) const;

  /// Solves B^T * Y_out = Y_in in place. Input indexed by basis position,
  /// output by row.
  void btran(std::vector<double> &Y) const;

  /// Nonzeros of L plus U from the last factor (fill diagnostics and the
  /// per-solve replay price).
  std::size_t luNnz() const { return LNnz + UNnz; }

  /// Approximate cost of the last factor call in flop-equivalents: the
  /// elimination flops plus the data-structure setup, the price the
  /// rent-or-buy refactorization rule compares replay debt against.
  std::size_t factorCost() const { return FactorOps; }

private:
  bool Valid = false;
  int M = 0;
  std::size_t LNnz = 0, UNnz = 0, FactorOps = 0;

  /// Elimination stages: stage t pivoted row PivRow[t], position PivPos[t],
  /// pivot value PivVal[t]. L holds the unit-lower multipliers of stage t
  /// as (row, mult) pairs; U holds the pivot row's off-pivot entries as
  /// (position, value) pairs over positions pivoted at later stages.
  std::vector<int> PivRow, PivPos;
  std::vector<double> PivVal;
  std::vector<int> LStart, LRow;
  std::vector<double> LVal;
  std::vector<int> UStart, UPos;
  std::vector<double> UVal;

  // --- factor-time scratch, reused across calls
  std::vector<std::vector<std::pair<int, double>>> Rows; // active rows
  std::vector<std::vector<int>> ColRows; // position -> active rows
  std::vector<char> RowDone, ColDone;
  std::vector<std::vector<int>> CountBucket; // col count -> positions

  // --- solve-time scratch
  mutable std::vector<double> Work;
};

} // namespace aqua::lp

#endif // AQUA_LP_BASISLU_H
