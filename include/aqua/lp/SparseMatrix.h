//===- aqua/lp/SparseMatrix.h - Column-major constraint matrix ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compressed sparse column (CSC) copy of a Model's constraint matrix.
/// The revised simplex prices columns one at a time (reduced costs, FTRAN
/// right-hand sides), so column-major storage turns every hot inner loop
/// into a walk over one column's nonzeros instead of a scan of dense rows.
/// Built once per model; immutable afterwards, so one instance is safely
/// shared by every branch-and-bound worker.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_SPARSEMATRIX_H
#define AQUA_LP_SPARSEMATRIX_H

#include "aqua/lp/Model.h"

#include <algorithm>
#include <vector>

namespace aqua::lp {

/// Immutable CSC matrix over a Model's structural variables, plus a CSR
/// mirror of the same nonzeros. Row indices are model row ids; column
/// indices are model variable ids. Duplicate terms per (row, var) are
/// merged at build time. The column view feeds FTRAN right-hand sides; the
/// row view feeds the incremental pricing updates (one pivot row of B^-1
/// scattered through the rows it touches).
class SparseMatrix {
public:
  struct Entry {
    int Row;
    double Value;
  };
  struct RowEntry {
    int Col;
    double Value;
  };

  SparseMatrix() = default;

  explicit SparseMatrix(const Model &M) {
    NumRows = M.numRows();
    NumCols = M.numVars();
    ColStart.assign(NumCols + 1, 0);
    // Two passes: count entries per variable, then fill.
    std::vector<int> Count(NumCols, 0);
    for (const Row &R : M.rows())
      for (const Term &T : R.Terms)
        ++Count[T.Var];
    for (int C = 0; C < NumCols; ++C)
      ColStart[C + 1] = ColStart[C] + Count[C];
    Entries.resize(ColStart[NumCols]);
    std::vector<int> Fill(ColStart.begin(), ColStart.end() - 1);
    for (int RI = 0; RI < NumRows; ++RI)
      for (const Term &T : M.row(RI).Terms)
        Entries[Fill[T.Var]++] = Entry{RI, T.Coef};
    // Merge duplicates (rare: the formulation never emits them, but the
    // Model API permits repeated vars across addRow edits).
    for (int C = 0; C < NumCols; ++C)
      mergeColumn(C);
    buildRows();
  }

  int numRows() const { return NumRows; }
  int numCols() const { return NumCols; }

  /// Nonzeros of column \p C as a contiguous span.
  const Entry *colBegin(int C) const { return Entries.data() + ColStart[C]; }
  const Entry *colEnd(int C) const { return Entries.data() + ColStart[C + 1]; }
  int colSize(int C) const { return ColStart[C + 1] - ColStart[C]; }

  /// Dot product of column \p C with a dense row vector \p Y.
  double dotColumn(int C, const double *Y) const {
    double Sum = 0.0;
    for (const Entry *E = colBegin(C), *End = colEnd(C); E != End; ++E)
      Sum += E->Value * Y[E->Row];
    return Sum;
  }

  /// Nonzeros of row \p R as a contiguous span (CSR mirror, sorted by
  /// column). Zero-valued padding left behind by duplicate merging is
  /// excluded at build time.
  const RowEntry *rowBegin(int R) const {
    return RowEntries.data() + RowStart[R];
  }
  const RowEntry *rowEnd(int R) const {
    return RowEntries.data() + RowStart[R + 1];
  }
  int rowSize(int R) const { return RowStart[R + 1] - RowStart[R]; }

private:
  void buildRows() {
    RowStart.assign(NumRows + 1, 0);
    std::vector<int> Count(NumRows, 0);
    for (const Entry &E : Entries)
      if (E.Value != 0.0)
        ++Count[E.Row];
    for (int R = 0; R < NumRows; ++R)
      RowStart[R + 1] = RowStart[R] + Count[R];
    RowEntries.resize(RowStart[NumRows]);
    std::vector<int> Fill(RowStart.begin(), RowStart.end() - 1);
    // Column-order traversal leaves each row's entries sorted by column.
    for (int C = 0; C < NumCols; ++C)
      for (const Entry *E = colBegin(C), *End = colEnd(C); E != End; ++E)
        if (E->Value != 0.0)
          RowEntries[Fill[E->Row]++] = RowEntry{C, E->Value};
  }

  void mergeColumn(int C) {
    int Begin = ColStart[C], End = ColStart[C + 1];
    if (End - Begin < 2)
      return;
    std::sort(Entries.begin() + Begin, Entries.begin() + End,
              [](const Entry &A, const Entry &B) { return A.Row < B.Row; });
    int Out = Begin;
    for (int I = Begin; I < End;) {
      int R = Entries[I].Row;
      double V = 0.0;
      while (I < End && Entries[I].Row == R)
        V += Entries[I++].Value;
      Entries[Out++] = Entry{R, V};
    }
    // Shrink by padding zeros that dot products ignore; column boundaries
    // must stay monotone, so record the shorter extent via a zero tail.
    for (int I = Out; I < End; ++I)
      Entries[I] = Entry{Entries[Out - 1].Row, 0.0};
  }

  int NumRows = 0;
  int NumCols = 0;
  std::vector<int> ColStart;
  std::vector<Entry> Entries;
  std::vector<int> RowStart;
  std::vector<RowEntry> RowEntries;
};

} // namespace aqua::lp

#endif // AQUA_LP_SPARSEMATRIX_H
