//===- aqua/lp/Solver.h - Presolve-enabled LP entry point --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing LP entry point: presolve, simplex, postsolve.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_SOLVER_H
#define AQUA_LP_SOLVER_H

#include "aqua/lp/Presolve.h"
#include "aqua/lp/Simplex.h"

#include <cstdint>
#include <memory>

namespace aqua::lp {

struct Basis; // RevisedSimplex.h

/// Which simplex implementation carries the solve.
enum class LpEngine {
  Dense,   ///< Two-phase dense tableau (Simplex.h); the reference path.
  Revised, ///< Bounded-variable revised simplex (RevisedSimplex.h) with an
           ///< automatic dense fallback on numeric failure.
};

/// Options for the full solve pipeline.
struct SolverOptions {
  SolveOptions Simplex;
  /// Run equality-substitution presolve before the simplex.
  bool Presolve = true;
  /// Simplex implementation. The two engines are cross-checked against
  /// each other on every generated model by the aqua/check "engines"
  /// oracle.
  LpEngine Engine = LpEngine::Revised;
  /// Optimal basis captured from a structurally identical earlier solve
  /// (SolveInfo::OptBasis). Used only by the Revised engine, and only when
  /// WarmShapeHash matches the shape hash of the model the simplex
  /// actually sees: the basis is then repaired with the dual simplex
  /// instead of solving cold. A warm start can change pivot counts but
  /// never the optimum, so none of these three fields participate in
  /// request fingerprints (RequestKey.cpp).
  std::shared_ptr<const Basis> WarmStart;
  /// Shape hash WarmStart was captured under; see modelShapeHash().
  std::uint64_t WarmShapeHash = 0;
  /// Capture the optimal basis and shape hash into SolveInfo so a later
  /// same-shape solve can warm start from them.
  bool CaptureBasis = false;
};

/// Extra information about a solve beyond the Solution itself.
struct SolveInfo {
  PresolveStats Presolve;
  int ReducedRows = 0;
  int ReducedVars = 0;
  /// Shape hash of the model handed to the simplex (the presolve-reduced
  /// model when presolve ran). Set when CaptureBasis or WarmStart was
  /// given; 0 otherwise.
  std::uint64_t ShapeHash = 0;
  /// The optimal basis, captured when CaptureBasis was set, the Revised
  /// engine finished Optimal itself (no dense fallback), and presolve did
  /// not prove the model infeasible outright. Null otherwise.
  std::shared_ptr<const Basis> OptBasis;
  /// True when the solve reused WarmStart (shape hashes matched and the
  /// Revised engine ran a dual repair instead of a cold solve).
  bool WarmStarted = false;
};

/// Structure-only hash of \p M: optimization direction, variable count,
/// objective coefficients, and every row's kind and ordered terms -- but
/// NOT right-hand sides or variable bounds. Two instances of the same
/// formulation that differ only in input volumes / capacities (which enter
/// the LP as rhs values and bounds) therefore share a hash, which is
/// exactly the precondition for reusing an optimal basis via dual repair:
/// the basis matrix stays nonsingular and the reduced costs stay
/// dual-feasible under any rhs/bound change.
std::uint64_t modelShapeHash(const Model &M);

/// Solves \p M (presolve + two-phase simplex + postsolve). Values in the
/// returned Solution are indexed by the original model's variables, and the
/// objective is evaluated on the original model. \p Info, when non-null,
/// receives presolve statistics.
Solution solve(const Model &M, const SolverOptions &Opts = {},
               SolveInfo *Info = nullptr);

} // namespace aqua::lp

#endif // AQUA_LP_SOLVER_H
