//===- aqua/lp/Solver.h - Presolve-enabled LP entry point --------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing LP entry point: presolve, simplex, postsolve.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_SOLVER_H
#define AQUA_LP_SOLVER_H

#include "aqua/lp/Presolve.h"
#include "aqua/lp/Simplex.h"

namespace aqua::lp {

/// Which simplex implementation carries the solve.
enum class LpEngine {
  Dense,   ///< Two-phase dense tableau (Simplex.h); the reference path.
  Revised, ///< Bounded-variable revised simplex (RevisedSimplex.h) with an
           ///< automatic dense fallback on numeric failure.
};

/// Options for the full solve pipeline.
struct SolverOptions {
  SolveOptions Simplex;
  /// Run equality-substitution presolve before the simplex.
  bool Presolve = true;
  /// Simplex implementation. The two engines are cross-checked against
  /// each other on every generated model by the aqua/check "engines"
  /// oracle.
  LpEngine Engine = LpEngine::Revised;
};

/// Extra information about a solve beyond the Solution itself.
struct SolveInfo {
  PresolveStats Presolve;
  int ReducedRows = 0;
  int ReducedVars = 0;
};

/// Solves \p M (presolve + two-phase simplex + postsolve). Values in the
/// returned Solution are indexed by the original model's variables, and the
/// objective is evaluated on the original model. \p Info, when non-null,
/// receives presolve statistics.
Solution solve(const Model &M, const SolverOptions &Opts = {},
               SolveInfo *Info = nullptr);

} // namespace aqua::lp

#endif // AQUA_LP_SOLVER_H
