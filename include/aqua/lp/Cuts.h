//===- aqua/lp/Cuts.h - Cutting planes for the ILP core ----------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cutting-plane separation for LP-based branch-and-bound.
///
/// Two families, both separated at the branch-and-bound root (and again on
/// cut-and-branch restarts):
///
///  * Gomory mixed-integer (GMI) cuts read from the optimal simplex
///    tableau: every basis row whose basic variable is integer-constrained
///    and fractional yields a valid inequality that the current LP vertex
///    violates by exactly the fractional part. The separator works in the
///    engine's bounded-variable computational form -- nonbasic variables
///    are shifted to the bound they rest at, logical (slack) columns are
///    substituted back through their defining row -- so the emitted cut is
///    a plain LE row over the structural variables and survives postsolve
///    untouched (the integer path solves the unreduced model).
///
///  * Chvatal-Gomory divisor cuts on the model's own rows: an LE/EQ row
///    with nonnegative coefficients over nonnegative integer variables
///    stays valid under coefficient-wise division by any d > 0 followed by
///    flooring, because the floored left side is integral. The IVol
///    mix-ratio rows (Figure 3 of the paper) have exactly this structure
///    -- small integer replication counts against a shared capacity -- so
///    the distinct coefficients of a row are natural divisors.
///
/// Cuts accumulate in a CutPool that deduplicates on a normalized
/// fingerprint and retires cuts that stay slack across consecutive LP
/// reoptimizations; retired fingerprints are remembered so a dropped cut
/// is never re-separated (the root loop provably terminates).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_CUTS_H
#define AQUA_LP_CUTS_H

#include "aqua/lp/Model.h"
#include "aqua/lp/RevisedSimplex.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace aqua::lp {

/// One cutting plane in LE form over the structural variables of the model
/// it was separated from: Terms . x <= Rhs. Terms are sorted by variable
/// and never empty.
struct Cut {
  std::vector<Term> Terms;
  double Rhs = 0.0;
  /// Consecutive LP optima at which the cut's row was slack. The pool
  /// retires a cut once this reaches CutOptions::MaxSlackAge.
  int SlackAge = 0;
};

/// Separation knobs shared by both families.
struct CutOptions {
  /// Cuts accepted per separation round, best scaled violation first.
  int MaxCuts = 50;
  /// Basic-variable fractionality window: rows with fractional part
  /// outside (MinFrac, 1 - MinFrac) are skipped as numerically flat.
  double MinFrac = 0.01;
  /// Minimum violation of the current LP point, scaled by the coefficient
  /// norm, for a cut to be kept.
  double MinViolation = 1e-6;
  /// Maximum nonzeros per cut; denser cuts slow every later FTRAN more
  /// than their bound improvement is worth.
  int MaxDensity = 200;
  /// Maximum max|coef| / min|coef| ratio; beyond this the cut is numeric
  /// trouble for the LU.
  double MaxDynamism = 1e7;
  /// Rounds a cut may sit slack before the pool retires it.
  int MaxSlackAge = 2;
};

/// Deduplicating pool of active cuts. Fingerprints of every cut ever
/// admitted -- including retired ones -- are kept, so separation cannot
/// cycle a cut back in after aging drops it.
class CutPool {
public:
  /// Admits \p C unless an equivalent cut was ever admitted before.
  bool add(Cut C);

  /// Ages the pool against the per-cut slacks of the latest LP optimum
  /// (Slack[i] belongs to cut i, in pool order): slack rows age, tight
  /// rows reset, and cuts reaching \p MaxAge are removed. Returns the
  /// number retired. \p OldToNew, when non-null, receives the pool-index
  /// remap (-1 for retired cuts) that callers use to remap a basis whose
  /// rows reference the old pool order.
  int age(const std::vector<double> &Slack, int MaxAge,
          std::vector<int> *OldToNew = nullptr, double Eps = 1e-7);

  const std::vector<Cut> &cuts() const { return Pool; }
  int size() const { return static_cast<int>(Pool.size()); }
  bool empty() const { return Pool.empty(); }

private:
  std::vector<Cut> Pool;
  std::unordered_set<std::uint64_t> Seen;
};

/// Separates GMI cuts from the optimal tableau held by \p Engine, which
/// must have just solved \p M (unreduced; Engine.numStructural() ==
/// M.numVars()) to optimality. \p IsInteger has one entry per variable.
/// Admitted cuts go to \p Pool; returns how many.
int separateGomory(const Model &M, const std::vector<bool> &IsInteger,
                   RevisedSimplex &Engine, const CutOptions &Opts,
                   CutPool &Pool);

/// Separates Chvatal-Gomory divisor cuts from the LE/EQ rows of \p M that
/// have nonnegative coefficients over nonnegative integer variables,
/// keeping only cuts the point \p X (one value per variable) violates.
/// Returns how many were admitted to \p Pool.
int separateDivisor(const Model &M, const std::vector<bool> &IsInteger,
                    const std::vector<double> &X, const CutOptions &Opts,
                    CutPool &Pool);

} // namespace aqua::lp

#endif // AQUA_LP_CUTS_H
