//===- aqua/lp/Simplex.h - Two-phase primal simplex --------------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense two-phase primal simplex solver.
///
/// The paper solved its RVol formulation with MATLAB's `linprog` (LIPSOL, an
/// interior-point code). AquaVol ships its own solver so the reproduction is
/// self-contained; a simplex method finds the same optima, and the Table 2
/// result -- DAGSolve is orders of magnitude faster than a general LP solver
/// and scales better with assay size -- is independent of the LP algorithm.
///
/// Implementation notes:
///  * Variables are shifted by their lower bounds; finite upper bounds
///    become explicit rows; free variables are split into differences of
///    nonnegatives.
///  * Phase 1 minimizes the sum of artificial variables; phase 2 optimizes
///    the user objective with artificial columns barred from re-entering.
///  * Pivoting uses Dantzig's rule and permanently switches to Bland's rule
///    (which guarantees termination) after a long degenerate stall.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_SIMPLEX_H
#define AQUA_LP_SIMPLEX_H

#include "aqua/lp/Model.h"

#include <cstdint>
#include <vector>

namespace aqua::lp {

/// Outcome of an LP or ILP solve.
enum class SolveStatus {
  Optimal,        ///< Optimal solution found.
  Infeasible,     ///< No feasible point exists.
  Unbounded,      ///< Objective unbounded over the feasible region.
  IterationLimit, ///< Stopped at the iteration budget.
  TimeLimit,      ///< Stopped at the wall-clock budget.
  TooLarge,       ///< Tableau would exceed the memory budget.
};

/// Returns a short human-readable name for \p S.
const char *solveStatusName(SolveStatus S);

/// Entering-variable pricing rule for the revised simplex engine. The
/// dense tableau path ignores it (its Dantzig-with-Bland-fallback rule is
/// the differential baseline).
enum class LpPricing {
  /// Maintained reduced costs scored by devex reference weights; the
  /// production default.
  Devex,
  /// Maintained reduced costs, largest-|d| selection (classic Dantzig,
  /// without the per-iteration full pricing scan).
  Dantzig,
  /// Lowest-index eligible column from the first pivot on. Guarantees
  /// termination on cycling-prone instances; slow. The engine falls back
  /// to this rule automatically after a degenerate stall regardless of
  /// the configured rule.
  Bland,
};

/// Returns a short human-readable name for \p P.
const char *lpPricingName(LpPricing P);

/// Knobs for the simplex solver.
struct SolveOptions {
  /// Wall-clock budget in seconds; 0 means unlimited.
  double TimeLimitSec = 0.0;
  /// Pivot budget; 0 means unlimited.
  std::int64_t MaxIterations = 0;
  /// Memory budget for the dense tableau, in bytes.
  std::size_t MaxTableauBytes = std::size_t(2) << 30;
  /// Number of non-improving pivots tolerated before switching to Bland's
  /// rule.
  int StallThreshold = 512;
  /// Entering-variable rule for the revised engine.
  LpPricing Pricing = LpPricing::Devex;
};

/// Result of an LP solve.
struct Solution {
  SolveStatus Status = SolveStatus::Infeasible;
  /// Objective value in the model's direction; valid when Status==Optimal.
  double Objective = 0.0;
  /// One value per model variable; valid when Status==Optimal.
  std::vector<double> Values;
  /// Simplex pivots performed.
  std::int64_t Iterations = 0;
  /// Wall-clock seconds spent in the solver.
  double Seconds = 0.0;
};

/// Solves \p M with the two-phase primal simplex method. Does not presolve;
/// see Solver.h for the presolve-enabled entry point.
Solution solveSimplex(const Model &M, const SolveOptions &Opts = {});

} // namespace aqua::lp

#endif // AQUA_LP_SIMPLEX_H
