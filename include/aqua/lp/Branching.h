//===- aqua/lp/Branching.h - Branch-and-bound branching layer ----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure-logic pieces of branch-and-bound, split out so they are unit
/// testable without running a solver: branch-variable selection and the
/// compact bound-delta representation nodes carry instead of a Model copy.
///
/// A node's subproblem differs from the root only in variable bounds, and
/// every bound on the path from the root is a *tightening* (floor of an
/// upper bound, ceil of a lower bound). A node therefore stores the full
/// path of BoundChange records; applying them in order onto the root
/// bounds reproduces the subproblem, and undoing is just resetting the
/// touched variables to their root bounds.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_BRANCHING_H
#define AQUA_LP_BRANCHING_H

#include "aqua/lp/Model.h"

#include <vector>

namespace aqua::lp {

/// Returns the index of the most fractional integer-constrained variable
/// (ties broken toward the lowest index), or -1 if every one is within
/// \p Tol of an integer. \p IsInteger must have one entry per value.
int pickBranchVar(const std::vector<double> &Values,
                  const std::vector<bool> &IsInteger, double Tol);

/// One branching decision: a new (tighter) bound on one variable.
struct BoundChange {
  VarId Var;
  bool IsUpper;
  double Bound;
};

/// Applies \p Path in order onto the bound arrays. Later entries for the
/// same variable are tighter by construction, so plain assignment applies
/// the path correctly.
void applyBoundPath(const std::vector<BoundChange> &Path,
                    std::vector<double> &Lower, std::vector<double> &Upper);

/// Undoes \p Path by restoring every touched variable to its root bounds.
void undoBoundPath(const std::vector<BoundChange> &Path,
                   const std::vector<double> &RootLower,
                   const std::vector<double> &RootUpper,
                   std::vector<double> &Lower, std::vector<double> &Upper);

} // namespace aqua::lp

#endif // AQUA_LP_BRANCHING_H
