//===- aqua/lp/Branching.h - Branch-and-bound branching layer ----*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure-logic pieces of branch-and-bound, split out so they are unit
/// testable without running a solver: branch-variable selection and the
/// compact bound-delta representation nodes carry instead of a Model copy.
///
/// A node's subproblem differs from the root only in variable bounds, and
/// every bound on the path from the root is a *tightening* (floor of an
/// upper bound, ceil of a lower bound). A node therefore stores the full
/// path of BoundChange records; applying them in order onto the root
/// bounds reproduces the subproblem, and undoing is just resetting the
/// touched variables to their root bounds.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_LP_BRANCHING_H
#define AQUA_LP_BRANCHING_H

#include "aqua/lp/Model.h"

#include <mutex>
#include <vector>

namespace aqua::lp {

/// Returns the index of the most fractional integer-constrained variable
/// (ties broken toward the lowest index), or -1 if every one is within
/// \p Tol of an integer. \p IsInteger must have one entry per value.
int pickBranchVar(const std::vector<double> &Values,
                  const std::vector<bool> &IsInteger, double Tol);

/// One fractional integer-constrained variable in an LP solution.
struct BranchCandidate {
  int Var;
  /// Fractional part of the LP value, in (Tol, 1 - Tol).
  double Frac;
};

/// All fractional integer-constrained variables of \p Values, most
/// fractional first (distance to the nearer integer, ties toward the
/// lowest index). Empty when the point is integral within \p Tol.
std::vector<BranchCandidate>
fractionalCandidates(const std::vector<double> &Values,
                     const std::vector<bool> &IsInteger, double Tol);

/// Shared pseudocost statistics: for every integer variable and branching
/// direction, the running mean LP-bound degradation per unit of fractional
/// distance, observed from strong-branch probes and from actual child-node
/// solves. One table is shared by every branch-and-bound worker; all
/// accesses take an internal mutex (the table is touched once per node,
/// not per pivot, so contention is negligible).
class PseudocostTable {
public:
  explicit PseudocostTable(int NumVars = 0) { reset(NumVars); }

  void reset(int NumVars) {
    std::lock_guard<std::mutex> L(Mu);
    Tab.assign(NumVars, Entry{});
    GlobalUp = GlobalDown = Dir{};
  }

  /// Records one observed per-unit degradation for branching \p Var in
  /// the given direction. Returns true when this is the direction's first
  /// observation (a pseudocost initialization).
  bool record(int Var, bool Up, double PerUnit);

  /// Observations recorded for the direction.
  int count(int Var, bool Up) const;

  /// Mean per-unit degradation for the direction; the global mean over
  /// all variables when this one has no history yet; 0 with no data at
  /// all.
  double estimate(int Var, bool Up) const;

  /// min(up count, down count) -- the reliability of the variable's
  /// pseudocosts in the sense of reliability branching.
  int reliability(int Var) const;

  /// Both direction estimates in one lock acquisition.
  void estimates(int Var, double &UpEst, double &DownEst) const;

private:
  struct Dir {
    double Sum = 0.0;
    int Cnt = 0;
  };
  struct Entry {
    Dir UpD, DownD;
  };
  double estimateLocked(const Entry &E, bool Up) const;

  mutable std::mutex Mu;
  std::vector<Entry> Tab;
  Dir GlobalUp, GlobalDown;
};

/// The product rule of reliability branching: the score of branching on a
/// candidate with fractional part \p Frac given the two per-unit
/// degradation estimates. Both factors are floored at a small epsilon so
/// a zero-degradation direction does not erase the other's signal.
double pseudocostScore(double UpEst, double DownEst, double Frac);

/// One branching decision: a new (tighter) bound on one variable.
struct BoundChange {
  VarId Var;
  bool IsUpper;
  double Bound;
};

/// Applies \p Path in order onto the bound arrays. Later entries for the
/// same variable are tighter by construction, so plain assignment applies
/// the path correctly.
void applyBoundPath(const std::vector<BoundChange> &Path,
                    std::vector<double> &Lower, std::vector<double> &Upper);

/// Undoes \p Path by restoring every touched variable to its root bounds.
void undoBoundPath(const std::vector<BoundChange> &Path,
                   const std::vector<double> &RootLower,
                   const std::vector<double> &RootUpper,
                   std::vector<double> &Lower, std::vector<double> &Upper);

} // namespace aqua::lp

#endif // AQUA_LP_BRANCHING_H
