//===- aqua/check/Generator.h - Random assay-program generator ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic generator of *valid* assay-language programs for
/// the differential-testing harness (see Oracles.h). Unlike the frontend
/// fuzzer (tests/lang/FuzzTest.cpp), which throws token salad at the parser,
/// this generator emits programs that compile by construction and exercise
/// the whole pipeline: mixes with extreme ratios, incubations, senses,
/// separations (with and without yield hints), serial-dilution loops with
/// dry arithmetic, and `it`-chaining.
///
/// Programs are kept in a structured form (a statement skeleton plus a
/// renderer) rather than as flat text so the shrinker can delete statements
/// and operands and re-render a still-well-formed source file.
///
/// Every yield-hinted separation/concentration in one program shares a
/// single yield fraction. The simulator models yields with one global
/// `FixedSeparationYield` knob, so this is what makes a managed program's
/// simulated volumes exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CHECK_GENERATOR_H
#define AQUA_CHECK_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace aqua::check {

/// Generation knobs.
struct GenConfig {
  /// 1 (tiny, tame ratios) .. 5 (long programs, 1:999 ratios, deep reuse).
  int Difficulty = 2;
  /// Permit separations/concentrations without yield hints, which make the
  /// assay's volumes statically unknown (Section 3.5) and limit the oracle
  /// battery to the structural checks.
  bool AllowUnknownVolumes = true;
  /// Permit serial-dilution FOR loops with dry ratio arithmetic.
  bool AllowLoops = true;
};

/// One generated statement. A single tagged struct, mirroring lang::Stmt;
/// only the fields of the active kind are meaningful.
struct GenStmt {
  enum class Kind {
    Mix,        ///< Result = MIX Operands IN RATIOS Ratios FOR Seconds
    Incubate,   ///< INCUBATE Input AT TempC FOR Seconds
    Sense,      ///< SENSE flavor Input INTO SenseArray[1]
    Separate,   ///< SEPARATE Input MATRIX .. USING .. [YIELD] INTO eff AND w
    Concentrate,///< CONCENTRATE Input AT TempC FOR Seconds [YIELD]
    DilutionLoop///< enzyme-style FOR loop: mix 1:d, sense, d *= Factor
  };
  Kind K = Kind::Mix;

  // Mix.
  std::vector<std::string> Operands; ///< Fluid names; "it" allowed.
  std::vector<std::int64_t> Ratios;  ///< Parallel to Operands; all >= 1.
  std::string Result;                ///< Bound name; empty = result is `it`.
  std::int64_t Seconds = 10;

  // Incubate / Sense / Separate / Concentrate.
  std::string Input; ///< Fluid name or "it".
  std::int64_t TempC = 37;

  // Separate.
  bool LC = false;
  std::string MatrixName, PusherName, EffluentName, WasteName;
  /// Yield-hinted (statically-known volume); the fraction is the program's
  /// shared GenProgram::YieldNum/YieldDen.
  bool HasYield = true;

  // Sense.
  std::string SenseArray; ///< Result array name; scalar senses use [1].
  bool Fluorescence = false;

  // DilutionLoop: FOR LoopVar FROM 1 TO Trips START
  //   Result = MIX Operands[0] AND Operands[1] IN RATIOS 1 : DilVar FOR S;
  //   SENSE OPTICAL Result INTO SenseArray[LoopVar];
  //   DilVar = DilVar * Factor;
  // ENDFOR    (DilVar is seeded with DilBase before the loop.)
  std::string LoopVar, DilVar;
  std::int64_t Trips = 2, Factor = 10, DilBase = 1;
};

/// A generated program: the statement skeleton plus rendering metadata.
struct GenProgram {
  std::string Name;
  std::uint64_t Seed = 0;
  /// The shared yield fraction of every yield-hinted statement; feed
  /// YieldNum/YieldDen to the simulator as FixedSeparationYield.
  std::int64_t YieldNum = 1, YieldDen = 2;
  std::vector<GenStmt> Stmts;

  /// Renders complete assay-language source (declarations included).
  std::string render() const;

  /// The shared yield as a double, for runtime::SimOptions.
  double fixedYield() const {
    return static_cast<double>(YieldNum) / static_cast<double>(YieldDen);
  }

  /// True when some statement leaves its output volume statically unknown.
  bool hasUnknownVolumes() const;

  /// Wet statements counting loop bodies once (the shrinker's size metric).
  int numStatements() const { return static_cast<int>(Stmts.size()); }
};

/// Generates a valid program from \p Seed. Deterministic: equal seeds and
/// configs yield byte-identical sources.
GenProgram generateProgram(std::uint64_t Seed, const GenConfig &Config = {});

} // namespace aqua::check

#endif // AQUA_CHECK_GENERATOR_H
