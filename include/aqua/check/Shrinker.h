//===- aqua/check/Shrinker.h - Greedy failure minimization -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging for oracle failures: given a generated program that some
/// oracle rejects, greedily delete statements and operands, simplify ratios
/// and loop bounds, and keep every edit after which the *same oracle
/// family* still fails. Runs passes to a fixpoint under an evaluation
/// budget, so the emitted repro is locally minimal -- deleting any single
/// remaining statement makes the failure disappear (or changes it into a
/// different, uninteresting one, e.g. a front-end error from a dangling
/// `it`).
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CHECK_SHRINKER_H
#define AQUA_CHECK_SHRINKER_H

#include "aqua/check/Generator.h"
#include "aqua/check/Oracles.h"

namespace aqua::check {

/// Outcome of a shrink run.
struct ShrinkResult {
  /// The minimized program; equals the input when nothing could be removed.
  GenProgram Minimal;
  /// The failing report of the minimized program.
  CaseReport Report;
  /// checkProgram evaluations spent.
  int Evaluations = 0;
  /// True when at least one edit was accepted.
  bool Shrunk = false;
};

/// Shrink knobs.
struct ShrinkOptions {
  /// Evaluation budget; each candidate edit costs one checkProgram run.
  int MaxEvaluations = 500;
};

/// Minimizes \p P, whose current report \p Original must be failing. An
/// edit is kept only when the edited program still fails with at least one
/// failure from the same oracle family as Original's first failure.
ShrinkResult shrink(const GenProgram &P, const CaseReport &Original,
                    const CheckOptions &Check, const ShrinkOptions &Opts = {});

} // namespace aqua::check

#endif // AQUA_CHECK_SHRINKER_H
