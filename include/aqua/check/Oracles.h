//===- aqua/check/Oracles.h - Multi-oracle differential engine ---*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-testing oracle lattice: one generated program is pushed
/// through parse -> lower -> manage -> codegen -> simulate, and every pair
/// of layers that is defined on the same object is cross-checked:
///
///  * Frontend    -- generated source must parse and lower (the generator
///                   emits valid programs by construction);
///  * Graph       -- the lowered DAG passes AssayGraph::verify();
///  * Solvers     -- DAGSolve-feasible implies the Figure 3 LP is Optimal,
///                   the LP objective dominates DAGSolve's (it solves a
///                   relaxation), and on small graphs the IVol ILP optimum,
///                   scaled to nl, never exceeds the RVol LP optimum;
///  * Assignment  -- every feasible RVol assignment (DAGSolve, LP, and the
///                   manager's final answer) passes core/Verify's Figure 3
///                   constraint checker;
///  * Rounding    -- the IVol assignment conserves integer flow (non-excess
///                   uses never exceed the producer's units), keeps every
///                   edge at one least count and every node within
///                   capacity, and recomputes node units exactly from edge
///                   units (Rational arithmetic, no tolerance);
///  * Simulation  -- managed AIS runs to completion on the PLoC simulator
///                   and every sensed composition equals the prediction
///                   computed from the rounded integer edge volumes in
///                   exact fraction arithmetic;
///  * Metamorphic -- insertion-order permutation of the DAG and uniform mix
///                   ratio scaling leave the canonical fingerprint (and the
///                   canonical listing) bit-identical; binarize/cascade
///                   rewrites leave the exact sensed-composition prediction
///                   unchanged;
///  * Cache       -- the compile service returns the *same* artifact object
///                   for fingerprint-equal requests (memoization is sound);
///  * Engines     -- the dense tableau and bounded revised simplex agree on
///                   the RVol LP (status and optimum), and the warm
///                   bound-delta branch-and-bound engine agrees with the
///                   legacy dense-copy engine on small IVol ILPs;
///  * Presolve    -- presolve-on and presolve-off solves of the RVol LP
///                   agree on status and optimum (the reduction rules are
///                   pure reformulations), the postsolved solution
///                   satisfies the *original* constraints, and devex
///                   pricing agrees with Bland's rule (pivot order never
///                   changes the answer);
///  * Vm          -- the bytecode VM's SimResult is bit-for-bit equal to
///                   the tree-walking simulator's under the same seed:
///                   every volume, second, counter, sense reading, and
///                   error string (exact ==, no tolerance);
///  * Store       -- the artifact codec + persistent solve store round-trip
///                   is lossless: a second service instance on the same
///                   (in-memory) store directory serves the artifact from
///                   its L2, and the reloaded artifact's encoding, AIS
///                   program, and volume assignments are bit-identical to
///                   the in-memory solve's (exact ==, no tolerance);
///  * Cuts        -- the ILP search accelerators are pure: root cutting
///                   planes on vs off, pseudocost/reliability branching vs
///                   plain most-fractional, and restarts on vs off all
///                   reach the same verdict and optimum on the IVol ILP,
///                   and a shape-matched warm basis repair of the RVol LP
///                   under perturbed volumes agrees with the cold solve.
///
/// Exactness policy: structural and integer checks are exact. Checks that
/// compare doubles computed along different code paths (LP objectives, the
/// simulator's composition doubles against the exact fraction prediction)
/// use a tolerance that only covers double conversion, not algorithmic
/// slack.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CHECK_ORACLES_H
#define AQUA_CHECK_ORACLES_H

#include "aqua/check/Generator.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace aqua::check {

/// The oracle families, individually selectable via CheckOptions::Oracles.
enum class Oracle : unsigned {
  Frontend = 0,
  Graph,
  Solvers,
  Assignment,
  Rounding,
  Simulation,
  Metamorphic,
  Cache,
  Engines,
  Presolve,
  Vm,
  Store,
  Cuts,
};
inline constexpr unsigned NumOracles = 13;

/// Short lower-case name, e.g. "solvers".
const char *oracleName(Oracle O);

/// Bit mask helpers for CheckOptions::Oracles.
inline constexpr unsigned oracleBit(Oracle O) {
  return 1u << static_cast<unsigned>(O);
}
inline constexpr unsigned AllOracles = (1u << NumOracles) - 1;

/// Parses a comma-separated oracle-name list ("solvers,rounding") into a
/// mask. Unknown names are an error.
Expected<unsigned> parseOracleFilter(std::string_view List);

/// One oracle violation.
struct Failure {
  Oracle O = Oracle::Frontend;
  std::string Message;
};

/// Engine configuration.
struct CheckOptions {
  core::MachineSpec Spec;
  core::ManagerOptions Manage;
  codegen::MachineLayout Layout;
  /// Enabled oracle families (oracleBit masks).
  unsigned Oracles = AllOracles;
  /// The IVol ILP is exponential in the worst case; graphs with more live
  /// edges than this skip the ILP cross-check.
  int MaxIlpEdges = 16;
  /// Branch-and-bound budget for the ILP cross-check.
  std::int64_t IlpMaxNodes = 20000;
  double IlpTimeLimitSec = 10.0;
  /// Fixed separation/concentration yield handed to the simulator; the
  /// harness sets it to the generated program's shared yield fraction.
  double FixedYield = 0.5;
  /// Slack for comparing doubles computed along different code paths.
  double Tolerance = 1e-6;
};

/// What happened for one checked program (the Failures are the verdict;
/// the rest is telemetry for the harness summary).
struct CaseReport {
  bool FrontendOk = false;
  /// Went through volume management (no statically unknown volumes).
  bool Managed = false;
  bool Feasible = false;
  core::SolveMethod Method = core::SolveMethod::DagSolve;
  int Nodes = 0, Edges = 0;
  bool RanIlp = false;
  bool Simulated = false;
  /// The simulator run was clean (no underflow/overflow/sub-least-count
  /// events), so the composition cross-check was exact.
  bool ExactComposition = false;
  std::vector<Failure> Failures;

  bool ok() const { return Failures.empty(); }
  /// One line per failure, prefixed with the oracle name.
  std::string str() const;
};

/// Runs every enabled oracle on \p Source.
CaseReport checkSource(std::string_view Source, const CheckOptions &Opts);

/// Runs checkSource on the rendered program plus the structure-aware
/// metamorphic checks (ratio scaling, cache cross-compilation) that need
/// the GenProgram skeleton. Overrides Opts.FixedYield with P's shared
/// yield so simulated separations reproduce the hinted fractions.
CaseReport checkProgram(const GenProgram &P, const CheckOptions &Opts);

} // namespace aqua::check

#endif // AQUA_CHECK_ORACLES_H
