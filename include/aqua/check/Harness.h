//===- aqua/check/Harness.h - Differential-testing harness -------*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The corpus driver: derives one seed per case from a master seed, runs
/// generateProgram -> checkProgram, shrinks failures, and writes each
/// minimal repro to `aqua-check-repro-<caseseed>.assay` (the file replays
/// through `aquacheck --replay`). Deterministic end to end: the same master
/// seed, case count, difficulty, and oracle mask reproduce the same corpus
/// and the same verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_CHECK_HARNESS_H
#define AQUA_CHECK_HARNESS_H

#include "aqua/check/Generator.h"
#include "aqua/check/Oracles.h"
#include "aqua/check/Shrinker.h"

#include <cstdint>
#include <string>
#include <vector>

namespace aqua::check {

/// Corpus configuration.
struct HarnessOptions {
  std::uint64_t Seed = 1;
  int Cases = 100;
  GenConfig Gen;
  CheckOptions Check;
  /// Minimize failing cases before reporting.
  bool Shrink = true;
  ShrinkOptions ShrinkOpts;
  /// Directory for repro files; empty disables writing.
  std::string ReproDir = ".";
};

/// One failing case, post-shrink.
struct FailedCase {
  std::uint64_t CaseSeed = 0;
  /// The failing report of the minimal program.
  CaseReport Report;
  GenProgram Minimal;
  int ShrinkEvaluations = 0;
  /// Path of the written repro file; empty when writing was disabled or
  /// failed.
  std::string ReproPath;
};

/// Aggregate corpus outcome.
struct HarnessResult {
  int Cases = 0;
  int Failures = 0;
  // Telemetry tallies across all cases.
  int FrontendOk = 0;
  int Managed = 0;
  int Feasible = 0;
  int SolvedByLP = 0;
  int Simulated = 0;
  int ExactComposition = 0;
  int RanIlp = 0;
  std::vector<FailedCase> Failed;

  bool ok() const { return Failures == 0; }
  /// Human-readable multi-line summary.
  std::string summary() const;
  /// Machine-readable JSON summary (one object, stable key order).
  std::string json() const;
};

/// Runs the corpus. Progress and failure detail go through \p Log when
/// non-null (one call per line, no trailing newline).
HarnessResult runHarness(const HarnessOptions &Opts,
                         void (*Log)(const std::string &) = nullptr);

/// Renders the repro file contents for a failing case: the minimal source
/// prefixed with `--` comment lines carrying the seed, yield, and failure
/// messages needed to replay it.
std::string renderRepro(const FailedCase &F, const HarnessOptions &Opts);

} // namespace aqua::check

#endif // AQUA_CHECK_HARNESS_H
