//===- bench_service_persistent.cpp - Persistent-store service benchmark --------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The tentpole claim of the persistent solve store, measured end to end on
// a real on-disk store directory:
//
//  1. cold start, empty store  -- every distinct assay is an LP/DAGSolve
//     cold solve, written through to disk;
//  2. restart on the warm store -- a *new* service process image serves
//     the same manifest entirely from the store: `l2_hits` equals the
//     manifest size and `cold_solves` is ZERO (these two are hard gates,
//     not timing gates -- they fail perf-smoke regardless of runner load);
//  3. mixed hit/miss traffic across 4 worker threads on the shared store,
//     with per-request p50/p99 latency.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/service/CompileService.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace aqua;
using namespace benchutil;

namespace {

struct Workload {
  const char *Name;
  std::shared_ptr<const ir::AssayGraph> Graph;
};

std::shared_ptr<const ir::AssayGraph> share(ir::AssayGraph G) {
  return std::make_shared<const ir::AssayGraph>(std::move(G));
}

/// The warm manifest: the distinct structures a deployment re-submits
/// plate after plate.
std::vector<Workload> manifestWorkloads() {
  return {
      {"glucose", share(assays::buildGlucoseAssay())},
      {"figure2", share(assays::buildFigure2Example())},
      {"enzyme3", share(assays::buildEnzymeAssay(3))},
      {"enzyme4", share(assays::buildEnzymeAssay(4))},
      {"enzyme5", share(assays::buildEnzymeAssay(5))},
      {"bradford", share(assays::buildBradfordProtein())},
      {"pcr8", share(assays::buildPcrMasterMix(8))},
      {"pcr12", share(assays::buildPcrMasterMix(12))},
      {"mic8", share(assays::buildMicPanel(8))},
      {"mic6", share(assays::buildMicPanel(6))},
  };
}

/// Structures the store has never seen: the miss side of phase 3.
std::vector<Workload> freshWorkloads() {
  return {
      {"enzyme6", share(assays::buildEnzymeAssay(6))},
      {"pcr5", share(assays::buildPcrMasterMix(5))},
      {"pcr7", share(assays::buildPcrMasterMix(7))},
      {"mic4", share(assays::buildMicPanel(4))},
      {"bradford42", share(assays::buildBradfordProtein(4, 2))},
  };
}

std::vector<service::CompileRequest>
cycleBatch(const std::vector<Workload> &Workloads, int Requests) {
  std::vector<service::CompileRequest> Batch;
  Batch.reserve(Requests);
  for (int I = 0; I < Requests; ++I) {
    const Workload &W = Workloads[I % Workloads.size()];
    service::CompileRequest R;
    R.Name = W.Name;
    R.Graph = W.Graph;
    Batch.push_back(std::move(R));
  }
  return Batch;
}

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  std::size_t I = static_cast<std::size_t>(P * (V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

std::string makeStoreDir() {
  char Template[] = "/tmp/aqua-bench-store-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir) {
    std::fprintf(stderr, "mkdtemp failed; falling back to ./bench-store\n");
    return "bench-store";
  }
  return Dir;
}

} // namespace

int main() {
  const std::string StoreDir = makeStoreDir();
  std::vector<Workload> Manifest = manifestWorkloads();
  JsonReporter Json("service_persistent");
  header("Persistent solve store: cold start vs warm-from-disk restart");

  // "Cold solves" means requests that genuinely ran the solve pipeline:
  // the service.cache.misses counter moves exactly once per first solve
  // (cache-internal Insertions would double-count L2 -> L1 promotions).
  aqua::obs::Counter &ColdSolves =
      aqua::obs::metrics().counter("service.cache.misses");

  // ---- Phase 1: cold start on an empty store.
  double ColdSec = 0.0;
  {
    service::ServiceOptions Options;
    Options.Threads = 1;
    Options.StoreDir = StoreDir;
    service::CompileService Service(Options);
    MetricsDelta Delta;
    std::uint64_t SolvesBefore = ColdSolves.value();
    WallTimer Wall;
    std::size_t Failures = 0;
    for (const Workload &W : Manifest) {
      service::CompileRequest R;
      R.Name = W.Name;
      R.Graph = W.Graph;
      if (!Service.compileNow(R).Ok)
        ++Failures;
    }
    ColdSec = Wall.seconds();
    std::uint64_t Solves = ColdSolves.value() - SolvesBefore;
    service::ServiceStats S = Service.stats();
    std::printf("  cold start:    %zu assays in %s (%llu solves, "
                "%llu L2 hits)\n",
                Manifest.size(), fmtSeconds(ColdSec).c_str(),
                static_cast<unsigned long long>(Solves),
                static_cast<unsigned long long>(S.CacheHitsL2));
    BenchRecord &Rec = Json.add("cold_start")
                           .param("store", "empty")
                           .param("assays", std::to_string(Manifest.size()))
                           .metric("wall_sec", ColdSec)
                           .metric("cold_solves", static_cast<double>(Solves))
                           .metric("l2_hits",
                                   static_cast<double>(S.CacheHitsL2))
                           .metric("failures", static_cast<double>(Failures));
    Delta.addTo(Rec);
    if (Failures || Solves != Manifest.size())
      return 1;
  } // Service destroyed: the "process" exits, only the store survives.

  // ---- Phase 2: restart; the same manifest must come entirely from disk.
  double WarmSec = 0.0;
  std::uint64_t WarmL2Hits = 0, WarmColdSolves = 0;
  {
    service::ServiceOptions Options;
    Options.Threads = 1;
    Options.StoreDir = StoreDir;
    service::CompileService Service(Options);
    MetricsDelta Delta;
    std::uint64_t SolvesBefore = ColdSolves.value();
    WallTimer Wall;
    std::size_t Failures = 0;
    for (const Workload &W : Manifest) {
      service::CompileRequest R;
      R.Name = W.Name;
      R.Graph = W.Graph;
      service::CompileResponse Resp = Service.compileNow(R);
      if (!Resp.Ok)
        ++Failures;
      else if (!Resp.CacheHitL2)
        std::fprintf(stderr, "  warm miss: %s was not served from the L2\n",
                     W.Name);
    }
    WarmSec = Wall.seconds();
    service::ServiceStats S = Service.stats();
    WarmL2Hits = S.CacheHitsL2;
    WarmColdSolves = ColdSolves.value() - SolvesBefore;
    std::printf("  warm restart:  %zu assays in %s (%llu L2 hits, "
                "%llu cold solves)\n",
                Manifest.size(), fmtSeconds(WarmSec).c_str(),
                static_cast<unsigned long long>(WarmL2Hits),
                static_cast<unsigned long long>(WarmColdSolves));
    BenchRecord &Rec = Json.add("warm_restart")
                           .param("store", "warm")
                           .param("assays", std::to_string(Manifest.size()))
                           .metric("wall_sec", WarmSec)
                           .metric("cold_solves",
                                   static_cast<double>(WarmColdSolves))
                           .metric("l2_hits", static_cast<double>(WarmL2Hits))
                           .metric("failures", static_cast<double>(Failures));
    Delta.addTo(Rec);
    if (Failures)
      return 1;
  }

  // ---- Phase 3: mixed hit/miss across 4 workers sharing the warm store.
  {
    const int Requests = 120;
    service::ServiceOptions Options;
    Options.Threads = 4;
    Options.StoreDir = StoreDir;
    service::CompileService Service(Options);
    MetricsDelta Delta;
    std::uint64_t SolvesBefore = ColdSolves.value();
    // 2/3 manifest traffic (store hits on first touch, then L1), 1/3
    // never-seen structures (cold solves).
    std::vector<Workload> Mixed = Manifest;
    for (const Workload &W : freshWorkloads())
      Mixed.push_back(W);
    WallTimer Wall;
    std::vector<service::CompileResponse> Responses =
        Service.compileBatch(cycleBatch(Mixed, Requests));
    double MixedSec = Wall.seconds();
    std::vector<double> Latencies;
    std::size_t Failures = 0;
    for (const service::CompileResponse &R : Responses) {
      Latencies.push_back(R.LatencySec);
      if (!R.Ok)
        ++Failures;
    }
    service::ServiceStats S = Service.stats();
    std::uint64_t Solves = ColdSolves.value() - SolvesBefore;
    double P50 = percentile(Latencies, 0.50), P99 = percentile(Latencies, 0.99);
    std::printf("  mixed 4-thread: %d requests in %s (p50 %s, p99 %s, "
                "%llu L2 hits, %llu solves)\n",
                Requests, fmtSeconds(MixedSec).c_str(),
                fmtSeconds(P50).c_str(), fmtSeconds(P99).c_str(),
                static_cast<unsigned long long>(S.CacheHitsL2),
                static_cast<unsigned long long>(Solves));
    BenchRecord &Rec = Json.add("mixed_4workers")
                           .param("threads", "4")
                           .param("requests", std::to_string(Requests))
                           .metric("wall_sec", MixedSec)
                           .metric("throughput_per_sec", Requests / MixedSec)
                           .metric("p50_sec", P50)
                           .metric("p99_sec", P99)
                           .metric("l2_hits",
                                   static_cast<double>(S.CacheHitsL2))
                           .metric("cold_solves", static_cast<double>(Solves))
                           .metric("failures", static_cast<double>(Failures));
    Delta.addTo(Rec);
    if (Failures)
      return 1;
  }

  // ---- Gates.
  // Hard (correctness, never timing-waived): a restarted service must
  // serve the whole manifest from disk without a single cold solve.
  bool WarmFromDisk =
      WarmL2Hits == Manifest.size() && WarmColdSolves == 0;
  std::printf("\n  warm restart from disk: %llu/%zu L2 hits, %llu cold "
              "solves (gate: all hits, zero solves): %s\n",
              static_cast<unsigned long long>(WarmL2Hits), Manifest.size(),
              static_cast<unsigned long long>(WarmColdSolves),
              WarmFromDisk ? "PASS" : "FAIL");
  // Timing (waived under AQUAVOL_BENCH_NO_TIMING_GATE): reloading from
  // disk must beat re-solving.
  double Speedup = WarmSec > 0 ? ColdSec / WarmSec : 0.0;
  std::printf("  cold/warm speedup: %.1fx (target >= 2x): %s\n", Speedup,
              Speedup >= 2.0 ? "PASS" : "FAIL");
  Json.add("summary")
      .metric("cold_sec", ColdSec)
      .metric("warm_sec", WarmSec)
      .metric("cold_warm_speedup", Speedup)
      .metric("warm_l2_hits", static_cast<double>(WarmL2Hits))
      .metric("warm_cold_solves", static_cast<double>(WarmColdSolves));

  std::string Cleanup = "rm -rf '" + StoreDir + "'";
  (void)std::system(Cleanup.c_str());
  if (!WarmFromDisk)
    return 1;
  if (Speedup >= 2.0)
    return 0;
  return noTimingGate() ? 0 : 1;
}
