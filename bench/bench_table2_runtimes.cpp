//===- bench_table2_runtimes.cpp - Table 2 reproduction (run times) -------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the run-time columns of Table 2: DAGSolve vs LP wall time
// and the LP constraint counts, for Glucose, Glycomics, Enzyme and
// Enzyme10.
//
// Absolute times are not comparable with the paper's 750 MHz Pentium III;
// the reproduced *shape* is (1) DAGSolve is orders of magnitude faster
// than LP on every assay, and (2) LP's time explodes with assay size
// (Enzyme10) while DAGSolve stays linear. Enzyme10's LP runs under a time
// budget by default; set AQUAVOL_BENCH_FULL=1 to run it to completion.
//
// Constraint-count note: our DAG keeps incubate/sense nodes explicit, so
// the counted formulations are somewhat larger than the paper's (which
// appears to fold unary operations into their producers); the growth trend
// across assays is the comparable quantity.
//
// A second section times *execution* of the managed programs on both
// engines (tree-walking runtime::Simulator vs the aqua/vm bytecode
// interpreter); --engine=vm|interp|both restricts it, and
// BENCH_table2_runtimes.json records both so the speedup is visible in
// committed BENCH files.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Partition.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/vm/Compiler.h"
#include "aqua/vm/VM.h"

#include <cstring>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

struct Row {
  const char *Name;
  double DagSec = 0.0;
  double LpSec = -1.0; // -1: hit the budget.
  std::int64_t LpIters = 0;
  int Constraints = 0;
  const char *PaperDag;
  const char *PaperLp;
  const char *PaperCons;
};

void printRow(const Row &R) {
  std::string Lp = R.LpSec >= 0.0 ? fmtSeconds(R.LpSec) : "> budget";
  std::string Ratio =
      R.LpSec >= 0.0 && R.DagSec > 0.0
          ? std::to_string(static_cast<long long>(R.LpSec / R.DagSec)) + "x"
          : "-";
  std::printf("  %-10s %12s %12s %9s %8d   | paper: %8s %9s %6s\n", R.Name,
              fmtSeconds(R.DagSec).c_str(), Lp.c_str(), Ratio.c_str(),
              R.Constraints, R.PaperDag, R.PaperLp, R.PaperCons);
}

/// LP options: constrained inputs of a partition plan become node upper
/// bounds, approximating the paper's per-partition LP total.
FormulationOptions glycomicsLPOptions(const PartitionPlan &Plan,
                                      const MachineSpec &Spec) {
  FormulationOptions FOpts;
  for (const auto &CI : Plan.Inputs) {
    double Ub = CI.FromInputPort ? CI.Share.toDouble() * Spec.MaxCapacityNl
                                 : Spec.MaxCapacityNl;
    FOpts.NodeUpperBoundNl.push_back({CI.Node, Ub});
  }
  return FOpts;
}

/// Times managed execution of \p Raw on one engine (program prepared and,
/// for the vm, compiled outside the timed region). Returns {median wall
/// seconds, instructions per run}, or {-1, 0} when management fails.
std::pair<double, std::uint64_t> timeManagedRun(const AssayGraph &Raw,
                                                bool UseVm) {
  MachineSpec Spec;
  ManagerResult VM = manageVolumes(Raw, Spec);
  if (!VM.Feasible)
    return {-1.0, 0};
  VolumeAssignment Metered = integerToNl(VM.Graph, VM.Rounded, Spec);
  codegen::CodegenOptions CG;
  CG.Mode = codegen::VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = codegen::generateAIS(VM.Graph, {}, CG);
  runtime::SimOptions SO;
  SO.Graph = &VM.Graph;
  runtime::SimResult S;
  double Sec;
  if (UseVm) {
    vm::CompileOptions CO;
    CO.Spec = SO.Spec;
    CO.Graph = SO.Graph;
    auto Prog = vm::compile(*P, CO);
    if (!Prog.ok())
      return {-1.0, 0};
    vm::RunOptions RO;
    RO.Seed = SO.Seed;
    vm::Interp I;
    I.bind(*Prog);
    Sec = medianSeconds(
        [&] {
          I.reset(RO);
          I.run();
          S = I.finish();
        },
        9);
  } else {
    Sec = medianSeconds([&] { S = runtime::simulate(*P, SO); }, 9);
  }
  return {Sec, static_cast<std::uint64_t>(S.InstructionsExecuted)};
}

} // namespace

int main(int argc, char **argv) {
  bool RunInterp = true, RunVm = true;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--engine=interp"))
      RunVm = false;
    else if (!std::strcmp(argv[I], "--engine=vm"))
      RunInterp = false;
    else if (std::strcmp(argv[I], "--engine=both")) {
      std::fprintf(stderr, "usage: %s [--engine=vm|interp|both]\n", argv[0]);
      return 2;
    }
  }

  MachineSpec Spec;
  double Budget = fullRun() ? 0.0 : 15.0;
  JsonReporter Json("table2_runtimes");
  auto solverRecord = [&Json](const Row &R) {
    Json.add(std::string(R.Name) + "/solve")
        .param("assay", R.Name)
        .metric("dagsolve_sec", R.DagSec)
        .metric("lp_sec", R.LpSec)
        .metric("lp_constraints", R.Constraints);
  };

  std::printf("Table 2 (run-time columns): DAGSolve vs LP\n");
  std::printf("  %-10s %12s %12s %9s %8s   | %s\n", "assay", "DAGSolve",
              "LP", "LP/DAG", "LP-cons",
              "paper (750 MHz PIII): DAGSolve, LP, cons");

  // ----- Glucose.
  {
    AssayGraph G = assays::buildGlucoseAssay();
    Row R{"Glucose", 0, 0, 0, 0, "~0 s", "0.08 s", "49"};
    R.DagSec = medianSeconds([&] { dagSolve(G, Spec); }, 9);
    LPVolumeResult LP;
    R.LpSec = medianSeconds([&] { LP = solveRVolLP(G, Spec); }, 9);
    R.LpIters = LP.Solution.Iterations;
    R.Constraints = LP.CountedConstraints;
    printRow(R);
    solverRecord(R);
  }

  // ----- Glycomics: partitioned; Vnorms at compile time, dispensing per
  // partition; LP over the partitioned graph with constrained inputs.
  {
    AssayGraph G = assays::buildGlycomicsAssay();
    auto Plan = buildPartitionPlan(G, Spec).unwrap();
    Row R{"Glycomics", 0, 0, 0, 0, "0.003 s", "0.28 s", "84"};
    R.DagSec = medianSeconds([&] {
      auto P2 = buildPartitionPlan(G, Spec).unwrap();
      std::vector<double> Avail(P2.Inputs.size(), -1.0);
      for (size_t I = 0; I < P2.Inputs.size(); ++I)
        if (!P2.Inputs[I].FromInputPort)
          Avail[I] = 50.0;
      for (size_t P = 0; P < P2.Parts.size(); ++P)
        dispensePartition(P2, static_cast<int>(P), Avail, Spec);
    }, 9);
    FormulationOptions FOpts = glycomicsLPOptions(Plan, Spec);
    LPVolumeResult LP;
    R.LpSec = medianSeconds(
        [&] { LP = solveRVolLP(Plan.Graph, Spec, FOpts); }, 9);
    R.Constraints = LP.CountedConstraints;
    printRow(R);
    solverRecord(R);
  }

  // ----- Enzyme (4 dilutions). LP is infeasible on the raw assay (that is
  // the Figure 14 storyline); Table 2 measures solver effort, so we time
  // the solve to its (in)feasibility verdict, like the paper's run.
  {
    AssayGraph G = assays::buildEnzymeAssay(4);
    Row R{"Enzyme", 0, 0, 0, 0, "0.016 s", "0.73 s", "872"};
    R.DagSec = medianSeconds([&] { dagSolve(G, Spec); }, 9);
    LPVolumeResult LP;
    R.LpSec = medianSeconds([&] { LP = solveRVolLP(G, Spec); }, 5);
    R.Constraints = LP.CountedConstraints;
    printRow(R);
    solverRecord(R);
  }

  // ----- Enzyme10.
  {
    AssayGraph G = assays::buildEnzymeAssay(10);
    Row R{"Enzyme10", 0, 0, 0, 0, "1.57 s", "1211 s", "11258"};
    R.DagSec = medianSeconds([&] { dagSolve(G, Spec); }, 3);
    lp::SolverOptions SOpts;
    SOpts.Simplex.TimeLimitSec = Budget;
    LPVolumeResult LP;
    double Sec = onceSeconds([&] { LP = solveRVolLP(G, Spec, {}, SOpts); });
    R.Constraints = LP.CountedConstraints;
    bool Finished = LP.Solution.Status == lp::SolveStatus::Optimal ||
                    LP.Solution.Status == lp::SolveStatus::Infeasible;
    R.LpSec = Finished ? Sec : -1.0;
    printRow(R);
    solverRecord(R);
    if (!Finished)
      std::printf("    (Enzyme10 LP stopped at the %.0f s budget with "
                  "status '%s' after %lld pivots;\n     set "
                  "AQUAVOL_BENCH_FULL=1 to run it to completion -- minutes "
                  "of runtime, which is the paper's point)\n",
                  Budget, lp::solveStatusName(LP.Solution.Status),
                  static_cast<long long>(LP.Solution.Iterations));
    else if (LP.Solution.Status == lp::SolveStatus::Infeasible)
      std::printf("    (the raw Enzyme10 is LP-infeasible on a 100 nl "
                  "device -- proven quickly;\n     the wide-capacity row "
                  "below shows an optimizing run like the paper's)\n");
  }

  // ----- Enzyme10 on a wide-capacity device (1000 nl): the LP is feasible
  // and the simplex must optimize, reproducing the paper's minutes-long
  // solve; DAGSolve is unaffected.
  {
    MachineSpec Wide;
    Wide.MaxCapacityNl = 1000.0;
    AssayGraph G = assays::buildEnzymeAssay(10, /*MaxRatioExp=*/1);
    Row R{"Enz10/wide", 0, 0, 0, 0, "1.57 s", "1211 s", "11258"};
    R.DagSec = medianSeconds([&] { dagSolve(G, Wide); }, 3);
    lp::SolverOptions SOpts;
    SOpts.Simplex.TimeLimitSec = Budget;
    LPVolumeResult LP;
    double Sec = onceSeconds([&] { LP = solveRVolLP(G, Wide, {}, SOpts); });
    R.Constraints = LP.CountedConstraints;
    R.LpSec = LP.Solution.Status == lp::SolveStatus::Optimal ? Sec : -1.0;
    printRow(R);
    solverRecord(R);
    if (R.LpSec < 0.0)
      std::printf("    (optimizing LP exceeded the %.0f s budget after "
                  "%lld pivots; AQUAVOL_BENCH_FULL=1 runs it out)\n",
                  Budget, static_cast<long long>(LP.Solution.Iterations));
  }

  // ----- Managed execution: tree-walking simulator vs bytecode VM. The
  // same managed program, the same seed, bit-identical SimResults (the vm
  // oracle enforces it); only the wall time differs.
  std::printf("\nManaged execution (same program, both engines):\n");
  std::printf("  %-10s %12s %12s %10s %14s\n", "assay", "interp", "vm",
              "speedup", "instr/run");
  {
    struct ExecCase {
      const char *Name;
      int Dilutions; // 0 = glucose.
    };
    ExecCase ExecCases[] = {{"Glucose", 0}, {"Enzyme", 4}};
    for (const ExecCase &C : ExecCases) {
      AssayGraph G = C.Dilutions == 0 ? assays::buildGlucoseAssay()
                                      : assays::buildEnzymeAssay(C.Dilutions);
      double InterpSec = -1.0, VmSec = -1.0;
      std::uint64_t Instrs = 0;
      if (RunInterp) {
        auto [Sec, N] = timeManagedRun(G, /*UseVm=*/false);
        InterpSec = Sec;
        Instrs = N;
        Json.add(std::string(C.Name) + "/exec")
            .param("assay", C.Name)
            .param("engine", "interp")
            .metric("median_sec", Sec)
            .metric("instructions", static_cast<double>(N))
            .metric("instr_per_sec",
                    Sec > 0.0 ? static_cast<double>(N) / Sec : 0.0);
      }
      if (RunVm) {
        auto [Sec, N] = timeManagedRun(G, /*UseVm=*/true);
        VmSec = Sec;
        Instrs = N;
        Json.add(std::string(C.Name) + "/exec")
            .param("assay", C.Name)
            .param("engine", "vm")
            .metric("median_sec", Sec)
            .metric("instructions", static_cast<double>(N))
            .metric("instr_per_sec",
                    Sec > 0.0 ? static_cast<double>(N) / Sec : 0.0);
      }
      std::string Speedup =
          InterpSec > 0.0 && VmSec > 0.0
              ? std::to_string(static_cast<long long>(InterpSec / VmSec)) + "x"
              : "-";
      std::printf("  %-10s %12s %12s %10s %14llu\n", C.Name,
                  InterpSec >= 0.0 ? fmtSeconds(InterpSec).c_str() : "-",
                  VmSec >= 0.0 ? fmtSeconds(VmSec).c_str() : "-",
                  Speedup.c_str(), static_cast<unsigned long long>(Instrs));
    }
  }

  std::printf("\nShape check: DAGSolve is consistently orders of magnitude "
              "faster than LP,\nand the gap widens with assay size "
              "(the paper's ~80x average and Enzyme10 blow-up).\n");
  return 0;
}
