//===- bench_parallelism.cpp - Functional-unit parallelism extension --------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Extension study (beyond the paper, which executes sequentially): how
// much wet-path time do parallel functional units buy once volumes are
// managed? List-scheduled makespan for 1/2/4 units of each kind against
// the serial wet time, per assay. The enzyme assay's 64 independent
// combination mixes are the parallelism showcase; glycomics is a chain
// and gains nothing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Schedule.h"
#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  std::printf("Wet-path parallelism (list-scheduled makespan, seconds)\n");
  std::printf("  %-10s %10s %12s %12s %12s %14s\n", "assay", "serial",
              "1 unit/kind", "2 units", "4 units", "critical path");

  struct Case {
    const char *Name;
    int Dilutions;
  };
  for (const Case &C : {Case{"Glucose", 0}, Case{"Glycomics", -1},
                        Case{"Enzyme", 4}, Case{"Enzyme6", 6}}) {
    AssayGraph G = C.Dilutions == 0    ? assays::buildGlucoseAssay()
                   : C.Dilutions == -1 ? assays::buildGlycomicsAssay()
                                       : assays::buildEnzymeAssay(C.Dilutions);
    double Serial = 0.0, Critical = 0.0;
    std::string Row;
    for (int Units : {1, 2, 4}) {
      ScheduleOptions Opts;
      Opts.Layout.Mixers = Units;
      Opts.Layout.Heaters = Units;
      Opts.Layout.Sensors = Units;
      Opts.Layout.Separators = Units;
      auto S = scheduleAssay(G, Opts);
      if (!S.ok()) {
        Row += format(" %12s", "-");
        continue;
      }
      Serial = S->SerialSeconds;
      Critical = S->CriticalPathSeconds;
      Row += format(" %9.0f (%4.1fx)", S->MakespanSeconds, S->speedup());
    }
    std::printf("  %-10s %10.0f %s %11.0f\n", C.Name, Serial, Row.c_str(),
                Critical);
  }

  std::printf("\nManaged volumes make this schedulable at all: without "
              "volume management the\noperations' volumes depend on "
              "regeneration decisions made serially at run time.\n");
  return 0;
}
