//===- BenchUtil.h - Shared helpers for the reproduction benches --*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: timing with
/// repetition, row printing, and the AQUAVOL_BENCH_FULL switch that lifts
/// the default time caps (the full Enzyme10 LP runs for minutes by design;
/// that is the paper's point).
///
//===----------------------------------------------------------------------===//

#ifndef AQUAVOL_BENCH_BENCHUTIL_H
#define AQUAVOL_BENCH_BENCHUTIL_H

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace benchutil {

/// True when AQUAVOL_BENCH_FULL=1: no time caps, full problem sizes.
inline bool fullRun() {
  const char *Env = std::getenv("AQUAVOL_BENCH_FULL");
  return Env && Env[0] == '1';
}

/// True when AQUAVOL_BENCH_NO_TIMING_GATE=1: benches that normally fail on
/// wall-clock regressions only report them. CI perf-smoke sets this so a
/// loaded runner cannot fail the build on timing noise; solver-status
/// regressions still fail.
inline bool noTimingGate() {
  const char *Env = std::getenv("AQUAVOL_BENCH_NO_TIMING_GATE");
  return Env && Env[0] == '1';
}

/// Median wall-clock seconds of \p Reps runs of \p Fn (after one warmup),
/// in the spirit of the paper's "averaged over 10 runs".
inline double medianSeconds(const std::function<void()> &Fn, int Reps = 5) {
  Fn(); // Warmup.
  std::vector<double> Times;
  Times.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    aqua::WallTimer T;
    Fn();
    Times.push_back(T.seconds());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// One timed run (for expensive cases).
inline double onceSeconds(const std::function<void()> &Fn) {
  aqua::WallTimer T;
  Fn();
  return T.seconds();
}

inline void header(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

/// "paper vs measured" row.
inline void paperRow(const char *What, const std::string &Paper,
                     const std::string &Measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", What, Paper.c_str(),
              Measured.c_str());
}

inline std::string fmtSeconds(double S) {
  char Buf[64];
  if (S < 1e-3)
    std::snprintf(Buf, sizeof(Buf), "%.0f us", S * 1e6);
  else if (S < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms", S * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f s", S);
  return Buf;
}

/// Median and p95 wall-clock seconds over repeated runs.
struct TimingStats {
  double MedianSec = 0.0;
  double P95Sec = 0.0;
  int Reps = 0;
};

/// Runs \p Fn \p Reps times (after one warmup) and returns median/p95.
inline TimingStats timedStats(const std::function<void()> &Fn, int Reps = 5) {
  Fn(); // Warmup.
  std::vector<double> Times;
  Times.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    aqua::WallTimer T;
    Fn();
    Times.push_back(T.seconds());
  }
  std::sort(Times.begin(), Times.end());
  TimingStats S;
  S.Reps = Reps;
  S.MedianSec = Times[Times.size() / 2];
  S.P95Sec = Times[std::min(Times.size() - 1,
                            static_cast<size_t>(Times.size() * 95 / 100))];
  return S;
}

/// One machine-readable benchmark record: a name, string parameters, and
/// numeric metrics (timings, iteration/node counts, throughputs).
struct BenchRecord {
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Params;
  std::vector<std::pair<std::string, double>> Metrics;

  BenchRecord &param(std::string Key, std::string Value) {
    Params.emplace_back(std::move(Key), std::move(Value));
    return *this;
  }
  BenchRecord &metric(std::string Key, double Value) {
    Metrics.emplace_back(std::move(Key), Value);
    return *this;
  }
  BenchRecord &timing(const TimingStats &S) {
    metric("median_sec", S.MedianSec);
    metric("p95_sec", S.P95Sec);
    metric("reps", S.Reps);
    return *this;
  }
};

/// Snapshot-and-diff over the global metrics registry: construct before a
/// measured region, then `addTo()` folds every counter that moved into a
/// BenchRecord (metric key = prefix + name with '.' -> '_', so the bench
/// JSON stays flat). This is how the benches report solver work (pivots,
/// B&B nodes, cache traffic) without threading counters through APIs.
class MetricsDelta {
public:
  explicit MetricsDelta(aqua::obs::MetricsRegistry &R = aqua::obs::metrics())
      : Registry(R), Before(R.counterValues()) {}

  BenchRecord &addTo(BenchRecord &Rec, const std::string &Prefix = "") const {
    for (const auto &[Name, After] : Registry.counterValues()) {
      auto It = Before.find(Name);
      std::uint64_t Start = It == Before.end() ? 0 : It->second;
      if (After == Start)
        continue;
      std::string Key = Prefix + Name;
      for (char &C : Key)
        if (C == '.')
          C = '_';
      Rec.metric(Key, static_cast<double>(After - Start));
    }
    return Rec;
  }

private:
  aqua::obs::MetricsRegistry &Registry;
  std::map<std::string, std::uint64_t> Before;
};

/// Accumulates BenchRecords and writes them as BENCH_<bench>.json -- the
/// machine-readable artifact the CI perf-smoke job uploads and diffs. The
/// output directory defaults to the working directory and can be overridden
/// with AQUAVOL_BENCH_JSON_DIR.
class JsonReporter {
public:
  explicit JsonReporter(std::string BenchName) : Bench(std::move(BenchName)) {}
  JsonReporter(const JsonReporter &) = delete;
  JsonReporter &operator=(const JsonReporter &) = delete;
  ~JsonReporter() { write(); }

  BenchRecord &add(std::string Name) {
    Records.emplace_back();
    Records.back().Name = std::move(Name);
    return Records.back();
  }

  /// Writes BENCH_<bench>.json; returns false (and warns) on I/O failure.
  bool write() {
    std::string Dir = ".";
    if (const char *Env = std::getenv("AQUAVOL_BENCH_JSON_DIR"))
      if (Env[0] != '\0')
        Dir = Env;
    std::string Path = Dir + "/BENCH_" + Bench + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "{\n  \"bench\": %s,\n  \"records\": [",
                 quoted(Bench).c_str());
    for (size_t I = 0; I < Records.size(); ++I) {
      const BenchRecord &R = Records[I];
      std::fprintf(F, "%s\n    {\"name\": %s,\n     \"params\": {",
                   I ? "," : "", quoted(R.Name).c_str());
      for (size_t J = 0; J < R.Params.size(); ++J)
        std::fprintf(F, "%s%s: %s", J ? ", " : "",
                     quoted(R.Params[J].first).c_str(),
                     quoted(R.Params[J].second).c_str());
      std::fprintf(F, "},\n     \"metrics\": {");
      for (size_t J = 0; J < R.Metrics.size(); ++J)
        std::fprintf(F, "%s%s: %s", J ? ", " : "",
                     quoted(R.Metrics[J].first).c_str(),
                     number(R.Metrics[J].second).c_str());
      std::fprintf(F, "}}");
    }
    std::fprintf(F, "\n  ]\n}\n");
    std::fclose(F);
    std::printf("\nwrote %s (%zu records)\n", Path.c_str(), Records.size());
    return true;
  }

private:
  static std::string quoted(const std::string &S) {
    std::string Out = "\"";
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
    return Out;
  }

  /// JSON has no infinity/nan literals; clamp to null.
  static std::string number(double V) {
    if (!(V == V) || V == std::numeric_limits<double>::infinity() ||
        V == -std::numeric_limits<double>::infinity())
      return "null";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
    return Buf;
  }

  std::string Bench;
  std::vector<BenchRecord> Records;
};

} // namespace benchutil

#endif // AQUAVOL_BENCH_BENCHUTIL_H
