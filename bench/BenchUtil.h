//===- BenchUtil.h - Shared helpers for the reproduction benches --*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: timing with
/// repetition, row printing, and the AQUAVOL_BENCH_FULL switch that lifts
/// the default time caps (the full Enzyme10 LP runs for minutes by design;
/// that is the paper's point).
///
//===----------------------------------------------------------------------===//

#ifndef AQUAVOL_BENCH_BENCHUTIL_H
#define AQUAVOL_BENCH_BENCHUTIL_H

#include "aqua/support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace benchutil {

/// True when AQUAVOL_BENCH_FULL=1: no time caps, full problem sizes.
inline bool fullRun() {
  const char *Env = std::getenv("AQUAVOL_BENCH_FULL");
  return Env && Env[0] == '1';
}

/// Median wall-clock seconds of \p Reps runs of \p Fn (after one warmup),
/// in the spirit of the paper's "averaged over 10 runs".
inline double medianSeconds(const std::function<void()> &Fn, int Reps = 5) {
  Fn(); // Warmup.
  std::vector<double> Times;
  Times.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    aqua::WallTimer T;
    Fn();
    Times.push_back(T.seconds());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// One timed run (for expensive cases).
inline double onceSeconds(const std::function<void()> &Fn) {
  aqua::WallTimer T;
  Fn();
  return T.seconds();
}

inline void header(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

/// "paper vs measured" row.
inline void paperRow(const char *What, const std::string &Paper,
                     const std::string &Measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", What, Paper.c_str(),
              Measured.c_str());
}

inline std::string fmtSeconds(double S) {
  char Buf[64];
  if (S < 1e-3)
    std::snprintf(Buf, sizeof(Buf), "%.0f us", S * 1e6);
  else if (S < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms", S * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f s", S);
  return Buf;
}

} // namespace benchutil

#endif // AQUAVOL_BENCH_BENCHUTIL_H
