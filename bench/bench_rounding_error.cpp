//===- bench_rounding_error.cpp - Section 4.2 rounding-error reproduction --------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 4.2 experiment: round the RVol assignments of
// the glucose and enzyme assays to the least count (100 nl maximum, 0.1 nl
// least count) and measure the resulting mix-ratio error. The paper:
// "Averaged across the glucose and enzyme assays, the error was no more
// than 2%." Glycomics is excluded there (run-time-dependent volumes), and
// here as well. A least-count sweep shows how the error scales with the
// metering hardware.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Rounding.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  MachineSpec Spec;

  header("Section 4.2: least-count rounding error (max 100 nl, lc 0.1 nl)");
  double MeanSum = 0.0;
  {
    AssayGraph G = assays::buildGlucoseAssay();
    DagSolveResult R = dagSolve(G, Spec);
    IntegerAssignment I = roundToLeastCount(G, R.Volumes, Spec);
    std::printf("  %-10s mean %.3f%%  max %.3f%%  underflow:%s overflow:%s\n",
                "Glucose", I.MeanRatioErrorPct, I.MaxRatioErrorPct,
                I.Underflow ? "yes" : "no", I.Overflow ? "yes" : "no");
    MeanSum += I.MeanRatioErrorPct;
  }
  {
    // Enzyme needs the Figure 6 transforms first (Section 4.2 reports the
    // transformed assay).
    ManagerResult VM = manageVolumes(assays::buildEnzymeAssay(4), Spec);
    std::printf("  %-10s mean %.3f%%  max %.3f%%  underflow:%s overflow:%s\n",
                "Enzyme", VM.Rounded.MeanRatioErrorPct,
                VM.Rounded.MaxRatioErrorPct,
                VM.Rounded.Underflow ? "yes" : "no",
                VM.Rounded.Overflow ? "yes" : "no");
    MeanSum += VM.Rounded.MeanRatioErrorPct;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f%%", MeanSum / 2.0);
  paperRow("average across glucose and enzyme", "<= 2%", Buf);

  header("Extension: error vs least count (glucose assay)");
  std::printf("  %-14s %-12s %-12s\n", "least count", "mean error",
              "max error");
  for (double Lc : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    MachineSpec S2;
    S2.LeastCountNl = Lc;
    AssayGraph G = assays::buildGlucoseAssay();
    DagSolveResult R = dagSolve(G, S2);
    IntegerAssignment I = roundToLeastCount(G, R.Volumes, S2);
    std::printf("  %10.2f nl %10.3f%% %10.3f%%%s\n", Lc, I.MeanRatioErrorPct,
                I.MaxRatioErrorPct, I.Underflow ? "  (underflow)" : "");
  }
  std::printf("\nThe error scales with the least count, confirming the "
              "paper's argument that\nnanoliter volumes over picoliter "
              "metering make simple rounding adequate.\n");
  return 0;
}
