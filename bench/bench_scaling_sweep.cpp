//===- bench_scaling_sweep.cpp - Enzyme-N scaling sweep ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Enzyme10 narrative as a sweep: the enzyme assay generalized to N
// dilutions per reagent (N^3 combination mixes). DAGSolve visits each node
// and edge twice -- linear time; LP's effort grows superlinearly with the
// formulation, which is how the paper motivates DAGSolve as the run-time
// option ("confirming that DAGSolve scales better than LP for large
// problem sizes").
//
// LP runs under a per-size time budget by default and is skipped once two
// consecutive sizes blow the budget; AQUAVOL_BENCH_FULL=1 removes caps.
//
// The sweep uses the mild-dilution variant of the assay (every dilution at
// most 1:9) so the LP is feasible and the simplex iterates to optimality
// -- the raw 1:999 series is LP-infeasible, which a solver proves quickly
// and which would understate LP's cost; the paper's 1211 s Enzyme10 run
// was an optimizing solve.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  // A wide-capacity device (1000 nl reservoirs): with the paper's 100 nl
  // the big sweep sizes are LP-infeasible outright (27 dilutions exhaust
  // one diluent reservoir), which the solver proves quickly -- feasible
  // instances are what exercise an optimizing LP run.
  JsonReporter Json("scaling_sweep");
  MachineSpec Spec;
  Spec.MaxCapacityNl = 1000.0;
  double Budget = fullRun() ? 0.0 : 10.0;
  int Blown = 0;

  std::printf("Enzyme-N scaling sweep (N dilutions -> N^3 combinations)\n");
  std::printf("  %3s %7s %7s %9s %12s %14s %10s\n", "N", "nodes", "edges",
              "LP-cons", "DAGSolve", "LP", "pivots");

  for (int N : {2, 3, 4, 5, 6, 7, 8, 10, 12, 14}) {
    AssayGraph G = assays::buildEnzymeAssay(N, /*MaxRatioExp=*/1);
    TimingStats Dag = timedStats([&] { dagSolve(G, Spec); },
                                 N <= 6 ? 7 : 3);

    std::string LpStr = "skipped";
    std::string Pivots = "-";
    Formulation F = buildVolumeModel(G, Spec);
    BenchRecord &R = Json.add("enzyme_n" + std::to_string(N));
    R.param("n", std::to_string(N))
        .param("nodes", std::to_string(G.numNodes()))
        .param("edges", std::to_string(G.numEdges()))
        .param("lp_constraints", std::to_string(F.CountedConstraints))
        .metric("dagsolve_median_sec", Dag.MedianSec)
        .metric("dagsolve_p95_sec", Dag.P95Sec);
    if (Blown < 2) {
      lp::SolverOptions SOpts;
      SOpts.Simplex.TimeLimitSec = Budget;
      lp::Solution Sol;
      double Sec = onceSeconds([&] { Sol = lp::solve(F.Model, SOpts); });
      bool Finished = Sol.Status == lp::SolveStatus::Optimal ||
                      Sol.Status == lp::SolveStatus::Infeasible;
      if (Finished) {
        LpStr = fmtSeconds(Sec) + " (" +
                lp::solveStatusName(Sol.Status) + ")";
        Blown = 0;
      } else {
        LpStr = std::string("> ") + fmtSeconds(Budget) + " budget";
        ++Blown;
      }
      Pivots = std::to_string(Sol.Iterations);
      R.param("lp_status", lp::solveStatusName(Sol.Status))
          .param("lp_pricing", lp::lpPricingName(SOpts.Simplex.Pricing))
          .metric("lp_sec", Sec)
          .metric("lp_pivots", static_cast<double>(Sol.Iterations));
      if (Sol.Iterations > 0)
        R.metric("lp_usec_per_pivot", Sec * 1e6 / Sol.Iterations);
    } else {
      R.param("lp_status", "skipped");
    }
    std::printf("  %3d %7d %7d %9d %12s %14s %10s\n", N, G.numNodes(),
                G.numEdges(), F.CountedConstraints,
                fmtSeconds(Dag.MedianSec).c_str(), LpStr.c_str(),
                Pivots.c_str());
  }

  std::printf("\nShape check: DAGSolve's time grows linearly in nodes+edges "
              "(~N^3); LP grows\nmuch faster in wall time per instance, "
              "reproducing the paper's Enzyme10 gap\n(1.57 s vs >20 min on "
              "their hardware).\n");
  return 0;
}
