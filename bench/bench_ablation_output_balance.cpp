//===- bench_ablation_output_balance.cpp - Class-6 constraint ablation ------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the optional output-to-output balance constraints (Figure 3
// class 6). The paper adds them because maximizing the *sum* of outputs
// can otherwise "be skewed to produce very little of one output fluid and
// much more of another". This bench quantifies that skew on the paper's
// assays: the max/min output ratio without the constraints, with the
// +-10% band, and with DAGSolve's exact output equalization.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"

#include <limits>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

/// Max/min ratio over the assay's (non-excess) outputs.
double outputSkew(const AssayGraph &G, const VolumeAssignment &V) {
  double Min = std::numeric_limits<double>::infinity(), Max = 0.0;
  for (NodeId N : G.liveNodes()) {
    if (!G.isLeaf(N) || G.node(N).Kind == NodeKind::Excess)
      continue;
    Min = std::min(Min, V.NodeVolumeNl[N]);
    Max = std::max(Max, V.NodeVolumeNl[N]);
  }
  return Min > 0.0 ? Max / Min : std::numeric_limits<double>::infinity();
}

void runCase(const char *Name, const AssayGraph &G) {
  MachineSpec Spec;

  FormulationOptions NoBalance;
  NoBalance.OutputBalance = false;
  LPVolumeResult Free = solveRVolLP(G, Spec, NoBalance);

  LPVolumeResult Banded = solveRVolLP(G, Spec); // +-10% default.

  DagSolveResult DS = dagSolve(G, Spec);

  std::printf("  %-10s", Name);
  if (Free.Solution.Status == lp::SolveStatus::Optimal)
    std::printf("  unbalanced LP: obj %8.1f nl, skew %6.2fx |",
                Free.Solution.Objective, outputSkew(G, Free.Volumes));
  else
    std::printf("  unbalanced LP: %-21s |",
                lp::solveStatusName(Free.Solution.Status));
  if (Banded.Solution.Status == lp::SolveStatus::Optimal)
    std::printf(" +-10%%: obj %8.1f nl, skew %5.2fx |",
                Banded.Solution.Objective, outputSkew(G, Banded.Volumes));
  else
    std::printf(" +-10%%: %-24s |",
                lp::solveStatusName(Banded.Solution.Status));
  if (DS.Feasible)
    std::printf(" DAGSolve: skew %.2fx\n", outputSkew(G, DS.Volumes));
  else
    std::printf(" DAGSolve: infeasible\n");
}

} // namespace

int main() {
  std::printf("Output-balance ablation (Figure 3 class 6)\n");
  runCase("Fig2", assays::buildFigure2Example());
  runCase("Glucose", assays::buildGlucoseAssay());

  // A deliberately skew-prone assay: one cheap output and one that
  // competes for a heavily shared reagent.
  {
    AssayGraph G;
    NodeId A = G.addInput("A");
    NodeId B = G.addInput("B");
    NodeId Cheap = G.addMix("cheap", {{A, 1}, {B, 1}});
    G.addUnary(NodeKind::Sense, "sense_cheap", Cheap);
    for (int I = 0; I < 6; ++I) {
      NodeId M = G.addMix("hungry" + std::to_string(I), {{A, 1}, {B, 9}});
      G.addUnary(NodeKind::Sense, "sense_h" + std::to_string(I), M);
    }
    runCase("SkewProne", G);
  }

  std::printf("\nWithout class 6 the optimizer may starve some outputs to "
              "fatten the sum; the\n+-10%% band (the paper's choice) caps "
              "the skew at 1.1x-ish with little objective\nloss, and "
              "DAGSolve's artificial equal-output constraint is the "
              "limiting case.\n");
  return 0;
}
