//===- bench_fig3_formulation.cpp - Figure 3 reproduction -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the ILP/LP formulation of Figure 3 for the Figure 2 example:
// prints the constraint system by class and solves both the RVol LP and
// the IVol ILP.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Formulation.h"
#include "aqua/lp/BranchAndBound.h"

using namespace aqua;
using namespace aqua::core;
using namespace benchutil;

int main() {
  ir::AssayGraph G = assays::buildFigure2Example();
  MachineSpec Spec;

  header("Figure 3: the generated constraint system");
  Formulation F = buildVolumeModel(G, Spec);
  std::printf("%s", F.Model.str().c_str());
  std::printf("\ncounted constraints (classes 1-6): %d "
              "(of which %d are per-edge minimum-volume bounds)\n",
              F.CountedConstraints, G.numEdges());

  header("RVol: LP relaxation");
  LPVolumeResult LP = solveRVolLP(G, Spec);
  std::printf("  status %s, objective (sum of outputs) %.3f nl, "
              "%lld pivots, %s\n",
              lp::solveStatusName(LP.Solution.Status), LP.Solution.Objective,
              static_cast<long long>(LP.Solution.Iterations),
              fmtSeconds(LP.Solution.Seconds).c_str());
  std::printf("  min dispense %.3f nl, outputs within +-10%% of each other\n",
              LP.Volumes.minDispenseNl(G));

  header("IVol: ILP (volumes in least-count units, branch-and-bound)");
  FormulationOptions IntOptsF;
  IntOptsF.UnitNl = Spec.LeastCountNl;
  Formulation FI = buildVolumeModel(G, Spec, IntOptsF);
  lp::IntOptions BB;
  BB.TimeLimitSec = fullRun() ? 0.0 : 20.0;
  BB.MaxNodes = 200000;
  lp::IntSolution IS = lp::solveInteger(FI.Model, {}, BB);
  std::printf("  status %s, incumbent %s, objective %.0f units, %lld nodes, "
              "%s\n",
              lp::solveStatusName(IS.Status), IS.HasIncumbent ? "yes" : "no",
              IS.Objective, static_cast<long long>(IS.Nodes),
              fmtSeconds(IS.Seconds).c_str());
  return 0;
}
