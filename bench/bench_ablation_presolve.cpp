//===- bench_ablation_presolve.cpp - LP presolve ablation -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation called out in DESIGN.md: how much of the LP solver's speed on
// the volume-management formulations comes from the equality-substitution
// presolve? The formulation is dominated by two-term ratio equalities and
// node-yield definitions, exactly what the presolve eliminates; without
// it the dense tableau roughly doubles in both dimensions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Formulation.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  MachineSpec Spec;
  std::printf("LP presolve ablation (equality-substitution on/off)\n");
  std::printf("  %-10s %7s %7s -> %7s %7s %14s %14s %8s\n", "assay", "rows",
              "vars", "rows'", "vars'", "LP+presolve", "LP-presolve",
              "speedup");

  struct Case {
    const char *Name;
    int Dilutions;
  };
  for (const Case &C : {Case{"Glucose", 0}, Case{"Fig2", -1},
                        Case{"Enzyme", 4}, Case{"Enzyme5", 5}}) {
    AssayGraph G = C.Dilutions == 0    ? assays::buildGlucoseAssay()
                   : C.Dilutions == -1 ? assays::buildFigure2Example()
                                       : assays::buildEnzymeAssay(C.Dilutions);
    Formulation F = buildVolumeModel(G, Spec);
    lp::SolveInfo Info;
    lp::SolverOptions On;
    double WithP = medianSeconds([&] { lp::solve(F.Model, On, &Info); }, 5);
    lp::SolverOptions Off;
    Off.Presolve = false;
    double WithoutP = medianSeconds([&] { lp::solve(F.Model, Off); }, 5);
    std::printf("  %-10s %7d %7d -> %7d %7d %14s %14s %7.1fx\n", C.Name,
                F.Model.numRows(), F.Model.numVars(), Info.ReducedRows,
                Info.ReducedVars, fmtSeconds(WithP).c_str(),
                fmtSeconds(WithoutP).c_str(), WithoutP / WithP);
  }
  std::printf("\nBoth configurations find the same optima (the test suite "
              "checks this on random\nLPs); presolve is a constant-factor "
              "lever, not a complexity change -- DAGSolve's\nadvantage "
              "over either configuration is the algorithmic result.\n");
  return 0;
}
