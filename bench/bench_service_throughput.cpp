//===- bench_service_throughput.cpp - Compile-service throughput ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Throughput study of the concurrent compilation service on the workload
// shape of the paper's evaluation (many independent assay submissions,
// Table 2 / Figures 9-11): a batch of 200 requests cycling over 10
// distinct paper/library assays, swept over worker counts 1/2/4/8 with
// the memoizing solve cache off and on.
//
// With the cache on, only the 10 distinct structures are solved; the
// other 190 requests are fingerprint hits (95% hit rate), so throughput
// is bounded by hashing rather than by the LP/DAGSolve hierarchy.
// Acceptance targets printed at the end: >= 5x throughput for 4 threads +
// cache over 1 thread without cache, and >= 90% hit rate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/service/CompileService.h"

#include <memory>
#include <vector>

using namespace aqua;
using namespace benchutil;

namespace {

struct Workload {
  const char *Name;
  std::shared_ptr<const ir::AssayGraph> Graph;
};

std::vector<Workload> buildWorkloads() {
  auto Share = [](ir::AssayGraph G) {
    return std::make_shared<const ir::AssayGraph>(std::move(G));
  };
  return {
      {"glucose", Share(assays::buildGlucoseAssay())},
      {"figure2", Share(assays::buildFigure2Example())},
      {"enzyme3", Share(assays::buildEnzymeAssay(3))},
      {"enzyme4", Share(assays::buildEnzymeAssay(4))},
      {"enzyme5", Share(assays::buildEnzymeAssay(5))},
      {"bradford", Share(assays::buildBradfordProtein())},
      {"bradford4", Share(assays::buildBradfordProtein(4, 2))},
      {"pcr8", Share(assays::buildPcrMasterMix(8))},
      {"pcr12", Share(assays::buildPcrMasterMix(12))},
      {"mic8", Share(assays::buildMicPanel(8))},
  };
}

std::vector<service::CompileRequest>
buildBatch(const std::vector<Workload> &Workloads, int Requests) {
  std::vector<service::CompileRequest> Batch;
  Batch.reserve(Requests);
  for (int I = 0; I < Requests; ++I) {
    const Workload &W = Workloads[I % Workloads.size()];
    service::CompileRequest R;
    R.Name = W.Name;
    R.Graph = W.Graph;
    Batch.push_back(std::move(R));
  }
  return Batch;
}

struct RunResult {
  double WallSec = 0.0;
  double Throughput = 0.0;
  double HitRate = 0.0;
  double ReuseRate = 0.0; // (hits + single-flight joins) / requests
  std::uint64_t Joins = 0;
  std::size_t Failures = 0;
};

RunResult runConfig(const std::vector<Workload> &Workloads, int Requests,
                    int Threads, bool CacheOn) {
  service::ServiceOptions Options;
  Options.Threads = Threads;
  Options.EnableCache = CacheOn;
  service::CompileService Service(Options);
  WallTimer Wall;
  std::vector<service::CompileResponse> Responses =
      Service.compileBatch(buildBatch(Workloads, Requests));
  RunResult R;
  R.WallSec = Wall.seconds();
  R.Throughput = Requests / R.WallSec;
  for (const service::CompileResponse &Resp : Responses)
    if (!Resp.Ok)
      ++R.Failures;
  service::ServiceStats Stats = Service.stats();
  R.HitRate = Stats.Cache.hitRate();
  R.Joins = Stats.SingleFlightJoins;
  R.ReuseRate =
      static_cast<double>(Stats.CacheHits + Stats.SingleFlightJoins) / Requests;
  return R;
}

} // namespace

int main() {
  const int Requests = 200;
  std::vector<Workload> Workloads = buildWorkloads();
  JsonReporter Json("service_throughput");

  header("Compile-service throughput (200 requests over 10 assays)");
  std::printf("  %-8s %-6s %12s %14s %10s %8s\n", "threads", "cache", "wall",
              "throughput", "hit rate", "joins");

  double Baseline = 0.0;  // 1 thread, cache off.
  double NoCacheAt4 = 0.0; // 4 threads, cache off.
  double CachedAt1 = 0.0; // 1 thread, cache on.
  double CachedAt4 = 0.0; // 4 threads, cache on.
  double CachedAt8 = 0.0; // 8 threads, cache on.
  double ReuseAt4 = 0.0;
  std::size_t Failures = 0;
  for (bool CacheOn : {false, true}) {
    for (int Threads : {1, 2, 4, 8}) {
      MetricsDelta Delta; // Registry counters moved by this config's run.
      RunResult R = runConfig(Workloads, Requests, Threads, CacheOn);
      Failures += R.Failures;
      std::printf("  %-8d %-6s %12s %10.1f/s %9.1f%% %8llu\n", Threads,
                  CacheOn ? "on" : "off", fmtSeconds(R.WallSec).c_str(),
                  R.Throughput, R.HitRate * 100.0,
                  static_cast<unsigned long long>(R.Joins));
      std::string Name = "threads" + std::to_string(Threads) +
                         (CacheOn ? "_cache" : "_nocache");
      BenchRecord &Rec =
          Json.add(Name)
              .param("threads", std::to_string(Threads))
              .param("cache", CacheOn ? "on" : "off")
              .param("requests", std::to_string(Requests))
              .metric("wall_sec", R.WallSec)
              .metric("throughput_per_sec", R.Throughput)
              .metric("hit_rate", R.HitRate)
              .metric("reuse_rate", R.ReuseRate)
              .metric("failures", static_cast<double>(R.Failures));
      Delta.addTo(Rec);
      if (!CacheOn && Threads == 1)
        Baseline = R.Throughput;
      if (!CacheOn && Threads == 4)
        NoCacheAt4 = R.Throughput;
      if (CacheOn && Threads == 1)
        CachedAt1 = R.Throughput;
      if (CacheOn && Threads == 4) {
        CachedAt4 = R.Throughput;
        ReuseAt4 = R.ReuseRate;
      }
      if (CacheOn && Threads == 8)
        CachedAt8 = R.Throughput;
    }
  }

  double Speedup = Baseline > 0 ? CachedAt4 / Baseline : 0.0;
  std::printf("\n  speedup (4 threads + cache vs 1 thread no cache): "
              "%.1fx (target >= 5x): %s\n",
              Speedup, Speedup >= 5.0 ? "PASS" : "FAIL");
  // Hits and single-flight joins are both avoided solves; their split is
  // scheduling-dependent, the sum is deterministic (190 of 200 requests).
  std::printf("  cache reuse (hits + joins) at 4 threads: %.1f%% "
              "(target >= 90%%): %s\n",
              ReuseAt4 * 100.0, ReuseAt4 >= 0.90 ? "PASS" : "FAIL");
  // Worker scaling with the cache off is the pure queue/pipeline path:
  // adding workers must never *lose* throughput (the pre-idle-tracking
  // queue did, from cross-thread futex churn). A single hardware thread
  // caps the upside, so the gate is non-regression, not linear speedup.
  double Scaling = Baseline > 0 ? NoCacheAt4 / Baseline : 0.0;
  std::printf("  no-cache scaling 1 -> 4 threads: %.2fx "
              "(target >= 1.0x): %s\n",
              Scaling, Scaling >= 1.0 ? "PASS" : "FAIL");
  // Cache-on scaling is the batched hit path end to end (drain handle,
  // fair dequeue, seqlock L1). It was flat before PR 10 because workers
  // woke once per response and hits still took the shard mutex; the
  // dedicated scaling *gate* (hardware-aware) lives in
  // bench_service_hitpath -- here the ratio is recorded for trend diffs.
  double CacheScaling = CachedAt1 > 0 ? CachedAt8 / CachedAt1 : 0.0;
  std::printf("  cache-on scaling 1 -> 8 threads: %.2fx\n", CacheScaling);
  Json.add("summary")
      .metric("speedup_4t_cache_vs_1t", Speedup)
      .metric("nocache_scaling_1t_to_4t", Scaling)
      .metric("cache_scaling_1t_to_8t", CacheScaling)
      .metric("reuse_rate_4t", ReuseAt4)
      .metric("failures", static_cast<double>(Failures));
  if (Failures) {
    std::printf("  %zu requests failed\n", Failures);
    return 1;
  }
  if (Speedup >= 5.0 && ReuseAt4 >= 0.90 && Scaling >= 1.0)
    return 0;
  // Timing-dependent targets: a loaded CI runner can miss them without
  // anything being wrong with the code; perf-smoke disables the gate and
  // fails only on real failures (above).
  return noTimingGate() ? 0 : 1;
}
