//===- bench_obs_overhead.cpp - Observability overhead gate ----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the per-operation cost of the aqua/obs primitives and *gates*
// the two that are compiled into every hot path unconditionally:
//
//  * a disabled trace span (one relaxed atomic load + branch), and
//  * a suppressed log statement (same shape).
//
// These run inside the B&B node loop and the simulator's instruction
// dispatch, so their disabled cost is the whole "observability is free
// when off" contract. The gate threshold is deliberately generous (a
// relaxed load is ~1 ns; the budget is 150 ns) so it only catches real
// structural regressions -- an accidental mutex, string construction, or
// clock read on the disabled path -- never scheduler noise. Unlike the
// throughput benches, this gate ignores AQUAVOL_BENCH_NO_TIMING_GATE:
// the budget is two orders of magnitude above the measured cost, so a
// loaded runner cannot trip it spuriously.
//
// Enabled-path costs (span record, counter add, histogram observe) are
// reported in the JSON artifact for trend tracking but not gated.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"

#include <cstdio>

using namespace aqua;
using namespace benchutil;

namespace {

constexpr int Iters = 1 << 20;

/// Nanoseconds per iteration of \p Fn(i) over Iters iterations.
template <typename F> double nsPerOp(F &&Fn) {
  // Warmup pass, then the best of three timed passes (minimum filters out
  // scheduler preemption, which only ever adds time).
  for (int I = 0; I < Iters / 16; ++I)
    Fn(I);
  double Best = 1e18;
  for (int Pass = 0; Pass < 3; ++Pass) {
    WallTimer T;
    for (int I = 0; I < Iters; ++I)
      Fn(I);
    Best = std::min(Best, T.seconds());
  }
  return Best / Iters * 1e9;
}

} // namespace

int main() {
  JsonReporter Json("obs_overhead");
  header("Observability overhead (ns/op)");

  // ----- Disabled paths: the always-compiled-in cost.
  obs::Tracer::setEnabled(false);
  double DisabledSpanNs = nsPerOp([](int) {
    AQUA_TRACE_SPAN("bench.disabled", "bench");
  });
  obs::setLogLevel(obs::LogLevel::Error);
  double DisabledLogNs = nsPerOp([](int I) {
    AQUA_LOG_DEBUG("bench", "suppressed %d", I);
  });
  // A span that would carry args, while disabled: arg() must cost only the
  // null-Name branch, never a string conversion or allocation.
  double DisabledArgSpanNs = nsPerOp([](int I) {
    obs::SpanGuard Span("bench.disabled_args", "bench");
    Span.arg("i", static_cast<std::uint64_t>(I));
    Span.arg("phase", "bench");
  });
  // Request context around a disabled span: two thread-local stores plus
  // the span's load+branch, the whole per-request overhead when off.
  double DisabledRequestNs = nsPerOp([](int I) {
    obs::RequestScope Scope(static_cast<std::uint64_t>(I) | 1);
    AQUA_TRACE_SPAN("bench.disabled_request", "bench");
  });

  // ----- Enabled paths: reported, not gated.
  obs::Counter &C = obs::metrics().counter("bench.obs_overhead.counter");
  double CounterNs = nsPerOp([&](int) { C.add(); });
  obs::Histogram &H = obs::metrics().histogram(
      "bench.obs_overhead.histogram", obs::defaultLatencyBucketsSec());
  double HistogramNs = nsPerOp([&](int I) { H.observe(I * 1e-6); });
  obs::Tracer Ring(1 << 12);
  double RecordNs = nsPerOp([&](int) {
    Ring.complete("bench.record", "bench", 0, 1, obs::PidPipeline, 0);
  });
  obs::Tracer::setEnabled(true);
  double EnabledSpanNs = nsPerOp([](int) {
    AQUA_TRACE_SPAN("bench.enabled", "bench");
  });
  obs::Tracer::setEnabled(false);
  obs::Tracer::global().clear();

  std::printf("  disabled span      %8.2f ns\n", DisabledSpanNs);
  std::printf("  disabled log       %8.2f ns\n", DisabledLogNs);
  std::printf("  disabled arg span  %8.2f ns\n", DisabledArgSpanNs);
  std::printf("  disabled req scope %8.2f ns\n", DisabledRequestNs);
  std::printf("  counter add        %8.2f ns\n", CounterNs);
  std::printf("  histogram observe  %8.2f ns\n", HistogramNs);
  std::printf("  ring record        %8.2f ns\n", RecordNs);
  std::printf("  enabled span       %8.2f ns\n", EnabledSpanNs);

  Json.add("per_op")
      .metric("disabled_span_ns", DisabledSpanNs)
      .metric("disabled_log_ns", DisabledLogNs)
      .metric("disabled_arg_span_ns", DisabledArgSpanNs)
      .metric("disabled_request_scope_ns", DisabledRequestNs)
      .metric("counter_add_ns", CounterNs)
      .metric("histogram_observe_ns", HistogramNs)
      .metric("ring_record_ns", RecordNs)
      .metric("enabled_span_ns", EnabledSpanNs);

  constexpr double BudgetNs = 150.0;
  bool Pass = DisabledSpanNs <= BudgetNs && DisabledLogNs <= BudgetNs &&
              DisabledArgSpanNs <= BudgetNs && DisabledRequestNs <= BudgetNs;
  std::printf("\n  disabled-path budget %.0f ns: %s\n", BudgetNs,
              Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
