//===- bench_service_hitpath.cpp - Zero-copy read-path throughput ---------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The PR-10 read path under a microscope: what does a *hit* cost, and how
// does it scale? Three phases over the LP-bound volume sweep:
//
//  1. l1_scaling       -- one in-process service, cache pre-warmed, then
//                         1/2/4/8 client threads hammer compileNow on the
//                         warm keys. Every request must be an L1 hit (hard
//                         gate: zero misses) served by the seqlock read
//                         path with the canonical-form memo engaged. The
//                         timing gate asks for 8T/1T throughput scaling
//                         against a hardware-aware target (3x on >= 4
//                         cores; see DESIGN 12.5 for the re-basing rule) --
//                         a single-core box can only prove non-regression.
//  2. mp_warm_hitpath  -- the fleet shape: one process populates a shared
//                         persistent store, then 4 forked workers each
//                         re-serve the sweep for many rounds. Round one is
//                         L2 (mmap'd side-car index + zero-copy view +
//                         decode), every later round is L1. Hard gates:
//                         zero cold solves, exactly Workers*Slots L2
//                         promotions. Timing gate: sustained aggregate
//                         throughput >= 10,000 req/s (CI re-asserts this
//                         from the JSON record unconditionally).
//  3. l2_first_touch   -- a fresh service over the now-sealed store serves
//                         the sweep once from L2 only. Hard gates: zero
//                         cold solves and the reads actually went through
//                         mapped side-car indexes (IndexProbes >= Slots,
//                         IndexFallbackScans == 0).
//
// Latencies are recorded per request into log2-nanosecond histograms
// (merged across threads and, via the report pipe, across processes), so
// the JSON carries p50/p99 without any per-request allocation on the
// measured path.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/ir/AssayGraph.h"
#include "aqua/obs/Metrics.h"
#include "aqua/service/CompileService.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace aqua;
using namespace benchutil;

namespace {

/// Same LP-bound structure as bench_service_mp: the skewed 1:24 mix next
/// to heavy 1:1 uses of A forces the Figure 3 LP, so the artifacts being
/// cached are real solves, not trivial ones.
std::shared_ptr<const ir::AssayGraph> buildLpBoundAssay(int Uses) {
  ir::AssayGraph G;
  ir::NodeId A = G.addInput("A");
  ir::NodeId B = G.addInput("B");
  ir::NodeId MixP = G.addMix("mixP", {{A, 1}, {B, 24}});
  G.addUnary(ir::NodeKind::Sense, "P", MixP);
  for (int I = 0; I < Uses; ++I) {
    ir::NodeId MixQ = G.addMix("mixQ" + std::to_string(I), {{A, 1}, {B, 1}});
    G.addUnary(ir::NodeKind::Sense, "Q" + std::to_string(I), MixQ);
  }
  return std::make_shared<const ir::AssayGraph>(std::move(G));
}

service::CompileRequest sweepRequest(
    const std::shared_ptr<const ir::AssayGraph> &Graph, int I) {
  service::CompileRequest R;
  R.Name = "sweep" + std::to_string(I);
  R.Graph = Graph;
  R.Spec.MaxCapacityNl = 100.0 - 0.5 * I;
  R.Manage.AllowCascading = false;
  R.Manage.AllowReplication = false;
  return R;
}

/// Log2-nanosecond latency histogram: bucket B holds [2^(B-1), 2^B) ns.
/// Fixed-size POD so worker processes can ship it through a pipe.
struct LatencyHist {
  std::uint64_t Buckets[64] = {};

  void add(std::uint64_t Ns) {
    unsigned B = Ns == 0 ? 0u : 64u - __builtin_clzll(Ns);
    Buckets[B > 63 ? 63 : B] += 1;
  }
  void merge(const LatencyHist &O) {
    for (int B = 0; B < 64; ++B)
      Buckets[B] += O.Buckets[B];
  }
  std::uint64_t total() const {
    std::uint64_t T = 0;
    for (std::uint64_t C : Buckets)
      T += C;
    return T;
  }
  /// Quantile in microseconds; buckets only bound the true value, so the
  /// estimate is the geometric-ish bucket midpoint.
  double quantileUs(double Q) const {
    std::uint64_t Total = total();
    if (Total == 0)
      return 0.0;
    std::uint64_t Rank = static_cast<std::uint64_t>(Q * (Total - 1));
    std::uint64_t Seen = 0;
    for (int B = 0; B < 64; ++B) {
      Seen += Buckets[B];
      if (Seen > Rank) {
        double Lo = B == 0 ? 0.0 : std::ldexp(1.0, B - 1);
        double Hi = std::ldexp(1.0, B);
        return (Lo + Hi) * 0.5 / 1e3;
      }
    }
    return 0.0;
  }
};

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The hardware-aware scaling target for l1_scaling (the DESIGN 12.5
/// re-basing rule): a box with >= 4 cores must show the ISSUE's 3x; with
/// 2-3 cores, 0.75x per core; a single core can only prove that 8 threads
/// are not slower than 1 (contention non-regression at 0.5x).
double scalingTarget(unsigned Hw) {
  if (Hw >= 4)
    return 3.0;
  if (Hw >= 2)
    return 0.75 * Hw;
  return 0.5;
}

/// What a forked warm-path worker reports back through its pipe.
struct HitWorkerReport {
  std::uint64_t Requests = 0;
  std::uint64_t Failures = 0;
  std::uint64_t ColdSolves = 0;
  std::uint64_t L2Hits = 0;
  std::uint64_t L1Hits = 0;
  std::uint64_t SeqlockRetries = 0;
  std::uint64_t CanonMemoHits = 0;
  double WallSec = 0.0;
  LatencyHist Hist;
};

std::string makeTempDir() {
  char Template[] = "/tmp/aqua-bench-hitpath-XXXXXX";
  char *Dir = mkdtemp(Template);
  return Dir ? Dir : "bench-hitpath-store";
}

} // namespace

int main() {
  const int Slots = 16;
  const unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  auto Graph = buildLpBoundAssay(420);
  std::vector<service::CompileRequest> Requests;
  for (int I = 0; I < Slots; ++I)
    Requests.push_back(sweepRequest(Graph, I));

  JsonReporter Json("service_hitpath");
  header("Read-path throughput: L1 seqlock hits and the mmap'd L2 index");
  std::printf("  hardware_concurrency: %u\n", Hw);

  // ---- Phase 1: in-process L1 hit scaling, 1 -> 8 client threads.
  {
    service::ServiceOptions Options;
    Options.Threads = 1;
    service::CompileService Service(Options);
    for (const service::CompileRequest &R : Requests)
      if (!Service.compileNow(R).Ok) {
        std::fprintf(stderr, "warmup solve failed\n");
        return 1;
      }

    const int PerThread = 8000;
    double Rps1 = 0.0, Rps8 = 0.0;
    for (int Threads : {1, 2, 4, 8}) {
      service::ServiceStats Before = Service.stats();
      MetricsDelta Delta;
      std::atomic<bool> Go{false};
      std::atomic<std::uint64_t> Failures{0};
      std::vector<LatencyHist> Hists(Threads);
      std::vector<std::thread> Pool;
      for (int T = 0; T < Threads; ++T)
        Pool.emplace_back([&, T] {
          while (!Go.load(std::memory_order_acquire)) {
          }
          for (int I = 0; I < PerThread; ++I) {
            const service::CompileRequest &R =
                Requests[(T + I) % Slots];
            std::uint64_t Start = nowNs();
            bool Ok = Service.compileNow(R).Ok;
            Hists[T].add(nowNs() - Start);
            if (!Ok)
              Failures.fetch_add(1, std::memory_order_relaxed);
          }
        });
      WallTimer Wall;
      Go.store(true, std::memory_order_release);
      for (std::thread &Th : Pool)
        Th.join();
      double WallSec = Wall.seconds();
      service::ServiceStats After = Service.stats();

      LatencyHist Merged;
      for (const LatencyHist &H : Hists)
        Merged.merge(H);
      std::uint64_t Total = static_cast<std::uint64_t>(Threads) * PerThread;
      double Rps = WallSec > 0 ? Total / WallSec : 0.0;
      if (Threads == 1)
        Rps1 = Rps;
      if (Threads == 8)
        Rps8 = Rps;
      std::uint64_t Misses = After.Cache.Misses - Before.Cache.Misses;
      std::uint64_t Hits = After.CacheHits - Before.CacheHits;
      std::uint64_t MemoHits = After.CanonMemoHits - Before.CanonMemoHits;
      std::printf("  l1 %dT: %8.0f req/s  p50 %6.1f us  p99 %6.1f us  "
                  "(%llu hits, %llu seqlock retries)\n",
                  Threads, Rps, Merged.quantileUs(0.50),
                  Merged.quantileUs(0.99),
                  static_cast<unsigned long long>(Hits),
                  static_cast<unsigned long long>(
                      After.Cache.SeqlockRetries - Before.Cache.SeqlockRetries));
      BenchRecord &Rec = Json.add("l1_scaling");
      Rec.param("threads", std::to_string(Threads))
          .metric("requests", static_cast<double>(Total))
          .metric("wall_sec", WallSec)
          .metric("throughput_rps", Rps)
          .metric("p50_us", Merged.quantileUs(0.50))
          .metric("p99_us", Merged.quantileUs(0.99))
          .metric("hits", static_cast<double>(Hits))
          .metric("misses", static_cast<double>(Misses))
          .metric("canon_memo_hits", static_cast<double>(MemoHits))
          .metric("failures", static_cast<double>(Failures.load()));
      Delta.addTo(Rec, "d_");
      // Hard gates (not timing): the hammer must be pure L1 hit traffic
      // with the canonical-form memo engaged -- otherwise this bench is
      // measuring solves, not the read path.
      if (Failures.load() != 0 || Misses != 0 || Hits != Total ||
          MemoHits != Total) {
        std::fprintf(stderr,
                     "l1 %dT not pure hit traffic: %llu misses, %llu/%llu "
                     "hits, %llu memo hits, %llu failures\n",
                     Threads, static_cast<unsigned long long>(Misses),
                     static_cast<unsigned long long>(Hits),
                     static_cast<unsigned long long>(Total),
                     static_cast<unsigned long long>(MemoHits),
                     static_cast<unsigned long long>(Failures.load()));
        return 1;
      }
    }

    double Scaling = Rps1 > 0 ? Rps8 / Rps1 : 0.0;
    double Target = scalingTarget(Hw);
    std::printf("  l1 scaling 1T -> 8T: %.2fx (target %.2fx on %u cores)\n",
                Scaling, Target, Hw);
    Json.add("l1_scaling_summary")
        .metric("hw_concurrency", static_cast<double>(Hw))
        .metric("throughput_rps_1t", Rps1)
        .metric("throughput_rps_8t", Rps8)
        .metric("scaling_1t_to_8t", Scaling)
        .metric("scaling_target", Target);
    if (!noTimingGate() && Scaling < Target) {
      std::fprintf(stderr, "l1 scaling %.2fx < %.2fx target\n", Scaling,
                   Target);
      return 1;
    }
  }

  // ---- Phase 2: forked workers re-serving a pre-populated shared store.
  const std::string StoreDir = makeTempDir();
  {
    // Populate: one process solves the sweep and writes through. Destroyed
    // before the fork so its writer segment seals (and gains a side-car
    // index) when the workers open the directory.
    {
      service::ServiceOptions Options;
      Options.Threads = 1;
      Options.StoreDir = StoreDir;
      service::CompileService Service(Options);
      for (const service::CompileRequest &R : Requests)
        if (!Service.compileNow(R).Ok) {
          std::fprintf(stderr, "populate solve failed\n");
          return 1;
        }
    }

    const int Workers = 4;
    const int Rounds = 500;
    std::vector<int> ReadFds;
    std::vector<pid_t> Pids;
    for (int W = 0; W < Workers; ++W) {
      int Fds[2];
      if (pipe(Fds) != 0) {
        std::perror("pipe");
        return 1;
      }
      pid_t Pid = fork();
      if (Pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (Pid == 0) {
        close(Fds[0]);
        service::ServiceOptions Options;
        Options.Threads = 1;
        Options.StoreDir = StoreDir;
        HitWorkerReport Rep;
        {
          service::CompileService Service(Options);
          WallTimer Wall;
          for (int Round = 0; Round < Rounds; ++Round)
            for (int I = 0; I < Slots; ++I) {
              ++Rep.Requests;
              std::uint64_t Start = nowNs();
              bool Ok = Service.compileNow(Requests[I]).Ok;
              Rep.Hist.add(nowNs() - Start);
              if (!Ok)
                ++Rep.Failures;
            }
          Rep.WallSec = Wall.seconds();
          service::ServiceStats S = Service.stats();
          Rep.ColdSolves = S.Cache.Insertions - S.CacheHitsL2;
          Rep.L2Hits = S.CacheHitsL2;
          Rep.L1Hits = S.CacheHits - S.CacheHitsL2;
          Rep.SeqlockRetries = S.Cache.SeqlockRetries;
          Rep.CanonMemoHits = S.CanonMemoHits;
        }
        ssize_t N = write(Fds[1], &Rep, sizeof(Rep));
        close(Fds[1]);
        _exit(N == sizeof(Rep) ? 0 : 1);
      }
      close(Fds[1]);
      ReadFds.push_back(Fds[0]);
      Pids.push_back(Pid);
    }

    HitWorkerReport Sum;
    LatencyHist Merged;
    double MaxWall = 0.0;
    int Reported = 0;
    for (int W = 0; W < Workers; ++W) {
      HitWorkerReport Rep;
      ssize_t N = read(ReadFds[W], &Rep, sizeof(Rep));
      close(ReadFds[W]);
      int Status = 0;
      waitpid(Pids[W], &Status, 0);
      if (N != sizeof(Rep) || !WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
        continue;
      ++Reported;
      Sum.Requests += Rep.Requests;
      Sum.Failures += Rep.Failures;
      Sum.ColdSolves += Rep.ColdSolves;
      Sum.L2Hits += Rep.L2Hits;
      Sum.L1Hits += Rep.L1Hits;
      Sum.SeqlockRetries += Rep.SeqlockRetries;
      Sum.CanonMemoHits += Rep.CanonMemoHits;
      Merged.merge(Rep.Hist);
      MaxWall = std::max(MaxWall, Rep.WallSec);
    }
    if (Reported != Workers) {
      std::fprintf(stderr, "worker failure in mp_warm_hitpath\n");
      return 1;
    }
    // Sustained rate = total served work over the slowest worker's wall:
    // the honest aggregate when workers time-share cores.
    double Rps = MaxWall > 0 ? Sum.Requests / MaxWall : 0.0;
    const double GateRps = 10000.0;
    std::printf("  mp warm hitpath: %llu requests / %d procs, %8.0f req/s  "
                "p50 %6.1f us  p99 %6.1f us  (%llu L2 promotions, "
                "%llu cold)\n",
                static_cast<unsigned long long>(Sum.Requests), Workers, Rps,
                Merged.quantileUs(0.50), Merged.quantileUs(0.99),
                static_cast<unsigned long long>(Sum.L2Hits),
                static_cast<unsigned long long>(Sum.ColdSolves));
    Json.add("mp_warm_hitpath")
        .param("workers", std::to_string(Workers))
        .param("slots", std::to_string(Slots))
        .param("rounds", std::to_string(Rounds))
        .metric("requests", static_cast<double>(Sum.Requests))
        .metric("max_worker_wall_sec", MaxWall)
        .metric("throughput_rps", Rps)
        .metric("gate_rps", GateRps)
        .metric("p50_us", Merged.quantileUs(0.50))
        .metric("p99_us", Merged.quantileUs(0.99))
        .metric("l2_hits", static_cast<double>(Sum.L2Hits))
        .metric("l1_hits", static_cast<double>(Sum.L1Hits))
        .metric("cold_solves", static_cast<double>(Sum.ColdSolves))
        .metric("failures", static_cast<double>(Sum.Failures))
        .metric("seqlock_retries", static_cast<double>(Sum.SeqlockRetries))
        .metric("canon_memo_hits", static_cast<double>(Sum.CanonMemoHits));
    // Hard gates: warm means warm. Every worker's first pass promotes all
    // Slots keys from L2 (single process, sequential -- exactly one
    // promotion per key) and nothing is ever re-solved.
    if (Sum.Failures != 0 || Sum.ColdSolves != 0 ||
        Sum.L2Hits != static_cast<std::uint64_t>(Workers) * Slots) {
      std::fprintf(stderr,
                   "mp warm hitpath not loss-free: %llu cold, %llu L2 "
                   "(want %d), %llu failures\n",
                   static_cast<unsigned long long>(Sum.ColdSolves),
                   static_cast<unsigned long long>(Sum.L2Hits),
                   Workers * Slots,
                   static_cast<unsigned long long>(Sum.Failures));
      return 1;
    }
    // The ISSUE's throughput gate. CI perf-smoke re-asserts this number
    // from the JSON unconditionally; the in-binary check honours the
    // timing-gate escape like every other wall-clock assertion.
    if (!noTimingGate() && Rps < GateRps) {
      std::fprintf(stderr, "mp warm hitpath %.0f req/s < %.0f gate\n", Rps,
                   GateRps);
      return 1;
    }
  }

  // ---- Phase 3: L2 first touch through the side-car index.
  {
    service::ServiceOptions Options;
    Options.Threads = 1;
    Options.StoreDir = StoreDir;
    service::CompileService Service(Options);
    MetricsDelta Delta;
    LatencyHist Hist;
    std::uint64_t Failures = 0;
    WallTimer Wall;
    for (const service::CompileRequest &R : Requests) {
      std::uint64_t Start = nowNs();
      if (!Service.compileNow(R).Ok)
        ++Failures;
      Hist.add(nowNs() - Start);
    }
    double WallSec = Wall.seconds();
    service::ServiceStats S = Service.stats();
    std::uint64_t Cold = S.Cache.Insertions - S.CacheHitsL2;
    const store::SolveStore *Store = Service.store();
    store::StoreStats SS =
        Store ? Store->stats() : store::StoreStats{};
    std::printf("  l2 first touch: %d keys in %s  p50 %6.1f us  "
                "(%llu index probes, %llu index loads, %llu fallback "
                "scans)\n",
                Slots, fmtSeconds(WallSec).c_str(), Hist.quantileUs(0.50),
                static_cast<unsigned long long>(SS.IndexProbes),
                static_cast<unsigned long long>(SS.IndexLoads),
                static_cast<unsigned long long>(SS.IndexFallbackScans));
    BenchRecord &Rec = Json.add("l2_first_touch");
    Rec.param("slots", std::to_string(Slots))
        .metric("wall_sec", WallSec)
        .metric("p50_us", Hist.quantileUs(0.50))
        .metric("p99_us", Hist.quantileUs(0.99))
        .metric("l2_hits", static_cast<double>(S.CacheHitsL2))
        .metric("cold_solves", static_cast<double>(Cold))
        .metric("index_probes", static_cast<double>(SS.IndexProbes))
        .metric("index_loads", static_cast<double>(SS.IndexLoads))
        .metric("index_fallback_scans",
                static_cast<double>(SS.IndexFallbackScans));
    Delta.addTo(Rec, "d_");
    // Hard gates: the store must serve every key through a mapped side-car
    // index -- zero re-solves, zero fallback scans.
    if (Failures != 0 || Cold != 0 ||
        S.CacheHitsL2 != static_cast<std::uint64_t>(Slots) || !Store ||
        SS.IndexLoads < 1 ||
        SS.IndexProbes < static_cast<std::uint64_t>(Slots) ||
        SS.IndexFallbackScans != 0) {
      std::fprintf(stderr,
                   "l2 first touch did not go through the index: %llu cold, "
                   "%llu L2 hits, %llu probes, %llu loads, %llu scans\n",
                   static_cast<unsigned long long>(Cold),
                   static_cast<unsigned long long>(S.CacheHitsL2),
                   static_cast<unsigned long long>(SS.IndexProbes),
                   static_cast<unsigned long long>(SS.IndexLoads),
                   static_cast<unsigned long long>(SS.IndexFallbackScans));
      return 1;
    }
  }
  return 0;
}
