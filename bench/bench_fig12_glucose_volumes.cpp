//===- bench_fig12_glucose_volumes.cpp - Figure 12 reproduction ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12: the glucose assay's DAG with Vnorms and the
// dispensed volume assignment. The paper's headline: "The smallest volume
// dispensed is 3.3 nl which is well above the least count", with all
// volume management resolved at compile time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Rounding.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);

  header("Figure 12(a): glucose DAG with Vnorms");
  for (NodeId N : G.liveNodes())
    std::printf("  %-16s %-9s Vnorm %-8s\n", G.node(N).Name.c_str(),
                nodeKindName(G.node(N).Kind), R.NodeVnorm[N].str().c_str());

  header("Figure 12(b): dispensed volumes");
  for (EdgeId E : G.liveEdges()) {
    const Edge &Ed = G.edge(E);
    std::printf("  %-10s -> %-16s %8.2f nl\n", G.node(Ed.Src).Name.c_str(),
                G.node(Ed.Dst).Name.c_str(), R.Volumes.EdgeVolumeNl[E]);
  }

  header("Checks against the paper");
  char MinBuf[32];
  std::snprintf(MinBuf, sizeof(MinBuf), "%.2f nl", R.MinDispenseNl);
  paperRow("smallest dispensed volume", "3.3 nl", MinBuf);
  paperRow("feasible without run-time work", "yes",
           R.Feasible ? "yes (all volumes computed at compile time)" : "NO");
  IntegerAssignment IVol = roundToLeastCount(G, R.Volumes, Spec);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "mean %.2f%%, max %.2f%%",
                IVol.MeanRatioErrorPct, IVol.MaxRatioErrorPct);
  paperRow("rounding error (Section 4.2)", "< 2%", Buf);
  return 0;
}
