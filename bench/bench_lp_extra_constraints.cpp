//===- bench_lp_extra_constraints.cpp - Section 4.3 ablation ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 4.3 ablation: does LP get competitive with
// DAGSolve if it is given DAGSolve's two artificial constraints (flow
// conservation and output equalization)? The paper: "Though the additional
// constraints result in some improvement in LP's run time ... LP remained
// significantly slower than DAGSolve with a minimum slowdown of 60x (as
// compared to 80x without the additional constraints)."
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  MachineSpec Spec;

  std::printf("Section 4.3: LP with DAGSolve's artificial constraints\n");
  std::printf("  %-10s %12s %14s %14s %10s %10s\n", "assay", "DAGSolve",
              "LP (plain)", "LP (+extra)", "plain/DAG", "extra/DAG");

  struct Case {
    const char *Name;
    int Dilutions;
  };
  for (const Case &C : {Case{"Glucose", 0}, Case{"Enzyme", 4},
                        Case{"Enzyme6", 6}}) {
    AssayGraph G = C.Dilutions == 0 ? assays::buildGlucoseAssay()
                                    : assays::buildEnzymeAssay(C.Dilutions);
    double Dag = medianSeconds([&] { dagSolve(G, Spec); }, 9);
    double Plain = medianSeconds([&] { solveRVolLP(G, Spec); }, 5);

    FormulationOptions Extra;
    Extra.FlowConservation = true;
    Extra.EqualOutputs = true;
    double WithExtra =
        medianSeconds([&] { solveRVolLP(G, Spec, Extra); }, 5);

    std::printf("  %-10s %12s %14s %14s %9.0fx %9.0fx\n", C.Name,
                fmtSeconds(Dag).c_str(), fmtSeconds(Plain).c_str(),
                fmtSeconds(WithExtra).c_str(), Plain / Dag, WithExtra / Dag);
  }

  std::printf("\nShape check (paper): the extra constraints help LP "
              "somewhat, but the gap to\nDAGSolve stays orders of "
              "magnitude (>= ~60x there) -- DAGSolve's advantage is\n"
              "algorithmic, not an artifact of the constraint set.\n");
  return 0;
}
