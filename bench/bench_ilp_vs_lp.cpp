//===- bench_ilp_vs_lp.cpp - Section 4.3 ILP vs LP reproduction ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's closing Section 4.3 comparison: solving IVol
// directly as an ILP versus the RVol LP + rounding. The paper (with
// lp_solve 5.5): "Though the ILP solver achieved similar execution times
// as the LP solver for the glucose assay, the ILP solver ran for hours
// without generating a solution for the enzyme assay, whereas the LP
// solver completed in 0.73 seconds."
//
// Our branch-and-bound runs under a node/time budget by default; the
// reproduced shape is ILP ~ LP on Glucose and budget exhaustion on the
// enzyme-scale instance.
//
// Beyond the reproduction, this bench races the two branch-and-bound node
// engines against each other -- the legacy Dense path (per-node Model copy
// solved cold) versus the Warm path (bound-delta nodes dual-reoptimized
// from the parent basis) -- and records node throughput for both in
// BENCH_ilp_vs_lp.json. The warm_speedup metric on the enzyme-class rows
// is the headline number: the warm engine must clear 5x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Manager.h"
#include "aqua/lp/BranchAndBound.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

double ilpBudgetSec() {
  if (const char *Env = std::getenv("AQUAVOL_BENCH_BUDGET_SEC"))
    if (double V = std::atof(Env); V > 0.0)
      return V;
  return fullRun() ? 3600.0 : 10.0;
}

lp::IntSolution runEngine(const lp::Model &M, lp::IntEngine Engine,
                          double BudgetSec) {
  lp::IntOptions BB;
  BB.TimeLimitSec = BudgetSec;
  BB.Engine = Engine;
  // The Dense run is the seed baseline: per-node Model copies solved cold
  // by the dense tableau, exactly the architecture this bench measures the
  // warm engine against.
  if (Engine == lp::IntEngine::Dense)
    BB.LP.Engine = lp::LpEngine::Dense;
  return lp::solveInteger(M, {}, BB);
}

void runCase(JsonReporter &Json, const char *Name, const AssayGraph &G,
             double BudgetSec) {
  MachineSpec Spec;

  LPVolumeResult LP;
  double LpSec = onceSeconds([&] { LP = solveRVolLP(G, Spec); });

  FormulationOptions IntF;
  IntF.UnitNl = Spec.LeastCountNl;
  Formulation F = buildVolumeModel(G, Spec, IntF);

  lp::IntSolution Warm, Dense;
  double WarmSec = onceSeconds([&] {
    Warm = runEngine(F.Model, lp::IntEngine::Warm, BudgetSec);
  });
  double DenseSec = onceSeconds([&] {
    Dense = runEngine(F.Model, lp::IntEngine::Dense, BudgetSec);
  });

  auto NodesPerSec = [](const lp::IntSolution &S, double Sec) {
    return Sec > 0.0 ? static_cast<double>(S.Nodes) / Sec : 0.0;
  };
  double WarmRate = NodesPerSec(Warm, WarmSec);
  double DenseRate = NodesPerSec(Dense, DenseSec);
  double Speedup = DenseRate > 0.0 ? WarmRate / DenseRate : 0.0;

  std::printf("  %-10s LP: %10s (%s)   ILP: %10s (%s, %lld nodes%s)\n", Name,
              fmtSeconds(LpSec).c_str(),
              lp::solveStatusName(LP.Solution.Status),
              fmtSeconds(WarmSec).c_str(), lp::solveStatusName(Warm.Status),
              static_cast<long long>(Warm.Nodes),
              Warm.HasIncumbent ? ", incumbent found" : ", no solution");
  std::printf("  %-10s node engines: warm %.0f nodes/s, dense %.0f nodes/s "
              "(%.1fx)\n",
              "", WarmRate, DenseRate, Speedup);

  Json.add(Name)
      .param("budget_sec", std::to_string(BudgetSec))
      .param("vars", std::to_string(F.Model.numVars()))
      .param("rows", std::to_string(F.Model.numRows()))
      .param("lp_status", lp::solveStatusName(LP.Solution.Status))
      .param("lp_pricing",
             lp::lpPricingName(lp::SolverOptions{}.Simplex.Pricing))
      .param("ilp_warm_status", lp::solveStatusName(Warm.Status))
      .param("ilp_dense_status", lp::solveStatusName(Dense.Status))
      .metric("lp_sec", LpSec)
      .metric("lp_pivots", static_cast<double>(LP.Solution.Iterations))
      .metric("ilp_warm_sec", WarmSec)
      .metric("ilp_warm_nodes", static_cast<double>(Warm.Nodes))
      .metric("ilp_warm_pivots", static_cast<double>(Warm.LpPivots))
      .metric("ilp_warm_nodes_per_sec", WarmRate)
      .metric("ilp_dense_sec", DenseSec)
      .metric("ilp_dense_nodes", static_cast<double>(Dense.Nodes))
      .metric("ilp_dense_pivots", static_cast<double>(Dense.LpPivots))
      .metric("ilp_dense_nodes_per_sec", DenseRate)
      .metric("warm_speedup", Speedup);
}

} // namespace

int main() {
  JsonReporter Json("ilp_vs_lp");
  double Budget = ilpBudgetSec();
  std::printf("Section 4.3: IVol as ILP vs RVol as LP (ILP budget %.0f s)\n",
              Budget);
  runCase(Json, "Glucose", assays::buildGlucoseAssay(), Budget);
  runCase(Json, "Fig2", assays::buildFigure2Example(), Budget);
  // The raw enzyme IVol is infeasible (both solvers prove it instantly);
  // the paper's hours-long ILP run corresponds to the feasible,
  // transformed assay, where branch-and-bound's tree explodes.
  runCase(Json, "Enzyme/raw", assays::buildEnzymeAssay(4), Budget);
  {
    core::ManagerResult VM =
        core::manageVolumes(assays::buildEnzymeAssay(4), MachineSpec{});
    if (VM.Feasible)
      runCase(Json, "Enzyme/xf", VM.Graph, Budget);
  }
  std::printf("\nShape check (paper): ILP is tolerable on the small glucose "
              "assay but fails to\nproduce a proven solution on the enzyme "
              "assay within any reasonable budget,\nwhile LP finishes in "
              "well under a second.\n");
  return 0;
}
