//===- bench_ilp_vs_lp.cpp - Section 4.3 ILP vs LP reproduction ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's closing Section 4.3 comparison: solving IVol
// directly as an ILP versus the RVol LP + rounding. The paper (with
// lp_solve 5.5): "Though the ILP solver achieved similar execution times
// as the LP solver for the glucose assay, the ILP solver ran for hours
// without generating a solution for the enzyme assay, whereas the LP
// solver completed in 0.73 seconds."
//
// Our branch-and-bound runs under a node/time budget by default; the
// reproduced shape is ILP ~ LP on Glucose and budget exhaustion on the
// enzyme-scale instance.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Manager.h"
#include "aqua/lp/BranchAndBound.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

void runCase(const char *Name, const AssayGraph &G, double BudgetSec) {
  MachineSpec Spec;

  LPVolumeResult LP;
  double LpSec = onceSeconds([&] { LP = solveRVolLP(G, Spec); });

  FormulationOptions IntF;
  IntF.UnitNl = Spec.LeastCountNl;
  Formulation F = buildVolumeModel(G, Spec, IntF);
  lp::IntOptions BB;
  BB.TimeLimitSec = BudgetSec;
  lp::IntSolution IS;
  double IlpSec = onceSeconds([&] { IS = lp::solveInteger(F.Model, {}, BB); });

  std::printf("  %-10s LP: %10s (%s)   ILP: %10s (%s, %lld nodes%s)\n", Name,
              fmtSeconds(LpSec).c_str(),
              lp::solveStatusName(LP.Solution.Status),
              fmtSeconds(IlpSec).c_str(), lp::solveStatusName(IS.Status),
              static_cast<long long>(IS.Nodes),
              IS.HasIncumbent ? ", incumbent found" : ", no solution");
}

} // namespace

int main() {
  double Budget = fullRun() ? 3600.0 : 10.0;
  std::printf("Section 4.3: IVol as ILP vs RVol as LP (ILP budget %.0f s)\n",
              Budget);
  runCase("Glucose", assays::buildGlucoseAssay(), Budget);
  runCase("Fig2", assays::buildFigure2Example(), Budget);
  // The raw enzyme IVol is infeasible (both solvers prove it instantly);
  // the paper's hours-long ILP run corresponds to the feasible,
  // transformed assay, where branch-and-bound's tree explodes.
  runCase("Enzyme/raw", assays::buildEnzymeAssay(4), Budget);
  {
    core::ManagerResult VM =
        core::manageVolumes(assays::buildEnzymeAssay(4), MachineSpec{});
    if (VM.Feasible)
      runCase("Enzyme/xf", VM.Graph, Budget);
  }
  std::printf("\nShape check (paper): ILP is tolerable on the small glucose "
              "assay but fails to\nproduce a proven solution on the enzyme "
              "assay within any reasonable budget,\nwhile LP finishes in "
              "well under a second.\n");
  return 0;
}
