//===- bench_biostream_baseline.cpp - BioStream baseline comparison ---------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quantifies the Section 3.4.1 comparison against BioStream's fixed 1:1
// mixing: "Because of their fixed-ratio mixing, achieving arbitrary mix
// ratios always requires cascading (except for 1:1 mixing), which
// executes on the slow fluid path, while our approach requires cascading
// only for uncommon cases of extreme mix ratios."
//
// For a sweep of target ratios, compares AquaVol (direct variable-ratio
// mix, or cascading only when the ratio is extreme) with BioStream chains
// at 8 and 12 bits of precision: number of mix operations on the slow
// fluid path, discarded volume per unit of product, and concentration
// error.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/core/BioStream.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Report.h"
#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

AssayGraph targetMix(std::int64_t P, std::int64_t Q, NodeId *MOut) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  *MOut = G.addMix("M", {{A, P}, {B, Q}}, 10.0);
  G.addUnary(NodeKind::Sense, "out", *MOut);
  return G;
}

struct Cost {
  int Mixes = 0;
  double DiscardPerOutput = 0.0; // Excess nl per nl of product.
  double ErrorPct = 0.0;
  bool Feasible = false;
};

Cost measure(const AssayGraph &G, double ErrorPct) {
  Cost C;
  C.ErrorPct = ErrorPct;
  for (NodeId N : G.liveNodes())
    if (G.node(N).Kind == NodeKind::Mix)
      ++C.Mixes;
  DagSolveResult R = dagSolve(G, MachineSpec{});
  C.Feasible = R.Feasible;
  if (!R.Feasible)
    return C;
  VolumeReport Rep = buildVolumeReport(G, R.Volumes);
  C.DiscardPerOutput =
      Rep.TotalOutputNl > 0.0 ? Rep.TotalExcessNl / Rep.TotalOutputNl : 0.0;
  return C;
}

std::string fmtCost(const Cost &C) {
  if (!C.Feasible)
    return "    (infeasible)        ";
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf), "%2d mixes %5.2f nl/nl %6.3f%%", C.Mixes,
                C.DiscardPerOutput, C.ErrorPct);
  return Buf;
}

} // namespace

int main() {
  std::printf("AquaVol vs BioStream-style fixed 1:1 mixing\n");
  std::printf("  (per target ratio: fluid-path mixes, discarded volume per "
              "unit product, error)\n\n");
  std::printf("  %-8s | %-26s | %-26s | %-26s\n", "ratio", "AquaVol",
              "BioStream 8-bit", "BioStream 12-bit");

  struct Target {
    std::int64_t P, Q;
  };
  for (const Target &T : {Target{1, 1}, Target{1, 3}, Target{1, 9},
                          Target{3, 7}, Target{1, 99}, Target{1, 999}}) {
    // AquaVol: one variable-ratio mix; cascade only when extreme.
    NodeId M;
    AssayGraph GA = targetMix(T.P, T.Q, &M);
    if (mixSkew(GA, M) > Rational(20)) {
      int Stages = chooseCascadeStages(T.P, T.Q, 20, 8);
      cascadeMix(GA, M, Stages).unwrap();
    }
    Cost AquaCost = measure(GA, 0.0);

    std::string Row = format("  %lld:%-6lld |", static_cast<long long>(T.P),
                             static_cast<long long>(T.Q));
    Row += " " + fmtCost(AquaCost) + " |";
    for (int Bits : {8, 12}) {
      NodeId MB;
      AssayGraph GB = targetMix(T.P, T.Q, &MB);
      auto Info = biostreamMix(GB, MB, Bits);
      if (!Info.ok()) {
        Row += format(" %-26s |", "(unrepresentable)");
        continue;
      }
      Row += " " + fmtCost(measure(GB, Info->ErrorPct)) + " |";
    }
    std::printf("%s\n", Row.c_str());
  }

  std::printf("\nShape check (Section 3.4.1): AquaVol needs ONE fluid-path "
              "mix for common ratios\nand cascades only extremes (exactly, "
              "with bounded discard); fixed 1:1 mixing\npays a chain of "
              "mixes and ~50%% discard at every stage for every non-dyadic\n"
              "ratio, plus quantization error.\n");
  return 0;
}
