//===- bench_table2_regeneration.cpp - Table 2 reproduction (regen counts) -------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2's "Regen. count" column: the number of BioStream-
// style regenerations triggered when the assays run WITHOUT volume
// management (relative-volume AIS, operations filling their functional
// unit to capacity), versus zero regenerations with DAGSolve's managed
// volumes.
//
// The paper never specifies its naive execution policy, so absolute counts
// are policy-dependent; the reproduced shape is the ordering and the
// magnitude gap: Glucose needs a handful, Enzyme tens, Enzyme10 thousands,
// and managed runs none.
//
// --engine=vm|interp|both selects the execution engine: the tree-walking
// runtime::Simulator ("interp") or the aqua/vm bytecode interpreter
// ("vm"). Both produce bit-for-bit identical SimResults (the `vm`
// differential oracle enforces this), so the regen counts never differ;
// what differs is wall time, and BENCH_table2_regeneration.json records
// both engines so the speedup is visible in committed BENCH files.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/vm/Compiler.h"
#include "aqua/vm/VM.h"

#include <cstring>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

enum class Engine { Interp, Vm };

const char *engineName(Engine E) {
  return E == Engine::Interp ? "interp" : "vm";
}

struct Outcome {
  int Regens = 0;
  double WetSeconds = 0.0;
  std::uint64_t Instructions = 0;
  double WallSec = 0.0;
  bool Completed = false;
};

/// Times \p P on the selected engine. The vm path compiles once and binds
/// one interpreter outside the timed region, so the wall column measures
/// the dispatch loop (the steady-state cost a fleet pays), not
/// compilation.
Outcome timeProgram(Engine E, const codegen::AISProgram &P,
                    const runtime::SimOptions &SO) {
  runtime::SimResult S;
  Outcome O;
  if (E == Engine::Interp) {
    O.WallSec = medianSeconds([&] { S = runtime::simulate(P, SO); }, 5);
  } else {
    vm::CompileOptions CO;
    CO.Spec = SO.Spec;
    CO.Graph = SO.Graph;
    auto Prog = vm::compile(P, CO);
    if (!Prog.ok()) {
      std::fprintf(stderr, "vm compile failed: %s\n",
                   Prog.message().c_str());
      return O;
    }
    vm::RunOptions RO;
    RO.EnableRegeneration = SO.EnableRegeneration;
    RO.Seed = SO.Seed;
    RO.MinSeparationYield = SO.MinSeparationYield;
    RO.MaxSeparationYield = SO.MaxSeparationYield;
    RO.FixedSeparationYield = SO.FixedSeparationYield;
    RO.MoveSeconds = SO.MoveSeconds;
    RO.MaxRegenRetries = SO.MaxRegenRetries;
    vm::Interp I;
    I.bind(*Prog);
    O.WallSec = medianSeconds(
        [&] {
          I.reset(RO);
          I.run();
          S = I.finish();
        },
        5);
  }
  O.Regens = S.Regenerations;
  O.WetSeconds = S.FluidSeconds;
  O.Instructions = static_cast<std::uint64_t>(S.InstructionsExecuted);
  O.Completed = S.Completed;
  return O;
}

Outcome runNaive(Engine E, const AssayGraph &G) {
  auto P = codegen::generateAIS(G);
  runtime::SimOptions SO;
  SO.Graph = &G;
  return timeProgram(E, *P, SO);
}

Outcome runManaged(Engine E, const AssayGraph &Raw) {
  MachineSpec Spec;
  ManagerResult VM = manageVolumes(Raw, Spec);
  if (!VM.Feasible)
    return {};
  VolumeAssignment Metered = integerToNl(VM.Graph, VM.Rounded, Spec);
  codegen::CodegenOptions CG;
  CG.Mode = codegen::VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = codegen::generateAIS(VM.Graph, {}, CG);
  runtime::SimOptions SO;
  SO.Graph = &VM.Graph;
  return timeProgram(E, *P, SO);
}

} // namespace

int main(int argc, char **argv) {
  bool RunInterp = true, RunVm = true;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--engine=interp"))
      RunVm = false;
    else if (!std::strcmp(argv[I], "--engine=vm"))
      RunInterp = false;
    else if (std::strcmp(argv[I], "--engine=both")) {
      std::fprintf(stderr, "usage: %s [--engine=vm|interp|both]\n", argv[0]);
      return 2;
    }
  }

  JsonReporter Json("table2_regeneration");

  std::printf("Table 2 ('Regen. count'): executions without volume "
              "management\n");
  std::printf("  %-10s %-7s %12s %14s %14s %12s   | paper\n", "assay",
              "engine", "naive regens", "naive wet time", "naive wall",
              "managed");

  struct Case {
    const char *Name;
    int Dilutions; // 0 = glucose.
    const char *Paper;
  };
  Case Cases[] = {{"Glucose", 0, "2"},
                  {"Enzyme", 4, "85"},
                  {"Enzyme10", 10, "1313"}};
  for (const Case &C : Cases) {
    AssayGraph G = C.Dilutions == 0 ? assays::buildGlucoseAssay()
                                    : assays::buildEnzymeAssay(C.Dilutions);
    for (Engine E : {Engine::Interp, Engine::Vm}) {
      if ((E == Engine::Interp && !RunInterp) ||
          (E == Engine::Vm && !RunVm))
        continue;
      Outcome Naive = runNaive(E, G);
      std::string ManagedStr = "-";
      BenchRecord &Rec = Json.add(std::string(C.Name) + "/naive");
      Rec.param("assay", C.Name)
          .param("engine", engineName(E))
          .metric("regenerations", Naive.Regens)
          .metric("wet_seconds", Naive.WetSeconds)
          .metric("instructions", static_cast<double>(Naive.Instructions))
          .metric("median_sec", Naive.WallSec)
          .metric("instr_per_sec",
                  Naive.WallSec > 0.0
                      ? static_cast<double>(Naive.Instructions) / Naive.WallSec
                      : 0.0);
      if (C.Dilutions != 10 || fullRun()) {
        // Managed Enzyme10 means a full Figure 6 driver run with LP
        // fallbacks on a ~17k-constraint model; skipped unless
        // AQUAVOL_BENCH_FULL=1.
        Outcome Managed = runManaged(E, G);
        ManagedStr = std::to_string(Managed.Regens);
        Json.add(std::string(C.Name) + "/managed")
            .param("assay", C.Name)
            .param("engine", engineName(E))
            .metric("regenerations", Managed.Regens)
            .metric("wet_seconds", Managed.WetSeconds)
            .metric("median_sec", Managed.WallSec);
      }
      std::printf("  %-10s %-7s %10d %s %14s %14s %12s   | %s\n", C.Name,
                  engineName(E), Naive.Regens, Naive.Completed ? "" : "(!)",
                  fmtSeconds(Naive.WetSeconds).c_str(),
                  fmtSeconds(Naive.WallSec).c_str(), ManagedStr.c_str(),
                  C.Paper);
    }
  }
  std::printf("  %-10s %14s %14s %16s   | --\n", "Glycomics",
              "(run-time", "dependent)", "see fig13 bench");

  std::printf("\nWith DAGSolve-managed volumes there are no regenerations "
              "(paper: \"With DAGSolve,\nthere are no regenerations\"); "
              "the naive counts grow from a handful (Glucose)\nthrough tens "
              "(Enzyme) to thousands (Enzyme10), matching the paper's "
              "ordering.\nBoth engines report identical regeneration counts "
              "(the vm oracle guarantees\nbit-for-bit equality); the wall "
              "column is where the bytecode VM pulls ahead.\n");
  return 0;
}
