//===- bench_table2_regeneration.cpp - Table 2 reproduction (regen counts) -------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2's "Regen. count" column: the number of BioStream-
// style regenerations triggered when the assays run WITHOUT volume
// management (relative-volume AIS, operations filling their functional
// unit to capacity), versus zero regenerations with DAGSolve's managed
// volumes.
//
// The paper never specifies its naive execution policy, so absolute counts
// are policy-dependent; the reproduced shape is the ordering and the
// magnitude gap: Glucose needs a handful, Enzyme tens, Enzyme10 thousands,
// and managed runs none.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/runtime/Simulator.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

struct Outcome {
  int Regens = 0;
  double WetSeconds = 0.0;
  bool Completed = false;
};

Outcome runNaive(const AssayGraph &G) {
  auto P = codegen::generateAIS(G);
  runtime::SimOptions SO;
  SO.Graph = &G;
  runtime::SimResult S = runtime::simulate(*P, SO);
  return {S.Regenerations, S.FluidSeconds, S.Completed};
}

Outcome runManaged(const AssayGraph &Raw) {
  MachineSpec Spec;
  ManagerResult VM = manageVolumes(Raw, Spec);
  if (!VM.Feasible)
    return {};
  VolumeAssignment Metered = integerToNl(VM.Graph, VM.Rounded, Spec);
  codegen::CodegenOptions CG;
  CG.Mode = codegen::VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = codegen::generateAIS(VM.Graph, {}, CG);
  runtime::SimOptions SO;
  SO.Graph = &VM.Graph;
  runtime::SimResult S = runtime::simulate(*P, SO);
  return {S.Regenerations, S.FluidSeconds, S.Completed};
}

} // namespace

int main() {
  std::printf("Table 2 ('Regen. count'): executions without volume "
              "management\n");
  std::printf("  %-10s %14s %14s %16s   | paper\n", "assay", "naive regens",
              "naive wet time", "managed regens");

  struct Case {
    const char *Name;
    int Dilutions; // 0 = glucose.
    const char *Paper;
  };
  Case Cases[] = {{"Glucose", 0, "2"},
                  {"Enzyme", 4, "85"},
                  {"Enzyme10", 10, "1313"}};
  for (const Case &C : Cases) {
    AssayGraph G = C.Dilutions == 0 ? assays::buildGlucoseAssay()
                                    : assays::buildEnzymeAssay(C.Dilutions);
    Outcome Naive = runNaive(G);
    std::string ManagedStr = "-";
    if (C.Dilutions != 10 || fullRun()) {
      // Managed Enzyme10 means a full Figure 6 driver run with LP
      // fallbacks on a ~17k-constraint model; skipped unless
      // AQUAVOL_BENCH_FULL=1.
      Outcome Managed = runManaged(G);
      ManagedStr = std::to_string(Managed.Regens);
    }
    std::printf("  %-10s %10d %s %16s %12s       | %s\n", C.Name,
                Naive.Regens, Naive.Completed ? "" : "(!)",
                fmtSeconds(Naive.WetSeconds).c_str(), ManagedStr.c_str(),
                C.Paper);
  }
  std::printf("  %-10s %14s %14s %16s   | --\n", "Glycomics",
              "(run-time", "dependent)", "see fig13 bench");

  std::printf("\nWith DAGSolve-managed volumes there are no regenerations "
              "(paper: \"With DAGSolve,\nthere are no regenerations\"); "
              "the naive counts grow from a handful (Glucose)\nthrough tens "
              "(Enzyme) to thousands (Enzyme10), matching the paper's "
              "ordering.\n");
  return 0;
}
