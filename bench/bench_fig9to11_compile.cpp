//===- bench_fig9to11_compile.cpp - Figures 9, 10, 11 reproduction --------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the compiled AIS of Figures 9(b), 10(b) and 11(b): parses
// each assay's source (Figures 9a/10a/11a), lowers it, and emits
// relative-volume AIS in the paper's style, with compile-time statistics.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/lang/Lower.h"

using namespace aqua;
using namespace benchutil;

static void compileOne(const char *Title, const char *Source,
                       bool PrintAll) {
  header(Title);
  auto L = lang::compileAssay(Source);
  if (!L.ok()) {
    std::printf("  compile error: %s\n", L.message().c_str());
    return;
  }
  auto P = codegen::generateAIS(L->Graph);
  if (!P.ok()) {
    std::printf("  codegen error: %s\n", P.message().c_str());
    return;
  }
  std::printf("  DAG: %d nodes, %d edges; AIS: %zu instructions; "
              "resources: %d reservoirs, %d mixers, %d heaters, %d sensors, "
              "%d separators\n",
              L->Graph.numNodes(), L->Graph.numEdges(), P->Instrs.size(),
              P->UsedReservoirs, P->UsedMixers, P->UsedHeaters,
              P->UsedSensors, P->UsedSeparators);
  double T = medianSeconds([&] {
    auto L2 = lang::compileAssay(Source);
    codegen::generateAIS(L2->Graph).unwrap();
  });
  std::printf("  front-end + codegen time: %s\n\n", fmtSeconds(T).c_str());
  if (PrintAll) {
    std::printf("%s", P->str().c_str());
  } else {
    // The enzyme program is 64 combinations long; show the shape.
    std::string Text = P->str();
    size_t Shown = 0, Lines = 0;
    while (Shown < Text.size() && Lines < 40) {
      size_t Nl = Text.find('\n', Shown);
      std::printf("%.*s\n", static_cast<int>(Nl - Shown), Text.data() + Shown);
      Shown = Nl + 1;
      ++Lines;
    }
    std::printf("... (%zu more instructions)\n", P->Instrs.size() - Lines);
  }
}

int main() {
  compileOne("Figure 9(b): glucose assay AIS", assays::glucoseSource(),
             /*PrintAll=*/true);
  compileOne("Figure 10(b): glycomics assay AIS", assays::glycomicsSource(),
             /*PrintAll=*/true);
  compileOne("Figure 11(b): enzyme assay AIS (fully unrolled)",
             assays::enzymeSource(), /*PrintAll=*/false);
  return 0;
}
