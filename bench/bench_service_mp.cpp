//===- bench_service_mp.cpp - Multi-process service throughput ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Service throughput across OS *processes*, not threads: N forked workers,
// each running its own CompileService over ONE shared persistent store
// directory, the deployment shape of a fleet of aquad daemons behind a
// load balancer. Three phases:
//
//  1. mp_cold      -- 4 workers split a volume sweep (one assay structure,
//                     many capacities) over an empty shared store; every
//                     request is a genuine solve, written through.
//  2. mp_warm      -- 4 fresh workers re-serve the full sweep; everything
//                     must come from the shared store (zero cold solves:
//                     a hard gate, not a timing gate).
//  3. warm_miss    -- single process, fresh store: the same sweep run
//                     twice, once with warm-miss basis reuse disabled
//                     (every capacity is a cold LP solve) and once with it
//                     enabled (the first capacity is cold, every later one
//                     repairs the donor basis with the dual simplex).
//                     Gates: every enabled-run miss after the first is a
//                     warm-miss hit, and the mean per-solve time is >= 3x
//                     better than the disabled run's.
//
// The workload is LP-bound by construction: a 1:24 skewed dilution next to
// heavy parallel 1:1 uses of the same input makes DAGSolve's equal-output
// constraint underflow, so the manager falls through to the Figure 3 LP on
// every solve (SolveMethod::LP) -- the path warm-miss reuse accelerates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/ir/AssayGraph.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/service/CompileService.h"
#include "aqua/support/Json.h"
#include "aqua/support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace aqua;
using namespace benchutil;

namespace {

/// The LP-bound structure (scaled from the Manager LP-fallback fixture):
/// output P needs 1/25 of its mix from A while many parallel 1:1 mixes
/// hammer A, so DAGSolve's equal outputs starve P's edge and the manager
/// must use the LP.
std::shared_ptr<const ir::AssayGraph> buildLpBoundAssay(int Uses) {
  ir::AssayGraph G;
  ir::NodeId A = G.addInput("A");
  ir::NodeId B = G.addInput("B");
  ir::NodeId MixP = G.addMix("mixP", {{A, 1}, {B, 24}});
  G.addUnary(ir::NodeKind::Sense, "P", MixP);
  for (int I = 0; I < Uses; ++I) {
    ir::NodeId MixQ = G.addMix("mixQ" + std::to_string(I), {{A, 1}, {B, 1}});
    G.addUnary(ir::NodeKind::Sense, "Q" + std::to_string(I), MixQ);
  }
  return std::make_shared<const ir::AssayGraph>(std::move(G));
}

/// The manager configuration that pins the hierarchy to the LP level.
core::ManagerOptions lpBoundOptions() {
  core::ManagerOptions Opts;
  Opts.AllowCascading = false;
  Opts.AllowReplication = false;
  return Opts;
}

/// One request of the volume sweep: the same structure under capacity
/// slot \p I. Capacities step downward so DAGSolve stays infeasible and
/// every fingerprint is distinct while the structure key is shared.
service::CompileRequest sweepRequest(
    const std::shared_ptr<const ir::AssayGraph> &Graph, int I) {
  service::CompileRequest R;
  R.Name = "sweep" + std::to_string(I);
  R.Graph = Graph;
  R.Spec.MaxCapacityNl = 100.0 - 0.5 * I;
  R.Manage = lpBoundOptions();
  return R;
}

/// What a forked worker reports back through its pipe.
struct WorkerReport {
  std::uint64_t Requests = 0;
  std::uint64_t Failures = 0;
  std::uint64_t ColdSolves = 0;
  std::uint64_t L2Hits = 0;
  std::uint64_t WarmMissHits = 0;
  double SolveSec = 0.0;
  double WallSec = 0.0;
};

/// Forks \p Workers children; child W serves the sweep slots \p Slots
/// filtered by `slot % Workers == W` (or every slot when \p Shard is
/// false) against the shared \p StoreDir, then reports through a pipe.
/// Each child also dumps its full metrics registry to
/// `MetricsDir/metrics-<pid>.json` (the in-struct report loses the hit
/// and shed breakdown; the registry keeps it) and, with AQUA_TRACE_DIR
/// set, flushes its trace shard before `_exit` (which skips atexit). The
/// parent emits one dispatch flow 's' per (worker, slot) under pre-fork
/// seeded ids; each child closes its own 'f', so the merged trace draws
/// request arcs crossing process boundaries.
/// Returns the per-worker reports (empty on fork/pipe failure).
std::vector<WorkerReport> runWorkers(
    int Workers, int Slots, bool Shard, const std::string &StoreDir,
    const std::string &MetricsDir,
    const std::shared_ptr<const ir::AssayGraph> &Graph) {
  std::vector<WorkerReport> Reports;
  std::vector<int> ReadFds;
  std::vector<pid_t> Pids;
  std::uint64_t DispatchSeed = obs::newTraceId();
  for (int W = 0; W < Workers; ++W) {
    int Fds[2];
    if (pipe(Fds) != 0) {
      std::perror("pipe");
      return {};
    }
    pid_t Pid = fork();
    if (Pid < 0) {
      std::perror("fork");
      return {};
    }
    if (Pid == 0) {
      // Child: serve the slice, write one WorkerReport, _exit. The
      // inherited trace ring holds the parent's pre-fork events; drop it
      // so they appear in one shard only.
      close(Fds[0]);
      if (obs::Tracer::enabled())
        obs::Tracer::global().clear();
      service::ServiceOptions Options;
      Options.Threads = 1;
      Options.StoreDir = StoreDir;
      WorkerReport Rep;
      {
        service::CompileService Service(Options);
        WallTimer Wall;
        for (int I = 0; I < Slots; ++I) {
          if (Shard && I % Workers != W)
            continue;
          ++Rep.Requests;
          service::CompileRequest Req = sweepRequest(Graph, I);
          if (obs::Tracer::enabled()) {
            std::uint64_t Flow = obs::dispatchFlowId(DispatchSeed, W, I);
            Req.TraceId = obs::mixId(Flow) | 1;
            obs::SpanGuard Span("mp.receive", "service");
            Span.arg("slot", static_cast<std::uint64_t>(I));
            obs::traceFlowEnd("mp.dispatch", Flow);
          }
          if (!Service.compileNow(Req).Ok)
            ++Rep.Failures;
        }
        Rep.WallSec = Wall.seconds();
        service::ServiceStats S = Service.stats();
        Rep.ColdSolves = S.Cache.Insertions - S.CacheHitsL2;
        Rep.L2Hits = S.CacheHitsL2;
        Rep.WarmMissHits = S.WarmMissHits;
        Rep.SolveSec = S.SolveSec;
      }
      bool MetricsOk = obs::metrics().writeJsonFile(
          format("%s/metrics-%d.json", MetricsDir.c_str(),
                 static_cast<int>(getpid())));
      (void)obs::flushTraceShard();
      ssize_t N = write(Fds[1], &Rep, sizeof(Rep));
      close(Fds[1]);
      _exit(N == sizeof(Rep) && MetricsOk ? 0 : 1);
    }
    close(Fds[1]);
    ReadFds.push_back(Fds[0]);
    Pids.push_back(Pid);
  }
  if (obs::Tracer::enabled()) {
    for (int W = 0; W < Workers; ++W)
      for (int I = 0; I < Slots; ++I) {
        if (Shard && I % Workers != W)
          continue;
        obs::SpanGuard Span("mp.dispatch", "service");
        Span.arg("worker", W);
        Span.arg("slot", static_cast<std::uint64_t>(I));
        obs::traceFlowBegin("mp.dispatch",
                            obs::dispatchFlowId(DispatchSeed, W, I));
      }
  }
  for (int W = 0; W < Workers; ++W) {
    WorkerReport Rep;
    ssize_t N = read(ReadFds[W], &Rep, sizeof(Rep));
    close(ReadFds[W]);
    int Status = 0;
    waitpid(Pids[W], &Status, 0);
    if (N == sizeof(Rep) && WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      Reports.push_back(Rep);
  }
  return Reports;
}

/// Hit/shed breakdown summed over the per-process metrics dumps the
/// workers leave in \p MetricsDir.
struct AggregatedMetrics {
  std::uint64_t Files = 0;
  std::uint64_t CacheHits = 0;
  std::uint64_t CacheHitsL2 = 0;
  std::uint64_t CacheMisses = 0;
  std::uint64_t ShedTotal = 0;
};

AggregatedMetrics aggregateWorkerMetrics(const std::string &MetricsDir) {
  AggregatedMetrics Agg;
  DIR *D = opendir(MetricsDir.c_str());
  if (!D)
    return Agg;
  std::vector<std::string> Paths;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("metrics-", 0) == 0)
      Paths.push_back(MetricsDir + "/" + Name);
  }
  closedir(D);
  for (const std::string &Path : Paths) {
    std::ifstream File(Path);
    if (!File)
      continue;
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    auto Doc = json::parse(Buffer.str());
    if (!Doc.ok())
      continue;
    const json::Value *Counters = Doc->find("counters");
    if (!Counters)
      continue;
    auto Sum = [&](const char *Name, std::uint64_t &Into) {
      if (const json::Value *V = Counters->find(Name))
        Into += V->u64();
    };
    ++Agg.Files;
    Sum("service.cache.hits", Agg.CacheHits);
    Sum("service.cache.hits_l2", Agg.CacheHitsL2);
    Sum("service.cache.misses", Agg.CacheMisses);
    Sum("service.shed_total", Agg.ShedTotal);
    std::remove(Path.c_str()); // consumed; the next phase writes afresh
  }
  return Agg;
}

std::string makeTempDir(const char *What) {
  char Template[64];
  std::snprintf(Template, sizeof(Template), "/tmp/aqua-bench-mp-%s-XXXXXX",
                What);
  char *Dir = mkdtemp(Template);
  return Dir ? Dir : format("bench-mp-%s", What);
}

} // namespace

int main() {
  const int Workers = 4;
  const int Slots = 16;
  auto Graph = buildLpBoundAssay(420);
  const std::string StoreDir = makeTempDir("store");
  const std::string MetricsDir = makeTempDir("metrics");
  obs::initProcessTracing(); // shard per process when AQUA_TRACE_DIR is set
  JsonReporter Json("service_mp");
  header("Multi-process service: forked workers over one shared store");

  // ---- Phase 1: 4 processes shard a cold sweep over the empty store.
  {
    WallTimer Wall;
    std::vector<WorkerReport> Reports =
        runWorkers(Workers, Slots, /*Shard=*/true, StoreDir, MetricsDir,
                   Graph);
    double WallSec = Wall.seconds();
    if (static_cast<int>(Reports.size()) != Workers) {
      std::fprintf(stderr, "worker failure in mp_cold\n");
      return 1;
    }
    WorkerReport Sum;
    for (const WorkerReport &R : Reports) {
      Sum.Requests += R.Requests;
      Sum.Failures += R.Failures;
      Sum.ColdSolves += R.ColdSolves;
      Sum.SolveSec += R.SolveSec;
    }
    AggregatedMetrics Agg = aggregateWorkerMetrics(MetricsDir);
    std::printf("  mp cold:  %llu requests / %d procs in %s "
                "(%llu solves, %llu failures; workers report %llu hits / "
                "%llu misses)\n",
                static_cast<unsigned long long>(Sum.Requests), Workers,
                fmtSeconds(WallSec).c_str(),
                static_cast<unsigned long long>(Sum.ColdSolves),
                static_cast<unsigned long long>(Sum.Failures),
                static_cast<unsigned long long>(Agg.CacheHits),
                static_cast<unsigned long long>(Agg.CacheMisses));
    Json.add("mp_cold")
        .param("workers", std::to_string(Workers))
        .param("slots", std::to_string(Slots))
        .metric("wall_sec", WallSec)
        .metric("requests", static_cast<double>(Sum.Requests))
        .metric("cold_solves", static_cast<double>(Sum.ColdSolves))
        .metric("failures", static_cast<double>(Sum.Failures))
        .metric("throughput_rps",
                WallSec > 0 ? Sum.Requests / WallSec : 0.0)
        .metric("agg_metrics_files", static_cast<double>(Agg.Files))
        .metric("agg_cache_hits", static_cast<double>(Agg.CacheHits))
        .metric("agg_cache_hits_l2", static_cast<double>(Agg.CacheHitsL2))
        .metric("agg_cache_misses", static_cast<double>(Agg.CacheMisses))
        .metric("agg_shed_total", static_cast<double>(Agg.ShedTotal));
    if (Sum.Failures || Sum.Requests != static_cast<std::uint64_t>(Slots))
      return 1;
    // Every worker must have left a parseable metrics dump, and every
    // cold-sweep request is a miss by construction.
    if (Agg.Files != static_cast<std::uint64_t>(Workers) ||
        Agg.CacheMisses != static_cast<std::uint64_t>(Slots)) {
      std::fprintf(stderr,
                   "worker metrics aggregation: %llu files, %llu misses "
                   "(want %d / %d)\n",
                   static_cast<unsigned long long>(Agg.Files),
                   static_cast<unsigned long long>(Agg.CacheMisses), Workers,
                   Slots);
      return 1;
    }
  }

  // ---- Phase 2: 4 fresh processes re-serve the FULL sweep from the
  // shared store. Hard gate: zero cold solves anywhere.
  {
    WallTimer Wall;
    std::vector<WorkerReport> Reports =
        runWorkers(Workers, Slots, /*Shard=*/false, StoreDir, MetricsDir,
                   Graph);
    double WallSec = Wall.seconds();
    if (static_cast<int>(Reports.size()) != Workers) {
      std::fprintf(stderr, "worker failure in mp_warm\n");
      return 1;
    }
    WorkerReport Sum;
    for (const WorkerReport &R : Reports) {
      Sum.Requests += R.Requests;
      Sum.Failures += R.Failures;
      Sum.ColdSolves += R.ColdSolves;
      Sum.L2Hits += R.L2Hits;
    }
    AggregatedMetrics Agg = aggregateWorkerMetrics(MetricsDir);
    std::printf("  mp warm:  %llu requests / %d procs in %s "
                "(%llu L2 hits, %llu cold solves; workers report %llu "
                "hits, %llu shed)\n",
                static_cast<unsigned long long>(Sum.Requests), Workers,
                fmtSeconds(WallSec).c_str(),
                static_cast<unsigned long long>(Sum.L2Hits),
                static_cast<unsigned long long>(Sum.ColdSolves),
                static_cast<unsigned long long>(Agg.CacheHits),
                static_cast<unsigned long long>(Agg.ShedTotal));
    Json.add("mp_warm")
        .param("workers", std::to_string(Workers))
        .param("slots", std::to_string(Slots))
        .metric("wall_sec", WallSec)
        .metric("requests", static_cast<double>(Sum.Requests))
        .metric("l2_hits", static_cast<double>(Sum.L2Hits))
        .metric("cold_solves", static_cast<double>(Sum.ColdSolves))
        .metric("failures", static_cast<double>(Sum.Failures))
        .metric("throughput_rps",
                WallSec > 0 ? Sum.Requests / WallSec : 0.0)
        .metric("agg_metrics_files", static_cast<double>(Agg.Files))
        .metric("agg_cache_hits", static_cast<double>(Agg.CacheHits))
        .metric("agg_cache_hits_l2", static_cast<double>(Agg.CacheHitsL2))
        .metric("agg_cache_misses", static_cast<double>(Agg.CacheMisses))
        .metric("agg_shed_total", static_cast<double>(Agg.ShedTotal));
    if (Sum.Failures || Sum.ColdSolves != 0)
      return 1;
    if (Agg.Files != static_cast<std::uint64_t>(Workers)) {
      std::fprintf(stderr, "worker metrics aggregation: %llu files\n",
                   static_cast<unsigned long long>(Agg.Files));
      return 1;
    }
  }

  // ---- Phase 3: warm-miss basis reuse, disabled vs enabled, in-process
  // (fresh caches both times; the sweep structure is identical so every
  // enabled-run miss after the first can repair the donor basis).
  {
    auto RunSweep = [&](bool WarmMiss, WorkerReport &Rep) -> bool {
      service::ServiceOptions Options;
      Options.Threads = 1;
      Options.WarmMiss = WarmMiss;
      service::CompileService Service(Options);
      WallTimer Wall;
      for (int I = 0; I < Slots; ++I) {
        ++Rep.Requests;
        if (!Service.compileNow(sweepRequest(Graph, I)).Ok)
          ++Rep.Failures;
      }
      Rep.WallSec = Wall.seconds();
      service::ServiceStats S = Service.stats();
      Rep.ColdSolves = S.Cache.Insertions - S.CacheHitsL2;
      Rep.WarmMissHits = S.WarmMissHits;
      Rep.SolveSec = S.SolveSec;
      return Rep.Failures == 0;
    };
    WorkerReport Cold, Warm;
    if (!RunSweep(false, Cold) || !RunSweep(true, Warm)) {
      std::fprintf(stderr, "sweep failure in warm_miss\n");
      return 1;
    }
    double ColdPer = Cold.SolveSec / Slots;
    double WarmPer = Warm.SolveSec / Slots;
    double Speedup = WarmPer > 0 ? ColdPer / WarmPer : 0.0;
    std::printf("  warm miss: %.3f ms/solve cold vs %.3f ms/solve warm "
                "(%.1fx, %llu warm-miss hits / %d misses)\n",
                ColdPer * 1e3, WarmPer * 1e3, Speedup,
                static_cast<unsigned long long>(Warm.WarmMissHits), Slots);
    Json.add("warm_miss")
        .param("slots", std::to_string(Slots))
        .metric("cold_solve_sec_per", ColdPer)
        .metric("warm_solve_sec_per", WarmPer)
        .metric("speedup", Speedup)
        .metric("warm_miss_hits", static_cast<double>(Warm.WarmMissHits))
        .metric("expected_hits", static_cast<double>(Slots - 1));
    // Hard gates: reuse must actually engage; the timing gate is skipped
    // under AQUAVOL_BENCH_NO_TIMING_GATE like every other perf assertion.
    if (Warm.WarmMissHits != static_cast<std::uint64_t>(Slots - 1)) {
      std::fprintf(stderr, "warm-miss engaged on %llu/%d misses\n",
                   static_cast<unsigned long long>(Warm.WarmMissHits),
                   Slots - 1);
      return 1;
    }
    if (!noTimingGate() && Speedup < 3.0) {
      std::fprintf(stderr, "warm-miss speedup %.2fx < 3x gate\n", Speedup);
      return 1;
    }
  }
  return 0;
}
