//===- bench_droplet_adaptation.cpp - Droplet-based adaptation --------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's closing remark made concrete: "our techniques may be adapted
// for droplet-based LoCs." On a digital-microfluidic device volumes are
// whole droplets, so DAGSolve's dispensing picks the lcm-of-denominators
// scale and the assignment becomes *exact* (zero mix-ratio error -- the
// flow device's §4.2 rounding error disappears), at the cost of droplet
// population and routing steps on the electrode grid.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"
#include "aqua/droplet/Router.h"

using namespace aqua;
using namespace aqua::droplet;
using namespace aqua::ir;
using namespace benchutil;

namespace {

void runCase(const char *Name, const AssayGraph &G, const DmfSpec &Spec) {
  auto A = dmfDagSolve(G, Spec);
  if (!A.ok()) {
    std::printf("  %-12s %s\n", Name, A.message().c_str());
    return;
  }
  std::printf("  %-12s scale %4lld  max site %4lld droplets (%s), min edge "
              "%3lld",
              Name, static_cast<long long>(A->Scale),
              static_cast<long long>(A->MaxSiteDroplets),
              A->Feasible ? "fits" : "over capacity",
              static_cast<long long>(A->MinEdgeDroplets));
  if (!A->Feasible) {
    std::printf("\n");
    return;
  }
  auto Run = executeOnGrid(G, *A, Spec);
  if (!Run.ok()) {
    std::printf("  | grid: %s\n", Run.message().c_str());
    return;
  }
  std::printf(" | grid: %lld steps, %d splits, %d merges, peak %d "
              "droplets\n",
              static_cast<long long>(Run->Steps), Run->Splits, Run->Merges,
              Run->PeakDroplets);
}

} // namespace

int main() {
  DmfSpec Spec;
  Spec.Width = 24;
  Spec.Height = 24;
  Spec.CapacityDroplets = 512;

  header("Droplet-based adaptation (exact integer-droplet DAGSolve)");
  std::printf("  grid %dx%d, per-site capacity %lld droplets\n\n",
              Spec.Width, Spec.Height,
              static_cast<long long>(Spec.CapacityDroplets));

  runCase("Fig2", assays::buildFigure2Example(), Spec);
  runCase("Glucose", assays::buildGlucoseAssay(), Spec);

  // A cascaded extreme ratio on the droplet device.
  {
    AssayGraph G;
    NodeId A = G.addInput("A");
    NodeId B = G.addInput("B");
    NodeId M = G.addMix("M", {{A, 1}, {B, 99}}, 1.0);
    G.addUnary(NodeKind::Sense, "sense_R_1", M);
    core::cascadeMix(G, M, 2).unwrap();
    runCase("1:99 casc", G, Spec);
  }

  // The raw 1:999 dilution needs 1000 droplets at one site: over capacity,
  // exactly the extreme-ratio failure mode of the flow device; cascading
  // fixes it here too.
  {
    AssayGraph G;
    NodeId A = G.addInput("A");
    NodeId B = G.addInput("B");
    NodeId M = G.addMix("M", {{A, 1}, {B, 999}}, 1.0);
    G.addUnary(NodeKind::Sense, "sense_R_1", M);
    runCase("1:999 raw", G, Spec);
    core::cascadeMix(G, M, 3).unwrap();
    runCase("1:999 casc", G, Spec);
  }

  std::printf("\nShape check: the same volume-management machinery carries "
              "over -- Vnorms are\nunchanged, dispensing becomes exact "
              "integer droplets, and extreme ratios\noverflow the per-site "
              "capacity until cascading splits them, mirroring the\n"
              "flow-based story. Mix-ratio error is zero by construction "
              "(vs <=2%% with\nleast-count rounding).\n");
  return 0;
}
