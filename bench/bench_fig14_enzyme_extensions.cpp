//===- bench_fig14_enzyme_extensions.cpp - Figure 14 reproduction ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 14 and its narrative, step by step:
//
//   (a) raw enzyme assay: dilutions at Vnorm 16/3, diluent at ~54,
//       dilutions dispensed at 9.8 nl, the 1:999 edge underflowing at
//       9.8 pl -- and LP failing as well;
//   (b) cascade each 1:999 into three 1:9 stages (intermediates at 16/3,
//       diluent rising to ~81, new 65.6 pl underflow at the 1:99 mixes);
//       replicate the diluent three ways (Vnorm ~27 per replica, minimum
//       dispense rising ~3x to 196 pl: feasible);
//   plus the paper's "replication without cascading" probe (29.5 pl:
//   still infeasible).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Replication.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

std::string nl3(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f pl", V * 1000.0);
  return Buf;
}

/// The paper's replica assignment: one diluent replica per reagent class.
void regroupByReagent(AssayGraph &G, const std::vector<NodeId> &Reps) {
  for (NodeId Rep : Reps)
    for (EdgeId E : G.outEdges(Rep)) {
      const std::string &Consumer = G.node(G.edge(E).Dst).Name;
      int Class = Consumer.rfind("inh_", 0) == 0   ? 0
                  : Consumer.rfind("enz_", 0) == 0 ? 1
                                                   : 2;
      if (Reps[Class] != Rep)
        G.setEdgeSource(E, Reps[Class]);
    }
}

} // namespace

int main() {
  MachineSpec Spec;

  // ----- (a) the raw assay.
  AssayGraph G = assays::buildEnzymeAssay(4);
  DagSolveResult R0 = dagSolve(G, Spec);
  header("Figure 14(a): raw enzyme assay");
  paperRow("dilution Vnorm", "16/3",
           R0.NodeVnorm[findNode(G, "enz_dil4")].str());
  paperRow("diluent Vnorm (maximum)", "54",
           R0.NodeVnorm[findNode(G, "diluent")].str() + " ~ " +
               std::to_string(R0.NodeVnorm[findNode(G, "diluent")].toDouble()));
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f nl",
                R0.Volumes.NodeVolumeNl[findNode(G, "enz_dil4")]);
  paperRow("dilution dispensed volume", "9.8 nl", Buf);
  paperRow("minimum dispense (1:999 edge)", "9.8 pl", nl3(R0.MinDispenseNl));
  paperRow("DAGSolve feasible", "no", R0.Feasible ? "yes" : "no");
  LPVolumeResult LP0 = solveRVolLP(G, Spec);
  paperRow("LP also fails", "yes",
           LP0.Solution.Status == lp::SolveStatus::Infeasible
               ? "yes (infeasible)"
               : lp::solveStatusName(LP0.Solution.Status));

  // ----- Probe: replication without cascading (the paper's 29.5 pl).
  {
    AssayGraph GR = assays::buildEnzymeAssay(4);
    NodeId Dil = findNode(GR, "diluent");
    auto Reps = replicateNode(GR, Dil, 3, Spec);
    regroupByReagent(GR, *Reps);
    DagSolveResult RR = dagSolve(GR, Spec);
    header("Probe: replication WITHOUT cascading");
    paperRow("minimum dispense", "29.5 pl", nl3(RR.MinDispenseNl));
    paperRow("feasible", "no", RR.Feasible ? "yes" : "no");
  }

  // ----- (b) cascade the 1:999 mixes.
  header("Figure 14(b) step 1: cascade each 1:999 into three 1:9 stages");
  for (const char *Name : {"inh_dil4", "enz_dil4", "sub_dil4"})
    cascadeMix(G, findNode(G, Name), 3).unwrap();
  DagSolveResult R1 = dagSolve(G, Spec);
  NodeId Casc = findNode(G, "enz_dil4.casc1");
  paperRow("cascade intermediates' Vnorm", "16/3",
           R1.NodeVnorm[Casc].str());
  paperRow("diluent uses", "18 (from 12)",
           std::to_string(G.outEdges(findNode(G, "diluent")).size()));
  paperRow("diluent Vnorm", "81",
           R1.NodeVnorm[findNode(G, "diluent")].str() + " ~ " +
               std::to_string(R1.NodeVnorm[findNode(G, "diluent")].toDouble()));
  paperRow("new minimum dispense (1:99 mixes)", "65.6 pl",
           nl3(R1.MinDispenseNl));
  paperRow("feasible yet", "no", R1.Feasible ? "yes" : "no");

  // ----- (b) replicate the diluent three ways.
  header("Figure 14(b) step 2: replicate the diluent 3x (one per reagent)");
  NodeId Dil = findNode(G, "diluent");
  auto Reps = replicateNode(G, Dil, 3, Spec);
  regroupByReagent(G, *Reps);
  DagSolveResult R2 = dagSolve(G, Spec);
  paperRow("diluent Vnorm per replica", "81/3 = 27",
           R2.NodeVnorm[Dil].str() + " ~ " +
               std::to_string(R2.NodeVnorm[Dil].toDouble()));
  paperRow("minimum dispense", "196 pl", nl3(R2.MinDispenseNl));
  paperRow("all underflow eliminated", "yes", R2.Feasible ? "yes" : "no");
  LPVolumeResult LP2 = solveRVolLP(G, Spec);
  paperRow("LP on the transformed DAG", "feasible",
           lp::solveStatusName(LP2.Solution.Status));

  // ----- The automatic Figure 6 driver end-to-end.
  header("Automatic driver (Figure 6) on the raw assay");
  ManagerResult VM = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  std::printf("%s", VM.Log.c_str());
  std::snprintf(Buf, sizeof(Buf), "%.1f pl, %d cascades, %d replications",
                VM.MinDispenseNl * 1000.0, VM.CascadesApplied,
                VM.ReplicationsApplied);
  paperRow("driver outcome", "feasible", VM.Feasible ? Buf : "INFEASIBLE");
  std::snprintf(Buf, sizeof(Buf), "mean %.2f%%, max %.2f%%",
                VM.Rounded.MeanRatioErrorPct, VM.Rounded.MaxRatioErrorPct);
  paperRow("rounding error (Section 4.2)", "< 2% mean", Buf);
  return 0;
}
