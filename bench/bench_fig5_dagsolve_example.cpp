//===- bench_fig5_dagsolve_example.cpp - Figures 2 & 5 reproduction -------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's worked example: the Figure 2 assay DAG, the
// Figure 5(a) Vnorm annotation, and the Figure 5(b) dispensed volumes
// (52/48/24/13/59/65 nl in the paper's rounding).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);

  header("Figure 2: assay DAG");
  std::printf("%s", G.str().c_str());

  header("Figure 5(a): Vnorm backward pass (exact rationals)");
  struct {
    const char *Name;
    NodeId Node;
    const char *Paper;
  } Rows[] = {
      {"K", N.K, "2/3"},     {"L", N.L, "11/15"}, {"A", N.A, "2/15"},
      {"B", N.B, "46/45"},   {"C", N.C, "38/45"}, {"M", N.M, "1"},
      {"N", N.N, "1"},
  };
  for (const auto &Row : Rows)
    paperRow(Row.Name, Row.Paper, R.NodeVnorm[Row.Node].str());

  header("Figure 5(b): dispensed volumes (max capacity 100 nl)");
  auto Edge = [&](NodeId Src, NodeId Dst) {
    for (EdgeId E : G.liveEdges())
      if (G.edge(E).Src == Src && G.edge(E).Dst == Dst)
        return R.Volumes.EdgeVolumeNl[E];
    return -1.0;
  };
  auto Vol = [&](double V) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f nl (~%d)", V,
                  static_cast<int>(std::llround(V)));
    return std::string(Buf);
  };
  paperRow("edge B->K", "52", Vol(Edge(N.B, N.K)));
  paperRow("edge B->L", "48", Vol(Edge(N.B, N.L)));
  paperRow("edge C->L", "24", Vol(Edge(N.C, N.L)));
  paperRow("edge A->K", "13", Vol(Edge(N.A, N.K)));
  paperRow("edge C->N", "59", Vol(Edge(N.C, N.N)));
  paperRow("node K   ", "65", Vol(R.Volumes.NodeVolumeNl[N.K]));
  std::printf("\n  feasible: %s, min dispense %.2f nl >= least count %.1f nl\n",
              R.Feasible ? "yes" : "no", R.MinDispenseNl, Spec.LeastCountNl);

  double T = medianSeconds([&] { dagSolve(G, Spec); }, 11);
  std::printf("  DAGSolve wall time on this DAG: %s\n", fmtSeconds(T).c_str());
  return 0;
}
