//===- bench_fig13_glycomics_partitions.cpp - Figure 13 reproduction -------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 13: the glycomics assay's partitioning at its three
// statically-unknown separations. Paper checks: four partitions, buffer3a
// split into two 50 nl constrained inputs, X2's Vnorm of 1/204, and
// run-time dispensing driven by the measured separation outputs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Partition.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace benchutil;

int main() {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  if (!Plan.ok()) {
    std::printf("partitioning failed: %s\n", Plan.message().c_str());
    return 1;
  }

  header("Figure 13: glycomics partition plan");
  std::printf("%s", Plan->str().c_str());

  header("Checks against the paper");
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%zu", Plan->Parts.size());
  paperRow("number of partitions", "4", Buf);

  std::string Buf3a = "none";
  for (const auto &CI : Plan->Inputs)
    if (CI.FromInputPort &&
        Plan->Graph.node(CI.Source).Name == "buffer3a") {
      std::snprintf(Buf, sizeof(Buf), "share %s -> %.0f nl",
                    CI.Share.str().c_str(),
                    CI.Share.toDouble() * Spec.MaxCapacityNl);
      Buf3a = Buf;
      break;
    }
  paperRow("buffer3a split", "50 nl each half", Buf3a);

  std::string X2 = "not found";
  for (const auto &CI : Plan->Inputs) {
    if (CI.FromInputPort)
      continue;
    if (Plan->Graph.node(CI.Source).Name == "effluent2")
      X2 = Plan->Vnorms.NodeVnorm[CI.Node].str();
  }
  paperRow("X2 Vnorm (the 1:100:1 mix input)", "1/204", X2);

  header("Run-time dispensing: X2 sensitivity (Section 4.2's concern)");
  std::vector<double> Avail(Plan->Inputs.size(), -1.0);
  int X2Ref = -1, Part3 = -1;
  for (size_t I = 0; I < Plan->Inputs.size(); ++I)
    if (!Plan->Inputs[I].FromInputPort &&
        Plan->Graph.node(Plan->Inputs[I].Source).Name == "effluent2") {
      X2Ref = static_cast<int>(I);
      Part3 = Plan->NodePartition[Plan->Inputs[I].Node];
    }
  for (double Measured : {50.0, 5.0, 0.5, 0.05}) {
    for (auto &A : Avail)
      A = -1.0;
    Avail[X2Ref] = Measured;
    // Other measured inputs: generous.
    for (size_t I = 0; I < Plan->Inputs.size(); ++I)
      if (!Plan->Inputs[I].FromInputPort && static_cast<int>(I) != X2Ref)
        Avail[I] = 50.0;
    VolumeAssignment V = dispensePartition(*Plan, Part3, Avail, Spec);
    double MinEdge = 1e18;
    for (NodeId N : Plan->Parts[Part3].Members)
      for (EdgeId E : Plan->Graph.inEdges(N))
        MinEdge = std::min(MinEdge, V.EdgeVolumeNl[E]);
    std::printf("  measured X2 = %6.2f nl -> partition min dispense "
                "%8.4f nl %s\n",
                Measured, MinEdge,
                MinEdge + 1e-9 >= Spec.LeastCountNl
                    ? "(ok)"
                    : "(underflow -> regeneration)");
  }
  return 0;
}
