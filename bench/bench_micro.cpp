//===- bench_micro.cpp - google-benchmark micro timings ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Micro-benchmarks of AquaVol's building blocks, on google-benchmark:
// DAGSolve passes, formulation construction, the simplex, the frontend,
// code generation and simulation.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Partition.h"
#include "aqua/lang/Lower.h"
#include "aqua/runtime/Simulator.h"

#include <benchmark/benchmark.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

void BM_DagSolve_Glucose(benchmark::State &State) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  for (auto _ : State)
    benchmark::DoNotOptimize(dagSolve(G, Spec));
}
BENCHMARK(BM_DagSolve_Glucose);

void BM_DagSolve_EnzymeN(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(static_cast<int>(State.range(0)));
  MachineSpec Spec;
  for (auto _ : State)
    benchmark::DoNotOptimize(dagSolve(G, Spec));
  State.SetComplexityN(G.numNodes() + G.numEdges());
}
BENCHMARK(BM_DagSolve_EnzymeN)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Complexity(benchmark::oN);

void BM_VnormBackwardPass_Enzyme8(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(8);
  for (auto _ : State) {
    DagSolveResult R;
    computeVnorms(G, DagSolveOptions{}, R);
    benchmark::DoNotOptimize(R.MaxVnorm);
  }
}
BENCHMARK(BM_VnormBackwardPass_Enzyme8);

void BM_BuildVolumeModel_Enzyme4(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  MachineSpec Spec;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildVolumeModel(G, Spec));
}
BENCHMARK(BM_BuildVolumeModel_Enzyme4);

void BM_SimplexSolve_Glucose(benchmark::State &State) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  Formulation F = buildVolumeModel(G, Spec);
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solve(F.Model));
}
BENCHMARK(BM_SimplexSolve_Glucose);

void BM_SimplexSolve_Enzyme4(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  MachineSpec Spec;
  Formulation F = buildVolumeModel(G, Spec);
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::solve(F.Model));
}
BENCHMARK(BM_SimplexSolve_Enzyme4);

void BM_Presolve_Enzyme4(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  Formulation F = buildVolumeModel(G, MachineSpec{});
  for (auto _ : State)
    benchmark::DoNotOptimize(lp::Presolved::run(F.Model));
}
BENCHMARK(BM_Presolve_Enzyme4);

void BM_Frontend_EnzymeSource(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(lang::compileAssay(assays::enzymeSource()));
}
BENCHMARK(BM_Frontend_EnzymeSource);

void BM_Codegen_Enzyme4(benchmark::State &State) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  for (auto _ : State)
    benchmark::DoNotOptimize(codegen::generateAIS(G));
}
BENCHMARK(BM_Codegen_Enzyme4);

void BM_PartitionPlan_Glycomics(benchmark::State &State) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildPartitionPlan(G, Spec));
}
BENCHMARK(BM_PartitionPlan_Glycomics);

void BM_Simulate_GlucoseNaive(benchmark::State &State) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = codegen::generateAIS(G);
  runtime::SimOptions SO;
  SO.Graph = &G;
  for (auto _ : State)
    benchmark::DoNotOptimize(runtime::simulate(*P, SO));
}
BENCHMARK(BM_Simulate_GlucoseNaive);

void BM_Rational_Arithmetic(benchmark::State &State) {
  Rational A(999, 1000), B(16, 3), C(1, 204);
  for (auto _ : State) {
    Rational R = A * B + C / B - A;
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Rational_Arithmetic);

} // namespace

BENCHMARK_MAIN();
