//===- bench_vm_fleet.cpp - Bytecode VM and fleet-simulation throughput ----------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measurements backing the aqua/vm subsystem's performance claim, plus an
// honest account of where it stands against the ROADMAP's aspirational
// >= 100x simulated-instructions/sec target:
//
//  1. Same-program engine race: the regeneration-heavy naive Enzyme assay
//     (the paper's Table 2 stress case) executed by the tree-walking
//     runtime::Simulator vs the bytecode VM, identical SimResults
//     bit-for-bit. Measured ~5-8x: the baseline is already a compiled
//     C++ tree-walker at ~300-400 ns/instruction, and the VM's
//     bit-for-bit parity contract pins every double operation (the
//     composition-row divisions cannot be reassociated), putting a
//     ~25-50 ns/instruction floor on the dispatch loop. A 100x ratio
//     would need an interpreted-language-grade baseline (the viper
//     exemplar's MicroPython context); against this repo's simulator it
//     is not reachable without breaking result equivalence.
//
//  2. Fleet-context amortized race: what one chip of an N-chip fleet
//     costs end to end. The Simulator pipeline regenerates AIS per chip
//     (per-chip metered volumes force re-codegen) and re-simulates; the
//     VM compiles once, then patches its volume table and re-runs bound
//     state. Measured ~10x full / ~20x dispatch-only.
//
//  3. Fleet throughput: a 1000-chip Glycomics fleet under the shared
//     virtual-time queue with reservoir contention, reported as chips/sec
//     and aggregate simulated instructions/sec, with the vm.* metrics
//     snapshot folded into the record and the fleet Chrome trace written
//     next to the JSON artifact.
//
// Gates (exit 1): same-program speedup >= 3x and amortized speedup >= 5x
// -- robust floors that catch a real regression (e.g. the VM degrading to
// tree-walking costs) without failing on runner noise -- and every fleet
// chip must complete. AQUAVOL_BENCH_NO_TIMING_GATE=1 downgrades the
// timing gates to reports (CI perf-smoke sets it; the committed-JSON diff
// is the regression signal there).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/obs/Trace.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/vm/Compiler.h"
#include "aqua/vm/Fleet.h"
#include "aqua/vm/VM.h"

#include <cstdlib>
#include <thread>

using namespace aqua;
using namespace aqua::ir;
using namespace benchutil;

namespace {

/// Wall seconds per iteration over \p Iters runs of \p Fn (one warmup).
double perRunSeconds(const std::function<void()> &Fn, int Iters) {
  Fn();
  WallTimer T;
  for (int I = 0; I < Iters; ++I)
    Fn();
  return T.seconds() / Iters;
}

} // namespace

int main() {
  obs::preregisterPipelineMetrics();
  JsonReporter Json("vm_fleet");
  bool Ok = true;

  AssayGraph Enzyme = assays::buildEnzymeAssay(4);
  auto P = codegen::generateAIS(Enzyme);
  runtime::SimOptions SO;
  SO.Graph = &Enzyme;

  vm::CompileOptions CO;
  CO.Spec = SO.Spec;
  CO.Graph = SO.Graph;
  auto Prog = vm::compile(*P, CO);
  if (!Prog.ok()) {
    std::fprintf(stderr, "vm compile failed: %s\n", Prog.message().c_str());
    return 1;
  }
  vm::RunOptions RO;
  RO.Seed = SO.Seed;
  vm::Interp I;
  I.bind(*Prog);

  runtime::SimResult Ref = runtime::simulate(*P, SO);
  std::uint64_t Instrs = static_cast<std::uint64_t>(Ref.InstructionsExecuted);

  // ----- 1. Same-program race on the naive Enzyme assay. The
  // relative-volume program regenerates dozens of times per run, so one
  // run executes ~50% more instructions than the program lists.
  double SameSpeedup;
  {
    const int Iters = 50;
    double InterpSec =
        perRunSeconds([&] { runtime::simulate(*P, SO); }, Iters);
    double VmSec = perRunSeconds(
        [&] {
          I.reset(RO);
          I.run();
          I.finish();
        },
        Iters * 10);

    double InterpIps = Instrs / InterpSec;
    double VmIps = Instrs / VmSec;
    SameSpeedup = InterpSec / VmSec;

    std::printf("Same program, naive Enzyme (%llu instructions/run, "
                "regeneration-heavy, %d regens):\n",
                static_cast<unsigned long long>(Instrs), Ref.Regenerations);
    std::printf("  %-26s %14s %16s\n", "engine", "sec/run", "instr/sec");
    std::printf("  %-26s %14s %16.3g\n", "runtime::Simulator",
                fmtSeconds(InterpSec).c_str(), InterpIps);
    std::printf("  %-26s %14s %16.3g\n", "vm::Interp",
                fmtSeconds(VmSec).c_str(), VmIps);
    std::printf("  speedup: %.1fx (gate: >= 3x; ROADMAP aspiration: 100x, "
                "see header)\n",
                SameSpeedup);

    Json.add("enzyme_same_program")
        .param("assay", "Enzyme")
        .param("program", "naive")
        .metric("instructions_per_run", static_cast<double>(Instrs))
        .metric("interp_sec_per_run", InterpSec)
        .metric("vm_sec_per_run", VmSec)
        .metric("interp_instr_per_sec", InterpIps)
        .metric("vm_instr_per_sec", VmIps)
        .metric("speedup", SameSpeedup);
  }

  // ----- 2. Fleet-context amortized race: per-chip cost in an N-chip
  // fleet. The Simulator path re-runs codegen per chip (per-chip metered
  // volumes); the VM patches bound state and re-runs.
  double AmortSpeedup;
  {
    const int Chips = 200;
    std::uint64_t Seed = 0;
    double BaseSec = perRunSeconds(
        [&] {
          auto PerChip = codegen::generateAIS(Enzyme);
          SO.Seed = 0x5eed + Seed++;
          runtime::simulate(*PerChip, SO);
        },
        Chips);
    Seed = 0;
    double VmSec = perRunSeconds(
        [&] {
          RO.Seed = 0x5eed + Seed++;
          I.reset(RO);
          I.run();
          I.finish();
        },
        Chips * 10);
    Seed = 0;
    double VmDispatchSec = perRunSeconds(
        [&] {
          RO.Seed = 0x5eed + Seed++;
          I.reset(RO);
          I.run();
        },
        Chips * 10);
    AmortSpeedup = BaseSec / VmSec;

    std::printf("\nFleet-context per-chip cost (codegen+simulate vs "
                "patch+run):\n");
    std::printf("  %-26s %14s\n", "codegen + Simulator",
                fmtSeconds(BaseSec).c_str());
    std::printf("  %-26s %14s  (%.1fx)\n", "vm patch+run+finish",
                fmtSeconds(VmSec).c_str(), AmortSpeedup);
    std::printf("  %-26s %14s  (%.1fx)\n", "vm dispatch only",
                fmtSeconds(VmDispatchSec).c_str(), BaseSec / VmDispatchSec);

    Json.add("enzyme_fleet_amortized")
        .param("assay", "Enzyme")
        .metric("baseline_sec_per_chip", BaseSec)
        .metric("vm_sec_per_chip", VmSec)
        .metric("vm_dispatch_sec_per_chip", VmDispatchSec)
        .metric("speedup", AmortSpeedup)
        .metric("dispatch_speedup", BaseSec / VmDispatchSec);
  }

  if (SameSpeedup < 3.0 || AmortSpeedup < 5.0) {
    std::printf("  ** speedup below gate (same >= 3x, amortized >= 5x)%s\n",
                noTimingGate()
                    ? " (reported only: AQUAVOL_BENCH_NO_TIMING_GATE=1)"
                    : "");
    if (!noTimingGate())
      Ok = false;
  }

  // ----- 3. 1000-chip Glycomics fleet with shared reservoirs.
  {
    AssayGraph G = assays::buildGlycomicsAssay();
    auto Image = vm::compileFleetImage(G, core::MachineSpec{});
    if (!Image.ok()) {
      std::fprintf(stderr, "fleet image failed: %s\n",
                   Image.message().c_str());
      return 1;
    }

    obs::Tracer::setEnabled(true);
    vm::FleetOptions FO;
    FO.NumChips = fullRun() ? 10000 : 1000;
    FO.Threads = std::max(2u, std::thread::hardware_concurrency());
    FO.SharedReservoirs = true;
    FO.ReservoirCapacityNl = 5000.0;
    FO.ReservoirRefillNlPerSec = 50.0;

    MetricsDelta Delta;
    vm::FleetResult FR;
    double Sec = onceSeconds([&] { FR = runFleet(*Image, FO); });
    obs::Tracer::setEnabled(false);

    double ChipsPerSec = FR.ChipsCompleted / Sec;
    double Ips = static_cast<double>(FR.InstructionsExecuted) / Sec;
    std::printf("\nFleet: %d-chip Glycomics, %d threads, shared "
                "reservoirs:\n",
                FO.NumChips, FO.Threads);
    std::printf("  completed %d, failed %d in %s wall "
                "(%.0f chips/s, %.3g instr/s)\n",
                FR.ChipsCompleted, FR.ChipsFailed, fmtSeconds(Sec).c_str(),
                ChipsPerSec, Ips);
    std::printf("  makespan %s virtual, reservoir wait %s, "
                "%d online re-manages, %d reruns\n",
                fmtSeconds(FR.MakespanSec).c_str(),
                fmtSeconds(FR.ReservoirWaitSec).c_str(), FR.OnlineRemanages,
                FR.PartitionReruns);

    BenchRecord &Rec = Json.add("glycomics_fleet");
    Rec.param("assay", "Glycomics")
        .metric("chips", FO.NumChips)
        .metric("threads", FO.Threads)
        .metric("chips_completed", FR.ChipsCompleted)
        .metric("chips_failed", FR.ChipsFailed)
        .metric("wall_sec", Sec)
        .metric("chips_per_sec", ChipsPerSec)
        .metric("instructions", static_cast<double>(FR.InstructionsExecuted))
        .metric("instr_per_sec", Ips)
        .metric("makespan_sec", FR.MakespanSec)
        .metric("reservoir_wait_sec", FR.ReservoirWaitSec)
        .metric("online_remanages", FR.OnlineRemanages);
    Delta.addTo(Rec, "m_");

    // The fleet track (obs::PidFleet rows) next to the JSON artifact.
    std::string Dir = ".";
    if (const char *Env = std::getenv("AQUAVOL_BENCH_JSON_DIR"))
      if (Env[0] != '\0')
        Dir = Env;
    obs::Tracer::global().writeChromeTrace(Dir + "/BENCH_vm_fleet_trace.json");

    if (FR.ChipsFailed != 0) {
      std::printf("  ** %d chips failed\n", FR.ChipsFailed);
      Ok = false;
    }
  }

  return Ok ? 0 : 1;
}
