//===- aquacheck.cpp - Differential-testing harness driver ----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquacheck: generate random valid assay programs and cross-check every
// layer of the volume-management pipeline against the others (see
// aqua/check/Oracles.h for the oracle lattice). Failures are shrunk to a
// minimal repro and written to aqua-check-repro-<caseseed>.assay.
//
//   aquacheck [--seed N] [--cases N] [--difficulty 1..5]
//             [--oracle name,name,...] [--no-shrink] [--no-repro]
//             [--json] [--out FILE] [--repro-dir DIR]
//             [--capacity NL] [--least-count NL]
//             [--trace-out FILE] [--metrics-out FILE]
//   aquacheck --replay FILE.assay [--yield N/D] [--oracle ...]
//
// Exit status: 0 when every oracle passed, 1 on oracle failures, 2 on
// usage errors.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Harness.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace aqua;
using namespace aqua::check;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--cases N] [--difficulty 1..5]\n"
      "          [--oracle name,...] [--no-shrink] [--no-repro] [--json]\n"
      "          [--out FILE] [--repro-dir DIR] [--capacity NL]\n"
      "          [--least-count NL] [--trace-out FILE] [--metrics-out FILE]\n"
      "       %s --replay FILE.assay [--yield N/D] [--oracle name,...]\n"
      "oracles: frontend graph solvers assignment rounding simulation\n"
      "         metamorphic cache engines presolve vm store cuts\n",
      Argv0, Argv0);
  return 2;
}

void logLine(const std::string &Line) {
  std::fprintf(stderr, "aquacheck: %s\n", Line.c_str());
}

/// Matches `--flag VALUE` and `--flag=VALUE`; returns the value or null.
const char *flagValue(const char *Flag, int &I, int Argc, char **Argv) {
  std::size_t N = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, N))
    return nullptr;
  if (Argv[I][N] == '=')
    return Argv[I] + N + 1;
  if (Argv[I][N] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Flushes --trace-out / --metrics-out on every exit path (the exporters
/// warn on I/O failure themselves).
struct ObsExports {
  std::string TraceOut, MetricsOut;

  ~ObsExports() {
    if (!TraceOut.empty())
      obs::Tracer::global().writeChromeTrace(TraceOut);
    if (!MetricsOut.empty())
      obs::metrics().writeJsonFile(MetricsOut);
  }
};

} // namespace

int main(int argc, char **argv) {
  HarnessOptions Opts;
  Opts.Cases = 100;
  const char *ReplayPath = nullptr;
  const char *OutPath = nullptr;
  bool Json = false;
  ObsExports Obs;

  for (int I = 1; I < argc; ++I) {
    const char *V;
    if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Opts.Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (!std::strcmp(argv[I], "--cases") && I + 1 < argc)
      Opts.Cases = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--difficulty") && I + 1 < argc)
      Opts.Gen.Difficulty = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--oracle") && I + 1 < argc) {
      auto Mask = parseOracleFilter(argv[++I]);
      if (!Mask.ok()) {
        std::fprintf(stderr, "aquacheck: %s\n", Mask.message().c_str());
        return 2;
      }
      Opts.Check.Oracles = *Mask;
    } else if (!std::strcmp(argv[I], "--no-shrink"))
      Opts.Shrink = false;
    else if (!std::strcmp(argv[I], "--no-repro"))
      Opts.ReproDir.clear();
    else if (!std::strcmp(argv[I], "--repro-dir") && I + 1 < argc)
      Opts.ReproDir = argv[++I];
    else if (!std::strcmp(argv[I], "--json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--out") && I + 1 < argc)
      OutPath = argv[++I];
    else if (!std::strcmp(argv[I], "--capacity") && I + 1 < argc)
      Opts.Check.Spec.MaxCapacityNl = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--least-count") && I + 1 < argc)
      Opts.Check.Spec.LeastCountNl = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--replay") && I + 1 < argc)
      ReplayPath = argv[++I];
    else if (!std::strcmp(argv[I], "--yield") && I + 1 < argc) {
      long long N = 1, D = 2;
      if (std::sscanf(argv[++I], "%lld/%lld", &N, &D) != 2 || D <= 0) {
        std::fprintf(stderr, "aquacheck: bad --yield (want N/D)\n");
        return 2;
      }
      Opts.Check.FixedYield =
          static_cast<double>(N) / static_cast<double>(D);
    } else if ((V = flagValue("--trace-out", I, argc, argv)))
      Obs.TraceOut = V;
    else if ((V = flagValue("--metrics-out", I, argc, argv)))
      Obs.MetricsOut = V;
    else
      return usage(argv[0]);
  }

  if (!Obs.TraceOut.empty())
    obs::Tracer::setEnabled(true);
  if (!Obs.MetricsOut.empty())
    obs::preregisterPipelineMetrics();

  if (ReplayPath) {
    std::ifstream File(ReplayPath);
    if (!File) {
      std::fprintf(stderr, "aquacheck: cannot open '%s'\n", ReplayPath);
      return 2;
    }
    std::stringstream Buffer;
    Buffer << File.rdbuf();
    CaseReport R = checkSource(Buffer.str(), Opts.Check);
    if (R.ok()) {
      std::printf("replay: all enabled oracles passed\n");
      return 0;
    }
    std::printf("replay: %d oracle failure(s)\n%s",
                static_cast<int>(R.Failures.size()), R.str().c_str());
    return 1;
  }

  if (Opts.Cases <= 0 || Opts.Gen.Difficulty < 1 || Opts.Gen.Difficulty > 5)
    return usage(argv[0]);

  HarnessResult Result = runHarness(Opts, logLine);

  std::string Report = Json ? Result.json() + "\n" : Result.summary();
  if (OutPath) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "aquacheck: cannot write '%s'\n", OutPath);
      return 2;
    }
    Out << Report;
  } else {
    std::printf("%s", Report.c_str());
  }
  return Result.ok() ? 0 : 1;
}
