//===- aquad.cpp - The AquaVol assay-compilation service driver ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquad: batch-compile a manifest of assays through the concurrent
// compilation service and report throughput, cache effectiveness, and
// latency percentiles.
//
//   aquad MANIFEST [--threads N] [--no-cache] [--max-entries N]
//                  [--capacity NL] [--least-count NL] [--simulate]
//                  [--fleet N] [--trace-out FILE] [--metrics-out FILE]
//
// --simulate runs each unique successful artifact once through the
// AquaCore simulator (regeneration on, fixed separation yield).
// --fleet N runs each unique assay as an N-chip aqua/vm fleet (shared
// virtual-time queue, shared reservoirs, Section 3.5 online
// re-management) on the service's worker-thread count.
// --trace-out enables span tracing and writes a Chrome trace-event JSON
// (chrome://tracing, Perfetto); --metrics-out dumps the metrics registry.
//
// The manifest has one workload per line: a repeat count followed by an
// assay source path or a builtin name (`builtin:glucose`,
// `builtin:glycomics`, `builtin:enzyme`, `builtin:bradford`); `#` starts
// a comment. Example:
//
//   # plate after plate of the same panels
//   100 builtin:glucose
//   40  assays/my_panel.assay
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/lang/Lower.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/service/CompileService.h"
#include "aqua/vm/Fleet.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace aqua;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s MANIFEST [--threads N] [--no-cache]"
               " [--max-entries N] [--capacity NL] [--least-count NL]"
               " [--simulate] [--fleet N] [--trace-out FILE]"
               " [--metrics-out FILE]\n",
               Argv0);
  return 2;
}

/// Matches `--flag VALUE` and `--flag=VALUE`; returns the value or null.
const char *flagValue(const char *Flag, int &I, int Argc, char **Argv) {
  std::size_t N = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, N))
    return nullptr;
  if (Argv[I][N] == '=')
    return Argv[I] + N + 1;
  if (Argv[I][N] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Resolves a manifest entry to assay source text.
bool resolveSource(const std::string &Spec, std::string &Source) {
  if (Spec == "builtin:glucose") {
    Source = assays::glucoseSource();
    return true;
  }
  if (Spec == "builtin:glycomics") {
    Source = assays::glycomicsSource();
    return true;
  }
  if (Spec == "builtin:enzyme") {
    Source = assays::enzymeSource();
    return true;
  }
  if (Spec == "builtin:bradford") {
    Source = assays::bradfordSource();
    return true;
  }
  std::ifstream File(Spec);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Source = Buffer.str();
  return true;
}

int parseInt(const char *Flag, const char *Text) {
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End || V < 0) {
    std::fprintf(stderr, "aquad: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    std::exit(2);
  }
  return static_cast<int>(V);
}

double parseNl(const char *Flag, const char *Text) {
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End || !(V > 0)) {
    std::fprintf(stderr, "aquad: %s expects a positive volume in nl, got '%s'\n",
                 Flag, Text);
    std::exit(2);
  }
  return V;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::size_t I = static_cast<std::size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  service::ServiceOptions Options;
  Options.Threads = 4;
  core::MachineSpec Spec;
  bool Simulate = false;
  int FleetChips = 0;
  std::string TraceOut, MetricsOut;

  for (int I = 1; I < argc; ++I) {
    const char *V;
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Options.Threads = parseInt("--threads", argv[++I]);
    else if (!std::strcmp(argv[I], "--no-cache"))
      Options.EnableCache = false;
    else if (!std::strcmp(argv[I], "--simulate"))
      Simulate = true;
    else if ((V = flagValue("--fleet", I, argc, argv)))
      FleetChips = parseInt("--fleet", V);
    else if (!std::strcmp(argv[I], "--max-entries") && I + 1 < argc)
      Options.Cache.MaxEntries =
          static_cast<std::size_t>(parseInt("--max-entries", argv[++I]));
    else if (!std::strcmp(argv[I], "--capacity") && I + 1 < argc)
      Spec.MaxCapacityNl = parseNl("--capacity", argv[++I]);
    else if (!std::strcmp(argv[I], "--least-count") && I + 1 < argc)
      Spec.LeastCountNl = parseNl("--least-count", argv[++I]);
    else if ((V = flagValue("--trace-out", I, argc, argv)))
      TraceOut = V;
    else if ((V = flagValue("--metrics-out", I, argc, argv)))
      MetricsOut = V;
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else
      Path = argv[I];
  }
  if (!Path)
    return usage(argv[0]);

  if (!TraceOut.empty())
    obs::Tracer::setEnabled(true);
  if (!MetricsOut.empty())
    obs::preregisterPipelineMetrics();

  std::ifstream Manifest(Path);
  if (!Manifest) {
    std::fprintf(stderr, "aquad: cannot open manifest '%s'\n", Path);
    return 1;
  }

  std::vector<service::CompileRequest> Batch;
  /// Unique manifest entries in first-appearance order, for --fleet.
  std::vector<std::pair<std::string, std::string>> UniqueAssays;
  std::set<std::string> SeenSpecs;
  std::string Line;
  int LineNo = 0;
  while (std::getline(Manifest, Line)) {
    ++LineNo;
    std::size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue; // Blank or comment.
    std::istringstream In(Line);
    long Repeats = 0;
    std::string What;
    if (!(In >> Repeats >> What)) {
      std::fprintf(stderr, "aquad: %s:%d: expected '<count> <assay>'\n", Path,
                   LineNo);
      return 1;
    }
    if (What.empty() || Repeats <= 0) {
      std::fprintf(stderr, "aquad: %s:%d: expected '<count> <assay>'\n", Path,
                   LineNo);
      return 1;
    }
    std::string Source;
    if (!resolveSource(What, Source)) {
      std::fprintf(stderr, "aquad: %s:%d: cannot resolve '%s'\n", Path, LineNo,
                   What.c_str());
      return 1;
    }
    if (SeenSpecs.insert(What).second)
      UniqueAssays.emplace_back(What, Source);
    for (long R = 0; R < Repeats; ++R) {
      service::CompileRequest Req;
      Req.Name = What;
      Req.Source = Source;
      Req.Spec = Spec;
      Batch.push_back(std::move(Req));
    }
  }
  if (Batch.empty()) {
    std::fprintf(stderr, "aquad: manifest is empty\n");
    return 1;
  }

  std::size_t Submitted = Batch.size();
  service::CompileService Service(Options);
  WallTimer Wall;
  std::vector<service::CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  double WallSec = Wall.seconds();

  std::size_t Failures = 0;
  std::vector<double> Latencies;
  Latencies.reserve(Responses.size());
  for (const service::CompileResponse &R : Responses) {
    Latencies.push_back(R.LatencySec);
    if (!R.Ok) {
      if (Failures < 5)
        std::fprintf(stderr, "aquad: %s: %s\n", R.Name.c_str(),
                     R.Error.c_str());
      ++Failures;
    }
  }
  std::sort(Latencies.begin(), Latencies.end());

  service::ServiceStats Stats = Service.stats();
  std::printf("aquad: %zu requests, %zu failed, %d threads, cache %s\n",
              Submitted, Failures, std::max(1, Options.Threads),
              Options.EnableCache ? "on" : "off");
  std::printf("  wall time     %.3f s\n", WallSec);
  std::printf("  throughput    %.1f assays/s\n",
              WallSec > 0 ? Submitted / WallSec : 0.0);
  std::printf("  cache         %.1f%% hit rate, %llu joins, %llu evictions\n",
              Stats.Cache.hitRate() * 100.0,
              static_cast<unsigned long long>(Stats.SingleFlightJoins),
              static_cast<unsigned long long>(Stats.Cache.Evictions));
  std::printf("  latency       p50 %.3f ms, p95 %.3f ms\n",
              percentile(Latencies, 0.50) * 1e3,
              percentile(Latencies, 0.95) * 1e3);
  std::printf("  %s\n", Stats.str().c_str());

  if (Simulate) {
    // One wet run per *unique* artifact: repeats share the artifact (that
    // is the point of the cache), so simulating each fingerprint once
    // reports the workload's distinct wet-path behaviours.
    std::set<std::string> Seen;
    std::size_t SimRuns = 0, SimFailures = 0;
    int Regens = 0;
    double WetSec = 0.0, DeliveredNl = 0.0, WasteNl = 0.0;
    for (const service::CompileResponse &R : Responses) {
      if (!R.Ok || !R.Artifact || !Seen.insert(R.Key.str()).second)
        continue;
      runtime::SimOptions SO;
      SO.Spec = Spec;
      SO.FixedSeparationYield = 0.5;
      if (R.Artifact->Managed)
        SO.Graph = &R.Artifact->VM.Graph;
      runtime::SimResult Sim = runtime::simulate(R.Artifact->Program, SO);
      ++SimRuns;
      if (!Sim.Completed) {
        if (SimFailures < 5)
          std::fprintf(stderr, "aquad: simulate %s: %s\n", R.Name.c_str(),
                       Sim.Error.c_str());
        ++SimFailures;
      }
      Regens += Sim.Regenerations;
      WetSec += Sim.FluidSeconds;
      DeliveredNl += Sim.DeliveredNl;
      WasteNl += Sim.WasteNl;
    }
    std::printf("  simulate      %zu unique artifacts (%zu failed), "
                "%d regenerations, %.1f s wet time, %.1f nl delivered, "
                "%.1f nl waste\n",
                SimRuns, SimFailures, Regens, WetSec, DeliveredNl, WasteNl);
    Failures += SimFailures;
  }

  if (FleetChips > 0) {
    // One fleet per unique manifest assay: compile the fleet image once
    // (partition plan + per-partition bytecode templates), then run N
    // chip instances under the shared virtual-time queue with shared
    // reservoirs and Section 3.5 online re-management enabled.
    vm::FleetOptions FO;
    FO.NumChips = FleetChips;
    FO.Threads = std::max(1, Options.Threads);
    FO.SharedReservoirs = true;
    std::printf("  fleet         %d chips x %zu assays, %d threads\n",
                FleetChips, UniqueAssays.size(), FO.Threads);
    for (const auto &[What, Source] : UniqueAssays) {
      auto Lowered = lang::compileAssay(Source);
      if (!Lowered.ok()) {
        std::fprintf(stderr, "aquad: fleet %s: %s\n", What.c_str(),
                     Lowered.message().c_str());
        ++Failures;
        continue;
      }
      auto Image = vm::compileFleetImage(Lowered->Graph, Spec);
      if (!Image.ok()) {
        std::fprintf(stderr, "aquad: fleet %s: %s\n", What.c_str(),
                     Image.message().c_str());
        ++Failures;
        continue;
      }
      vm::FleetResult FR = vm::runFleet(*Image, FO);
      std::printf("    %-20s %d/%d chips, makespan %.1f s, "
                  "%llu instrs, %llu regens, %d re-manages, %d reruns\n",
                  What.c_str(), FR.ChipsCompleted, FO.NumChips, FR.MakespanSec,
                  static_cast<unsigned long long>(FR.InstructionsExecuted),
                  static_cast<unsigned long long>(FR.Regenerations),
                  FR.OnlineRemanages, FR.PartitionReruns);
      if (FR.ChipsFailed != 0) {
        const char *Why = "";
        for (const vm::ChipResult &C : FR.Chips)
          if (!C.Completed && !C.Error.empty()) {
            Why = C.Error.c_str();
            break;
          }
        std::fprintf(stderr, "aquad: fleet %s: %d chips failed (%s)\n",
                     What.c_str(), FR.ChipsFailed, Why);
        ++Failures;
      }
    }
  }

  if (!TraceOut.empty() && !obs::Tracer::global().writeChromeTrace(TraceOut))
    return 1;
  if (!MetricsOut.empty() && !obs::metrics().writeJsonFile(MetricsOut))
    return 1;
  return Failures ? 1 : 0;
}
