//===- aquad.cpp - The AquaVol assay-compilation service driver ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquad: batch-compile a manifest of assays through the concurrent
// compilation service and report throughput, cache effectiveness, and
// latency percentiles.
//
//   aquad MANIFEST [--threads N] [--no-cache] [--max-entries N]
//                  [--capacity NL] [--least-count NL] [--simulate]
//                  [--fleet N] [--trace-out FILE] [--metrics-out FILE]
//                  [--store DIR] [--warm MANIFEST] [--workers N]
//                  [--deadline-ms N] [--queue-budget N]
//                  [--telemetry DIR] [--flight-out FILE]
//
// --store attaches a persistent solve store at DIR as the service's
// write-through L2: a restarted aquad re-serves prior solves from disk
// (zero LP cold solves on a warm store), and several aquad processes
// pointed at one DIR share each other's work.
// --warm pre-compiles the unique assays of MANIFEST (untimed) before the
// main run, priming the cache and the store.
// --workers N forks N worker processes that each run the whole manifest
// against the shared --store directory.
// --deadline-ms gives every request an absolute deadline N ms after
// submit; requests that expire while queued are shed, not compiled.
// --queue-budget bounds the service queue; normal-priority submits past
// the budget are shed at admission.
// --simulate runs each unique successful artifact once through the
// AquaCore simulator (regeneration on, fixed separation yield).
// --fleet N runs each unique assay as an N-chip aqua/vm fleet (shared
// virtual-time queue, shared reservoirs, Section 3.5 online
// re-management) on the service's worker-thread count.
// --trace-out enables span tracing and writes a Chrome trace-event JSON
// (chrome://tracing, Perfetto); --metrics-out dumps the metrics registry.
// --telemetry DIR starts the live snapshot writer: the metrics registry is
// serialized to DIR/metrics.snap-<pid>.json twice a second (atomic
// temp+rename), which is what `aquatop DIR` tails.
// --flight-out dumps the per-request flight recorder (the last 256
// request digests) as JSON at exit.
//
// Exporters flush on *every* exit route: SIGINT/SIGTERM are handled by a
// dedicated signal thread that writes the trace, metrics, flight record,
// and trace shard before exiting, so a Ctrl-C'd daemon still yields its
// observability artifacts.
//
// With AQUA_TRACE_DIR set, every aquad process (parent and --workers
// children) additionally writes a per-process trace shard there;
// `aquatrace merge` stitches them into one timeline. In --workers mode
// the parent emits a dispatch flow ('s') per (worker, slot) under
// deterministic trace ids that the children re-derive and close ('f'), so
// the merged trace draws request arcs crossing process boundaries.
//
// The manifest has one workload per line: a repeat count followed by an
// assay source path or a builtin name (`builtin:glucose`,
// `builtin:glycomics`, `builtin:enzyme`, `builtin:bradford`); `#` starts
// a comment. Example:
//
//   # plate after plate of the same panels
//   100 builtin:glucose
//   40  assays/my_panel.assay
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/lang/Lower.h"
#include "aqua/obs/FlightRecorder.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Snapshot.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/service/CompileService.h"
#include "aqua/support/StringUtils.h"
#include "aqua/vm/Fleet.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <pthread.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace aqua;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s MANIFEST [--threads N] [--no-cache]"
               " [--max-entries N] [--capacity NL] [--least-count NL]"
               " [--simulate] [--fleet N] [--trace-out FILE]"
               " [--metrics-out FILE] [--store DIR] [--warm MANIFEST]"
               " [--workers N] [--deadline-ms N] [--queue-budget N]"
               " [--telemetry DIR] [--flight-out FILE]\n",
               Argv0);
  return 2;
}

/// Exporter destinations, captured once so every exit route (normal
/// return, SIGINT, SIGTERM) flushes the same set.
struct ShutdownOutputs {
  std::string TraceOut, MetricsOut, FlightOut, TelemetryDir;
};
ShutdownOutputs Outputs;
std::atomic<bool> Flushed{false};

/// Writes every configured exporter exactly once; later calls no-op.
/// Returns false when any write failed.
bool flushOutputsOnce() {
  if (Flushed.exchange(true))
    return true;
  bool Ok = true;
  if (!Outputs.TraceOut.empty())
    Ok = obs::Tracer::global().writeChromeTrace(Outputs.TraceOut) && Ok;
  if (!Outputs.MetricsOut.empty())
    Ok = obs::metrics().writeJsonFile(Outputs.MetricsOut) && Ok;
  if (!Outputs.FlightOut.empty())
    Ok = obs::FlightRecorder::global().writeJsonFile(Outputs.FlightOut) && Ok;
  if (!Outputs.TelemetryDir.empty())
    Ok = obs::writeMetricsSnapshot(Outputs.TelemetryDir, 0) && Ok;
  (void)obs::flushTraceShard();
  return Ok;
}

/// Signal-aware shutdown: SIGINT/SIGTERM are blocked in every thread (the
/// mask is installed before any thread exists and inherited by all) and
/// consumed by one dedicated sigwait thread, which flushes the exporters
/// and exits with the conventional 128+sig status. `_exit` skips atexit,
/// so the flush covers the trace shard explicitly.
void installSignalFlush() {
  static sigset_t SigSet;
  sigemptyset(&SigSet);
  sigaddset(&SigSet, SIGINT);
  sigaddset(&SigSet, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &SigSet, nullptr);
  std::thread([] {
    int Sig = 0;
    if (sigwait(&SigSet, &Sig) != 0)
      return;
    (void)flushOutputsOnce();
    _exit(128 + Sig);
  }).detach();
}

/// Flow arcs emitted per worker are capped: a manifest can hold tens of
/// thousands of repeats and the trace ring holds 64Ki events total.
constexpr std::size_t DispatchFlowCap = 1024;

/// Matches `--flag VALUE` and `--flag=VALUE`; returns the value or null.
const char *flagValue(const char *Flag, int &I, int Argc, char **Argv) {
  std::size_t N = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, N))
    return nullptr;
  if (Argv[I][N] == '=')
    return Argv[I] + N + 1;
  if (Argv[I][N] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Resolves a manifest entry to assay source text.
bool resolveSource(const std::string &Spec, std::string &Source) {
  if (Spec == "builtin:glucose") {
    Source = assays::glucoseSource();
    return true;
  }
  if (Spec == "builtin:glycomics") {
    Source = assays::glycomicsSource();
    return true;
  }
  if (Spec == "builtin:enzyme") {
    Source = assays::enzymeSource();
    return true;
  }
  if (Spec == "builtin:bradford") {
    Source = assays::bradfordSource();
    return true;
  }
  std::ifstream File(Spec);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Source = Buffer.str();
  return true;
}

int parseInt(const char *Flag, const char *Text) {
  char *End = nullptr;
  long V = std::strtol(Text, &End, 10);
  if (End == Text || *End || V < 0) {
    std::fprintf(stderr, "aquad: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    std::exit(2);
  }
  return static_cast<int>(V);
}

double parseNl(const char *Flag, const char *Text) {
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End || !(V > 0)) {
    std::fprintf(stderr, "aquad: %s expects a positive volume in nl, got '%s'\n",
                 Flag, Text);
    std::exit(2);
  }
  return V;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::size_t I = static_cast<std::size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// Parses a manifest into one request per repeat. \p UniqueAssays, when
/// non-null, collects unique entries in first-appearance order.
bool loadManifest(const char *Path, const core::MachineSpec &Spec,
                  std::vector<service::CompileRequest> &Batch,
                  std::vector<std::pair<std::string, std::string>> *Unique) {
  std::ifstream Manifest(Path);
  if (!Manifest) {
    std::fprintf(stderr, "aquad: cannot open manifest '%s'\n", Path);
    return false;
  }
  std::set<std::string> SeenSpecs;
  std::string Line;
  int LineNo = 0;
  while (std::getline(Manifest, Line)) {
    ++LineNo;
    std::size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos || Line[First] == '#')
      continue; // Blank or comment.
    std::istringstream In(Line);
    long Repeats = 0;
    std::string What;
    if (!(In >> Repeats >> What) || What.empty() || Repeats <= 0) {
      std::fprintf(stderr, "aquad: %s:%d: expected '<count> <assay>'\n", Path,
                   LineNo);
      return false;
    }
    std::string Source;
    if (!resolveSource(What, Source)) {
      std::fprintf(stderr, "aquad: %s:%d: cannot resolve '%s'\n", Path, LineNo,
                   What.c_str());
      return false;
    }
    if (SeenSpecs.insert(What).second && Unique)
      Unique->emplace_back(What, Source);
    for (long R = 0; R < Repeats; ++R) {
      service::CompileRequest Req;
      Req.Name = What;
      Req.Source = Source;
      Req.Spec = Spec;
      Batch.push_back(std::move(Req));
    }
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  service::ServiceOptions Options;
  Options.Threads = 4;
  core::MachineSpec Spec;
  bool Simulate = false;
  int FleetChips = 0;
  int WorkerProcs = 0;
  int DeadlineMs = 0;
  std::string TraceOut, MetricsOut, WarmPath, TelemetryDir, FlightOut;

  for (int I = 1; I < argc; ++I) {
    const char *V;
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Options.Threads = parseInt("--threads", argv[++I]);
    else if (!std::strcmp(argv[I], "--no-cache"))
      Options.EnableCache = false;
    else if (!std::strcmp(argv[I], "--simulate"))
      Simulate = true;
    else if ((V = flagValue("--fleet", I, argc, argv)))
      FleetChips = parseInt("--fleet", V);
    else if (!std::strcmp(argv[I], "--max-entries") && I + 1 < argc)
      Options.Cache.MaxEntries =
          static_cast<std::size_t>(parseInt("--max-entries", argv[++I]));
    else if (!std::strcmp(argv[I], "--capacity") && I + 1 < argc)
      Spec.MaxCapacityNl = parseNl("--capacity", argv[++I]);
    else if (!std::strcmp(argv[I], "--least-count") && I + 1 < argc)
      Spec.LeastCountNl = parseNl("--least-count", argv[++I]);
    else if ((V = flagValue("--trace-out", I, argc, argv)))
      TraceOut = V;
    else if ((V = flagValue("--metrics-out", I, argc, argv)))
      MetricsOut = V;
    else if ((V = flagValue("--store", I, argc, argv)))
      Options.StoreDir = V;
    else if ((V = flagValue("--warm", I, argc, argv)))
      WarmPath = V;
    else if ((V = flagValue("--workers", I, argc, argv)))
      WorkerProcs = parseInt("--workers", V);
    else if ((V = flagValue("--deadline-ms", I, argc, argv)))
      DeadlineMs = parseInt("--deadline-ms", V);
    else if ((V = flagValue("--queue-budget", I, argc, argv)))
      Options.MaxQueueDepth =
          static_cast<std::size_t>(parseInt("--queue-budget", V));
    else if ((V = flagValue("--telemetry", I, argc, argv)))
      TelemetryDir = V;
    else if ((V = flagValue("--flight-out", I, argc, argv)))
      FlightOut = V;
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else
      Path = argv[I];
  }
  if (!Path)
    return usage(argv[0]);
  if (WorkerProcs > 0 && Options.StoreDir.empty()) {
    std::fprintf(stderr, "aquad: --workers requires --store\n");
    return 2;
  }

  // Exporter destinations are captured before the signal-flush thread
  // exists so every exit route sees them, and the tracer is enabled before
  // the fork so the parent's dispatch spans are recorded.
  Outputs.TraceOut = TraceOut;
  Outputs.MetricsOut = MetricsOut;
  Outputs.FlightOut = FlightOut;
  Outputs.TelemetryDir = TelemetryDir;
  if (!TraceOut.empty())
    obs::Tracer::setEnabled(true);
  if (!MetricsOut.empty() || !TelemetryDir.empty())
    obs::preregisterPipelineMetrics();

  // Shard tracing and the signal-flush thread come up before any other
  // thread (or fork) exists, so every process in the tree inherits the
  // blocked SIGINT/SIGTERM mask and the shard atexit registration.
  obs::initProcessTracing();
  installSignalFlush();

  // Multi-process mode: fork the workers *before* any threads exist; each
  // child runs the whole manifest as an independent aquad sharing the
  // store directory, and the parent just reaps them. The dispatch seed is
  // drawn pre-fork so parent and children derive identical per-(worker,
  // slot) trace ids without any IPC.
  int WorkerIndex = -1;
  std::uint64_t DispatchSeed = 0;
  if (WorkerProcs > 1) {
    DispatchSeed = obs::newTraceId();
    std::vector<pid_t> Children;
    for (int W = 0; W < WorkerProcs; ++W) {
      pid_t Pid = fork();
      if (Pid < 0) {
        std::perror("aquad: fork");
        return 1;
      }
      if (Pid == 0) {
        // Children fall through into single-process mode (and must not
        // reap the siblings they inherited in Children). The inherited
        // trace ring would duplicate the parent's pre-fork events into
        // this child's shard; drop it. The sigwait thread did not survive
        // the fork -- reinstall it.
        Children.clear();
        WorkerIndex = W;
        obs::Tracer::global().clear();
        installSignalFlush();
        // Worker telemetry travels via the shard dir and per-pid
        // snapshots; single-file exporters get a per-worker suffix so
        // siblings don't clobber one another, and the merged trace is the
        // parent's job.
        Outputs.TraceOut.clear();
        if (!Outputs.MetricsOut.empty())
          Outputs.MetricsOut += format(".worker%d", W);
        if (!Outputs.FlightOut.empty())
          Outputs.FlightOut += format(".worker%d", W);
        break;
      }
      Children.push_back(Pid);
    }
    if (!Children.empty()) {
      // Parent: emit one dispatch span + flow 's' per (worker, slot) --
      // each worker's slot I request will close the arc from its own
      // process, drawing "queued in parent, solved in worker" across pid
      // tracks once the shards are merged.
      if (obs::Tracer::enabled()) {
        std::vector<service::CompileRequest> Probe;
        std::size_t Slots = 0;
        if (loadManifest(Path, Spec, Probe, nullptr))
          Slots = std::min(Probe.size(), DispatchFlowCap);
        for (int W = 0; W < static_cast<int>(Children.size()); ++W) {
          for (std::size_t S = 0; S < Slots; ++S) {
            obs::SpanGuard Span("aquad.dispatch", "service");
            Span.arg("worker", W);
            Span.arg("slot", static_cast<std::uint64_t>(S));
            obs::traceFlowBegin("aquad.dispatch",
                                obs::dispatchFlowId(DispatchSeed, W, S));
          }
        }
      }
      int Failures = 0;
      for (pid_t Pid : Children) {
        int WStatus = 0;
        if (waitpid(Pid, &WStatus, 0) < 0 || !WIFEXITED(WStatus) ||
            WEXITSTATUS(WStatus) != 0)
          ++Failures;
      }
      std::printf("aquad: %d worker processes, %d failed, store %s\n",
                  static_cast<int>(Children.size()), Failures,
                  Options.StoreDir.c_str());
      bool FlushOk = flushOutputsOnce();
      return (Failures || !FlushOk) ? 1 : 0;
    }
  }

  std::vector<service::CompileRequest> Batch;
  /// Unique manifest entries in first-appearance order, for --fleet.
  std::vector<std::pair<std::string, std::string>> UniqueAssays;
  if (!loadManifest(Path, Spec, Batch, &UniqueAssays))
    return 1;
  if (Batch.empty()) {
    std::fprintf(stderr, "aquad: manifest is empty\n");
    return 1;
  }

  // --workers child: re-derive the parent's per-slot dispatch ids. The
  // request runs under obs::mixId(flow id) so its own submit/dequeue flow stays
  // distinct from the cross-process dispatch arc, which is closed here.
  if (WorkerIndex >= 0 && obs::Tracer::enabled()) {
    obs::SpanGuard Span("aquad.receive", "service");
    Span.arg("worker", WorkerIndex);
    for (std::size_t S = 0; S < Batch.size(); ++S) {
      std::uint64_t Flow = obs::dispatchFlowId(DispatchSeed, WorkerIndex, S);
      Batch[S].TraceId = obs::mixId(Flow) | 1;
      if (S < DispatchFlowCap)
        obs::traceFlowEnd("aquad.dispatch", Flow);
    }
  }

  std::size_t Submitted = Batch.size();
  service::CompileService Service(Options);

  // Live telemetry: twice-a-second atomic snapshots for `aquatop`.
  obs::SnapshotWriter Telemetry(TelemetryDir, 500);
  if (!TelemetryDir.empty())
    Telemetry.start();

  if (!WarmPath.empty()) {
    // Untimed warm-up: compile each unique warm-manifest assay once. On a
    // warm store these are L2 hits; on a cold one they seed it.
    std::vector<service::CompileRequest> WarmAll;
    std::vector<std::pair<std::string, std::string>> WarmUnique;
    if (!loadManifest(WarmPath.c_str(), Spec, WarmAll, &WarmUnique))
      return 1;
    std::vector<service::CompileRequest> Warm;
    for (const auto &[What, Source] : WarmUnique) {
      service::CompileRequest Req;
      Req.Name = What;
      Req.Source = Source;
      Req.Spec = Spec;
      Warm.push_back(std::move(Req));
    }
    service::ServiceStats Before = Service.stats();
    (void)Service.compileBatch(std::move(Warm));
    service::ServiceStats After = Service.stats();
    std::printf("aquad: warmed %zu assays from %s (%llu from store)\n",
                WarmUnique.size(), WarmPath.c_str(),
                static_cast<unsigned long long>(After.CacheHitsL2 -
                                                Before.CacheHitsL2));
  }

  if (DeadlineMs > 0) {
    std::uint64_t Deadline =
        obs::Tracer::nowMicros() + static_cast<std::uint64_t>(DeadlineMs) * 1000;
    for (service::CompileRequest &Req : Batch)
      Req.DeadlineMicros = Deadline;
  }

  WallTimer Wall;
  std::vector<service::CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  double WallSec = Wall.seconds();

  std::size_t Failures = 0, Shed = 0;
  std::vector<double> Latencies;
  Latencies.reserve(Responses.size());
  for (const service::CompileResponse &R : Responses) {
    if (R.Shed != service::ShedReason::None) {
      // Shed by admission control, not a compile failure: the service
      // chose to reject it to protect latency. Report, don't fail.
      ++Shed;
      continue;
    }
    Latencies.push_back(R.LatencySec);
    if (!R.Ok) {
      if (Failures < 5)
        std::fprintf(stderr, "aquad: %s: %s\n", R.Name.c_str(),
                     R.Error.c_str());
      ++Failures;
    }
  }
  std::sort(Latencies.begin(), Latencies.end());

  service::ServiceStats Stats = Service.stats();
  std::printf("aquad: %zu requests, %zu failed, %zu shed, %d threads, "
              "cache %s, store %s\n",
              Submitted, Failures, Shed, std::max(1, Options.Threads),
              Options.EnableCache ? "on" : "off",
              Service.store() ? Options.StoreDir.c_str() : "off");
  std::printf("  wall time     %.3f s\n", WallSec);
  std::printf("  throughput    %.1f assays/s\n",
              WallSec > 0 ? Submitted / WallSec : 0.0);
  std::printf("  cache         %.1f%% hit rate, %llu joins, %llu evictions\n",
              Stats.Cache.hitRate() * 100.0,
              static_cast<unsigned long long>(Stats.SingleFlightJoins),
              static_cast<unsigned long long>(Stats.Cache.Evictions));
  std::printf("  latency       p50 %.3f ms, p95 %.3f ms\n",
              percentile(Latencies, 0.50) * 1e3,
              percentile(Latencies, 0.95) * 1e3);
  std::printf("  %s\n", Stats.str().c_str());

  if (Simulate) {
    // One wet run per *unique* artifact: repeats share the artifact (that
    // is the point of the cache), so simulating each fingerprint once
    // reports the workload's distinct wet-path behaviours.
    std::set<std::string> Seen;
    std::size_t SimRuns = 0, SimFailures = 0;
    int Regens = 0;
    double WetSec = 0.0, DeliveredNl = 0.0, WasteNl = 0.0;
    for (const service::CompileResponse &R : Responses) {
      if (!R.Ok || !R.Artifact || !Seen.insert(R.Key.str()).second)
        continue;
      runtime::SimOptions SO;
      SO.Spec = Spec;
      SO.FixedSeparationYield = 0.5;
      if (R.Artifact->Managed)
        SO.Graph = &R.Artifact->VM.Graph;
      runtime::SimResult Sim = runtime::simulate(R.Artifact->Program, SO);
      ++SimRuns;
      if (!Sim.Completed) {
        if (SimFailures < 5)
          std::fprintf(stderr, "aquad: simulate %s: %s\n", R.Name.c_str(),
                       Sim.Error.c_str());
        ++SimFailures;
      }
      Regens += Sim.Regenerations;
      WetSec += Sim.FluidSeconds;
      DeliveredNl += Sim.DeliveredNl;
      WasteNl += Sim.WasteNl;
    }
    std::printf("  simulate      %zu unique artifacts (%zu failed), "
                "%d regenerations, %.1f s wet time, %.1f nl delivered, "
                "%.1f nl waste\n",
                SimRuns, SimFailures, Regens, WetSec, DeliveredNl, WasteNl);
    Failures += SimFailures;
  }

  if (FleetChips > 0) {
    // One fleet per unique manifest assay: compile the fleet image once
    // (partition plan + per-partition bytecode templates), then run N
    // chip instances under the shared virtual-time queue with shared
    // reservoirs and Section 3.5 online re-management enabled.
    vm::FleetOptions FO;
    FO.NumChips = FleetChips;
    FO.Threads = std::max(1, Options.Threads);
    FO.SharedReservoirs = true;
    std::printf("  fleet         %d chips x %zu assays, %d threads\n",
                FleetChips, UniqueAssays.size(), FO.Threads);
    for (const auto &[What, Source] : UniqueAssays) {
      auto Lowered = lang::compileAssay(Source);
      if (!Lowered.ok()) {
        std::fprintf(stderr, "aquad: fleet %s: %s\n", What.c_str(),
                     Lowered.message().c_str());
        ++Failures;
        continue;
      }
      auto Image = vm::compileFleetImage(Lowered->Graph, Spec);
      if (!Image.ok()) {
        std::fprintf(stderr, "aquad: fleet %s: %s\n", What.c_str(),
                     Image.message().c_str());
        ++Failures;
        continue;
      }
      vm::FleetResult FR = vm::runFleet(*Image, FO);
      std::printf("    %-20s %d/%d chips, makespan %.1f s, "
                  "%llu instrs, %llu regens, %d re-manages, %d reruns\n",
                  What.c_str(), FR.ChipsCompleted, FO.NumChips, FR.MakespanSec,
                  static_cast<unsigned long long>(FR.InstructionsExecuted),
                  static_cast<unsigned long long>(FR.Regenerations),
                  FR.OnlineRemanages, FR.PartitionReruns);
      if (FR.ChipsFailed != 0) {
        const char *Why = "";
        for (const vm::ChipResult &C : FR.Chips)
          if (!C.Completed && !C.Error.empty()) {
            Why = C.Error.c_str();
            break;
          }
        std::fprintf(stderr, "aquad: fleet %s: %d chips failed (%s)\n",
                     What.c_str(), FR.ChipsFailed, Why);
        ++Failures;
      }
    }
  }

  Telemetry.stop();
  if (!flushOutputsOnce())
    return 1;
  return Failures ? 1 : 0;
}
