//===- aquatop.cpp - Live telemetry console for aquad ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquatop: tail the live metrics snapshots an aquad run writes with
// `--telemetry DIR` and render fleet-wide queue depth, hit/shed rates, and
// solve-latency histograms in the terminal.
//
//   aquatop DIR [--once] [--interval-ms N]
//
// DIR holds one `metrics.snap-<pid>.json` per process (written atomically
// twice a second, schema aqua.metrics.snap.v1); aquatop re-reads them all
// every refresh and aggregates across pids -- counters and gauges sum,
// histograms merge bucket-wise. `--once` renders a single frame and exits
// (for scripts and CI); the default loops until interrupted.
//
//   aquad manifest.txt --store /tmp/store --workers 4 --telemetry /tmp/tel &
//   aquatop /tmp/tel
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>

using namespace aqua;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s DIR [--once] [--interval-ms N]\n", Argv0);
  return 2;
}

/// One histogram cell after aggregation.
struct Bucket {
  double Le = 0.0; // upper bound; infinity for the overflow cell
  std::uint64_t Count = 0;
};

struct Hist {
  std::uint64_t Count = 0;
  double Sum = 0.0;
  std::vector<Bucket> Buckets;
};

/// Fleet-wide aggregate of every snapshot in the directory.
struct Aggregate {
  std::size_t Processes = 0;
  std::uint64_t NewestWallMicros = 0;
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Hist> Hists;
};

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

std::vector<std::string> snapshotPaths(const std::string &Dir) {
  std::vector<std::string> Paths;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Paths;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.rfind("metrics.snap-", 0) == 0 && Name.size() > 5 &&
        Name.compare(Name.size() - 5, 5, ".json") == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

/// Folds one parsed snapshot wrapper into the aggregate. Snapshots are
/// written atomically (temp+rename), so a parse failure means a stale
/// reader raced a directory scan -- the caller just skips the file.
void fold(Aggregate &A, const json::Value &Snap) {
  const json::Value *Metrics = Snap.find("metrics");
  if (!Metrics)
    return;
  ++A.Processes;
  const json::Value *Wall = Snap.find("wallMicros");
  if (Wall && Wall->kind() == json::Value::Kind::Number)
    A.NewestWallMicros = std::max(A.NewestWallMicros, Wall->u64());

  if (const json::Value *Counters = Metrics->find("counters"))
    if (Counters->kind() == json::Value::Kind::Object)
      for (const auto &[Name, V] : Counters->members())
        if (V.kind() == json::Value::Kind::Number)
          A.Counters[Name] += V.u64();

  if (const json::Value *Gauges = Metrics->find("gauges"))
    if (Gauges->kind() == json::Value::Kind::Object)
      for (const auto &[Name, V] : Gauges->members())
        if (V.kind() == json::Value::Kind::Number)
          A.Gauges[Name] += V.number();

  const json::Value *Hists = Metrics->find("histograms");
  if (!Hists || Hists->kind() != json::Value::Kind::Object)
    return;
  for (const auto &[Name, V] : Hists->members()) {
    const json::Value *Buckets = V.find("buckets");
    if (!Buckets || Buckets->kind() != json::Value::Kind::Array)
      continue;
    Hist &H = A.Hists[Name];
    H.Count += static_cast<std::uint64_t>(V.numberOr("count", 0.0));
    H.Sum += V.numberOr("sum", 0.0);
    const std::vector<json::Value> &Cells = Buckets->array();
    if (H.Buckets.size() < Cells.size())
      H.Buckets.resize(Cells.size());
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      const json::Value *Le = Cells[I].find("le");
      Bucket B;
      // "inf" (the overflow cell) parses as a string.
      B.Le = (Le && Le->kind() == json::Value::Kind::Number)
                 ? Le->number()
                 : std::numeric_limits<double>::infinity();
      B.Count = Cells[I].numberOr("count", 0.0) < 0
                    ? 0
                    : static_cast<std::uint64_t>(
                          Cells[I].numberOr("count", 0.0));
      H.Buckets[I].Le = B.Le;
      H.Buckets[I].Count += B.Count;
    }
  }
}

std::uint64_t counter(const Aggregate &A, const char *Name) {
  auto It = A.Counters.find(Name);
  return It == A.Counters.end() ? 0 : It->second;
}

double pct(std::uint64_t Part, std::uint64_t Whole) {
  return Whole ? 100.0 * static_cast<double>(Part) /
                     static_cast<double>(Whole)
               : 0.0;
}

void renderHistogram(const Aggregate &A, const char *Name,
                     const char *Label) {
  auto It = A.Hists.find(Name);
  if (It == A.Hists.end() || It->second.Count == 0)
    return;
  const Hist &H = It->second;
  std::printf("  %s (%llu samples, mean %.3f ms)\n", Label,
              static_cast<unsigned long long>(H.Count),
              1e3 * H.Sum / static_cast<double>(H.Count));
  std::uint64_t Peak = 1;
  for (const Bucket &B : H.Buckets)
    Peak = std::max(Peak, B.Count);
  for (const Bucket &B : H.Buckets) {
    if (B.Count == 0)
      continue;
    char Bound[32];
    if (B.Le == std::numeric_limits<double>::infinity())
      std::snprintf(Bound, sizeof(Bound), "     +inf");
    else
      std::snprintf(Bound, sizeof(Bound), "%8.3fms", 1e3 * B.Le);
    int Width = static_cast<int>(40 * B.Count / Peak);
    std::printf("    <=%s %6llu |%.*s\n", Bound,
                static_cast<unsigned long long>(B.Count), Width,
                "########################################");
  }
}

void render(const Aggregate &A, const std::string &Dir) {
  if (A.Processes == 0) {
    std::printf("aquatop: no snapshots in %s yet\n", Dir.c_str());
    return;
  }
  std::uint64_t NowMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  double AgeSec = A.NewestWallMicros && NowMicros > A.NewestWallMicros
                      ? 1e-6 * (NowMicros - A.NewestWallMicros)
                      : 0.0;
  std::printf("aquatop -- %zu process%s, newest snapshot %.1fs ago (%s)\n\n",
              A.Processes, A.Processes == 1 ? "" : "es", AgeSec,
              Dir.c_str());

  std::uint64_t Submitted = counter(A, "service.requests.submitted");
  std::uint64_t Completed = counter(A, "service.requests.completed");
  std::uint64_t Failed = counter(A, "service.requests.failed");
  std::uint64_t Hits = counter(A, "service.cache.hits");
  std::uint64_t HitsL2 = counter(A, "service.cache.hits_l2");
  std::uint64_t Misses = counter(A, "service.cache.misses");
  std::uint64_t Joins = counter(A, "service.singleflight.joins");
  std::uint64_t Shed = counter(A, "service.shed_total");
  std::uint64_t ShedQueue = counter(A, "service.shed.queue_full");
  std::uint64_t ShedDeadline = counter(A, "service.shed.deadline");

  auto QD = A.Gauges.find("service.queue_depth");
  std::printf("  queue depth   %.0f\n",
              QD == A.Gauges.end() ? 0.0 : QD->second);
  std::printf("  requests      %llu submitted, %llu completed, %llu failed\n",
              static_cast<unsigned long long>(Submitted),
              static_cast<unsigned long long>(Completed),
              static_cast<unsigned long long>(Failed));
  std::printf("  cache         %.1f%% hit rate (%llu hits, %llu from L2, "
              "%llu misses), %llu joins\n",
              pct(Hits, Hits + Misses),
              static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(HitsL2),
              static_cast<unsigned long long>(Misses),
              static_cast<unsigned long long>(Joins));
  std::printf("  shed          %.1f%% of submitted (%llu total: %llu "
              "queue-full, %llu deadline)\n\n",
              pct(Shed, Submitted), static_cast<unsigned long long>(Shed),
              static_cast<unsigned long long>(ShedQueue),
              static_cast<unsigned long long>(ShedDeadline));

  renderHistogram(A, "service.solve_sec", "solve latency");
  renderHistogram(A, "service.latency_sec", "request latency");
  renderHistogram(A, "service.queue_wait_sec", "queue wait");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Dir = Argv[1];
  bool Once = false;
  unsigned IntervalMs = 1000;
  for (int I = 2; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--once"))
      Once = true;
    else if (!std::strcmp(Argv[I], "--interval-ms") && I + 1 < Argc)
      IntervalMs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else
      return usage(Argv[0]);
  }
  if (IntervalMs == 0)
    IntervalMs = 1;

  for (;;) {
    Aggregate A;
    for (const std::string &Path : snapshotPaths(Dir)) {
      std::string Doc;
      if (!readFile(Path, Doc))
        continue;
      auto Snap = json::parse(Doc);
      if (!Snap.ok())
        continue; // stale file mid-replace; next refresh will see it
      fold(A, *Snap);
    }
    if (!Once)
      std::printf("\x1b[2J\x1b[H"); // clear screen, home cursor
    render(A, Dir);
    if (Once)
      return A.Processes == 0 ? 1 : 0;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
}
