//===- aquac.cpp - The AquaVol assay compiler driver -----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquac: compile an assay source file to AIS with automatic volume
// management.
//
//   aquac FILE.assay [--emit-dag] [--emit-dot] [--emit-ais] [--relative]
//                    [--simulate] [--capacity NL] [--least-count NL]
//                    [--trace-out FILE] [--metrics-out FILE]
//
// With no --emit flag, prints managed AIS. `--relative` skips volume
// management and emits the paper-style relative-volume code; `--simulate`
// also executes the program on the AquaCore simulator. `--trace-out`
// enables span tracing and writes a Chrome trace-event JSON;
// `--metrics-out` dumps the metrics registry.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/AISParser.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/codegen/Schedule.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Report.h"
#include "aqua/lang/Lower.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/runtime/Simulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace aqua;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE.assay [--emit-dag] [--emit-dot] [--emit-ais]\n"
               "          [--relative] [--simulate] [--report] [--schedule]"
               " [--capacity NL] [--least-count NL]\n"
               "          [--trace-out FILE] [--metrics-out FILE]\n"
               "       %s --run-ais FILE.ais   (execute textual AIS)\n",
               Argv0, Argv0);
  return 2;
}

/// Matches `--flag VALUE` and `--flag=VALUE`; returns the value or null.
const char *flagValue(const char *Flag, int &I, int Argc, char **Argv) {
  std::size_t N = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, N))
    return nullptr;
  if (Argv[I][N] == '=')
    return Argv[I] + N + 1;
  if (Argv[I][N] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Flushes --trace-out / --metrics-out on every exit path (the exporters
/// warn on I/O failure themselves).
struct ObsExports {
  std::string TraceOut, MetricsOut;

  ~ObsExports() {
    if (!TraceOut.empty())
      obs::Tracer::global().writeChromeTrace(TraceOut);
    if (!MetricsOut.empty())
      obs::metrics().writeJsonFile(MetricsOut);
  }
};

} // namespace

int main(int argc, char **argv) {
  const char *Path = nullptr;
  bool EmitDag = false, EmitDot = false, Relative = false, Simulate = false;
  bool RunAIS = false;
  bool Report = false;
  bool PrintSchedule = false;
  core::MachineSpec Spec;
  ObsExports Obs;

  for (int I = 1; I < argc; ++I) {
    const char *V;
    if (!std::strcmp(argv[I], "--run-ais"))
      RunAIS = true;
    else if (!std::strcmp(argv[I], "--emit-dag"))
      EmitDag = true;
    else if (!std::strcmp(argv[I], "--emit-dot"))
      EmitDot = true;
    else if (!std::strcmp(argv[I], "--emit-ais"))
      ; // Default output.
    else if (!std::strcmp(argv[I], "--report"))
      Report = true;
    else if (!std::strcmp(argv[I], "--schedule"))
      PrintSchedule = true;
    else if (!std::strcmp(argv[I], "--relative"))
      Relative = true;
    else if (!std::strcmp(argv[I], "--simulate"))
      Simulate = true;
    else if (!std::strcmp(argv[I], "--capacity") && I + 1 < argc)
      Spec.MaxCapacityNl = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--least-count") && I + 1 < argc)
      Spec.LeastCountNl = std::atof(argv[++I]);
    else if ((V = flagValue("--trace-out", I, argc, argv)))
      Obs.TraceOut = V;
    else if ((V = flagValue("--metrics-out", I, argc, argv)))
      Obs.MetricsOut = V;
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else
      Path = argv[I];
  }
  if (!Path)
    return usage(argv[0]);

  if (!Obs.TraceOut.empty())
    obs::Tracer::setEnabled(true);
  if (!Obs.MetricsOut.empty())
    obs::preregisterPipelineMetrics();

  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "aquac: cannot open '%s'\n", Path);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << File.rdbuf();

  if (RunAIS) {
    auto Prog = codegen::parseAIS(Buffer.str());
    if (!Prog.ok()) {
      std::fprintf(stderr, "%s:%s\n", Path, Prog.message().c_str());
      return 1;
    }
    runtime::SimOptions SO;
    SO.Spec = Spec;
    SO.EnableRegeneration = false; // Parsed AIS has no DAG provenance.
    runtime::SimResult S = runtime::simulate(*Prog, SO);
    std::printf("simulation: %s, %d instructions, %.0f s wet time\n",
                S.Completed ? "completed" : S.Error.c_str(),
                S.InstructionsExecuted, S.FluidSeconds);
    for (const runtime::SenseReading &R : S.Senses)
      std::printf("sense %s: %.2f nl\n", R.Name.c_str(), R.VolumeNl);
    return S.Completed ? 0 : 1;
  }

  auto Lowered = lang::compileAssay(Buffer.str());
  if (!Lowered.ok()) {
    std::fprintf(stderr, "%s:%s\n", Path, Lowered.message().c_str());
    return 1;
  }

  if (EmitDag) {
    std::printf("%s", Lowered->Graph.str().c_str());
    return 0;
  }
  if (EmitDot) {
    std::printf("%s", Lowered->Graph.dot().c_str());
    return 0;
  }

  const ir::AssayGraph *Graph = &Lowered->Graph;
  core::ManagerResult VM;
  core::VolumeAssignment Metered;
  codegen::CodegenOptions CG;
  if (!Relative) {
    bool HasUnknown = false;
    for (ir::NodeId N : Lowered->Graph.liveNodes())
      if (Lowered->Graph.node(N).UnknownVolume)
        HasUnknown = true;
    if (HasUnknown) {
      std::fprintf(stderr,
                   "aquac: note: assay has run-time-unknown volumes; "
                   "emitting relative AIS (use the partition API for "
                   "deferred dispensing)\n");
      Relative = true;
    }
  }
  if (!Relative) {
    VM = core::manageVolumes(Lowered->Graph, Spec);
    if (!VM.Feasible) {
      std::fprintf(stderr,
                   "aquac: no feasible volume assignment; decision log:\n%s",
                   VM.Log.c_str());
      return 1;
    }
    Graph = &VM.Graph;
    Metered = core::integerToNl(VM.Graph, VM.Rounded, Spec);
    CG.Mode = codegen::VolumeMode::Managed;
    CG.Volumes = &Metered;
  }

  if (PrintSchedule) {
    const ir::AssayGraph &SchedGraph =
        Relative ? Lowered->Graph : VM.Graph;
    auto Sched = codegen::scheduleAssay(SchedGraph);
    if (!Sched.ok()) {
      std::fprintf(stderr, "aquac: %s\n", Sched.message().c_str());
      return 1;
    }
    std::printf("%s", Sched->str(SchedGraph).c_str());
    return 0;
  }

  if (Report) {
    if (Relative) {
      std::fprintf(stderr, "aquac: --report needs managed volumes\n");
      return 1;
    }
    core::VolumeReport Rep = core::buildVolumeReport(VM.Graph, VM.Volumes);
    std::printf("%s", Rep.str().c_str());
    return 0;
  }

  auto Prog = codegen::generateAIS(*Graph, {}, CG);
  if (!Prog.ok()) {
    std::fprintf(stderr, "aquac: %s\n", Prog.message().c_str());
    return 1;
  }
  std::printf("%s", Prog->str().c_str());

  if (Simulate) {
    runtime::SimOptions SO;
    SO.Spec = Spec;
    SO.Graph = Graph;
    runtime::SimResult S = runtime::simulate(*Prog, SO);
    std::printf("\n; simulation: %s, %d instructions, %d regenerations, "
                "%.0f s wet time\n",
                S.Completed ? "completed" : S.Error.c_str(),
                S.InstructionsExecuted, S.Regenerations, S.FluidSeconds);
    for (const runtime::SenseReading &R : S.Senses)
      std::printf("; sense %s: %.2f nl\n", R.Name.c_str(), R.VolumeNl);
  }
  return 0;
}
