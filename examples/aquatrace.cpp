//===- aquatrace.cpp - Stitch per-process trace shards -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// aquatrace: merge the per-process trace shards a multi-process aquad run
// writes under AQUA_TRACE_DIR into one Chrome/Perfetto trace.
//
//   aquatrace merge DIR [-o OUT]
//
// DIR holds `trace-<pid>.shard.json` files (one per process); the merged
// trace goes to OUT (default `DIR/merged.json`). Each shard's clock is
// re-anchored onto the earliest shard epoch and each (process, track)
// pair becomes its own Chrome pid, so a request's flow arc ('s' in the
// parent, 'f' in a worker) renders as one line crossing process tracks.
//
//   aquad manifest.txt --store /tmp/store --workers 4   # AQUA_TRACE_DIR set
//   aquatrace merge $AQUA_TRACE_DIR -o merged.json
//   # load merged.json in chrome://tracing or ui.perfetto.dev
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/TraceMerge.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace aqua;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s merge DIR [-o OUT]\n", Argv0);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3 || std::strcmp(Argv[1], "merge") != 0)
    return usage(Argv[0]);
  std::string Dir = Argv[2];
  std::string Out = Dir + "/merged.json";
  for (int I = 3; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "-o") && I + 1 < Argc)
      Out = Argv[++I];
    else
      return usage(Argv[0]);
  }

  auto Paths = obs::listShardPaths(Dir);
  if (!Paths.ok()) {
    std::fprintf(stderr, "aquatrace: %s\n", Paths.message().c_str());
    return 1;
  }
  if (Paths->empty()) {
    std::fprintf(stderr, "aquatrace: no *.shard.json files in %s\n",
                 Dir.c_str());
    return 1;
  }

  std::vector<std::string> Docs;
  for (const std::string &Path : *Paths) {
    std::string Doc;
    if (!readFile(Path, Doc)) {
      std::fprintf(stderr, "aquatrace: cannot read %s\n", Path.c_str());
      return 1;
    }
    Docs.push_back(std::move(Doc));
  }

  auto Merged = obs::mergeShards(Docs);
  if (!Merged.ok()) {
    std::fprintf(stderr, "aquatrace: %s\n", Merged.message().c_str());
    return 1;
  }

  std::FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "aquatrace: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::size_t Written =
      std::fwrite(Merged->Json.data(), 1, Merged->Json.size(), F);
  bool Ok = (Written == Merged->Json.size());
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok) {
    std::fprintf(stderr, "aquatrace: short write to %s\n", Out.c_str());
    return 1;
  }

  std::printf("aquatrace: merged %zu shards, %zu events (%llu dropped) -> "
              "%s\n",
              Merged->ShardCount, Merged->EventCount,
              static_cast<unsigned long long>(Merged->DroppedEvents),
              Out.c_str());
  return 0;
}
