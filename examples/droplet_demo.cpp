//===- droplet_demo.cpp - Volume management on a droplet device ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's closing remark in action: the glucose assay compiled for a
// digital-microfluidic (droplet) device. DAGSolve's Vnorm pass carries
// over unchanged; dispensing becomes exact whole droplets, and the
// electrode-grid router executes the assay under the static fluidic
// constraint.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/droplet/Router.h"
#include "aqua/lang/Lower.h"

#include <cstdio>

using namespace aqua;
using namespace aqua::droplet;
using namespace aqua::ir;

int main() {
  auto L = lang::compileAssay(assays::glucoseSource());
  if (!L.ok()) {
    std::fprintf(stderr, "compile error: %s\n", L.message().c_str());
    return 1;
  }

  DmfSpec Spec;
  Spec.Width = 24;
  Spec.Height = 24;
  Spec.CapacityDroplets = 512;
  Spec.DropletNl = 10.0;

  auto A = dmfDagSolve(L->Graph, Spec);
  if (!A.ok()) {
    std::fprintf(stderr, "droplet solve failed: %s\n", A.message().c_str());
    return 1;
  }
  std::printf("=== Integer-droplet volume assignment ===\n");
  std::printf("scale: %lld droplets per Vnorm unit; feasible: %s\n",
              static_cast<long long>(A->Scale), A->Feasible ? "yes" : "no");
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind == NodeKind::Sense)
      continue;
    std::printf("  %-16s %5lld droplets (%.0f nl)\n",
                L->Graph.node(N).Name.c_str(),
                static_cast<long long>(A->NodeDroplets[N]),
                static_cast<double>(A->NodeDroplets[N]) * Spec.DropletNl);
  }
  std::printf("mix ratios are exact: droplet counts ARE the ratios "
              "(no least-count rounding error)\n\n");

  if (!A->Feasible) {
    std::printf("per-site capacity exceeded; cascade the extreme mixes "
                "first (see bench_droplet_adaptation)\n");
    return 0;
  }

  auto Run = executeOnGrid(L->Graph, *A, Spec);
  if (!Run.ok()) {
    std::fprintf(stderr, "grid execution failed: %s\n",
                 Run.message().c_str());
    return 1;
  }
  std::printf("=== Electrode-grid execution (%dx%d) ===\n", Spec.Width,
              Spec.Height);
  std::printf("steps (actuations): %lld\n",
              static_cast<long long>(Run->Steps));
  std::printf("dispenses %d, splits %d, merges %d, senses %d, peak %d "
              "droplets in flight\n",
              Run->Dispenses, Run->Splits, Run->Merges, Run->Senses,
              Run->PeakDroplets);
  return 0;
}
