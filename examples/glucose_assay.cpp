//===- glucose_assay.cpp - Compile and run the glucose assay --------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The full pipeline on the paper's glucose assay (Figure 9): parse the
// assay source, lower to the DAG, run the volume-management hierarchy,
// generate AIS with metered volumes, and execute it on the AquaCore
// simulator -- then do the same without volume management to watch
// regeneration kick in.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/lang/Lower.h"
#include "aqua/runtime/Simulator.h"

#include <cstdio>

using namespace aqua;

int main() {
  // ----- Compile the assay language source.
  std::printf("=== Assay source (Figure 9a) ===\n%s\n",
              assays::glucoseSource());
  auto Lowered = lang::compileAssay(assays::glucoseSource());
  if (!Lowered.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Lowered.message().c_str());
    return 1;
  }

  // ----- Volume management (Figure 6 hierarchy).
  core::MachineSpec Spec;
  core::ManagerResult VM = core::manageVolumes(Lowered->Graph, Spec);
  std::printf("=== Volume management ===\n%s", VM.Log.c_str());
  if (!VM.Feasible) {
    std::fprintf(stderr, "no feasible volume assignment\n");
    return 1;
  }
  std::printf("method: %s, min dispense %.2f nl, rounding error %.2f%%\n\n",
              VM.Method == core::SolveMethod::DagSolve ? "DAGSolve" : "LP",
              VM.MinDispenseNl, VM.Rounded.MeanRatioErrorPct);

  // ----- Managed AIS (metered volumes).
  core::VolumeAssignment Metered =
      core::integerToNl(VM.Graph, VM.Rounded, Spec);
  codegen::CodegenOptions CG;
  CG.Mode = codegen::VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto Managed = codegen::generateAIS(VM.Graph, {}, CG);
  if (!Managed.ok()) {
    std::fprintf(stderr, "codegen error: %s\n", Managed.message().c_str());
    return 1;
  }
  std::printf("=== Managed AIS ===\n%s\n", Managed->str().c_str());

  runtime::SimOptions SO;
  SO.Graph = &VM.Graph;
  SO.EnableRegeneration = false; // Managed runs don't need the backstop.
  runtime::SimResult ManagedRun = runtime::simulate(*Managed, SO);
  std::printf("=== Managed execution ===\n");
  std::printf("completed: %s, regenerations: %d, wet time: %.0f s\n",
              ManagedRun.Completed ? "yes" : "no", ManagedRun.Regenerations,
              ManagedRun.FluidSeconds);
  for (const runtime::SenseReading &R : ManagedRun.Senses) {
    double Glucose = 0.0;
    auto It = R.Composition.find("Glucose");
    if (It != R.Composition.end())
      Glucose = It->second;
    std::printf("  %-9s volume %5.2f nl, glucose fraction %.4f\n",
                R.Name.c_str(), R.VolumeNl, Glucose);
  }

  // ----- Baseline: relative volumes, no management, regeneration on.
  auto Naive = codegen::generateAIS(Lowered->Graph);
  runtime::SimOptions NaiveSO;
  NaiveSO.Graph = &Lowered->Graph;
  runtime::SimResult NaiveRun = runtime::simulate(*Naive, NaiveSO);
  std::printf("\n=== Without volume management (regeneration baseline) ===\n");
  std::printf("completed: %s, regenerations: %d, wet time: %.0f s "
              "(%.1fx the managed run)\n",
              NaiveRun.Completed ? "yes" : "no", NaiveRun.Regenerations,
              NaiveRun.FluidSeconds,
              NaiveRun.FluidSeconds / ManagedRun.FluidSeconds);
  return 0;
}
