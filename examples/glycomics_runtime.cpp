//===- glycomics_runtime.cpp - Run-time volume assignment -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The glycomics assay (Figure 10) has three separations whose output
// volumes cannot be known at compile time. This example builds the
// Section 3.5 partition plan (Figure 13), then walks the partitions in
// execution order, "measuring" each separation's output with a seeded RNG
// and dispensing the next partition with the run-time scale rule.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Partition.h"
#include "aqua/lang/Lower.h"
#include "aqua/runtime/PartitionExecutor.h"
#include "aqua/support/Random.h"

#include <cstdio>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

int main() {
  auto Lowered = lang::compileAssay(assays::glycomicsSource());
  if (!Lowered.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Lowered.message().c_str());
    return 1;
  }

  MachineSpec Spec;
  auto Plan = buildPartitionPlan(Lowered->Graph, Spec);
  if (!Plan.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", Plan.message().c_str());
    return 1;
  }

  std::printf("=== Compile time: partition plan (Figure 13) ===\n%s\n",
              Plan->str().c_str());

  // ----- Run time: walk partitions in wave order. Every unknown-volume
  // separation's yield is "measured" here with a deterministic RNG playing
  // the role of the on-chip volume sensor [Gomez et al. 2001].
  SplitMix64 Rng(2026);
  std::vector<double> Available(Plan->Inputs.size(), -1.0);

  std::printf("=== Run time: per-partition dispensing ===\n");
  for (size_t P = 0; P < Plan->Parts.size(); ++P) {
    VolumeAssignment V = dispensePartition(*Plan, static_cast<int>(P),
                                           Available, Spec);
    std::printf("partition %zu (wave %d):\n", P, Plan->Parts[P].Wave);
    for (NodeId N : Plan->Parts[P].Members)
      std::printf("  %-22s %8.3f nl\n", Plan->Graph.node(N).Name.c_str(),
                  V.NodeVolumeNl[N]);

    // "Measure" the outputs of this partition's unknown-volume leaves and
    // publish them to the consuming partitions' constrained inputs.
    for (NodeId N : Plan->Parts[P].Members) {
      const Node &Nd = Plan->Graph.node(N);
      if (!Nd.UnknownVolume)
        continue;
      double Yield = 0.2 + 0.5 * Rng.nextUnit();
      double Measured = V.NodeVolumeNl[N] * Yield;
      std::printf("  measured %s output: %.3f nl (yield %.0f%%)\n",
                  Nd.Name.c_str(), Measured, Yield * 100.0);
      for (size_t CI = 0; CI < Plan->Inputs.size(); ++CI)
        if (Plan->Inputs[CI].Source == N)
          Available[CI] = Measured * Plan->Inputs[CI].Share.toDouble();
    }
  }

  std::printf("\nIf a separation yields too little (try X2), the consuming "
              "partition scales down\nproportionally; below the least count "
              "the runtime would fall back on\nBioStream-style "
              "regeneration.\n");

  // ----- The same flow, fully automated: each partition is dispensed,
  // code-generated and simulated in wave order by the partition executor.
  std::printf("\n=== Automated: runtime::executePartitioned ===\n");
  runtime::SimOptions SO;
  SO.Seed = 2026;
  runtime::PartitionRunResult Run = runtime::executePartitioned(*Plan, SO);
  if (!Run.Completed) {
    std::printf("run stopped: %s\n", Run.Error.c_str());
    return 1;
  }
  std::printf("partitions executed: %d, wet time %.0f s, regenerations %d\n",
              Run.PartitionsExecuted, Run.FluidSeconds, Run.Regenerations);
  for (const auto &[Name, Nl] : Run.MeasuredNl)
    std::printf("  measured %-12s %7.2f nl\n", Name.c_str(), Nl);
  return 0;
}
