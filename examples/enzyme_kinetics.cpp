//===- enzyme_kinetics.cpp - Cascading and replication in action ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The enzyme-inhibition assay (Figure 11) defeats both DAGSolve and LP:
// its 1:999 serial dilution underflows at 9.8 pl, and one diluent
// reservoir cannot cover the dilution series. This example walks the
// Figure 6 hierarchy: watch the driver cascade the extreme mixes,
// replicate the diluent, and land on a feasible metered assignment -- then
// replay the paper's manual Figure 14 sequence for comparison.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Replication.h"
#include "aqua/ir/AssayGraph.h"

#include <cstdio>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

void report(const char *Title, const AssayGraph &G, const DagSolveResult &R) {
  std::printf("%-44s min dispense %9.4f nl (%s)\n", Title, R.MinDispenseNl,
              R.Feasible ? "feasible" : "UNDERFLOW");
  NodeId Diluent = findNode(G, "diluent");
  if (Diluent != InvalidNode)
    std::printf("%-44s diluent Vnorm %s ~ %.1f\n", "",
                R.NodeVnorm[Diluent].str().c_str(),
                R.NodeVnorm[Diluent].toDouble());
}

} // namespace

int main() {
  MachineSpec Spec;

  // ----- The raw assay: Figure 14(a).
  AssayGraph G = assays::buildEnzymeAssay(4);
  DagSolveResult R0 = dagSolve(G, Spec);
  std::printf("== Figure 14(a): raw enzyme assay ==\n");
  report("initial DAGSolve", G, R0);
  std::printf("  (the paper: dilutions 9.8 nl, 1:999 edge underflows at "
              "9.8 pl)\n\n");

  // ----- The paper's manual sequence: cascade each 1:999 into three 1:9
  // stages, then replicate the diluent three ways.
  std::printf("== Figure 14(b): the paper's manual transform sequence ==\n");
  for (const char *Name : {"inh_dil4", "enz_dil4", "sub_dil4"}) {
    NodeId M = findNode(G, Name);
    auto CI = cascadeMix(G, M, /*Stages=*/3);
    if (!CI.ok()) {
      std::fprintf(stderr, "cascade failed: %s\n", CI.message().c_str());
      return 1;
    }
  }
  DagSolveResult R1 = dagSolve(G, Spec);
  report("after cascading the 1:999 mixes", G, R1);
  std::printf("  (the paper: diluent Vnorm rises to 81; new 65.6 pl "
              "underflow at the 1:99 mixes)\n");

  NodeId Diluent = findNode(G, "diluent");
  auto Reps = replicateNode(G, Diluent, 3, Spec);
  if (!Reps.ok()) {
    std::fprintf(stderr, "replication failed: %s\n", Reps.message().c_str());
    return 1;
  }
  // The paper assigns each replica to one reagent class ("one for enzyme,
  // one for substrate, and one for inhibitor"), which balances the three
  // replicas exactly; regroup the round-robin distribution the same way.
  for (NodeId Rep : *Reps)
    for (EdgeId E : G.outEdges(Rep)) {
      const std::string &Consumer = G.node(G.edge(E).Dst).Name;
      int Class = Consumer.rfind("inh_", 0) == 0   ? 0
                  : Consumer.rfind("enz_", 0) == 0 ? 1
                                                   : 2;
      if ((*Reps)[Class] != Rep)
        G.setEdgeSource(E, (*Reps)[Class]);
    }
  DagSolveResult R2 = dagSolve(G, Spec);
  report("after replicating the diluent 3x", G, R2);
  std::printf("  (the paper: minimum dispense rises ~3x to 196 pl; all "
              "underflow gone)\n\n");

  // ----- The automatic driver on a fresh copy of the assay.
  std::printf("== Automatic Figure 6 hierarchy ==\n");
  ManagerResult VM = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  std::printf("%s", VM.Log.c_str());
  if (!VM.Feasible) {
    std::fprintf(stderr, "driver failed to find an assignment\n");
    return 1;
  }
  std::printf("driver result: %d cascades, %d replications, min dispense "
              "%.4f nl, mean rounding error %.2f%%\n",
              VM.CascadesApplied, VM.ReplicationsApplied, VM.MinDispenseNl,
              VM.Rounded.MeanRatioErrorPct);
  return 0;
}
