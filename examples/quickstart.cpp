//===- quickstart.cpp - AquaVol in five minutes ---------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Builds the paper's running example (Figure 2) through the public API,
// solves it with DAGSolve and with the LP formulation, and prints the
// resulting volume assignments. Start here.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Rounding.h"
#include "aqua/ir/AssayGraph.h"

#include <cstdio>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

int main() {
  // ----- 1. Describe the assay as a DAG: nodes are operations, edges are
  // uses annotated with exact mix fractions.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId K = G.addMix("K", {{A, 1}, {B, 4}});  // K = A:B in 1:4.
  NodeId L = G.addMix("L", {{B, 2}, {C, 1}});  // L = B:C in 2:1.
  G.addMix("M", {{K, 2}, {L, 1}});             // M = K:L in 2:1.
  G.addMix("N", {{L, 2}, {C, 3}});             // N = L:C in 2:3.
  if (Status S = G.verify(); !S.ok()) {
    std::fprintf(stderr, "invalid assay: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("Assay DAG (Figure 2):\n%s\n", G.str().c_str());

  // ----- 2. The machine: 100 nl capacity, 100 pl least count (Section 4.2).
  MachineSpec Spec;

  // ----- 3. DAGSolve: linear-time volume assignment.
  DagSolveResult R = dagSolve(G, Spec);
  std::printf("DAGSolve %s; relative volumes (Vnorm):\n",
              R.Feasible ? "feasible" : "infeasible");
  for (NodeId N : G.liveNodes())
    std::printf("  %-4s Vnorm = %-8s -> %7.2f nl\n",
                G.node(N).Name.c_str(), R.NodeVnorm[N].str().c_str(),
                R.Volumes.NodeVolumeNl[N]);
  std::printf("  smallest dispensed volume: %.2f nl (least count %.1f nl)\n\n",
              R.MinDispenseNl, Spec.LeastCountNl);

  // ----- 4. Round to hardware metering units (IVol) and check the error.
  IntegerAssignment IVol = roundToLeastCount(G, R.Volumes, Spec);
  std::printf("After least-count rounding: mean mix-ratio error %.3f%%, "
              "max %.3f%%\n\n",
              IVol.MeanRatioErrorPct, IVol.MaxRatioErrorPct);

  // ----- 5. The same problem as the paper's LP formulation (Figure 3).
  LPVolumeResult LP = solveRVolLP(G, Spec);
  std::printf("LP formulation: %d constraints, status %s, "
              "objective (total output) %.2f nl\n",
              LP.CountedConstraints,
              lp::solveStatusName(LP.Solution.Status),
              LP.Solution.Objective);
  std::printf("LP min dispense %.2f nl vs DAGSolve %.2f nl\n",
              LP.Volumes.minDispenseNl(G), R.MinDispenseNl);
  return 0;
}
