//===- CodegenTest.cpp - AIS code generation tests ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/Codegen.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/Manager.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

std::map<Opcode, int> opcodeCounts(const AISProgram &P) {
  std::map<Opcode, int> Counts;
  for (const Instruction &I : P.Instrs)
    ++Counts[I.Op];
  return Counts;
}

} // namespace

TEST(Codegen, GlucoseRelativeProgram) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();

  // 3 inputs; 5 mixes x (2 moves + mix); 5 senses x (move + sense).
  auto Counts = opcodeCounts(*P);
  EXPECT_EQ(Counts[Opcode::Input], 3);
  EXPECT_EQ(Counts[Opcode::Mix], 5);
  EXPECT_EQ(Counts[Opcode::Move], 5 * 2 + 5);
  EXPECT_EQ(Counts[Opcode::SenseOD], 5);
  EXPECT_EQ(P->Instrs.size(), 3u + 15u + 10u);

  // Single-use mixes are forwarded unit-to-unit: one mixer, one sensor,
  // only the three input reservoirs.
  EXPECT_EQ(P->UsedReservoirs, 3);
  EXPECT_EQ(P->UsedMixers, 1);
  EXPECT_EQ(P->UsedSensors, 1);

  // Paper-style text (Figure 9b).
  std::string Text = P->str();
  EXPECT_NE(Text.find("input s1, ip1 ;Glucose"), std::string::npos);
  EXPECT_NE(Text.find("mix mixer1, 10"), std::string::npos);
  EXPECT_NE(Text.find("move mixer1, s2, 8"), std::string::npos); // 1:8 mix.
  EXPECT_NE(Text.find("sense.OD sensor1, Result_1"), std::string::npos);
}

TEST(Codegen, GlucoseManagedProgram) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);
  ASSERT_TRUE(R.Feasible);

  CodegenOptions Opts;
  Opts.Mode = VolumeMode::Managed;
  Opts.Volumes = &R.Volumes;
  auto P = generateAIS(G, MachineLayout{}, Opts);
  ASSERT_TRUE(P.ok()) << P.message();

  // Operand moves carry metered volumes; every metered volume respects the
  // least count.
  int MeteredMoves = 0;
  double MinVol = 1e9;
  for (const Instruction &I : P->Instrs) {
    if (I.Op != Opcode::MoveAbs)
      continue;
    ++MeteredMoves;
    MinVol = std::min(MinVol, I.VolumeNl);
  }
  EXPECT_EQ(MeteredMoves, 15); // One per DAG edge.
  EXPECT_NEAR(MinVol, 500.0 / 151.0, 1e-9); // Figure 12's 3.31 nl.
}

TEST(Codegen, GlycomicsUsesSeparators) {
  AssayGraph G = assays::buildGlycomicsAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();

  auto Counts = opcodeCounts(*P);
  // 7 declared inputs + lectin/buffer1b/C_18/buffer3b aux fluids.
  EXPECT_EQ(Counts[Opcode::Input], 7 + 4);
  EXPECT_EQ(Counts[Opcode::SeparateAF], 1);
  EXPECT_EQ(Counts[Opcode::SeparateLC], 2);
  // The final mix is an assay product, delivered to an output port.
  EXPECT_EQ(Counts[Opcode::Output], 1);
  EXPECT_GE(P->UsedSeparators, 1);

  std::string Text = P->str();
  EXPECT_NE(Text.find("separator1.matrix"), std::string::npos);
  EXPECT_NE(Text.find("separator1.pusher"), std::string::npos);
  EXPECT_NE(Text.find("separator1.out1"), std::string::npos);
  EXPECT_NE(Text.find("incubate heater1, 37, 30"), std::string::npos);
}

TEST(Codegen, EnzymeReservoirAllocation) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();
  // Peak pressure: 12 dilutions plus the still-live inputs, with freed
  // input reservoirs recycled for later dilutions.
  EXPECT_GE(P->UsedReservoirs, 12);
  EXPECT_LE(P->UsedReservoirs, 16);
  auto Counts = opcodeCounts(*P);
  EXPECT_EQ(Counts[Opcode::Mix], 12 + 64);
  EXPECT_EQ(Counts[Opcode::Incubate], 64);
  EXPECT_EQ(Counts[Opcode::SenseOD], 64);
}

TEST(Codegen, ReservoirExhaustionReported) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  MachineLayout Tiny;
  Tiny.Reservoirs = 6;
  auto P = generateAIS(G, Tiny);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.message().find("reservoirs"), std::string::npos);
}

TEST(Codegen, CascadedGraphEmitsExcessToWaste) {
  MachineSpec Spec;
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 99}}, 10.0);
  G.addUnary(NodeKind::Sense, "sense_R_1", M);
  ASSERT_TRUE(cascadeMix(G, M, 2).ok());

  ManagerResult R = manageVolumes(G, Spec);
  ASSERT_TRUE(R.Feasible);

  CodegenOptions Opts;
  Opts.Mode = VolumeMode::Managed;
  Opts.Volumes = &R.Volumes;
  auto P = generateAIS(R.Graph, MachineLayout{}, Opts);
  ASSERT_TRUE(P.ok()) << P.message();
  // The cascade intermediate's excess goes to the waste port.
  auto Counts = opcodeCounts(*P);
  EXPECT_GE(Counts[Opcode::Output], 1);
}

TEST(Codegen, ManagedModeRequiresVolumes) {
  AssayGraph G = assays::buildGlucoseAssay();
  CodegenOptions Opts;
  Opts.Mode = VolumeMode::Managed;
  auto P = generateAIS(G, MachineLayout{}, Opts);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.message().find("volume assignment"), std::string::npos);
}

TEST(Codegen, MixerParkingSpillsWhenExhausted) {
  // Three mixes whose values are all alive before a final 3-input mix:
  // with 2 mixers one parked value must spill to a reservoir.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M1 = G.addMix("m1", {{A, 1}, {B, 1}});
  NodeId M2 = G.addMix("m2", {{A, 1}, {B, 2}});
  NodeId M3 = G.addMix("m3", {{A, 1}, {B, 3}});
  NodeId Final = G.addMix("final", {{M1, 1}, {M2, 1}, {M3, 1}});
  G.addUnary(NodeKind::Sense, "sense_R_1", Final);
  ASSERT_TRUE(G.verify().ok());

  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();
  // A spill move into a reservoir beyond the two input reservoirs.
  EXPECT_GE(P->UsedReservoirs, 3);
  EXPECT_LE(P->UsedMixers, 2);
}

TEST(Codegen, LocAndOpcodeNames) {
  EXPECT_EQ((Loc{LocKind::Reservoir, 4, SubPort::None}).str(), "s4");
  EXPECT_EQ((Loc{LocKind::Separator, 2, SubPort::Out1}).str(),
            "separator2.out1");
  EXPECT_EQ((Loc{LocKind::InputPort, 3, SubPort::None}).str(), "ip3");
  EXPECT_STREQ(opcodeName(Opcode::SeparateLC), "separate.LC");
  EXPECT_STREQ(opcodeName(Opcode::MoveAbs), "move-abs");
}
