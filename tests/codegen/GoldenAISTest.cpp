//===- GoldenAISTest.cpp - Golden-file AIS codegen tests --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Locks the exact AIS listing for two Table 2 assays: the glucose assay
// through full volume management (metered move-abs volumes) and the enzyme
// kinetics assay in relative mode (part-ratio moves). Any codegen change
// that reorders instructions, renames units, or perturbs a metered volume
// shows up as a readable text diff.
//
// When a codegen change is INTENTIONAL, regenerate the goldens with the
// escape hatch and commit the result alongside the change:
//
//   AQUA_UPDATE_GOLDENS=1 ctest --test-dir build -R GoldenAIS
//
// (or run the aqua_codegen_test binary directly with the same variable).
// The goldens live in tests/codegen/goldens/, wired in via the
// AQUA_GOLDEN_DIR compile definition.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Rounding.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(AQUA_GOLDEN_DIR) + "/" + Name;
}

/// Compares \p Actual against the golden file, or rewrites the golden when
/// AQUA_UPDATE_GOLDENS is set in the environment.
void checkGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("AQUA_UPDATE_GOLDENS")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write golden " << Path;
    Out << Actual;
    GTEST_SKIP() << "golden " << Name << " updated";
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path
                  << " (run once with AQUA_UPDATE_GOLDENS=1 to create it)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "AIS listing diverged from " << Path
      << "; if the codegen change is intentional, regenerate with "
         "AQUA_UPDATE_GOLDENS=1";
}

} // namespace

TEST(GoldenAIS, GlucoseManaged) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  ManagerResult R = manageVolumes(G, Spec);
  ASSERT_TRUE(R.Feasible);
  VolumeAssignment Metered = integerToNl(R.Graph, R.Rounded, Spec);

  CodegenOptions Opts;
  Opts.Mode = VolumeMode::Managed;
  Opts.Volumes = &Metered;
  auto P = generateAIS(R.Graph, MachineLayout{}, Opts);
  ASSERT_TRUE(P.ok()) << P.message();
  checkGolden("glucose_managed.ais", P->str());
}

TEST(GoldenAIS, EnzymeRelative) {
  AssayGraph G = assays::buildEnzymeAssay(/*Dilutions=*/2);
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();
  checkGolden("enzyme_relative.ais", P->str());
}
