//===- SchedulePropertyTest.cpp - Scheduler invariants on random DAGs ------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/Schedule.h"

#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;

namespace {

AssayGraph randomDag(SplitMix64 &Rng, int Ops) {
  AssayGraph G;
  std::vector<NodeId> Values;
  for (int I = 0; I < 3; ++I)
    Values.push_back(G.addInput("in" + std::to_string(I)));
  for (int I = 0; I < Ops; ++I) {
    std::int64_t Kind = Rng.nextInRange(0, 5);
    NodeId A = Values[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
    if (Kind <= 3) {
      NodeId B = A;
      while (B == A)
        B = Values[static_cast<size_t>(Rng.nextInRange(
            0, static_cast<std::int64_t>(Values.size()) - 1))];
      Values.push_back(G.addMix("mix" + std::to_string(I),
                                {{A, 1}, {B, Rng.nextInRange(1, 5)}},
                                static_cast<double>(Rng.nextInRange(5, 90))));
    } else if (Kind == 4) {
      NodeId Inc =
          G.addUnary(NodeKind::Incubate, "inc" + std::to_string(I), A);
      G.node(Inc).Params.Seconds =
          static_cast<double>(Rng.nextInRange(30, 300));
      Values.push_back(Inc);
    } else {
      NodeId Sense = G.addUnary(NodeKind::Sense, "s" + std::to_string(I), A);
      G.node(Sense).Params.Flavor = "OD";
      (void)Sense; // Leaves stay leaves.
    }
  }
  return G;
}

} // namespace

class ScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleProperty, Invariants) {
  SplitMix64 Rng(GetParam() * 2654435761u + 5u);
  for (int Case = 0; Case < 20; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(4, 24)));
    ASSERT_TRUE(G.verify().ok());
    ScheduleOptions Opts;
    Opts.Layout.Mixers = static_cast<int>(Rng.nextInRange(1, 3));
    Opts.Layout.Heaters = static_cast<int>(Rng.nextInRange(1, 2));
    Opts.Layout.Sensors = static_cast<int>(Rng.nextInRange(1, 2));
    auto S = scheduleAssay(G, Opts);
    ASSERT_TRUE(S.ok()) << S.message();

    // Every live node scheduled exactly once.
    EXPECT_EQ(S->Ops.size(), static_cast<size_t>(G.numNodes()));

    // Bounds: critical path <= makespan <= serial.
    EXPECT_GE(S->MakespanSeconds, S->CriticalPathSeconds - 1e-9);
    EXPECT_LE(S->MakespanSeconds, S->SerialSeconds + 1e-9);

    // Dependences respected.
    std::map<NodeId, const ScheduledOp *> ByNode;
    for (const ScheduledOp &Op : S->Ops)
      ByNode[Op.Node] = &Op;
    for (EdgeId E : G.liveEdges())
      EXPECT_GE(ByNode[G.edge(E).Dst]->StartSec,
                ByNode[G.edge(E).Src]->EndSec - 1e-9);

    // No unit double-booked.
    for (size_t I = 0; I < S->Ops.size(); ++I)
      for (size_t J = I + 1; J < S->Ops.size(); ++J) {
        const ScheduledOp &A = S->Ops[I], &B = S->Ops[J];
        if (A.UnitKind == LocKind::None || A.UnitKind != B.UnitKind ||
            A.UnitIndex != B.UnitIndex)
          continue;
        EXPECT_TRUE(A.EndSec <= B.StartSec + 1e-9 ||
                    B.EndSec <= A.StartSec + 1e-9);
      }

    // Unit indices within the layout.
    for (const ScheduledOp &Op : S->Ops) {
      if (Op.UnitKind == LocKind::Mixer) {
        EXPECT_LE(Op.UnitIndex, Opts.Layout.Mixers);
      } else if (Op.UnitKind == LocKind::Heater) {
        EXPECT_LE(Op.UnitIndex, Opts.Layout.Heaters);
      } else if (Op.UnitKind == LocKind::Sensor) {
        EXPECT_LE(Op.UnitIndex, Opts.Layout.Sensors);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Range(0, 5));
