//===- AISParserTest.cpp - AIS text parser tests ---------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/AISParser.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/DagSolve.h"
#include "aqua/runtime/Simulator.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::codegen;

TEST(AISParser, ParseLoc) {
  EXPECT_EQ(parseLoc("s4"), (Loc{LocKind::Reservoir, 4, SubPort::None}));
  EXPECT_EQ(parseLoc("ip12"), (Loc{LocKind::InputPort, 12, SubPort::None}));
  EXPECT_EQ(parseLoc("op1"), (Loc{LocKind::OutputPort, 1, SubPort::None}));
  EXPECT_EQ(parseLoc("mixer2"), (Loc{LocKind::Mixer, 2, SubPort::None}));
  EXPECT_EQ(parseLoc("separator2.out1"),
            (Loc{LocKind::Separator, 2, SubPort::Out1}));
  EXPECT_EQ(parseLoc("separator1.matrix"),
            (Loc{LocKind::Separator, 1, SubPort::Matrix}));
  EXPECT_FALSE(parseLoc("bogus9").valid());
  EXPECT_FALSE(parseLoc("s").valid());
  EXPECT_FALSE(parseLoc("separator1.nope").valid());
}

TEST(AISParser, RoundTripsGeneratedPrograms) {
  for (int Which = 0; Which < 3; ++Which) {
    ir::AssayGraph G = Which == 0   ? assays::buildGlucoseAssay()
                       : Which == 1 ? assays::buildGlycomicsAssay()
                                    : assays::buildEnzymeAssay(3);
    auto P = generateAIS(G);
    ASSERT_TRUE(P.ok());
    auto Parsed = parseAIS(P->str());
    ASSERT_TRUE(Parsed.ok()) << Parsed.message();
    ASSERT_EQ(Parsed->Instrs.size(), P->Instrs.size());
    // Re-printing the parsed program reproduces the text exactly.
    EXPECT_EQ(Parsed->str(), P->str());
    EXPECT_EQ(Parsed->UsedReservoirs, P->UsedReservoirs);
    EXPECT_EQ(Parsed->UsedMixers, P->UsedMixers);
  }
}

TEST(AISParser, RoundTripsManagedPrograms) {
  ir::AssayGraph G = assays::buildGlucoseAssay();
  core::DagSolveResult R = core::dagSolve(G, core::MachineSpec{});
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &R.Volumes;
  auto P = generateAIS(G, {}, CG);
  ASSERT_TRUE(P.ok());
  auto Parsed = parseAIS(P->str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.message();
  EXPECT_EQ(Parsed->str(), P->str());

  // A parsed managed program executes on the simulator (no regeneration:
  // parsed instructions carry no DAG provenance).
  runtime::SimOptions SO;
  SO.EnableRegeneration = false;
  runtime::SimResult S = runtime::simulate(*Parsed, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_EQ(S.Senses.size(), 5u);
  EXPECT_EQ(S.UnderflowEvents, 0);
}

TEST(AISParser, CommentsAndBlankLines) {
  auto P = parseAIS(R"(
; a full-line comment
input s1, ip1 ;Glucose

mix mixer1, 10
)");
  ASSERT_TRUE(P.ok()) << P.message();
  ASSERT_EQ(P->Instrs.size(), 2u);
  EXPECT_EQ(P->Instrs[0].Note, "Glucose");
  EXPECT_DOUBLE_EQ(P->Instrs[1].Seconds, 10.0);
}

TEST(AISParser, Diagnostics) {
  struct Case {
    const char *Text;
    const char *Needle;
  };
  Case Cases[] = {
      {"frobnicate s1", "unknown mnemonic"},
      {"input s1", "needs 2 operands"},
      {"move s1, bogus", "malformed source"},
      {"move bogus, s1", "malformed destination"},
      {"mix mixer1, abc", "duration"},
      {"move-abs mixer1, s1", "absolute volume"},
      {"incubate heater1, 37", "unit, temp, duration"},
  };
  for (const Case &C : Cases) {
    auto P = parseAIS(C.Text);
    ASSERT_FALSE(P.ok()) << C.Text;
    EXPECT_NE(P.message().find(C.Needle), std::string::npos)
        << C.Text << " -> " << P.message();
  }
}

TEST(AISParser, FuzzDoesNotCrash) {
  // Byte soup must produce errors, never crashes.
  const char *Soups[] = {
      ",,,,", "move", ";;;;", "input , ,", "mix mixer1,",
      "move-abs s1, s2, 1e309", "sense.OD", "output op1,op1,op1,op1",
      "separate.AF separator1, -5", "s1 s2 s3",
  };
  for (const char *Soup : Soups) {
    auto P = parseAIS(Soup);
    (void)P.ok();
  }
  SUCCEED();
}
