//===- ScheduleTest.cpp - Wet-path scheduler tests -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/Schedule.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;

namespace {

/// No two operations may occupy the same unit instance at once, and every
/// operation must start after its producers end.
void checkScheduleValid(const AssayGraph &G, const Schedule &S) {
  std::map<NodeId, const ScheduledOp *> ByNode;
  for (const ScheduledOp &Op : S.Ops)
    ByNode[Op.Node] = &Op;
  for (EdgeId E : G.liveEdges()) {
    const Edge &Ed = G.edge(E);
    ASSERT_TRUE(ByNode.count(Ed.Src));
    ASSERT_TRUE(ByNode.count(Ed.Dst));
    EXPECT_GE(ByNode[Ed.Dst]->StartSec, ByNode[Ed.Src]->EndSec - 1e-9)
        << G.node(Ed.Dst).Name << " starts before its producer ends";
  }
  for (size_t I = 0; I < S.Ops.size(); ++I)
    for (size_t J = I + 1; J < S.Ops.size(); ++J) {
      const ScheduledOp &A = S.Ops[I], &B = S.Ops[J];
      if (A.UnitKind == LocKind::None || A.UnitKind != B.UnitKind ||
          A.UnitIndex != B.UnitIndex)
        continue;
      bool Disjoint =
          A.EndSec <= B.StartSec + 1e-9 || B.EndSec <= A.StartSec + 1e-9;
      EXPECT_TRUE(Disjoint) << "unit double-booked";
    }
}

} // namespace

TEST(Schedule, ChainIsSequential) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M1 = G.addMix("m1", {{A, 1}, {B, 1}}, 10.0);
  NodeId M2 = G.addMix("m2", {{M1, 1}, {B, 1}}, 10.0);
  G.addUnary(NodeKind::Sense, "s", M2);

  auto S = scheduleAssay(G);
  ASSERT_TRUE(S.ok()) << S.message();
  checkScheduleValid(G, *S);
  // A pure chain cannot beat its critical path, which here is everything
  // but the second (parallel) input fill.
  EXPECT_NEAR(S->MakespanSeconds, S->CriticalPathSeconds, 1e-9);
  EXPECT_LT(S->speedup(), 1.1);
}

TEST(Schedule, IndependentMixesOverlap) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  for (int I = 0; I < 8; ++I) {
    NodeId M = G.addMix("m" + std::to_string(I), {{A, 1}, {B, 1}}, 60.0);
    G.addUnary(NodeKind::Sense, "s" + std::to_string(I), M);
  }
  ScheduleOptions Two;
  Two.Layout.Mixers = 2;
  Two.Layout.Sensors = 2;
  auto S2 = scheduleAssay(G, Two);
  ASSERT_TRUE(S2.ok());
  checkScheduleValid(G, *S2);

  ScheduleOptions One;
  One.Layout.Mixers = 1;
  One.Layout.Sensors = 1;
  auto S1 = scheduleAssay(G, One);
  ASSERT_TRUE(S1.ok());
  checkScheduleValid(G, *S1);

  // Two mixers roughly halve the mixing backlog.
  EXPECT_LT(S2->MakespanSeconds, 0.65 * S1->MakespanSeconds);
  EXPECT_GT(S2->speedup(), S1->speedup());
}

TEST(Schedule, PaperAssaysScheduleValidly) {
  for (int Which = 0; Which < 3; ++Which) {
    AssayGraph G = Which == 0   ? assays::buildGlucoseAssay()
                   : Which == 1 ? assays::buildGlycomicsAssay()
                                : assays::buildEnzymeAssay(3);
    auto S = scheduleAssay(G);
    ASSERT_TRUE(S.ok()) << S.message();
    checkScheduleValid(G, *S);
    EXPECT_GE(S->MakespanSeconds, S->CriticalPathSeconds - 1e-9);
    EXPECT_LE(S->MakespanSeconds, S->SerialSeconds + 1e-9);
    EXPECT_FALSE(S->str(G).empty());
  }
}

TEST(Schedule, EnzymeScalesWithMixers) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  double Last = 1e18;
  for (int Units : {1, 2, 4}) {
    ScheduleOptions Opts;
    Opts.Layout.Mixers = Units;
    Opts.Layout.Heaters = Units;
    Opts.Layout.Sensors = Units;
    auto S = scheduleAssay(G, Opts);
    ASSERT_TRUE(S.ok());
    checkScheduleValid(G, *S);
    EXPECT_LE(S->MakespanSeconds, Last + 1e-9);
    Last = S->MakespanSeconds;
  }
}

TEST(Schedule, MissingUnitKindReported) {
  AssayGraph G = assays::buildGlucoseAssay();
  ScheduleOptions Opts;
  Opts.Layout.Sensors = 0;
  auto S = scheduleAssay(G, Opts);
  ASSERT_FALSE(S.ok());
}
