//===- DmfTest.cpp - Droplet adaptation tests ------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/droplet/Dmf.h"
#include "aqua/droplet/Router.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::droplet;
using namespace aqua::ir;

namespace {

EdgeId findEdge(const AssayGraph &G, NodeId Src, NodeId Dst) {
  for (EdgeId E : G.liveEdges())
    if (G.edge(E).Src == Src && G.edge(E).Dst == Dst)
      return E;
  return -1;
}

} // namespace

TEST(Dmf, Figure2ExactDropletCounts) {
  // The Figure 2 example's Vnorm denominators have lcm 45, so the minimal
  // whole-droplet dispensing is Vnorm * 45 -- an *exact* integer analogue
  // of Figure 5(b).
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DmfSpec Spec;
  Spec.CapacityDroplets = 64;
  auto A = dmfDagSolve(G, Spec);
  ASSERT_TRUE(A.ok()) << A.message();
  EXPECT_TRUE(A->Feasible);
  EXPECT_EQ(A->Scale, 45);
  EXPECT_EQ(A->EdgeDroplets[findEdge(G, N.A, N.K)], 6);  // 2/15 * 45.
  EXPECT_EQ(A->EdgeDroplets[findEdge(G, N.B, N.K)], 24); // 8/15 * 45.
  EXPECT_EQ(A->EdgeDroplets[findEdge(G, N.B, N.L)], 22); // 22/45 * 45.
  EXPECT_EQ(A->EdgeDroplets[findEdge(G, N.C, N.L)], 11);
  EXPECT_EQ(A->NodeDroplets[N.B], 46); // Max site population.
  EXPECT_EQ(A->MaxSiteDroplets, 46);
  EXPECT_EQ(A->MinEdgeDroplets, 6);
}

TEST(Dmf, CapacityBindsFeasibility) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DmfSpec Tight;
  Tight.CapacityDroplets = 45; // Below B's 46 droplets.
  auto A = dmfDagSolve(G, Tight);
  ASSERT_TRUE(A.ok());
  EXPECT_FALSE(A->Feasible);
}

TEST(Dmf, GlucoseIsExact) {
  AssayGraph G = assays::buildGlucoseAssay();
  DmfSpec Spec;
  Spec.CapacityDroplets = 512;
  auto A = dmfDagSolve(G, Spec);
  ASSERT_TRUE(A.ok()) << A.message();
  EXPECT_TRUE(A->Feasible);
  // Reagent's Vnorm is 151/45; denominators lcm is 90; reagent needs
  // 151/45 * 90 = 302 droplets.
  EXPECT_EQ(A->Scale, 90);
  EXPECT_EQ(A->MaxSiteDroplets, 302);
  // Mix ratios are exact: zero rounding error by construction.
  for (NodeId N : G.liveNodes()) {
    if (G.node(N).Kind != NodeKind::Mix)
      continue;
    std::int64_t Total = 0;
    for (EdgeId E : G.inEdges(N))
      Total += A->EdgeDroplets[E];
    for (EdgeId E : G.inEdges(N))
      EXPECT_EQ(Rational(A->EdgeDroplets[E], Total), G.edge(E).Fraction);
  }
}

TEST(Dmf, UnknownVolumeRejected) {
  AssayGraph G = assays::buildGlycomicsAssay();
  auto A = dmfDagSolve(G, DmfSpec{});
  ASSERT_FALSE(A.ok());
  EXPECT_NE(A.message().find("unknown"), std::string::npos);
}

TEST(DmfRouter, Figure2ExecutesOnGrid) {
  AssayGraph G = assays::buildFigure2Example();
  DmfSpec Spec;
  Spec.Width = 16;
  Spec.Height = 16;
  auto A = dmfDagSolve(G, Spec);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(A->Feasible);

  auto Run = executeOnGrid(G, *A, Spec);
  ASSERT_TRUE(Run.ok()) << Run.message();
  EXPECT_TRUE(Run->Completed);
  EXPECT_EQ(Run->Dispenses, 3);
  // Two outputs are leaves with no sense: they are Output-less mixes that
  // stay parked; merges happen for every second+ operand: 4 mixes x 1.
  EXPECT_EQ(Run->Merges, 4);
  EXPECT_GT(Run->Steps, 0);
  EXPECT_GT(Run->PeakDroplets, 2);
}

TEST(DmfRouter, GlucoseExecutesOnGrid) {
  AssayGraph G = assays::buildGlucoseAssay();
  DmfSpec Spec;
  Spec.Width = 20;
  Spec.Height = 20;
  Spec.CapacityDroplets = 512;
  auto A = dmfDagSolve(G, Spec);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(A->Feasible);

  auto Run = executeOnGrid(G, *A, Spec);
  ASSERT_TRUE(Run.ok()) << Run.message();
  EXPECT_EQ(Run->Dispenses, 3);
  EXPECT_EQ(Run->Senses, 5);
  EXPECT_EQ(Run->Merges, 5); // One per two-input mix.
  EXPECT_GT(Run->Steps, 50);
}

TEST(DmfRouter, CascadedMixWithExcessExecutes) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 99}}, 1.0);
  G.addUnary(NodeKind::Sense, "sense_R_1", M);
  ASSERT_TRUE(core::cascadeMix(G, M, 2).ok());

  DmfSpec Spec;
  Spec.Width = 24;
  Spec.Height = 24;
  Spec.CapacityDroplets = 512;
  auto Asg = dmfDagSolve(G, Spec);
  ASSERT_TRUE(Asg.ok()) << Asg.message();
  ASSERT_TRUE(Asg->Feasible);
  auto Run = executeOnGrid(G, *Asg, Spec);
  ASSERT_TRUE(Run.ok()) << Run.message();
  EXPECT_TRUE(Run->Completed);
  EXPECT_GE(Run->Splits, 3); // Operand splits plus the excess discard.
}

TEST(DmfRouter, TinyGridReportsCongestion) {
  AssayGraph G = assays::buildGlucoseAssay();
  DmfSpec Spec;
  Spec.Width = 4;
  Spec.Height = 3;
  Spec.CapacityDroplets = 512;
  auto A = dmfDagSolve(G, Spec);
  ASSERT_TRUE(A.ok());
  auto Run = executeOnGrid(G, *A, Spec);
  EXPECT_FALSE(Run.ok());
}
