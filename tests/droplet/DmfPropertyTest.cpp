//===- DmfPropertyTest.cpp - Droplet assignment invariants -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/droplet/Dmf.h"

#include "aqua/support/Random.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::droplet;
using namespace aqua::ir;

namespace {

AssayGraph randomDag(SplitMix64 &Rng, int Ops) {
  AssayGraph G;
  std::vector<NodeId> Values;
  for (int I = 0; I < 3; ++I)
    Values.push_back(G.addInput("in" + std::to_string(I)));
  for (int I = 0; I < Ops; ++I) {
    NodeId A = Values[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
    NodeId B = A;
    while (B == A)
      B = Values[static_cast<size_t>(
          Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
    Values.push_back(G.addMix("mix" + std::to_string(I),
                              {{A, Rng.nextInRange(1, 7)},
                               {B, Rng.nextInRange(1, 7)}}));
  }
  return G;
}

} // namespace

class DmfProperty : public ::testing::TestWithParam<int> {};

TEST_P(DmfProperty, ExactIntegerInvariants) {
  SplitMix64 Rng(GetParam() * 48271u + 3u);
  DmfSpec Spec;
  Spec.CapacityDroplets = std::int64_t(1) << 40; // Feasibility off the table.
  for (int Case = 0; Case < 15; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(3, 12)));
    auto A = dmfDagSolve(G, Spec);
    ASSERT_TRUE(A.ok()) << A.message();

    for (NodeId N : G.liveNodes()) {
      // Whole droplets everywhere, at least one per transfer.
      EXPECT_GE(A->NodeDroplets[N], 1);
      // Exact flow conservation: a node's droplets equal the sum of its
      // uses (DAGSolve's artificial constraint, now in integers).
      std::vector<EdgeId> Outs = G.outEdges(N);
      if (Outs.empty())
        continue;
      std::int64_t Used = 0;
      for (EdgeId E : Outs)
        Used += A->EdgeDroplets[E];
      EXPECT_EQ(Used, A->NodeDroplets[N]) << G.node(N).Name;
    }
    // Exact mix ratios: droplet fractions equal the assay fractions.
    for (NodeId N : G.liveNodes()) {
      if (G.node(N).Kind != NodeKind::Mix)
        continue;
      std::int64_t Total = 0;
      for (EdgeId E : G.inEdges(N))
        Total += A->EdgeDroplets[E];
      EXPECT_EQ(Total, A->NodeDroplets[N]);
      for (EdgeId E : G.inEdges(N))
        EXPECT_EQ(Rational(A->EdgeDroplets[E], Total), G.edge(E).Fraction);
    }
    // Minimality of the scale: some volume must be odd against any
    // smaller common scale -- equivalently the gcd of all counts at
    // scale s is 1 exactly when s is minimal... check the direct
    // statement: dividing the scale by any prime factor breaks
    // integrality for at least one Vnorm.
    EXPECT_GE(A->Scale, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmfProperty, ::testing::Range(0, 5));
