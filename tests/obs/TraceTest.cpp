//===- TraceTest.cpp - Tracer ring buffer + Chrome-trace export tests -------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Exercises the bounded ring buffer (wraparound keeps the newest window
// and counts, not hides, what it overwrote), the RAII span guard against
// the global tracer, and the trace-event JSON exporter -- including that a
// wrapped ring and hostile event names still serialize to a well-formed
// document chrome://tracing will load.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace aqua::obs;

namespace {

TraceEvent instantAt(std::string Name, std::uint64_t Ts) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = "test";
  E.Phase = 'i';
  E.TsMicros = Ts;
  return E;
}

/// Structural JSON check: braces/brackets balance outside strings, string
/// escapes are sane, and the document is one closed object. Catches the
/// classic exporter bugs (trailing comma damage, unescaped quote in an
/// event name) without a JSON library.
bool wellFormedJson(const std::string &S) {
  std::vector<char> Stack;
  bool InString = false, Escaped = false;
  for (char C : S) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack.push_back(C);
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && !Escaped && Stack.empty();
}

/// Saves and restores the global tracing switch and buffer around a test
/// that records through the global tracer.
class GlobalTracerScope {
public:
  GlobalTracerScope() : WasEnabled(Tracer::enabled()) {
    Tracer::global().clear();
  }
  ~GlobalTracerScope() {
    Tracer::setEnabled(WasEnabled);
    Tracer::global().clear();
  }

private:
  bool WasEnabled;
};

} // namespace

TEST(Trace, CapacityClampedToMinimum) {
  Tracer T(4); // Clamped to 16.
  for (int I = 0; I < 100; ++I)
    T.record(instantAt("e", I));
  EXPECT_EQ(T.size(), 16u);
}

TEST(Trace, RingKeepsEverythingBelowCapacity) {
  Tracer T(16);
  for (int I = 0; I < 10; ++I)
    T.record(instantAt("event-" + std::to_string(I), I));
  EXPECT_EQ(T.size(), 10u);
  EXPECT_EQ(T.recordedCount(), 10u);
  EXPECT_EQ(T.droppedCount(), 0u);
  std::vector<TraceEvent> Events = T.snapshot();
  ASSERT_EQ(Events.size(), 10u);
  EXPECT_EQ(Events.front().Name, "event-0");
  EXPECT_EQ(Events.back().Name, "event-9");
}

TEST(Trace, RingWraparoundKeepsNewestWindow) {
  Tracer T(16);
  for (int I = 0; I < 40; ++I)
    T.record(instantAt("event-" + std::to_string(I), I));
  EXPECT_EQ(T.size(), 16u);
  EXPECT_EQ(T.recordedCount(), 40u);
  EXPECT_EQ(T.droppedCount(), 24u);
  // Snapshot is oldest-first over the surviving window: 24..39.
  std::vector<TraceEvent> Events = T.snapshot();
  ASSERT_EQ(Events.size(), 16u);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Events[I].Name, "event-" + std::to_string(24 + I));
}

TEST(Trace, ClearResetsCounts) {
  Tracer T(16);
  for (int I = 0; I < 40; ++I)
    T.record(instantAt("e", I));
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.recordedCount(), 0u);
  EXPECT_EQ(T.droppedCount(), 0u);
}

TEST(Trace, JsonWellFormedAfterWraparound) {
  Tracer T(16);
  for (int I = 0; I < 40; ++I)
    T.record(instantAt("event-" + std::to_string(I), I));
  std::string Doc = T.json();
  EXPECT_TRUE(wellFormedJson(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("\"aquaDroppedEvents\": 24"), std::string::npos);
  // The overwritten prefix is gone, the surviving window is present.
  EXPECT_EQ(Doc.find("\"event-23\""), std::string::npos);
  EXPECT_NE(Doc.find("\"event-24\""), std::string::npos);
  EXPECT_NE(Doc.find("\"event-39\""), std::string::npos);
}

TEST(Trace, JsonEscapesHostileNames) {
  Tracer T(16);
  T.record(instantAt("quote\" backslash\\ newline\n tab\t ctrl\x01", 0));
  std::string Doc = T.json();
  EXPECT_TRUE(wellFormedJson(Doc)) << Doc;
  EXPECT_NE(Doc.find("quote\\\" backslash\\\\ newline\\n tab\\t"),
            std::string::npos);
  EXPECT_NE(Doc.find("\\u0001"), std::string::npos);
}

TEST(Trace, CompleteEventCarriesVirtualTimeTrack) {
  // The simulator records instruction timelines as complete events on the
  // simulated-clock track (pid 2) with tid = regeneration depth.
  Tracer T(16);
  T.complete("mix", "sim", 1000, 250, PidSimulated, 3);
  std::vector<TraceEvent> Events = T.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Phase, 'X');
  EXPECT_EQ(Events[0].TsMicros, 1000u);
  EXPECT_EQ(Events[0].DurMicros, 250u);
  EXPECT_EQ(Events[0].Pid, static_cast<std::uint32_t>(PidSimulated));
  EXPECT_EQ(Events[0].Tid, 3u);
  std::string Doc = T.json();
  EXPECT_NE(Doc.find("\"dur\": 250"), std::string::npos);
  EXPECT_NE(Doc.find("\"pid\": 2"), std::string::npos);
}

TEST(Trace, SpanGuardRecordsNestedSpans) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(true);
  {
    AQUA_TRACE_SPAN("outer", "test");
    { AQUA_TRACE_SPAN("inner", "test"); }
  }
  Tracer::setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::global().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  // Destructor order: inner closes (and records) first.
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[1].Name, "outer");
  EXPECT_EQ(Events[0].Phase, 'X');
  EXPECT_EQ(Events[1].Phase, 'X');
  // The outer span's interval encloses the inner's (flame-graph nesting).
  EXPECT_LE(Events[1].TsMicros, Events[0].TsMicros);
  EXPECT_GE(Events[1].TsMicros + Events[1].DurMicros,
            Events[0].TsMicros + Events[0].DurMicros);
  EXPECT_EQ(Events[0].Tid, Events[1].Tid);
}

TEST(Trace, DisabledSpanRecordsNothing) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(false);
  { AQUA_TRACE_SPAN("silent", "test"); }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Trace, SpanStraddlingEnableRecordsNothing) {
  // A guard constructed while tracing was off stays silent even if tracing
  // turns on before it closes -- a half-open span would lie about timing.
  GlobalTracerScope Scope;
  Tracer::setEnabled(false);
  {
    AQUA_TRACE_SPAN("straddler", "test");
    Tracer::setEnabled(true);
  }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Trace, WriteChromeTraceRoundTrip) {
  Tracer T(16);
  T.complete("phase", "test", 10, 5, PidPipeline, 1);
  std::string Path =
      testing::TempDir() + "/aqua_trace_roundtrip.json";
  ASSERT_TRUE(T.writeChromeTrace(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), T.json());
  EXPECT_TRUE(wellFormedJson(Buf.str()));
  std::remove(Path.c_str());
}

TEST(Trace, WriteChromeTraceBadPathFails) {
  Tracer T(16);
  EXPECT_FALSE(T.writeChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(Trace, SpanArgsExportUnderArgsKey) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(true);
  {
    SpanGuard Span("argspan", "test");
    Span.arg("rows", static_cast<std::uint64_t>(42));
    Span.arg("status", std::string("optimal"));
  }
  Tracer::setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::global().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  ASSERT_EQ(Events[0].Args.size(), 2u);
  EXPECT_EQ(Events[0].Args[0].Key, "rows");
  EXPECT_EQ(Events[0].Args[0].Val, "42");
  EXPECT_EQ(Events[0].Args[1].Key, "status");
  EXPECT_EQ(Events[0].Args[1].Val, "optimal");
  std::string Doc = Tracer::global().json();
  EXPECT_TRUE(wellFormedJson(Doc)) << Doc;
  EXPECT_NE(
      Doc.find("\"args\": {\"rows\": \"42\", \"status\": \"optimal\"}"),
      std::string::npos)
      << Doc;
}

TEST(Trace, DisabledSpanDropsArgs) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(false);
  {
    SpanGuard Span("silent", "test");
    Span.arg("k", std::string("v"));
  }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Trace, RequestScopeTagsSpansWithTraceId) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(true);
  {
    RequestScope Request(0xabcdef);
    AQUA_TRACE_SPAN("served", "test");
  }
  { AQUA_TRACE_SPAN("outside", "test"); }
  Tracer::setEnabled(false);
  std::vector<TraceEvent> Events = Tracer::global().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  ASSERT_EQ(Events[0].Args.size(), 1u);
  EXPECT_EQ(Events[0].Args[0].Key, "trace");
  EXPECT_EQ(Events[0].Args[0].Val, "0xabcdef");
  // Outside any scope there is no trace arg.
  EXPECT_TRUE(Events[1].Args.empty());
}

TEST(Trace, RequestScopeNestsAndRestores) {
  GlobalTracerScope Scope;
  EXPECT_EQ(currentTraceId(), 0u);
  {
    RequestScope Outer(7);
    EXPECT_EQ(currentTraceId(), 7u);
    {
      RequestScope Inner(9);
      EXPECT_EQ(currentTraceId(), 9u);
      // Id 0 is a no-op scope, not a reset.
      RequestScope Noop(0);
      EXPECT_EQ(currentTraceId(), 9u);
    }
    EXPECT_EQ(currentTraceId(), 7u);
  }
  EXPECT_EQ(currentTraceId(), 0u);
}

TEST(Trace, NewTraceIdsAreDistinctAndNonZero) {
  std::uint64_t A = newTraceId(), B = newTraceId();
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
}

TEST(Trace, DispatchFlowIdDeterministicPerWorkerSlot) {
  std::uint64_t Seed = 0x1234;
  EXPECT_EQ(dispatchFlowId(Seed, 1, 2), dispatchFlowId(Seed, 1, 2));
  EXPECT_NE(dispatchFlowId(Seed, 1, 2), dispatchFlowId(Seed, 2, 1));
  EXPECT_NE(dispatchFlowId(Seed, 0, 0), 0u);
  EXPECT_EQ(dispatchFlowId(Seed, 0, 0) & 1, 1u);
}

TEST(Trace, FlowEventsExportWithIdAndBinding) {
  GlobalTracerScope Scope;
  Tracer::setEnabled(true);
  {
    AQUA_TRACE_SPAN("submit", "test");
    traceFlowBegin("req", 0xbeef);
  }
  {
    AQUA_TRACE_SPAN("serve", "test");
    traceFlowEnd("req", 0xbeef);
  }
  Tracer::setEnabled(false);
  std::string Doc = Tracer::global().json();
  EXPECT_TRUE(wellFormedJson(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"ph\": \"s\", \"ts\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"id\": \"0xbeef\""), std::string::npos) << Doc;
  // The 'f' end binds to the enclosing slice so the arrow lands on it.
  EXPECT_NE(Doc.find("\"ph\": \"f\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"bp\": \"e\""), std::string::npos) << Doc;
}

TEST(Trace, RingMetricsCountRecordedAndDropped) {
  GlobalTracerScope Scope;
  auto &Recorded = aqua::obs::metrics().counter("obs.trace.recorded");
  auto &Dropped = aqua::obs::metrics().counter("obs.trace.dropped");
  std::uint64_t RecordedBefore = Recorded.value();
  std::uint64_t DroppedBefore = Dropped.value();
  Tracer::setEnabled(true);
  // The global ring is large; drive a small private count through it and
  // check the global instruments moved by exactly that much (drops only
  // come from the global ring, which this test does not wrap).
  for (int I = 0; I < 25; ++I)
    Tracer::global().record(instantAt("m", I));
  Tracer::setEnabled(false);
  EXPECT_EQ(Recorded.value() - RecordedBefore, 25u);
  EXPECT_EQ(Dropped.value(), DroppedBefore);
  // Occupancy gauge tracks the ring size.
  EXPECT_GE(aqua::obs::metrics().gauge("obs.trace.ring_occupancy").value(),
            25.0);
}
