//===- FlightRecorderTest.cpp - Request-digest ring tests -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The flight recorder is the "what happened to the last N requests" ring:
// it must keep the newest window under overwrite (counting, not hiding,
// what it dropped), attribute shed causes, and dump a parseable
// aqua.flight.v1 document.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/FlightRecorder.h"
#include "aqua/support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace aqua;
using namespace aqua::obs;

namespace {

RequestDigest digest(std::uint64_t Trace, std::string Name,
                     RequestOutcome Outcome = RequestOutcome::Miss,
                     ShedCause Cause = ShedCause::None) {
  RequestDigest D;
  D.TraceId = Trace;
  D.Name = std::move(Name);
  D.Outcome = Outcome;
  D.Cause = Cause;
  D.Ok = Outcome != RequestOutcome::Shed;
  return D;
}

} // namespace

TEST(FlightRecorder, KeepsEverythingBelowCapacity) {
  FlightRecorder R(16);
  for (int I = 0; I < 10; ++I)
    R.record(digest(I + 1, "req" + std::to_string(I)));
  EXPECT_EQ(R.size(), 10u);
  EXPECT_EQ(R.recordedCount(), 10u);
  EXPECT_EQ(R.droppedCount(), 0u);
  std::vector<RequestDigest> D = R.snapshot();
  ASSERT_EQ(D.size(), 10u);
  EXPECT_EQ(D.front().Name, "req0");
  EXPECT_EQ(D.back().Name, "req9");
}

TEST(FlightRecorder, WraparoundKeepsNewestOldestFirst) {
  // Capacity clamps at 8 minimum; 20 records overwrite the first 12.
  FlightRecorder R(8);
  for (int I = 0; I < 20; ++I)
    R.record(digest(I + 1, "req" + std::to_string(I)));
  EXPECT_EQ(R.size(), 8u);
  EXPECT_EQ(R.recordedCount(), 20u);
  EXPECT_EQ(R.droppedCount(), 12u);
  std::vector<RequestDigest> D = R.snapshot();
  ASSERT_EQ(D.size(), 8u);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(D[I].Name, "req" + std::to_string(12 + I));
}

TEST(FlightRecorder, ShedCauseAttribution) {
  FlightRecorder R(16);
  R.record(digest(1, "ok", RequestOutcome::Hit));
  R.record(digest(2, "bounced", RequestOutcome::Shed, ShedCause::QueueFull));
  R.record(
      digest(3, "late", RequestOutcome::Shed, ShedCause::DeadlineExpired));
  std::vector<RequestDigest> D = R.snapshot();
  ASSERT_EQ(D.size(), 3u);
  EXPECT_EQ(D[0].Cause, ShedCause::None);
  EXPECT_TRUE(D[0].Ok);
  EXPECT_EQ(D[1].Cause, ShedCause::QueueFull);
  EXPECT_FALSE(D[1].Ok);
  EXPECT_EQ(D[2].Cause, ShedCause::DeadlineExpired);

  EXPECT_STREQ(shedCauseName(ShedCause::QueueFull), "queue_full");
  EXPECT_STREQ(shedCauseName(ShedCause::DeadlineExpired), "deadline");
  EXPECT_STREQ(requestOutcomeName(RequestOutcome::Shed), "shed");
}

TEST(FlightRecorder, JsonParsesAndCarriesDigests) {
  FlightRecorder R(8);
  for (int I = 0; I < 11; ++I)
    R.record(digest(0x1000 + I, "req" + std::to_string(I),
                    I % 2 ? RequestOutcome::Hit : RequestOutcome::Miss));
  R.record(digest(0xbad, "shedded", RequestOutcome::Shed,
                  ShedCause::QueueFull));

  auto Doc = json::parse(R.json());
  ASSERT_TRUE(Doc.ok()) << Doc.message();
  EXPECT_EQ(Doc->strOr("schema", ""), "aqua.flight.v1");
  EXPECT_EQ(Doc->numberOr("recorded", 0), 12.0);
  EXPECT_EQ(Doc->numberOr("dropped", 0), 4.0);
  const json::Value *Digests = Doc->find("digests");
  ASSERT_NE(Digests, nullptr);
  ASSERT_EQ(Digests->array().size(), 8u);
  const json::Value &Last = Digests->array().back();
  EXPECT_EQ(Last.strOr("name", ""), "shedded");
  EXPECT_EQ(Last.strOr("outcome", ""), "shed");
  EXPECT_EQ(Last.strOr("cause", ""), "queue_full");
  EXPECT_EQ(Last.strOr("trace", ""), "0xbad");
}

TEST(FlightRecorder, ClearResetsCounts) {
  FlightRecorder R(8);
  for (int I = 0; I < 20; ++I)
    R.record(digest(I + 1, "r"));
  R.clear();
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.recordedCount(), 0u);
  EXPECT_EQ(R.droppedCount(), 0u);
  auto Doc = json::parse(R.json());
  ASSERT_TRUE(Doc.ok());
  EXPECT_TRUE(Doc->find("digests")->array().empty());
}
