//===- LogTest.cpp - Leveled logging tests ----------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Log.h"

#include "aqua/obs/Metrics.h"

#include <gtest/gtest.h>

using namespace aqua::obs;

namespace {

/// Saves and restores the global log threshold around a test.
class LogLevelScope {
public:
  LogLevelScope() : Saved(logLevel()) {}
  ~LogLevelScope() { setLogLevel(Saved); }

private:
  LogLevel Saved;
};

std::uint64_t levelCount(const char *Name) {
  return metrics().counter(Name).value();
}

} // namespace

TEST(Log, LevelNamesRoundTrip) {
  for (LogLevel L : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off})
    EXPECT_EQ(parseLogLevel(logLevelName(L)), L);
}

TEST(Log, ParseFallsBackOnUnknown) {
  EXPECT_EQ(parseLogLevel("verbose"), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel(""), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel(nullptr), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("WARN"), LogLevel::Warn); // Case-sensitive.
  EXPECT_EQ(parseLogLevel("nope", LogLevel::Off), LogLevel::Off);
}

TEST(Log, ThresholdFiltersBelow) {
  LogLevelScope Scope;
  setLogLevel(LogLevel::Warn);
  EXPECT_FALSE(logEnabled(LogLevel::Debug));
  EXPECT_FALSE(logEnabled(LogLevel::Info));
  EXPECT_TRUE(logEnabled(LogLevel::Warn));
  EXPECT_TRUE(logEnabled(LogLevel::Error));
  setLogLevel(LogLevel::Off);
  EXPECT_FALSE(logEnabled(LogLevel::Error));
}

TEST(Log, MacroSkipsFormattingWhenDisabled) {
  LogLevelScope Scope;
  setLogLevel(LogLevel::Error);
  bool Evaluated = false;
  auto Touch = [&Evaluated] {
    Evaluated = true;
    return 1;
  };
  AQUA_LOG_DEBUG("test", "never formatted %d", Touch());
  EXPECT_FALSE(Evaluated);
  AQUA_LOG_ERROR("test", "formatted %d", Touch());
  EXPECT_TRUE(Evaluated);
}

TEST(Log, EmittedLinesBumpLevelCounters) {
  LogLevelScope Scope;
  setLogLevel(LogLevel::Debug);
  std::uint64_t DebugBefore = levelCount("obs.log.debug");
  std::uint64_t WarnBefore = levelCount("obs.log.warn");
  AQUA_LOG_DEBUG("test", "counted debug line");
  AQUA_LOG_WARN("test", "counted warn line");
  EXPECT_EQ(levelCount("obs.log.debug"), DebugBefore + 1);
  EXPECT_EQ(levelCount("obs.log.warn"), WarnBefore + 1);

  // A filtered line bumps nothing.
  setLogLevel(LogLevel::Off);
  std::uint64_t ErrorBefore = levelCount("obs.log.error");
  AQUA_LOG_ERROR("test", "filtered error line");
  EXPECT_EQ(levelCount("obs.log.error"), ErrorBefore);
}

TEST(Log, RacedMessageCountsAsSuppressed) {
  // logMessage re-checks the threshold: a message that passed the macro's
  // guard but lost a race with setLogLevel is counted, not emitted.
  LogLevelScope Scope;
  setLogLevel(LogLevel::Off);
  std::uint64_t Before = levelCount("obs.log.suppressed");
  logMessage(LogLevel::Warn, "test", "raced");
  EXPECT_EQ(levelCount("obs.log.suppressed"), Before + 1);
}
