//===- TraceMergeTest.cpp - Cross-process shard stitching tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// mergeShards is the offline half of the cross-process tracing story: it
// takes the per-process shard documents a multi-process run wrote (here
// built in memory from private Tracer instances -- no filesystem) and
// must re-anchor each shard's private steady-clock onto one shared
// timeline, give every (process, track) pair its own Chrome pid, and pass
// flow ids through untouched so parent/worker arcs still bind.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Trace.h"
#include "aqua/obs/TraceMerge.h"
#include "aqua/support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace aqua;
using namespace aqua::obs;

namespace {

TraceEvent instantAt(std::string Name, std::uint64_t Ts) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = "test";
  E.Phase = 'i';
  E.TsMicros = Ts;
  return E;
}

/// The merged document's non-metadata events, in document order.
std::vector<json::Value> mergedEvents(const std::string &Doc) {
  auto Parsed = json::parse(Doc);
  EXPECT_TRUE(Parsed.ok()) << Parsed.message();
  std::vector<json::Value> Out;
  if (!Parsed.ok())
    return Out;
  const json::Value *Events = Parsed->find("traceEvents");
  EXPECT_NE(Events, nullptr);
  if (!Events)
    return Out;
  for (const json::Value &E : Events->array())
    if (E.strOr("ph", "") != "M")
      Out.push_back(E);
  return Out;
}

} // namespace

TEST(TraceMerge, ReanchorsTwoShardsOntoOneMonotoneTimeline) {
  // Shard A's epoch is 500 us earlier than B's: B's local ts 5 really
  // happened *after* A's local ts 100.
  Tracer A(64), B(64);
  A.record(instantAt("a-early", 10));
  A.record(instantAt("a-late", 100));
  B.record(instantAt("b-early", 5));
  B.record(instantAt("b-late", 40));
  std::vector<std::string> Docs = {A.shardJson(100, 1000000),
                                   B.shardJson(200, 1000500)};
  auto Merged = mergeShards(Docs);
  ASSERT_TRUE(Merged.ok()) << Merged.message();
  EXPECT_EQ(Merged->ShardCount, 2u);
  EXPECT_EQ(Merged->EventCount, 4u);

  std::vector<json::Value> Events = mergedEvents(Merged->Json);
  ASSERT_EQ(Events.size(), 4u);
  // Re-anchored: A keeps its ts (earliest epoch), B shifts by +500; the
  // merged stream is sorted, interleaving the two processes correctly.
  std::vector<std::pair<std::string, double>> Expect = {
      {"a-early", 10}, {"a-late", 100}, {"b-early", 505}, {"b-late", 540}};
  double PrevTs = -1;
  for (std::size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Events[I].strOr("name", ""), Expect[I].first);
    EXPECT_EQ(Events[I].numberOr("ts", -1), Expect[I].second);
    EXPECT_GE(Events[I].numberOr("ts", -1), PrevTs) << "timeline not monotone";
    PrevTs = Events[I].numberOr("ts", -1);
  }
}

TEST(TraceMerge, RemapsTracksToPerProcessPids) {
  Tracer A(64);
  TraceEvent Pipeline = instantAt("on-pipeline", 1); // track 1
  TraceEvent Fleet = instantAt("on-fleet", 2);
  Fleet.Pid = PidFleet; // track 3
  A.record(Pipeline);
  A.record(Fleet);
  auto Merged = mergeShards({A.shardJson(4711, 0)});
  ASSERT_TRUE(Merged.ok()) << Merged.message();

  auto Parsed = json::parse(Merged->Json);
  ASSERT_TRUE(Parsed.ok());
  // pid = OsPid * 4 + (track - 1): pipeline keeps slot 0, fleet slot 2.
  std::vector<json::Value> Events = mergedEvents(Merged->Json);
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].numberOr("pid", -1), 4711 * 4 + 0);
  EXPECT_EQ(Events[1].numberOr("pid", -1), 4711 * 4 + 2);
  // And each used (process, track) pair gets a named metadata record.
  EXPECT_NE(Merged->Json.find("pid 4711"), std::string::npos);
}

TEST(TraceMerge, FlowIdsPassThroughAcrossShards) {
  Tracer Parent(64), Worker(64);
  Parent.flowBegin("dispatch", 0xdeadbeef, "test");
  Worker.flowEnd("dispatch", 0xdeadbeef, "test");
  auto Merged =
      mergeShards({Parent.shardJson(1, 0), Worker.shardJson(2, 100)});
  ASSERT_TRUE(Merged.ok()) << Merged.message();

  std::vector<json::Value> Events = mergedEvents(Merged->Json);
  ASSERT_EQ(Events.size(), 2u);
  const json::Value *S = nullptr, *F = nullptr;
  for (const json::Value &E : Events) {
    if (E.strOr("ph", "") == "s")
      S = &E;
    if (E.strOr("ph", "") == "f")
      F = &E;
  }
  ASSERT_NE(S, nullptr);
  ASSERT_NE(F, nullptr);
  // Same binding id on both sides, different merged process tracks: the
  // arc crosses processes.
  EXPECT_EQ(S->strOr("id", "s"), F->strOr("id", "f"));
  EXPECT_NE(S->numberOr("pid", -1), F->numberOr("pid", -1));
}

TEST(TraceMerge, SumsDroppedEventsAcrossShards) {
  // Capacity clamps to 16; 20 records overwrite 4.
  Tracer A(16), B(16);
  for (int I = 0; I < 20; ++I)
    A.record(instantAt("a", I));
  for (int I = 0; I < 21; ++I)
    B.record(instantAt("b", I));
  auto Merged = mergeShards({A.shardJson(1, 0), B.shardJson(2, 0)});
  ASSERT_TRUE(Merged.ok()) << Merged.message();
  EXPECT_EQ(Merged->DroppedEvents, 9u);
  EXPECT_NE(Merged->Json.find("\"droppedEvents\": 9"), std::string::npos);
}

TEST(TraceMerge, RejectsGarbageDocument) {
  auto Merged = mergeShards({"this is not json"});
  EXPECT_FALSE(Merged.ok());
}

TEST(TraceMerge, RejectsShardWithoutHeader) {
  // A well-formed Chrome trace that is not a shard (no aquaShard header).
  Tracer A(64);
  A.record(instantAt("x", 1));
  auto Merged = mergeShards({A.json()});
  EXPECT_FALSE(Merged.ok());
}

TEST(TraceMerge, RejectsEmptyInput) {
  auto Merged = mergeShards({});
  EXPECT_FALSE(Merged.ok());
}

TEST(TraceMerge, ListShardPathsFailsOnMissingDir) {
  auto Paths = listShardPaths("/nonexistent-dir-for-aqua-test");
  EXPECT_FALSE(Paths.ok());
}
