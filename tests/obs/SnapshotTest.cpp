//===- SnapshotTest.cpp - Live metrics snapshot writer tests --------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The snapshot protocol's one hard promise is atomicity: a reader
// (aquatop) re-reading DIR/metrics.snap-<pid>.json at any moment sees
// either the previous complete document or the next complete document --
// never a torn mix -- because every write goes to a unique temp file and
// is renamed into place. The concurrency test here drives a writer as
// fast as it can against a reader parsing in a loop.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Snapshot.h"
#include "aqua/support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

using namespace aqua;
using namespace aqua::obs;

namespace {

std::string makeDir(const char *Name) {
  std::string Dir = testing::TempDir() + Name;
  std::remove(Dir.c_str());
  mkdir(Dir.c_str(), 0755);
  return Dir;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

TEST(Snapshot, WrapperCarriesSchemaPidSeqAndMetrics) {
  std::string Dir = makeDir("aqua_snap_basic");
  metrics().counter("test.snapshot.basic").add(3);
  ASSERT_TRUE(writeMetricsSnapshot(Dir, 42));

  std::string Doc;
  ASSERT_TRUE(readFile(metricsSnapshotPath(Dir), Doc));
  auto Parsed = json::parse(Doc);
  ASSERT_TRUE(Parsed.ok()) << Parsed.message();
  EXPECT_EQ(Parsed->strOr("schema", ""), "aqua.metrics.snap.v1");
  EXPECT_EQ(Parsed->numberOr("pid", -1),
            static_cast<double>(getpid()));
  EXPECT_EQ(Parsed->numberOr("seq", -1), 42.0);
  EXPECT_GT(Parsed->numberOr("wallMicros", 0), 0.0);
  const json::Value *Metrics = Parsed->find("metrics");
  ASSERT_NE(Metrics, nullptr);
  EXPECT_EQ(Metrics->strOr("schema", ""), "aqua.metrics.v1");
  const json::Value *Counters = Metrics->find("counters");
  ASSERT_NE(Counters, nullptr);
  const json::Value *C = Counters->find("test.snapshot.basic");
  ASSERT_NE(C, nullptr);
  EXPECT_GE(C->u64(), 3u);
}

TEST(Snapshot, WriteFailsIntoMissingDir) {
  EXPECT_FALSE(writeMetricsSnapshot("/nonexistent-dir-for-aqua-test", 0));
}

TEST(Snapshot, ConcurrentReaderNeverSeesTornDocument) {
  std::string Dir = makeDir("aqua_snap_race");
  Counter &C = metrics().counter("test.snapshot.race");
  ASSERT_TRUE(writeMetricsSnapshot(Dir, 0)); // Seed so the reader has a file.

  std::atomic<bool> Stop{false};
  std::atomic<int> Torn{0}, Parses{0};
  std::thread Reader([&] {
    std::string Path = metricsSnapshotPath(Dir);
    while (!Stop.load(std::memory_order_relaxed)) {
      std::string Doc;
      if (!readFile(Path, Doc))
        continue; // Mid-rename window on some filesystems; not a tear.
      auto Parsed = json::parse(Doc);
      if (!Parsed.ok() ||
          Parsed->strOr("schema", "") != "aqua.metrics.snap.v1")
        Torn.fetch_add(1);
      else
        Parses.fetch_add(1);
    }
  });
  // Writer: as fast as possible, mutating a counter so the payload keeps
  // changing size and content.
  for (int I = 1; I <= 200; ++I) {
    C.add(I);
    ASSERT_TRUE(writeMetricsSnapshot(Dir, I));
  }
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(Torn.load(), 0);
  EXPECT_GT(Parses.load(), 0);
}

TEST(Snapshot, WriterThreadWritesAndFinalFlushesOnStop) {
  std::string Dir = makeDir("aqua_snap_writer");
  SnapshotWriter Writer(Dir, /*IntervalMs=*/5);
  Writer.start();
  // The first write happens immediately on start; wait for it.
  for (int I = 0; I < 200 && Writer.writes() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(Writer.writes(), 0u);
  Writer.stop();
  std::uint64_t AfterStop = Writer.writes();
  EXPECT_GT(AfterStop, 1u); // Stop adds a final flush.

  std::string Doc;
  ASSERT_TRUE(readFile(metricsSnapshotPath(Dir), Doc));
  auto Parsed = json::parse(Doc);
  ASSERT_TRUE(Parsed.ok()) << Parsed.message();
  // The file on disk is the final flush: its seq is the last one written.
  EXPECT_EQ(Parsed->numberOr("seq", 0), static_cast<double>(AfterStop - 1));

  // Stopping twice is harmless; a stopped writer writes no more.
  Writer.stop();
  EXPECT_EQ(Writer.writes(), AfterStop);
}
