//===- MetricsTest.cpp - MetricsRegistry unit + concurrency tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the three metric kinds and the registry itself:
//
//  * exactness of counters and histograms under concurrent recording (the
//    relaxed-atomic contract; CI's thread-sanitizer job builds this file
//    under TSan, so any data race on the record path fails there), and
//
//  * the pre-registered pipeline schema, locked against a golden file so a
//    renamed or dropped metric shows up as a readable diff. Regenerate
//    after an intentional schema change with:
//
//      AQUA_UPDATE_GOLDENS=1 ctest --test-dir build -R Metrics
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace aqua::obs;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(AQUA_GOLDEN_DIR) + "/" + Name;
}

/// Compares \p Actual against the golden file, or rewrites the golden when
/// AQUA_UPDATE_GOLDENS is set in the environment.
void checkGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("AQUA_UPDATE_GOLDENS")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write golden " << Path;
    Out << Actual;
    GTEST_SKIP() << "golden " << Name << " updated";
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path
                  << " (run once with AQUA_UPDATE_GOLDENS=1 to create it)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "metrics schema diverged from " << Path
      << "; if the change is intentional, regenerate with "
         "AQUA_UPDATE_GOLDENS=1";
}

} // namespace

TEST(Metrics, CounterBasics) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  EXPECT_EQ(G.value(), 3.5);
  G.add(1.25);
  G.add(-0.75);
  EXPECT_EQ(G.value(), 4.0);
  G.reset();
  EXPECT_EQ(G.value(), 0.0);
}

TEST(Metrics, HistogramBucketEdges) {
  // Bounds are inclusive upper edges ("le" in the export): an observation
  // equal to a bound lands in that bound's bucket, not the next one.
  Histogram H({1.0, 2.0, 4.0});
  H.observe(0.5); // bucket 0 (le 1)
  H.observe(1.0); // bucket 0 (le 1), boundary
  H.observe(1.5); // bucket 1 (le 2)
  H.observe(4.0); // bucket 2 (le 4), boundary
  H.observe(9.0); // bucket 3 (+inf)
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.sum(), 16.0);
}

TEST(Metrics, HistogramDefaultBounds) {
  // Registering with no bounds gets the latency defaults.
  Histogram H({});
  EXPECT_EQ(H.bounds(), defaultLatencyBucketsSec());
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry R;
  Counter &A = R.counter("x.count");
  Counter &B = R.counter("x.count");
  EXPECT_EQ(&A, &B);
  Gauge &GA = R.gauge("x.level");
  Gauge &GB = R.gauge("x.level");
  EXPECT_EQ(&GA, &GB);
  // A histogram's bounds are fixed by whoever registers it first.
  Histogram &HA = R.histogram("x.hist", {1.0, 2.0});
  Histogram &HB = R.histogram("x.hist", {99.0});
  EXPECT_EQ(&HA, &HB);
  EXPECT_EQ(HB.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry R;
  R.counter("a").add(7);
  R.gauge("b").set(2.5);
  R.histogram("c", {1.0}).observe(0.5);
  R.reset();
  EXPECT_EQ(R.counter("a").value(), 0u);
  EXPECT_EQ(R.gauge("b").value(), 0.0);
  EXPECT_EQ(R.histogram("c").count(), 0u);
  // Registrations survived: counterValues still lists "a".
  auto Values = R.counterValues();
  ASSERT_EQ(Values.size(), 1u);
  EXPECT_EQ(Values.count("a"), 1u);
}

TEST(Metrics, ConcurrentCountersExact) {
  // The TSan target: N threads hammering one shared counter plus their own
  // private counter through the registry. Totals must be exact -- relaxed
  // atomic RMWs lose nothing.
  MetricsRegistry R;
  constexpr int Threads = 8;
  constexpr int PerThread = 50000;
  Counter &Shared = R.counter("hammer.shared");
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&R, &Shared, T] {
      Counter &Mine = R.counter("hammer.t" + std::to_string(T));
      for (int I = 0; I < PerThread; ++I) {
        Shared.add();
        Mine.add();
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Shared.value(),
            static_cast<std::uint64_t>(Threads) * PerThread);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(R.counter("hammer.t" + std::to_string(T)).value(),
              static_cast<std::uint64_t>(PerThread));
}

TEST(Metrics, ConcurrentHistogramExact) {
  // Count, sum, and the bucket tallies are each exact under concurrency
  // (integer-valued observations keep the CAS-looped double sum exact too).
  MetricsRegistry R;
  constexpr int Threads = 8;
  constexpr int PerThread = 20000;
  Histogram &H = R.histogram("hammer.hist", {0.0, 1.0});
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&H] {
      for (int I = 0; I < PerThread; ++I)
        H.observe(1.0);
    });
  for (std::thread &T : Pool)
    T.join();
  const std::uint64_t Total =
      static_cast<std::uint64_t>(Threads) * PerThread;
  EXPECT_EQ(H.count(), Total);
  EXPECT_DOUBLE_EQ(H.sum(), static_cast<double>(Total));
  EXPECT_EQ(H.bucketCount(0), 0u);
  EXPECT_EQ(H.bucketCount(1), Total); // 1.0 <= le 1.0
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(Metrics, CounterValuesSnapshot) {
  MetricsRegistry R;
  R.counter("b").add(2);
  R.counter("a").add(1);
  auto Values = R.counterValues();
  ASSERT_EQ(Values.size(), 2u);
  EXPECT_EQ(Values["a"], 1u);
  EXPECT_EQ(Values["b"], 2u);
  EXPECT_EQ(Values.begin()->first, "a"); // Sorted by name.
}

TEST(Metrics, JsonCarriesAllThreeKinds) {
  MetricsRegistry R;
  R.counter("events").add(3);
  R.gauge("depth").set(1.5);
  R.histogram("lat", {1.0}).observe(0.5);
  std::string Doc = R.json();
  EXPECT_NE(Doc.find("\"schema\": \"aqua.metrics.v1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(Doc.find("\"depth\": 1.5"), std::string::npos);
  EXPECT_NE(Doc.find("\"le\": \"inf\""), std::string::npos);
}

TEST(Metrics, GoldenPipelineSchema) {
  // A fresh registry with the documented pipeline names, all zero: the
  // golden locks the full exported schema, so renaming or dropping any
  // instrumented metric (or perturbing the JSON shape) diffs here.
  MetricsRegistry R;
  preregisterPipelineMetrics(R);
  checkGolden("metrics_schema.json", R.json());
}
