//===- FleetTest.cpp - Fleet simulation tests ------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/Fleet.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/runtime/PartitionExecutor.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;
using namespace aqua::vm;

namespace {

/// A chip with online re-management off must reproduce
/// runtime::executePartitioned bit for bit.
void expectChipMatchesExecutor(const ChipResult &Chip,
                               const PartitionRunResult &Ref) {
  EXPECT_EQ(Chip.Completed, Ref.Completed);
  EXPECT_EQ(Chip.Error, Ref.Error);
  EXPECT_EQ(Chip.PartitionsExecuted, Ref.PartitionsExecuted);
  EXPECT_EQ(Chip.FluidSeconds, Ref.FluidSeconds);
  EXPECT_EQ(Chip.Regenerations, Ref.Regenerations);
  EXPECT_EQ(Chip.MeasuredNl, Ref.MeasuredNl);
  EXPECT_EQ(Chip.Volumes.NodeVolumeNl, Ref.Volumes.NodeVolumeNl);
  EXPECT_EQ(Chip.Volumes.EdgeVolumeNl, Ref.Volumes.EdgeVolumeNl);
  ASSERT_EQ(Chip.Senses.size(), Ref.Senses.size());
  for (std::size_t I = 0; I < Ref.Senses.size(); ++I) {
    EXPECT_EQ(Chip.Senses[I].Name, Ref.Senses[I].Name);
    EXPECT_EQ(Chip.Senses[I].VolumeNl, Ref.Senses[I].VolumeNl);
    EXPECT_EQ(Chip.Senses[I].Composition, Ref.Senses[I].Composition);
  }
}

} // namespace

TEST(Fleet, GlycomicsChipMatchesExecutePartitionedFixedYield) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok()) << Img.message();
  ASSERT_EQ(Img->Segments.size(), 4u);

  SimOptions SO;
  SO.FixedSeparationYield = 0.5;
  PartitionRunResult Ref = executePartitioned(Img->Plan, SO);
  ASSERT_TRUE(Ref.Completed) << Ref.Error;

  FleetOptions FO;
  FO.EnableOnlineRemanage = false;
  FO.FixedSeparationYield = 0.5;
  ChipResult Chip = runChip(*Img, FO, SO.Seed);
  expectChipMatchesExecutor(Chip, Ref);
  EXPECT_GT(Chip.InstructionsExecuted, 0u);
  EXPECT_EQ(Chip.OnlineRemanages, 0);
  EXPECT_EQ(Chip.SegmentRecompiles, 0);
}

TEST(Fleet, GlycomicsChipMatchesExecutePartitionedRandomYields) {
  // Random yields: the chip's yield stream must consume draws at exactly
  // the executor's sites (Seed ^ 0xa55a, member order).
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  for (std::uint64_t Seed : {0x5eedULL, 3ULL, 0xabcULL}) {
    SimOptions SO;
    SO.Seed = Seed;
    PartitionRunResult Ref = executePartitioned(Img->Plan, SO);
    FleetOptions FO;
    FO.EnableOnlineRemanage = false;
    ChipResult Chip = runChip(*Img, FO, Seed);
    expectChipMatchesExecutor(Chip, Ref);
  }
}

TEST(Fleet, ScarceYieldFailureMatchesExecutor) {
  // With online re-management off the chip must fail exactly where (and
  // with the words) the executor does.
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  SimOptions SO;
  SO.FixedSeparationYield = 0.0005;
  PartitionRunResult Ref = executePartitioned(Img->Plan, SO);
  ASSERT_FALSE(Ref.Completed);

  FleetOptions FO;
  FO.EnableOnlineRemanage = false;
  FO.FixedSeparationYield = 0.0005;
  ChipResult Chip = runChip(*Img, FO, SO.Seed);
  EXPECT_FALSE(Chip.Completed);
  EXPECT_EQ(Chip.Error, Ref.Error);
}

TEST(Fleet, StaticAssayFleetCompletes) {
  // A fully static assay is a single-partition fleet image.
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok()) << Img.message();
  ASSERT_EQ(Img->Segments.size(), 1u);

  FleetOptions FO;
  FO.NumChips = 4;
  FleetResult R = runFleet(*Img, FO);
  EXPECT_EQ(R.ChipsCompleted, 4);
  EXPECT_EQ(R.ChipsFailed, 0);
  ASSERT_EQ(R.Chips.size(), 4u);
  for (const ChipResult &C : R.Chips) {
    EXPECT_TRUE(C.Completed) << C.Error;
    EXPECT_EQ(C.PartitionsExecuted, 1);
    EXPECT_EQ(C.Senses.size(), 5u);
  }
  EXPECT_GT(R.MakespanSec, 0.0);
  EXPECT_GT(R.InstructionsExecuted, 0u);
}

TEST(Fleet, DeterministicUnderSeed) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.NumChips = 8;
  FO.Seed = 42;
  FleetResult A = runFleet(*Img, FO);
  FleetResult B = runFleet(*Img, FO);
  EXPECT_EQ(A.ChipsCompleted, B.ChipsCompleted);
  EXPECT_EQ(A.InstructionsExecuted, B.InstructionsExecuted);
  EXPECT_EQ(A.MakespanSec, B.MakespanSec);
  EXPECT_EQ(A.TotalFluidSeconds, B.TotalFluidSeconds);
  ASSERT_EQ(A.Chips.size(), B.Chips.size());
  for (std::size_t C = 0; C < A.Chips.size(); ++C) {
    EXPECT_EQ(A.Chips[C].MeasuredNl, B.Chips[C].MeasuredNl);
    EXPECT_EQ(A.Chips[C].FluidSeconds, B.Chips[C].FluidSeconds);
  }
  // Different chips draw different yield streams.
  EXPECT_NE(A.Chips[0].MeasuredNl, A.Chips[1].MeasuredNl);
}

TEST(Fleet, VolumesAreThreadCountInvariant) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.NumChips = 16;
  FO.Seed = 7;
  FleetResult Serial = runFleet(*Img, FO);
  FO.Threads = 4;
  FleetResult Parallel = runFleet(*Img, FO);

  ASSERT_EQ(Serial.Chips.size(), Parallel.Chips.size());
  for (std::size_t C = 0; C < Serial.Chips.size(); ++C) {
    EXPECT_EQ(Serial.Chips[C].Completed, Parallel.Chips[C].Completed);
    EXPECT_EQ(Serial.Chips[C].Error, Parallel.Chips[C].Error);
    EXPECT_EQ(Serial.Chips[C].FluidSeconds, Parallel.Chips[C].FluidSeconds);
    EXPECT_EQ(Serial.Chips[C].MeasuredNl, Parallel.Chips[C].MeasuredNl);
    EXPECT_EQ(Serial.Chips[C].Volumes.NodeVolumeNl,
              Parallel.Chips[C].Volumes.NodeVolumeNl);
  }
  EXPECT_EQ(Serial.InstructionsExecuted, Parallel.InstructionsExecuted);
}

TEST(Fleet, SharedReservoirContentionChargesWaits) {
  // A pool far smaller than the fleet's aggregate draw forces refill
  // stalls; volumes stay unaffected (contention charges time only).
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.NumChips = 8;
  FleetResult Free = runFleet(*Img, FO);

  FO.SharedReservoirs = true;
  FO.ReservoirCapacityNl = 150.0;
  FO.ReservoirRefillNlPerSec = 5.0;
  FleetResult Contended = runFleet(*Img, FO);

  EXPECT_EQ(Contended.ChipsCompleted, 8);
  EXPECT_GT(Contended.ReservoirWaitSec, 0.0);
  EXPECT_GT(Contended.MakespanSec, Free.MakespanSec);
  ASSERT_EQ(Free.Chips.size(), Contended.Chips.size());
  for (std::size_t C = 0; C < Free.Chips.size(); ++C) {
    EXPECT_EQ(Free.Chips[C].MeasuredNl, Contended.Chips[C].MeasuredNl);
    EXPECT_EQ(Free.Chips[C].Volumes.NodeVolumeNl,
              Contended.Chips[C].Volumes.NodeVolumeNl);
  }
}

TEST(Fleet, ConcurrentContendedFleetIsRaceFree) {
  // Exercised under TSan in CI: many chips, many workers, shared pools.
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.NumChips = 32;
  FO.Threads = 8;
  FO.SharedReservoirs = true;
  FO.ReservoirCapacityNl = 500.0;
  FO.ReservoirRefillNlPerSec = 25.0;
  FleetResult R = runFleet(*Img, FO);
  EXPECT_EQ(R.ChipsCompleted + R.ChipsFailed, 32);
  EXPECT_GT(R.InstructionsExecuted, 0u);
}
