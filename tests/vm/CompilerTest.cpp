//===- CompilerTest.cpp - AIS to bytecode lowering tests -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/Compiler.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/Codegen.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Rounding.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::vm;

TEST(Compiler, GlucoseRelativeLowering) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok()) << P.message();

  CompileOptions CO;
  CO.Graph = &G;
  auto BC = compile(*P, CO);
  ASSERT_TRUE(BC.ok()) << BC.message();

  // One bytecode instruction per AIS instruction, with the rendered AIS
  // text preserved for error parity with the simulator.
  ASSERT_EQ(BC->Code.size(), P->Instrs.size());
  ASSERT_EQ(BC->InstrText.size(), P->Instrs.size());
  for (std::size_t I = 0; I < P->Instrs.size(); ++I)
    EXPECT_EQ(BC->InstrText[I], P->Instrs[I].str());

  EXPECT_GT(BC->NumSlots, 0);
  EXPECT_EQ(BC->SlotIsFunctionalUnit.size(),
            static_cast<std::size_t>(BC->NumSlots));
  // Glucose draws three fluids.
  EXPECT_EQ(BC->numFluids(), 3);
  EXPECT_EQ(BC->numSenses(), 5);
}

TEST(Compiler, RelativeVolumesAreConstantFolded) {
  // Every relative move must carry a pre-planned volume: the interpreter's
  // hot path never re-derives the fill-to-capacity policy.
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  auto BC = compile(*P, CompileOptions{});
  ASSERT_TRUE(BC.ok()) << BC.message();

  std::size_t MeteredMoves = 0;
  for (const Instr &I : BC->Code)
    if (I.Code == Op::MoveVol) {
      ASSERT_NE(I.VolIdx, NoVolume);
      ASSERT_LT(I.VolIdx, BC->VolumeTable.size());
      EXPECT_GT(BC->VolumeTable[I.VolIdx], 0.0);
      ++MeteredMoves;
    }
  EXPECT_GT(MeteredMoves, 0u);
}

TEST(Compiler, RegenSlicesAreBoundAndSorted) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());

  CompileOptions CO;
  CO.Graph = &G;
  auto BC = compile(*P, CO);
  ASSERT_TRUE(BC.ok());

  std::size_t Bound = 0;
  for (const Instr &I : BC->Code) {
    if (I.RegenBegin == NoSlice)
      continue;
    ++Bound;
    ASSERT_LE(static_cast<std::size_t>(I.RegenBegin + I.RegenCount),
              BC->RegenSlices.size());
    for (std::int32_t J = 1; J < I.RegenCount; ++J)
      EXPECT_LT(BC->RegenSlices[I.RegenBegin + J - 1],
                BC->RegenSlices[I.RegenBegin + J]);
    for (std::int32_t J = 0; J < I.RegenCount; ++J)
      EXPECT_LT(static_cast<std::size_t>(BC->RegenSlices[I.RegenBegin + J]),
                BC->Code.size());
  }
  // Mixes consuming produced fluids have producing slices to replay.
  EXPECT_GT(Bound, 0u);

  // Without the graph, no slices exist (the simulator's no-graph regime).
  auto NoGraph = compile(*P, CompileOptions{});
  ASSERT_TRUE(NoGraph.ok());
  for (const Instr &I : NoGraph->Code)
    EXPECT_EQ(I.RegenBegin, NoSlice);
}

TEST(Compiler, DeterministicAndCompact) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());

  CompileOptions CO;
  CO.Graph = &G;
  auto A = compile(*P, CO);
  auto B = compile(*P, CO);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A->NumSlots, B->NumSlots);
  EXPECT_EQ(A->VolumeTable, B->VolumeTable);
  EXPECT_EQ(A->FluidNames, B->FluidNames);
  EXPECT_EQ(A->SenseNames, B->SenseNames);
  EXPECT_EQ(A->RegenSlices, B->RegenSlices);

  // The dispatch image (code + volume table + slices) stays compact -- a
  // fixed-width instruction word, not the string-heavy AIS form. Enzyme's
  // pre-bound regeneration slices dominate the per-instruction budget.
  EXPECT_GT(A->byteSize(), 0u);
  EXPECT_LT(A->byteSize() / A->Code.size(), 160u);
}

TEST(Compiler, ManagedProgramCompiles) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  IntegerAssignment IV = roundToLeastCount(G, R.Volumes, MachineSpec{});
  VolumeAssignment Metered = integerToNl(G, IV, MachineSpec{});
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = generateAIS(G, MachineLayout{}, CG);
  ASSERT_TRUE(P.ok());
  auto BC = compile(*P, CompileOptions{});
  ASSERT_TRUE(BC.ok()) << BC.message();
  // Managed programs carry absolute metered volumes only.
  for (const Instr &I : BC->Code) {
    if (I.Code == Op::MoveVol) {
      ASSERT_NE(I.VolIdx, NoVolume);
    }
  }
}
