//===- OnlineRemanageTest.cpp - Section 3.5 online re-management -----------------===//
//
// Part of AquaVol. MIT license.
//
// A sensed (statically-unknown) volume can come up so short that run-time
// dispensing underflows the least count. runtime::executePartitioned gives
// up there; the fleet re-enters the volume manager online with the
// measured availability pinned, patches (or recompiles) the partition's
// bytecode, and resumes the VM.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/Fleet.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/runtime/PartitionExecutor.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;
using namespace aqua::vm;

namespace {

/// A separation feeding an extreme 1999:1 mix. Proportional dispensing at
/// the measured effluent volume pushes the dilutant edge to ~0.02 nl --
/// under the 0.1 nl least count -- so the static plan cannot run. The
/// online manager, pinned at the measured availability, cascades the
/// extreme mix into least-count-safe stages.
AssayGraph buildScarceDilutionAssay() {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId Prep = G.addMix("prep", {{A, 1}, {B, 1}});
  NodeId Eff = G.addUnary(NodeKind::Separate, "eff", Prep);
  G.node(Eff).UnknownVolume = true;
  NodeId C = G.addInput("C");
  NodeId Skew = G.addMix("skew", {{Eff, 1999}, {C, 1}});
  G.addUnary(NodeKind::Sense, "sense_R_1", Skew);
  EXPECT_TRUE(G.verify().ok());
  return G;
}

} // namespace

TEST(OnlineRemanage, ExecutorGivesUpWhereTheFleetRecovers) {
  AssayGraph G = buildScarceDilutionAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok()) << Img.message();
  ASSERT_EQ(Img->Segments.size(), 2u);

  // The static executor fails: dispensing underflows and all it can ask
  // for is regeneration.
  SimOptions SO;
  SO.FixedSeparationYield = 0.45;
  PartitionRunResult Ref = executePartitioned(Img->Plan, SO);
  ASSERT_FALSE(Ref.Completed);
  EXPECT_NE(Ref.Error.find("underflows the least count"), std::string::npos)
      << Ref.Error;

  // With online re-management off, the chip reproduces that failure
  // verbatim.
  FleetOptions FO;
  FO.FixedSeparationYield = 0.45;
  FO.EnableOnlineRemanage = false;
  ChipResult Static = runChip(*Img, FO, SO.Seed);
  EXPECT_FALSE(Static.Completed);
  EXPECT_EQ(Static.Error, Ref.Error);

  // Online: the manager cascades the 1999:1 mix under the measured pin,
  // the re-managed segment recompiles (its instruction stream changed),
  // and the chip completes.
  FO.EnableOnlineRemanage = true;
  ChipResult Online = runChip(*Img, FO, SO.Seed);
  ASSERT_TRUE(Online.Completed) << Online.Error;
  EXPECT_EQ(Online.OnlineRemanages, 1);
  EXPECT_GE(Online.SegmentRecompiles, 1);
  EXPECT_EQ(Online.PartitionsExecuted, 2);

  // The measured effluent (100 nl * 0.45) fed the re-managed partition.
  ASSERT_TRUE(Online.MeasuredNl.count("eff"));
  EXPECT_NEAR(Online.MeasuredNl.at("eff"), 45.0, 1e-9);

  // The patched segment really executed: the sense sees the 1:1999
  // dilution with the cascade's rounding error, not a degenerate mix.
  // (The carrier is the partition's stand-in fluid for the measured
  // effluent -- partitions run standalone, like the executor's.)
  ASSERT_EQ(Online.Senses.size(), 1u);
  const SenseReading &Read = Online.Senses.front();
  ASSERT_TRUE(Read.Composition.count("C"));
  double CFrac = Read.Composition.at("C");
  EXPECT_GT(CFrac, 0.0001);
  EXPECT_LT(CFrac, 0.002);
  double Total = 0.0;
  for (const auto &KV : Read.Composition)
    Total += KV.second;
  EXPECT_NEAR(Total, 1.0, 1e-9);

  // Volume conservation across the re-entry: the chip never consumed more
  // effluent than was measured.
  EXPECT_GT(Read.VolumeNl, 0.0);
  EXPECT_LE(Read.VolumeNl, 45.0 + 1e-9);
}

TEST(OnlineRemanage, TotalsMatchTheRegenerationFreeProfile) {
  // The online path must not silently regenerate its way to completion:
  // recovery comes from re-management (new metering), not from the
  // runtime's reactive regeneration backstop.
  AssayGraph G = buildScarceDilutionAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.FixedSeparationYield = 0.45;
  ChipResult Online = runChip(*Img, FO, 0x5eed);
  ASSERT_TRUE(Online.Completed) << Online.Error;
  EXPECT_EQ(Online.Regenerations, 0);
  EXPECT_EQ(Online.PartitionReruns, 0);
  // Both partitions' wet time is accounted.
  EXPECT_GT(Online.FluidSeconds, 0.0);
  EXPECT_GT(Online.InstructionsExecuted, 0u);
}

TEST(OnlineRemanage, HopelessYieldExhaustsRetriesViaStorm) {
  // Glycomics at a yield of 0.05 nl: the pin sits below the least count,
  // no transform can help, and re-running the producer (fixed yield)
  // measures the same scarcity every time. The chip must fail after
  // MaxOnlineRetries regeneration storms, not hang.
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.FixedSeparationYield = 0.0005;
  FO.MaxOnlineRetries = 3;
  ChipResult Chip = runChip(*Img, FO, 0x5eed);
  EXPECT_FALSE(Chip.Completed);
  EXPECT_NE(Chip.Error.find("online re-management exhausted"),
            std::string::npos)
      << Chip.Error;
  EXPECT_GE(Chip.PartitionReruns, 3);
  EXPECT_EQ(Chip.OnlineRemanages, 0);
}

TEST(OnlineRemanage, FleetAggregatesRemanageEvents) {
  AssayGraph G = buildScarceDilutionAssay();
  MachineSpec Spec;
  auto Img = compileFleetImage(G, Spec);
  ASSERT_TRUE(Img.ok());

  FleetOptions FO;
  FO.NumChips = 6;
  FO.FixedSeparationYield = 0.45;
  FleetResult R = runFleet(*Img, FO);
  EXPECT_EQ(R.ChipsCompleted, 6);
  EXPECT_EQ(R.OnlineRemanages, 6);
  EXPECT_GE(R.SegmentRecompiles, 6);
}
