//===- VMEquivalenceTest.cpp - VM vs tree-walking simulator ----------------------===//
//
// Part of AquaVol. MIT license.
//
// The bytecode VM's contract is bit-for-bit behavioral equivalence with
// runtime::simulate under the same options: every volume, wet-time second,
// RNG draw, counter, sense reading, and error string identical. These
// tests enforce it with exact (==) floating-point comparison across the
// paper assays in both volume regimes, including regeneration-heavy and
// failing runs.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/VM.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Rounding.h"
#include "aqua/vm/Compiler.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;

namespace {

/// Exact SimResult equality: doubles compared with ==, maps and strings
/// elementwise.
void expectBitEqual(const SimResult &Sim, const SimResult &Vm) {
  EXPECT_EQ(Sim.Completed, Vm.Completed);
  EXPECT_EQ(Sim.Error, Vm.Error);
  EXPECT_EQ(Sim.Regenerations, Vm.Regenerations);
  EXPECT_EQ(Sim.UnderflowEvents, Vm.UnderflowEvents);
  EXPECT_EQ(Sim.OverflowEvents, Vm.OverflowEvents);
  EXPECT_EQ(Sim.SubLeastCountMoves, Vm.SubLeastCountMoves);
  EXPECT_EQ(Sim.InstructionsExecuted, Vm.InstructionsExecuted);
  EXPECT_EQ(Sim.FluidSeconds, Vm.FluidSeconds);
  EXPECT_EQ(Sim.InputDrawnNl, Vm.InputDrawnNl);
  EXPECT_EQ(Sim.DeliveredNl, Vm.DeliveredNl);
  EXPECT_EQ(Sim.WasteNl, Vm.WasteNl);
  ASSERT_EQ(Sim.Senses.size(), Vm.Senses.size());
  for (std::size_t I = 0; I < Sim.Senses.size(); ++I) {
    EXPECT_EQ(Sim.Senses[I].Name, Vm.Senses[I].Name);
    EXPECT_EQ(Sim.Senses[I].VolumeNl, Vm.Senses[I].VolumeNl);
    EXPECT_EQ(Sim.Senses[I].Composition, Vm.Senses[I].Composition);
  }
}

/// Runs \p P through both engines under \p SO and checks equivalence.
void runBoth(const AISProgram &P, const SimOptions &SO) {
  SimResult Sim = simulate(P, SO);

  vm::CompileOptions CO;
  CO.Spec = SO.Spec;
  CO.Graph = SO.Graph;
  auto BC = vm::compile(P, CO);
  ASSERT_TRUE(BC.ok()) << BC.message();

  vm::RunOptions RO;
  RO.EnableRegeneration = SO.EnableRegeneration;
  RO.Seed = SO.Seed;
  RO.MinSeparationYield = SO.MinSeparationYield;
  RO.MaxSeparationYield = SO.MaxSeparationYield;
  RO.FixedSeparationYield = SO.FixedSeparationYield;
  RO.MoveSeconds = SO.MoveSeconds;
  RO.MaxRegenRetries = SO.MaxRegenRetries;
  SimResult Vm = vm::run(*BC, RO);

  expectBitEqual(Sim, Vm);
}

AISProgram managedProgram(const AssayGraph &G, const VolumeAssignment &RVol) {
  IntegerAssignment IV = roundToLeastCount(G, RVol, MachineSpec{});
  VolumeAssignment Metered = integerToNl(G, IV, MachineSpec{});
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = generateAIS(G, MachineLayout{}, CG);
  EXPECT_TRUE(P.ok()) << P.message();
  return *P;
}

} // namespace

TEST(VMEquivalence, GlucoseRelativeWithRegeneration) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  runBoth(*P, SO);
}

TEST(VMEquivalence, GlucoseManaged) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  AISProgram P = managedProgram(G, R.Volumes);
  SimOptions SO;
  SO.Graph = &G;
  runBoth(P, SO);
}

TEST(VMEquivalence, EnzymeRelativeRegenerationHeavy) {
  // The paper's regeneration-heavy baseline: dozens of slice replays, each
  // with stash/restore of functional-unit contents -- the hardest state to
  // keep bit-identical.
  AssayGraph G = assays::buildEnzymeAssay(4);
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  runBoth(*P, SO);
}

TEST(VMEquivalence, EnzymeManagedCascaded) {
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  VolumeAssignment Metered = integerToNl(R.Graph, R.Rounded, MachineSpec{});
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = generateAIS(R.Graph, MachineLayout{}, CG);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &R.Graph;
  runBoth(*P, SO);
}

TEST(VMEquivalence, GlycomicsYieldStreamAcrossSeeds) {
  // Separation yields come from the seeded RNG: the VM must consume draws
  // at exactly the simulator's sites, for any seed.
  AssayGraph G = assays::buildGlycomicsAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  for (std::uint64_t Seed : {0x5eedULL, 1ULL, 999ULL, 0xdeadbeefULL}) {
    SimOptions SO;
    SO.Graph = &G;
    SO.Seed = Seed;
    runBoth(*P, SO);
  }
}

TEST(VMEquivalence, GlycomicsFixedYield) {
  AssayGraph G = assays::buildGlycomicsAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  SO.FixedSeparationYield = 0.5;
  runBoth(*P, SO);
}

TEST(VMEquivalence, NaiveWithoutRegenerationLimpsIdentically) {
  // Disabled regeneration shorts transfers instead of failing; underflow
  // bookkeeping and downstream compositions must still match exactly.
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.EnableRegeneration = false;
  SO.Graph = &G;
  runBoth(*P, SO);
}

TEST(VMEquivalence, NoGraphRegenerationRegime) {
  // Without the assay graph only input re-draws can regenerate; failure
  // modes (and their error text) must match the simulator's.
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO; // SO.Graph stays null.
  runBoth(*P, SO);
}

TEST(VMEquivalence, RegenerationExhaustedErrorMatches) {
  // A managed program demanding more than the mixer can ever hold:
  // regeneration tops the mixer up to capacity but never reaches the
  // demand, so the retry loop exhausts and both engines must fail with
  // the same formatted message (instruction index, shortfall, source
  // rendering).
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  G.addUnary(NodeKind::Sense, "sense_R_1", M);

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 10.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  auto Edges = G.liveEdges();
  V.EdgeVolumeNl[Edges[0]] = 5.0;
  V.EdgeVolumeNl[Edges[1]] = 5.0;
  V.EdgeVolumeNl[Edges[2]] = 500.0; // The mixer caps at 100 nl.

  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &V;
  auto P = generateAIS(G, MachineLayout{}, CG);
  ASSERT_TRUE(P.ok());

  SimOptions SO;
  SO.Graph = &G;
  SimResult Sim = simulate(*P, SO);
  ASSERT_FALSE(Sim.Completed);
  EXPECT_NE(Sim.Error.find("regeneration exhausted"), std::string::npos)
      << Sim.Error;
  runBoth(*P, SO);
}

TEST(VMEquivalence, InterpreterStateIsReusableAcrossRuns) {
  // One Interp recycled across programs and seeds (the fleet's usage
  // pattern) behaves like a fresh engine every time.
  AssayGraph G = assays::buildGlycomicsAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  vm::CompileOptions CO;
  CO.Graph = &G;
  auto BC = vm::compile(*P, CO);
  ASSERT_TRUE(BC.ok());

  vm::Interp I;
  for (int Round = 0; Round < 3; ++Round) {
    for (std::uint64_t Seed : {7ULL, 0x5eedULL}) {
      SimOptions SO;
      SO.Graph = &G;
      SO.Seed = Seed;
      SimResult Sim = simulate(*P, SO);

      vm::RunOptions RO;
      RO.Seed = Seed;
      I.start(*BC, RO);
      I.run();
      expectBitEqual(Sim, I.finish());
    }
  }
}
