//===- IfStatementTest.cpp - IF/ELSE lowering tests -----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lower.h"
#include "aqua/lang/Parser.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::ir;
using namespace aqua::lang;

TEST(IfStatement, ParsesThenElse) {
  auto P = parseAssay(R"(ASSAY t START
fluid a, b;
VAR x;
x = 1;
IF x START
  MIX a AND b FOR 1;
ELSE
  MIX a AND b IN RATIOS 1 : 2 FOR 1;
ENDIF
END
)");
  ASSERT_TRUE(P.ok()) << P.message();
  const Stmt &If = *P->Stmts[3];
  ASSERT_EQ(If.K, Stmt::Kind::If);
  EXPECT_EQ(If.Body.size(), 1u);
  EXPECT_EQ(If.ElseBody.size(), 1u);
}

TEST(IfStatement, TakesThenBranchOnNonZero) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR x;
x = 2;
IF x - 1 START
  MIX a AND b IN RATIOS 1 : 3 FOR 1;
ELSE
  MIX a AND b IN RATIOS 1 : 7 FOR 1;
ENDIF
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  // Exactly one mix, with the THEN ratio 1:3.
  int Mixes = 0;
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind != NodeKind::Mix)
      continue;
    ++Mixes;
    Rational Small(1);
    for (EdgeId E : L->Graph.inEdges(N))
      Small = min(Small, L->Graph.edge(E).Fraction);
    EXPECT_EQ(Small, Rational(1, 4));
  }
  EXPECT_EQ(Mixes, 1);
}

TEST(IfStatement, TakesElseBranchOnZero) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR x;
x = 0;
IF x START
  MIX a AND b IN RATIOS 1 : 3 FOR 1;
ELSE
  MIX a AND b IN RATIOS 1 : 7 FOR 1;
ENDIF
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind != NodeKind::Mix)
      continue;
    Rational Small(1);
    for (EdgeId E : L->Graph.inEdges(N))
      Small = min(Small, L->Graph.edge(E).Fraction);
    EXPECT_EQ(Small, Rational(1, 8));
  }
}

TEST(IfStatement, MissingElseIsEmpty) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR x;
x = 0;
IF x START
  MIX a AND b FOR 1;
ENDIF
MIX a AND b FOR 2;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(L->Graph.numNodes(), 3); // Two inputs + the trailing mix.
}

TEST(IfStatement, InsideLoopSelectsPerIteration) {
  // Classic use: special-case one loop iteration.
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR i;
FOR i FROM 1 TO 4 START
  IF i - 1 START
    MIX a AND b IN RATIOS 1 : i FOR 1;
  ELSE
    MIX a AND b FOR 1;
  ENDIF
ENDFOR
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(L->Graph.numNodes(), 2 + 4);
}

TEST(IfStatement, UnclosedIfReported) {
  auto P = parseAssay("ASSAY t START VAR x; x = 1; IF x START END");
  ASSERT_FALSE(P.ok());
}
