//===- LexerParserTest.cpp - Assay language lexer/parser tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lexer.h"
#include "aqua/lang/Parser.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::lang;

TEST(Lexer, BasicTokens) {
  auto Tokens = tokenize("a = MIX x AND y IN RATIOS 1 : 42 FOR 10;");
  ASSERT_TRUE(Tokens.ok()) << Tokens.message();
  std::vector<TokenKind> Kinds;
  for (const Token &T : *Tokens)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Equals,  TokenKind::KwMix,
      TokenKind::Identifier, TokenKind::KwAnd,   TokenKind::Identifier,
      TokenKind::KwIn,       TokenKind::KwRatios, TokenKind::Integer,
      TokenKind::Colon,      TokenKind::Integer, TokenKind::KwFor,
      TokenKind::Integer,    TokenKind::Semicolon, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_EQ((*Tokens)[10].IntValue, 42);
}

TEST(Lexer, CommentsAndLocations) {
  auto Tokens = tokenize("x -- a comment\ny");
  ASSERT_TRUE(Tokens.ok());
  ASSERT_EQ(Tokens->size(), 3u);
  EXPECT_EQ((*Tokens)[0].Line, 1);
  EXPECT_EQ((*Tokens)[1].Text, "y");
  EXPECT_EQ((*Tokens)[1].Line, 2);
}

TEST(Lexer, RejectsUnknownCharacters) {
  auto Tokens = tokenize("a @ b");
  ASSERT_FALSE(Tokens.ok());
  EXPECT_NE(Tokens.message().find("unexpected character"), std::string::npos);
}

TEST(Lexer, RejectsMalformedNumbers) {
  auto Tokens = tokenize("12abc");
  ASSERT_FALSE(Tokens.ok());
  EXPECT_NE(Tokens.message().find("malformed number"), std::string::npos);
}

TEST(Parser, ParsesAllThreePaperAssays) {
  for (const char *Src : {assays::glucoseSource(), assays::glycomicsSource(),
                          assays::enzymeSource()}) {
    auto P = parseAssay(Src);
    ASSERT_TRUE(P.ok()) << P.message();
  }
}

TEST(Parser, GlucoseShape) {
  auto P = parseAssay(assays::glucoseSource());
  ASSERT_TRUE(P.ok());
  EXPECT_EQ(P->Name, "glucose");
  // 2 fluid decls + 1 VAR decl + 5 mixes + 5 senses.
  EXPECT_EQ(P->Stmts.size(), 13u);
  const Stmt &Mix = *P->Stmts[3];
  EXPECT_EQ(Mix.K, Stmt::Kind::Mix);
  ASSERT_TRUE(Mix.MixResult.has_value());
  EXPECT_EQ(Mix.MixResult->Name, "a");
  EXPECT_EQ(Mix.Operands.size(), 2u);
  EXPECT_EQ(Mix.Ratios.size(), 2u);
}

TEST(Parser, EnzymeLoops) {
  auto P = parseAssay(assays::enzymeSource());
  ASSERT_TRUE(P.ok());
  int Loops = 0;
  for (const StmtPtr &S : P->Stmts)
    if (S->K == Stmt::Kind::For)
      ++Loops;
  EXPECT_EQ(Loops, 4); // Three dilution loops + the combination nest.
}

TEST(Parser, SeparateStatement) {
  auto P = parseAssay(R"(ASSAY t START
fluid a, b, eff, waste;
MIX a AND b FOR 5;
SEPARATE it MATRIX lectin USING b FOR 30 INTO eff AND waste;
END
)");
  ASSERT_TRUE(P.ok()) << P.message();
  const Stmt &Sep = *P->Stmts[2];
  EXPECT_EQ(Sep.K, Stmt::Kind::Separate);
  EXPECT_FALSE(Sep.IsLC);
  EXPECT_TRUE(Sep.Input.IsIt);
  EXPECT_EQ(Sep.MatrixName, "lectin");
  EXPECT_EQ(Sep.UsingName, "b");
  EXPECT_EQ(Sep.EffluentName, "eff");
  EXPECT_EQ(Sep.WasteName, "waste");
}

TEST(Parser, MissingSemicolonBeforeEndIsAllowed) {
  auto P = parseAssay("ASSAY t START\nfluid a, b;\nMIX a AND b FOR 1\nEND\n");
  EXPECT_TRUE(P.ok()) << P.message();
}

TEST(Parser, DryExpressionsWithPrecedence) {
  auto P = parseAssay(R"(ASSAY t START
VAR x, y;
x = 1 + 2 * 3;
y = x - 4 / 2;
END
)");
  ASSERT_TRUE(P.ok());
  const Stmt &X = *P->Stmts[1];
  ASSERT_EQ(X.K, Stmt::Kind::DryAssign);
  // 1 + (2*3): root is '+'.
  EXPECT_EQ(X.Value->K, Expr::Kind::BinOp);
  EXPECT_EQ(X.Value->Op, '+');
  EXPECT_EQ(X.Value->Rhs->Op, '*');
}

TEST(Parser, ErrorDiagnostics) {
  struct Case {
    const char *Src;
    const char *Needle;
  };
  Case Cases[] = {
      {"MIX a AND b FOR 1; END", "expected 'ASSAY'"},
      {"ASSAY t START MIX a FOR 1; END", "at least two operands"},
      {"ASSAY t START MIX a AND b IN RATIOS 1 FOR 1; END", "2 operands but 1"},
      {"ASSAY t START fluid a b; END", "expected ';'"},
      {"ASSAY t START SENSE it INTO r; END", "OPTICAL or FLUORESCENCE"},
      {"ASSAY t START FOR i FROM 1 TO 2 START END", "unexpected token"},
      {"ASSAY t START x = ; END", "expected expression"},
  };
  for (const Case &C : Cases) {
    auto P = parseAssay(C.Src);
    ASSERT_FALSE(P.ok()) << C.Src;
    EXPECT_NE(P.message().find(C.Needle), std::string::npos)
        << C.Src << " -> " << P.message();
  }
}

TEST(Parser, MultiDimArrays) {
  auto P = parseAssay(R"(ASSAY t START
VAR R[2][3][4];
VAR i;
i = 1;
R[1][2][3] = i * 7;
END
)");
  ASSERT_TRUE(P.ok()) << P.message();
  const Stmt &Decl = *P->Stmts[0];
  ASSERT_EQ(Decl.Decls.size(), 1u);
  EXPECT_EQ(Decl.Decls[0].Dims, (std::vector<std::int64_t>{2, 3, 4}));
}

TEST(Lexer, RejectsOutOfRangeIntegers) {
  auto Tokens = tokenize("99999999999999999999999999");
  ASSERT_FALSE(Tokens.ok());
  EXPECT_NE(Tokens.message().find("too large"), std::string::npos);
  // Near the limit is fine.
  auto Ok = tokenize("9223372036854775807");
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ((*Ok)[0].IntValue, 9223372036854775807LL);
}
