//===- UnknownCondTest.cpp - IF ? conservative inclusion tests -------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 3.5 unknown uses: "To handle if-then-else, we conservatively
// include both if and else paths in our DAG". `IF ? START ... ELSE ...
// ENDIF` marks a run-time condition; both branches' fluid uses reserve
// volume.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/DagSolve.h"
#include "aqua/lang/Lower.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::lang;

TEST(UnknownCond, BothBranchesReserveVolume) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
IF ? START
  MIX a AND b IN RATIOS 1 : 3 FOR 1;
ELSE
  MIX a AND b IN RATIOS 3 : 1 FOR 1;
ENDIF
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  // Both mixes are in the DAG.
  int Mixes = 0;
  for (NodeId N : L->Graph.liveNodes())
    if (L->Graph.node(N).Kind == NodeKind::Mix)
      ++Mixes;
  EXPECT_EQ(Mixes, 2);

  // Volume management reserves for both: each input covers both branches'
  // demands (1/4 + 3/4 of equal-sized mixes each).
  DagSolveResult R = dagSolve(L->Graph, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind == NodeKind::Input) {
      EXPECT_EQ(R.NodeVnorm[N], Rational(1)); // 1/4 + 3/4.
    }
  }
}

TEST(UnknownCond, BranchBindingsDoNotEscape) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b, x;
IF ? START
  x = MIX a AND b FOR 1;
ENDIF
MIX x AND a FOR 1;
END
)");
  ASSERT_FALSE(L.ok());
  EXPECT_NE(L.message().find("x"), std::string::npos);
}

TEST(UnknownCond, ItDoesNotEscape) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
IF ? START
  MIX a AND b FOR 1;
ENDIF
MIX it AND a FOR 1;
END
)");
  ASSERT_FALSE(L.ok());
  EXPECT_NE(L.message().find("'it'"), std::string::npos);
}

TEST(UnknownCond, PreIfBindingsSurvive) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b, base;
base = MIX a AND b FOR 1;
IF ? START
  MIX base AND a FOR 1;
ELSE
  MIX base AND b FOR 1;
ENDIF
MIX base AND a IN RATIOS 1 : 2 FOR 1;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  // base has three uses: one per branch plus the trailing mix.
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Name == "base") {
      EXPECT_EQ(L->Graph.outEdges(N).size(), 3u);
    }
  }
}

TEST(UnknownCond, DryStateIsBranchLocal) {
  // A dry assignment inside an unknown branch must not leak (its value is
  // unknowable at compile time).
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR x;
x = 1;
IF ? START
  x = 5;
ENDIF
MIX a AND b IN RATIOS 1 : x FOR 1;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind != NodeKind::Mix)
      continue;
    for (EdgeId E : L->Graph.inEdges(N))
      EXPECT_EQ(L->Graph.edge(E).Fraction, Rational(1, 2)); // 1:1, not 1:5.
  }
}
