//===- LowerTest.cpp - AST lowering tests --------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The strongest check here: lowering the paper's source text must produce a
// DAG that is volume-equivalent to the hand-built reference graphs -- same
// node-kind counts, same edge-fraction multisets, and identical DAGSolve
// results (exact rational Vnorms).
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lower.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::lang;

namespace {

std::map<NodeKind, int> kindCounts(const AssayGraph &G) {
  std::map<NodeKind, int> Counts;
  for (NodeId N : G.liveNodes())
    ++Counts[G.node(N).Kind];
  return Counts;
}

std::multiset<std::string> fractionMultiset(const AssayGraph &G) {
  std::multiset<std::string> Fracs;
  for (EdgeId E : G.liveEdges())
    Fracs.insert(G.edge(E).Fraction.str());
  return Fracs;
}

std::multiset<std::string> vnormMultiset(const AssayGraph &G) {
  DagSolveResult R = dagSolve(G, MachineSpec{});
  std::multiset<std::string> V;
  for (NodeId N : G.liveNodes())
    V.insert(R.NodeVnorm[N].str());
  return V;
}

void expectVolumeEquivalent(const AssayGraph &Lowered,
                            const AssayGraph &Reference) {
  EXPECT_EQ(Lowered.numNodes(), Reference.numNodes());
  EXPECT_EQ(Lowered.numEdges(), Reference.numEdges());
  EXPECT_EQ(kindCounts(Lowered), kindCounts(Reference));
  EXPECT_EQ(fractionMultiset(Lowered), fractionMultiset(Reference));
  EXPECT_EQ(vnormMultiset(Lowered), vnormMultiset(Reference));
}

} // namespace

TEST(Lower, GlucoseMatchesReferenceGraph) {
  auto L = compileAssay(assays::glucoseSource());
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(L->Name, "glucose");
  expectVolumeEquivalent(L->Graph, assays::buildGlucoseAssay());
  EXPECT_EQ(L->Inputs.size(), 3u); // Glucose, Reagent, Sample.
  EXPECT_EQ(L->Senses.size(), 5u);
  EXPECT_EQ(L->Senses[0].ResultName, "Result[1]");
}

TEST(Lower, GlucoseMinDispenseMatchesFigure12) {
  auto L = compileAssay(assays::glucoseSource());
  ASSERT_TRUE(L.ok());
  DagSolveResult R = dagSolve(L->Graph, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  EXPECT_NEAR(R.MinDispenseNl, 500.0 / 151.0, 1e-9); // 3.31 nl.
}

TEST(Lower, GlycomicsMatchesReferenceGraph) {
  auto L = compileAssay(assays::glycomicsSource());
  ASSERT_TRUE(L.ok()) << L.message();
  // The reference builder does not model the matrix/pusher loads either:
  // both graphs carry them as node parameters only.
  expectVolumeEquivalent(L->Graph, assays::buildGlycomicsAssay());

  // Separation metadata survives lowering.
  int WithMatrix = 0;
  for (NodeId N : L->Graph.liveNodes()) {
    const Node &Nd = L->Graph.node(N);
    if (Nd.Kind == NodeKind::Separate && !Nd.Params.Matrix.empty())
      ++WithMatrix;
  }
  EXPECT_EQ(WithMatrix, 3);
}

TEST(Lower, EnzymeMatchesReferenceGraph) {
  auto L = compileAssay(assays::enzymeSource());
  ASSERT_TRUE(L.ok()) << L.message();
  expectVolumeEquivalent(L->Graph, assays::buildEnzymeAssay(4));
  EXPECT_EQ(L->Senses.size(), 64u);
  EXPECT_EQ(L->Inputs.size(), 4u);
}

TEST(Lower, EnzymeDilutionRatiosComputedByDryCode) {
  // The dry-variable arithmetic must produce the 1:1, 1:9, 1:99, 1:999
  // series.
  auto L = compileAssay(assays::enzymeSource());
  ASSERT_TRUE(L.ok());
  std::multiset<std::string> DilutionFractions;
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Kind != NodeKind::Mix)
      continue;
    auto In = L->Graph.inEdges(N);
    if (In.size() != 2)
      continue;
    Rational Small =
        min(L->Graph.edge(In[0]).Fraction, L->Graph.edge(In[1]).Fraction);
    DilutionFractions.insert(Small.str());
  }
  EXPECT_EQ(DilutionFractions.count("1/2"), 3u);
  EXPECT_EQ(DilutionFractions.count("1/10"), 3u);
  EXPECT_EQ(DilutionFractions.count("1/100"), 3u);
  EXPECT_EQ(DilutionFractions.count("1/1000"), 3u);
}

TEST(Lower, ItThreadsThroughStatements) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b, c;
MIX a AND b FOR 5;
INCUBATE it AT 37 FOR 10;
c = MIX it AND a IN RATIOS 2 : 1 FOR 5;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  // a(input), b(input), mix, incubate, c-mix.
  EXPECT_EQ(L->Graph.numNodes(), 5);
  // The incubate feeds the final mix with fraction 2/3.
  for (NodeId N : L->Graph.liveNodes()) {
    if (L->Graph.node(N).Name != "c")
      continue;
    for (EdgeId E : L->Graph.inEdges(N)) {
      const Node &Src = L->Graph.node(L->Graph.edge(E).Src);
      if (Src.Kind == NodeKind::Incubate) {
        EXPECT_EQ(L->Graph.edge(E).Fraction, Rational(2, 3));
      }
    }
  }
}

TEST(Lower, ConcentrateIsUnknownVolume) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
MIX a AND b FOR 5;
CONCENTRATE it AT 95 FOR 60;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  bool Found = false;
  for (NodeId N : L->Graph.liveNodes()) {
    const Node &Nd = L->Graph.node(N);
    if (Nd.Params.Flavor == "CONC") {
      Found = true;
      EXPECT_TRUE(Nd.UnknownVolume);
      EXPECT_EQ(Nd.Params.TempC, 95.0);
    }
  }
  EXPECT_TRUE(Found);
}

TEST(Lower, FluidArrays) {
  auto L = compileAssay(R"(ASSAY t START
fluid d[3];
fluid a, b;
VAR i;
FOR i FROM 1 TO 3 START
  d[i] = MIX a AND b IN RATIOS 1 : i FOR 5;
ENDFOR
MIX d[1] AND d[2] AND d[3] FOR 5;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  // 2 inputs + 3 dilution mixes + 1 final mix.
  EXPECT_EQ(L->Graph.numNodes(), 6);
}

TEST(Lower, SemanticErrors) {
  struct Case {
    const char *Src;
    const char *Needle;
  };
  Case Cases[] = {
      {"ASSAY t START fluid a; MIX a AND b FOR 1; END", "undeclared fluid"},
      {"ASSAY t START MIX it AND it FOR 1; END", "'it' used before"},
      {"ASSAY t START fluid a, b; MIX a AND a FOR 1; END",
       "same fluid twice"},
      {"ASSAY t START fluid a, b; MIX a AND b IN RATIOS 1 : 0 FOR 1; END",
       "must be positive"},
      {"ASSAY t START VAR x; x = y + 1; END", "undeclared variable"},
      {"ASSAY t START VAR x; x = x + 1; END", "read before assignment"},
      {"ASSAY t START VAR x; x = 1 / 0; END", "division by zero"},
      {"ASSAY t START VAR r[2]; r[3] = 1; END", "out of range"},
      {"ASSAY t START fluid a; VAR a; END", "redeclaration"},
      {"ASSAY t START fluid a, b; a = 3; END", "cannot be assigned"},
      {"ASSAY t START fluid a, b; VAR x; x = a * 2; END",
       "used in a dry expression"},
      {"ASSAY t START fluid a, b, e, w; MIX a AND b FOR 1; "
       "SEPARATE it MATRIX m USING a FOR 1 INTO e AND w; "
       "MIX w AND a FOR 1; END",
       "waste"},
      {"ASSAY t START fluid d[2], a, b; MIX d[1] AND a FOR 1; END",
       "used before being produced"},
      {"ASSAY t START fluid a, b; SENSE OPTICAL a INTO R[1]; END",
       "undeclared result variable"},
  };
  for (const Case &C : Cases) {
    auto L = compileAssay(C.Src);
    ASSERT_FALSE(L.ok()) << C.Src;
    EXPECT_NE(L.message().find(C.Needle), std::string::npos)
        << C.Src << " -> " << L.message();
  }
}

TEST(Lower, ZeroIterationLoopIsEmpty) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR i;
FOR i FROM 2 TO 1 START
  MIX a AND b FOR 1;
ENDFOR
MIX a AND b FOR 1;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(L->Graph.numNodes(), 3); // Two inputs + one mix.
}

TEST(Lower, NestedLoopsUnrollCompletely) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
VAR i, j;
FOR i FROM 1 TO 3 START
  FOR j FROM 1 TO 4 START
    MIX a AND b IN RATIOS i : j FOR 1;
  ENDFOR
ENDFOR
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  EXPECT_EQ(L->Graph.numNodes(), 2 + 12);
}
