//===- YieldHintTest.cpp - Section 3.5 yield hint tests --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// "If the programmer can provide hints on approximate output volume
// relative to input volume at the unknown-volume instruction ... we model
// such a hint as a node whose output shrinks the input volume in the
// specified ratio." (Section 3.5)
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lower.h"

#include "aqua/core/DagSolve.h"
#include "aqua/core/Partition.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::lang;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

} // namespace

TEST(YieldHint, SeparationBecomesStaticallyKnown) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b, eff, waste;
MIX a AND b FOR 5;
SEPARATE it MATRIX m USING b FOR 30 YIELD 1 OF 4 INTO eff AND waste;
MIX eff AND a FOR 5;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  NodeId Eff = findNode(L->Graph, "eff");
  ASSERT_NE(Eff, InvalidNode);
  EXPECT_FALSE(L->Graph.node(Eff).UnknownVolume);
  EXPECT_EQ(L->Graph.node(Eff).OutFraction, Rational(1, 4));

  // With the hint there is nothing statically unknown: a single partition.
  auto Plan = buildPartitionPlan(L->Graph, MachineSpec{});
  ASSERT_TRUE(Plan.ok());
  EXPECT_EQ(Plan->Parts.size(), 1u);

  // DAGSolve accounts for the shrink: eff's input side is 4x its output.
  DagSolveResult R = dagSolve(L->Graph, MachineSpec{});
  EXPECT_EQ(nodeInputVnorm(L->Graph, Eff, R),
            R.NodeVnorm[Eff] * Rational(4));
}

TEST(YieldHint, ConcentrateHint) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b;
MIX a AND b FOR 5;
CONCENTRATE it AT 90 FOR 60 YIELD 3 OF 10;
MIX it AND a FOR 5;
END
)");
  ASSERT_TRUE(L.ok()) << L.message();
  NodeId Conc = findNode(L->Graph, "concentrate1");
  ASSERT_NE(Conc, InvalidNode);
  EXPECT_FALSE(L->Graph.node(Conc).UnknownVolume);
  EXPECT_EQ(L->Graph.node(Conc).OutFraction, Rational(3, 10));
}

TEST(YieldHint, WithoutHintStaysUnknown) {
  auto L = compileAssay(R"(ASSAY t START
fluid a, b, eff, waste;
MIX a AND b FOR 5;
SEPARATE it MATRIX m USING b FOR 30 INTO eff AND waste;
MIX eff AND a FOR 5;
END
)");
  ASSERT_TRUE(L.ok());
  NodeId Eff = findNode(L->Graph, "eff");
  EXPECT_TRUE(L->Graph.node(Eff).UnknownVolume);
  auto Plan = buildPartitionPlan(L->Graph, MachineSpec{});
  ASSERT_TRUE(Plan.ok());
  EXPECT_EQ(Plan->Parts.size(), 2u);
}

TEST(YieldHint, InvalidHintsRejected) {
  const char *Bad[] = {
      "ASSAY t START fluid a, b, e, w; MIX a AND b FOR 1; "
      "SEPARATE it MATRIX m USING b FOR 1 YIELD 0 OF 4 INTO e AND w; END",
      "ASSAY t START fluid a, b, e, w; MIX a AND b FOR 1; "
      "SEPARATE it MATRIX m USING b FOR 1 YIELD 5 OF 4 INTO e AND w; END",
  };
  for (const char *Src : Bad) {
    auto L = compileAssay(Src);
    ASSERT_FALSE(L.ok()) << Src;
    EXPECT_NE(L.message().find("yield hint"), std::string::npos);
  }
}
