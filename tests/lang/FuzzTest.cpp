//===- FuzzTest.cpp - Frontend robustness fuzzing --------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The frontend must never crash: random byte soup and random token salads
// either parse or produce a diagnostic. (Real fuzzing would use a fuzzer
// harness; this is a deterministic smoke version that runs in CI.)
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lower.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace aqua;
using namespace aqua::lang;

namespace {

/// CI-tunable budgets: AQUA_FUZZ_CASES scales the per-test case count and
/// AQUA_FUZZ_SEED re-seeds both generators, so the nightly job can widen
/// coverage without a rebuild (e.g. AQUA_FUZZ_CASES=4000).
int fuzzCases(int Default) {
  if (const char *V = std::getenv("AQUA_FUZZ_CASES"))
    if (int N = std::atoi(V); N > 0)
      return N;
  return Default;
}

std::uint64_t fuzzSeed(std::uint64_t Default) {
  if (const char *V = std::getenv("AQUA_FUZZ_SEED"))
    if (std::uint64_t N = std::strtoull(V, nullptr, 0); N != 0)
      return N;
  return Default;
}

const char *Vocabulary[] = {
    "ASSAY", "START",  "END",    "fluid",  "VAR",      "MIX",    "AND",
    "IN",    "RATIOS", "FOR",    "SENSE",  "OPTICAL",  "INTO",   "SEPARATE",
    "MATRIX", "USING", "INCUBATE", "AT",   "FROM",     "TO",     "ENDFOR",
    "IF",    "ELSE",   "ENDIF",  "it",     "a",        "b",      "Result",
    "x",     "i",      "1",      "42",     "0",        ";",      ",",
    ":",     "=",      "[",      "]",      "+",        "-",      "*",
    "/",     "\n",     "--note\n"};

} // namespace

TEST(FrontendFuzz, RandomByteSoupNeverCrashes) {
  SplitMix64 Rng(fuzzSeed(0xF00D));
  const int Cases = fuzzCases(200);
  for (int Case = 0; Case < Cases; ++Case) {
    std::string Soup;
    int Len = static_cast<int>(Rng.nextInRange(0, 120));
    for (int I = 0; I < Len; ++I)
      Soup.push_back(static_cast<char>(Rng.nextInRange(1, 127)));
    auto Result = compileAssay(Soup);
    // Either outcome is fine; crashing is not.
    (void)Result.ok();
  }
  SUCCEED();
}

TEST(FrontendFuzz, RandomTokenSaladNeverCrashes) {
  SplitMix64 Rng(fuzzSeed(0xBEEF));
  constexpr int VocabSize = sizeof(Vocabulary) / sizeof(Vocabulary[0]);
  const int Cases = fuzzCases(400);
  for (int Case = 0; Case < Cases; ++Case) {
    std::string Program = "ASSAY t START ";
    int Len = static_cast<int>(Rng.nextInRange(0, 60));
    for (int I = 0; I < Len; ++I) {
      Program += Vocabulary[Rng.nextInRange(0, VocabSize - 1)];
      Program += ' ';
    }
    Program += " END";
    auto Result = compileAssay(Program);
    (void)Result.ok();
  }
  SUCCEED();
}

TEST(FrontendFuzz, DeeplyNestedLoopsBounded) {
  // Nesting that would unroll to millions of wet operations must be
  // rejected by the unroll budget, not exhaust memory.
  std::string Src = "ASSAY t START\nfluid a, b;\nVAR i1, i2, i3, i4;\n";
  for (int I = 1; I <= 4; ++I)
    Src += "FOR i" + std::to_string(I) + " FROM 1 TO 50 START\n";
  Src += "MIX a AND b FOR 1;\n";
  for (int I = 0; I < 4; ++I)
    Src += "ENDFOR\n";
  Src += "END\n";
  auto Result = compileAssay(Src);
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.message().find("budget"), std::string::npos);
}

TEST(FrontendFuzz, LongTokenAndHugeNumbers) {
  std::string LongName(5000, 'x');
  auto R1 = compileAssay("ASSAY " + LongName + " START END");
  EXPECT_TRUE(R1.ok());
  auto R2 = compileAssay("ASSAY t START fluid a, b; "
                         "MIX a AND b IN RATIOS 1 : 922337203685477580 "
                         "FOR 1; END");
  (void)R2.ok(); // Must not crash on near-overflow ratios.
  SUCCEED();
}
