//===- AssayGraphTest.cpp - Assay DAG IR tests ---------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/ir/AssayGraph.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace aqua;
using namespace aqua::ir;

TEST(AssayGraph, BuildFigure2) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  EXPECT_EQ(G.numNodes(), 7);
  EXPECT_EQ(G.numEdges(), 8);
  EXPECT_TRUE(G.verify().ok());

  // Edge fractions: K = A:B 1:4.
  auto KIn = G.inEdges(N.K);
  ASSERT_EQ(KIn.size(), 2u);
  EXPECT_EQ(G.edge(KIn[0]).Fraction, Rational(1, 5));
  EXPECT_EQ(G.edge(KIn[1]).Fraction, Rational(4, 5));

  EXPECT_TRUE(G.isLeaf(N.M));
  EXPECT_TRUE(G.isLeaf(N.N));
  EXPECT_FALSE(G.isLeaf(N.L));
}

TEST(AssayGraph, TopologicalOrderRespectsEdges) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  std::vector<NodeId> Order = G.topologicalOrder();
  ASSERT_EQ(Order.size(), 7u);
  auto Pos = [&](NodeId X) {
    return std::find(Order.begin(), Order.end(), X) - Order.begin();
  };
  for (EdgeId E : G.liveEdges())
    EXPECT_LT(Pos(G.edge(E).Src), Pos(G.edge(E).Dst));
}

TEST(AssayGraph, BackwardSlice) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  std::vector<NodeId> Slice = G.backwardSlice(N.K);
  // K depends on A, B and itself.
  EXPECT_EQ(Slice.size(), 3u);
  EXPECT_TRUE(std::count(Slice.begin(), Slice.end(), N.A));
  EXPECT_TRUE(std::count(Slice.begin(), Slice.end(), N.B));
  EXPECT_TRUE(std::count(Slice.begin(), Slice.end(), N.K));

  std::vector<NodeId> Full = G.backwardSlice(N.M);
  EXPECT_EQ(Full.size(), 6u); // Everything but N.
}

TEST(AssayGraph, RemoveEdgeAndNode) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  int Edges = G.numEdges();
  EdgeId E = G.inEdges(N.K)[0];
  G.removeEdge(E);
  EXPECT_EQ(G.numEdges(), Edges - 1);
  EXPECT_EQ(G.inEdges(N.K).size(), 1u);
  G.removeEdge(E); // Idempotent.
  EXPECT_EQ(G.numEdges(), Edges - 1);

  G.removeNode(N.L);
  EXPECT_TRUE(G.node(N.L).Dead);
  // L's edges (B->L, C->L, L->M, L->N) died with it.
  EXPECT_EQ(G.numEdges(), Edges - 5);
}

TEST(AssayGraph, SetEdgeSourceRewires) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  EdgeId E = G.inEdges(N.K)[0]; // A -> K.
  G.setEdgeSource(E, N.C);
  EXPECT_EQ(G.edge(E).Src, N.C);
  EXPECT_TRUE(G.outEdges(N.A).empty());
  auto COut = G.outEdges(N.C);
  EXPECT_EQ(COut.size(), 3u);
}

TEST(AssayGraphVerify, CycleDetected) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M1 = G.addMix("M1", {{A, 1}, {B, 1}});
  NodeId M2 = G.addNode(NodeKind::Mix, "M2");
  G.addEdge(M1, M2, Rational(1, 2));
  G.addEdge(M2, M1, Rational(1, 2)); // Back edge: cycle.
  EXPECT_FALSE(G.verify().ok());
}

TEST(AssayGraphVerify, MixFractionsMustSumToOne) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addNode(NodeKind::Mix, "M");
  G.addEdge(A, M, Rational(1, 3));
  G.addEdge(B, M, Rational(1, 3));
  Status S = G.verify();
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("sum to"), std::string::npos);
}

TEST(AssayGraphVerify, InputWithInEdgeRejected) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  NodeId C = G.addInput("C");
  G.addEdge(M, C, Rational(1));
  EXPECT_FALSE(G.verify().ok());
}

TEST(AssayGraphVerify, UnaryNodeFractionMustBeOne) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId S = G.addNode(NodeKind::Sense, "S");
  G.addEdge(A, S, Rational(1, 2));
  EXPECT_FALSE(G.verify().ok());
}

TEST(AssayGraphVerify, ExcessShareRange) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId X = G.addNode(NodeKind::Excess, "X");
  G.addEdge(A, X, Rational(1));
  G.node(X).ExcessShare = Rational(0); // Out of (0,1).
  EXPECT_FALSE(G.verify().ok());
  G.node(X).ExcessShare = Rational(9, 10);
  EXPECT_TRUE(G.verify().ok());
}

TEST(AssayGraph, PrintAndDot) {
  AssayGraph G = assays::buildFigure2Example();
  std::string Text = G.str();
  EXPECT_NE(Text.find("mix"), std::string::npos);
  EXPECT_NE(Text.find("4/5"), std::string::npos);
  std::string Dot = G.dot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

TEST(AssayGraph, PaperAssayShapes) {
  AssayGraph Glucose = assays::buildGlucoseAssay();
  EXPECT_TRUE(Glucose.verify().ok());
  EXPECT_EQ(Glucose.numNodes(), 13); // 3 inputs + 5 mixes + 5 senses.
  EXPECT_EQ(Glucose.numEdges(), 15);

  AssayGraph Glycomics = assays::buildGlycomicsAssay();
  EXPECT_TRUE(Glycomics.verify().ok());
  int Unknown = 0;
  for (NodeId N : Glycomics.liveNodes())
    if (Glycomics.node(N).UnknownVolume)
      ++Unknown;
  EXPECT_EQ(Unknown, 3); // Three separations with unknown output volume.

  AssayGraph Enzyme = assays::buildEnzymeAssay(4);
  EXPECT_TRUE(Enzyme.verify().ok());
  // 4 inputs + 12 dilutions + 64 combos + 64 incubates + 64 senses.
  EXPECT_EQ(Enzyme.numNodes(), 4 + 12 + 64 * 3);
  // Diluent used 12 times; each dilution used 16 times.
  NodeId Diluent = InvalidNode;
  for (NodeId N : Enzyme.liveNodes())
    if (Enzyme.node(N).Name == "diluent")
      Diluent = N;
  ASSERT_NE(Diluent, InvalidNode);
  EXPECT_EQ(Enzyme.outEdges(Diluent).size(), 12u);
}

TEST(AssayGraph, EnzymeScalesWithDilutions) {
  for (int D : {2, 3, 5}) {
    AssayGraph G = assays::buildEnzymeAssay(D);
    EXPECT_TRUE(G.verify().ok());
    EXPECT_EQ(G.numNodes(), 4 + 3 * D + 3 * D * D * D);
  }
}
