//===- CanonicalTest.cpp - Canonical form & fingerprint tests --------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/ir/Canonical.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/support/Rational.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::ir;

namespace {

/// The Figure 2 example built in its natural order: inputs first, then
/// mixes in dependency order.
AssayGraph buildForward() {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId K = G.addMix("K", {{A, 1}, {B, 4}});
  NodeId L = G.addMix("L", {{B, 2}, {C, 1}});
  G.addMix("M", {{K, 2}, {L, 1}});
  G.addMix("N", {{L, 2}, {C, 3}});
  return G;
}

/// The same structure with nodes and edges inserted in a scrambled order
/// (mix nodes first, then inputs; edges interleaved backwards).
AssayGraph buildScrambled() {
  AssayGraph G;
  NodeId N = G.addNode(NodeKind::Mix, "N");
  NodeId M = G.addNode(NodeKind::Mix, "M");
  NodeId L = G.addNode(NodeKind::Mix, "L");
  NodeId K = G.addNode(NodeKind::Mix, "K");
  NodeId C = G.addInput("C");
  NodeId B = G.addInput("B");
  NodeId A = G.addInput("A");
  G.addEdge(C, N, Rational(3, 5));
  G.addEdge(L, N, Rational(2, 5));
  G.addEdge(L, M, Rational(1, 3));
  G.addEdge(K, M, Rational(2, 3));
  G.addEdge(C, L, Rational(1, 3));
  G.addEdge(B, L, Rational(2, 3));
  G.addEdge(B, K, Rational(4, 5));
  G.addEdge(A, K, Rational(1, 5));
  return G;
}

} // namespace

TEST(Canonical, InsertionOrderInvariance) {
  AssayGraph Forward = buildForward();
  AssayGraph Scrambled = buildScrambled();
  ASSERT_TRUE(Forward.verify().ok());
  ASSERT_TRUE(Scrambled.verify().ok());
  EXPECT_EQ(fingerprintGraph(Forward), fingerprintGraph(Scrambled));
}

TEST(Canonical, CanonicalGraphsAreByteIdentical) {
  AssayGraph Forward = buildForward();
  AssayGraph Scrambled = buildScrambled();
  AssayGraph CF = buildCanonicalGraph(Forward, canonicalize(Forward));
  AssayGraph CS = buildCanonicalGraph(Scrambled, canonicalize(Scrambled));
  EXPECT_EQ(CF.str(), CS.str());
  // Canonicalization preserves structure (and therefore the fingerprint).
  EXPECT_TRUE(CF.verify().ok());
  EXPECT_EQ(fingerprintGraph(CF), fingerprintGraph(Forward));
}

TEST(Canonical, DeadSlotsDoNotAffectFingerprint) {
  AssayGraph Clean = buildForward();
  // Same build plus a scratch subgraph that is then removed: dead slots
  // remain but the live structure is identical.
  AssayGraph Dirty = buildForward();
  NodeId Tmp = Dirty.addInput("scratch");
  NodeId Tmp2 = Dirty.addUnary(NodeKind::Sense, "scratch_sense", Tmp);
  Dirty.removeNode(Tmp2);
  Dirty.removeNode(Tmp);
  ASSERT_GT(Dirty.numNodeSlots(), Clean.numNodeSlots());
  EXPECT_EQ(fingerprintGraph(Clean), fingerprintGraph(Dirty));
}

TEST(Canonical, MixRatioChangesFingerprint) {
  AssayGraph Base = buildForward();
  AssayGraph Tweaked;
  {
    NodeId A = Tweaked.addInput("A");
    NodeId B = Tweaked.addInput("B");
    NodeId C = Tweaked.addInput("C");
    NodeId K = Tweaked.addMix("K", {{A, 1}, {B, 5}}); // 1:4 -> 1:5.
    NodeId L = Tweaked.addMix("L", {{B, 2}, {C, 1}});
    Tweaked.addMix("M", {{K, 2}, {L, 1}});
    Tweaked.addMix("N", {{L, 2}, {C, 3}});
  }
  EXPECT_NE(fingerprintGraph(Base), fingerprintGraph(Tweaked));
}

TEST(Canonical, NodeAttributesChangeFingerprint) {
  AssayGraph Base = buildForward();

  AssayGraph Renamed = buildForward();
  Renamed.node(0).Name = "A2";
  EXPECT_NE(fingerprintGraph(Base), fingerprintGraph(Renamed));

  AssayGraph Flagged = buildForward();
  Flagged.node(3).NoExcess = true;
  EXPECT_NE(fingerprintGraph(Base), fingerprintGraph(Flagged));

  AssayGraph Timed = buildForward();
  Timed.node(3).Params.Seconds = 42.0;
  EXPECT_NE(fingerprintGraph(Base), fingerprintGraph(Timed));

  AssayGraph Yielding = buildForward();
  Yielding.node(3).OutFraction = Rational(1, 2);
  EXPECT_NE(fingerprintGraph(Base), fingerprintGraph(Yielding));
}

TEST(Canonical, DistinguishesChainPositions) {
  // A chain of identically-named, identically-parameterized mixes: only
  // the position in the chain distinguishes them; refinement must still
  // separate a 3-chain from a 4-chain.
  auto Chain = [](int Len) {
    AssayGraph G;
    NodeId Prev = G.addInput("in");
    for (int I = 0; I < Len; ++I)
      Prev = G.addUnary(NodeKind::Incubate, "stage", Prev);
    return G;
  };
  EXPECT_NE(fingerprintGraph(Chain(3)), fingerprintGraph(Chain(4)));
  EXPECT_EQ(fingerprintGraph(Chain(4)), fingerprintGraph(Chain(4)));
}

TEST(Canonical, PaperAssaysAreStableAndDistinct) {
  Fingerprint Glucose = fingerprintGraph(assays::buildGlucoseAssay());
  Fingerprint Glucose2 = fingerprintGraph(assays::buildGlucoseAssay());
  EXPECT_EQ(Glucose, Glucose2);

  Fingerprint Enzyme4 = fingerprintGraph(assays::buildEnzymeAssay(4));
  Fingerprint Enzyme5 = fingerprintGraph(assays::buildEnzymeAssay(5));
  EXPECT_NE(Glucose, Enzyme4);
  EXPECT_NE(Enzyme4, Enzyme5);
}
