//===- SimulatorTest.cpp - AquaCore simulator tests -----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/Simulator.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Rounding.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;

namespace {

/// Managed program + simulation for a feasible static assay. The RVol
/// assignment is rounded to the hardware least count first (IVol), exactly
/// as a real deployment would meter it.
SimResult runManaged(const AssayGraph &G, const VolumeAssignment &RVol,
                     bool Regen = false) {
  IntegerAssignment IV = roundToLeastCount(G, RVol, MachineSpec{});
  EXPECT_FALSE(IV.Underflow);
  VolumeAssignment Volumes = integerToNl(G, IV, MachineSpec{});
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &Volumes;
  auto P = generateAIS(G, MachineLayout{}, CG);
  EXPECT_TRUE(P.ok()) << P.message();
  SimOptions SO;
  SO.EnableRegeneration = Regen;
  SO.Graph = &G;
  return simulate(*P, SO);
}

} // namespace

TEST(Simulator, GlucoseManagedRunsCleanly) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  SimResult S = runManaged(G, R.Volumes);
  ASSERT_TRUE(S.Completed) << S.Error;
  // With volume management there are no regenerations and no underflows
  // ("With DAGSolve, there are no regenerations").
  EXPECT_EQ(S.Regenerations, 0);
  EXPECT_EQ(S.UnderflowEvents, 0);
  EXPECT_EQ(S.SubLeastCountMoves, 0);
  ASSERT_EQ(S.Senses.size(), 5u);
}

TEST(Simulator, GlucoseSensedConcentrationsMatchRatios) {
  // End-to-end: the 1:1, 1:2, 1:4, 1:8 calibration points must arrive at
  // the sensor with glucose fractions 1/2, 1/3, 1/5, 1/9.
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  SimResult S = runManaged(G, R.Volumes);
  ASSERT_TRUE(S.Completed) << S.Error;

  // Least-count metering perturbs the achieved ratios by at most the
  // paper's Section 4.2 rounding error (< 2% relative).
  double Expected[] = {1.0 / 2, 1.0 / 3, 1.0 / 5, 1.0 / 9};
  for (int I = 0; I < 4; ++I) {
    const SenseReading &Read = S.Senses[I];
    EXPECT_EQ(Read.Name, "Result_" + std::to_string(I + 1));
    double Achieved = Read.Composition.at("Glucose");
    EXPECT_NEAR(Achieved, Expected[I], 0.02 * Expected[I]);
  }
  // Result 5 senses the sample mix.
  EXPECT_NEAR(S.Senses[4].Composition.at("Sample"), 0.5, 0.01);
}

TEST(Simulator, GlucoseNaiveNeedsRegeneration) {
  // Without volume management (relative program, fill-to-capacity policy)
  // the reagent runs out and regeneration must kick in -- the Table 2
  // baseline.
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  SimResult S = simulate(*P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_GT(S.Regenerations, 0);
  EXPECT_LT(S.Regenerations, 20); // Small assay: a handful of refills.
  ASSERT_EQ(S.Senses.size(), 5u);
  // Regeneration preserves chemistry up to metering resolution.
  EXPECT_NEAR(S.Senses[3].Composition.at("Glucose"), 1.0 / 9.0, 2e-3);
}

TEST(Simulator, NaiveWithoutRegenerationFails) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.EnableRegeneration = false;
  SO.Graph = &G;
  SimResult S = simulate(*P, SO);
  // The run limps along with underflows (shorted transfers).
  EXPECT_GT(S.UnderflowEvents, 0);
  EXPECT_EQ(S.Regenerations, 0);
}

TEST(Simulator, EnzymeNaiveRegenerationCount) {
  // The enzyme assay's 12-times-used diluent and 16-times-used dilutions
  // force many regenerations (paper: 85 with their unspecified policy;
  // ours must land in the same regime and be far larger than glucose's).
  AssayGraph G = assays::buildEnzymeAssay(4);
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  SimResult S = simulate(*P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_GT(S.Regenerations, 30);
  EXPECT_LT(S.Regenerations, 400);
  EXPECT_EQ(S.Senses.size(), 64u);
}

TEST(Simulator, EnzymeManagedHasNoRegenerations) {
  MachineSpec Spec;
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  ASSERT_TRUE(R.Feasible) << R.Log;
  SimResult S = runManaged(R.Graph, R.Volumes);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_EQ(S.Regenerations, 0);
  EXPECT_EQ(S.UnderflowEvents, 0);
  EXPECT_EQ(S.Senses.size(), 64u);
}

TEST(Simulator, ManagedBeatsNaiveOnWetTime) {
  // Regeneration re-executes on the slow fluidic datapath: the managed run
  // must finish in less simulated wet time.
  AssayGraph G = assays::buildEnzymeAssay(4);
  auto Naive = generateAIS(G);
  ASSERT_TRUE(Naive.ok());
  SimOptions SO;
  SO.Graph = &G;
  SimResult NaiveRun = simulate(*Naive, SO);

  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  SimResult ManagedRun = runManaged(R.Graph, R.Volumes);
  ASSERT_TRUE(ManagedRun.Completed);
  ASSERT_TRUE(NaiveRun.Completed);
  EXPECT_LT(ManagedRun.FluidSeconds, NaiveRun.FluidSeconds);
}

TEST(Simulator, SeparationYieldIsSeededAndBounded) {
  AssayGraph G = assays::buildGlycomicsAssay();
  auto P = generateAIS(G);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.Graph = &G;
  SimResult S1 = simulate(*P, SO);
  SimResult S2 = simulate(*P, SO);
  ASSERT_TRUE(S1.Completed) << S1.Error;
  // Determinism: same seed, same outcome.
  EXPECT_EQ(S1.FluidSeconds, S2.FluidSeconds);
  EXPECT_EQ(S1.Regenerations, S2.Regenerations);

  SO.Seed = 999;
  SimResult S3 = simulate(*P, SO);
  ASSERT_TRUE(S3.Completed) << S3.Error;

  // Fixed yield override.
  SO.FixedSeparationYield = 0.5;
  SimResult S4 = simulate(*P, SO);
  ASSERT_TRUE(S4.Completed) << S4.Error;
}

TEST(Simulator, InputAccountingTracksConsumption) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  SimResult S = runManaged(G, R.Volumes);
  ASSERT_TRUE(S.Completed);
  // Each input port was drawn exactly once (one reservoir fill).
  EXPECT_NEAR(S.InputDrawnNl.at("Glucose"), 100.0, 1e-9);
  EXPECT_NEAR(S.InputDrawnNl.at("Reagent"), 100.0, 1e-9);
  EXPECT_NEAR(S.InputDrawnNl.at("Sample"), 100.0, 1e-9);
}

TEST(Simulator, CascadedEnzymeRunsWithExcessDiscard) {
  // Full pipeline on the transformed enzyme graph: cascades' excess goes to
  // the waste port and the assay completes without regeneration.
  MachineSpec Spec;
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  ASSERT_TRUE(R.Feasible);
  VolumeAssignment Metered = integerToNl(R.Graph, R.Rounded, Spec);
  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = generateAIS(R.Graph, MachineLayout{}, CG);
  ASSERT_TRUE(P.ok()) << P.message();
  int Outputs = 0;
  for (const Instruction &I : P->Instrs)
    if (I.Op == Opcode::Output)
      ++Outputs;
  EXPECT_GT(Outputs, 0);
  SimOptions SO;
  SO.Graph = &R.Graph;
  SimResult S = simulate(*P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_EQ(S.Regenerations, 0);
}

TEST(Simulator, SubLeastCountMovesAreCounted) {
  // A managed-style program with a sub-least-count metered move.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  G.addUnary(NodeKind::Sense, "sense_R_1", M);

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 50.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  auto Edges = G.liveEdges();
  V.EdgeVolumeNl[Edges[0]] = 0.03; // Below the 0.1 nl least count.
  V.EdgeVolumeNl[Edges[1]] = 25.0;
  V.EdgeVolumeNl[Edges[2]] = 25.0;

  CodegenOptions CG;
  CG.Mode = VolumeMode::Managed;
  CG.Volumes = &V;
  auto P = generateAIS(G, MachineLayout{}, CG);
  ASSERT_TRUE(P.ok());
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(*P, SO);
  EXPECT_GE(S.SubLeastCountMoves, 1);
}
