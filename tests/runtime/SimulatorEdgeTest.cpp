//===- SimulatorEdgeTest.cpp - Simulator edge cases ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/Simulator.h"

#include "aqua/codegen/AISParser.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::runtime;

namespace {

AISProgram parse(const char *Text) {
  auto P = parseAIS(Text);
  EXPECT_TRUE(P.ok()) << P.message();
  return *P;
}

} // namespace

TEST(SimulatorEdge, OverflowIsClippedAndCounted) {
  // Two full reservoirs into one 100 nl mixer: the second transfer clips.
  AISProgram P = parse(R"(
input s1, ip1 ;A
input s2, ip2 ;B
move-abs mixer1, s1, 80
move-abs mixer1, s2, 80
mix mixer1, 5
)");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_GE(S.OverflowEvents, 1);
}

TEST(SimulatorEdge, MixOnEmptyUnitFails) {
  AISProgram P = parse("mix mixer1, 5\n");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(P, SO);
  EXPECT_FALSE(S.Completed);
  EXPECT_NE(S.Error.find("empty"), std::string::npos);
}

TEST(SimulatorEdge, SenseOnEmptyUnitFails) {
  AISProgram P = parse("sense.OD sensor1, R\n");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(P, SO);
  EXPECT_FALSE(S.Completed);
}

TEST(SimulatorEdge, SeparationLeavesEffluentAtOutPort) {
  AISProgram P = parse(R"(
input s1, ip1 ;A
move separator1, s1
separate.AF separator1, 10
move mixer1, separator1.out1
)");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SO.FixedSeparationYield = 0.25;
  SimResult S = simulate(P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  // 100 nl in, 25 nl of effluent moved on; no underflow on the move-all.
  EXPECT_EQ(S.UnderflowEvents, 0);
}

TEST(SimulatorEdge, ConcentrateShrinksVolume) {
  AISProgram P = parse(R"(
input s1, ip1 ;A
move heater1, s1
concentrate heater1, 95, 60
sense.OD heater1, R
)");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SO.FixedSeparationYield = 0.3;
  SimResult S = simulate(P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  ASSERT_EQ(S.Senses.size(), 1u);
  EXPECT_NEAR(S.Senses[0].VolumeNl, 30.0, 1e-6); // 100 nl * 0.3.
}

TEST(SimulatorEdge, InputRefillTopsUpOnly) {
  // Re-running input on a half-full reservoir draws only the difference.
  AISProgram P = parse(R"(
input s1, ip1 ;A
move-abs mixer1, s1, 40
input s1, ip1 ;A
)");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(P, SO);
  ASSERT_TRUE(S.Completed);
  EXPECT_NEAR(S.InputDrawnNl.at("A"), 140.0, 1e-9); // 100 + 40 top-up.
}

TEST(SimulatorEdge, SubLeastCountRequestMovesNothing) {
  AISProgram P = parse(R"(
input s1, ip1 ;A
move-abs mixer1, s1, 0.04
)");
  SimOptions SO;
  SO.EnableRegeneration = false;
  SimResult S = simulate(P, SO);
  ASSERT_TRUE(S.Completed);
  EXPECT_EQ(S.SubLeastCountMoves, 1);
}

TEST(SimulatorEdge, RegenerationExhaustionFailsWithDiagnostic) {
  // A 120 nl draw from a 100 nl-capacity reservoir: every regeneration
  // tops the reservoir back up to capacity but can never cover the
  // request, so the retry budget runs out and the run must fail loudly
  // instead of moving a short volume downstream.
  AISProgram P = parse(R"(
input s1, ip1 ;A
move-abs mixer1, s1, 120
mix mixer1, 5
)");
  SimOptions SO;
  SO.Spec.MaxCapacityNl = 100.0;
  SO.MaxRegenRetries = 3;
  SimResult S = simulate(P, SO);
  EXPECT_FALSE(S.Completed);
  EXPECT_NE(S.Error.find("regeneration exhausted after 3 retries"),
            std::string::npos)
      << S.Error;
  // One regeneration per retry, none of them hidden or double-counted.
  EXPECT_EQ(S.Regenerations, 3);
  EXPECT_GE(S.UnderflowEvents, 1);
}

TEST(SimulatorEdge, ShortageWithoutWriterStaysSilent) {
  // No producer to regenerate from: the legacy partial-move behavior is
  // preserved (counted as underflow, no hard failure).
  AISProgram P = parse(R"(
move-abs mixer1, sensor1, 10
)");
  SimOptions SO;
  SimResult S = simulate(P, SO);
  EXPECT_TRUE(S.Completed) << S.Error;
  EXPECT_GE(S.UnderflowEvents, 1);
}
