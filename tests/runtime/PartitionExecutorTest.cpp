//===- PartitionExecutorTest.cpp - Run-time dispensing tests ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/PartitionExecutor.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

} // namespace

TEST(PartitionExecutor, GlycomicsEndToEnd) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());

  SimOptions SO;
  SO.FixedSeparationYield = 0.5;
  PartitionRunResult R = executePartitioned(*Plan, SO);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.PartitionsExecuted, 4);
  EXPECT_EQ(R.Regenerations, 0);
  // All three separations were measured.
  EXPECT_EQ(R.MeasuredNl.size(), 3u);
  EXPECT_NEAR(R.MeasuredNl.at("effluent"), 50.0, 1e-6); // 100 nl * 0.5.

  // Partition 0 dispenses mix1 at capacity; partition 1's scale is bound
  // by the 50 nl buffer3a half (55 nl at mix3, as in the paper's numbers).
  NodeId Mix1 = findNode(Plan->Graph, "mix1");
  NodeId Mix3 = findNode(Plan->Graph, "mix3");
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[Mix1], 100.0, 1e-6);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[Mix3], 55.0, 1e-6);
}

TEST(PartitionExecutor, ScarceYieldTriggersRegenerationRequest) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());

  SimOptions SO;
  SO.FixedSeparationYield = 0.0005; // 0.05 nl of effluent from 100 nl.
  PartitionRunResult R = executePartitioned(*Plan, SO);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("regeneration"), std::string::npos) << R.Error;
}

TEST(PartitionExecutor, DeterministicUnderSeed) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());

  SimOptions SO;
  SO.Seed = 99;
  PartitionRunResult A = executePartitioned(*Plan, SO);
  PartitionRunResult B = executePartitioned(*Plan, SO);
  ASSERT_TRUE(A.Completed) << A.Error;
  EXPECT_EQ(A.MeasuredNl, B.MeasuredNl);
  EXPECT_EQ(A.FluidSeconds, B.FluidSeconds);
}

TEST(PartitionExecutor, KnownVolumeCutFluidIsPublished) {
  // The Figure 8 shape: a known-volume produced fluid X with one use in a
  // later wave. Its dispensed volume must feed the later partition.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId X = G.addMix("X", {{A, 1}, {B, 1}});
  NodeId Y = G.addMix("Y", {{X, 1}, {B, 1}});
  NodeId U = G.addUnary(NodeKind::Separate, "U", Y);
  G.node(U).UnknownVolume = true;
  NodeId Late = G.addMix("late", {{X, 1}, {U, 1}});
  G.addUnary(NodeKind::Sense, "sense_R_1", Late);
  ASSERT_TRUE(G.verify().ok());

  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());

  SimOptions SO;
  SO.FixedSeparationYield = 0.4;
  PartitionRunResult R = executePartitioned(*Plan, SO);
  ASSERT_TRUE(R.Completed) << R.Error;
  // X's dispensed volume was published for the late partition.
  EXPECT_TRUE(R.MeasuredNl.count("X"));
  EXPECT_TRUE(R.MeasuredNl.count("U"));
  ASSERT_EQ(R.Senses.size(), 1u);
  // The late mix consumed half of X's output at most.
  NodeId XPlan = findNode(Plan->Graph, "X");
  EXPECT_GT(R.Volumes.NodeVolumeNl[XPlan], 0.0);
}

TEST(PartitionExecutor, SingleStaticPartitionWorksToo) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());
  ASSERT_EQ(Plan->Parts.size(), 1u);

  SimOptions SO;
  PartitionRunResult R = executePartitioned(*Plan, SO);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.PartitionsExecuted, 1);
  EXPECT_EQ(R.Senses.size(), 5u);
  EXPECT_EQ(R.Regenerations, 0);
}
