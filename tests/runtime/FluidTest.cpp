//===- FluidTest.cpp - Simulated fluid state tests ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/Fluid.h"

#include <gtest/gtest.h>

using namespace aqua::runtime;

TEST(Fluid, PureAndEmpty) {
  Fluid F = Fluid::pure("water", 10.0);
  EXPECT_FALSE(F.empty());
  EXPECT_DOUBLE_EQ(F.VolumeNl, 10.0);
  EXPECT_DOUBLE_EQ(F.fractionOf("water"), 1.0);
  EXPECT_DOUBLE_EQ(F.fractionOf("oil"), 0.0);
  EXPECT_TRUE(Fluid().empty());
}

TEST(Fluid, MixingWeighsComposition) {
  Fluid A = Fluid::pure("glucose", 10.0);
  Fluid B = Fluid::pure("reagent", 80.0);
  A.add(B);
  EXPECT_DOUBLE_EQ(A.VolumeNl, 90.0);
  EXPECT_NEAR(A.fractionOf("glucose"), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(A.fractionOf("reagent"), 8.0 / 9.0, 1e-12);
}

TEST(Fluid, TakePreservesComposition) {
  Fluid A = Fluid::pure("x", 30.0);
  A.add(Fluid::pure("y", 10.0));
  Fluid Part = A.take(8.0);
  EXPECT_DOUBLE_EQ(Part.VolumeNl, 8.0);
  EXPECT_NEAR(Part.fractionOf("x"), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(A.VolumeNl, 32.0);
  EXPECT_NEAR(A.fractionOf("x"), 0.75, 1e-12);
}

TEST(Fluid, TakeClampsAndEmpties) {
  Fluid A = Fluid::pure("x", 5.0);
  Fluid All = A.take(99.0);
  EXPECT_DOUBLE_EQ(All.VolumeNl, 5.0);
  EXPECT_TRUE(A.empty());
  EXPECT_TRUE(A.Composition.empty());
}

TEST(Fluid, RepeatedMixesSumToOne) {
  Fluid F;
  for (int I = 0; I < 10; ++I)
    F.add(Fluid::pure("f" + std::to_string(I), 1.0 + I));
  double Sum = 0.0;
  for (auto &[Name, Frac] : F.Composition)
    Sum += Frac;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}
