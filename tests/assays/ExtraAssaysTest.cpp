//===- ExtraAssaysTest.cpp - Integration tests on realistic assays ---------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end integration over the extra assay library: every assay must
// verify, be volume-manageable (or partitionable), compile to AIS, and
// simulate without regeneration once managed.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/ExtraAssays.h"

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Partition.h"
#include "aqua/core/Rounding.h"
#include "aqua/lang/Lower.h"
#include "aqua/runtime/PartitionExecutor.h"
#include "aqua/runtime/Simulator.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

/// Manage + codegen + simulate; expect zero regenerations.
void runManagedEndToEnd(const AssayGraph &G, size_t ExpectedSenses) {
  MachineSpec Spec;
  ManagerResult VM = manageVolumes(G, Spec);
  ASSERT_TRUE(VM.Feasible) << VM.Log;
  EXPECT_GE(VM.MinDispenseNl, Spec.LeastCountNl - 1e-9);
  EXPECT_LT(VM.Rounded.MeanRatioErrorPct, 2.0);

  VolumeAssignment Metered = integerToNl(VM.Graph, VM.Rounded, Spec);
  codegen::CodegenOptions CG;
  CG.Mode = codegen::VolumeMode::Managed;
  CG.Volumes = &Metered;
  auto P = codegen::generateAIS(VM.Graph, {}, CG);
  ASSERT_TRUE(P.ok()) << P.message();

  runtime::SimOptions SO;
  SO.Graph = &VM.Graph;
  runtime::SimResult S = runtime::simulate(*P, SO);
  ASSERT_TRUE(S.Completed) << S.Error;
  EXPECT_EQ(S.Regenerations, 0);
  EXPECT_EQ(S.Senses.size(), ExpectedSenses);
}

} // namespace

TEST(ExtraAssays, BradfordProteinEndToEnd) {
  AssayGraph G = assays::buildBradfordProtein();
  ASSERT_TRUE(G.verify().ok());
  // The dye reagent is the heavily shared fluid: 9 uses.
  for (NodeId N : G.liveNodes()) {
    if (G.node(N).Name == "dye_reagent") {
      EXPECT_EQ(G.outEdges(N).size(), 9u);
    }
  }
  runManagedEndToEnd(G, 9);
}

TEST(ExtraAssays, BradfordSourceMatchesBuilder) {
  auto L = lang::compileAssay(assays::bradfordSource());
  ASSERT_TRUE(L.ok()) << L.message();
  AssayGraph Ref = assays::buildBradfordProtein();
  EXPECT_EQ(L->Graph.numNodes(), Ref.numNodes());
  EXPECT_EQ(L->Graph.numEdges(), Ref.numEdges());
  // Same volume behaviour: identical Vnorm multisets.
  MachineSpec Spec;
  DagSolveResult A = dagSolve(L->Graph, Spec);
  DagSolveResult B = dagSolve(Ref, Spec);
  EXPECT_EQ(A.MaxVnorm, B.MaxVnorm);
  EXPECT_NEAR(A.MinDispenseNl, B.MinDispenseNl, 1e-12);
}

TEST(ExtraAssays, PcrMasterMixNeedsReplicationOrSucceeds) {
  // One cocktail aliquoted 12 ways: the master mix is the capacity-pinned
  // node; the manager must end feasible (with replication if needed).
  AssayGraph G = assays::buildPcrMasterMix(12);
  ASSERT_TRUE(G.verify().ok());
  runManagedEndToEnd(G, 12);
}

TEST(ExtraAssays, MicPanelChainedDilutions) {
  AssayGraph G = assays::buildMicPanel(8);
  ASSERT_TRUE(G.verify().ok());
  // Every dilution except the last has two uses (next step + its well).
  int TwoUses = 0;
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name.rfind("dil", 0) == 0 && G.outEdges(N).size() == 2)
      ++TwoUses;
  EXPECT_EQ(TwoUses, 7);
  runManagedEndToEnd(G, 8);
}

TEST(ExtraAssays, ImmunoassayPartitionsAndRuns) {
  AssayGraph G = assays::buildImmunoassay();
  ASSERT_TRUE(G.verify().ok());
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok()) << Plan.message();
  EXPECT_EQ(Plan->Parts.size(), 3u); // Two unknown separations.

  runtime::SimOptions SO;
  SO.FixedSeparationYield = 0.5;
  runtime::PartitionRunResult R = runtime::executePartitioned(*Plan, SO);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.PartitionsExecuted, 3);
  EXPECT_EQ(R.MeasuredNl.size(), 2u);
  EXPECT_EQ(R.Senses.size(), 1u);
}

TEST(ExtraAssays, ScalingKnobsWork) {
  EXPECT_TRUE(assays::buildBradfordProtein(3, 1).verify().ok());
  EXPECT_TRUE(assays::buildPcrMasterMix(4).verify().ok());
  EXPECT_TRUE(assays::buildMicPanel(3).verify().ok());
}
