//===- BinarizeTest.cpp - K-ary mix binarization tests --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Cascading.h"

#include "aqua/core/DagSolve.h"
#include "aqua/core/Manager.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

/// Forward composition pass (share of each input fluid in a node).
std::map<std::string, double> compositionOf(const AssayGraph &G, NodeId N) {
  std::map<NodeId, std::map<std::string, double>> Comp;
  for (NodeId Id : G.topologicalOrder()) {
    const Node &Nd = G.node(Id);
    if (Nd.Kind == NodeKind::Input) {
      Comp[Id][Nd.Name] = 1.0;
      continue;
    }
    std::map<std::string, double> Mine;
    for (EdgeId E : G.inEdges(Id)) {
      double F = G.edge(E).Fraction.toDouble();
      for (const auto &[Name, Frac] : Comp[G.edge(E).Src])
        Mine[Name] += F * Frac;
    }
    Comp[Id] = std::move(Mine);
  }
  return Comp[N];
}

} // namespace

TEST(Binarize, PreservesCompositionExactly) {
  // Glycomics' 1:100:1 mix.
  AssayGraph G;
  NodeId A = G.addInput("eff");
  NodeId B = G.addInput("buf4");
  NodeId C = G.addInput("NaOH");
  NodeId M = G.addMix("M", {{A, 1}, {B, 100}, {C, 1}}, 30.0);
  G.addUnary(NodeKind::Sense, "out", M);
  auto Before = compositionOf(G, M);

  auto Created = binarizeMix(G, M);
  ASSERT_TRUE(Created.ok()) << Created.message();
  ASSERT_TRUE(G.verify().ok()) << G.verify().message();
  EXPECT_EQ(Created->size(), 1u); // 3 inputs -> one intermediate.
  EXPECT_EQ(G.inEdges(M).size(), 2u);

  auto After = compositionOf(G, M);
  for (const char *Name : {"eff", "buf4", "NaOH"})
    EXPECT_NEAR(After[Name], Before[Name], 1e-12) << Name;

  // Huffman pairing merges the two 1-part fluids first: the intermediate
  // is eff:NaOH at 1:1.
  NodeId Mid = (*Created)[0];
  for (EdgeId E : G.inEdges(Mid))
    EXPECT_EQ(G.edge(E).Fraction, Rational(1, 2));
}

TEST(Binarize, FiveWayMix) {
  AssayGraph G;
  std::vector<MixPart> Parts;
  for (int I = 0; I < 5; ++I)
    Parts.push_back(MixPart{G.addInput("in" + std::to_string(I)), I + 1});
  NodeId M = G.addMix("M", Parts, 10.0);
  G.addUnary(NodeKind::Sense, "out", M);
  auto Before = compositionOf(G, M);

  auto Created = binarizeMix(G, M);
  ASSERT_TRUE(Created.ok());
  ASSERT_TRUE(G.verify().ok()) << G.verify().message();
  EXPECT_EQ(Created->size(), 3u); // k-1-1 intermediates.
  auto After = compositionOf(G, M);
  for (const auto &[Name, Frac] : Before)
    EXPECT_NEAR(After.at(Name), Frac, 1e-12) << Name;
}

TEST(Binarize, RejectsBinaryAndNonMix) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  EXPECT_FALSE(binarizeMix(G, M).ok());
  EXPECT_FALSE(binarizeMix(G, A).ok());
}

TEST(Binarize, ManagerHandlesModeratelyExtremeKaryMix) {
  // 1:1500:2 defeats DAGSolve, but after binarization LP can exploit
  // excess production of the intermediate -- the hierarchy stops at LP.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1500}, {C, 2}});
  G.addUnary(NodeKind::Sense, "out", M);
  ASSERT_FALSE(dagSolve(G, MachineSpec{}).Feasible);

  ManagerResult R = manageVolumes(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_NE(R.Log.find("binarized"), std::string::npos) << R.Log;
  EXPECT_GE(R.MinDispenseNl, MachineSpec{}.LeastCountNl - 1e-9);
}

TEST(Binarize, ManagerCascadesVeryExtremeKaryMix) {
  // 1:50000:2 is beyond even LP's excess trick (the big side would need
  // 1600+ nl); the driver must binarize and then cascade.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId M = G.addMix("M", {{A, 1}, {B, 50000}, {C, 2}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerResult R = manageVolumes(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_NE(R.Log.find("binarized"), std::string::npos) << R.Log;
  EXPECT_GT(R.CascadesApplied, 0) << R.Log;
  EXPECT_GE(R.MinDispenseNl, MachineSpec{}.LeastCountNl - 1e-9);
  EXPECT_TRUE(R.Graph.verify().ok());
}
