//===- DagSolveTest.cpp - DAGSolve tests (paper Figures 2, 5, 12, 14) ---------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/DagSolve.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

EdgeId findEdge(const AssayGraph &G, NodeId Src, NodeId Dst) {
  for (EdgeId E : G.liveEdges())
    if (G.edge(E).Src == Src && G.edge(E).Dst == Dst)
      return E;
  return -1;
}

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

} // namespace

// The worked example of Figures 2 and 5: every Vnorm checked exactly.
TEST(DagSolve, Figure5ExactVnorms) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  MachineSpec Spec; // 100 nl, 0.1 nl.
  DagSolveResult R = dagSolve(G, Spec);

  // Output nodes are normalized to 1.
  EXPECT_EQ(R.NodeVnorm[N.M], Rational(1));
  EXPECT_EQ(R.NodeVnorm[N.N], Rational(1));
  // Figure 5(a): K = 2/3, L = 1/3 + 2/5 = 11/15.
  EXPECT_EQ(R.NodeVnorm[N.K], Rational(2, 3));
  EXPECT_EQ(R.NodeVnorm[N.L], Rational(11, 15));
  // Inputs: A = 2/15, B = 8/15 + 22/45 = 46/45, C = 11/45 + 3/5 = 38/45.
  EXPECT_EQ(R.NodeVnorm[N.A], Rational(2, 15));
  EXPECT_EQ(R.NodeVnorm[N.B], Rational(46, 45));
  EXPECT_EQ(R.NodeVnorm[N.C], Rational(38, 45));
  // Edge Vnorms from the paper's walk-through.
  EXPECT_EQ(R.EdgeVnorm[findEdge(G, N.B, N.L)], Rational(22, 45));
  EXPECT_EQ(R.EdgeVnorm[findEdge(G, N.C, N.L)], Rational(11, 45));
  EXPECT_EQ(R.EdgeVnorm[findEdge(G, N.A, N.K)], Rational(2, 15));
  EXPECT_EQ(R.EdgeVnorm[findEdge(G, N.K, N.M)], Rational(2, 3));
  EXPECT_EQ(R.EdgeVnorm[findEdge(G, N.L, N.N)], Rational(2, 5));

  // B holds the maximum Vnorm and is pinned to the machine maximum.
  EXPECT_EQ(R.MaxVnormNode, N.B);
  EXPECT_EQ(R.MaxVnorm, Rational(46, 45));
}

TEST(DagSolve, Figure5DispensedVolumes) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);

  // Figure 5(b), exact values (the paper prints them rounded to integers:
  // 52, 48, 24, 13, 59, 65).
  double Scale = 100.0 / (46.0 / 45.0);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[N.B], 100.0, 1e-9);
  EXPECT_NEAR(R.Volumes.EdgeVolumeNl[findEdge(G, N.B, N.K)],
              8.0 / 15.0 * Scale, 1e-9); // 52.17
  EXPECT_NEAR(R.Volumes.EdgeVolumeNl[findEdge(G, N.B, N.L)],
              22.0 / 45.0 * Scale, 1e-9); // 47.83
  EXPECT_NEAR(R.Volumes.EdgeVolumeNl[findEdge(G, N.C, N.L)],
              11.0 / 45.0 * Scale, 1e-9); // 23.91
  EXPECT_NEAR(R.Volumes.EdgeVolumeNl[findEdge(G, N.A, N.K)],
              2.0 / 15.0 * Scale, 1e-9); // 13.04
  EXPECT_NEAR(R.Volumes.EdgeVolumeNl[findEdge(G, N.C, N.N)],
              3.0 / 5.0 * Scale, 1e-9); // 58.70
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[N.K], 2.0 / 3.0 * Scale, 1e-9); // 65.22

  // Rounded to integers these are the paper's published numbers.
  EXPECT_EQ(std::llround(R.Volumes.EdgeVolumeNl[findEdge(G, N.B, N.K)]), 52);
  EXPECT_EQ(std::llround(R.Volumes.EdgeVolumeNl[findEdge(G, N.B, N.L)]), 48);
  EXPECT_EQ(std::llround(R.Volumes.EdgeVolumeNl[findEdge(G, N.C, N.L)]), 24);
  EXPECT_EQ(std::llround(R.Volumes.EdgeVolumeNl[findEdge(G, N.A, N.K)]), 13);
  EXPECT_EQ(std::llround(R.Volumes.EdgeVolumeNl[findEdge(G, N.C, N.N)]), 59);
  EXPECT_EQ(std::llround(R.Volumes.NodeVolumeNl[N.K]), 65);

  EXPECT_NEAR(R.MinDispenseNl, 2.0 / 15.0 * Scale, 1e-9);
}

// Figure 12: glucose volume assignment. The paper reports the smallest
// dispensed volume as 3.3 nl, well above the 0.1 nl least count, with no
// run-time work needed.
TEST(DagSolve, GlucoseFigure12) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);

  NodeId Reagent = findNode(G, "Reagent");
  NodeId Glucose = findNode(G, "Glucose");
  NodeId Sample = findNode(G, "Sample");
  // Reagent Vnorm = 1/2 + 2/3 + 4/5 + 8/9 + 1/2 = 151/45 (the maximum).
  EXPECT_EQ(R.NodeVnorm[Reagent], Rational(151, 45));
  EXPECT_EQ(R.MaxVnormNode, Reagent);
  // Glucose = 1/2 + 1/3 + 1/5 + 1/9 = 103/90; Sample = 1/2.
  EXPECT_EQ(R.NodeVnorm[Glucose], Rational(103, 90));
  EXPECT_EQ(R.NodeVnorm[Sample], Rational(1, 2));

  // Minimum dispense: glucose's edge into the 1:8 mix = (1/9) * 4500/151
  // = 3.31 nl -- the paper's "smallest volume dispensed is 3.3 nl".
  EXPECT_NEAR(R.MinDispenseNl, 500.0 / 151.0, 1e-9);
  EXPECT_NEAR(R.MinDispenseNl, 3.31, 0.005);
}

// Figure 14(a): the enzyme assay before any transform. Dilutions sit at
// Vnorm 16/3, the diluent dominates at ~54, and the 1:999 mix underflows at
// 9.8 pl.
TEST(DagSolve, EnzymeFigure14Initial) {
  AssayGraph G = assays::buildEnzymeAssay(4);
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_FALSE(R.Feasible); // The 9.8 pl underflow.

  NodeId Diluent = findNode(G, "diluent");
  NodeId Dil999 = findNode(G, "enz_dil4");
  ASSERT_NE(Diluent, InvalidNode);
  ASSERT_NE(Dil999, InvalidNode);

  // Every dilution is used in 16 of the 64 combination mixes at 1/3 each.
  EXPECT_EQ(R.NodeVnorm[Dil999], Rational(16, 3));
  // Diluent: 3 reagents x (1/2 + 9/10 + 99/100 + 999/1000) * 16/3 =
  // 6778/125 = 54.224 (the paper rounds to 54).
  EXPECT_EQ(R.NodeVnorm[Diluent], Rational(6778, 125));
  EXPECT_EQ(R.MaxVnormNode, Diluent);

  // Dilution volume 9.8 nl; enzyme input to the 1:999 mix 9.8 pl.
  double Scale = 100.0 / (6778.0 / 125.0);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[Dil999], 16.0 / 3.0 * Scale, 1e-9);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[Dil999], 9.83, 0.01);
  EXPECT_NEAR(R.MinDispenseNl, 16.0 / 3.0 / 1000.0 * Scale, 1e-9);
  EXPECT_NEAR(R.MinDispenseNl * 1000.0, 9.83, 0.01); // In picoliters.

  // Each combination mix splits a dilution into 0.6 nl portions and holds
  // 1.8 nl total.
  NodeId Combo = findNode(G, "combo_1_1_1");
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[Combo], 1.84, 0.01);
}

TEST(DagSolve, OutputWeightsSkewOutputs) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DagSolveOptions Opts;
  Opts.OutputWeights = {{N.M, Rational(3)}}; // Want 3x more M than N.
  DagSolveResult R = dagSolve(G, MachineSpec{}, Opts);
  EXPECT_EQ(R.NodeVnorm[N.M], Rational(3));
  EXPECT_EQ(R.NodeVnorm[N.N], Rational(1));
  EXPECT_EQ(R.NodeVnorm[N.K], Rational(2)); // 2/3 * 3.
}

TEST(DagSolve, PinnedNodeDispensing) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DagSolveOptions Opts;
  Opts.PinnedNode = N.M;
  Opts.PinnedVolumeNl = 10.0; // Want exactly 10 nl of M.
  DagSolveResult R = dagSolve(G, MachineSpec{}, Opts);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[N.M], 10.0, 1e-9);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[N.K], 20.0 / 3.0, 1e-9);
  EXPECT_TRUE(R.Feasible);
}

TEST(DagSolve, SeparationYieldScalesInputSide) {
  // A separate with known yield 1/2: to deliver V at the output its input
  // must be 2V, and the input side binds the capacity.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId S = G.addUnary(NodeKind::Separate, "S", A);
  G.node(S).OutFraction = Rational(1, 2);
  G.addUnary(NodeKind::Sense, "out", S);
  ASSERT_TRUE(G.verify().ok());

  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.NodeVnorm[S], Rational(1));          // Output side.
  EXPECT_EQ(nodeInputVnorm(G, S, R), Rational(2)); // Input side.
  EXPECT_EQ(R.NodeVnorm[A], Rational(2));
  // A is pinned at 100 nl; the separation yields 50 nl.
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[A], 100.0, 1e-9);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[S], 50.0, 1e-9);
}

TEST(DagSolve, ExcessNodeDerivedFromSource) {
  // Hand-built single cascade stage (Figure 7): C' = A:B 1:9, discard 9/10,
  // final = C':B 1:9.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C1 = G.addMix("C1", {{A, 1}, {B, 9}});
  NodeId X = G.addNode(NodeKind::Excess, "X");
  G.node(X).ExcessShare = Rational(9, 10);
  G.addEdge(C1, X, Rational(1));
  NodeId Final = G.addNode(NodeKind::Mix, "final");
  G.addEdge(C1, Final, Rational(1, 10));
  G.addEdge(B, Final, Rational(9, 10));
  ASSERT_TRUE(G.verify().ok());

  DagSolveResult R = dagSolve(G, MachineSpec{});
  // Final output Vnorm 1; C' must produce 10x what the final stage uses:
  // (1/10) / (1 - 9/10) = 1 -- "an excess node ... with Vnorm equal to
  // 0.9 * Vnorm(C')".
  EXPECT_EQ(R.NodeVnorm[Final], Rational(1));
  EXPECT_EQ(R.NodeVnorm[C1], Rational(1));
  EXPECT_EQ(R.NodeVnorm[X], Rational(9, 10));
  // A into the cascade: 1/10 of C' = 1/10 -- a 10x amplification over the
  // direct 1:99 mix's 1/100.
  EXPECT_EQ(R.NodeVnorm[A], Rational(1, 10));
  // B: 9/10 + 9/10 = 9/5.
  EXPECT_EQ(R.NodeVnorm[B], Rational(9, 5));
}

TEST(DagSolve, UnderflowDetected) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  G.addMix("M", {{A, 1}, {B, 1999}}); // 1:1999 cannot be metered directly.
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_FALSE(R.Feasible);
  EXPECT_LT(R.MinDispenseNl, 0.1);
}

TEST(DagSolve, EmptyGraphInfeasible) {
  AssayGraph G;
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_FALSE(R.Feasible);
}

TEST(DagSolve, VolumeAssignmentHelpers) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_TRUE(R.Volumes.feasible(G, MachineSpec{}));
  EXPECT_NEAR(R.Volumes.minDispenseNl(G), R.MinDispenseNl, 1e-12);
  EXPECT_GT(R.Volumes.maxNodeVolumeNl(G), 99.0);
  EXPECT_FALSE(R.Volumes.str(G).empty());
}
