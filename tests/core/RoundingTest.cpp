//===- RoundingTest.cpp - RVol->IVol rounding tests (Section 4.2) --------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Rounding.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Rounding, ExactMultiplesRoundWithoutError) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 3}});
  G.addUnary(NodeKind::Sense, "out", M);
  MachineSpec Spec; // least count 0.1 nl.

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  V.NodeVolumeNl[A] = 10.0;
  V.NodeVolumeNl[B] = 30.0;
  V.NodeVolumeNl[M] = 40.0;
  for (EdgeId E : G.liveEdges())
    V.EdgeVolumeNl[E] = G.edge(E).Src == A   ? 10.0
                        : G.edge(E).Src == B ? 30.0
                                             : 40.0;

  IntegerAssignment I = roundToLeastCount(G, V, Spec);
  EXPECT_FALSE(I.Underflow);
  EXPECT_FALSE(I.Overflow);
  EXPECT_EQ(I.MaxRatioErrorPct, 0.0);
  EXPECT_EQ(I.NodeUnits[M], 400);
}

TEST(Rounding, GlucoseErrorBelowTwoPercent) {
  // Section 4.2: "Averaged across the glucose and enzyme assays, the error
  // was no more than 2%", with max 100 nl and least count 0.1 nl.
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);
  ASSERT_TRUE(R.Feasible);
  IntegerAssignment I = roundToLeastCount(G, R.Volumes, Spec);
  EXPECT_FALSE(I.Underflow);
  EXPECT_FALSE(I.Overflow);
  EXPECT_LT(I.MeanRatioErrorPct, 2.0);
  EXPECT_LT(I.MaxRatioErrorPct, 2.0);
}

TEST(Rounding, Figure2RoundsFeasibly) {
  AssayGraph G = assays::buildFigure2Example();
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);
  IntegerAssignment I = roundToLeastCount(G, R.Volumes, Spec);
  EXPECT_FALSE(I.Underflow);
  EXPECT_FALSE(I.Overflow);
  // 13.04 nl rounds to 130 units; node volumes recomputed from edges.
  EXPECT_LT(I.MeanRatioErrorPct, 0.5);
  for (NodeId N : G.liveNodes()) {
    auto In = G.inEdges(N);
    if (In.empty())
      continue;
    std::int64_t Sum = 0;
    for (EdgeId E : In)
      Sum += I.EdgeUnits[E];
    EXPECT_EQ(I.NodeUnits[N], Sum);
  }
}

TEST(Rounding, SubLeastCountUnderflows) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 999}});
  G.addUnary(NodeKind::Sense, "out", M);
  MachineSpec Spec;

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  // 0.04 nl < half the least count: rounds to zero units.
  for (EdgeId E : G.liveEdges())
    V.EdgeVolumeNl[E] = G.edge(E).Src == A ? 0.04 : 39.96;
  IntegerAssignment I = roundToLeastCount(G, V, Spec);
  EXPECT_TRUE(I.Underflow);
}

TEST(Rounding, YieldFractionAppliesToNodeUnits) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId S = G.addUnary(NodeKind::Separate, "S", A);
  G.node(S).OutFraction = Rational(1, 3);
  G.addUnary(NodeKind::Sense, "out", S);
  MachineSpec Spec;

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  for (EdgeId E : G.liveEdges())
    V.EdgeVolumeNl[E] = 10.0;
  V.NodeVolumeNl[A] = 10.0;
  IntegerAssignment I = roundToLeastCount(G, V, Spec);
  // 100 units in, yield 1/3 -> 33 units out (nearest).
  EXPECT_EQ(I.NodeUnits[S], 33);
}

TEST(Rounding, MixRatioErrorMetric) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 2}});
  G.addUnary(NodeKind::Sense, "out", M);

  IntegerAssignment I;
  I.NodeUnits.assign(G.numNodeSlots(), 0);
  I.EdgeUnits.assign(G.numEdgeSlots(), 0);
  // Achieved 1:1.9 instead of 1:2 on the mix in-edges.
  for (EdgeId E : G.liveEdges()) {
    if (G.edge(E).Dst != M)
      continue;
    I.EdgeUnits[E] = G.edge(E).Src == A ? 10 : 19;
  }
  auto [MaxErr, MeanErr] = mixRatioErrorPct(G, I);
  // Achieved fractions 10/29 vs 1/3 and 19/29 vs 2/3.
  EXPECT_NEAR(MaxErr, (10.0 / 29.0 - 1.0 / 3.0) / (1.0 / 3.0) * 100.0, 1e-9);
  EXPECT_GT(MeanErr, 0.0);
  EXPECT_LE(MeanErr, MaxErr);
}
