//===- VerifyTest.cpp - Assignment verification tests ----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Verify.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Rounding.h"

#include <gtest/gtest.h>

#include <set>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Verify, AcceptsDagSolveAssignments) {
  for (int Which = 0; Which < 2; ++Which) {
    AssayGraph G = Which == 0 ? assays::buildGlucoseAssay()
                              : assays::buildFigure2Example();
    MachineSpec Spec;
    DagSolveResult R = dagSolve(G, Spec);
    ASSERT_TRUE(R.Feasible);
    auto Violations = verifyAssignment(G, R.Volumes, Spec);
    EXPECT_TRUE(Violations.empty()) << violationsToString(Violations);

    // DAGSolve's equal outputs satisfy even a 0%-band class 6.
    VerifyOptions Strict;
    Strict.OutputBalancePct = 0.0;
    EXPECT_TRUE(verifyAssignment(G, R.Volumes, Spec, Strict).empty());
  }
}

TEST(Verify, RoundedAssignmentPassesWithRatioTolerance) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);
  IntegerAssignment I = roundToLeastCount(G, R.Volumes, Spec);
  VolumeAssignment Metered = integerToNl(G, I, Spec);

  // Exact ratio checking flags the rounding...
  auto Exact = verifyAssignment(G, Metered, Spec);
  bool HasClass4 = false;
  for (const Violation &V : Exact)
    if (V.ConstraintClass == 4)
      HasClass4 = true;
  EXPECT_TRUE(HasClass4);

  // ...while the paper's 2% rounding tolerance accepts it.
  VerifyOptions Lenient;
  Lenient.RatioTolerance = 0.02;
  auto Ok = verifyAssignment(G, Metered, Spec, Lenient);
  EXPECT_TRUE(Ok.empty()) << violationsToString(Ok);
}

TEST(Verify, DiagnosesEachConstraintClass) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 3}});
  G.addUnary(NodeKind::Sense, "out", M);
  MachineSpec Spec;

  VolumeAssignment V;
  V.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  V.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  auto Edges = G.liveEdges(); // A->M, B->M, M->out.
  V.EdgeVolumeNl[Edges[0]] = 0.05;  // Class 1: below least count.
  V.EdgeVolumeNl[Edges[1]] = 150.0; // Class 2: M overflows; class 4: ratio.
  V.EdgeVolumeNl[Edges[2]] = 70.0;
  V.NodeVolumeNl[A] = 0.05;
  V.NodeVolumeNl[B] = 20.0; // Class 3: uses 150 from 20.
  V.NodeVolumeNl[M] = 60.0; // Class 5: 60 != 150.05 input.

  auto Violations = verifyAssignment(G, V, Spec);
  std::set<int> Classes;
  for (const Violation &Viol : Violations)
    Classes.insert(Viol.ConstraintClass);
  for (int C : {1, 2, 3, 4, 5})
    EXPECT_TRUE(Classes.count(C)) << "missing class " << C << "\n"
                                  << violationsToString(Violations);
  EXPECT_FALSE(violationsToString(Violations).empty());
}

TEST(Verify, SizeMismatchIsStructural) {
  AssayGraph G = assays::buildFigure2Example();
  VolumeAssignment V; // Empty vectors.
  auto Violations = verifyAssignment(G, V, MachineSpec{});
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].ConstraintClass, 0);
}

TEST(Verify, OutputBalanceBand) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  MachineSpec Spec;
  DagSolveOptions Opts;
  Opts.OutputWeights = {{N.M, Rational(3)}}; // Deliberate 3:1 skew.
  DagSolveResult R = dagSolve(G, Spec, Opts);

  VerifyOptions Band;
  Band.OutputBalancePct = 10.0;
  auto Violations = verifyAssignment(G, R.Volumes, Spec, Band);
  bool HasClass6 = false;
  for (const Violation &V : Violations)
    if (V.ConstraintClass == 6)
      HasClass6 = true;
  EXPECT_TRUE(HasClass6);
}
