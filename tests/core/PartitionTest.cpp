//===- PartitionTest.cpp - Statically-unknown volume tests (Section 3.5) -------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Partition.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

} // namespace

TEST(Partition, FullyStaticGraphIsOnePartition) {
  AssayGraph G = assays::buildGlucoseAssay();
  auto Plan = buildPartitionPlan(G, MachineSpec{});
  ASSERT_TRUE(Plan.ok()) << Plan.message();
  EXPECT_EQ(Plan->Parts.size(), 1u);
  EXPECT_TRUE(Plan->Inputs.empty());
}

// Figure 13: the glycomics assay partitions into four pieces at the three
// unknown-volume separations, buffer3a splits 50/50, and the X2 constrained
// input carries Vnorm 1/204.
TEST(Partition, GlycomicsFigure13) {
  AssayGraph G = assays::buildGlycomicsAssay();
  auto Plan = buildPartitionPlan(G, MachineSpec{});
  ASSERT_TRUE(Plan.ok()) << Plan.message();
  ASSERT_EQ(Plan->Parts.size(), 4u) << Plan->str();

  const AssayGraph &PG = Plan->Graph;

  // Partition waves 0..3 in order.
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Plan->Parts[I].Wave, static_cast<int>(I));

  // Three measured constrained inputs (the separation outputs) and two
  // split halves of buffer3a.
  int Measured = 0, PortSplit = 0;
  for (const auto &CI : Plan->Inputs) {
    if (CI.FromInputPort)
      ++PortSplit;
    else
      ++Measured;
  }
  EXPECT_EQ(Measured, 3);
  EXPECT_EQ(PortSplit, 2);

  // buffer3a: each half gets share 1/2 ("each of which gets half the
  // default maximum (i.e., 50 nl)").
  for (const auto &CI : Plan->Inputs) {
    if (!CI.FromInputPort)
      continue;
    EXPECT_EQ(PG.node(CI.Source).Name, "buffer3a");
    EXPECT_EQ(CI.Share, Rational(1, 2));
  }

  // X2 = the constrained input fed by effluent2, used in partition 3's
  // 1:100:1 mix: Vnorm 1/204.
  NodeId Eff2 = findNode(PG, "effluent2");
  ASSERT_NE(Eff2, InvalidNode);
  NodeId X2 = InvalidNode;
  for (const auto &CI : Plan->Inputs)
    if (CI.Source == Eff2)
      X2 = CI.Node;
  ASSERT_NE(X2, InvalidNode);
  EXPECT_EQ(Plan->Vnorms.NodeVnorm[X2], Rational(1, 204));

  // Partition 2's dominant fluid is the 10/11 buffer3a half; partition 3's
  // members include buffer4 at 25/51.
  NodeId Buf4 = findNode(PG, "buffer4");
  EXPECT_EQ(Plan->Vnorms.NodeVnorm[Buf4], Rational(25, 51));

  // Each unknown separation is a leaf of its own partition with Vnorm 1.
  for (const char *Name : {"effluent", "effluent2", "effluent3"}) {
    NodeId S = findNode(PG, Name);
    ASSERT_NE(S, InvalidNode);
    EXPECT_EQ(Plan->Vnorms.NodeVnorm[S], Rational(1)) << Name;
    EXPECT_TRUE(PG.isLeaf(S));
  }
}

TEST(Partition, GlycomicsDispensing) {
  AssayGraph G = assays::buildGlycomicsAssay();
  MachineSpec Spec;
  auto Plan = buildPartitionPlan(G, Spec);
  ASSERT_TRUE(Plan.ok());

  // Partition 0 has no constrained inputs: standard capacity dispensing.
  VolumeAssignment P0 =
      dispensePartition(*Plan, 0, std::vector<double>(Plan->Inputs.size(), -1.0),
                        Spec);
  NodeId Mix1 = findNode(Plan->Graph, "mix1");
  EXPECT_NEAR(P0.NodeVolumeNl[Mix1], 100.0, 1e-9);

  // Partition at wave 1 consumes the measured effluent volume. Feed it a
  // generous measurement: capacity-limited.
  std::vector<double> Avail(Plan->Inputs.size(), -1.0);
  NodeId Eff1 = findNode(Plan->Graph, "effluent");
  int Eff1Ref = -1;
  for (size_t I = 0; I < Plan->Inputs.size(); ++I)
    if (Plan->Inputs[I].Source == Eff1)
      Eff1Ref = static_cast<int>(I);
  ASSERT_GE(Eff1Ref, 0);

  Avail[Eff1Ref] = 80.0;
  VolumeAssignment P1 = dispensePartition(*Plan, 1, Avail, Spec);
  // Partition 1's max Vnorm is buffer3a's half (10/11); a plentiful
  // effluent leaves the buffer3a 50 nl cap binding: scale = 50/(10/11).
  NodeId Mix3 = findNode(Plan->Graph, "mix3");
  EXPECT_NEAR(P1.NodeVolumeNl[Mix3], 55.0, 1e-6);

  // A scarce measurement binds instead: scale = 0.22/(1/22) = 4.84.
  Avail[Eff1Ref] = 0.22;
  VolumeAssignment P1Scarce = dispensePartition(*Plan, 1, Avail, Spec);
  EXPECT_NEAR(P1Scarce.NodeVolumeNl[Mix3], 4.84, 1e-6);
}

TEST(Partition, CrossPartitionProducedFluidSplitsConservatively) {
  // Figure 8: X is produced in wave 0 but one use transitively crosses an
  // unknown separation; all of X's uses split 1/N.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId X = G.addMix("X", {{A, 1}, {B, 1}});
  // Early use (wave 0).
  NodeId Y = G.addMix("Y", {{X, 1}, {B, 1}});
  NodeId U = G.addUnary(NodeKind::Separate, "U", Y);
  G.node(U).UnknownVolume = true;
  // Late use (wave 1): mixes X with U's measured output.
  NodeId Late = G.addMix("late", {{X, 1}, {U, 1}});
  G.addUnary(NodeKind::Sense, "out", Late);
  ASSERT_TRUE(G.verify().ok());

  auto Plan = buildPartitionPlan(G, MachineSpec{});
  ASSERT_TRUE(Plan.ok()) << Plan.message();
  // Cutting X's out-edges separates {A,X} from {B,Y,U}; the late mix forms
  // the third partition.
  EXPECT_EQ(Plan->Parts.size(), 3u) << Plan->str();

  // X was cut: two constrained inputs of share 1/2 each (X', X'').
  int XSplits = 0;
  for (const auto &CI : Plan->Inputs)
    if (CI.Source == X) {
      ++XSplits;
      EXPECT_EQ(CI.Share, Rational(1, 2));
      EXPECT_FALSE(CI.FromInputPort);
    }
  EXPECT_EQ(XSplits, 2);
  // X itself became a leaf of partition 0.
  EXPECT_TRUE(Plan->Graph.isLeaf(X));

  // U's measured output is a constrained input too.
  int USplits = 0;
  for (const auto &CI : Plan->Inputs)
    if (CI.Source == U)
      ++USplits;
  EXPECT_EQ(USplits, 1);
}

TEST(Partition, SameWaveUsesMergeIntoOneConstrainedInput) {
  // The m/N refinement: two same-partition uses of a cut fluid merge into
  // a single constrained input with share m/N = 2/3.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId X = G.addMix("X", {{A, 1}, {B, 1}});
  NodeId U = G.addUnary(NodeKind::Separate, "U", X);
  G.node(U).UnknownVolume = true;
  // Wave-1 consumers: two mixes both using X2 (the produced fluid)...
  NodeId X2 = G.addMix("X2", {{A, 1}, {B, 1}});
  NodeId M1 = G.addMix("m1", {{X2, 1}, {U, 1}});
  NodeId M2 = G.addMix("m2", {{X2, 1}, {M1, 1}});
  G.addUnary(NodeKind::Sense, "out", M2);
  // ...and one wave-0 consumer.
  NodeId M0 = G.addMix("m0", {{X2, 1}, {B, 1}});
  NodeId S0 = G.addUnary(NodeKind::Separate, "S0", M0);
  G.node(S0).UnknownVolume = true;
  ASSERT_TRUE(G.verify().ok());

  auto Plan = buildPartitionPlan(G, MachineSpec{});
  ASSERT_TRUE(Plan.ok()) << Plan.message();

  // X2's three uses split 1/3 each, but m1/m2 share a partition: one
  // constrained input of 2/3 plus one of 1/3.
  std::vector<Rational> Shares;
  for (const auto &CI : Plan->Inputs)
    if (CI.Source == X2)
      Shares.push_back(CI.Share);
  ASSERT_EQ(Shares.size(), 2u);
  Rational Sum = Shares[0] + Shares[1];
  EXPECT_EQ(Sum, Rational(1));
  EXPECT_TRUE((Shares[0] == Rational(1, 3) && Shares[1] == Rational(2, 3)) ||
              (Shares[0] == Rational(2, 3) && Shares[1] == Rational(1, 3)));
}
