//===- ManagerTest.cpp - Volume-management hierarchy tests (Figure 6) ----------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Manager.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Manager, GlucoseSolvedByDagSolveDirectly) {
  MachineSpec Spec;
  ManagerResult R = manageVolumes(assays::buildGlucoseAssay(), Spec);
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_EQ(R.Method, SolveMethod::DagSolve);
  EXPECT_EQ(R.CascadesApplied, 0);
  EXPECT_EQ(R.ReplicationsApplied, 0);
  EXPECT_NEAR(R.MinDispenseNl, 3.31, 0.01);
  EXPECT_FALSE(R.Rounded.Underflow);
  EXPECT_LT(R.Rounded.MeanRatioErrorPct, 2.0);
}

TEST(Manager, Figure2SolvedByDagSolve) {
  ManagerResult R = manageVolumes(assays::buildFigure2Example(), MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Method, SolveMethod::DagSolve);
}

TEST(Manager, EnzymeNeedsTransforms) {
  // The raw enzyme assay defeats both DAGSolve (9.8 pl underflow) and LP
  // (one diluent reservoir can't cover the serial dilutions). The driver
  // must cascade the extreme mixes and end feasible.
  MachineSpec Spec;
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_GT(R.CascadesApplied, 0);
  EXPECT_GE(R.MinDispenseNl, Spec.LeastCountNl - 1e-9);
  EXPECT_TRUE(R.Graph.verify().ok());
  // The transformed graph grew (cascade stages + excess nodes).
  EXPECT_GT(R.Graph.numNodes(), assays::buildEnzymeAssay(4).numNodes());
}

TEST(Manager, LPFallbackBeatsDagSolve) {
  // A graph where DAGSolve's equal-output constraint underflows but LP
  // succeeds: output P is reached through a 1:49 dilution while output Q
  // shares the same source fluid with heavy usage. DAGSolve forces P == Q
  // volumes, starving P's small edge; LP may skew outputs.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  // P: needs 1/25 of its mix from A.
  NodeId MixP = G.addMix("mixP", {{A, 1}, {B, 24}});
  G.addUnary(NodeKind::Sense, "P", MixP);
  // Q: many parallel uses of A at 1:1, forcing A's Vnorm to ~42.5 under
  // DAGSolve's equal outputs, which starves P's 1:24 edge (0.092 nl); LP
  // may instead shrink the Q outputs within the 10% balance band.
  for (int I = 0; I < 85; ++I) {
    NodeId MixQ = G.addMix("mixQ" + std::to_string(I), {{A, 1}, {B, 1}});
    G.addUnary(NodeKind::Sense, "Q" + std::to_string(I), MixQ);
  }
  ASSERT_TRUE(G.verify().ok());

  MachineSpec Spec;
  DagSolveResult DS = dagSolve(G, Spec);
  ASSERT_FALSE(DS.Feasible);

  ManagerOptions Opts;
  Opts.AllowCascading = false;
  Opts.AllowReplication = false;
  ManagerResult R = manageVolumes(G, Spec, Opts);
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_EQ(R.Method, SolveMethod::LP);
  EXPECT_GE(R.MinDispenseNl, Spec.LeastCountNl - 1e-9);
}

TEST(Manager, InfeasibleWithoutTransformsReportsFailure) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerOptions Opts;
  Opts.AllowCascading = false;
  Opts.AllowReplication = false;
  ManagerResult R = manageVolumes(G, MachineSpec{}, Opts);
  EXPECT_FALSE(R.Feasible);
  EXPECT_NE(R.Log.find("giving up"), std::string::npos);
}

TEST(Manager, CascadingAloneFixesExtremeRatio) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerResult R = manageVolumes(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible) << R.Log;
  EXPECT_GE(R.CascadesApplied, 1);
}

TEST(Manager, NoExcessFluidFallsBackToOtherMeans) {
  // With cascading forbidden by a no-excess fluid and replication unable to
  // help a single-use ratio, the manager reports failure honestly.
  AssayGraph G;
  NodeId A = G.addInput("A");
  G.node(A).NoExcess = true;
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerResult R = manageVolumes(G, MachineSpec{});
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.CascadesApplied, 0);
}

TEST(Manager, RoundedAssignmentConsistent) {
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), MachineSpec{});
  ASSERT_TRUE(R.Feasible);
  // Rounded edge units reproduce node units through the graph.
  for (NodeId N : R.Graph.liveNodes()) {
    auto In = R.Graph.inEdges(N);
    if (In.empty())
      continue;
    std::int64_t Sum = 0;
    for (EdgeId E : In)
      Sum += R.Rounded.EdgeUnits[E];
    EXPECT_LE(Sum, MachineSpec{}.capacityUnits());
  }
  EXPECT_LT(R.Rounded.MeanRatioErrorPct, 2.0);
}
