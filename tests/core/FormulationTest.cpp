//===- FormulationTest.cpp - Figure 3 formulation tests ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Formulation.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"
#include "aqua/lp/BranchAndBound.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Formulation, Figure2ConstraintAccounting) {
  AssayGraph G = assays::buildFigure2Example();
  Formulation F = buildVolumeModel(G, MachineSpec{});
  // 8 edges (class 1) + 7 capacity (class 2) + 5 non-deficit (class 3, the
  // two outputs have no uses) + 4 ratio (class 4, one per 2-input mix) +
  // 4 yield (class 5, non-input nodes) + 2 output balance (class 6) = 30.
  EXPECT_EQ(F.CountedConstraints, 8 + 7 + 5 + 4 + 4 + 2);
  // The model itself carries class 1 as bounds, so rows = counted - |E|.
  EXPECT_EQ(F.Model.numRows(), F.CountedConstraints - 8);
  // One variable per edge and per node.
  EXPECT_EQ(F.Model.numVars(), 8 + 7);
}

TEST(Formulation, LPSolvesFigure2) {
  AssayGraph G = assays::buildFigure2Example();
  MachineSpec Spec;
  LPVolumeResult R = solveRVolLP(G, Spec);
  ASSERT_EQ(R.Solution.Status, lp::SolveStatus::Optimal);
  EXPECT_TRUE(R.Volumes.feasible(G, Spec));
  EXPECT_GE(R.Volumes.minDispenseNl(G), Spec.LeastCountNl - 1e-9);
  // LP maximizes output; with the +-10% balance both outputs approach the
  // capacity-limited optimum and beat DAGSolve's equal-output assignment.
  DagSolveResult DS = dagSolve(G, Spec);
  EXPECT_GE(R.Solution.Objective + 1e-6,
            DS.Volumes.maxNodeVolumeNl(G));
}

TEST(Formulation, LPRespectsRatios) {
  AssayGraph G = assays::buildGlucoseAssay();
  MachineSpec Spec;
  LPVolumeResult R = solveRVolLP(G, Spec);
  ASSERT_EQ(R.Solution.Status, lp::SolveStatus::Optimal);
  // Check the 1:8 mix's edges are exactly 1:8.
  for (NodeId N : G.liveNodes()) {
    if (G.node(N).Kind != NodeKind::Mix)
      continue;
    auto In = G.inEdges(N);
    double Total = 0.0;
    for (EdgeId E : In)
      Total += R.Volumes.EdgeVolumeNl[E];
    for (EdgeId E : In)
      EXPECT_NEAR(R.Volumes.EdgeVolumeNl[E] / Total,
                  G.edge(E).Fraction.toDouble(), 1e-7);
  }
}

TEST(Formulation, EnzymeLPInfeasible) {
  // Section 4.2: "we found that LP also fails" -- one diluent reservoir
  // cannot cover the serial dilutions' demand (the 1:999 mix alone needs
  // 99.9 nl of diluent at the least count).
  AssayGraph G = assays::buildEnzymeAssay(4);
  LPVolumeResult R = solveRVolLP(G, MachineSpec{});
  EXPECT_EQ(R.Solution.Status, lp::SolveStatus::Infeasible);
}

TEST(Formulation, UnknownVolumeNodesUseYieldOne) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId S = G.addUnary(NodeKind::Separate, "S", A);
  G.node(S).UnknownVolume = true;
  G.node(S).OutFraction = Rational(1, 4); // Must be ignored: unknown.
  G.addUnary(NodeKind::Sense, "out", S);
  LPVolumeResult R = solveRVolLP(G, MachineSpec{});
  ASSERT_EQ(R.Solution.Status, lp::SolveStatus::Optimal);
  // Yield treated as 1: node S equals its in-edge volume.
  for (EdgeId E : G.inEdges(S))
    EXPECT_NEAR(R.Volumes.NodeVolumeNl[S], R.Volumes.EdgeVolumeNl[E], 1e-6);
}

TEST(Formulation, ConstrainedInputUpperBound) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  G.addUnary(NodeKind::Sense, "out", M);
  FormulationOptions FOpts;
  FOpts.NodeUpperBoundNl = {{A, 7.0}}; // Only 7 nl of A available.
  LPVolumeResult R = solveRVolLP(G, MachineSpec{}, FOpts);
  ASSERT_EQ(R.Solution.Status, lp::SolveStatus::Optimal);
  EXPECT_LE(R.Volumes.NodeVolumeNl[A], 7.0 + 1e-7);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[M], 14.0, 1e-6);
}

TEST(Formulation, AblationConstraintsAddRows) {
  AssayGraph G = assays::buildGlucoseAssay();
  Formulation Plain = buildVolumeModel(G, MachineSpec{});

  FormulationOptions Extra;
  Extra.FlowConservation = true;
  Extra.EqualOutputs = true;
  Formulation Constrained = buildVolumeModel(G, MachineSpec{}, Extra);
  // Flow conservation converts rows in place; output equalization replaces
  // the two balance rows per output with one equality.
  EXPECT_LE(Constrained.Model.numRows(), Plain.Model.numRows());

  // With DAGSolve's constraints, the LP solution matches DAGSolve exactly.
  MachineSpec Spec;
  lp::Solution S = lp::solve(Constrained.Model);
  ASSERT_EQ(S.Status, lp::SolveStatus::Optimal);
  VolumeAssignment LP = extractAssignment(G, Constrained, S, Extra);
  DagSolveResult DS = dagSolve(G, Spec);
  for (NodeId N : G.liveNodes()) {
    if (G.isLeaf(N)) {
      EXPECT_NEAR(LP.NodeVolumeNl[N], DS.Volumes.NodeVolumeNl[N], 1e-5);
    }
  }
}

TEST(Formulation, IVolIntegerSolveOnFigure2) {
  // IVol as ILP: volumes in least-count units, integrality on everything.
  AssayGraph G = assays::buildFigure2Example();
  MachineSpec Spec;
  FormulationOptions FOpts;
  FOpts.UnitNl = Spec.LeastCountNl;
  Formulation F = buildVolumeModel(G, Spec, FOpts);
  lp::IntOptions Opts;
  Opts.MaxNodes = 20000;
  Opts.TimeLimitSec = 30.0;
  lp::IntSolution S = lp::solveInteger(F.Model, {}, Opts);
  ASSERT_TRUE(S.HasIncumbent);
  // All volumes are integer multiples of the least count.
  for (double V : S.Values)
    EXPECT_NEAR(V, std::round(V), 1e-6);
  VolumeAssignment A;
  lp::Solution AsLP;
  AsLP.Status = lp::SolveStatus::Optimal;
  AsLP.Values = S.Values;
  A = extractAssignment(G, F, AsLP, FOpts);
  EXPECT_TRUE(A.feasible(G, Spec));
}
