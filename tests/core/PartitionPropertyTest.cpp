//===- PartitionPropertyTest.cpp - Partition plan invariants ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Invariants of the Section 3.5 partitioner on random DAGs with randomly
// placed unknown-volume operations:
//
//  * every live node belongs to exactly one partition;
//  * each constrained-input source's shares sum to exactly 1;
//  * partitions execute in a valid topological order of their
//    constrained-input dependencies (when that graph is acyclic);
//  * dispensing never draws more from a constrained input than available.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Partition.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

AssayGraph randomDagWithUnknowns(SplitMix64 &Rng, int Ops) {
  AssayGraph G;
  std::vector<NodeId> Values;
  int Inputs = static_cast<int>(Rng.nextInRange(2, 4));
  for (int I = 0; I < Inputs; ++I)
    Values.push_back(G.addInput("in" + std::to_string(I)));
  for (int I = 0; I < Ops; ++I) {
    if (Rng.nextInRange(0, 4) == 0) {
      NodeId S = Values[static_cast<size_t>(Rng.nextInRange(
          0, static_cast<std::int64_t>(Values.size()) - 1))];
      NodeId Sep =
          G.addUnary(NodeKind::Separate, "sep" + std::to_string(I), S);
      G.node(Sep).UnknownVolume = true;
      Values.push_back(Sep);
      continue;
    }
    NodeId A = Values[static_cast<size_t>(
        Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
    NodeId B = A;
    while (B == A)
      B = Values[static_cast<size_t>(
          Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
    Values.push_back(G.addMix("mix" + std::to_string(I),
                              {{A, Rng.nextInRange(1, 9)},
                               {B, Rng.nextInRange(1, 9)}}));
  }
  return G;
}

} // namespace

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, PlanInvariants) {
  SplitMix64 Rng(GetParam() * 65537u + 11u);
  MachineSpec Spec;
  for (int Case = 0; Case < 15; ++Case) {
    AssayGraph G =
        randomDagWithUnknowns(Rng, static_cast<int>(Rng.nextInRange(4, 16)));
    ASSERT_TRUE(G.verify().ok());
    auto Plan = buildPartitionPlan(G, Spec);
    ASSERT_TRUE(Plan.ok()) << Plan.message() << "\n" << G.str();
    const AssayGraph &PG = Plan->Graph;
    ASSERT_TRUE(PG.verify().ok()) << PG.verify().message();

    // Every live node in exactly one partition.
    std::map<NodeId, int> Seen;
    for (size_t P = 0; P < Plan->Parts.size(); ++P)
      for (NodeId N : Plan->Parts[P].Members) {
        EXPECT_EQ(Seen.count(N), 0u) << "node in two partitions";
        Seen[N] = static_cast<int>(P);
        EXPECT_EQ(Plan->NodePartition[N], static_cast<int>(P));
      }
    for (NodeId N : PG.liveNodes())
      EXPECT_TRUE(Seen.count(N)) << "node in no partition: " << N;

    // Shares per source sum to 1.
    std::map<NodeId, Rational> ShareSum;
    for (const auto &CI : Plan->Inputs)
      ShareSum[CI.Source] += CI.Share;
    for (const auto &[Source, Sum] : ShareSum)
      EXPECT_EQ(Sum, Rational(1)) << PG.node(Source).Name;

    // Execution-order soundness: when the partition dependency graph is
    // acyclic (the overwhelmingly common case), every constrained input's
    // producing partition must be scheduled strictly earlier; an input
    // whose source shares the partition is the scale-invariant special
    // case. Mutually-feeding same-wave partitions (a genuine cycle) have
    // no valid order and are resolved by the executor at run time.
    {
      size_t Count = Plan->Parts.size();
      std::vector<int> Pending(Count, 0);
      std::vector<std::vector<int>> Succ(Count);
      for (const auto &CI : Plan->Inputs) {
        if (CI.FromInputPort)
          continue;
        int Src = Plan->NodePartition[CI.Source];
        int Dst = Plan->NodePartition[CI.Node];
        if (Src == Dst)
          continue;
        Succ[Src].push_back(Dst);
        ++Pending[Dst];
      }
      std::vector<int> Ready;
      for (size_t I = 0; I < Count; ++I)
        if (Pending[I] == 0)
          Ready.push_back(static_cast<int>(I));
      size_t Done = 0;
      for (size_t I = 0; I < Ready.size(); ++I, ++Done)
        for (int S : Succ[Ready[I]])
          if (--Pending[S] == 0)
            Ready.push_back(S);
      bool Acyclic = Done == Count;
      if (Acyclic) {
        for (const auto &CI : Plan->Inputs) {
          if (CI.FromInputPort)
            continue;
          int SrcPart = Plan->NodePartition[CI.Source];
          int DstPart = Plan->NodePartition[CI.Node];
          if (SrcPart != DstPart) {
            EXPECT_LT(SrcPart, DstPart)
                << PG.node(CI.Source).Name << " feeds an earlier partition";
          }
        }
      }
    }

    // Dispensing respects availability for every partition.
    std::vector<double> Avail(Plan->Inputs.size(), -1.0);
    for (size_t I = 0; I < Plan->Inputs.size(); ++I)
      if (!Plan->Inputs[I].FromInputPort)
        Avail[I] = 5.0 + static_cast<double>(Rng.nextInRange(0, 40));
    for (size_t P = 0; P < Plan->Parts.size(); ++P) {
      VolumeAssignment V =
          dispensePartition(*Plan, static_cast<int>(P), Avail, Spec);
      for (int Ref : Plan->Parts[P].InputRefs) {
        const auto &CI = Plan->Inputs[Ref];
        double Drawn = 0.0;
        for (EdgeId E : PG.outEdges(CI.Node))
          Drawn += V.EdgeVolumeNl[E];
        double Limit;
        if (CI.FromInputPort) {
          Limit = CI.Share.toDouble() * Spec.MaxCapacityNl;
        } else if (!CI.FromInputPort &&
                   Plan->NodePartition[CI.Source] == static_cast<int>(P)) {
          // Same-partition input: the limit is its share of the
          // co-dispensed source volume, not the external measurement.
          Limit = CI.Share.toDouble() * V.NodeVolumeNl[CI.Source];
        } else {
          Limit = Avail[Ref];
        }
        EXPECT_LE(Drawn, Limit + 1e-9)
            << "partition " << P << " overdraws "
            << PG.node(CI.Node).Name;
      }
      // Capacity respected.
      for (NodeId N : Plan->Parts[P].Members) {
        double In = 0.0;
        for (EdgeId E : PG.inEdges(N))
          In += V.EdgeVolumeNl[E];
        EXPECT_LE(In, Spec.MaxCapacityNl + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(0, 6));
