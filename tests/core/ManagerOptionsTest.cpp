//===- ManagerOptionsTest.cpp - Manager knob coverage ----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Manager.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(ManagerOptions, RefinementDisabledKeepsCoarseGranularity) {
  MachineSpec Spec;
  ManagerOptions NoRefine;
  NoRefine.TargetMeanRoundErrorPct = -1.0;
  ManagerResult Coarse =
      manageVolumes(assays::buildEnzymeAssay(4), Spec, NoRefine);
  ASSERT_TRUE(Coarse.Feasible);

  ManagerResult Refined = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  ASSERT_TRUE(Refined.Feasible);
  // Refinement strictly improves the rounding error.
  EXPECT_LT(Refined.Rounded.MeanRatioErrorPct,
            Coarse.Rounded.MeanRatioErrorPct);
  EXPECT_GT(Refined.ReplicationsApplied, Coarse.ReplicationsApplied);
}

TEST(ManagerOptions, IterationBudgetLimitsTransforms) {
  MachineSpec Spec;
  ManagerOptions OneShot;
  OneShot.MaxIterations = 1; // Only the initial solve; transforms apply
                             // but are never re-solved.
  ManagerResult R = manageVolumes(assays::buildEnzymeAssay(4), Spec, OneShot);
  EXPECT_FALSE(R.Feasible);
}

TEST(ManagerOptions, ZeroIterationBudgetFailsWithDecisionLog) {
  // MaxIterations = 0: the hierarchy never runs at all. The caller (and
  // the compilation service, which surfaces Log as its error) must still
  // get a non-empty decision trace explaining the exhaustion.
  ManagerOptions None;
  None.MaxIterations = 0;
  ManagerResult R =
      manageVolumes(assays::buildGlucoseAssay(), MachineSpec{}, None);
  EXPECT_FALSE(R.Feasible);
  EXPECT_FALSE(R.Log.empty());
  EXPECT_NE(R.Log.find("hierarchy exhausted"), std::string::npos) << R.Log;
}

TEST(ManagerOptions, TransformsDisabledOnInfeasibleGraphFailsWithLog) {
  // 1:1999 through a single use: DAGSolve underflows, LP cannot help, and
  // with both transforms disabled the hierarchy is exhausted immediately.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerOptions NoTransforms;
  NoTransforms.AllowCascading = false;
  NoTransforms.AllowReplication = false;
  ManagerResult R = manageVolumes(G, MachineSpec{}, NoTransforms);
  EXPECT_FALSE(R.Feasible);
  ASSERT_FALSE(R.Log.empty());
  // The trace records the failed solve attempts and the exhaustion.
  EXPECT_NE(R.Log.find("DAGSolve underflow"), std::string::npos) << R.Log;
  EXPECT_NE(R.Log.find("no transform applicable"), std::string::npos)
      << R.Log;
  EXPECT_NE(R.Log.find("hierarchy exhausted"), std::string::npos) << R.Log;
}

TEST(ManagerOptions, LPFallbackCanBeDisabled) {
  MachineSpec Spec;
  ManagerOptions NoLP;
  NoLP.UseLPFallback = false;
  // Glucose never needs LP; identical result either way.
  ManagerResult R = manageVolumes(assays::buildGlucoseAssay(), Spec, NoLP);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(R.Method, SolveMethod::DagSolve);
  EXPECT_EQ(R.Log.find("LP"), std::string::npos);
}

TEST(ManagerOptions, SkewThresholdControlsCascadeDepth) {
  // A permissive threshold (1000) treats 1:999 as non-extreme: no
  // cascading; the driver must fail on the single-use graph (replication
  // cannot split one use).
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);

  ManagerOptions Lax;
  Lax.CascadeSkewThreshold = 5000;
  ManagerResult R = manageVolumes(G, MachineSpec{}, Lax);
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.CascadesApplied, 0);

  ManagerOptions Strict;
  Strict.CascadeSkewThreshold = 10;
  ManagerResult R2 = manageVolumes(G, MachineSpec{}, Strict);
  ASSERT_TRUE(R2.Feasible) << R2.Log;
  EXPECT_GE(R2.CascadesApplied, 1);
}

TEST(ManagerOptions, OutputWeightsFlowThrough) {
  // DagOptions are forwarded: a 3:1 output weighting shows up in the
  // final volumes.
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  ManagerOptions Opts;
  Opts.DagOptions.OutputWeights = {{N.M, Rational(3)}};
  ManagerResult R = manageVolumes(G, MachineSpec{}, Opts);
  ASSERT_TRUE(R.Feasible);
  EXPECT_NEAR(R.Volumes.NodeVolumeNl[N.M] / R.Volumes.NodeVolumeNl[N.N], 3.0,
              1e-9);
}
