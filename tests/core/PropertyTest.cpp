//===- PropertyTest.cpp - Invariants on random assay DAGs -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property tests over randomly generated assay DAGs:
//
//  * a feasible DAGSolve assignment satisfies every constraint of the
//    Figure 3 formulation (checked by plugging the assignment into the
//    generated LP model);
//  * DAGSolve-feasible implies LP-feasible (DAGSolve only over-constrains,
//    Section 3.3), and LP's output objective dominates DAGSolve's;
//  * cascading preserves the final mixture's composition exactly;
//  * replication preserves the aggregate Vnorm and graph validity;
//  * conservation-aware rounding never lets integer demand exceed integer
//    production.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Replication.h"
#include "aqua/core/Rounding.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

/// Generates a random valid assay DAG: a few inputs, then a mixture of
/// mix/incubate/separate nodes over previously created values.
AssayGraph randomDag(SplitMix64 &Rng, int Ops) {
  AssayGraph G;
  std::vector<NodeId> Values;
  int Inputs = static_cast<int>(Rng.nextInRange(2, 4));
  for (int I = 0; I < Inputs; ++I)
    Values.push_back(G.addInput("in" + std::to_string(I)));

  for (int I = 0; I < Ops; ++I) {
    std::int64_t Kind = Rng.nextInRange(0, 9);
    if (Kind <= 6 || Values.size() < 2) {
      // Mix of 2-3 distinct sources with ratio parts 1..12.
      int Arity = Values.size() >= 3 && Rng.nextInRange(0, 3) == 0 ? 3 : 2;
      std::vector<NodeId> Sources;
      while (static_cast<int>(Sources.size()) < Arity) {
        NodeId S = Values[static_cast<size_t>(
            Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
        if (std::find(Sources.begin(), Sources.end(), S) == Sources.end())
          Sources.push_back(S);
      }
      std::vector<MixPart> Parts;
      for (NodeId S : Sources)
        Parts.push_back(MixPart{S, Rng.nextInRange(1, 12)});
      Values.push_back(G.addMix("mix" + std::to_string(I), Parts));
    } else if (Kind == 7) {
      NodeId S = Values[static_cast<size_t>(
          Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
      Values.push_back(
          G.addUnary(NodeKind::Incubate, "inc" + std::to_string(I), S));
    } else {
      NodeId S = Values[static_cast<size_t>(
          Rng.nextInRange(0, static_cast<std::int64_t>(Values.size()) - 1))];
      NodeId Sep =
          G.addUnary(NodeKind::Separate, "sep" + std::to_string(I), S);
      G.node(Sep).OutFraction =
          Rational(Rng.nextInRange(1, 3), 4); // Yield 1/4..3/4.
      Values.push_back(Sep);
    }
  }
  return G;
}

/// Plugs a volume assignment into the Figure 3 model's variable space.
std::vector<double> toModelValues(const AssayGraph &G, const Formulation &F,
                                  const VolumeAssignment &V) {
  std::vector<double> Values(F.Model.numVars(), 0.0);
  for (NodeId N : G.liveNodes())
    Values[F.NodeVar[N]] = V.NodeVolumeNl[N];
  for (EdgeId E : G.liveEdges())
    Values[F.EdgeVar[E]] = V.EdgeVolumeNl[E];
  return Values;
}

/// Forward composition pass: fraction of each *input fluid* in each node's
/// product (excess edges don't matter; composition is volume-independent).
std::map<std::string, double> compositionOf(const AssayGraph &G, NodeId N) {
  std::map<NodeId, std::map<std::string, double>> Comp;
  for (NodeId Id : G.topologicalOrder()) {
    const Node &Nd = G.node(Id);
    if (Nd.Kind == NodeKind::Input) {
      Comp[Id][Nd.Name] = 1.0;
      continue;
    }
    std::map<std::string, double> Mine;
    for (EdgeId E : G.inEdges(Id)) {
      double F = G.edge(E).Fraction.toDouble();
      for (const auto &[Name, Frac] : Comp[G.edge(E).Src])
        Mine[Name] += F * Frac;
    }
    Comp[Id] = std::move(Mine);
  }
  return Comp[N];
}

} // namespace

class DagProperty : public ::testing::TestWithParam<int> {};

TEST_P(DagProperty, DagSolveSatisfiesFigure3Constraints) {
  SplitMix64 Rng(GetParam() * 7919u + 101u);
  MachineSpec Spec;
  for (int Case = 0; Case < 20; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(3, 14)));
    ASSERT_TRUE(G.verify().ok());
    DagSolveResult R = dagSolve(G, Spec);
    if (!R.Feasible)
      continue;
    Formulation F = buildVolumeModel(G, Spec);
    std::vector<double> Values = toModelValues(G, F, R.Volumes);
    EXPECT_LE(F.Model.maxViolation(Values), 1e-6)
        << "case " << Case << "\n"
        << G.str();
  }
}

TEST_P(DagProperty, DagSolveFeasibleImpliesLPFeasible) {
  SplitMix64 Rng(GetParam() * 104729u + 7u);
  MachineSpec Spec;
  for (int Case = 0; Case < 12; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(3, 10)));
    DagSolveResult R = dagSolve(G, Spec);
    LPVolumeResult LP = solveRVolLP(G, Spec);
    if (R.Feasible) {
      // DAGSolve over-constrains RVol: its solutions are LP-feasible, so
      // LP must find one too, with at least as good an output objective.
      ASSERT_EQ(LP.Solution.Status, lp::SolveStatus::Optimal)
          << "case " << Case << "\n"
          << G.str();
      double DagObjective = 0.0;
      for (NodeId N : G.liveNodes())
        if (G.isLeaf(N) && G.node(N).Kind != NodeKind::Excess)
          DagObjective += R.Volumes.NodeVolumeNl[N];
      EXPECT_GE(LP.Solution.Objective + 1e-6, DagObjective);
    }
  }
}

TEST_P(DagProperty, CascadePreservesComposition) {
  SplitMix64 Rng(GetParam() * 31337u + 3u);
  for (int Case = 0; Case < 10; ++Case) {
    AssayGraph G;
    NodeId A = G.addInput("A");
    NodeId B = G.addInput("B");
    std::int64_t R = Rng.nextInRange(30, 2000);
    NodeId M = G.addMix("M", {{A, 1}, {B, R}});
    G.addUnary(NodeKind::Sense, "out", M);
    auto Before = compositionOf(G, M);

    int Stages = static_cast<int>(Rng.nextInRange(2, 4));
    ASSERT_TRUE(cascadeMix(G, M, Stages).ok());
    ASSERT_TRUE(G.verify().ok());
    auto After = compositionOf(G, M);
    // Composition is preserved exactly: A at 1/(R+1), B at R/(R+1).
    EXPECT_NEAR(After["A"], Before["A"], 1e-12);
    EXPECT_NEAR(After["B"], Before["B"], 1e-12);
  }
}

TEST_P(DagProperty, ReplicationPreservesAggregateVnorm) {
  SplitMix64 Rng(GetParam() * 271u + 13u);
  MachineSpec Spec;
  for (int Case = 0; Case < 10; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(6, 14)));
    // Pick a node with >= 2 uses.
    NodeId Target = InvalidNode;
    for (NodeId N : G.liveNodes())
      if (G.outEdges(N).size() >= 2)
        Target = N;
    if (Target == InvalidNode)
      continue;
    DagSolveResult Before = dagSolve(G, Spec);
    Rational Sum = Before.NodeVnorm[Target];

    auto Reps = replicateNode(G, Target, 2, Spec);
    ASSERT_TRUE(Reps.ok()) << Reps.message();
    ASSERT_TRUE(G.verify().ok()) << G.verify().message();
    DagSolveResult After = dagSolve(G, Spec);
    Rational NewSum(0);
    for (NodeId Rep : *Reps)
      NewSum += After.NodeVnorm[Rep];
    EXPECT_EQ(NewSum, Sum) << "case " << Case;
  }
}

TEST_P(DagProperty, RoundingConservesIntegerVolumes) {
  SplitMix64 Rng(GetParam() * 7u + 77u);
  MachineSpec Spec;
  for (int Case = 0; Case < 15; ++Case) {
    AssayGraph G = randomDag(Rng, static_cast<int>(Rng.nextInRange(4, 14)));
    DagSolveResult R = dagSolve(G, Spec);
    if (!R.Feasible)
      continue;
    IntegerAssignment I = roundToLeastCount(G, R.Volumes, Spec);
    EXPECT_FALSE(I.Overflow);
    for (NodeId N : G.liveNodes()) {
      std::int64_t Demand = 0;
      for (EdgeId E : G.outEdges(N))
        if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
          Demand += I.EdgeUnits[E];
      EXPECT_LE(Demand, I.NodeUnits[N])
          << "node " << G.node(N).Name << " case " << Case;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagProperty, ::testing::Range(0, 6));
