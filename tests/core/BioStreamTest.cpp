//===- BioStreamTest.cpp - BioStream baseline tests -----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/BioStream.h"

#include "aqua/core/DagSolve.h"
#include "aqua/core/Report.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

AssayGraph twoFluidMix(std::int64_t P, std::int64_t Q, NodeId *MOut) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, P}, {B, Q}}, 10.0);
  G.addUnary(NodeKind::Sense, "out", M);
  *MOut = M;
  return G;
}

/// Share of input "A" in node N (forward composition pass, excess-blind).
Rational shareOfA(const AssayGraph &G, NodeId N) {
  std::vector<Rational> Comp(G.numNodeSlots(), Rational(0));
  for (NodeId Id : G.topologicalOrder()) {
    if (G.node(Id).Kind == NodeKind::Input) {
      Comp[Id] = G.node(Id).Name == "A" ? Rational(1) : Rational(0);
      continue;
    }
    Rational Mine(0);
    for (EdgeId E : G.inEdges(Id))
      Mine += G.edge(E).Fraction * Comp[G.edge(E).Src];
    Comp[Id] = Mine;
  }
  return Comp[N];
}

} // namespace

TEST(BioStream, ExactPowerOfTwoRatio) {
  // 1:3 = concentration 1/4: exactly two 1:1 mixes, zero error.
  NodeId M;
  AssayGraph G = twoFluidMix(1, 3, &M);
  auto Info = biostreamMix(G, M, 8);
  ASSERT_TRUE(Info.ok()) << Info.message();
  ASSERT_TRUE(G.verify().ok()) << G.verify().message();
  EXPECT_EQ(Info->Achieved, Rational(1, 4));
  EXPECT_EQ(Info->ErrorPct, 0.0);
  EXPECT_EQ(Info->Stages.size(), 2u);
  EXPECT_EQ(Info->ExcessNodes.size(), 1u);
  EXPECT_EQ(shareOfA(G, M), Rational(1, 4));
}

TEST(BioStream, OneToOneIsSingleMix) {
  NodeId M;
  AssayGraph G = twoFluidMix(1, 1, &M);
  auto Info = biostreamMix(G, M, 8);
  ASSERT_TRUE(Info.ok());
  EXPECT_EQ(Info->Stages.size(), 1u);
  EXPECT_TRUE(Info->ExcessNodes.empty());
  EXPECT_EQ(Info->Achieved, Rational(1, 2));
}

TEST(BioStream, ApproximatesNonDyadicRatio) {
  // 1:9 = 0.1, not dyadic: 8 bits give 26/256 = 13/128 (1.56% error) and
  // a chain of 7 mixes (denominator 2^7 after reduction).
  NodeId M;
  AssayGraph G = twoFluidMix(1, 9, &M);
  auto Info = biostreamMix(G, M, 8);
  ASSERT_TRUE(Info.ok()) << Info.message();
  ASSERT_TRUE(G.verify().ok());
  EXPECT_EQ(Info->Achieved, Rational(13, 128));
  EXPECT_EQ(Info->Stages.size(), 7u);
  EXPECT_NEAR(Info->ErrorPct, 1.5625, 1e-9);
  // The realized composition matches the quantized target exactly.
  EXPECT_EQ(shareOfA(G, M), Rational(13, 128));
}

TEST(BioStream, MorePrecisionLowersError) {
  double LastErr = 1e9;
  for (int Bits : {4, 8, 12, 16}) {
    NodeId M;
    AssayGraph G = twoFluidMix(1, 999, &M);
    auto Info = biostreamMix(G, M, Bits);
    if (!Info.ok())
      continue; // Too coarse to represent 1/1000.
    EXPECT_LE(Info->ErrorPct, LastErr + 1e-12);
    LastErr = Info->ErrorPct;
    EXPECT_TRUE(G.verify().ok());
  }
  EXPECT_LT(LastErr, 1.0);
}

TEST(BioStream, DiscardsHalfAtEveryIntermediate) {
  NodeId M;
  AssayGraph G = twoFluidMix(1, 9, &M);
  ASSERT_TRUE(biostreamMix(G, M, 8).ok());
  MachineSpec Spec;
  DagSolveResult R = dagSolve(G, Spec);
  ASSERT_TRUE(R.Feasible);
  VolumeReport Rep = buildVolumeReport(G, R.Volumes);
  // Intermediates run at 50% utilization; the excess total is substantial
  // (the paper's argument against fixed-ratio mixing).
  double Excess = 0.0;
  for (const FluidUsage &U : Rep.Fluids) {
    if (U.Name.find(".bs") == std::string::npos)
      continue;
    EXPECT_NEAR(U.utilization(), 0.5, 1e-9) << U.Name;
    Excess += U.ExcessNl;
  }
  EXPECT_GT(Excess, 0.0);
}

TEST(BioStream, ErrorCases) {
  NodeId M;
  AssayGraph G = twoFluidMix(1, 9, &M);
  EXPECT_FALSE(biostreamMix(G, M, 0).ok());
  EXPECT_FALSE(biostreamMix(G, M, 99).ok());

  // Unrepresentable at low precision: 1/1000 in 4 bits rounds to 0.
  NodeId M2;
  AssayGraph G2 = twoFluidMix(1, 1999, &M2);
  auto R = biostreamMix(G2, M2, 4);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("not representable"), std::string::npos);

  // No-excess fluids refuse the model.
  NodeId M3;
  AssayGraph G3 = twoFluidMix(1, 9, &M3);
  for (NodeId N : G3.liveNodes())
    if (G3.node(N).Name == "A")
      G3.node(N).NoExcess = true;
  EXPECT_FALSE(biostreamMix(G3, M3, 8).ok());
}
