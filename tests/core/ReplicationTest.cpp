//===- ReplicationTest.cpp - Static replication tests (Section 3.4.2) ----------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Replication.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/DagSolve.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

AssayGraph fanOutGraph(int Uses, NodeId *SourceOut) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1}});
  for (int I = 0; I < Uses; ++I) {
    NodeId Mix = G.addMix("use" + std::to_string(I), {{M, 1}, {B, 1}});
    G.addUnary(NodeKind::Sense, "s" + std::to_string(I), Mix);
  }
  *SourceOut = M;
  return G;
}

} // namespace

TEST(Replication, DistributesUsesRoundRobin) {
  NodeId M;
  AssayGraph G = fanOutGraph(7, &M);
  Expected<std::vector<NodeId>> Reps = replicateNode(G, M, 3, MachineSpec{});
  ASSERT_TRUE(Reps.ok()) << Reps.message();
  ASSERT_EQ(Reps->size(), 3u);
  EXPECT_TRUE(G.verify().ok()) << G.verify().message();

  // 7 uses over 3 replicas: 3 + 2 + 2, "as evenly as possible".
  std::vector<size_t> Counts;
  for (NodeId R : *Reps)
    Counts.push_back(G.outEdges(R).size());
  EXPECT_EQ(Counts[0] + Counts[1] + Counts[2], 7u);
  EXPECT_LE(*std::max_element(Counts.begin(), Counts.end()),
            *std::min_element(Counts.begin(), Counts.end()) + 1);

  // Each replica repeats the producing operation: shared predecessors get
  // more uses (A: 1 -> 3).
  NodeId A = findNode(G, "A");
  EXPECT_EQ(G.outEdges(A).size(), 3u);
}

TEST(Replication, ReducesPerInstanceVnorm) {
  NodeId M;
  AssayGraph G = fanOutGraph(8, &M);
  MachineSpec Spec;
  DagSolveResult Before = dagSolve(G, Spec);
  Rational VBefore = Before.NodeVnorm[M];

  ASSERT_TRUE(replicateNode(G, M, 2, Spec).ok());
  DagSolveResult After = dagSolve(G, Spec);
  // Each replica now carries half the uses.
  EXPECT_EQ(After.NodeVnorm[M], VBefore / Rational(2));
}

TEST(Replication, EnzymeDiluentPaperScenario) {
  // Figure 14(b): replicating the diluent input 3x cuts its Vnorm from
  // ~54.2 (6778/125) to ~18.1 per replica (the paper's 81 -> 27 is the
  // post-cascade variant, checked in the Figure 14 bench).
  AssayGraph G = assays::buildEnzymeAssay(4);
  NodeId Diluent = findNode(G, "diluent");
  MachineSpec Spec;
  DagSolveResult Before = dagSolve(G, Spec);
  EXPECT_EQ(Before.NodeVnorm[Diluent], Rational(6778, 125));

  ASSERT_TRUE(replicateNode(G, Diluent, 3, Spec).ok());
  ASSERT_TRUE(G.verify().ok());
  DagSolveResult After = dagSolve(G, Spec);
  // Max replica Vnorm is close to a third of the original (round-robin
  // cannot balance exactly because edge weights differ).
  Rational MaxRep(0);
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name.rfind("diluent", 0) == 0)
      MaxRep = max(MaxRep, After.NodeVnorm[N]);
  EXPECT_LT(MaxRep, Rational(6778, 125) / Rational(2));
  EXPECT_GT(MaxRep, Rational(6778, 125) / Rational(4));

  // Replication without cascading still underflows (the paper's 29.5 pl
  // observation -- exact value depends on replica balance).
  EXPECT_FALSE(After.Feasible);
  EXPECT_LT(After.MinDispenseNl, 0.1);
  EXPECT_GT(After.MinDispenseNl, Before.MinDispenseNl);
}

TEST(Replication, ErrorCases) {
  NodeId M;
  AssayGraph G = fanOutGraph(3, &M);
  MachineSpec Spec;
  EXPECT_FALSE(replicateNode(G, M, 1, Spec).ok());  // Too few copies.
  EXPECT_FALSE(replicateNode(G, M, 4, Spec).ok());  // More copies than uses.

  // Excess nodes cannot be replicated.
  NodeId X = G.addNode(NodeKind::Excess, "X");
  G.node(X).ExcessShare = Rational(1, 2);
  G.addEdge(M, X, Rational(1));
  EXPECT_FALSE(replicateNode(G, X, 2, Spec).ok());

  // Resource exhaustion: an input-reservoir budget of 2 rejects splitting
  // an input into another reservoir. B has several uses, so only the
  // resource check can reject it.
  MachineSpec Tight;
  Tight.Limits.MaxInputs = 2;
  NodeId B = findNode(G, "B");
  ASSERT_NE(B, InvalidNode);
  Expected<std::vector<NodeId>> R = replicateNode(G, B, 2, Tight);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("reservoir"), std::string::npos);
}
