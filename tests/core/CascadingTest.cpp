//===- CascadingTest.cpp - Cascaded mixing tests (Section 3.4.1) ---------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Cascading.h"

#include "aqua/core/DagSolve.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Cascading, BoundariesPerfectPowers) {
  // 1:99 with two stages: the paper's two 1:9 mixes.
  EXPECT_EQ(cascadeBoundaries(1, 99, 2), (std::vector<std::int64_t>{1, 10, 100}));
  // 1:999 with three stages: the paper's three 1:9 mixes.
  EXPECT_EQ(cascadeBoundaries(1, 999, 3),
            (std::vector<std::int64_t>{1, 10, 100, 1000}));
  EXPECT_EQ(cascadeBoundaries(1, 9999, 2),
            (std::vector<std::int64_t>{1, 100, 10000}));
}

TEST(Cascading, BoundariesNonPowers) {
  // 1:399 (the introduction's example) with two stages: balanced split.
  std::vector<std::int64_t> B = cascadeBoundaries(1, 399, 2);
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[0], 1);
  EXPECT_EQ(B[2], 400);
  EXPECT_NEAR(static_cast<double>(B[1]), 20.0, 1.0); // sqrt(400).
  // Strictly increasing always.
  for (int S = 2; S <= 5; ++S) {
    std::vector<std::int64_t> Bs = cascadeBoundaries(1, 999, S);
    for (size_t I = 1; I < Bs.size(); ++I)
      EXPECT_LT(Bs[I - 1], Bs[I]);
  }
}

TEST(Cascading, ChooseStages) {
  // With a stage-skew bound of 20: 1:99 needs 2 stages, 1:999 needs 3
  // (factors 10 <= 21), 1:15 needs only 1.
  EXPECT_EQ(chooseCascadeStages(1, 15, 20, 8), 1);
  EXPECT_EQ(chooseCascadeStages(1, 99, 20, 8), 2);
  EXPECT_EQ(chooseCascadeStages(1, 999, 20, 8), 3);
  EXPECT_EQ(chooseCascadeStages(1, 9999, 20, 8), 4);
  // The cap applies.
  EXPECT_EQ(chooseCascadeStages(1, 999999999, 2, 3), 3);
}

TEST(Cascading, MixSkew) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 99}});
  EXPECT_EQ(mixSkew(G, M), Rational(99));
}

TEST(Cascading, RewritesGraphCorrectly) {
  // Figure 7: 1:99 into two 1:9 stages with a 9/10 excess.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 99}});
  NodeId Out = G.addUnary(NodeKind::Sense, "out", M);

  Expected<CascadeInfo> Info = cascadeMix(G, M, 2);
  ASSERT_TRUE(Info.ok()) << Info.message();
  ASSERT_TRUE(G.verify().ok()) << G.verify().message();
  ASSERT_EQ(Info->StageMixes.size(), 2u);
  ASSERT_EQ(Info->ExcessNodes.size(), 1u);
  EXPECT_EQ(Info->StageMixes.back(), M); // Final stage keeps the node id.

  NodeId C1 = Info->StageMixes[0];
  NodeId X = Info->ExcessNodes[0];
  // Stage 1 is A:B 1:9.
  auto C1In = G.inEdges(C1);
  ASSERT_EQ(C1In.size(), 2u);
  EXPECT_EQ(G.edge(C1In[0]).Fraction, Rational(1, 10));
  EXPECT_EQ(G.edge(C1In[1]).Fraction, Rational(9, 10));
  // The excess share is the a-priori-known 9/10.
  EXPECT_EQ(G.node(X).ExcessShare, Rational(9, 10));
  // B now has two uses (stage 1 and the final stage).
  EXPECT_EQ(G.outEdges(B).size(), 2u);

  // DAGSolve on the cascade (Section 3.4.1 numbers): out=1, M=1, C1=1,
  // excess=0.9, A=1/10.
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_EQ(R.NodeVnorm[C1], Rational(1));
  EXPECT_EQ(R.NodeVnorm[X], Rational(9, 10));
  EXPECT_EQ(R.NodeVnorm[A], Rational(1, 10));
  (void)Out;
}

TEST(Cascading, ThreeStageCascadeOf999) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 999}});
  G.addUnary(NodeKind::Sense, "out", M);

  Expected<CascadeInfo> Info = cascadeMix(G, M, 3);
  ASSERT_TRUE(Info.ok());
  ASSERT_TRUE(G.verify().ok());
  // All three stages are 1:9, and B now has three uses.
  for (NodeId Stage : Info->StageMixes) {
    auto In = G.inEdges(Stage);
    Rational Small = min(G.edge(In[0]).Fraction, G.edge(In[1]).Fraction);
    EXPECT_EQ(Small, Rational(1, 10));
  }
  EXPECT_EQ(G.outEdges(B).size(), 3u);
  // Both intermediates discard 9/10.
  for (NodeId X : Info->ExcessNodes)
    EXPECT_EQ(G.node(X).ExcessShare, Rational(9, 10));

  // Concentration is preserved exactly: A's share of the final mix is
  // (1/10)^3 = 1/1000.
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_EQ(R.NodeVnorm[A], Rational(1, 10)); // 10x per stage: 1/10 vs 1/1000.
}

TEST(Cascading, CascadeFixesUnderflow) {
  // 1:1999 is infeasible directly (smallest part 0.05 nl < least count)
  // but feasible after cascading.
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(NodeKind::Sense, "out", M);
  EXPECT_FALSE(dagSolve(G, MachineSpec{}).Feasible);

  ASSERT_TRUE(cascadeMix(G, M, 2).ok());
  ASSERT_TRUE(G.verify().ok());
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_TRUE(R.Feasible) << "min dispense " << R.MinDispenseNl;
}

TEST(Cascading, ErrorCases) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId M3 = G.addMix("M3", {{A, 1}, {B, 1}, {C, 98}});
  EXPECT_FALSE(cascadeMix(G, M3, 2).ok()); // Three inputs.

  NodeId Even = G.addMix("Even", {{A, 1}, {B, 1}});
  EXPECT_FALSE(cascadeMix(G, Even, 2).ok()); // Not skewed.

  NodeId M = G.addMix("M", {{A, 1}, {B, 99}});
  EXPECT_FALSE(cascadeMix(G, M, 1).ok()); // Too few stages.

  // No-excess fluids refuse cascading.
  NodeId D = G.addInput("D");
  G.node(D).NoExcess = true;
  NodeId MD = G.addMix("MD", {{D, 1}, {B, 99}});
  Expected<CascadeInfo> R = cascadeMix(G, MD, 2);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("no-excess"), std::string::npos);

  EXPECT_FALSE(cascadeMix(G, A, 2).ok()); // Not a mix.
}
