//===- ReproductionContractTest.cpp - The EXPERIMENTS.md contract ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// One authoritative regression suite for the headline reproduction claims
// in EXPERIMENTS.md. The per-module tests check these pieces in context;
// this file pins the numbers themselves so a refactor that shifts any of
// them fails loudly here first.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Manager.h"
#include "aqua/core/Partition.h"
#include "aqua/core/Replication.h"
#include "aqua/core/Rounding.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

NodeId findNode(const AssayGraph &G, const std::string &Name) {
  for (NodeId N : G.liveNodes())
    if (G.node(N).Name == Name)
      return N;
  return InvalidNode;
}

} // namespace

TEST(ReproductionContract, Figure5) {
  assays::Figure2Nodes N;
  AssayGraph G = assays::buildFigure2Example(&N);
  DagSolveResult R = dagSolve(G, MachineSpec{});
  EXPECT_EQ(R.NodeVnorm[N.L], Rational(11, 15));
  EXPECT_EQ(R.NodeVnorm[N.B], Rational(46, 45));
  EXPECT_EQ(R.MaxVnormNode, N.B);
}

TEST(ReproductionContract, Figure12GlucoseMinDispense) {
  DagSolveResult R = dagSolve(assays::buildGlucoseAssay(), MachineSpec{});
  EXPECT_NEAR(R.MinDispenseNl, 500.0 / 151.0, 1e-12); // "3.3 nl".
}

TEST(ReproductionContract, Figure13GlycomicsPartitions) {
  auto Plan = buildPartitionPlan(assays::buildGlycomicsAssay(),
                                 MachineSpec{});
  ASSERT_TRUE(Plan.ok());
  EXPECT_EQ(Plan->Parts.size(), 4u);
  NodeId Eff2 = findNode(Plan->Graph, "effluent2");
  for (const auto &CI : Plan->Inputs) {
    if (CI.Source == Eff2) {
      EXPECT_EQ(Plan->Vnorms.NodeVnorm[CI.Node], Rational(1, 204));
    }
  }
}

TEST(ReproductionContract, Figure14Chain) {
  MachineSpec Spec;
  AssayGraph G = assays::buildEnzymeAssay(4);
  DagSolveResult R0 = dagSolve(G, Spec);
  EXPECT_NEAR(R0.MinDispenseNl * 1000.0, 9.83, 0.01); // 9.8 pl.
  EXPECT_EQ(R0.NodeVnorm[findNode(G, "diluent")], Rational(6778, 125));

  for (const char *Name : {"inh_dil4", "enz_dil4", "sub_dil4"})
    cascadeMix(G, findNode(G, Name), 3).unwrap();
  DagSolveResult R1 = dagSolve(G, Spec);
  EXPECT_NEAR(R1.MinDispenseNl * 1000.0, 65.5, 0.1); // 65.6 pl.
  EXPECT_EQ(R1.NodeVnorm[findNode(G, "diluent")], Rational(2036, 25)); // 81.

  NodeId Diluent = findNode(G, "diluent");
  auto Reps = replicateNode(G, Diluent, 3, Spec);
  ASSERT_TRUE(Reps.ok());
  for (NodeId Rep : *Reps)
    for (EdgeId E : G.outEdges(Rep)) {
      const std::string &C = G.node(G.edge(E).Dst).Name;
      int Class = C.rfind("inh_", 0) == 0 ? 0 : C.rfind("enz_", 0) == 0 ? 1 : 2;
      if ((*Reps)[Class] != Rep)
        G.setEdgeSource(E, (*Reps)[Class]);
    }
  DagSolveResult R2 = dagSolve(G, Spec);
  EXPECT_TRUE(R2.Feasible);
  EXPECT_NEAR(R2.MinDispenseNl * 1000.0, 196.5, 0.5); // 196 pl.
  EXPECT_EQ(R2.NodeVnorm[Diluent], Rational(2036, 75)); // 27.
}

TEST(ReproductionContract, Table2ConstraintCounts) {
  MachineSpec Spec;
  EXPECT_EQ(buildVolumeModel(assays::buildGlucoseAssay(), Spec)
                .CountedConstraints,
            59);
  EXPECT_EQ(buildVolumeModel(assays::buildEnzymeAssay(4), Spec)
                .CountedConstraints,
            1166);
  EXPECT_EQ(buildVolumeModel(assays::buildEnzymeAssay(10), Spec)
                .CountedConstraints,
            17186);
}

TEST(ReproductionContract, EnzymeRawIsDoublyInfeasible) {
  MachineSpec Spec;
  AssayGraph G = assays::buildEnzymeAssay(4);
  EXPECT_FALSE(dagSolve(G, Spec).Feasible);
  EXPECT_EQ(solveRVolLP(G, Spec).Solution.Status,
            lp::SolveStatus::Infeasible);
}

TEST(ReproductionContract, RoundingErrorWithinTwoPercent) {
  MachineSpec Spec;
  DagSolveResult R = dagSolve(assays::buildGlucoseAssay(), Spec);
  IntegerAssignment IG =
      roundToLeastCount(assays::buildGlucoseAssay(), R.Volumes, Spec);
  ManagerResult VM = manageVolumes(assays::buildEnzymeAssay(4), Spec);
  ASSERT_TRUE(VM.Feasible);
  double Mean =
      (IG.MeanRatioErrorPct + VM.Rounded.MeanRatioErrorPct) / 2.0;
  EXPECT_LE(Mean, 2.0); // "the error was no more than 2%".
}
