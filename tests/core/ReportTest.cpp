//===- ReportTest.cpp - Volume report tests --------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Report.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

TEST(Report, GlucoseAccounting) {
  AssayGraph G = assays::buildGlucoseAssay();
  DagSolveResult R = dagSolve(G, MachineSpec{});
  VolumeReport Rep = buildVolumeReport(G, R.Volumes);

  // 13 non-excess nodes.
  EXPECT_EQ(Rep.Fluids.size(), 13u);
  // Reagent: 5 uses, produced 100 nl, fully consumed.
  const FluidUsage *Reagent = nullptr;
  for (const FluidUsage &U : Rep.Fluids)
    if (U.Name == "Reagent")
      Reagent = &U;
  ASSERT_NE(Reagent, nullptr);
  EXPECT_EQ(Reagent->Uses, 5);
  EXPECT_NEAR(Reagent->ProducedNl, 100.0, 1e-9);
  EXPECT_NEAR(Reagent->utilization(), 1.0, 1e-9);
  EXPECT_NEAR(Reagent->ExcessNl, 0.0, 1e-12);

  // Total input = Glucose + Reagent + Sample volumes.
  EXPECT_NEAR(Rep.TotalInputNl, (103.0 / 90 + 151.0 / 45 + 0.5) *
                                    (100.0 / (151.0 / 45)),
              1e-6);
  // DAGSolve conserves flow: no leftovers, no excess.
  EXPECT_NEAR(Rep.TotalExcessNl, 0.0, 1e-9);
  EXPECT_NEAR(Rep.TotalLeftoverNl, 0.0, 1e-9);
  EXPECT_FALSE(Rep.str().empty());
}

TEST(Report, CascadeExcessIsAccounted) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId M = G.addMix("M", {{A, 1}, {B, 99}}, 10.0);
  G.addUnary(NodeKind::Sense, "out", M);
  ASSERT_TRUE(cascadeMix(G, M, 2).ok());
  DagSolveResult R = dagSolve(G, MachineSpec{});
  ASSERT_TRUE(R.Feasible);

  VolumeReport Rep = buildVolumeReport(G, R.Volumes);
  // The cascade intermediate discards 9/10 of its volume as excess.
  const FluidUsage *Mid = nullptr;
  for (const FluidUsage &U : Rep.Fluids)
    if (U.Name == "M.casc1")
      Mid = &U;
  ASSERT_NE(Mid, nullptr);
  EXPECT_NEAR(Mid->ExcessNl, 0.9 * Mid->ProducedNl, 1e-9);
  EXPECT_NEAR(Mid->utilization(), 0.1, 1e-9);
  EXPECT_GT(Rep.TotalExcessNl, 0.0);
}
