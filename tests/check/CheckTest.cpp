//===- CheckTest.cpp - Differential-testing harness tests -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tier-1 coverage for aqua/check: generator determinism and validity, a
// fixed-seed corpus through the full oracle lattice (the CI acceptance
// gate runs the same corpus at 200 cases through the aquacheck driver),
// shrinker minimization on a synthetic failure, and the metamorphic
// fingerprint invariants.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Harness.h"
#include "aqua/ir/Canonical.h"
#include "aqua/lang/Lower.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::check;

TEST(CheckGenerator, SameSeedRendersIdentically) {
  GenConfig Cfg;
  Cfg.Difficulty = 3;
  GenProgram A = generateProgram(0xC0FFEE, Cfg);
  GenProgram B = generateProgram(0xC0FFEE, Cfg);
  EXPECT_EQ(A.render(), B.render());
  EXPECT_EQ(A.YieldNum, B.YieldNum);
  EXPECT_EQ(A.YieldDen, B.YieldDen);

  GenProgram C = generateProgram(0xC0FFEF, Cfg);
  EXPECT_NE(A.render(), C.render());
}

TEST(CheckGenerator, GeneratedProgramsAlwaysCompile) {
  // Validity is the generator's contract: every difficulty, many seeds,
  // zero front-end rejections.
  for (int Difficulty = 1; Difficulty <= 5; ++Difficulty) {
    GenConfig Cfg;
    Cfg.Difficulty = Difficulty;
    for (std::uint64_t Seed = 1; Seed <= 25; ++Seed) {
      GenProgram P = generateProgram(Seed * 7919 + Difficulty, Cfg);
      auto R = lang::compileAssay(P.render());
      ASSERT_TRUE(R.ok()) << "difficulty " << Difficulty << " seed "
                          << Seed * 7919 + Difficulty << ": " << R.message()
                          << "\n"
                          << P.render();
    }
  }
}

TEST(CheckHarnessCorpus, FixedSeedCorpusPassesAllOracles) {
  HarnessOptions Opts;
  Opts.Seed = 20260806;
  Opts.Cases = 30;
  Opts.Gen.Difficulty = 2;
  Opts.ReproDir.clear(); // No files from the test suite.
  HarnessResult R = runHarness(Opts);
  EXPECT_TRUE(R.ok()) << R.summary();
  EXPECT_EQ(R.FrontendOk, 30);
  EXPECT_GT(R.Managed, 0);
  EXPECT_GT(R.Simulated, 0);
}

TEST(CheckHarnessCorpus, HarderCorpusPassesAllOracles) {
  HarnessOptions Opts;
  Opts.Seed = 20260806;
  Opts.Cases = 10;
  Opts.Gen.Difficulty = 4;
  Opts.ReproDir.clear();
  HarnessResult R = runHarness(Opts);
  EXPECT_TRUE(R.ok()) << R.summary();
}

TEST(CheckShrinker, MinimizesSyntheticFailure) {
  // A negative tolerance makes the solver-agreement oracle reject every
  // feasibly solved program, standing in for a real solver bug. The
  // shrinker must cut the program down while the same oracle family keeps
  // failing.
  GenConfig Cfg;
  Cfg.Difficulty = 3;
  CheckOptions Check;
  Check.Tolerance = -1.0;
  Check.Oracles = oracleBit(Oracle::Frontend) | oracleBit(Oracle::Graph) |
                  oracleBit(Oracle::Solvers);

  GenProgram P;
  CaseReport Original;
  bool Found = false;
  for (std::uint64_t Seed = 1; Seed <= 40 && !Found; ++Seed) {
    P = generateProgram(Seed * 1337, Cfg);
    if (P.numStatements() < 8)
      continue;
    Original = checkProgram(P, Check);
    Found = !Original.ok();
  }
  ASSERT_TRUE(Found) << "no corpus program tripped the synthetic bug";

  ShrinkResult S = shrink(P, Original, Check);
  EXPECT_TRUE(S.Shrunk);
  EXPECT_LT(S.Minimal.numStatements(), P.numStatements());
  EXPECT_LE(S.Minimal.numStatements(), 10);
  ASSERT_FALSE(S.Report.Failures.empty());
  EXPECT_EQ(S.Report.Failures.front().O, Original.Failures.front().O);
  // The minimal program must still be a valid assay.
  EXPECT_TRUE(lang::compileAssay(S.Minimal.render()).ok());
}

TEST(CheckMetamorphic, RatioScalingPreservesFingerprint) {
  // 1:8 and 3:24 are the same mix; canonical fingerprints must agree.
  const char *Base = R"(ASSAY m START
fluid A, B, p1;
VAR R1[1];
p1 = MIX A AND B IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL p1 INTO R1[1];
END
)";
  const char *Scaled = R"(ASSAY m START
fluid A, B, p1;
VAR R1[1];
p1 = MIX A AND B IN RATIOS 3 : 24 FOR 10;
SENSE OPTICAL p1 INTO R1[1];
END
)";
  auto RB = lang::compileAssay(Base);
  auto RS = lang::compileAssay(Scaled);
  ASSERT_TRUE(RB.ok()) << RB.message();
  ASSERT_TRUE(RS.ok()) << RS.message();
  EXPECT_EQ(ir::fingerprintGraph(RB->Graph), ir::fingerprintGraph(RS->Graph));

  ir::CanonicalForm CB = ir::canonicalize(RB->Graph);
  ir::CanonicalForm CS = ir::canonicalize(RS->Graph);
  EXPECT_EQ(ir::buildCanonicalGraph(RB->Graph, CB).str(),
            ir::buildCanonicalGraph(RS->Graph, CS).str());
}

TEST(CheckMetamorphic, CorpusMetamorphicOraclesHold) {
  // The permutation/binarize/cascade invariants across a small corpus,
  // with only the metamorphic machinery enabled.
  CheckOptions Check;
  Check.Oracles = oracleBit(Oracle::Frontend) | oracleBit(Oracle::Graph) |
                  oracleBit(Oracle::Metamorphic);
  GenConfig Cfg;
  Cfg.Difficulty = 3;
  for (std::uint64_t Seed = 100; Seed < 112; ++Seed) {
    GenProgram P = generateProgram(Seed, Cfg);
    CaseReport R = checkProgram(P, Check);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n"
                        << R.str() << "\n"
                        << P.render();
  }
}
