//===- CodecTest.cpp - Artifact codec round-trip and robustness tests -----------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The codec contract the persistent store depends on:
//
//  * bit-faithful round-trips on real pipeline output, managed and
//    relative-mode alike: encode(decode(encode(A))) == encode(A);
//  * defensive decoding: truncation at *every* byte length, garbage
//    input, bad magic, and version skew all fail cleanly, never crash.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/ArtifactCodec.h"

#include "aqua/lp/RevisedSimplex.h"

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/service/CompileService.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Compiles \p G through the real service and returns the cached artifact.
std::shared_ptr<const CompileArtifact> compiled(ir::AssayGraph G) {
  CompileService Service;
  CompileRequest R;
  R.Name = "codec";
  R.Graph = std::make_shared<const ir::AssayGraph>(std::move(G));
  CompileResponse Resp = Service.compileNow(R);
  EXPECT_NE(Resp.Artifact, nullptr) << Resp.Error;
  return Resp.Artifact;
}

/// The full round-trip property: decode succeeds and re-encodes to the
/// identical byte string (which subsumes field-by-field equality).
void expectRoundTrip(const CompileArtifact &A) {
  std::string E1 = encodeArtifact(A);
  auto D = decodeArtifact(E1);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(encodeArtifact(*D), E1) << "re-encoding must be bit-identical";
  EXPECT_EQ(D->Ok, A.Ok);
  EXPECT_EQ(D->Managed, A.Managed);
  EXPECT_EQ(D->Error, A.Error);
  EXPECT_EQ(D->Program.str(), A.Program.str());
}

} // namespace

TEST(ArtifactCodec, RoundTripsManagedArtifact) {
  auto A = compiled(assays::buildGlucoseAssay());
  ASSERT_TRUE(A && A->Ok && A->Managed);
  expectRoundTrip(*A);
  // Spot-check the solve payload survives beyond byte equality.
  auto D = decodeArtifact(encodeArtifact(*A));
  ASSERT_TRUE(D.ok());
  EXPECT_TRUE(D->VM.Feasible);
  EXPECT_EQ(D->VM.Rounded.NodeUnits, A->VM.Rounded.NodeUnits);
  EXPECT_EQ(D->VM.Rounded.EdgeUnits, A->VM.Rounded.EdgeUnits);
  EXPECT_EQ(D->Metered.NodeVolumeNl, A->Metered.NodeVolumeNl);
  EXPECT_EQ(D->Metered.EdgeVolumeNl, A->Metered.EdgeVolumeNl);
}

TEST(ArtifactCodec, RoundTripsTransformedGraphs) {
  // Enzyme/MIC assays exercise cascading and replication, so the encoded
  // graph is the *transformed* one with dead slots and rewritten edges.
  for (auto &A : {compiled(assays::buildEnzymeAssay(4)),
                  compiled(assays::buildMicPanel(6)),
                  compiled(assays::buildBradfordProtein())}) {
    ASSERT_TRUE(A && A->Ok);
    expectRoundTrip(*A);
  }
}

TEST(ArtifactCodec, RoundTripsUnmanagedRelativeArtifact) {
  // Glycomics has run-time-unknown volumes: relative-mode AIS, empty
  // manager result.
  auto A = compiled(assays::buildGlycomicsAssay());
  ASSERT_TRUE(A && A->Ok);
  EXPECT_FALSE(A->Managed);
  expectRoundTrip(*A);
}

TEST(ArtifactCodec, RoundTripsCachedFailureArtifact) {
  // Deterministic failures are cached and therefore persisted too.
  ir::AssayGraph G;
  ir::NodeId A = G.addInput("A");
  ir::NodeId B = G.addInput("B");
  ir::NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(ir::NodeKind::Sense, "out", M);
  CompileService Service;
  CompileRequest R;
  R.Name = "infeasible";
  R.Graph = std::make_shared<const ir::AssayGraph>(std::move(G));
  R.Manage.AllowCascading = false;
  R.Manage.AllowReplication = false;
  CompileResponse Resp = Service.compileNow(R);
  ASSERT_NE(Resp.Artifact, nullptr);
  EXPECT_FALSE(Resp.Artifact->Ok);
  EXPECT_FALSE(Resp.Artifact->Error.empty());
  expectRoundTrip(*Resp.Artifact);
}

TEST(ArtifactCodec, RoundTripsDefaultArtifact) {
  expectRoundTrip(CompileArtifact{});
}

TEST(ArtifactCodec, RejectsBadMagicAndVersionSkew) {
  std::string Good = encodeArtifact(CompileArtifact{});
  ASSERT_GE(Good.size(), 8u);

  std::string BadMagic = Good;
  BadMagic[0] ^= 0x5A;
  EXPECT_FALSE(decodeArtifact(BadMagic).ok());

  // Version is the u32 after the magic; a future version must be refused,
  // not misparsed.
  std::string Skewed = Good;
  Skewed[4] = 0x7F;
  EXPECT_FALSE(decodeArtifact(Skewed).ok());
}

TEST(ArtifactCodec, RejectsTrailingGarbage) {
  std::string Good = encodeArtifact(CompileArtifact{});
  EXPECT_FALSE(decodeArtifact(Good + "x").ok())
      << "payloads must be fully self-delimiting";
}

TEST(ArtifactCodecProperty, EveryTruncationFailsCleanly) {
  auto A = compiled(assays::buildGlucoseAssay());
  ASSERT_TRUE(A && A->Ok);
  std::string Full = encodeArtifact(*A);
  for (std::size_t Len = 0; Len < Full.size(); ++Len) {
    auto D = decodeArtifact(std::string_view(Full.data(), Len));
    EXPECT_FALSE(D.ok()) << "truncation to " << Len << " of " << Full.size()
                         << " bytes decoded";
  }
}

TEST(ArtifactCodecProperty, GarbageInputNeverCrashes) {
  std::mt19937_64 Rng(0xA9'5E'ED);
  for (int Case = 0; Case < 500; ++Case) {
    std::string Junk(Rng() % 512, '\0');
    for (char &C : Junk)
      C = static_cast<char>(Rng());
    EXPECT_FALSE(decodeArtifact(Junk).ok());
  }
  // Adversarial: valid header, garbage body.
  std::string Good = encodeArtifact(CompileArtifact{});
  for (int Case = 0; Case < 500; ++Case) {
    std::string Junk = Good.substr(0, 8);
    Junk.resize(8 + Rng() % 512);
    for (std::size_t I = 8; I < Junk.size(); ++I)
      Junk[I] = static_cast<char>(Rng());
    // Must not crash; anything that does decode must reach the codec's
    // canonical fixed point in one round (re-encoding decodes to an
    // identical re-encoding).
    auto D = decodeArtifact(Junk);
    if (D.ok()) {
      std::string E2 = encodeArtifact(*D);
      auto D2 = decodeArtifact(E2);
      ASSERT_TRUE(D2.ok());
      EXPECT_EQ(encodeArtifact(*D2), E2);
    }
  }
}

TEST(ArtifactCodecProperty, SingleBitFlipsNeverCrashOrDecodeUncanonically) {
  // The store's CRC catches disk rot before the codec ever sees it; this
  // checks the codec's own posture anyway: a flipped payload either fails
  // to decode or decodes to something inside the codec's canonical fixed
  // point (a non-canonical byte -- e.g. a bool stored as 2 -- normalizes
  // in one decode-encode round and stays put).
  auto A = compiled(assays::buildGlucoseAssay());
  ASSERT_TRUE(A && A->Ok);
  std::string Full = encodeArtifact(*A);
  std::mt19937_64 Rng(0xB17F11B5);
  for (int Case = 0; Case < 300; ++Case) {
    std::string Flipped = Full;
    std::size_t Byte = Rng() % Flipped.size();
    Flipped[Byte] ^= static_cast<char>(1u << (Rng() % 8));
    auto D = decodeArtifact(Flipped);
    if (!D.ok())
      continue;
    std::string E2 = encodeArtifact(*D);
    auto D2 = decodeArtifact(E2);
    ASSERT_TRUE(D2.ok()) << "bit flip at byte " << Byte;
    EXPECT_EQ(encodeArtifact(*D2), E2)
        << "bit flip at byte " << Byte << " decoded unfaithfully";
  }
}

TEST(ArtifactCodec, RoundTripsWarmStartBasisBlock) {
  // v2 appends the RVol warm-start block; a synthetic basis covers every
  // status value plus the optional reduced-cost / devex payloads.
  CompileArtifact A;
  A.VM.LpShapeHash = 0x123456789ABCDEF0ull;
  auto B = std::make_shared<lp::Basis>();
  B->Status = {lp::VarStatus::Basic, lp::VarStatus::AtLower,
               lp::VarStatus::AtUpper, lp::VarStatus::Free};
  B->BasicCol = {0, 2};
  B->RedCost = {0.0, 1.5, -2.25, 0.125};
  B->DevexW = {1.0, 1.0, 4.0, 0.5};
  A.VM.LpBasis = B;
  expectRoundTrip(A);

  auto D = decodeArtifact(encodeArtifact(A));
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->VM.LpShapeHash, A.VM.LpShapeHash);
  ASSERT_NE(D->VM.LpBasis, nullptr);
  EXPECT_EQ(D->VM.LpBasis->Status, B->Status);
  EXPECT_EQ(D->VM.LpBasis->BasicCol, B->BasicCol);
  EXPECT_EQ(D->VM.LpBasis->RedCost, B->RedCost);
  EXPECT_EQ(D->VM.LpBasis->DevexW, B->DevexW);
}

TEST(ArtifactCodec, DecodesVersion1PayloadsWithoutBasisBlock) {
  // A v1 payload is the v2 layout minus the trailing warm-start block
  // (u64 shape hash + presence bool when no basis is attached). Old store
  // entries must keep decoding -- they just carry no donor basis.
  std::string V2 = encodeArtifact(CompileArtifact{});
  ASSERT_GT(V2.size(), 9u);
  std::string V1 = V2.substr(0, V2.size() - 9);
  V1[4] = 1; // Version u32 sits after the magic, little-endian.
  auto D = decodeArtifact(V1);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->VM.LpShapeHash, 0u);
  EXPECT_EQ(D->VM.LpBasis, nullptr);
  // Re-encoding writes the current version: the store upgrades on rewrite.
  EXPECT_EQ(encodeArtifact(*D), V2);

  // A v1 payload with the v2 trailer is overlong for its version.
  std::string Mixed = V2;
  Mixed[4] = 1;
  EXPECT_FALSE(decodeArtifact(Mixed).ok());
}
