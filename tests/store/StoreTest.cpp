//===- StoreTest.cpp - Persistent solve-store unit tests ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace aqua;
using namespace aqua::store;

namespace {

ir::Fingerprint key(std::uint64_t Hi, std::uint64_t Lo) {
  ir::Fingerprint F;
  F.Hi = Hi;
  F.Lo = Lo;
  return F;
}

std::unique_ptr<SolveStore> openOrDie(const std::string &Dir, Env &E,
                                      StoreOptions Opts = {}) {
  auto S = SolveStore::open(Dir, Opts, E);
  EXPECT_TRUE(S.ok()) << (S.ok() ? "" : S.message());
  return std::move(S.get());
}

} // namespace

TEST(SolveStore, PutGetRoundTrip) {
  MemEnv E;
  auto S = openOrDie("db", E);
  ASSERT_TRUE(S->put(key(1, 2), "hello payload").ok());
  std::string Out;
  ASSERT_TRUE(S->get(key(1, 2), Out));
  EXPECT_EQ(Out, "hello payload");
  EXPECT_FALSE(S->get(key(9, 9), Out));
  EXPECT_TRUE(S->contains(key(1, 2)));
  EXPECT_FALSE(S->contains(key(9, 9)));
  StoreStats St = S->stats();
  EXPECT_EQ(St.Appends, 1u);
  EXPECT_EQ(St.Keys, 1u);
  EXPECT_EQ(St.Hits, 1u);
}

TEST(SolveStore, EmptyPayloadAndBinaryBytes) {
  MemEnv E;
  auto S = openOrDie("db", E);
  std::string Binary("\x00\xff\x31\x43\x52\x41\x00", 7); // Embedded NULs +
                                                         // the record magic.
  ASSERT_TRUE(S->put(key(1, 1), "").ok());
  ASSERT_TRUE(S->put(key(2, 2), Binary).ok());
  std::string Out;
  ASSERT_TRUE(S->get(key(1, 1), Out));
  EXPECT_EQ(Out, "");
  ASSERT_TRUE(S->get(key(2, 2), Out));
  EXPECT_EQ(Out, Binary);
}

TEST(SolveStore, SurvivesReopen) {
  MemEnv E;
  {
    auto S = openOrDie("db", E);
    ASSERT_TRUE(S->put(key(1, 2), "persisted").ok());
    ASSERT_TRUE(S->put(key(3, 4), "also persisted").ok());
  }
  auto S2 = openOrDie("db", E);
  std::string Out;
  ASSERT_TRUE(S2->get(key(1, 2), Out));
  EXPECT_EQ(Out, "persisted");
  ASSERT_TRUE(S2->get(key(3, 4), Out));
  EXPECT_EQ(Out, "also persisted");
  EXPECT_EQ(S2->stats().Keys, 2u);
}

TEST(SolveStore, LastWriterWinsOnRewrite) {
  MemEnv E;
  auto S = openOrDie("db", E);
  ASSERT_TRUE(S->put(key(1, 2), "v1").ok());
  ASSERT_TRUE(S->put(key(1, 2), "v2").ok());
  std::string Out;
  ASSERT_TRUE(S->get(key(1, 2), Out));
  EXPECT_EQ(Out, "v2");
  // Still v2 after a reopen: the later record supersedes at scan time too.
  auto S2 = openOrDie("db", E);
  ASSERT_TRUE(S2->get(key(1, 2), Out));
  EXPECT_EQ(Out, "v2");
}

TEST(SolveStore, TwoHandlesShareOneDirectory) {
  MemEnv E;
  auto A = openOrDie("db", E);
  auto B = openOrDie("db", E);
  ASSERT_TRUE(A->put(key(1, 0), "from A").ok());
  ASSERT_TRUE(B->put(key(2, 0), "from B").ok());
  std::string Out;
  // RefreshOnMiss finds the other writer's segment.
  ASSERT_TRUE(A->get(key(2, 0), Out));
  EXPECT_EQ(Out, "from B");
  ASSERT_TRUE(B->get(key(1, 0), Out));
  EXPECT_EQ(Out, "from A");
}

TEST(SolveStore, RefreshSeesTailAppendsOfLiveWriters) {
  MemEnv E;
  auto A = openOrDie("db", E);
  auto B = openOrDie("db", E);
  ASSERT_TRUE(A->put(key(1, 0), "first").ok());
  std::string Out;
  ASSERT_TRUE(B->get(key(1, 0), Out)); // B now knows A's segment.
  ASSERT_TRUE(A->put(key(2, 0), "second, same segment").ok());
  // B's next refresh must pick up the *tail* of the known segment.
  ASSERT_TRUE(B->get(key(2, 0), Out));
  EXPECT_EQ(Out, "second, same segment");
}

TEST(SolveStore, NoRefreshOnMissStaysStale) {
  MemEnv E;
  StoreOptions Opts;
  Opts.RefreshOnMiss = false;
  auto A = openOrDie("db", E);
  auto B = openOrDie("db", E, Opts);
  ASSERT_TRUE(A->put(key(1, 0), "x").ok());
  std::string Out;
  EXPECT_FALSE(B->get(key(1, 0), Out));
  B->refresh(); // Explicit refresh still works.
  EXPECT_TRUE(B->get(key(1, 0), Out));
}

TEST(SolveStore, OversizedPayloadRejected) {
  MemEnv E;
  StoreOptions Opts;
  Opts.MaxPayloadBytes = 16;
  auto S = openOrDie("db", E, Opts);
  EXPECT_FALSE(S->put(key(1, 1), std::string(17, 'x')).ok());
  EXPECT_TRUE(S->put(key(1, 1), std::string(16, 'x')).ok());
}

TEST(SolveStore, CompactionMergesAndDropsSuperseded) {
  MemEnv E;
  {
    // Three writers, one key superseded twice: compaction should keep only
    // the winners.
    auto A = openOrDie("db", E);
    ASSERT_TRUE(A->put(key(1, 0), "old").ok());
    ASSERT_TRUE(A->put(key(2, 0), "keep2").ok());
  }
  {
    auto B = openOrDie("db", E);
    ASSERT_TRUE(B->put(key(1, 0), "new").ok());
    ASSERT_TRUE(B->put(key(3, 0), "keep3").ok());
  }
  auto S = openOrDie("db", E);
  std::uint64_t Before = E.listDir("db").get().size();
  ASSERT_TRUE(S->compact().ok());
  StoreStats St = S->stats();
  EXPECT_EQ(St.Compactions, 1u);
  EXPECT_GE(St.SegmentsCompacted, 2u);
  // Fewer files than before (two inputs became one output; LOCK remains).
  EXPECT_LT(E.listDir("db").get().size(), Before + 1);
  std::string Out;
  ASSERT_TRUE(S->get(key(1, 0), Out));
  EXPECT_EQ(Out, "new");
  ASSERT_TRUE(S->get(key(2, 0), Out));
  EXPECT_EQ(Out, "keep2");
  ASSERT_TRUE(S->get(key(3, 0), Out));
  EXPECT_EQ(Out, "keep3");
  // And the compacted store reopens clean.
  auto S2 = openOrDie("db", E);
  ASSERT_TRUE(S2->get(key(1, 0), Out));
  EXPECT_EQ(Out, "new");
  EXPECT_EQ(S2->stats().Keys, 3u);
}

TEST(SolveStore, CompactionSkipsLiveWriterSegments) {
  MemEnv E;
  auto A = openOrDie("db", E);
  auto B = openOrDie("db", E);
  ASSERT_TRUE(A->put(key(1, 0), "live A").ok());
  ASSERT_TRUE(B->put(key(2, 0), "live B").ok());
  // A compacts: B's segment has a live writer lock, so it must survive;
  // A rotates its own writer, so its own segment is eligible.
  ASSERT_TRUE(A->compact().ok());
  std::string Out;
  ASSERT_TRUE(A->get(key(1, 0), Out));
  EXPECT_EQ(Out, "live A");
  ASSERT_TRUE(A->get(key(2, 0), Out));
  EXPECT_EQ(Out, "live B");
  // B can still append to its held segment afterwards.
  ASSERT_TRUE(B->put(key(3, 0), "post-compaction append").ok());
  ASSERT_TRUE(A->get(key(3, 0), Out));
  EXPECT_EQ(Out, "post-compaction append");
}

TEST(SolveStore, KeysEnumeratesEverything) {
  MemEnv E;
  auto S = openOrDie("db", E);
  for (std::uint64_t I = 0; I < 20; ++I)
    ASSERT_TRUE(S->put(key(I, I * 7), "p" + std::to_string(I)).ok());
  std::vector<ir::Fingerprint> Keys = S->keys();
  EXPECT_EQ(Keys.size(), 20u);
}

TEST(SolveStoreProperty, ManyKeysSurviveReopenAndCompaction) {
  MemEnv E;
  constexpr int N = 500;
  {
    auto S = openOrDie("db", E);
    for (int I = 0; I < N; ++I)
      ASSERT_TRUE(
          S->put(key(I, I), std::string(1 + I % 97, char('a' + I % 26))).ok());
  }
  auto S = openOrDie("db", E);
  ASSERT_TRUE(S->compact().ok());
  auto S2 = openOrDie("db", E);
  for (int I = 0; I < N; ++I) {
    std::string Out;
    ASSERT_TRUE(S2->get(key(I, I), Out)) << "key " << I;
    EXPECT_EQ(Out, std::string(1 + I % 97, char('a' + I % 26)));
  }
}
