//===- MultiProcessTest.cpp - Multi-process store integration tests -------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The cross-process contract on a real directory with the real POSIX Env:
// N forked workers hammer one store directory and no entry is ever lost
// or served corrupt -- including when a worker is SIGKILLed mid-write.
//
// Children never touch gtest (its assertions are not fork-safe); they
// report through _exit codes and the parent asserts. This file is kept in
// its own test binary so the TSan CI job can run the store tests without
// it (TSan does not support fork-then-continue children).
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace aqua;
using namespace aqua::store;

namespace {

ir::Fingerprint key(std::uint64_t Hi, std::uint64_t Lo) {
  ir::Fingerprint F;
  F.Hi = Hi;
  F.Lo = Lo;
  return F;
}

/// Payload is a pure function of the key, so racing writers of the same
/// key write identical bytes and last-writer-wins is unobservable.
std::string payloadFor(std::uint64_t Id) {
  return "mp-" + std::to_string(Id) + "-" + std::string(1 + Id % 90, 'x');
}

std::string makeTempDir() {
  char Template[] = "/tmp/aqua-store-mp-XXXXXX";
  char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

void removeTree(const std::string &Dir) {
  // Test scratch only; the dir name came from mkdtemp above.
  std::string Cmd = "rm -rf '" + Dir + "'";
  (void)std::system(Cmd.c_str());
}

} // namespace

TEST(MultiProcess, FourWorkersShareOneStoreDirectory) {
  const std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());
  constexpr int Workers = 4;
  constexpr std::uint64_t SharedKeys = 60;  // Written by every worker.
  constexpr std::uint64_t PrivateKeys = 25; // Disjoint per worker.

  std::vector<pid_t> Children;
  for (int W = 0; W < Workers; ++W) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // ---- Child: no gtest from here on.
      auto Opened = SolveStore::open(Dir);
      if (!Opened.ok())
        _exit(10);
      SolveStore &S = **Opened;
      for (std::uint64_t I = 0; I < SharedKeys; ++I)
        if (!S.put(key(I, 1), payloadFor(I)).ok())
          _exit(11);
      for (std::uint64_t I = 0; I < PrivateKeys; ++I) {
        std::uint64_t Id = 1000 * (W + 1) + I;
        if (!S.put(key(Id, 1), payloadFor(Id)).ok())
          _exit(12);
      }
      // Cross-read: every shared key, including ones written only by
      // sibling processes, must verify.
      for (std::uint64_t I = 0; I < SharedKeys; ++I) {
        std::string Out;
        if (!S.get(key(I, 1), Out) || Out != payloadFor(I))
          _exit(13);
      }
      _exit(0);
    }
    Children.push_back(Pid);
  }

  for (pid_t Pid : Children) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFEXITED(WStatus));
    EXPECT_EQ(WEXITSTATUS(WStatus), 0) << "worker " << Pid << " failed";
  }

  // ---- Parent: a cold open must see every record, bit-exact.
  auto Opened = SolveStore::open(Dir);
  ASSERT_TRUE(Opened.ok()) << Opened.message();
  SolveStore &S = **Opened;
  std::string Out;
  for (std::uint64_t I = 0; I < SharedKeys; ++I) {
    ASSERT_TRUE(S.get(key(I, 1), Out)) << "lost shared key " << I;
    EXPECT_EQ(Out, payloadFor(I));
  }
  for (int W = 0; W < Workers; ++W)
    for (std::uint64_t I = 0; I < PrivateKeys; ++I) {
      std::uint64_t Id = 1000 * (W + 1) + I;
      ASSERT_TRUE(S.get(key(Id, 1), Out)) << "lost private key " << Id;
      EXPECT_EQ(Out, payloadFor(Id));
    }
  EXPECT_EQ(S.stats().Keys, SharedKeys + Workers * PrivateKeys);
  EXPECT_EQ(S.stats().CorruptRecords, 0u);

  // Compaction in the parent folds the per-process segments into one and
  // loses nothing.
  ASSERT_TRUE(S.compact().ok());
  for (std::uint64_t I = 0; I < SharedKeys; ++I) {
    ASSERT_TRUE(S.get(key(I, 1), Out));
    EXPECT_EQ(Out, payloadFor(I));
  }
  removeTree(Dir);
}

TEST(MultiProcess, KilledWriterNeverCorruptsSurvivors) {
  const std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());

  // A writer that appends forever until the parent SIGKILLs it: whatever
  // prefix landed on disk, recovery must serve only verified records.
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    auto Opened = SolveStore::open(Dir);
    if (!Opened.ok())
      _exit(10);
    for (std::uint64_t I = 0;; ++I)
      (void)(*Opened)->put(key(I, 2), payloadFor(I));
  }
  ::usleep(100 * 1000); // Let it write a while, then kill it mid-flight.
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  int WStatus = 0;
  ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(WStatus));

  auto Opened = SolveStore::open(Dir);
  ASSERT_TRUE(Opened.ok()) << Opened.message();
  SolveStore &S = **Opened;
  std::vector<ir::Fingerprint> Keys = S.keys();
  EXPECT_GT(Keys.size(), 0u) << "the worker should have landed something";
  for (const ir::Fingerprint &K : Keys) {
    std::string Out;
    ASSERT_TRUE(S.get(K, Out));
    EXPECT_EQ(Out, payloadFor(K.Hi)) << "recovered record must be bit-exact";
  }
  EXPECT_EQ(S.stats().CorruptRecords, 0u)
      << "a killed writer tears tails; it must never corrupt records";

  // The dead writer's flock died with it: the store is immediately
  // writable and compactable by the next process.
  ASSERT_TRUE(S.put(key(999999, 2), payloadFor(999999)).ok());
  ASSERT_TRUE(S.compact().ok());
  std::string Out;
  ASSERT_TRUE(S.get(key(999999, 2), Out));
  removeTree(Dir);
}
