//===- IndexFaultTest.cpp - Side-car index corruption and recovery --------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The side-car index (`seg-*.idx`) is pure acceleration: it may be
// truncated, bit-flipped, version-skewed, unreadable, or deleted outright,
// and the store must (a) never serve a byte that differs from what a full
// segment scan would serve, and (b) quietly rebuild the index so the next
// open is fast again. Every test here seeds a store, snapshots the
// expected payloads, injects one fault into the index (never into the
// segment), and asserts bit-identical service plus the fallback/rebuild
// counters.
//
// Also covered: the index lifecycle around compaction (output sealed with
// a fresh index, victims' indexes deleted) and the dirGeneration
// amortization of RefreshOnMiss.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include "FaultEnv.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>

using namespace aqua;
using namespace aqua::store;

namespace {

// Mirrors the on-disk index layout in SolveStore.cpp (the tests patch
// header fields by offset).
constexpr std::size_t IdxMagicBytes = 8;
constexpr std::size_t IdxVersionOffset = 8;
constexpr std::size_t IdxTrailerBytes = 4;

ir::Fingerprint key(std::uint64_t I) {
  ir::Fingerprint F;
  F.Hi = I * 2654435761u + 1;
  F.Lo = ~I;
  return F;
}

std::string payload(std::uint64_t I) {
  return "artifact-" + std::to_string(I) + "-" +
         std::string(32 + I % 7, static_cast<char>('a' + I % 26));
}

std::unique_ptr<SolveStore> openOrDie(Env &E, StoreOptions Opts = {}) {
  auto S = SolveStore::open("db", Opts, E);
  EXPECT_TRUE(S.ok()) << (S.ok() ? "" : S.message());
  return std::move(S.get());
}

std::string segmentName(MemEnv &E) {
  auto Names = E.listDir("db");
  EXPECT_TRUE(Names.ok());
  for (const std::string &N : *Names)
    if (N.size() > 8 && N.compare(0, 4, "seg-") == 0 &&
        N.compare(N.size() - 4, 4, ".aqs") == 0)
      return N;
  ADD_FAILURE() << "no segment file found";
  return "";
}

std::string idxNameFor(const std::string &SegName) {
  return SegName.substr(0, SegName.size() - 4) + ".idx";
}

/// Same CRC-32C as the store (reflected 0x82F63B78); the version-skew test
/// re-trailers a patched index so only the version check can reject it.
std::uint32_t crc32c(const void *Data, std::size_t Len) {
  static const auto Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C >> 1) ^ (0x82F63B78u & (0u - (C & 1)));
      T[I] = C;
    }
    return T;
  }();
  std::uint32_t C = ~0u;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xff] ^ (C >> 8);
  return ~C;
}

/// Seeds \p Keys records through one writer handle, then reopens once so
/// the quiescent segment is sealed and gains its side-car index. Returns
/// the expected payloads (the pre-fault truth every test compares against).
std::map<std::uint64_t, std::string> seedSealedStore(MemEnv &E,
                                                     std::uint64_t Keys) {
  std::map<std::uint64_t, std::string> Expected;
  {
    auto S = openOrDie(E);
    for (std::uint64_t I = 0; I < Keys; ++I) {
      Expected[I] = payload(I);
      EXPECT_TRUE(S->put(key(I), Expected[I]).ok());
    }
  }
  {
    auto S = openOrDie(E); // Seals + builds the index.
    EXPECT_GE(S->stats().IndexBuilds, 1u);
    EXPECT_EQ(S->stats().SealedSegments, 1u);
  }
  EXPECT_TRUE(E.exists("db/" + idxNameFor(segmentName(E))));
  return Expected;
}

/// Every key must serve its exact pre-fault bytes through \p S.
void expectAllServed(SolveStore &S,
                     const std::map<std::uint64_t, std::string> &Expected,
                     const char *Ctx) {
  for (const auto &[I, Want] : Expected) {
    std::string Out;
    ASSERT_TRUE(S.get(key(I), Out)) << Ctx << ": key " << I << " lost";
    EXPECT_EQ(Out, Want) << Ctx << ": key " << I << " served wrong bytes";
  }
}

} // namespace

TEST(StoreIndexFaults, ReopenServesThroughMappedIndexZeroCopy) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 5);
  auto S = openOrDie(E);
  EXPECT_EQ(S->stats().IndexLoads, 1u) << "the sealed index must be adopted";
  EXPECT_EQ(S->stats().IndexFallbackScans, 0u);
  for (const auto &[I, Want] : Expected) {
    ArtifactView View;
    ASSERT_TRUE(S->getView(key(I), View));
    EXPECT_EQ(View.Payload, Want);
    EXPECT_TRUE(View.Keep) << "a sealed view must carry its keepalive";
  }
  EXPECT_GE(S->stats().IndexProbes, Expected.size());
}

TEST(StoreIndexFaultsProperty, EveryTruncationPointFallsBackLossFree) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 5);
  std::string Idx = "db/" + idxNameFor(segmentName(E));
  std::string Full = E.snapshot(Idx);
  ASSERT_GT(Full.size(), IdxMagicBytes + IdxTrailerBytes);
  for (std::size_t Cut = 0; Cut < Full.size(); ++Cut) {
    E.corrupt(Idx, Full.substr(0, Cut));
    auto S = openOrDie(E);
    EXPECT_GE(S->stats().IndexFallbackScans, 1u) << "cut at " << Cut;
    expectAllServed(*S, Expected, "truncated index");
    // The invalid side-car was discarded and rebuilt from the scan, so
    // the next open maps it again.
    EXPECT_TRUE(E.exists(Idx)) << "cut at " << Cut << ": no rebuild";
    EXPECT_GE(S->stats().IndexBuilds, 1u) << "cut at " << Cut;
  }
}

TEST(StoreIndexFaultsProperty, BitFlipAnywhereFallsBackLossFree) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 3);
  std::string Idx = "db/" + idxNameFor(segmentName(E));
  std::string Full = E.snapshot(Idx);
  // Every byte of the index is covered by the magic check or the CRC, so
  // any single flip must demote the segment to the scan path -- and the
  // scan serves the exact original payloads.
  for (std::size_t Byte = 0; Byte < Full.size(); ++Byte) {
    std::string Flipped = Full;
    Flipped[Byte] ^= 0x40;
    E.corrupt(Idx, Flipped);
    auto S = openOrDie(E);
    EXPECT_GE(S->stats().IndexFallbackScans, 1u)
        << "flip at byte " << Byte << " was served as a valid index";
    expectAllServed(*S, Expected, "bit-flipped index");
  }
}

TEST(StoreIndexFaults, VersionSkewFallsBackAndRebuildsCurrent) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 4);
  std::string Idx = "db/" + idxNameFor(segmentName(E));
  std::string Full = E.snapshot(Idx);
  // A "future" index version with a *correct* checksum: only the version
  // gate can reject it.
  std::string Skewed = Full;
  Skewed[IdxVersionOffset] = 99;
  std::uint32_t Crc =
      crc32c(Skewed.data() + IdxMagicBytes,
             Skewed.size() - IdxMagicBytes - IdxTrailerBytes);
  for (int B = 0; B < 4; ++B)
    Skewed[Skewed.size() - IdxTrailerBytes + B] =
        static_cast<char>((Crc >> (8 * B)) & 0xff);
  E.corrupt(Idx, Skewed);

  auto S = openOrDie(E);
  EXPECT_GE(S->stats().IndexFallbackScans, 1u);
  expectAllServed(*S, Expected, "version-skewed index");
  // The rebuilt side-car is the current version again and loads cleanly.
  std::string Rebuilt = E.snapshot(Idx);
  ASSERT_GT(Rebuilt.size(), IdxVersionOffset);
  EXPECT_EQ(Rebuilt[IdxVersionOffset], 1);
  auto S2 = openOrDie(E);
  EXPECT_EQ(S2->stats().IndexLoads, 1u);
  EXPECT_EQ(S2->stats().IndexFallbackScans, 0u);
}

TEST(StoreIndexFaults, DeletedIndexIsRebuiltOnReopen) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 4);
  std::string Idx = "db/" + idxNameFor(segmentName(E));
  ASSERT_TRUE(E.removeFile(Idx).ok());
  auto S = openOrDie(E);
  // No side-car is not a fault -- just a cold open: scan, serve, rebuild.
  EXPECT_EQ(S->stats().IndexFallbackScans, 0u);
  EXPECT_GE(S->stats().IndexBuilds, 1u);
  EXPECT_TRUE(E.exists(Idx));
  expectAllServed(*S, Expected, "deleted index");
}

TEST(StoreIndexFaults, UnreadableIndexDegradesToScan) {
  MemEnv Base;
  auto Expected = seedSealedStore(Base, 4);
  FaultEnv E(Base);
  E.UnreadablePaths.insert("db/" + idxNameFor(segmentName(Base)));
  auto S = openOrDie(E);
  EXPECT_GE(S->stats().IndexFallbackScans, 1u);
  expectAllServed(*S, Expected, "unreadable index");
}

TEST(StoreIndexFaults, SegmentGrowthAfterSealInvalidatesCoverage) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 3);
  // A sealed segment must never grow; if bytes appear anyway (operator
  // error, restored backup), the index's covered-bytes no longer matches
  // the file and it must not be trusted.
  std::string Seg = "db/" + segmentName(E);
  E.corrupt(Seg, E.snapshot(Seg) + "rogue tail bytes");
  auto S = openOrDie(E);
  EXPECT_GE(S->stats().IndexFallbackScans, 1u);
  expectAllServed(*S, Expected, "stale coverage");
}

TEST(StoreIndexFaults, CompactionSealsOutputAndDropsVictimIndexes) {
  MemEnv E;
  std::map<std::uint64_t, std::string> Expected;
  // Two quiescent segments (two writer generations)...
  for (int Gen = 0; Gen < 2; ++Gen) {
    auto S = openOrDie(E);
    for (std::uint64_t I = 0; I < 3; ++I) {
      std::uint64_t K = Gen * 3 + I;
      Expected[K] = payload(K);
      ASSERT_TRUE(S->put(key(K), Expected[K]).ok());
    }
  }
  // ...sealed with one side-car each on the next open.
  auto S = openOrDie(E);
  ASSERT_TRUE(S->compact().ok());
  auto Names = E.listDir("db");
  ASSERT_TRUE(Names.ok());
  std::size_t Segs = 0, Idxs = 0;
  for (const std::string &N : *Names) {
    if (N.compare(0, 4, "seg-") != 0)
      continue;
    if (N.compare(N.size() - 4, 4, ".aqs") == 0) {
      ++Segs;
      EXPECT_TRUE(E.exists("db/" + idxNameFor(N)))
          << "compaction output '" << N << "' must be sealed with an index";
    } else if (N.compare(N.size() - 4, 4, ".idx") == 0) {
      ++Idxs;
    }
  }
  EXPECT_EQ(Segs, 1u) << "victims must be gone";
  EXPECT_EQ(Idxs, 1u) << "victim side-cars must be gone with them";
  expectAllServed(*S, Expected, "post-compaction");
  // A fresh process adopts the compacted index directly: no scans at all.
  auto S2 = openOrDie(E);
  EXPECT_EQ(S2->stats().IndexLoads, 1u);
  EXPECT_EQ(S2->stats().IndexFallbackScans, 0u);
  expectAllServed(*S2, Expected, "post-compaction reopen");
}

TEST(StoreIndexFaults, IndexesDisabledStillInteroperates) {
  MemEnv E;
  auto Expected = seedSealedStore(E, 4);
  // A reader with UseIndexes off ignores the side-car and scans; one with
  // BuildIndexes off never writes one. Both serve identical bytes --
  // the knobs only trade open cost, never correctness.
  StoreOptions NoUse;
  NoUse.UseIndexes = false;
  {
    auto S = openOrDie(E, NoUse);
    EXPECT_EQ(S->stats().IndexLoads, 0u);
    EXPECT_EQ(S->stats().IndexProbes, 0u);
    expectAllServed(*S, Expected, "UseIndexes=false");
  }
  std::string Idx = "db/" + idxNameFor(segmentName(E));
  ASSERT_TRUE(E.removeFile(Idx).ok());
  StoreOptions NoBuild;
  NoBuild.BuildIndexes = false;
  {
    auto S = openOrDie(E, NoBuild);
    expectAllServed(*S, Expected, "BuildIndexes=false");
    EXPECT_EQ(S->stats().IndexBuilds, 0u);
    EXPECT_FALSE(E.exists(Idx));
  }
  // Defaults rebuild it on the next open.
  auto S = openOrDie(E);
  EXPECT_GE(S->stats().IndexBuilds, 1u);
  EXPECT_TRUE(E.exists(Idx));
}

TEST(StoreIndexFaults, RefreshOnMissAmortizedByDirGeneration) {
  MemEnv E;
  auto A = openOrDie(E);
  ASSERT_TRUE(A->put(key(1), "one").ok());

  std::string Out;
  ir::Fingerprint Missing = key(99);
  // First miss rescans the directory; repeated misses with an unchanged
  // generation skip the listDir/stat sweep entirely.
  EXPECT_FALSE(A->get(Missing, Out));
  std::uint64_t RefreshesAfterFirst = A->stats().Refreshes;
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(A->get(Missing, Out));
  EXPECT_GE(A->stats().RefreshSkips, 5u);
  EXPECT_EQ(A->stats().Refreshes, RefreshesAfterFirst)
      << "unchanged generation must not rescan";

  // A foreign writer mutates the directory: the very next miss must do a
  // real refresh and find the new record -- the skip is an amortization,
  // never staleness.
  {
    auto B = openOrDie(E);
    ASSERT_TRUE(B->put(key(2), "two").ok());
  }
  EXPECT_TRUE(A->get(key(2), Out));
  EXPECT_EQ(Out, "two");
  EXPECT_GT(A->stats().Refreshes, RefreshesAfterFirst);
}
