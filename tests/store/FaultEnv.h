//===- FaultEnv.h - Fault-injecting Env decorator for store tests -*- C++-*-===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fault-injecting decorator over any store::Env: every failure mode a
/// real deployment can hit, on demand and deterministically. The store
/// tests wrap a MemEnv in one of these to simulate
///
///  * ENOSPC mid-record: an append byte budget -- once spent, an append
///    writes only the prefix that "fits" and then fails, exactly like a
///    full disk tearing a record in half;
///  * failing syncs;
///  * read errors on chosen paths.
///
//===----------------------------------------------------------------------===//

#ifndef AQUA_TESTS_STORE_FAULTENV_H
#define AQUA_TESTS_STORE_FAULTENV_H

#include "aqua/store/Env.h"

#include <memory>
#include <set>
#include <string>

namespace aqua::store {

class FaultEnv : public Env {
public:
  explicit FaultEnv(Env &Base) : Base(Base) {}

  /// Remaining append budget in bytes; negative means unlimited. When an
  /// append does not fit, the first `Budget` bytes are written (the torn
  /// record) and the append fails; the budget then stays at zero, so every
  /// later append fails too, like a disk that stays full.
  std::int64_t AppendBudgetBytes = -1;
  /// When set, every sync() fails.
  bool FailSyncs = false;
  /// Paths whose read()/fileSize() fail outright.
  std::set<std::string> UnreadablePaths;

  Status createDir(const std::string &Path) override {
    return Base.createDir(Path);
  }
  Expected<std::vector<std::string>> listDir(const std::string &Path) override {
    return Base.listDir(Path);
  }
  Expected<std::uint64_t> fileSize(const std::string &Path) override {
    if (UnreadablePaths.count(Path))
      return Expected<std::uint64_t>::error("injected fileSize fault");
    return Base.fileSize(Path);
  }
  Status read(const std::string &Path, std::uint64_t Offset, std::uint64_t Len,
              std::string &Out) override {
    if (UnreadablePaths.count(Path))
      return Status::error("injected read fault");
    return Base.read(Path, Offset, Len, Out);
  }
  Expected<std::unique_ptr<WritableFile>>
  openAppend(const std::string &Path) override {
    auto Inner = Base.openAppend(Path);
    if (!Inner.ok())
      return Inner;
    return std::unique_ptr<WritableFile>(
        new FaultFile(*this, std::move(*Inner)));
  }
  Status rename(const std::string &From, const std::string &To) override {
    return Base.rename(From, To);
  }
  Status removeFile(const std::string &Path) override {
    return Base.removeFile(Path);
  }
  bool exists(const std::string &Path) override { return Base.exists(Path); }
  std::string uniqueToken() override { return Base.uniqueToken(); }

private:
  class FaultFile : public WritableFile {
  public:
    FaultFile(FaultEnv &E, std::unique_ptr<WritableFile> Inner)
        : E(E), Inner(std::move(Inner)) {}

    Status append(std::string_view Data) override {
      if (E.AppendBudgetBytes < 0)
        return Inner->append(Data);
      if (static_cast<std::int64_t>(Data.size()) <= E.AppendBudgetBytes) {
        E.AppendBudgetBytes -= static_cast<std::int64_t>(Data.size());
        return Inner->append(Data);
      }
      // Torn write: the prefix that fits lands on "disk", then ENOSPC.
      std::string_view Prefix =
          Data.substr(0, static_cast<std::size_t>(E.AppendBudgetBytes));
      E.AppendBudgetBytes = 0;
      if (!Prefix.empty())
        (void)Inner->append(Prefix);
      return Status::error("injected ENOSPC");
    }
    Status sync() override {
      if (E.FailSyncs)
        return Status::error("injected sync fault");
      return Inner->sync();
    }
    Status tryLockExclusive(bool &Acquired) override {
      return Inner->tryLockExclusive(Acquired);
    }

  private:
    FaultEnv &E;
    std::unique_ptr<WritableFile> Inner;
  };

  Env &Base;
};

} // namespace aqua::store

#endif // AQUA_TESTS_STORE_FAULTENV_H
