//===- FaultInjectionTest.cpp - Store recovery under injected faults ------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every failure mode the on-disk format claims to survive, injected
// deterministically through MemEnv::corrupt and the FaultEnv decorator:
//
//  * torn / truncated tail records  -> recover to the longest valid
//    prefix; the tail is retried once the bytes complete;
//  * bit flips anywhere in a segment -> the record is never served;
//  * ENOSPC mid-append               -> the torn segment is retired, a
//    fresh one takes over, recovery serves the valid prefix;
//  * crash mid-compaction            -> stale temp swept on open, and
//    duplicate segments (crash after the rename) are benign;
//  * failing syncs / unreadable segments degrade, never corrupt.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include "FaultEnv.h"

#include <gtest/gtest.h>

#include <string>

using namespace aqua;
using namespace aqua::store;

namespace {

// On-disk layout constants (mirrors SolveStore.cpp; the tests compute
// record offsets from these).
constexpr std::uint64_t SegmentHeaderBytes = 8;
constexpr std::uint64_t RecordHeaderBytes = 24;
constexpr std::uint64_t RecordTrailerBytes = 4;

ir::Fingerprint key(std::uint64_t Hi, std::uint64_t Lo) {
  ir::Fingerprint F;
  F.Hi = Hi;
  F.Lo = Lo;
  return F;
}

std::unique_ptr<SolveStore> openOrDie(Env &E, StoreOptions Opts = {}) {
  auto S = SolveStore::open("db", Opts, E);
  EXPECT_TRUE(S.ok()) << (S.ok() ? "" : S.message());
  return std::move(S.get());
}

/// The single segment file name in "db" (tests that want exactly one
/// writer create it through one store handle).
std::string segmentName(MemEnv &E) {
  auto Names = E.listDir("db");
  EXPECT_TRUE(Names.ok());
  for (const std::string &N : *Names)
    if (N.compare(0, 4, "seg-") == 0)
      return N;
  ADD_FAILURE() << "no segment file found";
  return "";
}

} // namespace

TEST(StoreFaults, TornTailRecoversToValidPrefixThenRetries) {
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(1, 0), "alpha").ok());
    ASSERT_TRUE(S->put(key(2, 0), "beta").ok());
    ASSERT_TRUE(S->put(key(3, 0), "gamma").ok());
  }
  std::string Seg = "db/" + segmentName(E);
  std::string Full = E.snapshot(Seg);
  // Tear mid-way through the last record's payload.
  E.corrupt(Seg, Full.substr(0, Full.size() - 7));

  auto S = openOrDie(E);
  std::string Out;
  EXPECT_TRUE(S->get(key(1, 0), Out));
  EXPECT_EQ(Out, "alpha");
  EXPECT_TRUE(S->get(key(2, 0), Out));
  EXPECT_EQ(Out, "beta");
  EXPECT_FALSE(S->get(key(3, 0), Out)) << "torn record must not be served";
  EXPECT_GE(S->stats().TornTails, 1u);
  EXPECT_EQ(S->stats().CorruptRecords, 0u)
      << "a torn tail is not corruption; the watermark just waits";

  // The "writer finishes": once the missing bytes land, the very next
  // refresh-on-miss picks the record up -- no reopen needed.
  E.corrupt(Seg, Full);
  EXPECT_TRUE(S->get(key(3, 0), Out));
  EXPECT_EQ(Out, "gamma");
}

TEST(StoreFaultsProperty, EveryTruncationPointRecoversToValidPrefix) {
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(1, 0), "alpha").ok());
    ASSERT_TRUE(S->put(key(2, 0), "beta").ok());
    ASSERT_TRUE(S->put(key(3, 0), "gamma").ok());
  }
  std::string Seg = "db/" + segmentName(E);
  std::string Full = E.snapshot(Seg);
  std::uint64_t LastRecord =
      Full.size() - (RecordHeaderBytes + 5 + RecordTrailerBytes); // "gamma"
  // Cut anywhere inside the last record: the first two records survive,
  // the torn one never serves.
  for (std::size_t Cut = LastRecord; Cut < Full.size(); ++Cut) {
    E.corrupt(Seg, Full.substr(0, Cut));
    auto S = openOrDie(E);
    std::string Out;
    EXPECT_TRUE(S->get(key(1, 0), Out)) << "cut at " << Cut;
    EXPECT_EQ(Out, "alpha");
    EXPECT_TRUE(S->get(key(2, 0), Out)) << "cut at " << Cut;
    EXPECT_EQ(Out, "beta");
    EXPECT_FALSE(S->get(key(3, 0), Out)) << "cut at " << Cut;
  }
  // Cutting into the segment header loses everything -- but opens cleanly.
  for (std::size_t Cut = 0; Cut < SegmentHeaderBytes; ++Cut) {
    E.corrupt(Seg, Full.substr(0, Cut));
    auto S = openOrDie(E);
    std::string Out;
    EXPECT_FALSE(S->get(key(1, 0), Out)) << "cut at " << Cut;
  }
}

TEST(StoreFaults, CorruptRecordFreezesSegmentAtLastGoodRecord) {
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(1, 0), "alpha").ok());
    ASSERT_TRUE(S->put(key(2, 0), "beta").ok());
    ASSERT_TRUE(S->put(key(3, 0), "gamma").ok());
  }
  std::string Seg = "db/" + segmentName(E);
  std::string Full = E.snapshot(Seg);
  // Flip one payload byte of the *middle* record: complete but corrupt.
  std::size_t At = Full.find("beta");
  ASSERT_NE(At, std::string::npos);
  Full[At] ^= 0x20;
  E.corrupt(Seg, Full);

  auto S = openOrDie(E);
  std::string Out;
  EXPECT_TRUE(S->get(key(1, 0), Out)) << "prefix before the corruption";
  EXPECT_EQ(Out, "alpha");
  EXPECT_FALSE(S->get(key(2, 0), Out)) << "corrupt record must not serve";
  EXPECT_FALSE(S->get(key(3, 0), Out))
      << "nothing past a corrupt record is record-aligned; frozen";
  EXPECT_GE(S->stats().CorruptRecords, 1u);

  // The store stays writable: new puts land in a fresh segment.
  ASSERT_TRUE(S->put(key(4, 0), "delta").ok());
  EXPECT_TRUE(S->get(key(4, 0), Out));
  EXPECT_EQ(Out, "delta");
}

TEST(StoreFaultsProperty, BitFlipAnywhereNeverServesCorruptPayload) {
  const std::string Payload = "payload-abcdefgh";
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(7, 7), Payload).ok());
  }
  std::string Seg = "db/" + segmentName(E);
  std::string Full = E.snapshot(Seg);
  // Flip every byte in the file in turn (header, record magic, length,
  // key, payload, checksum): the invariant is absolute -- a get either
  // misses or returns the exact original bytes.
  for (std::size_t Byte = 0; Byte < Full.size(); ++Byte) {
    std::string Flipped = Full;
    Flipped[Byte] ^= 0x40;
    E.corrupt(Seg, Flipped);
    auto S = openOrDie(E);
    std::string Out;
    if (S->get(key(7, 7), Out)) {
      EXPECT_EQ(Out, Payload) << "flip at byte " << Byte
                              << " served corrupt data";
    }
  }
  E.corrupt(Seg, Full);
}

TEST(StoreFaults, RotAfterScanIsCaughtOnRead) {
  // The scan checksummed the record once; rot *after* indexing must still
  // never reach a caller -- get re-verifies.
  MemEnv E;
  auto S = openOrDie(E);
  ASSERT_TRUE(S->put(key(1, 0), "pristine").ok());
  std::string Seg = "db/" + segmentName(E);
  std::string Full = E.snapshot(Seg);
  std::string Rotted = Full;
  Rotted[Full.find("pristine") + 2] ^= 0x01;
  E.corrupt(Seg, Rotted);
  std::string Out;
  EXPECT_FALSE(S->get(key(1, 0), Out))
      << "rot between scan and read must demote to a miss";
  EXPECT_GE(S->stats().CorruptRecords, 1u);
}

TEST(StoreFaults, EnospcMidAppendRetiresSegmentAndRecovers) {
  MemEnv Base;
  FaultEnv E(Base);
  auto S = openOrDie(E);
  ASSERT_TRUE(S->put(key(1, 0), "first").ok());

  // The disk "fills" 10 bytes into the next record: a torn append.
  E.AppendBudgetBytes = 10;
  EXPECT_FALSE(S->put(key(2, 0), "second").ok());
  std::string Out;
  EXPECT_TRUE(S->get(key(1, 0), Out)) << "reads unaffected by a full disk";
  EXPECT_EQ(Out, "first");
  EXPECT_FALSE(S->get(key(2, 0), Out));

  // Space comes back: the store must already have retired the torn
  // segment, so the next put opens a fresh one and succeeds.
  E.AppendBudgetBytes = -1;
  ASSERT_TRUE(S->put(key(3, 0), "third").ok());
  EXPECT_TRUE(S->get(key(3, 0), Out));
  EXPECT_EQ(Out, "third");

  // A fresh process on the raw env sees the torn tail, counts it, and
  // serves exactly the records that completed.
  auto S2 = openOrDie(Base);
  EXPECT_TRUE(S2->get(key(1, 0), Out));
  EXPECT_EQ(Out, "first");
  EXPECT_FALSE(S2->get(key(2, 0), Out));
  EXPECT_TRUE(S2->get(key(3, 0), Out));
  EXPECT_EQ(Out, "third");
  EXPECT_GE(S2->stats().TornTails, 1u);
}

TEST(StoreFaults, StaleCompactionTempIsSweptOnOpen) {
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(1, 0), "survivor").ok());
  }
  // A compactor died between writing its temp and the rename.
  E.corrupt("db/tmp-00000042", "half-written compaction output");
  ASSERT_TRUE(E.exists("db/tmp-00000042"));

  auto S = openOrDie(E);
  EXPECT_FALSE(E.exists("db/tmp-00000042")) << "stale temp must be swept";
  std::string Out;
  EXPECT_TRUE(S->get(key(1, 0), Out));
  EXPECT_EQ(Out, "survivor");
}

TEST(StoreFaults, CrashAfterCompactionRenameLeavesBenignDuplicates) {
  MemEnv E;
  {
    auto S = openOrDie(E);
    ASSERT_TRUE(S->put(key(1, 0), "dup").ok());
    ASSERT_TRUE(S->put(key(2, 0), "other").ok());
  }
  // A compactor renamed its output into place and died before deleting
  // the input: the same records now exist in two segments.
  std::string Seg = "db/" + segmentName(E);
  E.corrupt("db/seg-99999999.aqs", E.snapshot(Seg));

  auto S = openOrDie(E);
  std::string Out;
  EXPECT_TRUE(S->get(key(1, 0), Out));
  EXPECT_EQ(Out, "dup");
  EXPECT_TRUE(S->get(key(2, 0), Out));
  EXPECT_EQ(Out, "other");
  EXPECT_EQ(S->stats().Keys, 2u) << "duplicates must collapse in the index";
  // And a real compaction afterwards cleans the duplication up entirely.
  ASSERT_TRUE(S->compact().ok());
  EXPECT_TRUE(S->get(key(1, 0), Out));
  EXPECT_EQ(Out, "dup");
  EXPECT_EQ(S->stats().Keys, 2u);
}

TEST(StoreFaults, FailingSyncSurfacesWithoutCorruption) {
  MemEnv Base;
  FaultEnv E(Base);
  E.FailSyncs = true;
  StoreOptions Opts;
  Opts.SyncEveryAppend = true;
  auto S = openOrDie(E, Opts);
  // The append itself landed; only durability is in doubt, and the caller
  // is told so.
  EXPECT_FALSE(S->put(key(1, 0), "synced?").ok());
  auto S2 = openOrDie(Base);
  std::string Out;
  EXPECT_TRUE(S2->get(key(1, 0), Out)) << "the record was complete";
  EXPECT_EQ(Out, "synced?");
}

TEST(StoreFaults, UnreadableSegmentDegradesToMisses) {
  MemEnv Base;
  {
    auto S = openOrDie(Base);
    ASSERT_TRUE(S->put(key(1, 0), "unreachable").ok());
  }
  FaultEnv E(Base);
  E.UnreadablePaths.insert("db/" + segmentName(Base));
  auto S = openOrDie(E); // Opens despite the bad segment.
  std::string Out;
  EXPECT_FALSE(S->get(key(1, 0), Out)) << "I/O errors demote to misses";
  // The store still accepts new work.
  ASSERT_TRUE(S->put(key(2, 0), "fresh").ok());
  EXPECT_TRUE(S->get(key(2, 0), Out));
  EXPECT_EQ(Out, "fresh");
}
