//===- StoreConcurrencyTest.cpp - Threaded store + L2 write-through hammer ------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Single-process concurrency coverage, built to run under TSan (the CI
// sanitizer job runs this binary): raw SolveStore put/get/compact races,
// and the SolveCache -> store write-through / L2-promotion paths under
// contention. The fork-based multi-process coverage lives in
// MultiProcessTest.cpp, outside the TSan target list.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/ArtifactCodec.h"
#include "aqua/service/SolveCache.h"
#include "aqua/store/SolveStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;
using namespace aqua::store;

namespace {

ir::Fingerprint key(std::uint64_t Hi, std::uint64_t Lo) {
  ir::Fingerprint F;
  F.Hi = Hi;
  F.Lo = Lo;
  return F;
}

std::string payloadFor(std::uint64_t I) {
  return "payload-" + std::to_string(I) + std::string(I % 64, '.');
}

/// A small synthetic artifact whose encoding is deterministic in \p I.
std::shared_ptr<const CompileArtifact> artifactFor(std::uint64_t I) {
  auto A = std::make_shared<CompileArtifact>();
  A->Ok = true;
  A->Error = "tag-" + std::to_string(I);
  return A;
}

} // namespace

TEST(StoreConcurrency, ParallelPutGetAcrossThreads) {
  MemEnv E;
  auto Opened = SolveStore::open("db", {}, E);
  ASSERT_TRUE(Opened.ok());
  SolveStore &S = **Opened;

  constexpr int Threads = 8, PerThread = 100;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        std::uint64_t Id = static_cast<std::uint64_t>(T) * 1000 + I;
        if (!S.put(key(Id, Id), payloadFor(Id)).ok())
          ++Mismatches;
        // Read back something another thread probably wrote.
        std::uint64_t Probe =
            (static_cast<std::uint64_t>(Threads - 1 - T)) * 1000 +
            (I ? I - 1 : 0);
        std::string Out;
        if (S.get(key(Probe, Probe), Out) && Out != payloadFor(Probe))
          ++Mismatches;
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
  for (int T = 0; T < Threads; ++T)
    for (int I = 0; I < PerThread; ++I) {
      std::uint64_t Id = static_cast<std::uint64_t>(T) * 1000 + I;
      std::string Out;
      ASSERT_TRUE(S.get(key(Id, Id), Out)) << "lost key " << Id;
      EXPECT_EQ(Out, payloadFor(Id));
    }
}

TEST(StoreConcurrency, CompactionRacesReadersAndWriters) {
  MemEnv E;
  auto Opened = SolveStore::open("db", {}, E);
  ASSERT_TRUE(Opened.ok());
  SolveStore &S = **Opened;
  for (std::uint64_t I = 0; I < 50; ++I)
    ASSERT_TRUE(S.put(key(I, 0), payloadFor(I)).ok());

  std::atomic<bool> Stop{false};
  std::atomic<int> Bad{0};
  std::thread Compactor([&] {
    while (!Stop.load())
      if (!S.compact().ok())
        ++Bad;
  });
  // The writer runs to completion (the final sweep asserts every key);
  // only the compactor is stop-gated.
  std::thread Writer([&] {
    for (std::uint64_t I = 50; I < 150; ++I)
      if (!S.put(key(I, 0), payloadFor(I)).ok())
        ++Bad;
  });
  for (int Round = 0; Round < 200; ++Round)
    for (std::uint64_t I = 0; I < 50; ++I) {
      std::string Out;
      if (S.get(key(I, 0), Out) && Out != payloadFor(I))
        ++Bad;
    }
  Writer.join();
  Stop.store(true);
  Compactor.join();
  EXPECT_EQ(Bad.load(), 0);
  for (std::uint64_t I = 0; I < 150; ++I) {
    std::string Out;
    ASSERT_TRUE(S.get(key(I, 0), Out)) << "key " << I << " lost in the race";
    EXPECT_EQ(Out, payloadFor(I));
  }
}

TEST(StoreConcurrency, WriteThroughCacheHammer) {
  MemEnv E;
  auto Opened = SolveStore::open("db", {}, E);
  ASSERT_TRUE(Opened.ok());

  CacheConfig Cfg;
  Cfg.Shards = 4;
  // Tiny L1: constant eviction, so lookups keep falling through to the L2
  // promotion path while inserts write through -- the racy paths by design.
  // The decoded victim cache would resurrect evictions before they reach
  // the L2; off, so this hammer actually drives store promotion.
  Cfg.MaxEntries = 8;
  Cfg.DecodedEntries = 0;
  SolveCache Cache(Cfg);
  Cache.attachStore(Opened->get());

  constexpr int Threads = 8, Keys = 40, Rounds = 60;
  std::atomic<int> Bad{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R)
        for (std::uint64_t I = 0; I < Keys; ++I) {
          if ((T + R + I) % 3 == 0)
            Cache.insert(key(I, I * 3), artifactFor(I));
          bool FromL2 = false;
          if (auto Hit = Cache.lookup(key(I, I * 3), &FromL2))
            if (Hit->Error != "tag-" + std::to_string(I))
              ++Bad;
        }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Bad.load(), 0);

  CacheStats St = Cache.stats();
  EXPECT_GT(St.HitsL2, 0u) << "the tiny L1 must have promoted from the L2";
  EXPECT_EQ(St.L2DecodeErrors, 0u);

  // Everything written through is durable: a *fresh* cache over the same
  // store serves every key from disk alone.
  SolveCache Cold(Cfg);
  Cold.attachStore(Opened->get());
  for (std::uint64_t I = 0; I < Keys; ++I) {
    bool FromL2 = false;
    auto Hit = Cold.lookup(key(I, I * 3), &FromL2);
    ASSERT_NE(Hit, nullptr) << "key " << I << " not persisted";
    EXPECT_TRUE(FromL2);
    EXPECT_EQ(Hit->Error, "tag-" + std::to_string(I));
  }
  EXPECT_EQ(Cold.stats().HitsL2, static_cast<std::uint64_t>(Keys));
}

TEST(StoreConcurrency, DetachedCacheNeverTouchesStore) {
  MemEnv E;
  auto Opened = SolveStore::open("db", {}, E);
  ASSERT_TRUE(Opened.ok());
  SolveCache Cache;
  Cache.attachStore(Opened->get());
  Cache.insert(key(1, 1), artifactFor(1));
  Cache.attachStore(nullptr);
  Cache.insert(key(2, 2), artifactFor(2));
  EXPECT_TRUE((*Opened)->contains(key(1, 1)));
  EXPECT_FALSE((*Opened)->contains(key(2, 2)))
      << "detached cache must not write through";
}
