//===- CutsTest.cpp - Cutting planes, cut pool, and warm shape repair ----------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"
#include "aqua/lp/Cuts.h"
#include "aqua/lp/Solver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Enumerates every integer point of [0,Box]^n and checks that each point
/// feasible for \p M satisfies every cut in \p Pool. Returns the number of
/// feasible points checked (so tests can assert the sweep was non-vacuous).
int checkCutsValidOnIntegerPoints(const Model &M, const CutPool &Pool,
                                  int Box) {
  const int N = M.numVars();
  std::vector<int> X(N, 0);
  int Feasible = 0;
  while (true) {
    // Model feasibility at the integer point.
    bool Ok = true;
    for (int R = 0; R < M.numRows() && Ok; ++R) {
      double A = 0.0;
      for (const Term &T : M.row(R).Terms)
        A += T.Coef * X[T.Var];
      switch (M.row(R).Kind) {
      case RowKind::LE:
        Ok = A <= M.row(R).Rhs + 1e-9;
        break;
      case RowKind::GE:
        Ok = A >= M.row(R).Rhs - 1e-9;
        break;
      case RowKind::EQ:
        Ok = std::fabs(A - M.row(R).Rhs) <= 1e-9;
        break;
      }
    }
    for (int V = 0; V < N && Ok; ++V)
      Ok = X[V] >= M.var(V).Lower - 1e-9 && X[V] <= M.var(V).Upper + 1e-9;
    if (Ok) {
      ++Feasible;
      for (const Cut &C : Pool.cuts()) {
        double A = 0.0;
        for (const Term &T : C.Terms)
          A += T.Coef * X[T.Var];
        EXPECT_LE(A, C.Rhs + 1e-7)
            << "cut violated by feasible integer point";
      }
    }
    int I = 0;
    while (I < N && ++X[I] > Box)
      X[I++] = 0;
    if (I == N)
      break;
  }
  return Feasible;
}

Cut makeCut(std::vector<Term> Terms, double Rhs) {
  Cut C;
  C.Terms = std::move(Terms);
  C.Rhs = Rhs;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// CutPool
//===----------------------------------------------------------------------===//

TEST(CutPool, DeduplicatesEquivalentCuts) {
  CutPool Pool;
  EXPECT_TRUE(Pool.add(makeCut({{0, 2.0}, {1, 3.0}}, 6.0)));
  EXPECT_FALSE(Pool.add(makeCut({{0, 2.0}, {1, 3.0}}, 6.0)));
  // Positive scaling is the same halfspace.
  EXPECT_FALSE(Pool.add(makeCut({{0, 4.0}, {1, 6.0}}, 12.0)));
  // Different rhs is a different cut.
  EXPECT_TRUE(Pool.add(makeCut({{0, 2.0}, {1, 3.0}}, 5.0)));
  EXPECT_EQ(Pool.size(), 2);
}

TEST(CutPool, AgingRetiresSlackCutsAndRemapsIndices) {
  CutPool Pool;
  ASSERT_TRUE(Pool.add(makeCut({{0, 1.0}}, 1.0)));
  ASSERT_TRUE(Pool.add(makeCut({{1, 1.0}}, 2.0)));
  ASSERT_TRUE(Pool.add(makeCut({{2, 1.0}}, 3.0)));

  // Cut 1 is slack twice in a row (MaxAge 2); cuts 0 and 2 stay tight.
  EXPECT_EQ(Pool.age({0.0, 0.5, 0.0}, 2), 0);
  EXPECT_EQ(Pool.size(), 3);
  std::vector<int> OldToNew;
  EXPECT_EQ(Pool.age({0.0, 0.5, 0.0}, 2, &OldToNew), 1);
  EXPECT_EQ(Pool.size(), 2);
  ASSERT_EQ(OldToNew.size(), 3u);
  EXPECT_EQ(OldToNew[0], 0);
  EXPECT_EQ(OldToNew[1], -1);
  EXPECT_EQ(OldToNew[2], 1);
}

TEST(CutPool, RetiredCutsAreNeverReadmitted) {
  CutPool Pool;
  ASSERT_TRUE(Pool.add(makeCut({{0, 1.0}}, 1.0)));
  ASSERT_EQ(Pool.age({1.0}, 1), 1);
  EXPECT_TRUE(Pool.empty());
  EXPECT_FALSE(Pool.add(makeCut({{0, 1.0}}, 1.0)));
}

TEST(CutPool, TightRowsResetTheirAge) {
  CutPool Pool;
  ASSERT_TRUE(Pool.add(makeCut({{0, 1.0}}, 1.0)));
  EXPECT_EQ(Pool.age({0.5}, 2), 0); // age 1
  EXPECT_EQ(Pool.age({0.0}, 2), 0); // tight: reset
  EXPECT_EQ(Pool.age({0.5}, 2), 0); // age 1 again
  EXPECT_EQ(Pool.size(), 1);
}

//===----------------------------------------------------------------------===//
// Separation validity
//===----------------------------------------------------------------------===//

TEST(Separation, GomoryCutsAreValidAndViolatedAtTheVertex) {
  // max 5x + 4y  s.t.  6x + 5y <= 10: LP vertex x = 5/3 is fractional.
  Model M;
  M.addVar("x", 0.0, 4.0, 5.0);
  M.addVar("y", 0.0, 4.0, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});

  RevisedSimplex Engine(M);
  ASSERT_EQ(Engine.solve(), RevisedStatus::Optimal);
  std::vector<double> X = Engine.values();

  CutPool Pool;
  CutOptions Opts;
  int N = separateGomory(M, {true, true}, Engine, Opts, Pool);
  ASSERT_GT(N, 0);
  // Every admitted cut strictly separates the fractional vertex...
  for (const Cut &C : Pool.cuts()) {
    double A = 0.0;
    for (const Term &T : C.Terms)
      A += T.Coef * X[T.Var];
    EXPECT_GT(A, C.Rhs + 1e-9);
  }
  // ...and no feasible integer point is ever cut off.
  EXPECT_GT(checkCutsValidOnIntegerPoints(M, Pool, 4), 0);
}

TEST(Separation, DivisorCutsAreValidAndViolatedAtThePoint) {
  // 6x + 5y <= 10 divided by 5 and floored: x + y <= 2. The LP vertex
  // (5/3, 0) satisfies it, so probe with a point that violates it.
  Model M;
  M.addVar("x", 0.0, 4.0, 5.0);
  M.addVar("y", 0.0, 4.0, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});

  CutPool Pool;
  CutOptions Opts;
  const double P[2] = {0.5, 1.7};
  int N = separateDivisor(M, {true, true}, {P[0], P[1]}, Opts, Pool);
  ASSERT_GT(N, 0);
  // The separator only admits cuts the probe point violates.
  for (const Cut &C : Pool.cuts()) {
    double A = 0.0;
    for (const Term &T : C.Terms)
      A += T.Coef * P[T.Var];
    EXPECT_GT(A, C.Rhs + 1e-9);
  }
  EXPECT_GT(checkCutsValidOnIntegerPoints(M, Pool, 4), 0);
}

//===----------------------------------------------------------------------===//
// Cuts inside branch-and-bound
//===----------------------------------------------------------------------===//

TEST(CutAndBranch, CutsCloseTheKnapsackAtTheRootWithSameOptimum) {
  // Known integer optimum y = 2 (objective 8); the LP relaxation is
  // fractional, so the no-cuts tree must branch while root cuts close it.
  Model M;
  M.addVar("x", 0.0, 4.0, 5.0);
  M.addVar("y", 0.0, 4.0, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});

  IntOptions CutsOn;
  IntOptions CutsOff;
  CutsOff.CutRounds = 0;
  IntSolution On = solveInteger(M, {}, CutsOn);
  IntSolution Off = solveInteger(M, {}, CutsOff);
  ASSERT_EQ(On.Status, SolveStatus::Optimal);
  ASSERT_EQ(Off.Status, SolveStatus::Optimal);
  EXPECT_NEAR(On.Objective, 8.0, 1e-6);
  EXPECT_NEAR(Off.Objective, 8.0, 1e-6);
  EXPECT_EQ(On.Nodes, 1);
  EXPECT_GT(Off.Nodes, 1);
}

TEST(CutAndBranch, PseudocostSearchAgreesAndStaysWithinNodeBudget) {
  // A 6-variable 3-row integer program whose relaxation is fractional in
  // several variables: pseudocost/reliability branching and plain
  // most-fractional branching must agree on the optimum, and the
  // pseudocost tree must stay within a regression budget.
  Model M;
  const double C[6] = {12.0, 7.0, 11.0, 5.0, 13.0, 3.0};
  for (int I = 0; I < 6; ++I)
    M.addVar("x" + std::to_string(I), 0.0, 3.0, C[I]);
  M.addRow("k1", RowKind::LE, 21.0,
           {{0, 7.0}, {1, 3.0}, {2, 5.0}, {3, 2.0}, {4, 6.0}, {5, 1.0}});
  M.addRow("k2", RowKind::LE, 17.0,
           {{0, 2.0}, {1, 5.0}, {2, 4.0}, {3, 3.0}, {4, 5.0}, {5, 2.0}});
  M.addRow("k3", RowKind::LE, 15.0,
           {{0, 4.0}, {1, 1.0}, {2, 3.0}, {3, 5.0}, {4, 2.0}, {5, 4.0}});

  IntOptions Pseudo;
  Pseudo.CutRounds = 0; // Isolate the branching rule.
  IntOptions Frac = Pseudo;
  Frac.Reliable = 0;
  IntSolution SP = solveInteger(M, {}, Pseudo);
  IntSolution SF = solveInteger(M, {}, Frac);
  ASSERT_EQ(SP.Status, SolveStatus::Optimal);
  ASSERT_EQ(SF.Status, SolveStatus::Optimal);
  EXPECT_NEAR(SP.Objective, SF.Objective, 1e-6);
  // Node-count regression gate: reliability branching explores a small
  // tree here; a regression in the pseudocost table or the plunge logic
  // shows up as an order-of-magnitude blowup, not a few extra nodes.
  EXPECT_LE(SP.Nodes, 200);
}

TEST(CutAndBranch, RestartsPreserveTheOptimum) {
  Model M;
  const double C[6] = {12.0, 7.0, 11.0, 5.0, 13.0, 3.0};
  for (int I = 0; I < 6; ++I)
    M.addVar("x" + std::to_string(I), 0.0, 3.0, C[I]);
  M.addRow("k1", RowKind::LE, 21.0,
           {{0, 7.0}, {1, 3.0}, {2, 5.0}, {3, 2.0}, {4, 6.0}, {5, 1.0}});
  M.addRow("k2", RowKind::LE, 17.0,
           {{0, 2.0}, {1, 5.0}, {2, 4.0}, {3, 3.0}, {4, 5.0}, {5, 2.0}});

  IntOptions NoRestart;
  NoRestart.RestartNodes = 0;
  IntOptions Eager;
  Eager.RestartNodes = 4; // Force restarts through the incumbent path.
  Eager.MaxRestarts = 2;
  IntSolution A = solveInteger(M, {}, NoRestart);
  IntSolution B = solveInteger(M, {}, Eager);
  ASSERT_EQ(A.Status, SolveStatus::Optimal);
  ASSERT_EQ(B.Status, SolveStatus::Optimal);
  EXPECT_NEAR(A.Objective, B.Objective, 1e-6);
}

//===----------------------------------------------------------------------===//
// Shape hash + warm basis repair
//===----------------------------------------------------------------------===//

namespace {

Model shapeModel(double Rhs, double UpperY) {
  Model M;
  M.addVar("x", 0.0, 4.0, 3.0);
  M.addVar("y", 0.0, UpperY, 2.0);
  M.addRow("r0", RowKind::LE, Rhs, {{0, 1.0}, {1, 1.0}});
  M.addRow("r1", RowKind::LE, 8.0, {{0, 2.0}, {1, 1.0}});
  return M;
}

} // namespace

TEST(ShapeHash, BlindToRhsAndBoundsSensitiveToStructure) {
  std::uint64_t H0 = modelShapeHash(shapeModel(6.0, 5.0));
  EXPECT_EQ(H0, modelShapeHash(shapeModel(4.5, 5.0))); // rhs moved
  EXPECT_EQ(H0, modelShapeHash(shapeModel(6.0, 2.0))); // bound moved

  Model Coef = shapeModel(6.0, 5.0);
  Coef.row(0).Terms[1].Coef = 2.0;
  EXPECT_NE(H0, modelShapeHash(Coef));

  Model Obj = shapeModel(6.0, 5.0);
  Obj.var(0).ObjCoef = 4.0;
  EXPECT_NE(H0, modelShapeHash(Obj));
}

TEST(WarmShapeRepair, PerturbedRhsAndBoundsMatchColdSolve) {
  // Capture on one instance, repair onto a same-shape instance whose rhs
  // and variable bounds both moved; the repair must agree with a cold
  // solve of the perturbed model.
  Model A = shapeModel(6.0, 5.0);
  SolveOptions SO;
  std::shared_ptr<const Basis> Donor;
  Solution SA = solveRevisedSimplex(A, SO, nullptr, &Donor);
  ASSERT_EQ(SA.Status, SolveStatus::Optimal);
  ASSERT_TRUE(Donor);

  Model B = shapeModel(4.5, 1.0);
  ASSERT_EQ(modelShapeHash(A), modelShapeHash(B));
  Solution Warm = solveRevisedSimplex(B, SO, Donor.get(), nullptr);
  Solution Cold = solveRevisedSimplex(B, SO);
  ASSERT_EQ(Warm.Status, SolveStatus::Optimal);
  ASSERT_EQ(Cold.Status, SolveStatus::Optimal);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-8);
}

TEST(WarmShapeRepair, FlippedBoundStatusesAreSanitizedNotTrusted) {
  // The donor leaves y nonbasic at a bound; the target model moves y's
  // bounds so that status no longer exists. installBasis must sanitize
  // the status against the new bounds (or reject and fall back cold) --
  // either way the answer matches the cold solve.
  Model A = shapeModel(6.0, 5.0);
  SolveOptions SO;
  std::shared_ptr<const Basis> Donor;
  ASSERT_EQ(solveRevisedSimplex(A, SO, nullptr, &Donor).Status,
            SolveStatus::Optimal);
  ASSERT_TRUE(Donor);

  // y's upper bound collapses onto a tighter window than the donor optimum
  // used; x's lower bound rises above zero.
  Model B;
  B.addVar("x", 1.5, 4.0, 3.0);
  B.addVar("y", 0.5, 1.0, 2.0);
  B.addRow("r0", RowKind::LE, 6.0, {{0, 1.0}, {1, 1.0}});
  B.addRow("r1", RowKind::LE, 8.0, {{0, 2.0}, {1, 1.0}});
  Solution Warm = solveRevisedSimplex(B, SO, Donor.get(), nullptr);
  Solution Cold = solveRevisedSimplex(B, SO);
  ASSERT_EQ(Warm.Status, Cold.Status);
  ASSERT_EQ(Warm.Status, SolveStatus::Optimal);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-8);
}

TEST(WarmShapeRepair, SolverGateRejectsMismatchedShapeHash) {
  // lp::solve only engages the warm basis when the caller's recorded
  // shape hash matches the model it is about to solve; a stale hash from
  // a different structure must degrade to a cold solve, not corrupt it.
  Model A = shapeModel(6.0, 5.0);
  SolverOptions Capture;
  Capture.Presolve = false; // Hash the model as-is for this unit check.
  Capture.CaptureBasis = true;
  SolveInfo Info;
  Solution SA = solve(A, Capture, &Info);
  ASSERT_EQ(SA.Status, SolveStatus::Optimal);
  ASSERT_TRUE(Info.OptBasis);

  Model C = shapeModel(6.0, 5.0);
  C.row(0).Terms[1].Coef = 2.0; // Different structure.
  SolverOptions WarmOpts;
  WarmOpts.Presolve = false;
  WarmOpts.WarmStart = Info.OptBasis;
  WarmOpts.WarmShapeHash = Info.ShapeHash;
  SolveInfo WInfo;
  Solution SW = solve(C, WarmOpts, &WInfo);
  ASSERT_EQ(SW.Status, SolveStatus::Optimal);
  EXPECT_FALSE(WInfo.WarmStarted);
  Solution SCold = solve(C, SolverOptions{});
  EXPECT_NEAR(SW.Objective, SCold.Objective, 1e-8);
}
