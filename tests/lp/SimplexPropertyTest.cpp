//===- SimplexPropertyTest.cpp - Randomized simplex validation ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property test: on random small LPs with bounded variables, the simplex
// must agree with brute-force vertex enumeration -- every optimum of a
// bounded feasible LP lies at a vertex, i.e. at the intersection of n
// active constraints.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Solver.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

using namespace aqua;
using namespace aqua::lp;

namespace {

struct HalfSpace {
  std::vector<double> A; // A . x <= B (equalities become two half-spaces).
  double B;
  bool IsEquality;
};

/// Gathers rows and bounds as half-spaces.
std::vector<HalfSpace> halfSpaces(const Model &M) {
  int N = M.numVars();
  std::vector<HalfSpace> Hs;
  for (const Row &R : M.rows()) {
    std::vector<double> A(N, 0.0);
    for (const Term &T : R.Terms)
      A[T.Var] += T.Coef;
    switch (R.Kind) {
    case RowKind::LE:
      Hs.push_back({A, R.Rhs, false});
      break;
    case RowKind::GE: {
      std::vector<double> Neg(N);
      for (int I = 0; I < N; ++I)
        Neg[I] = -A[I];
      Hs.push_back({Neg, -R.Rhs, false});
      break;
    }
    case RowKind::EQ:
      Hs.push_back({A, R.Rhs, true});
      break;
    }
  }
  for (int I = 0; I < N; ++I) {
    std::vector<double> Lo(N, 0.0), Hi(N, 0.0);
    Lo[I] = -1.0;
    Hi[I] = 1.0;
    Hs.push_back({Lo, -M.var(I).Lower, false});
    Hs.push_back({Hi, M.var(I).Upper, false});
  }
  return Hs;
}

/// Solves an n x n dense system; returns nullopt if singular.
std::optional<std::vector<double>> solveSquare(std::vector<std::vector<double>> A,
                                               std::vector<double> B) {
  int N = static_cast<int>(B.size());
  for (int Col = 0; Col < N; ++Col) {
    int Piv = -1;
    double Best = 1e-9;
    for (int R = Col; R < N; ++R)
      if (std::fabs(A[R][Col]) > Best) {
        Best = std::fabs(A[R][Col]);
        Piv = R;
      }
    if (Piv < 0)
      return std::nullopt;
    std::swap(A[Col], A[Piv]);
    std::swap(B[Col], B[Piv]);
    for (int R = 0; R < N; ++R) {
      if (R == Col)
        continue;
      double F = A[R][Col] / A[Col][Col];
      for (int C = Col; C < N; ++C)
        A[R][C] -= F * A[Col][C];
      B[R] -= F * B[Col];
    }
  }
  std::vector<double> X(N);
  for (int I = 0; I < N; ++I)
    X[I] = B[I] / A[I][I];
  return X;
}

/// Brute force: best feasible vertex objective, or nullopt if no feasible
/// vertex exists. Only valid when all variables have finite bounds (the
/// polytope is then bounded and vertex enumeration is complete).
std::optional<double> bruteForceOptimum(const Model &M) {
  int N = M.numVars();
  std::vector<HalfSpace> Hs = halfSpaces(M);
  int H = static_cast<int>(Hs.size());
  std::optional<double> Best;

  // Enumerate all N-subsets of half-spaces via simple recursion.
  std::vector<int> Idx;
  auto Recurse = [&](auto &&Self, int Start) -> void {
    if (static_cast<int>(Idx.size()) == N) {
      std::vector<std::vector<double>> A;
      std::vector<double> B;
      for (int I : Idx) {
        A.push_back(Hs[I].A);
        B.push_back(Hs[I].B);
      }
      auto X = solveSquare(A, B);
      if (!X)
        return;
      // Feasibility w.r.t. every half-space (equalities both ways).
      for (const HalfSpace &S : Hs) {
        double Lhs = 0.0;
        for (int I = 0; I < N; ++I)
          Lhs += S.A[I] * (*X)[I];
        double Slack = S.B - Lhs;
        if (Slack < -1e-6)
          return;
        if (S.IsEquality && std::fabs(Slack) > 1e-6)
          return;
      }
      double Obj = M.objectiveValue(*X);
      double Signed = M.isMaximize() ? Obj : -Obj;
      if (!Best || Signed > (M.isMaximize() ? *Best : -*Best))
        Best = Obj;
      return;
    }
    for (int I = Start; I < H; ++I) {
      Idx.push_back(I);
      Self(Self, I + 1);
      Idx.pop_back();
    }
  };
  Recurse(Recurse, 0);
  return Best;
}

} // namespace

class SimplexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomTest, MatchesBruteForce) {
  SplitMix64 Rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  int Cases = 40;
  for (int Case = 0; Case < Cases; ++Case) {
    int N = static_cast<int>(Rng.nextInRange(2, 3));
    int R = static_cast<int>(Rng.nextInRange(1, 4));
    Model M;
    M.setMaximize(Rng.nextInRange(0, 1) == 1);
    for (int I = 0; I < N; ++I) {
      double Lo = static_cast<double>(Rng.nextInRange(0, 2));
      double Hi = Lo + static_cast<double>(Rng.nextInRange(1, 6));
      std::string VarName = "x";
      VarName += std::to_string(I);
      M.addVar(std::move(VarName), Lo, Hi,
               static_cast<double>(Rng.nextInRange(-3, 3)));
    }
    for (int I = 0; I < R; ++I) {
      std::vector<Term> Terms;
      for (int V = 0; V < N; ++V) {
        double C = static_cast<double>(Rng.nextInRange(-3, 3));
        if (C != 0.0)
          Terms.push_back(Term{V, C});
      }
      if (Terms.empty())
        continue;
      RowKind Kind = static_cast<RowKind>(Rng.nextInRange(0, 2));
      double Rhs = static_cast<double>(Rng.nextInRange(-6, 10));
      std::string RowName = "r";
      RowName += std::to_string(I);
      M.addRow(std::move(RowName), Kind, Rhs, std::move(Terms));
    }

    std::optional<double> Expected = bruteForceOptimum(M);
    for (bool Presolve : {false, true}) {
      SolverOptions Opts;
      Opts.Presolve = Presolve;
      Solution S = solve(M, Opts);
      if (Expected) {
        ASSERT_EQ(S.Status, SolveStatus::Optimal)
            << "case " << Case << " presolve=" << Presolve << "\n"
            << M.str();
        EXPECT_NEAR(S.Objective, *Expected, 1e-6)
            << "case " << Case << " presolve=" << Presolve << "\n"
            << M.str();
        EXPECT_LE(M.maxViolation(S.Values), 1e-6);
      } else {
        EXPECT_EQ(S.Status, SolveStatus::Infeasible)
            << "case " << Case << " presolve=" << Presolve << "\n"
            << M.str();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 8));
