//===- RevisedSimplexTest.cpp - Bounded revised simplex tests ------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The warm-start contract of the revised engine: a dual reoptimization
// from a previously optimal basis must land on the same optimum as a cold
// solve of the modified model. Randomized models cross-check the engine
// against the dense tableau.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/RevisedSimplex.h"

#include "aqua/lp/Simplex.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

Model twoVarModel() {
  // max 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6  ->  x=4, obj 12.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 3.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 2.0);
  M.addRow("r1", RowKind::LE, 4.0, {{X, 1.0}, {Y, 1.0}});
  M.addRow("r2", RowKind::LE, 6.0, {{X, 1.0}, {Y, 3.0}});
  return M;
}

/// Builds a random bounded LP in the shape the IVol formulations take:
/// nonnegative variables, small integer coefficients, LE/GE/EQ rows.
Model randomModel(SplitMix64 &Rng) {
  Model M;
  int N = static_cast<int>(Rng.nextInRange(2, 4));
  int R = static_cast<int>(Rng.nextInRange(1, 4));
  M.setMaximize(Rng.nextInRange(0, 1) == 1);
  for (int I = 0; I < N; ++I) {
    double Lo = static_cast<double>(Rng.nextInRange(0, 2));
    double Hi = Lo + static_cast<double>(Rng.nextInRange(1, 8));
    M.addVar("v" + std::to_string(I), Lo, Hi,
             static_cast<double>(Rng.nextInRange(-3, 3)));
  }
  for (int J = 0; J < R; ++J) {
    std::vector<Term> Terms;
    for (int I = 0; I < N; ++I) {
      double C = static_cast<double>(Rng.nextInRange(-2, 3));
      if (C != 0.0)
        Terms.push_back({I, C});
    }
    if (Terms.empty())
      continue;
    RowKind Kind = static_cast<RowKind>(Rng.nextInRange(0, 2));
    M.addRow("r" + std::to_string(J), Kind,
             static_cast<double>(Rng.nextInRange(-4, 10)), Terms);
  }
  return M;
}

} // namespace

TEST(RevisedSimplex, ColdSolveMatchesKnownOptimum) {
  Model M = twoVarModel();
  RevisedSimplex Engine(M);
  ASSERT_EQ(Engine.solve(), RevisedStatus::Optimal);
  EXPECT_NEAR(Engine.objective(), 12.0, 1e-8);
  EXPECT_NEAR(Engine.values()[0], 4.0, 1e-8);
  EXPECT_NEAR(Engine.values()[1], 0.0, 1e-8);
}

TEST(RevisedSimplex, SolveRevisedSimplexAgreesWithDense) {
  Model M = twoVarModel();
  Solution Dense = solveSimplex(M);
  Solution Revised = solveRevisedSimplex(M);
  ASSERT_EQ(Revised.Status, Dense.Status);
  EXPECT_NEAR(Revised.Objective, Dense.Objective, 1e-8);
}

TEST(RevisedSimplex, WarmReoptimizeAfterBoundTightening) {
  Model M = twoVarModel();
  RevisedSimplex Engine(M);
  ASSERT_EQ(Engine.solve(), RevisedStatus::Optimal);
  Basis B = Engine.basis();

  // Branch-style tightening: x <= 3 cuts off the old optimum. The dual
  // reoptimization must land on the new optimum (x=3, y=1 -> obj 11) in a
  // handful of pivots.
  Engine.setUpper(0, 3.0);
  ASSERT_EQ(Engine.reoptimizeDual(B), RevisedStatus::Optimal);
  EXPECT_NEAR(Engine.objective(), 11.0, 1e-8);
  EXPECT_NEAR(Engine.values()[0], 3.0, 1e-8);
  EXPECT_NEAR(Engine.values()[1], 1.0, 1e-8);
}

TEST(RevisedSimplex, WarmDetectsInfeasibleSubproblem) {
  // 2x == 1 with x forced integer-style to [1, inf) is infeasible.
  Model M;
  M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("eq", RowKind::EQ, 1.0, {{0, 2.0}});
  RevisedSimplex Engine(M);
  ASSERT_EQ(Engine.solve(), RevisedStatus::Optimal);
  Basis B = Engine.basis();
  Engine.setLower(0, 1.0);
  EXPECT_EQ(Engine.reoptimizeDual(B), RevisedStatus::Infeasible);
}

TEST(RevisedSimplex, BoundResetRestoresRootProblem) {
  Model M = twoVarModel();
  RevisedSimplex Engine(M);
  ASSERT_EQ(Engine.solve(), RevisedStatus::Optimal);
  Basis B = Engine.basis();
  Engine.setUpper(0, 2.0);
  ASSERT_EQ(Engine.reoptimizeDual(B), RevisedStatus::Optimal);
  EXPECT_LT(Engine.objective(), 12.0);

  Engine.resetBounds(0);
  ASSERT_EQ(Engine.reoptimizeDual(Engine.basis()), RevisedStatus::Optimal);
  EXPECT_NEAR(Engine.objective(), 12.0, 1e-8);
}

class RevisedWarmRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RevisedWarmRandomTest, WarmMatchesColdAfterRandomTightenings) {
  SplitMix64 Rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
  int Checked = 0;
  for (int Case = 0; Case < 40; ++Case) {
    Model M = randomModel(Rng);
    RevisedSimplex Warm(M);
    if (Warm.solve() != RevisedStatus::Optimal)
      continue;

    // A chain of random bound tightenings, reoptimizing warm after each;
    // at every step an independent cold solve of the tightened model must
    // agree on status and optimum.
    for (int Step = 0; Step < 3; ++Step) {
      Basis B = Warm.basis();
      VarId V = static_cast<VarId>(
          Rng.nextInRange(0, M.numVars() - 1));
      if (Rng.nextInRange(0, 1) == 1)
        Warm.setUpper(V, Warm.upper(V) - 1.0);
      else
        Warm.setLower(V, Warm.lower(V) + 1.0);
      if (Warm.lower(V) > Warm.upper(V))
        break; // Crossed bounds would be rejected upstream; skip.
      RevisedStatus WS = Warm.reoptimizeDual(B);

      RevisedSimplex Cold(M);
      for (VarId U = 0; U < M.numVars(); ++U) {
        Cold.setLower(U, Warm.lower(U));
        Cold.setUpper(U, Warm.upper(U));
      }
      RevisedStatus CS = Cold.solve();

      ASSERT_EQ(WS, CS) << "warm/cold status divergence (case " << Case
                        << ", step " << Step << ")";
      if (WS != RevisedStatus::Optimal)
        break;
      EXPECT_NEAR(Warm.objective(), Cold.objective(), 1e-6)
          << "warm/cold optimum divergence (case " << Case << ", step "
          << Step << ")";
      ++Checked;
    }
  }
  // The generator must produce enough optimal chains for the test to mean
  // something.
  EXPECT_GE(Checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevisedWarmRandomTest, ::testing::Range(0, 6));

TEST(RevisedSimplex, BlandPricingSolvesAndReports) {
  // Explicitly configured Bland pricing must reach the optimum and be
  // reported through usedBland().
  Model M = twoVarModel();
  RevisedSimplex Engine(M);
  RevisedOptions Opts;
  Opts.Pricing = LpPricing::Bland;
  ASSERT_EQ(Engine.solve(Opts), RevisedStatus::Optimal);
  EXPECT_NEAR(Engine.objective(), 12.0, 1e-9);
  EXPECT_TRUE(Engine.usedBland());
}

TEST(RevisedSimplex, StallEngagesBlandOnDegenerateModel) {
  // A fully degenerate chain (max sum x_i with x_i +- x_{i+1} <= 0 and
  // x >= 0 forces x = 0): the objective never improves, every pivot is
  // degenerate, and with a two-iteration stall threshold the watchdog
  // must hand pricing to Bland's rule -- which then proves optimality
  // instead of cycling or tripping the numeric-failure backstop.
  Model M;
  std::vector<VarId> X;
  for (int I = 0; I < 6; ++I)
    X.push_back(M.addVar("x", 0.0, Infinity, 1.0));
  for (int I = 0; I + 1 < 6; ++I) {
    M.addRow("p", RowKind::LE, 0.0, {{X[I], 1.0}, {X[I + 1], 1.0}});
    M.addRow("m", RowKind::LE, 0.0, {{X[I], 1.0}, {X[I + 1], -1.0}});
  }

  RevisedSimplex Engine(M);
  RevisedOptions Opts;
  Opts.StallThreshold = 2;
  ASSERT_EQ(Engine.solve(Opts), RevisedStatus::Optimal);
  EXPECT_NEAR(Engine.objective(), 0.0, 1e-9);
  EXPECT_TRUE(Engine.usedBland());
}
