//===- SimplexTest.cpp - Two-phase simplex tests ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Simplex.h"

#include <gtest/gtest.h>

using namespace aqua::lp;

namespace {

Model twoVarModel() {
  // max 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 3.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 2.0);
  M.addRow("r1", RowKind::LE, 4.0, {{X, 1.0}, {Y, 1.0}});
  M.addRow("r2", RowKind::LE, 6.0, {{X, 1.0}, {Y, 3.0}});
  return M;
}

} // namespace

TEST(Simplex, SimpleMaximization) {
  Model M = twoVarModel();
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 12.0, 1e-8); // x=4, y=0.
  EXPECT_NEAR(S.Values[0], 4.0, 1e-8);
  EXPECT_NEAR(S.Values[1], 0.0, 1e-8);
  EXPECT_LE(M.maxViolation(S.Values), 1e-8);
}

TEST(Simplex, Minimization) {
  // min x + 2y  s.t.  x + y >= 3, y >= 1.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 2.0);
  M.setMaximize(false);
  M.addRow("r1", RowKind::GE, 3.0, {{X, 1.0}, {Y, 1.0}});
  M.addRow("r2", RowKind::GE, 1.0, {{Y, 1.0}});
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 4.0, 1e-8); // x=2, y=1.
  EXPECT_NEAR(S.Values[0], 2.0, 1e-8);
  EXPECT_NEAR(S.Values[1], 1.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  // max x  s.t.  x - 2y == 0, x + y <= 9  ->  x=6, y=3.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 0.0);
  M.addRow("def", RowKind::EQ, 0.0, {{X, 1.0}, {Y, -2.0}});
  M.addRow("cap", RowKind::LE, 9.0, {{X, 1.0}, {Y, 1.0}});
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[0], 6.0, 1e-8);
  EXPECT_NEAR(S.Values[1], 3.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("ge", RowKind::GE, 5.0, {{X, 1.0}});
  M.addRow("le", RowKind::LE, 3.0, {{X, 1.0}});
  EXPECT_EQ(solveSimplex(M).Status, SolveStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("ge", RowKind::GE, 1.0, {{X, 1.0}});
  EXPECT_EQ(solveSimplex(M).Status, SolveStatus::Unbounded);
}

TEST(Simplex, LowerBoundsShifted) {
  // max -x - y with x >= 2, y >= 3, x + y >= 6  ->  obj -6 at (2,4)/(3,3).
  Model M;
  VarId X = M.addVar("x", 2.0, Infinity, -1.0);
  VarId Y = M.addVar("y", 3.0, Infinity, -1.0);
  M.addRow("sum", RowKind::GE, 6.0, {{X, 1.0}, {Y, 1.0}});
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, -6.0, 1e-8);
  EXPECT_GE(S.Values[0], 2.0 - 1e-9);
  EXPECT_GE(S.Values[1], 3.0 - 1e-9);
}

TEST(Simplex, UpperBoundsBecomeRows) {
  // max x + y with x <= 2.5, y <= 1.5 (variable bounds only).
  Model M;
  M.addVar("x", 0.0, 2.5, 1.0);
  M.addVar("y", 0.0, 1.5, 1.0);
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 4.0, 1e-8);
}

TEST(Simplex, FreeVariable) {
  // max x - y, y free, x <= 5, x - y <= 2  ->  x=5, y=3, obj 2.
  Model M;
  VarId X = M.addVar("x", 0.0, 5.0, 1.0);
  VarId Y = M.addVar("y", -Infinity, Infinity, -1.0);
  M.addRow("gap", RowKind::LE, 2.0, {{X, 1.0}, {Y, -1.0}});
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  // Every point with y = x - 2 is optimal (objective 2); the solver may
  // pick any of them, including ones with negative y.
  EXPECT_NEAR(S.Objective, 2.0, 1e-8);
  EXPECT_LE(M.maxViolation(S.Values), 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y >= 0: y >= x + 1.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, 3.0, 0.0);
  M.addRow("r", RowKind::LE, -1.0, {{X, 1.0}, {Y, -1.0}});
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.0, 1e-8); // x = y - 1 = 2 at y = 3.
}

TEST(Simplex, DegenerateBealeStyleTerminates) {
  // A classically degenerate LP; the stall watchdog must switch to Bland's
  // rule and terminate.
  Model M;
  VarId X1 = M.addVar("x1", 0.0, Infinity, 0.75);
  VarId X2 = M.addVar("x2", 0.0, Infinity, -150.0);
  VarId X3 = M.addVar("x3", 0.0, Infinity, 0.02);
  VarId X4 = M.addVar("x4", 0.0, Infinity, -6.0);
  M.addRow("r1", RowKind::LE, 0.0,
           {{X1, 0.25}, {X2, -60.0}, {X3, -0.04}, {X4, 9.0}});
  M.addRow("r2", RowKind::LE, 0.0,
           {{X1, 0.5}, {X2, -90.0}, {X3, -0.02}, {X4, 3.0}});
  M.addRow("r3", RowKind::LE, 1.0, {{X3, 1.0}});
  SolveOptions Opts;
  Opts.MaxIterations = 100000;
  Solution S = solveSimplex(M, Opts);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.05, 1e-8);
}

TEST(Simplex, IterationLimitReported) {
  Model M = twoVarModel();
  SolveOptions Opts;
  Opts.MaxIterations = 1;
  Solution S = solveSimplex(M, Opts);
  EXPECT_TRUE(S.Status == SolveStatus::IterationLimit ||
              S.Status == SolveStatus::Optimal);
}

TEST(Simplex, MemoryBudgetEnforced) {
  Model M = twoVarModel();
  SolveOptions Opts;
  Opts.MaxTableauBytes = 16;
  EXPECT_EQ(solveSimplex(M, Opts).Status, SolveStatus::TooLarge);
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  Model M;
  M.addVar("x", 0.0, Infinity, -1.0); // max -x -> x = 0.
  Solution S = solveSimplex(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.0, 1e-9);
}

TEST(Model, ViolationAndObjectiveHelpers) {
  Model M = twoVarModel();
  std::vector<double> Good{1.0, 1.0};
  EXPECT_NEAR(M.objectiveValue(Good), 5.0, 1e-12);
  EXPECT_LE(M.maxViolation(Good), 0.0 + 1e-12);
  std::vector<double> Bad{5.0, 0.0};
  EXPECT_NEAR(M.maxViolation(Bad), 1.0, 1e-12);
  EXPECT_FALSE(M.str().empty());
}

TEST(Model, StatusNames) {
  EXPECT_STREQ(solveStatusName(SolveStatus::Optimal), "optimal");
  EXPECT_STREQ(solveStatusName(SolveStatus::Infeasible), "infeasible");
  EXPECT_STREQ(solveStatusName(SolveStatus::Unbounded), "unbounded");
  EXPECT_STREQ(solveStatusName(SolveStatus::TooLarge), "too-large");
}
