//===- BranchAndBoundTest.cpp - ILP branch-and-bound tests ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::lp;

TEST(BranchAndBound, KnapsackStyle) {
  // max 5x + 4y  s.t.  6x + 5y <= 10, x,y >= 0 integer.
  // LP relaxation: x = 5/3; ILP optimum: y = 2 (obj 8).
  Model M;
  M.addVar("x", 0.0, Infinity, 5.0);
  M.addVar("y", 0.0, Infinity, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 1.0}, {1, 5.0}});
  M.row(0).Terms[0].Coef = 6.0;
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_TRUE(S.HasIncumbent);
  EXPECT_NEAR(S.Objective, 8.0, 1e-6);
  EXPECT_NEAR(S.Values[0], 0.0, 1e-9);
  EXPECT_NEAR(S.Values[1], 2.0, 1e-9);
}

TEST(BranchAndBound, AlreadyIntegralRelaxation) {
  Model M;
  M.addVar("x", 0.0, 3.0, 1.0);
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-9);
  EXPECT_EQ(S.Nodes, 1);
}

TEST(BranchAndBound, InfeasibleIsProven) {
  Model M;
  M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("ge", RowKind::GE, 5.0, {{0, 1.0}});
  M.addRow("le", RowKind::LE, 3.0, {{0, 1.0}});
  IntSolution S = solveInteger(M, {});
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
  EXPECT_FALSE(S.HasIncumbent);
}

TEST(BranchAndBound, FractionalOnlyFeasibility) {
  // 2x == 1 forces x = 0.5: LP feasible, ILP infeasible.
  Model M;
  M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("eq", RowKind::EQ, 1.0, {{0, 2.0}});
  IntSolution S = solveInteger(M, {});
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, MixedIntegerMask) {
  // y continuous, x integer: max x + y, x + y <= 2.5, x <= 1.7.
  Model M;
  M.addVar("x", 0.0, 1.7, 1.0);
  M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("cap", RowKind::LE, 2.5, {{0, 1.0}, {1, 1.0}});
  IntSolution S = solveInteger(M, {true, false});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.5, 1e-6);
  EXPECT_NEAR(S.Values[0], std::round(S.Values[0]), 1e-9);
}

TEST(BranchAndBound, MinimizationDirection) {
  // min 3x + 2y  s.t.  x + y >= 2.5, integers -> (0,3) or (1,2): obj 6 vs 7.
  Model M;
  M.setMaximize(false);
  M.addVar("x", 0.0, Infinity, 3.0);
  M.addVar("y", 0.0, Infinity, 2.0);
  M.addRow("ge", RowKind::GE, 2.5, {{0, 1.0}, {1, 1.0}});
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 6.0, 1e-6);
}

TEST(BranchAndBound, NodeBudgetReportsTimeLimit) {
  // A problem needing branching, with a 1-node budget. Cuts are disabled:
  // the root GMI cuts close this knapsack before any node is spent.
  Model M;
  M.addVar("x", 0.0, Infinity, 5.0);
  M.addVar("y", 0.0, Infinity, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});
  IntOptions Opts;
  Opts.MaxNodes = 1;
  Opts.CutRounds = 0;
  IntSolution S = solveInteger(M, {}, Opts);
  EXPECT_EQ(S.Status, SolveStatus::TimeLimit);
}

// Property sweep: B&B must match exhaustive search on small integer boxes.
class BnBRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BnBRandomTest, MatchesExhaustiveSearch) {
  SplitMix64 Rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  for (int Case = 0; Case < 25; ++Case) {
    int N = static_cast<int>(Rng.nextInRange(2, 3));
    Model M;
    M.setMaximize(true);
    std::vector<std::int64_t> Hi(N);
    for (int I = 0; I < N; ++I) {
      Hi[I] = Rng.nextInRange(1, 4);
      M.addVar("x" + std::to_string(I), 0.0, static_cast<double>(Hi[I]),
               static_cast<double>(Rng.nextInRange(-3, 4)));
    }
    int R = static_cast<int>(Rng.nextInRange(1, 3));
    for (int I = 0; I < R; ++I) {
      std::vector<Term> Terms;
      for (int V = 0; V < N; ++V) {
        double C = static_cast<double>(Rng.nextInRange(-2, 3));
        if (C != 0.0)
          Terms.push_back(Term{V, C});
      }
      if (Terms.empty())
        continue;
      M.addRow("r" + std::to_string(I),
               Rng.nextInRange(0, 1) ? RowKind::LE : RowKind::GE,
               static_cast<double>(Rng.nextInRange(-4, 8)),
               std::move(Terms));
    }

    // Exhaustive search over the integer box.
    std::optional<double> Best;
    std::vector<double> Point(N, 0.0);
    auto Enumerate = [&](auto &&Self, int V) -> void {
      if (V == N) {
        if (M.maxViolation(Point) <= 1e-9) {
          double Obj = M.objectiveValue(Point);
          if (!Best || Obj > *Best)
            Best = Obj;
        }
        return;
      }
      for (std::int64_t X = 0; X <= Hi[V]; ++X) {
        Point[V] = static_cast<double>(X);
        Self(Self, V + 1);
      }
    };
    Enumerate(Enumerate, 0);

    IntSolution S = solveInteger(M, {});
    if (Best) {
      ASSERT_EQ(S.Status, SolveStatus::Optimal) << M.str();
      EXPECT_NEAR(S.Objective, *Best, 1e-6) << M.str();
      EXPECT_LE(M.maxViolation(S.Values), 1e-6);
    } else {
      EXPECT_EQ(S.Status, SolveStatus::Infeasible) << M.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnBRandomTest, ::testing::Range(0, 6));

// Engine-equivalence sweep: the warm bound-delta engine and the legacy
// dense-copy engine are interchangeable oracles for each other.
class BnBEngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BnBEngineEquivalenceTest, WarmMatchesDenseOnRandomModels) {
  SplitMix64 Rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
  for (int Case = 0; Case < 20; ++Case) {
    int N = static_cast<int>(Rng.nextInRange(2, 4));
    Model M;
    M.setMaximize(Rng.nextInRange(0, 1) == 1);
    for (int I = 0; I < N; ++I)
      M.addVar("x" + std::to_string(I), 0.0,
               static_cast<double>(Rng.nextInRange(1, 5)),
               static_cast<double>(Rng.nextInRange(-3, 4)));
    int R = static_cast<int>(Rng.nextInRange(1, 3));
    for (int I = 0; I < R; ++I) {
      std::vector<Term> Terms;
      for (int V = 0; V < N; ++V) {
        double C = static_cast<double>(Rng.nextInRange(-2, 3));
        if (C != 0.0)
          Terms.push_back(Term{V, C});
      }
      if (Terms.empty())
        continue;
      M.addRow("r" + std::to_string(I),
               Rng.nextInRange(0, 1) ? RowKind::LE : RowKind::GE,
               static_cast<double>(Rng.nextInRange(-4, 8)),
               std::move(Terms));
    }

    IntOptions WarmOpts;
    WarmOpts.Engine = IntEngine::Warm;
    IntOptions DenseOpts;
    DenseOpts.Engine = IntEngine::Dense;
    IntSolution W = solveInteger(M, {}, WarmOpts);
    IntSolution D = solveInteger(M, {}, DenseOpts);

    ASSERT_EQ(W.Status, D.Status) << M.str();
    if (W.Status == SolveStatus::Optimal) {
      EXPECT_NEAR(W.Objective, D.Objective, 1e-6) << M.str();
      EXPECT_LE(M.maxViolation(W.Values), 1e-6) << M.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnBEngineEquivalenceTest,
                         ::testing::Range(0, 4));

TEST(BranchAndBound, ParallelMatchesSerialObjective) {
  // A model with enough branching to occupy several workers; the parallel
  // search may explore a different tree but must return the same optimum.
  Model M;
  M.setMaximize(true);
  const int N = 6;
  for (int I = 0; I < N; ++I)
    M.addVar("x" + std::to_string(I), 0.0, 7.0,
             static_cast<double>(3 + (I * 5) % 7));
  M.addRow("cap1", RowKind::LE, 19.0,
           {{0, 2.0}, {1, 3.0}, {2, 1.0}, {3, 4.0}});
  M.addRow("cap2", RowKind::LE, 17.0,
           {{2, 3.0}, {3, 1.0}, {4, 2.0}, {5, 5.0}});
  M.addRow("mix", RowKind::GE, 4.0, {{0, 1.0}, {4, 1.0}, {5, 1.0}});

  IntOptions Serial;
  Serial.Threads = 1;
  IntOptions Parallel;
  Parallel.Threads = 4;
  IntSolution S1 = solveInteger(M, {}, Serial);
  IntSolution S4 = solveInteger(M, {}, Parallel);

  ASSERT_EQ(S1.Status, SolveStatus::Optimal);
  ASSERT_EQ(S4.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S1.Objective, S4.Objective, 1e-9);
  // Deterministic incumbent: the lexicographic tie-break makes the values
  // themselves reproducible, not just the objective.
  ASSERT_EQ(S1.Values.size(), S4.Values.size());
  for (size_t I = 0; I < S1.Values.size(); ++I)
    EXPECT_NEAR(S1.Values[I], S4.Values[I], 1e-9) << "var " << I;
}

TEST(BranchAndBound, ReportsLpPivotTelemetry) {
  // Cuts off so the tree search actually runs: node telemetry is what is
  // under test, and root cuts would close this knapsack at node zero.
  Model M;
  M.addVar("x", 0.0, Infinity, 5.0);
  M.addVar("y", 0.0, Infinity, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});
  IntOptions Opts;
  Opts.CutRounds = 0;
  IntSolution S = solveInteger(M, {}, Opts);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_GT(S.Nodes, 1);
  EXPECT_GT(S.LpPivots, 0);
  EXPECT_GE(S.Seconds, 0.0);
}
