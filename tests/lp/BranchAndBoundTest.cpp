//===- BranchAndBoundTest.cpp - ILP branch-and-bound tests ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace aqua;
using namespace aqua::lp;

TEST(BranchAndBound, KnapsackStyle) {
  // max 5x + 4y  s.t.  6x + 5y <= 10, x,y >= 0 integer.
  // LP relaxation: x = 5/3; ILP optimum: y = 2 (obj 8).
  Model M;
  M.addVar("x", 0.0, Infinity, 5.0);
  M.addVar("y", 0.0, Infinity, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 1.0}, {1, 5.0}});
  M.row(0).Terms[0].Coef = 6.0;
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_TRUE(S.HasIncumbent);
  EXPECT_NEAR(S.Objective, 8.0, 1e-6);
  EXPECT_NEAR(S.Values[0], 0.0, 1e-9);
  EXPECT_NEAR(S.Values[1], 2.0, 1e-9);
}

TEST(BranchAndBound, AlreadyIntegralRelaxation) {
  Model M;
  M.addVar("x", 0.0, 3.0, 1.0);
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 3.0, 1e-9);
  EXPECT_EQ(S.Nodes, 1);
}

TEST(BranchAndBound, InfeasibleIsProven) {
  Model M;
  M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("ge", RowKind::GE, 5.0, {{0, 1.0}});
  M.addRow("le", RowKind::LE, 3.0, {{0, 1.0}});
  IntSolution S = solveInteger(M, {});
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
  EXPECT_FALSE(S.HasIncumbent);
}

TEST(BranchAndBound, FractionalOnlyFeasibility) {
  // 2x == 1 forces x = 0.5: LP feasible, ILP infeasible.
  Model M;
  M.addVar("x", 0.0, Infinity, 1.0);
  M.addRow("eq", RowKind::EQ, 1.0, {{0, 2.0}});
  IntSolution S = solveInteger(M, {});
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, MixedIntegerMask) {
  // y continuous, x integer: max x + y, x + y <= 2.5, x <= 1.7.
  Model M;
  M.addVar("x", 0.0, 1.7, 1.0);
  M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("cap", RowKind::LE, 2.5, {{0, 1.0}, {1, 1.0}});
  IntSolution S = solveInteger(M, {true, false});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.5, 1e-6);
  EXPECT_NEAR(S.Values[0], std::round(S.Values[0]), 1e-9);
}

TEST(BranchAndBound, MinimizationDirection) {
  // min 3x + 2y  s.t.  x + y >= 2.5, integers -> (0,3) or (1,2): obj 6 vs 7.
  Model M;
  M.setMaximize(false);
  M.addVar("x", 0.0, Infinity, 3.0);
  M.addVar("y", 0.0, Infinity, 2.0);
  M.addRow("ge", RowKind::GE, 2.5, {{0, 1.0}, {1, 1.0}});
  IntSolution S = solveInteger(M, {});
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 6.0, 1e-6);
}

TEST(BranchAndBound, NodeBudgetReportsTimeLimit) {
  // A problem needing branching, with a 1-node budget.
  Model M;
  M.addVar("x", 0.0, Infinity, 5.0);
  M.addVar("y", 0.0, Infinity, 4.0);
  M.addRow("cap", RowKind::LE, 10.0, {{0, 6.0}, {1, 5.0}});
  IntOptions Opts;
  Opts.MaxNodes = 1;
  IntSolution S = solveInteger(M, {}, Opts);
  EXPECT_EQ(S.Status, SolveStatus::TimeLimit);
}

// Property sweep: B&B must match exhaustive search on small integer boxes.
class BnBRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BnBRandomTest, MatchesExhaustiveSearch) {
  SplitMix64 Rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  for (int Case = 0; Case < 25; ++Case) {
    int N = static_cast<int>(Rng.nextInRange(2, 3));
    Model M;
    M.setMaximize(true);
    std::vector<std::int64_t> Hi(N);
    for (int I = 0; I < N; ++I) {
      Hi[I] = Rng.nextInRange(1, 4);
      M.addVar("x" + std::to_string(I), 0.0, static_cast<double>(Hi[I]),
               static_cast<double>(Rng.nextInRange(-3, 4)));
    }
    int R = static_cast<int>(Rng.nextInRange(1, 3));
    for (int I = 0; I < R; ++I) {
      std::vector<Term> Terms;
      for (int V = 0; V < N; ++V) {
        double C = static_cast<double>(Rng.nextInRange(-2, 3));
        if (C != 0.0)
          Terms.push_back(Term{V, C});
      }
      if (Terms.empty())
        continue;
      M.addRow("r" + std::to_string(I),
               Rng.nextInRange(0, 1) ? RowKind::LE : RowKind::GE,
               static_cast<double>(Rng.nextInRange(-4, 8)),
               std::move(Terms));
    }

    // Exhaustive search over the integer box.
    std::optional<double> Best;
    std::vector<double> Point(N, 0.0);
    auto Enumerate = [&](auto &&Self, int V) -> void {
      if (V == N) {
        if (M.maxViolation(Point) <= 1e-9) {
          double Obj = M.objectiveValue(Point);
          if (!Best || Obj > *Best)
            Best = Obj;
        }
        return;
      }
      for (std::int64_t X = 0; X <= Hi[V]; ++X) {
        Point[V] = static_cast<double>(X);
        Self(Self, V + 1);
      }
    };
    Enumerate(Enumerate, 0);

    IntSolution S = solveInteger(M, {});
    if (Best) {
      ASSERT_EQ(S.Status, SolveStatus::Optimal) << M.str();
      EXPECT_NEAR(S.Objective, *Best, 1e-6) << M.str();
      EXPECT_LE(M.maxViolation(S.Values), 1e-6);
    } else {
      EXPECT_EQ(S.Status, SolveStatus::Infeasible) << M.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnBRandomTest, ::testing::Range(0, 6));
