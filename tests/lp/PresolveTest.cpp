//===- PresolveTest.cpp - Equality-substitution presolve tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Presolve.h"
#include "aqua/lp/Solver.h"

#include <gtest/gtest.h>

using namespace aqua::lp;

TEST(Presolve, EliminatesTwoTermEquality) {
  // max x + y  s.t.  x - 2y == 0, x + y <= 9, x >= 1.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("def", RowKind::EQ, 0.0, {{X, 1.0}, {Y, -2.0}});
  M.addRow("cap", RowKind::LE, 9.0, {{X, 1.0}, {Y, 1.0}});

  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_EQ(P.stats().VarsEliminated, 1);
  EXPECT_EQ(P.stats().RowsEliminated, 1);
  EXPECT_EQ(P.reduced().numVars(), 1);
  EXPECT_EQ(P.reduced().numRows(), 1);
  // x's lower bound of 1 must fold onto y: x = 2y >= 1 -> y >= 0.5.
  EXPECT_NEAR(P.reduced().var(0).Lower, 0.5, 1e-12);

  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 9.0, 1e-8); // x=6, y=3.
  EXPECT_NEAR(S.Values[X], 6.0, 1e-8);
  EXPECT_NEAR(S.Values[Y], 3.0, 1e-8);
}

TEST(Presolve, EliminatesSingletonEquality) {
  // 3x == 6 fixes x = 2.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  M.addVar("y", 0.0, 5.0, 1.0);
  M.addRow("fix", RowKind::EQ, 6.0, {{X, 3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 1);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-9);
  EXPECT_NEAR(S.Objective, 7.0, 1e-8);
}

TEST(Presolve, SingletonOutOfBoundsIsInfeasible) {
  Model M;
  VarId X = M.addVar("x", 0.0, 1.0, 1.0);
  M.addRow("fix", RowKind::EQ, 6.0, {{X, 3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_TRUE(P.provenInfeasible());
  EXPECT_EQ(solve(M).Status, SolveStatus::Infeasible);
}

TEST(Presolve, EliminatesDefinitionRow) {
  // z == 0.5x + 0.5y with z unbounded above and z >= 0 provable.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity, 0.0);
  VarId Y = M.addVar("y", 1.0, Infinity, 0.0);
  VarId Z = M.addVar("z", 0.0, Infinity, 1.0);
  M.addRow("def", RowKind::EQ, 0.0,
           {{Z, 1.0}, {X, -0.5}, {Y, -0.5}});
  M.addRow("cap", RowKind::LE, 10.0, {{X, 1.0}, {Y, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_GE(P.stats().VarsEliminated, 1);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 5.0, 1e-8);
  EXPECT_NEAR(S.Values[Z], 5.0, 1e-8);
  EXPECT_LE(M.maxViolation(S.Values), 1e-8);
}

TEST(Presolve, ChainsOfDefinitions) {
  // a == 2b, b == 3c: both eliminated; max a with c <= 1 -> a = 6.
  Model M;
  VarId A = M.addVar("a", 0.0, Infinity, 1.0);
  VarId B = M.addVar("b", 0.0, Infinity, 0.0);
  VarId C = M.addVar("c", 0.0, 1.0, 0.0);
  M.addRow("d1", RowKind::EQ, 0.0, {{A, 1.0}, {B, -2.0}});
  M.addRow("d2", RowKind::EQ, 0.0, {{B, 1.0}, {C, -3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 2);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[A], 6.0, 1e-8);
  EXPECT_NEAR(S.Values[B], 3.0, 1e-8);
  EXPECT_NEAR(S.Values[C], 1.0, 1e-8);
}

TEST(Presolve, EmptyEqualityConsistency) {
  Model M;
  VarId X = M.addVar("x", 0.0, 4.0, 1.0);
  // x - x == 1 reduces to 0 == 1: infeasible.
  M.addRow("bad", RowKind::EQ, 1.0, {{X, 1.0}, {X, -1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_TRUE(P.provenInfeasible());
}

TEST(Presolve, KeepsInequalitiesIntact) {
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("r", RowKind::LE, 3.0, {{X, 1.0}, {Y, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 0);
  EXPECT_EQ(P.reduced().numRows(), 1);
}
