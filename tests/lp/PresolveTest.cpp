//===- PresolveTest.cpp - Equality-substitution presolve tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Presolve.h"
#include "aqua/lp/Solver.h"

#include <gtest/gtest.h>

using namespace aqua::lp;

TEST(Presolve, EliminatesTwoTermEquality) {
  // max x + y  s.t.  x - 2y == 0, x + y <= 9, x >= 1.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("def", RowKind::EQ, 0.0, {{X, 1.0}, {Y, -2.0}});
  M.addRow("cap", RowKind::LE, 9.0, {{X, 1.0}, {Y, 1.0}});

  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_EQ(P.stats().VarsEliminated, 1);
  // The substitution turns "cap" into a singleton row, which the
  // singleton-row rule then folds into y's upper bound: both rows go.
  EXPECT_EQ(P.stats().RowsEliminated, 2);
  EXPECT_EQ(P.stats().SingletonRowsRemoved, 1);
  EXPECT_EQ(P.reduced().numVars(), 1);
  EXPECT_EQ(P.reduced().numRows(), 0);
  // x's lower bound of 1 must fold onto y: x = 2y >= 1 -> y >= 0.5; the
  // cap row 3y <= 9 becomes y <= 3.
  EXPECT_NEAR(P.reduced().var(0).Lower, 0.5, 1e-12);
  EXPECT_NEAR(P.reduced().var(0).Upper, 3.0, 1e-12);

  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 9.0, 1e-8); // x=6, y=3.
  EXPECT_NEAR(S.Values[X], 6.0, 1e-8);
  EXPECT_NEAR(S.Values[Y], 3.0, 1e-8);
}

TEST(Presolve, EliminatesSingletonEquality) {
  // 3x == 6 fixes x = 2.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  M.addVar("y", 0.0, 5.0, 1.0);
  M.addRow("fix", RowKind::EQ, 6.0, {{X, 3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 1);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-9);
  EXPECT_NEAR(S.Objective, 7.0, 1e-8);
}

TEST(Presolve, SingletonOutOfBoundsIsInfeasible) {
  Model M;
  VarId X = M.addVar("x", 0.0, 1.0, 1.0);
  M.addRow("fix", RowKind::EQ, 6.0, {{X, 3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_TRUE(P.provenInfeasible());
  EXPECT_EQ(solve(M).Status, SolveStatus::Infeasible);
}

TEST(Presolve, EliminatesDefinitionRow) {
  // z == 0.5x + 0.5y with z unbounded above and z >= 0 provable.
  Model M;
  VarId X = M.addVar("x", 1.0, Infinity, 0.0);
  VarId Y = M.addVar("y", 1.0, Infinity, 0.0);
  VarId Z = M.addVar("z", 0.0, Infinity, 1.0);
  M.addRow("def", RowKind::EQ, 0.0,
           {{Z, 1.0}, {X, -0.5}, {Y, -0.5}});
  M.addRow("cap", RowKind::LE, 10.0, {{X, 1.0}, {Y, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_GE(P.stats().VarsEliminated, 1);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 5.0, 1e-8);
  EXPECT_NEAR(S.Values[Z], 5.0, 1e-8);
  EXPECT_LE(M.maxViolation(S.Values), 1e-8);
}

TEST(Presolve, ChainsOfDefinitions) {
  // a == 2b, b == 3c: both eliminated; max a with c <= 1 -> a = 6.
  Model M;
  VarId A = M.addVar("a", 0.0, Infinity, 1.0);
  VarId B = M.addVar("b", 0.0, Infinity, 0.0);
  VarId C = M.addVar("c", 0.0, 1.0, 0.0);
  M.addRow("d1", RowKind::EQ, 0.0, {{A, 1.0}, {B, -2.0}});
  M.addRow("d2", RowKind::EQ, 0.0, {{B, 1.0}, {C, -3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 2);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[A], 6.0, 1e-8);
  EXPECT_NEAR(S.Values[B], 3.0, 1e-8);
  EXPECT_NEAR(S.Values[C], 1.0, 1e-8);
}

TEST(Presolve, EmptyEqualityConsistency) {
  Model M;
  VarId X = M.addVar("x", 0.0, 4.0, 1.0);
  // x - x == 1 reduces to 0 == 1: infeasible.
  M.addRow("bad", RowKind::EQ, 1.0, {{X, 1.0}, {X, -1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_TRUE(P.provenInfeasible());
}

TEST(Presolve, KeepsInequalitiesIntact) {
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("r", RowKind::LE, 3.0, {{X, 1.0}, {Y, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_EQ(P.stats().VarsEliminated, 0);
  EXPECT_EQ(P.reduced().numRows(), 1);
}

TEST(Presolve, SingletonRowFoldsBound) {
  // 2x <= 8 is a singleton LE row: folds to x <= 4 and the row goes.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  M.addVar("y", 0.0, 5.0, 1.0);
  M.addRow("cap", RowKind::LE, 8.0, {{X, 2.0}});
  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_EQ(P.stats().SingletonRowsRemoved, 1);
  EXPECT_EQ(P.stats().BoundsTightened, 1);
  EXPECT_EQ(P.reduced().numRows(), 0);
  EXPECT_NEAR(P.reduced().var(X).Upper, 4.0, 1e-12);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 9.0, 1e-8); // x=4, y=5.
}

TEST(Presolve, SingletonRowNegativeCoefficient) {
  // -3x <= -6 means x >= 2 (the sign flips which bound tightens).
  Model M;
  VarId X = M.addVar("x", 0.0, 10.0, -1.0); // minimize-x flavor via max.
  M.addRow("floor", RowKind::LE, -6.0, {{X, -3.0}});
  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_NEAR(P.reduced().var(X).Lower, 2.0, 1e-12);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-9);
}

TEST(Presolve, CrossedBoundsFromSingletonRowsInfeasible) {
  // x <= 1 and x >= 3 via singleton rows cross: provably infeasible.
  Model M;
  VarId X = M.addVar("x", 0.0, 10.0, 1.0);
  M.addRow("hi", RowKind::LE, 1.0, {{X, 1.0}});
  M.addRow("lo", RowKind::GE, 3.0, {{X, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_TRUE(P.provenInfeasible());
  EXPECT_EQ(solve(M).Status, SolveStatus::Infeasible);
}

TEST(Presolve, EmptyRowConsistencyAndInfeasibility) {
  // x - x <= -1 reduces to 0 <= -1: infeasible. 0 <= 1 is fine.
  Model Ok;
  VarId A = Ok.addVar("a", 0.0, 4.0, 1.0);
  Ok.addRow("fine", RowKind::LE, 1.0, {{A, 1.0}, {A, -1.0}});
  Presolved POk = Presolved::run(Ok);
  EXPECT_FALSE(POk.provenInfeasible());
  EXPECT_EQ(POk.stats().EmptyRowsRemoved, 1);
  EXPECT_EQ(POk.reduced().numRows(), 0);

  Model Bad;
  VarId B = Bad.addVar("b", 0.0, 4.0, 1.0);
  Bad.addRow("bad", RowKind::LE, -1.0, {{B, 1.0}, {B, -1.0}});
  Presolved PBad = Presolved::run(Bad);
  EXPECT_TRUE(PBad.provenInfeasible());
  EXPECT_EQ(solve(Bad).Status, SolveStatus::Infeasible);
}

TEST(Presolve, DuplicateRowsMerged) {
  // x + y <= 9 and 2x + 2y <= 12 are proportional; the tighter (x+y <= 6)
  // survives as a single row.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("r1", RowKind::LE, 9.0, {{X, 1.0}, {Y, 1.0}});
  M.addRow("r2", RowKind::LE, 12.0, {{X, 2.0}, {Y, 2.0}});
  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_EQ(P.stats().DuplicateRowsRemoved, 1);
  EXPECT_EQ(P.reduced().numRows(), 1);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 6.0, 1e-8);
}

TEST(Presolve, ImpliedFreeColumnSingletonEliminated) {
  // w appears only in the equality w + x + y == 10; with x,y in [0,4]
  // the implied range [2,10] fits w's declared [0,20], so w and the row
  // both go, and w's objective weight shifts onto x and y.
  Model M;
  VarId W = M.addVar("w", 0.0, 20.0, 2.0);
  VarId X = M.addVar("x", 0.0, 4.0, 1.0);
  VarId Y = M.addVar("y", 0.0, 4.0, 1.0);
  M.addRow("bal", RowKind::EQ, 10.0, {{W, 1.0}, {X, 1.0}, {Y, 1.0}});
  Presolved P = Presolved::run(M);
  EXPECT_FALSE(P.provenInfeasible());
  EXPECT_EQ(P.stats().SingletonColsEliminated, 1);
  EXPECT_EQ(P.reduced().numRows(), 0);
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  // max 2w + x + y with w = 10 - x - y: objective = 20 - x - y -> x=y=0.
  EXPECT_NEAR(S.Objective, 20.0, 1e-8);
  EXPECT_NEAR(S.Values[W], 10.0, 1e-8);
  EXPECT_LE(M.maxViolation(S.Values), 1e-9);
}

TEST(Presolve, PostsolveRoundTripIsExact) {
  // A model exercising every rule at once: the postsolved full solution
  // must satisfy the original rows exactly (within solver tolerance) and
  // reproduce the eliminated variables from the kept ones.
  Model M;
  VarId A = M.addVar("a", 0.0, Infinity, 1.0);  // defined: a = 2b
  VarId B = M.addVar("b", 0.0, Infinity, 0.0);
  VarId C = M.addVar("c", 0.0, 9.0, 1.0);      // singleton-capped
  VarId D = M.addVar("d", 0.0, 50.0, 1.0);     // implied-free singleton
  M.addRow("def", RowKind::EQ, 0.0, {{A, 1.0}, {B, -2.0}});
  M.addRow("cap", RowKind::LE, 12.0, {{C, 3.0}});
  M.addRow("dup1", RowKind::LE, 10.0, {{B, 1.0}, {C, 1.0}});
  M.addRow("dup2", RowKind::LE, 24.0, {{B, 2.0}, {C, 2.0}});
  M.addRow("bal", RowKind::EQ, 6.0, {{D, 1.0}, {B, 1.0}});
  M.addRow("noop", RowKind::GE, -1.0, {{A, 1.0}, {A, -1.0}});
  Presolved P = Presolved::run(M);
  ASSERT_FALSE(P.provenInfeasible());
  Solution S = solve(M);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_LE(M.maxViolation(S.Values), 1e-8);
  EXPECT_NEAR(S.Values[A], 2.0 * S.Values[B], 1e-9);
  EXPECT_NEAR(S.Values[D], 6.0 - S.Values[B], 1e-9);
}

TEST(Presolve, StatsAreMonotoneNonNegative) {
  // Every counter is non-negative and RowsEliminated covers the breakdown.
  Model M;
  VarId X = M.addVar("x", 0.0, Infinity, 1.0);
  VarId Y = M.addVar("y", 0.0, Infinity, 1.0);
  M.addRow("def", RowKind::EQ, 0.0, {{X, 1.0}, {Y, -2.0}});
  M.addRow("cap", RowKind::LE, 8.0, {{X, 2.0}});
  M.addRow("dup", RowKind::LE, 16.0, {{X, 4.0}});
  Presolved P = Presolved::run(M);
  const PresolveStats &St = P.stats();
  EXPECT_GE(St.VarsEliminated, 0);
  EXPECT_GE(St.RowsEliminated, 0);
  EXPECT_GE(St.SingletonRowsRemoved, 0);
  EXPECT_GE(St.SingletonColsEliminated, 0);
  EXPECT_GE(St.EmptyRowsRemoved, 0);
  EXPECT_GE(St.DuplicateRowsRemoved, 0);
  EXPECT_GE(St.BoundsTightened, 0);
  EXPECT_GE(St.RowsEliminated,
            St.SingletonRowsRemoved + St.EmptyRowsRemoved +
                St.DuplicateRowsRemoved);
}
