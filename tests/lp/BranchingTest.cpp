//===- BranchingTest.cpp - Branching-layer unit tests --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pure-logic branching pieces: branch-variable selection and the
// bound-delta path representation branch-and-bound nodes carry instead of
// Model copies.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Branching.h"
#include "aqua/support/Random.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::lp;

TEST(PickBranchVar, AllIntegralReturnsMinusOne) {
  std::vector<double> Values = {1.0, 2.0, -3.0, 0.0};
  std::vector<bool> IsInteger = {true, true, true, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), -1);
}

TEST(PickBranchVar, NearIntegralWithinTolReturnsMinusOne) {
  // Each value is within Tol of an integer, on both sides.
  std::vector<double> Values = {2.0 + 5e-7, 3.0 - 5e-7};
  std::vector<bool> IsInteger = {true, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), -1);
}

TEST(PickBranchVar, MostFractionalWins) {
  std::vector<double> Values = {1.1, 2.5, 3.9};
  std::vector<bool> IsInteger = {true, true, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), 1);
}

TEST(PickBranchVar, TiesBreakTowardLowestIndex) {
  // 1.5 and 7.5 are equally fractional; the first must win.
  std::vector<double> Values = {2.0, 1.5, 7.5};
  std::vector<bool> IsInteger = {true, true, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), 1);
}

TEST(PickBranchVar, DistanceExactlyTolIsNotSelected) {
  // Selection requires Dist strictly greater than Tol: a variable sitting
  // exactly Tol away from an integer counts as integral.
  const double Tol = 0.25;
  std::vector<double> Values = {4.25};
  std::vector<bool> IsInteger = {true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, Tol), -1);
  // Nudge past the tolerance and it becomes branchable.
  Values[0] = 4.26;
  EXPECT_EQ(pickBranchVar(Values, IsInteger, Tol), 0);
}

TEST(PickBranchVar, ContinuousColumnsAreIgnored) {
  std::vector<double> Values = {0.5, 0.4};
  std::vector<bool> IsInteger = {false, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), 1);
  IsInteger[1] = false;
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), -1);
}

TEST(PickBranchVar, NegativeValuesUseFractionalPart) {
  // -2.5 has fractional distance 0.5, the maximum.
  std::vector<double> Values = {-2.1, -2.5};
  std::vector<bool> IsInteger = {true, true};
  EXPECT_EQ(pickBranchVar(Values, IsInteger, 1e-6), 1);
}

TEST(BoundPath, ApplyWritesTighterBounds) {
  std::vector<double> Lower = {0.0, 0.0, 0.0};
  std::vector<double> Upper = {10.0, 10.0, 10.0};
  std::vector<BoundChange> Path = {
      {0, /*IsUpper=*/true, 4.0},
      {2, /*IsUpper=*/false, 3.0},
  };
  applyBoundPath(Path, Lower, Upper);
  EXPECT_EQ(Upper[0], 4.0);
  EXPECT_EQ(Lower[2], 3.0);
  EXPECT_EQ(Lower[0], 0.0);
  EXPECT_EQ(Upper[2], 10.0);
  EXPECT_EQ(Lower[1], 0.0);
  EXPECT_EQ(Upper[1], 10.0);
}

TEST(BoundPath, LaterEntriesForSameVarOverride) {
  // Paths only ever tighten, so plain assignment in order must leave the
  // deepest (last) bound in place.
  std::vector<double> Lower = {0.0};
  std::vector<double> Upper = {10.0};
  std::vector<BoundChange> Path = {
      {0, true, 7.0},
      {0, true, 4.0},
      {0, true, 2.0},
  };
  applyBoundPath(Path, Lower, Upper);
  EXPECT_EQ(Upper[0], 2.0);
}

TEST(BoundPath, ApplyThenUndoRoundTripsRandomPaths) {
  SplitMix64 Rng(0xB0D5);
  for (int Case = 0; Case < 50; ++Case) {
    int N = static_cast<int>(Rng.nextInRange(1, 8));
    std::vector<double> RootLower(N), RootUpper(N);
    for (int I = 0; I < N; ++I) {
      RootLower[I] = static_cast<double>(Rng.nextInRange(-5, 0));
      RootUpper[I] = RootLower[I] + static_cast<double>(Rng.nextInRange(1, 12));
    }
    std::vector<double> Lower = RootLower, Upper = RootUpper;

    // A random root-relative path of tightenings, possibly revisiting the
    // same variable several times.
    std::vector<BoundChange> Path;
    int Len = static_cast<int>(Rng.nextInRange(0, 10));
    for (int I = 0; I < Len; ++I) {
      BoundChange C;
      C.Var = static_cast<VarId>(Rng.nextInRange(0, N - 1));
      C.IsUpper = Rng.nextInRange(0, 1) == 1;
      if (C.IsUpper)
        C.Bound = Upper[C.Var] - 1.0;
      else
        C.Bound = Lower[C.Var] + 1.0;
      Path.push_back(C);
      applyBoundPath({C}, Lower, Upper);
    }

    // Re-applying the whole path from the root reproduces the same state.
    std::vector<double> Lower2 = RootLower, Upper2 = RootUpper;
    applyBoundPath(Path, Lower2, Upper2);
    EXPECT_EQ(Lower, Lower2);
    EXPECT_EQ(Upper, Upper2);

    // Undo restores the root exactly (bitwise: only assignments involved).
    undoBoundPath(Path, RootLower, RootUpper, Lower, Upper);
    EXPECT_EQ(Lower, RootLower);
    EXPECT_EQ(Upper, RootUpper);
  }
}

TEST(BoundPath, UndoTouchesOnlyPathVariables) {
  std::vector<double> RootLower = {0.0, 0.0};
  std::vector<double> RootUpper = {9.0, 9.0};
  std::vector<double> Lower = {0.0, 5.0}; // Var 1 modified out of band.
  std::vector<double> Upper = {3.0, 9.0}; // Var 0 on the path.
  std::vector<BoundChange> Path = {{0, true, 3.0}};
  undoBoundPath(Path, RootLower, RootUpper, Lower, Upper);
  EXPECT_EQ(Upper[0], 9.0); // Restored.
  EXPECT_EQ(Lower[1], 5.0); // Untouched: not on the path.
}
