//===- SolveCacheTest.cpp - Sharded LRU solve-cache tests ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/SolveCache.h"

#include <gtest/gtest.h>

#include <memory>

using namespace aqua;
using namespace aqua::service;

namespace {

ir::Fingerprint key(std::uint64_t I) {
  // Distinct, well-spread keys.
  return ir::Fingerprint{I * 0x9e3779b97f4a7c15ULL + 1, I};
}

std::shared_ptr<const CompileArtifact> artifact(const std::string &Tag) {
  auto A = std::make_shared<CompileArtifact>();
  A->Ok = true;
  A->Error = Tag; // Repurposed as an identity marker for the test.
  return A;
}

/// One shard so whole-cache LRU order is exact.
CacheConfig singleShard(std::size_t MaxEntries) {
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = MaxEntries;
  return C;
}

} // namespace

TEST(SolveCache, HitAndMissCounting) {
  SolveCache Cache(singleShard(8));
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  Cache.insert(key(1), artifact("one"));
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "one");
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.Bytes, 0u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(SolveCache, EvictsLeastRecentlyUsedAtEntryBudget) {
  SolveCache Cache(singleShard(3));
  Cache.insert(key(1), artifact("1"));
  Cache.insert(key(2), artifact("2"));
  Cache.insert(key(3), artifact("3"));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(Cache.lookup(key(1)), nullptr);
  Cache.insert(key(4), artifact("4"));

  EXPECT_EQ(Cache.lookup(key(2)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(Cache.lookup(key(1)), nullptr);
  EXPECT_NE(Cache.lookup(key(3)), nullptr);
  EXPECT_NE(Cache.lookup(key(4)), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 3u);
}

TEST(SolveCache, ReinsertReplacesWithoutEviction) {
  SolveCache Cache(singleShard(2));
  Cache.insert(key(1), artifact("old"));
  Cache.insert(key(1), artifact("new"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "new");
}

TEST(SolveCache, ByteBudgetEvictsButKeepsAtLeastOne) {
  CacheConfig C = singleShard(100);
  C.MaxBytes = 1; // Every artifact is over budget on its own.
  SolveCache Cache(C);
  Cache.insert(key(1), artifact("1"));
  EXPECT_EQ(Cache.stats().Entries, 1u) << "a lone over-budget entry stays";
  Cache.insert(key(2), artifact("2"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_NE(Cache.lookup(key(2)), nullptr) << "most recent entry survives";
}

TEST(SolveCache, EvictedArtifactsSurviveForHolders) {
  SolveCache Cache(singleShard(1));
  Cache.insert(key(1), artifact("held"));
  auto Held = Cache.lookup(key(1));
  ASSERT_NE(Held, nullptr);
  Cache.insert(key(2), artifact("evictor"));
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  EXPECT_EQ(Held->Error, "held") << "eviction must not invalidate holders";
}

TEST(SolveCache, ShardedCountersAggregate) {
  CacheConfig C;
  C.Shards = 4;
  C.MaxEntries = 64;
  SolveCache Cache(C);
  for (std::uint64_t I = 0; I < 32; ++I)
    Cache.insert(key(I), artifact("x"));
  for (std::uint64_t I = 0; I < 32; ++I)
    EXPECT_NE(Cache.lookup(key(I)), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 32u);
  EXPECT_EQ(S.Hits, 32u);
  EXPECT_EQ(S.Entries, 32u);

  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Bytes, 0u);
  EXPECT_EQ(Cache.stats().Insertions, 32u) << "clear() keeps counters";
}
