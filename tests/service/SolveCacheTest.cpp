//===- SolveCacheTest.cpp - Sharded LRU solve-cache tests ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/SolveCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;

namespace {

ir::Fingerprint key(std::uint64_t I) {
  // Distinct, well-spread keys.
  return ir::Fingerprint{I * 0x9e3779b97f4a7c15ULL + 1, I};
}

std::shared_ptr<const CompileArtifact> artifact(const std::string &Tag) {
  auto A = std::make_shared<CompileArtifact>();
  A->Ok = true;
  A->Error = Tag; // Repurposed as an identity marker for the test.
  return A;
}

/// One shard so whole-cache LRU order is exact.
CacheConfig singleShard(std::size_t MaxEntries) {
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = MaxEntries;
  return C;
}

} // namespace

TEST(SolveCache, HitAndMissCounting) {
  SolveCache Cache(singleShard(8));
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  Cache.insert(key(1), artifact("one"));
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "one");
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.Bytes, 0u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(SolveCache, ClockEvictionHoldsBudgetAndFavorsHotEntries) {
  // CLOCK-approximate eviction: no exact LRU order to assert, but the
  // budget must hold exactly, evictions must account for every displaced
  // entry, and an entry whose reference bit is set before every insert
  // must survive nearly all sweeps (the second-chance property). The test
  // is single-threaded, so the outcome is deterministic; the bound leaves
  // slack for the all-bits-set wrap case where CLOCK may pick any slot.
  CacheConfig C = singleShard(8);
  C.DecodedEntries = 0; // Eviction is final: no victim-cache resurrection.
  SolveCache Cache(C);
  Cache.insert(key(0), artifact("hot"));
  int HotLost = 0;
  const std::uint64_t Storm = 200;
  for (std::uint64_t I = 1; I <= Storm; ++I) {
    if (!Cache.lookup(key(0))) {
      ++HotLost;
      Cache.insert(key(0), artifact("hot"));
    }
    Cache.insert(key(I), artifact(std::to_string(I)));
  }
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 8u);
  EXPECT_EQ(S.Evictions, S.Insertions - S.Entries);
  EXPECT_LE(HotLost, static_cast<int>(Storm) / 10)
      << "a continuously re-referenced entry must survive the sweep";
}

TEST(SolveCache, ReinsertReplacesWithoutEviction) {
  SolveCache Cache(singleShard(2));
  Cache.insert(key(1), artifact("old"));
  Cache.insert(key(1), artifact("new"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "new");
}

TEST(SolveCache, ByteBudgetEvictsButKeepsAtLeastOne) {
  CacheConfig C = singleShard(100);
  C.MaxBytes = 1; // Every artifact is over budget on its own.
  SolveCache Cache(C);
  Cache.insert(key(1), artifact("1"));
  EXPECT_EQ(Cache.stats().Entries, 1u) << "a lone over-budget entry stays";
  Cache.insert(key(2), artifact("2"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_NE(Cache.lookup(key(2)), nullptr) << "most recent entry survives";
}

TEST(SolveCache, EvictedArtifactsSurviveForHolders) {
  CacheConfig C = singleShard(1);
  C.DecodedEntries = 0;
  SolveCache Cache(C);
  Cache.insert(key(1), artifact("held"));
  auto Held = Cache.lookup(key(1));
  ASSERT_NE(Held, nullptr);
  Cache.insert(key(2), artifact("evictor"));
  // CLOCK picks one of the two (both reference bits may be set when the
  // sweep wraps); exactly one survives, and the held handle stays valid
  // either way.
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  bool Have1 = Cache.lookup(key(1)) != nullptr;
  bool Have2 = Cache.lookup(key(2)) != nullptr;
  EXPECT_NE(Have1, Have2) << "exactly one entry fits the budget";
  EXPECT_EQ(Held->Error, "held") << "eviction must not invalidate holders";
}

TEST(SolveCache, DecodedVictimCacheResurrectsEvictedEntries) {
  // With the decoded victim cache on (the default), an L1 eviction parks
  // the decoded artifact instead of dropping it: the next lookup hits the
  // victim cache (counted in DecodedHits and Hits), promotes the entry
  // back into L1, and never touches a store or the codec.
  CacheConfig C = singleShard(1);
  C.DecodedEntries = 8;
  SolveCache Cache(C);
  Cache.insert(key(1), artifact("1"));
  Cache.insert(key(2), artifact("2"));
  // Budget 1: one of the two was evicted into the victim cache, so both
  // keys must stay servable, ping-ponging between L1 and the victim
  // cache.
  for (int Round = 0; Round < 4; ++Round) {
    auto A1 = Cache.lookup(key(1));
    ASSERT_NE(A1, nullptr) << "round " << Round;
    EXPECT_EQ(A1->Error, "1");
    auto A2 = Cache.lookup(key(2));
    ASSERT_NE(A2, nullptr) << "round " << Round;
    EXPECT_EQ(A2->Error, "2");
  }
  CacheStats S = Cache.stats();
  EXPECT_GT(S.DecodedHits, 0u);
  EXPECT_EQ(S.Misses, 0u) << "the victim cache absorbed every L1 miss";
  EXPECT_EQ(S.Hits, 8u);
  EXPECT_LE(S.DecodedHits, S.Hits) << "DecodedHits is a subset of Hits";

  // clear() empties the victim cache too: key(2)'s parked artifact is
  // gone, not just the L1 entry.
  Cache.clear();
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  EXPECT_EQ(Cache.lookup(key(2)), nullptr);
}

TEST(SolveCache, LockFreeReadersUnderConcurrentInsertEvictAreSane) {
  // The TSan hammer for the seqlock read path: readers spin lock-free
  // lookups over a small key space while writers force constant insert /
  // evict churn in the same shard. Every hit must return an internally
  // consistent artifact (the identity tag must match the key it was
  // inserted under), and the counters must balance.
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = 8;
  C.DecodedEntries = 0;
  SolveCache Cache(C);

  constexpr std::uint64_t KeySpace = 32;
  constexpr int Readers = 4;
  constexpr int Writers = 2;
  constexpr int OpsPerThread = 20000;
  std::atomic<std::uint64_t> Lookups{0};
  std::atomic<bool> Mismatch{false};

  std::vector<std::thread> Threads;
  Threads.reserve(Readers + Writers);
  for (int W = 0; W < Writers; ++W) {
    Threads.emplace_back([&, W] {
      std::uint64_t State = 0x2545f4914f6cdd1dULL * (W + 1);
      for (int I = 0; I < OpsPerThread; ++I) {
        State = State * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t K = (State >> 33) % KeySpace;
        Cache.insert(key(K), artifact(std::to_string(K)));
      }
    });
  }
  for (int T = 0; T < Readers; ++T) {
    Threads.emplace_back([&, T] {
      std::uint64_t State = 0x9e3779b97f4a7c15ULL * (T + 1);
      for (int I = 0; I < OpsPerThread; ++I) {
        State = State * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t K = (State >> 33) % KeySpace;
        Lookups.fetch_add(1, std::memory_order_relaxed);
        if (auto Hit = Cache.lookup(key(K))) {
          if (Hit->Error != std::to_string(K))
            Mismatch.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_FALSE(Mismatch.load()) << "a reader saw a torn key/value pair";
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, Lookups.load());
  EXPECT_LE(S.Entries, C.MaxEntries);
  EXPECT_GT(S.Evictions, 0u);
}

TEST(SolveCache, ShardedCountersAggregate) {
  CacheConfig C;
  C.Shards = 4;
  C.MaxEntries = 64;
  SolveCache Cache(C);
  for (std::uint64_t I = 0; I < 32; ++I)
    Cache.insert(key(I), artifact("x"));
  for (std::uint64_t I = 0; I < 32; ++I)
    EXPECT_NE(Cache.lookup(key(I)), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 32u);
  EXPECT_EQ(S.Hits, 32u);
  EXPECT_EQ(S.Entries, 32u);

  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Bytes, 0u);
  EXPECT_EQ(Cache.stats().Insertions, 32u) << "clear() keeps counters";
}

TEST(SolveCache, ConcurrentEvictionRaceKeepsCountersAndArtifactsSane) {
  // Eight threads hammer a single shard whose budgets force constant
  // eviction: every lookup must be a clean hit or miss (hits + misses ==
  // lookups issued), held artifacts must stay intact after their entry is
  // evicted, and the shard must end within budget.
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = 16;
  C.MaxBytes = 16 * sizeof(CompileArtifact); // Byte budget bites too.
  SolveCache Cache(C);

  constexpr int Threads = 8;
  constexpr int OpsPerThread = 4000;
  constexpr std::uint64_t KeySpace = 64; // Far beyond the entry budget.

  std::atomic<std::uint64_t> Lookups{0};
  std::vector<std::thread> Workers;
  std::vector<std::vector<std::shared_ptr<const CompileArtifact>>> Held(
      Threads);
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      std::uint64_t State = 0x9e3779b97f4a7c15ULL * (T + 1);
      for (int I = 0; I < OpsPerThread; ++I) {
        State = State * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t K = (State >> 33) % KeySpace;
        ++Lookups;
        if (auto Hit = Cache.lookup(key(K))) {
          // Hold a reference across future evictions.
          if (Held[T].size() < 64)
            Held[T].push_back(std::move(Hit));
        } else {
          Cache.insert(key(K), artifact(std::to_string(K)));
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, Lookups.load());
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Entries, C.MaxEntries);
  EXPECT_LE(S.Bytes, C.MaxBytes);

  // Every artifact held through an eviction is still readable and carries
  // the identity it was inserted with.
  for (int T = 0; T < Threads; ++T)
    for (const auto &A : Held[T]) {
      ASSERT_NE(A, nullptr);
      EXPECT_TRUE(A->Ok);
      EXPECT_FALSE(A->Error.empty());
    }
}
