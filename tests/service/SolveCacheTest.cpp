//===- SolveCacheTest.cpp - Sharded LRU solve-cache tests ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/SolveCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;

namespace {

ir::Fingerprint key(std::uint64_t I) {
  // Distinct, well-spread keys.
  return ir::Fingerprint{I * 0x9e3779b97f4a7c15ULL + 1, I};
}

std::shared_ptr<const CompileArtifact> artifact(const std::string &Tag) {
  auto A = std::make_shared<CompileArtifact>();
  A->Ok = true;
  A->Error = Tag; // Repurposed as an identity marker for the test.
  return A;
}

/// One shard so whole-cache LRU order is exact.
CacheConfig singleShard(std::size_t MaxEntries) {
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = MaxEntries;
  return C;
}

} // namespace

TEST(SolveCache, HitAndMissCounting) {
  SolveCache Cache(singleShard(8));
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  Cache.insert(key(1), artifact("one"));
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "one");
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.Bytes, 0u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(SolveCache, EvictsLeastRecentlyUsedAtEntryBudget) {
  SolveCache Cache(singleShard(3));
  Cache.insert(key(1), artifact("1"));
  Cache.insert(key(2), artifact("2"));
  Cache.insert(key(3), artifact("3"));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(Cache.lookup(key(1)), nullptr);
  Cache.insert(key(4), artifact("4"));

  EXPECT_EQ(Cache.lookup(key(2)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(Cache.lookup(key(1)), nullptr);
  EXPECT_NE(Cache.lookup(key(3)), nullptr);
  EXPECT_NE(Cache.lookup(key(4)), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 3u);
}

TEST(SolveCache, ReinsertReplacesWithoutEviction) {
  SolveCache Cache(singleShard(2));
  Cache.insert(key(1), artifact("old"));
  Cache.insert(key(1), artifact("new"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  auto Hit = Cache.lookup(key(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Error, "new");
}

TEST(SolveCache, ByteBudgetEvictsButKeepsAtLeastOne) {
  CacheConfig C = singleShard(100);
  C.MaxBytes = 1; // Every artifact is over budget on its own.
  SolveCache Cache(C);
  Cache.insert(key(1), artifact("1"));
  EXPECT_EQ(Cache.stats().Entries, 1u) << "a lone over-budget entry stays";
  Cache.insert(key(2), artifact("2"));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_NE(Cache.lookup(key(2)), nullptr) << "most recent entry survives";
}

TEST(SolveCache, EvictedArtifactsSurviveForHolders) {
  SolveCache Cache(singleShard(1));
  Cache.insert(key(1), artifact("held"));
  auto Held = Cache.lookup(key(1));
  ASSERT_NE(Held, nullptr);
  Cache.insert(key(2), artifact("evictor"));
  EXPECT_EQ(Cache.lookup(key(1)), nullptr);
  EXPECT_EQ(Held->Error, "held") << "eviction must not invalidate holders";
}

TEST(SolveCache, ShardedCountersAggregate) {
  CacheConfig C;
  C.Shards = 4;
  C.MaxEntries = 64;
  SolveCache Cache(C);
  for (std::uint64_t I = 0; I < 32; ++I)
    Cache.insert(key(I), artifact("x"));
  for (std::uint64_t I = 0; I < 32; ++I)
    EXPECT_NE(Cache.lookup(key(I)), nullptr);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 32u);
  EXPECT_EQ(S.Hits, 32u);
  EXPECT_EQ(S.Entries, 32u);

  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Bytes, 0u);
  EXPECT_EQ(Cache.stats().Insertions, 32u) << "clear() keeps counters";
}

TEST(SolveCache, ConcurrentEvictionRaceKeepsCountersAndArtifactsSane) {
  // Eight threads hammer a single shard whose budgets force constant
  // eviction: every lookup must be a clean hit or miss (hits + misses ==
  // lookups issued), held artifacts must stay intact after their entry is
  // evicted, and the shard must end within budget.
  CacheConfig C;
  C.Shards = 1;
  C.MaxEntries = 16;
  C.MaxBytes = 16 * sizeof(CompileArtifact); // Byte budget bites too.
  SolveCache Cache(C);

  constexpr int Threads = 8;
  constexpr int OpsPerThread = 4000;
  constexpr std::uint64_t KeySpace = 64; // Far beyond the entry budget.

  std::atomic<std::uint64_t> Lookups{0};
  std::vector<std::thread> Workers;
  std::vector<std::vector<std::shared_ptr<const CompileArtifact>>> Held(
      Threads);
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      std::uint64_t State = 0x9e3779b97f4a7c15ULL * (T + 1);
      for (int I = 0; I < OpsPerThread; ++I) {
        State = State * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t K = (State >> 33) % KeySpace;
        ++Lookups;
        if (auto Hit = Cache.lookup(key(K))) {
          // Hold a reference across future evictions.
          if (Held[T].size() < 64)
            Held[T].push_back(std::move(Hit));
        } else {
          Cache.insert(key(K), artifact(std::to_string(K)));
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, Lookups.load());
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Entries, C.MaxEntries);
  EXPECT_LE(S.Bytes, C.MaxBytes);

  // Every artifact held through an eviction is still readable and carries
  // the identity it was inserted with.
  for (int T = 0; T < Threads; ++T)
    for (const auto &A : Held[T]) {
      ASSERT_NE(A, nullptr);
      EXPECT_TRUE(A->Ok);
      EXPECT_FALSE(A->Error.empty());
    }
}
