//===- TraceFlowTest.cpp - Request flow-event well-formedness -------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The service draws one flow arc per queued request: 's' at submit, 'f'
// where the worker serves it. A dangling 's' (request vanished) or an 'f'
// without its 's' (arc from nowhere) renders as garbage in Perfetto and
// means a lifecycle path forgot its half -- so these tests run real
// requests through the queue (including the deadline-shed path, which
// must close the arc too) and check every 's' pairs with exactly one 'f'
// by binding id.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/obs/Trace.h"
#include "aqua/service/CompileService.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Restores the global tracer around a test.
class GlobalTracerScope {
public:
  GlobalTracerScope() : WasEnabled(obs::Tracer::enabled()) {
    obs::Tracer::global().clear();
  }
  ~GlobalTracerScope() {
    obs::Tracer::setEnabled(WasEnabled);
    obs::Tracer::global().clear();
  }

private:
  bool WasEnabled;
};

CompileRequest graphRequest(const std::string &Name) {
  CompileRequest R;
  R.Name = Name;
  R.Graph =
      std::make_shared<const ir::AssayGraph>(assays::buildGlucoseAssay());
  return R;
}

/// Counts 's' and 'f' events per flow id for \p FlowName.
struct FlowTally {
  std::map<std::uint64_t, int> Begins, Ends;
};

FlowTally tallyFlows(const char *FlowName) {
  FlowTally T;
  for (const obs::TraceEvent &E : obs::Tracer::global().snapshot()) {
    if (E.Name != FlowName)
      continue;
    if (E.Phase == 's')
      ++T.Begins[E.FlowId];
    else if (E.Phase == 'f')
      ++T.Ends[E.FlowId];
  }
  return T;
}

} // namespace

TEST(TraceFlow, EveryQueuedRequestBeginsAndEndsItsArc) {
  GlobalTracerScope Scope;
  obs::Tracer::setEnabled(true);
  {
    ServiceOptions Options;
    Options.Threads = 2;
    CompileService Service(Options);
    std::vector<CompileRequest> Batch;
    for (int I = 0; I < 8; ++I)
      Batch.push_back(graphRequest("glucose" + std::to_string(I % 3)));
    std::vector<CompileResponse> Responses =
        Service.compileBatch(std::move(Batch));
    ASSERT_EQ(Responses.size(), 8u);
    for (const CompileResponse &R : Responses) {
      EXPECT_TRUE(R.Ok) << R.Error;
      EXPECT_NE(R.TraceId, 0u) << "responses carry the request trace id";
    }
  }
  obs::Tracer::setEnabled(false);

  FlowTally T = tallyFlows("service.request");
  EXPECT_EQ(T.Begins.size(), 8u) << "one arc per queued request";
  for (const auto &[Id, N] : T.Begins) {
    EXPECT_EQ(N, 1) << "duplicate 's' for flow " << Id;
    EXPECT_EQ(T.Ends.count(Id), 1u) << "dangling 's' for flow " << Id;
  }
  for (const auto &[Id, N] : T.Ends) {
    EXPECT_EQ(N, 1) << "duplicate 'f' for flow " << Id;
    EXPECT_EQ(T.Begins.count(Id), 1u) << "'f' without 's' for flow " << Id;
  }
}

TEST(TraceFlow, DeadlineShedClosesTheArcToo) {
  GlobalTracerScope Scope;
  obs::Tracer::setEnabled(true);
  {
    ServiceOptions Options;
    Options.Threads = 1;
    CompileService Service(Options);
    // Already-expired deadlines: requests are queued (arc begins) and
    // then shed at dequeue -- the shed path must close the arc. Anchor
    // the steady epoch first so an early deadline of 1 us is in the past.
    obs::Tracer::nowMicros();
    while (obs::Tracer::nowMicros() < 2)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    std::vector<CompileRequest> Batch;
    for (int I = 0; I < 4; ++I) {
      CompileRequest R = graphRequest("doomed" + std::to_string(I));
      R.DeadlineMicros = 1;
      Batch.push_back(std::move(R));
    }
    std::vector<CompileResponse> Responses =
        Service.compileBatch(std::move(Batch));
    for (const CompileResponse &R : Responses)
      EXPECT_EQ(R.Shed, ShedReason::DeadlineExpired);
  }
  obs::Tracer::setEnabled(false);

  FlowTally T = tallyFlows("service.request");
  EXPECT_FALSE(T.Begins.empty());
  for (const auto &[Id, N] : T.Begins) {
    (void)N;
    EXPECT_EQ(T.Ends.count(Id), 1u)
        << "shed request left a dangling 's' for flow " << Id;
  }
}

TEST(TraceFlow, ResponsesCarrySubmitAssignedTraceIds) {
  GlobalTracerScope Scope;
  obs::Tracer::setEnabled(true);
  ServiceOptions Options;
  Options.Threads = 1;
  CompileService Service(Options);

  // A caller-provided id is kept; an absent one is assigned.
  CompileRequest Pinned = graphRequest("pinned");
  Pinned.TraceId = 0x1234567;
  CompileResponse RP = Service.compileNow(Pinned);
  EXPECT_EQ(RP.TraceId, 0x1234567u);

  CompileResponse RA = Service.compileNow(graphRequest("assigned"));
  EXPECT_NE(RA.TraceId, 0u);
  EXPECT_NE(RA.TraceId, RP.TraceId);
  obs::Tracer::setEnabled(false);
}
