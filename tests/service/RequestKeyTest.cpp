//===- RequestKeyTest.cpp - Compile-request fingerprint tests --------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/RequestKey.h"

#include "aqua/assays/PaperAssays.h"

#include <gtest/gtest.h>

using namespace aqua;
using namespace aqua::service;

namespace {

ir::AssayGraph graph() { return assays::buildGlucoseAssay(); }

} // namespace

TEST(RequestKey, DeterministicAcrossCalls) {
  EXPECT_EQ(requestFingerprint(graph(), {}), requestFingerprint(graph(), {}));
}

TEST(RequestKey, EveryMachineSpecFieldIsKeyed) {
  ir::AssayGraph G = graph();
  ir::Fingerprint Base = requestFingerprint(G, {});

  core::MachineSpec Capacity;
  Capacity.MaxCapacityNl = 200.0;
  EXPECT_NE(requestFingerprint(G, Capacity), Base);

  core::MachineSpec LeastCount;
  LeastCount.LeastCountNl = 0.05;
  EXPECT_NE(requestFingerprint(G, LeastCount), Base);

  core::MachineSpec Inputs;
  Inputs.Limits.MaxInputs = 8;
  EXPECT_NE(requestFingerprint(G, Inputs), Base);

  core::MachineSpec Nodes;
  Nodes.Limits.MaxNodes = 100;
  EXPECT_NE(requestFingerprint(G, Nodes), Base);
}

TEST(RequestKey, EveryManagerOptionFieldIsKeyed) {
  ir::AssayGraph G = graph();
  core::MachineSpec Spec;
  ir::Fingerprint Base = requestFingerprint(G, Spec);

  {
    core::ManagerOptions O;
    O.UseLPFallback = false;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.AllowCascading = false;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.AllowReplication = false;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.MaxIterations = 7;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.CascadeSkewThreshold = 50;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.MaxCascadeStages = 3;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.TargetMeanRoundErrorPct = 1.0;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.MaxErrorRefineSteps = 1;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.LPOptions.Presolve = false;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.LPOptions.Simplex.MaxIterations = 1000;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
  {
    core::ManagerOptions O;
    O.DagOptions.PinnedNode = 0;
    O.DagOptions.PinnedVolumeNl = 10.0;
    EXPECT_NE(requestFingerprint(G, Spec, O), Base);
  }
}

TEST(RequestKey, LayoutIsKeyed) {
  ir::AssayGraph G = graph();
  codegen::MachineLayout Small;
  Small.Reservoirs = 4;
  EXPECT_NE(requestFingerprint(G, {}, {}, Small), requestFingerprint(G, {}));
}

TEST(RequestKey, OutputWeightsAreKeyedByLogicalNode) {
  // The same logical weighting expressed against two insertion orders of
  // the same graph must produce the same key; weighting a *different*
  // logical node must change it.
  assays::Figure2Nodes N1;
  ir::AssayGraph G1 = assays::buildFigure2Example(&N1);
  assays::Figure2Nodes N2;
  ir::AssayGraph G2 = assays::buildFigure2Example(&N2);

  core::ManagerOptions W1;
  W1.DagOptions.OutputWeights = {{N1.M, Rational(3)}};
  core::ManagerOptions W2;
  W2.DagOptions.OutputWeights = {{N2.M, Rational(3)}};
  EXPECT_EQ(requestFingerprint(G1, {}, W1), requestFingerprint(G2, {}, W2));

  core::ManagerOptions WOther;
  WOther.DagOptions.OutputWeights = {{N2.N, Rational(3)}};
  EXPECT_NE(requestFingerprint(G1, {}, W1),
            requestFingerprint(G2, {}, WOther));
}
