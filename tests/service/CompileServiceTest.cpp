//===- CompileServiceTest.cpp - Concurrent compile-service tests -----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/CompileService.h"

#include "aqua/assays/ExtraAssays.h"
#include "aqua/assays/PaperAssays.h"
#include "aqua/codegen/AISParser.h"
#include "aqua/obs/Metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;

namespace {

CompileRequest sourceRequest(const char *Name, const char *Source) {
  CompileRequest R;
  R.Name = Name;
  R.Source = Source;
  return R;
}

CompileRequest graphRequest(const char *Name, ir::AssayGraph G) {
  CompileRequest R;
  R.Name = Name;
  R.Graph = std::make_shared<const ir::AssayGraph>(std::move(G));
  return R;
}

} // namespace

TEST(CompileService, CompilesSourceEndToEnd) {
  CompileService Service;
  CompileResponse R = Service.compileNow(
      sourceRequest("glucose", assays::glucoseSource()));
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_NE(R.Artifact, nullptr);
  EXPECT_TRUE(R.Artifact->Managed);
  EXPECT_TRUE(R.Artifact->VM.Feasible);
  EXPECT_FALSE(R.Artifact->Program.Instrs.empty());
  EXPECT_NE(R.Key, ir::Fingerprint{}) << "key must be set on success";
  // The generated program round-trips through the AIS parser.
  EXPECT_TRUE(codegen::parseAIS(R.Artifact->Program.str()).ok());
}

TEST(CompileService, ParseErrorsAreReportedNotCached) {
  CompileService Service;
  CompileResponse R =
      Service.compileNow(sourceRequest("broken", "ASSAY ( nonsense"));
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(R.Artifact, nullptr);
  EXPECT_EQ(Service.stats().Cache.Insertions, 0u);
}

TEST(CompileService, RepeatSubmissionsHitTheCache) {
  ServiceOptions Options;
  Options.Threads = 2;
  CompileService Service(Options);
  std::vector<CompileRequest> Batch;
  for (int I = 0; I < 6; ++I)
    Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  std::vector<CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  ASSERT_EQ(Responses.size(), 6u);
  for (const CompileResponse &R : Responses)
    EXPECT_TRUE(R.Ok) << R.Error;
  ServiceStats S = Service.stats();
  // Identical structure solves exactly once; everyone else is a hit or a
  // single-flight join.
  EXPECT_EQ(S.Cache.Insertions, 1u);
  EXPECT_EQ(S.CacheHits + S.SingleFlightJoins, 5u);
  EXPECT_EQ(S.Submitted, 6u);
  EXPECT_EQ(S.Completed, 6u);
  EXPECT_EQ(S.Failed, 0u);
}

TEST(CompileService, SingleFlightDedupUnderEightThreads) {
  ServiceOptions Options;
  Options.Threads = 8;
  CompileService Service(Options);
  // Eight threads submit the same (non-trivial) assay concurrently.
  auto Graph = std::make_shared<const ir::AssayGraph>(
      assays::buildEnzymeAssay(4));
  std::vector<std::thread> Threads;
  std::vector<CompileResponse> Responses(8);
  for (int I = 0; I < 8; ++I)
    Threads.emplace_back([&, I] {
      CompileRequest R;
      R.Name = "enzyme";
      R.Graph = Graph;
      Responses[I] = Service.submit(std::move(R)).get();
    });
  for (std::thread &T : Threads)
    T.join();

  for (const CompileResponse &R : Responses) {
    EXPECT_TRUE(R.Ok) << R.Error;
    ASSERT_NE(R.Artifact, nullptr);
    EXPECT_TRUE(R.Artifact->VM.Feasible);
  }
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Cache.Insertions, 1u) << "single-flight must solve once";
  EXPECT_EQ(S.CacheHits + S.SingleFlightJoins, 7u);
  EXPECT_EQ(S.Completed, 8u);
}

TEST(CompileService, CacheOffRunsEveryRequest) {
  ServiceOptions Options;
  Options.Threads = 2;
  Options.EnableCache = false;
  CompileService Service(Options);
  std::vector<CompileRequest> Batch;
  for (int I = 0; I < 4; ++I)
    Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  std::vector<CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  for (const CompileResponse &R : Responses) {
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_FALSE(R.CacheHit);
    EXPECT_FALSE(R.Deduplicated);
  }
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_EQ(S.Cache.Insertions, 0u);
}

TEST(CompileService, DistinctConfigurationsDoNotShareArtifacts) {
  CompileService Service;
  CompileRequest Coarse = graphRequest("glucose", assays::buildGlucoseAssay());
  CompileRequest Fine = graphRequest("glucose", assays::buildGlucoseAssay());
  Fine.Spec.LeastCountNl = 0.05;
  CompileResponse R1 = Service.compileNow(Coarse);
  CompileResponse R2 = Service.compileNow(Fine);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_NE(R1.Key, R2.Key);
  EXPECT_FALSE(R2.CacheHit);
  EXPECT_EQ(Service.stats().Cache.Insertions, 2u);
}

TEST(CompileService, InfeasibleCompilesAreCachedFailures) {
  // 1:1999 with one use and no transforms allowed is statically
  // infeasible; the deterministic failure is memoized like a success.
  ir::AssayGraph G;
  ir::NodeId A = G.addInput("A");
  ir::NodeId B = G.addInput("B");
  ir::NodeId M = G.addMix("M", {{A, 1}, {B, 1999}});
  G.addUnary(ir::NodeKind::Sense, "out", M);
  CompileRequest R = graphRequest("skewed", std::move(G));
  R.Manage.AllowCascading = false;
  R.Manage.AllowReplication = false;

  CompileService Service;
  CompileResponse First = Service.compileNow(R);
  EXPECT_FALSE(First.Ok);
  EXPECT_NE(First.Error.find("no feasible volume assignment"),
            std::string::npos);
  CompileResponse Second = Service.compileNow(R);
  EXPECT_FALSE(Second.Ok);
  EXPECT_TRUE(Second.CacheHit) << "failures must be memoized too";
  EXPECT_EQ(Service.stats().Cache.Insertions, 1u);
}

TEST(CompileService, CacheCountersMatchSolveCacheStats) {
  // The service.cache.* counters in the global metrics registry are
  // instrumented at the service's hit paths and the cache's insertion
  // path; they must agree exactly with the SolveCache's own accounting.
  // (service.cache.misses intentionally counts genuine first solves, not
  // cache-level lookup misses -- the single-flight re-check probes the
  // cache a second time, so the two miss notions differ by design.)
  obs::MetricsRegistry &Reg = obs::metrics();
  std::uint64_t HitsBefore = Reg.counter("service.cache.hits").value();
  std::uint64_t InsertionsBefore =
      Reg.counter("service.cache.insertions").value();

  CompileService Service;
  // Two distinct assays, each compiled twice sequentially: deterministic
  // two insertions, two hits, no single-flight ambiguity.
  CompileRequest Glucose =
      graphRequest("glucose", assays::buildGlucoseAssay());
  CompileRequest Bradford =
      graphRequest("bradford", assays::buildBradfordProtein());
  for (int Pass = 0; Pass < 2; ++Pass) {
    ASSERT_TRUE(Service.compileNow(Glucose).Ok);
    ASSERT_TRUE(Service.compileNow(Bradford).Ok);
  }

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Cache.Hits, 2u);
  EXPECT_EQ(S.Cache.Insertions, 2u);
  EXPECT_EQ(Reg.counter("service.cache.hits").value() - HitsBefore,
            S.Cache.Hits);
  EXPECT_EQ(Reg.counter("service.cache.insertions").value() -
                InsertionsBefore,
            S.Cache.Insertions);
}

TEST(CompileService, UnknownVolumeAssaysCompileRelative) {
  CompileService Service;
  CompileResponse R = Service.compileNow(
      graphRequest("glycomics", assays::buildGlycomicsAssay()));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Artifact->Managed);
  EXPECT_FALSE(R.Artifact->Program.Instrs.empty());
}

TEST(CompileService, MixedBatchKeepsRequestOrder) {
  ServiceOptions Options;
  Options.Threads = 4;
  CompileService Service(Options);
  std::vector<CompileRequest> Batch;
  Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  Batch.push_back(graphRequest("mic", assays::buildMicPanel(6)));
  Batch.push_back(sourceRequest("bad", "not an assay"));
  Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  std::vector<CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  ASSERT_EQ(Responses.size(), 4u);
  EXPECT_EQ(Responses[0].Name, "glucose");
  EXPECT_TRUE(Responses[0].Ok);
  EXPECT_EQ(Responses[1].Name, "mic");
  EXPECT_TRUE(Responses[1].Ok);
  EXPECT_EQ(Responses[2].Name, "bad");
  EXPECT_FALSE(Responses[2].Ok);
  EXPECT_TRUE(Responses[3].Ok);
  EXPECT_EQ(Service.stats().Failed, 1u);
  for (const CompileResponse &R : Responses)
    EXPECT_GE(R.LatencySec, 0.0);
}

namespace {

/// LP-bound structure: the 1:24 skewed mix next to parallel 1:1 uses of
/// the same input starves DAGSolve's equal-output split, so the manager
/// falls through to the Figure 3 LP and the artifact carries a
/// warm-start basis.
std::shared_ptr<const ir::AssayGraph> lpBoundGraph() {
  ir::AssayGraph G;
  ir::NodeId A = G.addInput("A");
  ir::NodeId B = G.addInput("B");
  ir::NodeId MixP = G.addMix("mixP", {{A, 1}, {B, 24}});
  G.addUnary(ir::NodeKind::Sense, "P", MixP);
  for (int I = 0; I < 96; ++I) {
    ir::NodeId MixQ = G.addMix("mixQ" + std::to_string(I), {{A, 1}, {B, 1}});
    G.addUnary(ir::NodeKind::Sense, "Q" + std::to_string(I), MixQ);
  }
  return std::make_shared<const ir::AssayGraph>(std::move(G));
}

/// One step of a capacity sweep over the shared LP-bound structure:
/// distinct fingerprints (capacity differs), identical structure key.
CompileRequest capacityRequest(std::shared_ptr<const ir::AssayGraph> G,
                               double CapacityNl, const char *Name) {
  CompileRequest R;
  R.Name = Name;
  R.Graph = std::move(G);
  R.Spec.MaxCapacityNl = CapacityNl;
  R.Manage.AllowCascading = false;
  R.Manage.AllowReplication = false;
  return R;
}

} // namespace

TEST(CompileService, WarmMissReusesDonorBasisAcrossCapacitySweep) {
  CompileService Service;
  auto G = lpBoundGraph();

  CompileResponse R1 = Service.compileNow(capacityRequest(G, 100.0, "cap100"));
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_EQ(R1.Artifact->VM.Method, core::SolveMethod::LP)
      << "fixture must exercise the LP path for warm-miss to apply";
  ASSERT_NE(R1.Artifact->VM.LpBasis, nullptr);
  EXPECT_FALSE(R1.Artifact->VM.LpWarmStarted);

  CompileResponse R2 = Service.compileNow(capacityRequest(G, 90.0, "cap90"));
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_FALSE(R2.CacheHit) << "capacity change must be a genuine miss";
  EXPECT_TRUE(R2.Artifact->VM.LpWarmStarted);
  EXPECT_EQ(R2.Artifact->VM.LpShapeHash, R1.Artifact->VM.LpShapeHash)
      << "same structure must hash to the same donor shape";
  EXPECT_EQ(Service.stats().WarmMissHits, 1u);

  // The warm repair must be invisible in the artifact: a cold service
  // compiling the same swept request produces the identical program and
  // rounded assignment.
  ServiceOptions Off;
  Off.WarmMiss = false;
  CompileService Cold(Off);
  CompileResponse C2 = Cold.compileNow(capacityRequest(G, 90.0, "cap90"));
  ASSERT_TRUE(C2.Ok) << C2.Error;
  EXPECT_FALSE(C2.Artifact->VM.LpWarmStarted);
  EXPECT_EQ(Cold.stats().WarmMissHits, 0u);
  EXPECT_EQ(R2.Artifact->Program.str(), C2.Artifact->Program.str());
  EXPECT_EQ(R2.Artifact->VM.Rounded.NodeUnits, C2.Artifact->VM.Rounded.NodeUnits);
  EXPECT_EQ(R2.Artifact->VM.Rounded.EdgeUnits, C2.Artifact->VM.Rounded.EdgeUnits);
}

TEST(CompileService, BatchedDrainDeliversEveryResponseInOrder) {
  // The batched response drain: one handle for the whole batch, slots
  // written by workers, one wakeup at the end. Order, shed handling, and
  // per-request outcomes must match the future-based path exactly.
  ServiceOptions Options;
  Options.Threads = 4;
  CompileService Service(Options);
  std::vector<CompileRequest> Batch;
  Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  Batch.push_back(sourceRequest("bad", "not an assay"));
  Batch.push_back(graphRequest("mic", assays::buildMicPanel(6)));
  ResponseBatch Drain = Service.submitBatchDrained(std::move(Batch));
  EXPECT_EQ(Drain.size(), 3u);
  std::vector<CompileResponse> Responses = Drain.take();
  ASSERT_EQ(Responses.size(), 3u);
  EXPECT_EQ(Responses[0].Name, "glucose");
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].Error;
  EXPECT_EQ(Responses[1].Name, "bad");
  EXPECT_FALSE(Responses[1].Ok);
  EXPECT_EQ(Responses[2].Name, "mic");
  EXPECT_TRUE(Responses[2].Ok) << Responses[2].Error;
  // A second take() on the same handle is empty, not a hang.
  EXPECT_TRUE(Drain.take().empty());
  // An empty batch drains immediately.
  EXPECT_TRUE(Service.submitBatchDrained({}).take().empty());
}

TEST(CompileService, BatchedDrainAppliesAdmissionPerRequest) {
  ServiceOptions Options;
  Options.Threads = 1;
  Options.MaxQueueDepth = 1;
  Options.StartPaused = true;
  CompileService Service(Options);
  std::vector<CompileRequest> Batch;
  for (int I = 0; I < 3; ++I)
    Batch.push_back(graphRequest("glucose", assays::buildGlucoseAssay()));
  ResponseBatch Drain = Service.submitBatchDrained(std::move(Batch));
  Service.resume();
  std::vector<CompileResponse> Responses = Drain.take();
  ASSERT_EQ(Responses.size(), 3u);
  EXPECT_TRUE(Responses[0].Ok) << Responses[0].Error;
  // The queue had room for one; the rest shed at submit, and their shed
  // responses arrive through the same drain.
  EXPECT_EQ(Responses[1].Shed, ShedReason::QueueFull);
  EXPECT_EQ(Responses[2].Shed, ShedReason::QueueFull);
  EXPECT_EQ(Service.stats().ShedQueueFull, 2u);
}

TEST(CompileService, SharedGraphSubmissionsReuseTheCanonicalMemo) {
  // Repeat submissions of one shared DAG skip WL canonicalization via the
  // graph-identity memo -- the dominant cost of the cache-hit path.
  ServiceOptions Options;
  Options.Threads = 2;
  CompileService Service(Options);
  auto Shared =
      std::make_shared<const ir::AssayGraph>(assays::buildGlucoseAssay());
  std::vector<CompileRequest> Batch;
  for (int I = 0; I < 8; ++I) {
    CompileRequest R;
    R.Name = "repeat";
    R.Graph = Shared;
    Batch.push_back(std::move(R));
  }
  std::vector<CompileResponse> Responses =
      Service.compileBatch(std::move(Batch));
  for (const CompileResponse &R : Responses) {
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Key, Responses[0].Key) << "memoized form must yield the "
                                          "same fingerprint";
  }
  ServiceStats S = Service.stats();
  EXPECT_GE(S.CanonMemoHits, 7u)
      << "all but the first submission reuse the memoized canonical form";
  // A *different* graph object with identical structure still computes
  // its own canonical form (identity memo, not structural), and maps to
  // the same fingerprint.
  CompileResponse Fresh = Service.compileNow(
      graphRequest("fresh", assays::buildGlucoseAssay()));
  EXPECT_TRUE(Fresh.Ok) << Fresh.Error;
  EXPECT_EQ(Fresh.Key, Responses[0].Key);
  EXPECT_TRUE(Fresh.CacheHit);
}
