//===- TraceMultiProcessTest.cpp - Cross-process causal arc test ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The acceptance test for cross-process tracing, end to end through the
// real artifacts: a parent queues dispatch arcs ('s') and forks a worker
// that serves the requests against a shared store, both flush real shard
// files under AQUA_TRACE_DIR, the shards are merged exactly as `aquatrace
// merge` does it, and the merged JSON is parsed to prove a cache-miss
// request's flow arc spans two process tracks -- queued in the parent,
// solved in the worker.
//
// fork()-based, so this lives in its own binary that the TSan CI job
// excludes (TSan's runtime does not survive fork-then-continue children).
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"
#include "aqua/obs/Trace.h"
#include "aqua/obs/TraceMerge.h"
#include "aqua/service/CompileService.h"
#include "aqua/support/Json.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace aqua;
using namespace aqua::service;

namespace {

constexpr int Slots = 3;

std::string makeTempDir(const char *What) {
  std::string Template = testing::TempDir() + What + "-XXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  char *Dir = mkdtemp(Buf.data());
  return Dir ? Dir : "";
}

CompileRequest slotRequest(int Slot) {
  CompileRequest R;
  R.Name = "slot" + std::to_string(Slot);
  R.Graph =
      std::make_shared<const ir::AssayGraph>(assays::buildGlucoseAssay());
  // Distinct capacity per slot: every request is a genuine cache miss.
  R.Spec.MaxCapacityNl = 1000.0 - 10.0 * Slot;
  return R;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return false;
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

TEST(TraceMultiProcess, MissArcSpansQueueInParentAndSolveInWorker) {
  std::string TraceDir = makeTempDir("aqua-mp-trace");
  std::string StoreDir = makeTempDir("aqua-mp-store");
  ASSERT_FALSE(TraceDir.empty());
  ASSERT_FALSE(StoreDir.empty());
  ASSERT_EQ(setenv("AQUA_TRACE_DIR", TraceDir.c_str(), 1), 0);
  obs::Tracer::setEnabled(true);
  obs::Tracer::global().clear();

  // Both sides derive per-slot arc ids from a seed the child inherits.
  std::uint64_t Seed = obs::newTraceId();

  // Parent queues: one dispatch span + 's' per slot, before the fork so
  // the child genuinely starts later on the shared steady clock.
  for (int S = 0; S < Slots; ++S) {
    obs::SpanGuard Span("mp.queue", "test");
    Span.arg("slot", static_cast<std::uint64_t>(S));
    obs::traceFlowBegin("mp.dispatch", obs::dispatchFlowId(Seed, 0, S));
  }

  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Worker: drop the inherited pre-fork events (they belong to the
    // parent's shard), serve every slot as a cache miss against the
    // shared store, close the arcs, flush a real shard file, _exit.
    obs::Tracer::global().clear();
    int Failures = 0;
    {
      ServiceOptions Options;
      Options.Threads = 1;
      Options.StoreDir = StoreDir;
      CompileService Service(Options);
      for (int S = 0; S < Slots; ++S) {
        std::uint64_t Flow = obs::dispatchFlowId(Seed, 0, S);
        CompileRequest Req = slotRequest(S);
        Req.TraceId = obs::mixId(Flow) | 1;
        {
          obs::SpanGuard Span("mp.receive", "test");
          obs::traceFlowEnd("mp.dispatch", Flow);
        }
        CompileResponse R = Service.compileNow(Req);
        if (!R.Ok || R.CacheHit || R.CacheHitL2)
          ++Failures;
      }
    }
    if (!obs::flushTraceShard())
      ++Failures;
    _exit(Failures ? 1 : 0);
  }

  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  ASSERT_EQ(WEXITSTATUS(Status), 0) << "worker failed or saw cache hits";
  ASSERT_TRUE(obs::flushTraceShard());
  unsetenv("AQUA_TRACE_DIR");
  obs::Tracer::setEnabled(false);
  obs::Tracer::global().clear();

  // Merge exactly as `aquatrace merge DIR` does: list, read, stitch.
  auto Paths = obs::listShardPaths(TraceDir);
  ASSERT_TRUE(Paths.ok()) << Paths.message();
  ASSERT_EQ(Paths->size(), 2u) << "expected parent + worker shards";
  std::vector<std::string> Docs;
  for (const std::string &Path : *Paths) {
    std::string Doc;
    ASSERT_TRUE(readFile(Path, Doc)) << Path;
    Docs.push_back(std::move(Doc));
  }
  auto Merged = obs::mergeShards(Docs);
  ASSERT_TRUE(Merged.ok()) << Merged.message();
  EXPECT_EQ(Merged->ShardCount, 2u);

  auto Parsed = json::parse(Merged->Json);
  ASSERT_TRUE(Parsed.ok()) << Parsed.message();
  const json::Value *Events = Parsed->find("traceEvents");
  ASSERT_NE(Events, nullptr);

  // Index the merged stream: dispatch arcs by id, plus which merged pids
  // hosted the queue span, the solve, and the request span's outcome.
  std::map<std::string, double> BeginPid, EndPid;
  std::map<std::string, double> BeginTs, EndTs;
  double QueuePid = -1, ManagePid = -1, MissPid = -1;
  for (const json::Value &E : Events->array()) {
    std::string Ph = E.strOr("ph", "");
    std::string Name = E.strOr("name", "");
    if (Name == "mp.dispatch" && Ph == "s") {
      BeginPid[E.strOr("id", "?")] = E.numberOr("pid", -1);
      BeginTs[E.strOr("id", "?")] = E.numberOr("ts", -1);
    }
    if (Name == "mp.dispatch" && Ph == "f") {
      EndPid[E.strOr("id", "?")] = E.numberOr("pid", -1);
      EndTs[E.strOr("id", "?")] = E.numberOr("ts", -1);
    }
    if (Name == "mp.queue")
      QueuePid = E.numberOr("pid", -1);
    if (Name == "core.manage")
      ManagePid = E.numberOr("pid", -1);
    if (Name == "service.request") {
      const json::Value *Args = E.find("args");
      if (Args && Args->strOr("outcome", "") == "miss")
        MissPid = E.numberOr("pid", -1);
    }
  }

  // Every arc begins and ends, and the sides sit on different merged
  // process tracks with causally ordered (re-anchored) timestamps.
  EXPECT_EQ(BeginPid.size(), static_cast<std::size_t>(Slots));
  EXPECT_EQ(EndPid.size(), static_cast<std::size_t>(Slots));
  for (const auto &[Id, PidS] : BeginPid) {
    ASSERT_EQ(EndPid.count(Id), 1u) << "dangling arc " << Id;
    EXPECT_NE(PidS, EndPid[Id]) << "arc " << Id << " did not cross processes";
    EXPECT_LE(BeginTs[Id], EndTs[Id]) << "arc " << Id << " goes backwards";
  }
  // Queued in the parent's track; solved (volume management ran, and the
  // request span reported a miss) in the worker's track.
  ASSERT_NE(QueuePid, -1);
  ASSERT_NE(ManagePid, -1);
  ASSERT_NE(MissPid, -1);
  EXPECT_NE(QueuePid, ManagePid);
  EXPECT_EQ(ManagePid, MissPid);
  for (const auto &[Id, PidS] : BeginPid) {
    EXPECT_EQ(PidS, QueuePid) << "arc " << Id;
    EXPECT_EQ(EndPid[Id], MissPid) << "arc " << Id;
  }
}
