//===- DeadlineTest.cpp - Deadline, admission-control, and shedding tests -------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The service's production shaping: per-request deadlines, queue-depth
// admission control, priority bypass, and the shed accounting that backs
// the service.shed_* metrics. StartPaused + pause()/resume() make every
// scenario deterministic -- the queue is built while no worker drains it.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/CompileService.h"

#include "aqua/assays/PaperAssays.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::service;

namespace {

CompileRequest glucoseRequest(const char *Name = "glucose") {
  CompileRequest R;
  R.Name = Name;
  R.Graph =
      std::make_shared<const ir::AssayGraph>(assays::buildGlucoseAssay());
  return R;
}

ServiceOptions pausedOptions(std::size_t MaxQueueDepth = 0) {
  ServiceOptions O;
  O.Threads = 1;
  O.StartPaused = true;
  O.MaxQueueDepth = MaxQueueDepth;
  return O;
}

/// An absolute deadline that has certainly passed. The tracer clock's
/// epoch is its first call, so in a fresh test process `nowMicros() - 1`
/// would underflow to the far future; anchor the epoch, let the clock
/// tick past 1, and use 1 as the long-expired instant.
std::uint64_t expiredDeadline() {
  obs::Tracer::nowMicros();
  while (obs::Tracer::nowMicros() < 2)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  return 1;
}

} // namespace

TEST(ServiceShedding, QueueFullShedsWithDistinctStatus) {
  obs::MetricsRegistry &Reg = obs::metrics();
  std::uint64_t ShedBefore = Reg.counter("service.shed_total").value();
  std::uint64_t FullBefore = Reg.counter("service.shed.queue_full").value();

  CompileService Service(pausedOptions(/*MaxQueueDepth=*/2));
  std::vector<std::future<CompileResponse>> Futures;
  for (int I = 0; I < 4; ++I)
    Futures.push_back(Service.submit(glucoseRequest()));
  EXPECT_EQ(Service.queueDepth(), 2u);

  // The overflow futures resolve immediately, without a worker.
  for (int I = 2; I < 4; ++I) {
    CompileResponse R = Futures[I].get();
    EXPECT_FALSE(R.Ok);
    EXPECT_EQ(R.Shed, ShedReason::QueueFull);
    EXPECT_NE(R.Error.find("queue_full"), std::string::npos);
    EXPECT_EQ(R.Artifact, nullptr);
  }
  // The admitted ones complete once the service drains.
  Service.resume();
  for (int I = 0; I < 2; ++I) {
    CompileResponse R = Futures[I].get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Shed, ShedReason::None);
  }

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.ShedQueueFull, 2u);
  EXPECT_EQ(S.ShedDeadline, 0u);
  EXPECT_EQ(S.shedTotal(), 2u);
  EXPECT_EQ(S.Submitted, 4u);
  EXPECT_EQ(S.Completed, 2u) << "shed requests are not completions";
  EXPECT_EQ(S.Failed, 0u) << "shed requests are not failures";
  EXPECT_EQ(Reg.counter("service.shed_total").value() - ShedBefore, 2u);
  EXPECT_EQ(Reg.counter("service.shed.queue_full").value() - FullBefore, 2u);
}

TEST(ServiceShedding, OverloadKeepsAcceptingHighPriority) {
  CompileService Service(pausedOptions(/*MaxQueueDepth=*/1));
  std::vector<std::future<CompileResponse>> Futures;
  Futures.push_back(Service.submit(glucoseRequest("normal-0")));
  // Queue is at budget: normal work sheds...
  Futures.push_back(Service.submit(glucoseRequest("normal-1")));
  // ...but priority work is always admitted, at the *front* of the queue.
  CompileRequest Urgent = glucoseRequest("urgent");
  Urgent.HighPriority = true;
  Futures.push_back(Service.submit(std::move(Urgent)));
  EXPECT_EQ(Service.queueDepth(), 2u);

  EXPECT_EQ(Futures[1].get().Shed, ShedReason::QueueFull);
  Service.resume();
  CompileResponse UrgentR = Futures[2].get();
  EXPECT_TRUE(UrgentR.Ok) << UrgentR.Error;
  EXPECT_EQ(UrgentR.Shed, ShedReason::None);
  EXPECT_TRUE(Futures[0].get().Ok);
  EXPECT_EQ(Service.stats().ShedQueueFull, 1u);
}

TEST(ServiceShedding, ExpiredBeforeDequeueIsShedWithDeadlineStatus) {
  obs::MetricsRegistry &Reg = obs::metrics();
  std::uint64_t DeadlineBefore = Reg.counter("service.shed.deadline").value();

  CompileService Service(pausedOptions());
  CompileRequest Expired = glucoseRequest("expired");
  // Already past its deadline when it reaches the queue: the worker must
  // shed it at dequeue instead of burning a solve on it.
  Expired.DeadlineMicros = expiredDeadline();
  CompileRequest Fresh = glucoseRequest("fresh");
  Fresh.DeadlineMicros = obs::Tracer::nowMicros() + 60'000'000;
  auto FExpired = Service.submit(std::move(Expired));
  auto FFresh = Service.submit(std::move(Fresh));
  Service.resume();

  CompileResponse RExpired = FExpired.get();
  EXPECT_FALSE(RExpired.Ok);
  EXPECT_EQ(RExpired.Shed, ShedReason::DeadlineExpired);
  EXPECT_NE(RExpired.Error.find("deadline_expired"), std::string::npos);

  CompileResponse RFresh = FFresh.get();
  EXPECT_TRUE(RFresh.Ok) << RFresh.Error;
  EXPECT_EQ(RFresh.Shed, ShedReason::None);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.ShedDeadline, 1u);
  EXPECT_EQ(S.ShedQueueFull, 0u);
  EXPECT_EQ(Reg.counter("service.shed.deadline").value() - DeadlineBefore,
            1u);
  // The expired request never reached the pipeline: exactly one solve.
  EXPECT_EQ(S.Cache.Insertions, 1u);
}

TEST(ServiceShedding, CompileNowRespectsDeadlines) {
  CompileService Service;
  CompileRequest Expired = glucoseRequest();
  Expired.DeadlineMicros = expiredDeadline();
  CompileResponse R = Service.compileNow(Expired);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Shed, ShedReason::DeadlineExpired);
  EXPECT_EQ(Service.stats().Completed, 0u);
  EXPECT_EQ(Service.stats().Cache.Insertions, 0u) << "no solve was run";

  CompileRequest Fresh = glucoseRequest();
  Fresh.DeadlineMicros = obs::Tracer::nowMicros() + 60'000'000;
  CompileResponse R2 = Service.compileNow(Fresh);
  EXPECT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R2.Shed, ShedReason::None);
}

TEST(ServiceShedding, SubmitBatchAppliesAdmissionPerRequest) {
  CompileService Service(pausedOptions(/*MaxQueueDepth=*/2));
  std::vector<CompileRequest> Batch;
  for (int I = 0; I < 5; ++I)
    Batch.push_back(glucoseRequest());
  Batch[4].HighPriority = true; // Admitted past the full queue.
  auto Futures = Service.submitBatch(std::move(Batch));
  ASSERT_EQ(Futures.size(), 5u);
  EXPECT_EQ(Service.queueDepth(), 3u);
  EXPECT_EQ(Futures[2].get().Shed, ShedReason::QueueFull);
  EXPECT_EQ(Futures[3].get().Shed, ShedReason::QueueFull);
  Service.resume();
  EXPECT_TRUE(Futures[0].get().Ok);
  EXPECT_TRUE(Futures[1].get().Ok);
  EXPECT_TRUE(Futures[4].get().Ok);
  EXPECT_EQ(Service.stats().ShedQueueFull, 2u);
}

TEST(ServiceShedding, QueueDepthGaugeTracksTheQueue) {
  obs::MetricsRegistry &Reg = obs::metrics();
  CompileService Service(pausedOptions());
  std::vector<std::future<CompileResponse>> Futures;
  for (int I = 0; I < 3; ++I)
    Futures.push_back(Service.submit(glucoseRequest()));
  EXPECT_EQ(Reg.gauge("service.queue_depth").value(), 3.0);
  Service.resume();
  for (auto &F : Futures)
    (void)F.get();
  EXPECT_EQ(Reg.gauge("service.queue_depth").value(), 0.0);
}

TEST(ServiceShedding, PauseAndResumeRoundTrip) {
  CompileService Service(pausedOptions());
  auto F = Service.submit(glucoseRequest());
  EXPECT_EQ(Service.queueDepth(), 1u);
  Service.resume();
  EXPECT_TRUE(F.get().Ok);
  // Pause again: new work queues, old results stay available.
  Service.pause();
  auto F2 = Service.submit(glucoseRequest());
  EXPECT_EQ(Service.queueDepth(), 1u);
  Service.resume();
  CompileResponse R2 = F2.get();
  EXPECT_TRUE(R2.Ok);
  EXPECT_TRUE(R2.CacheHit);
}

TEST(ServiceShedding, ShedReasonNamesAreStable) {
  // aquad prints these and the metrics suffixes mirror them; renames are
  // a wire-format break.
  EXPECT_STREQ(shedReasonName(ShedReason::None), "none");
  EXPECT_STREQ(shedReasonName(ShedReason::QueueFull), "queue_full");
  EXPECT_STREQ(shedReasonName(ShedReason::DeadlineExpired),
               "deadline_expired");
}

TEST(ServiceShedding, UnboundedQueueNeverShedsOnDepth) {
  CompileService Service(pausedOptions(/*MaxQueueDepth=*/0));
  std::vector<std::future<CompileResponse>> Futures;
  for (int I = 0; I < 32; ++I)
    Futures.push_back(Service.submit(glucoseRequest()));
  EXPECT_EQ(Service.queueDepth(), 32u);
  Service.resume();
  for (auto &F : Futures) {
    CompileResponse R = F.get();
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Shed, ShedReason::None);
  }
  EXPECT_EQ(Service.stats().shedTotal(), 0u);
}
